module intensional

go 1.22
