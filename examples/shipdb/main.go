// The paper's Section 6 walk-through: load the naval ship test bed,
// induce the knowledge base, and run Examples 1–3 — each returning the
// extensional answer the paper prints plus the derived intensional
// answer (A_I).
package main

import (
	"fmt"
	"log"

	"intensional"
)

func main() {
	cat := intensional.ShipCatalog()
	d, err := intensional.ShipDictionary(cat)
	if err != nil {
		log.Fatal(err)
	}
	sys := intensional.New(cat, d)
	set, err := sys.Induce(intensional.InduceOptions{Nc: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Inductive Learning Subsystem produced %d rules from the Appendix C instance.\n\n", set.Len())

	examples := []struct {
		title string
		sql   string
		mode  intensional.AnswerMode
		paper string
	}{
		{
			"Example 1 — submarines with displacement greater than 8000 (forward inference)",
			`SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
			 FROM SUBMARINE, CLASS
			 WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`,
			intensional.ForwardOnly,
			`"Ship type SSBN has displacement greater than 8000"`,
		},
		{
			"Example 2 — names and classes of the SSBN ships (backward inference)",
			`SELECT SUBMARINE.NAME, SUBMARINE.CLASS
			 FROM SUBMARINE, CLASS
			 WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = "SSBN"`,
			intensional.BackwardOnly,
			`"Ship Classes in the range of 0101 to 0103 are SSBN."`,
		},
		{
			"Example 3 — submarines equipped with sonar BQS-04 (combined inference)",
			`SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
			 FROM SUBMARINE, CLASS, INSTALL
			 WHERE SUBMARINE.CLASS = CLASS.CLASS AND SUBMARINE.ID = INSTALL.SHIP
			 AND INSTALL.SONAR = "BQS-04"`,
			intensional.Combined,
			`"Ship type SSN with class 0208 to 0215 is equipped with sonar BQS-04."`,
		},
	}

	for _, ex := range examples {
		fmt.Println(ex.title)
		resp, err := sys.Query(ex.sql, ex.mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nextensional answer (%d tuples):\n%s", resp.Extensional.Len(), resp.Extensional)
		fmt.Printf("\nintensional answer:\n  %s\n", resp.Intensional.Text())
		fmt.Printf("\npaper's A_I: %s\n\n%s\n\n", ex.paper, divider)
	}
}

const divider = "----------------------------------------------------------------------"
