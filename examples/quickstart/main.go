// Quickstart: build a tiny database from scratch, declare its type
// hierarchy, induce rules, and ask a query that gets both an extensional
// and an intensional answer.
package main

import (
	"fmt"
	"log"

	"intensional"
	"intensional/internal/dict"
	"intensional/internal/relation"
)

func main() {
	// 1. A catalog with one relation: products classified into tiers by
	// price.
	cat := intensional.NewCatalog()
	products := relation.New("PRODUCT", relation.MustSchema(
		relation.Column{Name: "Sku", Type: relation.TString},
		relation.Column{Name: "Price", Type: relation.TInt},
		relation.Column{Name: "Tier", Type: relation.TString},
	))
	for _, p := range []struct {
		sku   string
		price int64
		tier  string
	}{
		{"P01", 5, "BUDGET"}, {"P02", 9, "BUDGET"}, {"P03", 12, "BUDGET"},
		{"P04", 25, "STANDARD"}, {"P05", 30, "STANDARD"}, {"P06", 42, "STANDARD"},
		{"P07", 90, "PREMIUM"}, {"P08", 120, "PREMIUM"}, {"P09", 200, "PREMIUM"},
	} {
		products.MustInsert(relation.String(p.sku), relation.Int(p.price), relation.String(p.tier))
	}
	cat.Put(products)

	// 2. Declare the type hierarchy: PRODUCT contains BUDGET, STANDARD,
	// PREMIUM, classified by the Tier attribute.
	d := intensional.NewDictionary(cat)
	err := d.AddHierarchy(&dict.Hierarchy{
		Object:          "PRODUCT",
		ClassifyingAttr: "Tier",
		Subtypes: []dict.Subtype{
			{Name: "BUDGET", Value: relation.String("BUDGET")},
			{Name: "STANDARD", Value: relation.String("STANDARD")},
			{Name: "PREMIUM", Value: relation.String("PREMIUM")},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Assemble the system and induce rules from the data.
	sys := intensional.New(cat, d)
	set, err := sys.Induce(intensional.InduceOptions{Nc: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("induced %d rules:\n%s\n", set.Len(), set)

	// 4. Ask a query. The extensional answer lists products; the
	// intensional answer characterises them ("they are all PREMIUM").
	resp, err := sys.Query(`SELECT Sku FROM PRODUCT WHERE Price > 100`, intensional.Combined)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extensional answer:\n%s\n", resp.Extensional)
	fmt.Printf("intensional answer:\n%s\n", resp.Intensional.Text())
}
