// The Section 5.2.2 scenario: induce Age → Position rules from an
// Employee database, store them as relocatable rule relations, save the
// database to disk, reopen it elsewhere, and answer intensionally from
// the recovered knowledge — no re-induction needed.
package main

import (
	"fmt"
	"log"
	"os"

	"intensional"
	"intensional/internal/core"
	"intensional/internal/rules"
	"intensional/internal/synth"
)

func main() {
	// 1. Generate the Employee database (200 employees, deterministic).
	cat := synth.Employees(200, 1990)
	d, err := synth.EmployeeDictionary(cat)
	if err != nil {
		log.Fatal(err)
	}
	sys := intensional.New(cat, d)

	// 2. Induce. Positions are assigned by age band, so the ILS finds
	// clean Age → Position range rules like the paper's
	// "(18, Employee.Age, 65)" clauses.
	set, err := sys.Induce(intensional.InduceOptions{Nc: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("induced rules:")
	for _, r := range set.Rules() {
		if r.LHS[0].Attr.Attribute == "Age" {
			fmt.Printf("  R%-3d %s (support %d)\n", r.ID, r, r.Support)
		}
	}

	// 3. Show the rule-relation encoding (Section 5.2.2's tables).
	enc, err := rules.Encode(set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrule relation R' holds %d clause rows; attribute value mapping holds %d rows\n",
		enc.Rules.Len(), enc.Map.Len())

	// 4. Save and relocate: database, dictionary declarations, and rule
	// relations travel as one directory.
	dir, err := os.MkdirTemp("", "employees-db-")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := os.RemoveAll(dir); err != nil {
			log.Printf("cleanup %s: %v", dir, err)
		}
	}()
	if err := sys.Save(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsaved database + knowledge to %s\n", dir)

	reopened, err := core.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reopened: %d rules recovered without re-induction\n\n", reopened.Rules().Len())

	// 5. Intensional answering at the new location.
	resp, err := reopened.Query(
		`SELECT Name FROM EMPLOYEE WHERE Age < 24`, intensional.Combined)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: employees younger than 24 (%d tuples)\n", resp.Extensional.Len())
	fmt.Printf("intensional answer:\n  %s\n", resp.Intensional.Text())
}
