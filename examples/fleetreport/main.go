// Table 1 reproduction: generate a synthetic navy fleet from the paper's
// published per-type displacement ranges, induce the classification
// characteristics back out of the data, and print them in the layout of
// Table 1.
package main

import (
	"fmt"
	"log"

	"intensional"
	"intensional/internal/induct"
	"intensional/internal/rules"
	"intensional/internal/synth"
)

func main() {
	cat := intensional.FleetCatalog(5, 4, 1991)
	d, err := intensional.FleetDictionary(cat)
	if err != nil {
		log.Fatal(err)
	}
	cls, err := cat.Get(synth.FleetClass)
	if err != nil {
		log.Fatal(err)
	}
	ship, err := cat.Get(synth.FleetShip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic fleet: %d classes, %d ships\n\n", cls.Len(), ship.Len())

	in := induct.New(d, induct.Options{})
	chars, err := in.InduceCharacteristics(cls, "Type", "Displacement",
		rules.Attr(synth.FleetClass, "Type"), rules.Attr(synth.FleetClass, "Displacement"))
	if err != nil {
		log.Fatal(err)
	}
	byType := map[string]*rules.Rule{}
	for _, r := range chars {
		byType[r.LHS[0].Lo.Str()] = r
	}

	fmt.Println("Classification Characteristics of Navy Battleships (induced)")
	fmt.Printf("%-11s | %-5s | %-37s | %s\n", "Category", "Type", "Type Name", "Displacement (in tons)")
	fmt.Println("------------+-------+---------------------------------------+----------------------")
	for _, st := range synth.Table1 {
		r := byType[st.Type]
		if r == nil {
			continue
		}
		fmt.Printf("%-11s | %-5s | %-37s | %8s - %-8s\n",
			st.Category, st.Type, st.TypeName, r.RHS.Lo, r.RHS.Hi)
	}

	// The intensional payoff: a query over the fleet characterised by type.
	sys := intensional.New(cat, d)
	if _, err := sys.Induce(intensional.InduceOptions{Nc: 3}); err != nil {
		log.Fatal(err)
	}
	resp, err := sys.Query(
		`SELECT Class FROM CLASS WHERE Displacement > 70000`, intensional.ForwardOnly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery: classes displacing more than 70000 tons (%d tuples)\n", resp.Extensional.Len())
	fmt.Printf("intensional answer:\n  %s\n", resp.Intensional.Text())
}
