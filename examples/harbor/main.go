// Inter-object knowledge (Section 3.1): ships VISIT ports, and every
// stored visit satisfies "the draft of the ship is less than the depth
// of the port". This example induces that constraint from the instances,
// shows it being withdrawn when dirty data appears, and uses it to vet a
// proposed visit before it is stored.
package main

import (
	"fmt"
	"log"

	"intensional/internal/induct"
	"intensional/internal/synth"
)

func main() {
	cat := synth.Harbor(synth.HarborConfig{Ships: 25, Ports: 8, Visits: 80, Seed: 7})
	d, err := synth.HarborDictionary(cat)
	if err != nil {
		log.Fatal(err)
	}

	in := induct.New(d, induct.Options{Nc: 2})
	visit := d.Relationships()[0]
	comparisons, err := in.InduceComparisons(visit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("induced inter-object knowledge:")
	for _, c := range comparisons {
		fmt.Println(" ", c)
	}

	// Use the induced constraint to vet a proposed visit: the ship with
	// the deepest draft into the shallowest port.
	ships, err := cat.Get(synth.HarborShip)
	if err != nil {
		log.Fatal(err)
	}
	ports, err := cat.Get(synth.HarborPort)
	if err != nil {
		log.Fatal(err)
	}
	deepDraft, _, err := ships.Max("Draft")
	if err != nil {
		log.Fatal(err)
	}
	shallow, _, err := ports.Min("Depth")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nproposed visit: ship with draft %s into port with depth %s\n", deepDraft, shallow)
	for _, c := range comparisons {
		if c.L.Attribute != "Draft" || c.R.Attribute != "Depth" {
			continue
		}
		cmp, err := deepDraft.Compare(shallow)
		if err != nil {
			log.Fatal(err)
		}
		ok := (c.Op == "<" && cmp < 0) || (c.Op == "<=" && cmp <= 0)
		if ok {
			fmt.Println("the proposed visit is consistent with the induced knowledge")
		} else {
			fmt.Printf("REJECTED: violates induced constraint %s\n", c)
		}
	}

	// Dirty data withdraws the constraint.
	dirty := synth.Harbor(synth.HarborConfig{Ships: 25, Ports: 8, Visits: 80, Seed: 7, Violations: 1})
	dd, err := synth.HarborDictionary(dirty)
	if err != nil {
		log.Fatal(err)
	}
	cs2, err := induct.New(dd, induct.Options{Nc: 2}).InduceComparisons(dd.Relationships()[0])
	if err != nil {
		log.Fatal(err)
	}
	still := false
	for _, c := range cs2 {
		if c.L.Attribute == "Draft" && c.R.Attribute == "Depth" {
			still = true
		}
	}
	fmt.Printf("\nafter injecting one violating visit, Draft/Depth constraint induced: %v\n", still)
}
