// Benchmarks regenerating the cost side of every experiment in
// DESIGN.md's index: rule induction over the paper's test bed (E1),
// extensional query processing and inference for Examples 1–3 (E2–E4),
// Table 1 characteristic induction (E5), rule-relation encoding (E8),
// the Nc sweep (A1), the join-strategy ablation, and the scaling studies
// B1 (induction vs database size) and B2 (inference vs rule-base size).
package intensional_test

import (
	"fmt"
	"testing"

	"intensional"
	"intensional/internal/dict"
	"intensional/internal/id3"
	"intensional/internal/induct"
	"intensional/internal/infer"
	"intensional/internal/quel"
	"intensional/internal/query"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/shipdb"
	"intensional/internal/storage"
	"intensional/internal/synth"
)

const (
	example1SQL = `SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
		FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`
	example2SQL = `SELECT SUBMARINE.NAME, SUBMARINE.CLASS FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = "SSBN"`
	example3SQL = `SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
		FROM SUBMARINE, CLASS, INSTALL
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND SUBMARINE.ID = INSTALL.SHIP
		AND INSTALL.SONAR = "BQS-04"`
)

func shipDict(b *testing.B) *dict.Dictionary {
	b.Helper()
	d, err := shipdb.Dictionary(shipdb.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkInduceShipDB measures full rule induction over the Appendix C
// instance (experiment E1).
func BenchmarkInduceShipDB(b *testing.B) {
	d := shipDict(b)
	in := induct.New(d, induct.Options{Nc: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.InduceAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInduceNcSweep measures induction at each pruning threshold of
// ablation A1 (the threshold changes pruning work, not scan work).
func BenchmarkInduceNcSweep(b *testing.B) {
	for _, nc := range []int{1, 2, 3, 5} {
		b.Run(fmt.Sprintf("Nc=%d", nc), func(b *testing.B) {
			d := shipDict(b)
			in := induct.New(d, induct.Options{Nc: nc})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.InduceAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInduceScaling is study B1: intra-object induction cost versus
// database size, on synthetic fleets of 120 to 120k ships.
func BenchmarkInduceScaling(b *testing.B) {
	for _, shipsPerClass := range []int{1, 10, 100, 1000} {
		nShips := 12 * 10 * shipsPerClass
		b.Run(fmt.Sprintf("ships=%d", nShips), func(b *testing.B) {
			cat := synth.Fleet(synth.FleetConfig{ClassesPerType: 10, ShipsPerClass: shipsPerClass, Seed: 1})
			d, err := synth.FleetDictionary(cat)
			if err != nil {
				b.Fatal(err)
			}
			in := induct.New(d, induct.Options{Nc: 2})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.InduceAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInduceParallel sweeps Options.Workers over the 10⁴-ship B1
// fleet: the candidate pairs are induced concurrently while the rule set
// stays byte-identical to the serial run (see
// TestInduceAllParallelMatchesSerial). workers=1 is the serial baseline
// the speedup criterion is measured against.
func BenchmarkInduceParallel(b *testing.B) {
	cat := synth.Fleet(synth.FleetConfig{ClassesPerType: 10, ShipsPerClass: 100, Seed: 1})
	d, err := synth.FleetDictionary(cat)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			in := induct.New(d, induct.Options{Nc: 2, Workers: workers})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.InduceAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchInfer measures Derive alone for one example query and rule base.
func benchInfer(b *testing.B, sql string) {
	d := shipDict(b)
	set, err := induct.New(d, induct.Options{Nc: 3}).InduceAll()
	if err != nil {
		b.Fatal(err)
	}
	d.SetRules(set)
	_, an, err := query.New(d.Catalog()).Run(sql)
	if err != nil {
		b.Fatal(err)
	}
	p := infer.New(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Derive(an); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferForward measures Example 1's forward inference (E2).
func BenchmarkInferForward(b *testing.B) { benchInfer(b, example1SQL) }

// BenchmarkInferBackward measures Example 2's backward inference (E3).
func BenchmarkInferBackward(b *testing.B) { benchInfer(b, example2SQL) }

// BenchmarkInferCombined measures Example 3's combined inference (E4).
func BenchmarkInferCombined(b *testing.B) { benchInfer(b, example3SQL) }

// BenchmarkInferScaling is study B2: inference cost versus rule-base
// size, with a point condition over synthetic rule bases.
func BenchmarkInferScaling(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			cat := storage.NewCatalog()
			r := relation.New("R", relation.MustSchema(
				relation.Column{Name: "X", Type: relation.TInt},
				relation.Column{Name: "Y", Type: relation.TString},
			))
			for i := 0; i < n; i++ {
				r.MustInsert(relation.Int(int64(i*10+5)), relation.String(fmt.Sprintf("c%d", i)))
			}
			cat.Put(r)
			d := dict.New(cat)
			d.SetRules(synth.RuleSetOfSize(n))
			an := &query.Analysis{
				Conjunctive: true,
				Tables:      []string{"R"},
				Restrictions: []query.Restriction{{
					Attr: rules.Attr("R", "X"), Op: "=", Val: relation.Int(int64(n/2*10 + 5)),
					HasInterval: true, Interval: rules.Point(relation.Int(int64(n/2*10 + 5))),
				}},
			}
			p := infer.New(d)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Derive(an); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchQuery measures extensional query processing alone.
func benchQuery(b *testing.B, sql string) {
	q := query.New(shipdb.Catalog())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := q.Run(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryExample1/2/3 measure the extensional answers of
// Examples 1–3 (tables of Section 6).
func BenchmarkQueryExample1(b *testing.B) { benchQuery(b, example1SQL) }
func BenchmarkQueryExample2(b *testing.B) { benchQuery(b, example2SQL) }
func BenchmarkQueryExample3(b *testing.B) { benchQuery(b, example3SQL) }

// BenchmarkEndToEnd measures the full pipeline: parse, extensional
// answer, inference, rendering (Example 3, combined mode).
func BenchmarkEndToEnd(b *testing.B) {
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		b.Fatal(err)
	}
	sys := intensional.New(cat, d)
	if _, err := sys.Induce(intensional.InduceOptions{Nc: 3}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query(example3SQL, intensional.Combined); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Characteristics measures the per-type range induction
// behind Table 1 (E5).
func BenchmarkTable1Characteristics(b *testing.B) {
	cat := synth.Fleet(synth.FleetConfig{ClassesPerType: 10, ShipsPerClass: 10, Seed: 1})
	d, err := synth.FleetDictionary(cat)
	if err != nil {
		b.Fatal(err)
	}
	cls, err := cat.Get(synth.FleetClass)
	if err != nil {
		b.Fatal(err)
	}
	in := induct.New(d, induct.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.InduceCharacteristics(cls, "Type", "Displacement",
			rules.Attr(synth.FleetClass, "Type"), rules.Attr(synth.FleetClass, "Displacement")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuleRelationRoundtrip measures the Section 5.2.2 encoding
// and decoding of the ship rule base (E8).
func BenchmarkRuleRelationRoundtrip(b *testing.B) {
	d := shipDict(b)
	set, err := induct.New(d, induct.Options{Nc: 1}).InduceAll()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := rules.Encode(set)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rules.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinStrategy is the join-strategy ablation: hash join versus
// nested loop on the induction join sizes of study B1.
func BenchmarkJoinStrategy(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		l := relation.New("L", relation.MustSchema(
			relation.Column{Name: "K", Type: relation.TInt},
			relation.Column{Name: "A", Type: relation.TInt},
		))
		r := relation.New("R", relation.MustSchema(
			relation.Column{Name: "K2", Type: relation.TInt},
			relation.Column{Name: "B", Type: relation.TInt},
		))
		for i := 0; i < n; i++ {
			l.MustInsert(relation.Int(int64(i)), relation.Int(int64(i%7)))
			r.MustInsert(relation.Int(int64(i)), relation.Int(int64(i%11)))
		}
		on := relation.JoinOn{Left: "K", Right: "K2"}
		b.Run(fmt.Sprintf("hash/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := l.Join(r, on); err != nil {
					b.Fatal(err)
				}
			}
		})
		if n <= 1000 { // nested loop is quadratic; cap the slow side
			b.Run(fmt.Sprintf("nestedloop/n=%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := l.JoinNestedLoop(r, on); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDecisionTree measures the Quinlan-style tree inducer of
// ablation A5 on growing employee databases.
func BenchmarkDecisionTree(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			cat := synth.Employees(n, 1)
			emp, err := cat.Get(synth.Employee)
			if err != nil {
				b.Fatal(err)
			}
			attrs := []rules.AttrRef{rules.Attr(synth.Employee, "Age")}
			y := rules.Attr(synth.Employee, "Position")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := id3.Build(emp, []string{"Age"}, "Position", attrs, y,
					id3.Options{MinLeaf: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInduceComparisons measures inter-object comparison induction
// (experiment A4) on growing harbor databases.
func BenchmarkInduceComparisons(b *testing.B) {
	for _, visits := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("visits=%d", visits), func(b *testing.B) {
			cat := synth.Harbor(synth.HarborConfig{Ships: 100, Ports: 20, Visits: visits, Seed: 1})
			d, err := synth.HarborDictionary(cat)
			if err != nil {
				b.Fatal(err)
			}
			in := induct.New(d, induct.Options{Nc: 2})
			rel := d.Relationships()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.InduceComparisons(rel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAggregateQuery measures the summarised-answer path (grouped
// aggregates over the joined ship data).
func BenchmarkAggregateQuery(b *testing.B) {
	q := query.New(shipdb.Catalog())
	const sql = `SELECT CLASS.Type, COUNT(*), MIN(Displacement), MAX(Displacement)
		FROM SUBMARINE, CLASS WHERE SUBMARINE.Class = CLASS.Class GROUP BY CLASS.Type`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := q.Run(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryStreaming measures the streaming operator pipeline
// against the retained materializing executor on a wide multi-join
// query: two hash joins over 20k-row relations whose intermediate is
// large, a residual cross-variable filter, and a selective projection.
// The point of the streaming pipeline shows up in B/op and allocs/op —
// intermediate rows live one batch at a time instead of one relation
// per operator — while ns/op keeps the two executors honest against
// each other.
func BenchmarkQueryStreaming(b *testing.B) {
	const n = 20000
	cat := storage.NewCatalog()
	mk := func(name, k, x string, mod int64) {
		r, err := cat.Create(name, relation.MustSchema(
			relation.Column{Name: k, Type: relation.TInt},
			relation.Column{Name: x, Type: relation.TInt},
		))
		if err != nil {
			b.Fatal(err)
		}
		for i := int64(0); i < n; i++ {
			r.MustInsert(relation.Int(i), relation.Int(i%mod))
		}
	}
	mk("A", "K", "G", 97)
	mk("B", "K", "V", 89)
	mk("C", "K", "W", 11)
	const sql = `SELECT A.K, C.W FROM A, B, C
		WHERE A.K = B.K AND B.K = C.K AND A.G = B.V`
	prep, err := query.New(cat).Prepare(sql, nil)
	if err != nil {
		b.Fatal(err)
	}
	want, err := prep.RunMaterialized()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := prep.Run()
			if err != nil {
				b.Fatal(err)
			}
			if got.Len() != want.Len() {
				b.Fatalf("streaming returned %d rows, want %d", got.Len(), want.Len())
			}
		}
	})
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := prep.RunMaterialized()
			if err != nil {
				b.Fatal(err)
			}
			if got.Len() != want.Len() {
				b.Fatalf("materialized returned %d rows, want %d", got.Len(), want.Len())
			}
		}
	})
}

// BenchmarkIndexedSelection measures the planner's lazy secondary index
// against the scan fallback for point queries on a large relation.
func BenchmarkIndexedSelection(b *testing.B) {
	const n = 120000
	cat := storage.NewCatalog()
	r, err := cat.Create("BIG", relation.MustSchema(
		relation.Column{Name: "K", Type: relation.TInt},
	))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r.MustInsert(relation.Int(int64(i)))
	}
	b.Run("indexed", func(b *testing.B) {
		sess := quel.NewSession(cat)
		if _, err := sess.Exec("range of r is BIG"); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Exec("retrieve (r.K) where r.K = 60000"); err != nil {
			b.Fatal(err) // warm the index outside the timer
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec("retrieve (r.K) where r.K = 60000"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		pred, err := relation.Cmp(r.Schema(), "K", "=", relation.Int(60000))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := r.Select(pred); got.Len() != 1 {
				b.Fatal("scan mismatch")
			}
		}
	})
}

// inducedShipSystem builds the ship test bed with rules induced, for
// the planning benchmarks.
func inducedShipSystem(b *testing.B) *intensional.System {
	b.Helper()
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		b.Fatal(err)
	}
	sys := intensional.New(cat, d)
	if _, err := sys.Induce(intensional.InduceOptions{Nc: 3}); err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkExplain measures plan rendering for Example 1: after the
// first call the statement is cached, so this is the steady-state cost
// of serving POST /explain.
func BenchmarkExplain(b *testing.B) {
	sys := inducedShipSystem(b)
	if _, err := sys.Explain(example1SQL); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Explain(example1SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedHit measures a prepared-statement cache hit —
// normalize the SQL, look up the snapshot's plan — the per-request
// planning cost of a repeated /query statement.
func BenchmarkPreparedHit(b *testing.B) {
	sys := inducedShipSystem(b)
	if _, err := sys.Prepare(example1SQL); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Prepare(example1SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedCold is the baseline BenchmarkPreparedHit is judged
// against: full parse, binding, analysis, and planning on every
// iteration, with no plan cache.
func BenchmarkPreparedCold(b *testing.B) {
	q := query.New(shipdb.Catalog())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Prepare(example1SQL, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSaveOpen measures relocation of database + knowledge (the
// Section 5.2.2 scenario).
func BenchmarkSaveOpen(b *testing.B) {
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		b.Fatal(err)
	}
	sys := intensional.New(cat, d)
	if _, err := sys.Induce(intensional.InduceOptions{Nc: 3}); err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Save(dir); err != nil {
			b.Fatal(err)
		}
		if _, err := intensional.Open(dir); err != nil {
			b.Fatal(err)
		}
	}
}
