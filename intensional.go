// Package intensional is a Go implementation of the intensional query
// processing system of Chu & Lee, "Using Type Inference and Induced Rules
// to Provide Intensional Answers" (UCLA CSD-900006 / ICDE 1991).
//
// An intensional answer characterises the set of tuples that satisfy a
// query instead of enumerating them. The system induces If-then rules
// from the database contents (the Inductive Learning Subsystem), stores
// them in an intelligent data dictionary bound to the data, and derives
// intensional answers by forward and backward type inference over the
// database's type hierarchies.
//
// The usual flow:
//
//	cat := intensional.ShipCatalog()          // or your own catalog
//	d, _ := intensional.ShipDictionary(cat)   // hierarchies + relationships
//	sys := intensional.New(cat, d)
//	sys.Induce(intensional.InduceOptions{Nc: 3})
//	resp, _ := sys.Query(`SELECT ... WHERE ...`, intensional.Combined)
//	fmt.Println(resp.Extensional)             // conventional answer
//	fmt.Println(resp.Intensional.Text())      // intensional answer
package intensional

import (
	"intensional/internal/answer"
	"intensional/internal/core"
	"intensional/internal/dict"
	"intensional/internal/induct"
	"intensional/internal/shipdb"
	"intensional/internal/storage"
	"intensional/internal/synth"
)

// System is the assembled intensional query processing system.
type System = core.System

// Response pairs the extensional answer with the derived intensional one.
type Response = core.Response

// InduceOptions configure the Inductive Learning Subsystem (the pruning
// threshold Nc, absolute or as a fraction of the relation size).
type InduceOptions = induct.Options

// AnswerMode selects which inference direction the rendered intensional
// answer reports.
type AnswerMode = answer.Mode

// Answer rendering modes.
const (
	Combined     = answer.Combined
	ForwardOnly  = answer.ForwardOnly
	BackwardOnly = answer.BackwardOnly
)

// Catalog is the named-relation store a System runs over.
type Catalog = storage.Catalog

// Dictionary is the intelligent data dictionary: hierarchies,
// relationships, level links, and the induced rule base.
type Dictionary = dict.Dictionary

// New assembles a system over a catalog and its dictionary.
func New(cat *Catalog, d *Dictionary) *System { return core.New(cat, d) }

// Open loads a database directory previously written by System.Save —
// data, dictionary declarations, and induced rules relocate together.
func Open(dir string) (*System, error) { return core.Open(dir) }

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return storage.NewCatalog() }

// NewDictionary returns an empty dictionary over the catalog.
func NewDictionary(cat *Catalog) *Dictionary { return dict.New(cat) }

// ShipCatalog returns the paper's complete naval ship test bed
// (Appendix C).
func ShipCatalog() *Catalog { return shipdb.Catalog() }

// ShipDictionary builds the ship test bed's dictionary (Figure 4's
// hierarchies and the INSTALL relationship).
func ShipDictionary(cat *Catalog) (*Dictionary, error) { return shipdb.Dictionary(cat) }

// FleetCatalog generates a synthetic navy fleet drawn from the paper's
// Table 1 classification characteristics.
func FleetCatalog(classesPerType, shipsPerClass int, seed int64) *Catalog {
	return synth.Fleet(synth.FleetConfig{
		ClassesPerType: classesPerType,
		ShipsPerClass:  shipsPerClass,
		Seed:           seed,
	})
}

// FleetDictionary builds the dictionary for a generated fleet.
func FleetDictionary(cat *Catalog) (*Dictionary, error) { return synth.FleetDictionary(cat) }
