#!/bin/sh
# Replication smoke test: stand up a real leader and follower iqpd
# process on loopback, then walk the serving tier's promises end to
# end — mutate on the leader, read your write on the follower via the
# token, kill and restart the follower mid-stream, and require
# convergence (same walSeq, same snapshot version, identical answers).
# Exits non-zero on the first broken promise. Stdlib + curl only.
set -eu

LEADER_PORT="${LEADER_PORT:-18473}"
FOLLOWER_PORT="${FOLLOWER_PORT:-18474}"
LEADER="http://127.0.0.1:${LEADER_PORT}"
FOLLOWER="http://127.0.0.1:${FOLLOWER_PORT}"

WORK="$(mktemp -d)"
BIN="$WORK/iqpd"
LEADER_PID=""
FOLLOWER_PID=""

cleanup() {
    [ -n "$FOLLOWER_PID" ] && kill "$FOLLOWER_PID" 2>/dev/null || true
    [ -n "$LEADER_PID" ] && kill "$LEADER_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "smoke-replication: FAIL: $*" >&2
    exit 1
}

# jget FILE KEY extracts a scalar JSON field ("key":value or "key":"value").
jget() {
    sed -n 's/.*"'"$2"'":"\{0,1\}\([^,"}]*\)"\{0,1\}[,}].*/\1/p' "$1" | head -n 1
}

wait_healthz() {
    url="$1"; want="$2"; tries=100
    while [ "$tries" -gt 0 ]; do
        if curl -sf "$url/healthz" -o "$WORK/hz.json" 2>/dev/null; then
            mode="$(jget "$WORK/hz.json" mode)"
            case "$mode" in
                $want) return 0 ;;
            esac
        fi
        tries=$((tries - 1))
        sleep 0.1
    done
    fail "$url never reached healthz mode '$want' (last: $(cat "$WORK/hz.json" 2>/dev/null || echo none))"
}

echo "smoke-replication: building iqpd and seeding the leader database"
go build -o "$BIN" ./cmd/iqpd
go run ./cmd/induce -nc 3 -save "$WORK/leader-db" >/dev/null

echo "smoke-replication: starting leader on :$LEADER_PORT"
"$BIN" -addr ":$LEADER_PORT" -db "$WORK/leader-db" -wal -no-induce \
    >"$WORK/leader.log" 2>&1 &
LEADER_PID=$!
wait_healthz "$LEADER" "ok"

echo "smoke-replication: starting follower on :$FOLLOWER_PORT"
"$BIN" -addr ":$FOLLOWER_PORT" -role follower -leader "$LEADER" \
    -db "$WORK/follower-db" >"$WORK/follower.log" 2>&1 &
FOLLOWER_PID=$!
wait_healthz "$FOLLOWER" "follower:ready"

echo "smoke-replication: mutate on the leader, read your write on the follower"
curl -sf -X POST "$LEADER/mutate" -d \
    '{"sql":"INSERT INTO SUBMARINE VALUES ('\''SSN990'\'', '\''Smokefish'\'', '\''0204'\'')"}' \
    -o "$WORK/mutate.json" || fail "leader mutate refused: $(cat "$WORK/mutate.json" 2>/dev/null)"
TOKEN="$(jget "$WORK/mutate.json" token)"
[ -n "$TOKEN" ] || fail "mutate response carries no read-your-writes token: $(cat "$WORK/mutate.json")"

QUERY='{"sql":"SELECT SUBMARINE.Id, SUBMARINE.Name FROM SUBMARINE WHERE SUBMARINE.Id = '\''SSN990'\''","mode":"forward","token":"'"$TOKEN"'"}'
curl -sf -X POST "$FOLLOWER/query" -d "$QUERY" -o "$WORK/follower-q.json" \
    || fail "follower tokened query failed: $(cat "$WORK/follower-q.json" 2>/dev/null)"
grep -q Smokefish "$WORK/follower-q.json" || fail "follower does not see the tokened write"

echo "smoke-replication: follower refuses writes with the leader's address"
code="$(curl -s -o "$WORK/refused.json" -w '%{http_code}' -X POST "$FOLLOWER/mutate" \
    -d '{"sql":"DELETE FROM SONAR WHERE Sonar = '\''nope'\''"}')"
[ "$code" = "421" ] || fail "follower mutate answered $code, want 421"
grep -q "$LEADER" "$WORK/refused.json" || fail "421 body omits the leader address"

echo "smoke-replication: kill the follower mid-stream, write, restart, converge"
kill "$FOLLOWER_PID"
wait "$FOLLOWER_PID" 2>/dev/null || true
FOLLOWER_PID=""
for i in 1 2 3; do
    curl -sf -X POST "$LEADER/mutate" -d \
        '{"sql":"INSERT INTO SONAR VALUES ('\''SMOKE-'"$i"''\'', '\''Downtime'\'')"}' \
        -o "$WORK/mutate-$i.json" || fail "leader mutate $i refused while follower down"
done
TOKEN="$(jget "$WORK/mutate-3.json" token)"
"$BIN" -addr ":$FOLLOWER_PORT" -role follower -leader "$LEADER" \
    -db "$WORK/follower-db" >>"$WORK/follower.log" 2>&1 &
FOLLOWER_PID=$!
wait_healthz "$FOLLOWER" "follower:ready"

QUERY='{"sql":"SELECT SONAR.Sonar, SONAR.SonarType FROM SONAR","mode":"forward","token":"'"$TOKEN"'"}'
curl -sf -X POST "$FOLLOWER/query" -d "$QUERY" -o "$WORK/follower-q2.json" \
    || fail "restarted follower tokened query failed"
grep -q "SMOKE-3" "$WORK/follower-q2.json" || fail "restarted follower lost an acknowledged write"
curl -sf -X POST "$LEADER/query" -d "$QUERY" -o "$WORK/leader-q2.json"
cmp -s "$WORK/leader-q2.json" "$WORK/follower-q2.json" \
    || fail "leader and follower answers diverge: $(cat "$WORK/leader-q2.json") vs $(cat "$WORK/follower-q2.json")"

curl -sf "$LEADER/healthz" -o "$WORK/lhz.json"
curl -sf "$FOLLOWER/healthz" -o "$WORK/fhz.json"
LSEQ="$(jget "$WORK/lhz.json" walSeq)"
FSEQ="$(jget "$WORK/fhz.json" walSeq)"
[ -n "$LSEQ" ] && [ "$LSEQ" = "$FSEQ" ] || fail "walSeq diverges: leader '$LSEQ', follower '$FSEQ'"

echo "smoke-replication: restarting both nodes in cluster mode for a live handover"
kill "$FOLLOWER_PID"; wait "$FOLLOWER_PID" 2>/dev/null || true
kill "$LEADER_PID"; wait "$LEADER_PID" 2>/dev/null || true
FOLLOWER_PID=""; LEADER_PID=""
go build -o "$WORK/iqp" ./cmd/iqp
cat >"$WORK/cluster.json" <<EOF
{"nodes":[{"id":"a","addr":"$LEADER","role":"leader"},{"id":"b","addr":"$FOLLOWER","role":"follower"}]}
EOF
"$BIN" -addr ":$LEADER_PORT" -db "$WORK/leader-db" -no-induce \
    -cluster-config "$WORK/cluster.json" -node-id a -cluster-watch 100ms \
    >>"$WORK/leader.log" 2>&1 &
LEADER_PID=$!
wait_healthz "$LEADER" "ok"
"$BIN" -addr ":$FOLLOWER_PORT" -db "$WORK/follower-db" \
    -cluster-config "$WORK/cluster.json" -node-id b -cluster-watch 100ms \
    >>"$WORK/follower.log" 2>&1 &
FOLLOWER_PID=$!
# With no writes pending, the follower's first long poll parks for the
# full window before it reports "ready"; any follower state means it is
# attached and streaming, which is all the handover needs.
wait_healthz "$FOLLOWER" "follower:*"

echo "smoke-replication: rewriting cluster.json — node b becomes the leader, no restarts"
cat >"$WORK/cluster.json" <<EOF
{"nodes":[{"id":"a","addr":"$LEADER","role":"follower"},{"id":"b","addr":"$FOLLOWER","role":"leader"}]}
EOF
wait_healthz "$LEADER" "follower:*"
wait_healthz "$FOLLOWER" "ok"
kill -0 "$LEADER_PID" 2>/dev/null || fail "node a restarted during the handover"
kill -0 "$FOLLOWER_PID" 2>/dev/null || fail "node b restarted during the handover"

echo "smoke-replication: writing through the demoted node with the failover client"
"$WORK/iqp" -connect "$LEADER" \
    -e "INSERT INTO SONAR VALUES ('HANDOVER-1', 'Live')" \
    >"$WORK/handover-mutate.txt" 2>>"$WORK/follower.log" \
    || fail "failover write via demoted node failed: $(cat "$WORK/handover-mutate.txt" 2>/dev/null)"
grep -q "ok (version" "$WORK/handover-mutate.txt" \
    || fail "failover client did not acknowledge the write: $(cat "$WORK/handover-mutate.txt")"

QUERY='{"sql":"SELECT SONAR.Sonar, SONAR.SonarType FROM SONAR WHERE SONAR.Sonar = '\''HANDOVER-1'\''","mode":"forward"}'
tries=100
while [ "$tries" -gt 0 ]; do
    if curl -sf -X POST "$LEADER/query" -d "$QUERY" -o "$WORK/a-q3.json" 2>/dev/null \
        && grep -q "HANDOVER-1" "$WORK/a-q3.json"; then
        break
    fi
    tries=$((tries - 1))
    sleep 0.1
done
[ "$tries" -gt 0 ] || fail "demoted node a never replicated the handover write"
curl -sf -X POST "$FOLLOWER/query" -d "$QUERY" -o "$WORK/b-q3.json" \
    || fail "new leader query failed"
cmp -s "$WORK/a-q3.json" "$WORK/b-q3.json" \
    || fail "answers diverge after handover: $(cat "$WORK/b-q3.json") vs $(cat "$WORK/a-q3.json")"

curl -sf "$LEADER/healthz" -o "$WORK/ahz.json"
curl -sf "$FOLLOWER/healthz" -o "$WORK/bhz.json"
ASEQ="$(jget "$WORK/ahz.json" walSeq)"
BSEQ="$(jget "$WORK/bhz.json" walSeq)"
[ -n "$BSEQ" ] && [ "$ASEQ" = "$BSEQ" ] || fail "walSeq diverges after handover: a '$ASEQ', b '$BSEQ'"

echo "smoke-replication: OK (converged at walSeq $LSEQ; live handover converged at walSeq $BSEQ)"
