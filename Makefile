# CI entry points. `make ci` is what every PR must keep green: build,
# vet, the repo's own static-analysis suite (cmd/ilint), the full test
# suite, and the race detector over the internal packages — lint and
# race together enforce the concurrency contract the parallel induction
# pipeline relies on (immutable sources, locked catalog, deterministic
# rule numbering).

GO ?= go

.PHONY: ci build vet lint test race bench serve

ci: vet build lint test race

# The four repo-specific passes: lockguard, maporder, rowalias, errdrop.
# See DESIGN.md "Static analysis".
lint:
	$(GO) run ./cmd/ilint ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# The B1/B2 scaling benches plus the worker sweep; not part of ci.
bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

# Run the intensional-answer server on the paper's ship test bed.
# Try: curl -s localhost:8473/healthz
serve:
	$(GO) run ./cmd/iqpd -addr :8473
