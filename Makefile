# CI entry points. `make ci` is what every PR must keep green: build,
# vet, the full test suite, and the race detector over the internal
# packages — the latter enforces the concurrency contract the parallel
# induction pipeline relies on (immutable sources, locked catalog).

GO ?= go

.PHONY: ci build vet test race bench

ci: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# The B1/B2 scaling benches plus the worker sweep; not part of ci.
bench:
	$(GO) test -bench . -benchtime 1x -run xxx .
