# CI entry points. `make ci` is what every PR must keep green: build,
# vet, the repo's own static-analysis suite (cmd/ilint), the full test
# suite, and the race detector over the internal packages — lint and
# race together enforce the concurrency contract the parallel induction
# pipeline relies on (immutable sources, locked catalog, deterministic
# rule numbering).

GO ?= go

.PHONY: ci build vet lint lint-baseline test race bench bench-check serve chaos smoke-replication

ci: vet build lint test race

# The eight repo-specific passes: lockguard, maporder, rowalias,
# errdrop, faultseam, ctxflow, snapfreeze, fsyncorder. See DESIGN.md
# "Static analysis". Findings not absorbed by the committed baseline
# fail the build, as do stale baseline entries — a fixed finding must
# be removed from lint-baseline.json (run `make lint-baseline`), never
# silently carried. lint.json is the machine-readable artifact CI
# uploads and the problem matcher annotates PR diffs from.
lint:
	$(GO) run ./cmd/ilint -baseline lint-baseline.json -json lint.json ./...

# Regenerate the suppression file. The baseline exists for landing the
# analysis before the last legacy findings are fixed; shrinking it is
# the goal, growing it needs justification in review (the diff of
# lint-baseline.json makes either visible).
lint-baseline:
	$(GO) run ./cmd/ilint -write-baseline lint-baseline.json ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Machine-readable benchmark snapshots. Each run pipes the standard
# -bench exposition through cmd/benchjson, leaving BENCH_induce.json
# and BENCH_query.json (name, iterations, ns/op, B/op, allocs/op) —
# committed as the regression baseline bench-check diffs against.
# BENCHTIME=10x etc. for more stable numbers.
BENCHTIME ?= 1x
INDUCE_BENCHES = Induce|Table1|Tree
QUERY_BENCHES  = Query|Infer|EndToEnd|Join|Indexed|Explain|Prepared
bench:
	$(GO) test -bench '$(INDUCE_BENCHES)' -benchmem -benchtime $(BENCHTIME) -run xxx . \
		| $(GO) run ./cmd/benchjson -o BENCH_induce.json
	$(GO) test -bench '$(QUERY_BENCHES)' -benchmem -benchtime $(BENCHTIME) -run xxx . \
		| $(GO) run ./cmd/benchjson -o BENCH_query.json

# Re-run the benchmark suites and fail on a >25% regression against the
# committed BENCH_*.json baselines. Allocation metrics (allocs/op,
# B/op) are fatal — they are deterministic, so they compare across
# machines; ns/op past the threshold only warns. Does not overwrite the
# baselines; run `make bench` to refresh them after an intended change.
bench-check:
	$(GO) test -bench '$(INDUCE_BENCHES)' -benchmem -benchtime $(BENCHTIME) -run xxx . \
		| $(GO) run ./cmd/benchjson -compare BENCH_induce.json -threshold 25
	$(GO) test -bench '$(QUERY_BENCHES)' -benchmem -benchtime $(BENCHTIME) -run xxx . \
		| $(GO) run ./cmd/benchjson -compare BENCH_query.json -threshold 25

# Seeded crash-recovery harness (cmd/chaos): cycles of mutate → inject
# disk death → kill → reopen, asserting after every cycle that
# acknowledged batches survive exactly once and no serving rule is
# contradicted by the recovered data. Deterministic per seed; a failure
# prints the exact reproduction command.
CHAOS_ITERS ?= 200
CHAOS_SEED  ?= 1
# The replica scenario (chaos -scenario replica) runs fewer cycles:
# each one includes condition-based reconvergence waits over loopback
# HTTP. The network-fault scenarios — bootstrap (mid-transfer link
# drops with spool resume) and reconfig (live leader swaps under load)
# — run the full 200 cycles; slowlink is short because every cycle
# deliberately waits out a throttled transfer.
CHAOS_REPLICA_ITERS  ?= 50
CHAOS_NETFAULT_ITERS ?= 200
CHAOS_SLOWLINK_ITERS ?= 5
chaos:
	$(GO) run ./cmd/chaos -iters $(CHAOS_ITERS) -seed $(CHAOS_SEED)
	$(GO) run ./cmd/chaos -scenario replica -iters $(CHAOS_REPLICA_ITERS) -seed $(CHAOS_SEED)
	$(GO) run ./cmd/chaos -scenario bootstrap -iters $(CHAOS_NETFAULT_ITERS) -seed $(CHAOS_SEED)
	$(GO) run ./cmd/chaos -scenario reconfig -iters $(CHAOS_NETFAULT_ITERS) -seed $(CHAOS_SEED)
	$(GO) run ./cmd/chaos -scenario slowlink -iters $(CHAOS_SLOWLINK_ITERS) -seed $(CHAOS_SEED)

# Two-process replication smoke: a real leader and follower iqpd on
# loopback — mutate on the leader, read your write on the follower via
# the token, kill and restart the follower mid-stream, and assert
# convergence (same walSeq, identical answers).
smoke-replication:
	sh scripts/smoke_replication.sh

# Run the intensional-answer server on the paper's ship test bed.
# Try: curl -s localhost:8473/healthz
serve:
	$(GO) run ./cmd/iqpd -addr :8473
