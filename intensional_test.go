package intensional_test

import (
	"strings"
	"testing"

	"intensional"
	"intensional/internal/dict"
	"intensional/internal/relation"
)

// TestPublicAPIShipFlow exercises the re-exported surface end to end the
// way the README's quickstart does.
func TestPublicAPIShipFlow(t *testing.T) {
	cat := intensional.ShipCatalog()
	d, err := intensional.ShipDictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	sys := intensional.New(cat, d)
	set, err := sys.Induce(intensional.InduceOptions{Nc: 3})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 18 {
		t.Fatalf("rules = %d", set.Len())
	}
	resp, err := sys.Query(`
		SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
		FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`,
		intensional.ForwardOnly)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Extensional.Len() != 2 {
		t.Errorf("extensional = %d", resp.Extensional.Len())
	}
	if !strings.Contains(resp.Intensional.Text(), "SSBN") {
		t.Errorf("intensional = %q", resp.Intensional.Text())
	}

	dir := t.TempDir()
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	sys2, err := intensional.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sys2.Rules().Len() != 18 {
		t.Errorf("reloaded rules = %d", sys2.Rules().Len())
	}
}

func TestPublicAPIFleet(t *testing.T) {
	cat := intensional.FleetCatalog(3, 2, 42)
	d, err := intensional.FleetDictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	sys := intensional.New(cat, d)
	if _, err := sys.Induce(intensional.InduceOptions{Nc: 2}); err != nil {
		t.Fatal(err)
	}
	resp, err := sys.Query(`SELECT Class FROM CLASS WHERE Displacement > 70000`, intensional.Combined)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Intensional.Text(), "CVN") {
		t.Errorf("intensional = %q", resp.Intensional.Text())
	}
}

func TestPublicAPICustomDatabase(t *testing.T) {
	cat := intensional.NewCatalog()
	r := relation.New("ITEM", relation.MustSchema(
		relation.Column{Name: "Id", Type: relation.TInt},
		relation.Column{Name: "Weight", Type: relation.TInt},
		relation.Column{Name: "Size", Type: relation.TString},
	))
	for i, w := range []int64{1, 2, 3, 50, 60, 70} {
		size := "SMALL"
		if w > 10 {
			size = "LARGE"
		}
		r.MustInsert(relation.Int(int64(i)), relation.Int(w), relation.String(size))
	}
	cat.Put(r)
	d := intensional.NewDictionary(cat)
	if err := d.AddHierarchy(&dict.Hierarchy{
		Object:          "ITEM",
		ClassifyingAttr: "Size",
		Subtypes: []dict.Subtype{
			{Name: "SMALL", Value: relation.String("SMALL")},
			{Name: "LARGE", Value: relation.String("LARGE")},
		},
	}); err != nil {
		t.Fatal(err)
	}
	sys := intensional.New(cat, d)
	if _, err := sys.Induce(intensional.InduceOptions{Nc: 2}); err != nil {
		t.Fatal(err)
	}
	resp, err := sys.Query(`SELECT Id FROM ITEM WHERE Weight > 40`, intensional.ForwardOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Intensional.Text(), "LARGE") {
		t.Errorf("intensional = %q", resp.Intensional.Text())
	}
}
