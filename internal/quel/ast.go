package quel

import (
	"fmt"
	"strings"

	"intensional/internal/relation"
)

// Stmt is a parsed QUEL statement.
type Stmt interface{ stmt() }

// RangeStmt is "range of <var> is <relation>".
type RangeStmt struct {
	Var string
	Rel string
}

// RetrieveStmt is "retrieve [into <name>] [unique] (targets) [where qual]
// [sort by cols]".
type RetrieveStmt struct {
	Into   string
	Unique bool
	Target []Target
	Where  Expr
	SortBy []SortItem
}

// SortItem is one "sort by" key with optional descending order.
type SortItem struct {
	Col  ColRef
	Desc bool
}

// DeleteStmt is "delete <var> [where qual]". Extra range variables in the
// qualification have existential semantics, as in QUEL.
type DeleteStmt struct {
	Var   string
	Where Expr
}

// AppendStmt is "append to <relation> (attr = value, ...)": inserts one
// tuple built from constant assignments; unassigned attributes are null.
type AppendStmt struct {
	Rel    string
	Assign []Assign
}

// ReplaceStmt is "replace <var> (attr = value, ...) [where qual]":
// updates the assigned attributes of every qualifying tuple of the
// variable's relation. Extra range variables have existential semantics,
// as in delete.
type ReplaceStmt struct {
	Var    string
	Assign []Assign
	Where  Expr
}

// Assign is one "attr = operand" assignment. The operand may be a
// constant or a column reference over a declared range variable.
type Assign struct {
	Attr string
	Val  Operand
}

func (*RangeStmt) stmt()    {}
func (*RetrieveStmt) stmt() {}
func (*DeleteStmt) stmt()   {}
func (*AppendStmt) stmt()   {}
func (*ReplaceStmt) stmt()  {}

// Target is one projection item, optionally renamed ("name = r.attr").
type Target struct {
	As  string
	Col ColRef
}

// ColRef references an attribute of a range variable.
type ColRef struct {
	Var  string
	Attr string
}

// String renders the reference as "var.attr".
func (c ColRef) String() string { return c.Var + "." + c.Attr }

// Expr is a qualification expression.
type Expr interface {
	expr()
	String() string
}

// BinExpr is a comparison between two operands. Implied marks a
// conjunct synthesized by the semantic optimizer from induced rules
// rather than written in the query; the planner carries the mark into
// EXPLAIN output.
type BinExpr struct {
	Op      string // = != < <= > >=
	L, R    Operand
	Implied bool
}

// AndExpr is a conjunction.
type AndExpr struct{ Terms []Expr }

// OrExpr is a disjunction.
type OrExpr struct{ Terms []Expr }

// NotExpr is a negation.
type NotExpr struct{ Term Expr }

func (*BinExpr) expr() {}
func (*AndExpr) expr() {}
func (*OrExpr) expr()  {}
func (*NotExpr) expr() {}

func (e *BinExpr) String() string { return fmt.Sprintf("%s %s %s", e.L, e.Op, e.R) }

func (e *AndExpr) String() string { return joinExprs(e.Terms, " and ") }

func (e *OrExpr) String() string { return "(" + joinExprs(e.Terms, " or ") + ")" }

func (e *NotExpr) String() string { return "not (" + e.Term.String() + ")" }

func joinExprs(terms []Expr, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, sep)
}

// Operand is a comparison operand: a column reference or a constant.
type Operand interface {
	operand()
	String() string
}

// ColOperand wraps a ColRef as an operand.
type ColOperand struct{ Col ColRef }

// ConstOperand wraps a literal value.
type ConstOperand struct{ Val relation.Value }

func (ColOperand) operand()   {}
func (ConstOperand) operand() {}

func (o ColOperand) String() string   { return o.Col.String() }
func (o ConstOperand) String() string { return o.Val.GoString() }
