package quel

import (
	"strings"
	"testing"

	"intensional/internal/plan"
)

// planFor parses a retrieve statement and plans it on the session
// without running it.
func planFor(t *testing.T, s *Session, src string) *RetrievePlan {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	rst, ok := st.(*RetrieveStmt)
	if !ok {
		t.Fatalf("parse %q: not a retrieve", src)
	}
	rp, err := s.PlanRetrieve(rst)
	if err != nil {
		t.Fatalf("plan %q: %v", src, err)
	}
	return rp
}

// findIndexScan walks a plan tree for its (first) IndexScan node.
func findIndexScan(n plan.Node) *plan.IndexScan {
	if ix, ok := n.(*plan.IndexScan); ok {
		return ix
	}
	for _, c := range n.Children() {
		if ix := findIndexScan(c); ix != nil {
			return ix
		}
	}
	return nil
}

// findFullScan walks a plan tree for its (first) FullScan node.
func findFullScan(n plan.Node) *plan.FullScan {
	if fs, ok := n.(*plan.FullScan); ok {
		return fs
	}
	for _, c := range n.Children() {
		if fs := findFullScan(c); fs != nil {
			return fs
		}
	}
	return nil
}

// TestCostBasedIndexSelection: with two index-usable conjuncts on one
// variable, the planner must pick the narrower one by actual index
// cardinality — regardless of the order the conjuncts are written in.
// The old behaviour took the first usable conjunct, so the "b.G = 3 and
// b.K = 250" ordering regresses to scanning ~1/7th of the relation
// instead of exactly one row.
func TestCostBasedIndexSelection(t *testing.T) {
	cat := bigCatalog(t, 500) // K unique, G = K%7 (~71 rows per value)
	s := NewSession(cat)
	mustExec(t, s, "range of b is BIG")

	for _, src := range []string{
		"retrieve (b.K) where b.K = 250 and b.G = 5",
		"retrieve (b.K) where b.G = 5 and b.K = 250",
	} {
		rp := planFor(t, s, src)
		ix := findIndexScan(rp.Describe())
		if ix == nil {
			t.Fatalf("%q: no index scan in plan\n%s", src, rp.Describe())
		}
		if ix.Column != "K" {
			t.Errorf("%q: chose index on %s, want K (narrower)", src, ix.Column)
		}
		if ix.Est != 1 {
			t.Errorf("%q: index scan est = %d, want 1", src, ix.Est)
		}
		res, err := rp.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Rel.Len() != 1 || res.Rel.Row(0)[0].Int64() != 250 {
			t.Errorf("%q: rows = %v", src, res.Rel.Rows())
		}
	}
}

// TestCostBasedSelectionPrefersEquality: a wide range conjunct written
// first must not shadow a selective equality on another column.
func TestCostBasedSelectionPrefersEquality(t *testing.T) {
	cat := bigCatalog(t, 500)
	s := NewSession(cat)
	mustExec(t, s, "range of b is BIG")

	rp := planFor(t, s, "retrieve (b.K) where b.K > 10 and b.G = 3")
	ix := findIndexScan(rp.Describe())
	if ix == nil {
		t.Fatal("no index scan in plan")
	}
	// K > 10 matches 489 rows; G = 3 matches ~71. G must win.
	if ix.Column != "G" {
		t.Errorf("chose index on %s, want G", ix.Column)
	}
}

// TestFallbackCounterAndLog: an index-usable conjunct whose probe value
// cannot be compared with the column (string probe on an int column)
// degrades to a full scan — counted, logged with the reason, and
// surfaced in the plan.
func TestFallbackCounterAndLog(t *testing.T) {
	cat := bigCatalog(t, 100)
	s := NewSession(cat)
	var c Counters
	s.SetCounters(&c)
	var logged []string
	s.SetLogf(func(format string, args ...any) {
		logged = append(logged, format)
	})
	mustExec(t, s, "range of b is BIG")

	rp := planFor(t, s, `retrieve (b.K) where b.K = "oops"`)
	if got := c.IndexFallbacks.Load(); got != 1 {
		t.Errorf("IndexFallbacks = %d, want 1", got)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "index fallback") {
		t.Errorf("logged = %q", logged)
	}
	fs := findFullScan(rp.Describe())
	if fs == nil {
		t.Fatalf("no full scan in plan\n%s", rp.Describe())
	}
	if fs.Fallback == "" || !strings.Contains(fs.Label(), "index fallback") {
		t.Errorf("fallback not surfaced in plan: %q", fs.Label())
	}
	// The query still answers (comparison with an incomparable value is
	// simply false for every row).
	res, err := rp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 0 {
		t.Errorf("rows = %d, want 0", res.Rel.Len())
	}
	if got := c.FullScans.Load(); got != 1 {
		t.Errorf("FullScans = %d, want 1", got)
	}
}

// TestScanCounters: index and full scans are counted per executed
// access path.
func TestScanCounters(t *testing.T) {
	cat := bigCatalog(t, 200)
	s := NewSession(cat)
	var c Counters
	s.SetCounters(&c)
	mustExec(t, s, "range of b is BIG")

	mustExec(t, s, "retrieve (b.K) where b.K = 42")
	if ix, full := c.IndexScans.Load(), c.FullScans.Load(); ix != 1 || full != 0 {
		t.Errorf("after indexed query: index=%d full=%d, want 1/0", ix, full)
	}
	mustExec(t, s, "retrieve (b.K)")
	if ix, full := c.IndexScans.Load(), c.FullScans.Load(); ix != 1 || full != 1 {
		t.Errorf("after unqualified query: index=%d full=%d, want 1/1", ix, full)
	}
}

// TestSharedIndexCache: two sessions over one catalog share indexes
// through an IndexCache.
func TestSharedIndexCache(t *testing.T) {
	cat := bigCatalog(t, 200)
	cache := NewIndexCache()

	s1 := NewSession(cat)
	s1.SetIndexCache(cache)
	mustExec(t, s1, "range of b is BIG")
	mustExec(t, s1, "retrieve (b.K) where b.K = 42")
	if cache.Len() != 1 {
		t.Fatalf("cache size = %d, want 1", cache.Len())
	}

	s2 := NewSession(cat)
	s2.SetIndexCache(cache)
	mustExec(t, s2, "range of b is BIG")
	res := mustExec(t, s2, "retrieve (b.K) where b.K = 42")
	if res.Rel.Len() != 1 {
		t.Fatalf("rows = %d, want 1", res.Rel.Len())
	}
	if cache.Len() != 1 {
		t.Errorf("cache size = %d, want 1 (shared, not rebuilt)", cache.Len())
	}
	if len(s2.indexes) != 0 {
		t.Errorf("session-private indexes = %d, want 0 when cache set", len(s2.indexes))
	}
}
