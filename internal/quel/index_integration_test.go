package quel

import (
	"fmt"
	"testing"

	"intensional/internal/relation"
	"intensional/internal/storage"
)

func bigCatalog(t *testing.T, n int) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	r, err := cat.Create("BIG", relation.MustSchema(
		relation.Column{Name: "K", Type: relation.TInt},
		relation.Column{Name: "G", Type: relation.TInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r.MustInsert(relation.Int(int64(i)), relation.Int(int64(i%7)))
	}
	return cat
}

// TestIndexedSelection: on a relation above the index threshold the
// planner answers through the lazily built index, with identical results
// to a scan, and caches the index across statements.
func TestIndexedSelection(t *testing.T) {
	cat := bigCatalog(t, 500)
	s := NewSession(cat)
	mustExec(t, s, "range of b is BIG")

	res := mustExec(t, s, "retrieve (b.K) where b.K = 250")
	if res.Rel.Len() != 1 || !res.Rel.Row(0)[0].Equal(relation.Int(250)) {
		t.Fatalf("point lookup = %v", res.Rel.Rows())
	}
	if len(s.indexes) != 1 {
		t.Fatalf("index cache size = %d, want 1", len(s.indexes))
	}

	res = mustExec(t, s, "retrieve (b.K) where b.K >= 490")
	if res.Rel.Len() != 10 {
		t.Fatalf("range lookup = %d rows, want 10", res.Rel.Len())
	}
	// Row order matches the scan order (ascending K here by construction).
	for i, row := range res.Rel.Rows() {
		if row[0].Int64() != int64(490+i) {
			t.Errorf("row %d = %v", i, row)
		}
	}
	if len(s.indexes) != 1 {
		t.Errorf("index cache size = %d, want 1 (reused)", len(s.indexes))
	}

	// A second condition on the same variable filters the index result.
	res = mustExec(t, s, "retrieve (b.K) where b.K < 20 and b.G = 0")
	want := 0
	for i := 0; i < 20; i++ {
		if i%7 == 0 {
			want++
		}
	}
	if res.Rel.Len() != want {
		t.Errorf("combined filter = %d rows, want %d", res.Rel.Len(), want)
	}
}

// TestIndexInvalidatedByMutation: DML through the session must not serve
// stale index results.
func TestIndexInvalidatedByMutation(t *testing.T) {
	cat := bigCatalog(t, 200)
	s := NewSession(cat)
	mustExec(t, s, "range of b is BIG")
	res := mustExec(t, s, "retrieve (b.K) where b.K = 150")
	if res.Rel.Len() != 1 {
		t.Fatalf("before append: %d rows", res.Rel.Len())
	}
	mustExec(t, s, "append to BIG (K = 150, G = 0)")
	res = mustExec(t, s, "retrieve (b.K) where b.K = 150")
	if res.Rel.Len() != 2 {
		t.Fatalf("after append: %d rows, want 2 (stale index?)", res.Rel.Len())
	}
	mustExec(t, s, "delete b where b.K = 150")
	res = mustExec(t, s, "retrieve (b.K) where b.K = 150")
	if res.Rel.Len() != 0 {
		t.Fatalf("after delete: %d rows, want 0", res.Rel.Len())
	}
}

// TestIndexedMatchesScanOnLargeData re-runs several operators on a large
// relation and cross-checks against relation.Select.
func TestIndexedMatchesScanOnLargeData(t *testing.T) {
	cat := bigCatalog(t, 300)
	s := NewSession(cat)
	mustExec(t, s, "range of b is BIG")
	rel, _ := cat.Get("BIG")
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		res := mustExec(t, s, fmt.Sprintf("retrieve (b.K) where b.K %s 137", op))
		pred, err := relation.Cmp(rel.Schema(), "K", op, relation.Int(137))
		if err != nil {
			t.Fatal(err)
		}
		if want := rel.Select(pred).Len(); res.Rel.Len() != want {
			t.Errorf("op %s: index path %d rows, scan %d", op, res.Rel.Len(), want)
		}
	}
}
