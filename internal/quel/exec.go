package quel

import (
	"fmt"
	"sort"
	"strings"

	"intensional/internal/relation"
	"intensional/internal/storage"
)

// Session executes QUEL statements against a catalog. Range declarations
// persist for the life of the session, as in INGRES, and so do the
// secondary indexes the planner builds lazily for selective conditions
// on large relations (rebuilt automatically when the data changes).
type Session struct {
	cat     *storage.Catalog
	ranges  map[string]string // lower(var) → relation name
	indexes map[string]*relation.Index
}

// indexMinRows is the relation size below which a scan beats building an
// index.
const indexMinRows = 64

// NewSession creates a session over the given catalog.
func NewSession(cat *storage.Catalog) *Session {
	return &Session{
		cat:     cat,
		ranges:  make(map[string]string),
		indexes: make(map[string]*relation.Index),
	}
}

// indexFor returns a fresh index on the relation's column, building or
// rebuilding as needed; nil when indexing is not worthwhile.
func (s *Session) indexFor(rel *relation.Relation, col int) *relation.Index {
	if rel.Len() < indexMinRows {
		return nil
	}
	key := strings.ToLower(rel.Name()) + "\x00" + rel.Schema().Col(col).Name
	if ix, ok := s.indexes[key]; ok && ix.Fresh() {
		return ix
	}
	ix, err := rel.BuildIndex(rel.Schema().Col(col).Name)
	if err != nil {
		return nil
	}
	s.indexes[key] = ix
	return ix
}

// Result reports the effect of one statement: the retrieved relation
// (for retrieve) and the tuple counts mutated by delete, append, and
// replace.
type Result struct {
	Rel      *relation.Relation
	Deleted  int
	Appended int
	Replaced int
}

// Exec parses and executes one QUEL statement.
func (s *Session) Exec(src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return s.ExecStmt(st)
}

// ExecStmt executes a parsed statement.
func (s *Session) ExecStmt(st Stmt) (*Result, error) {
	switch st := st.(type) {
	case *RangeStmt:
		if !s.cat.Has(st.Rel) {
			return nil, fmt.Errorf("quel: range of %s: no relation %q", st.Var, st.Rel)
		}
		s.ranges[strings.ToLower(st.Var)] = st.Rel
		return &Result{}, nil
	case *RetrieveStmt:
		return s.execRetrieve(st)
	case *DeleteStmt:
		return s.execDelete(st)
	case *AppendStmt:
		return s.execAppend(st)
	case *ReplaceStmt:
		return s.execReplace(st)
	default:
		return nil, fmt.Errorf("quel: unknown statement %T", st)
	}
}

// flipCmp mirrors a comparison operator when its operands swap sides.
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// coerce adapts a constant to a column type, parsing bare-identifier
// strings into numbers where the column demands it.
func coerce(v relation.Value, t relation.Type) (relation.Value, error) {
	if v.Conforms(t) {
		return v, nil
	}
	if v.Kind() == relation.KindString {
		return relation.ParseValue(v.Str(), t)
	}
	return relation.Value{}, fmt.Errorf("quel: value %#v does not fit column type %s", v, t)
}

func (s *Session) execAppend(st *AppendStmt) (*Result, error) {
	rel, err := s.cat.Get(st.Rel)
	if err != nil {
		return nil, err
	}
	row := make(relation.Tuple, rel.Schema().Len())
	for i := range row {
		row[i] = relation.Null()
	}
	for _, a := range st.Assign {
		ci, ok := rel.Schema().Index(a.Attr)
		if !ok {
			return nil, fmt.Errorf("quel: append: relation %s has no attribute %q", rel.Name(), a.Attr)
		}
		c, ok := a.Val.(ConstOperand)
		if !ok {
			return nil, fmt.Errorf("quel: append: %s must be assigned a constant", a.Attr)
		}
		v, err := coerce(c.Val, rel.Schema().Col(ci).Type)
		if err != nil {
			return nil, fmt.Errorf("quel: append %s.%s: %w", rel.Name(), a.Attr, err)
		}
		row[ci] = v
	}
	if err := rel.Insert(row); err != nil {
		return nil, err
	}
	return &Result{Appended: 1}, nil
}

func (s *Session) execReplace(st *ReplaceStmt) (*Result, error) {
	p := newPlanner(s)
	slot, err := p.addVar(st.Var)
	if err != nil {
		return nil, err
	}
	if err := p.collectVars(st.Where); err != nil {
		return nil, err
	}
	// Assignment operands may reference range variables too.
	type setter struct {
		col int
		fn  valueFn
	}
	rel := p.rels[slot]
	var setters []setter
	for _, a := range st.Assign {
		ci, ok := rel.Schema().Index(a.Attr)
		if !ok {
			return nil, fmt.Errorf("quel: replace: relation %s has no attribute %q", rel.Name(), a.Attr)
		}
		if col, ok := a.Val.(ColOperand); ok {
			if _, err := p.addVar(col.Col.Var); err != nil {
				return nil, err
			}
		}
		fn, err := p.compileOperand(a.Val)
		if err != nil {
			return nil, err
		}
		setters = append(setters, setter{col: ci, fn: fn})
	}

	var bindings []binding
	if st.Where == nil && len(p.vars) == 1 {
		for i := 0; i < rel.Len(); i++ {
			b := make(binding, 1)
			b[0] = i
			bindings = append(bindings, b)
		}
	} else {
		bindings, err = p.assemble(st.Where)
		if err != nil {
			return nil, err
		}
	}
	touched := map[int]bool{}
	for _, b := range bindings {
		for _, set := range setters {
			v, err := coerce(set.fn(b), rel.Schema().Col(set.col).Type)
			if err != nil {
				return nil, fmt.Errorf("quel: replace %s.%s: %w",
					rel.Name(), rel.Schema().Col(set.col).Name, err)
			}
			if err := rel.Set(b[slot], set.col, v); err != nil {
				return nil, err
			}
		}
		touched[b[slot]] = true
	}
	return &Result{Replaced: len(touched)}, nil
}

// binding assigns one row index per plan variable; -1 marks unbound slots.
type binding []int

// planner resolves variables, compiles predicates, and assembles bindings
// with hash joins where equality conjuncts allow.
type planner struct {
	sess   *Session
	vars   []string
	varIdx map[string]int
	rels   []*relation.Relation
}

func newPlanner(s *Session) *planner {
	return &planner{sess: s, varIdx: make(map[string]int)}
}

// addVar registers a range variable, resolving its relation.
func (p *planner) addVar(v string) (int, error) {
	key := strings.ToLower(v)
	if i, ok := p.varIdx[key]; ok {
		return i, nil
	}
	relName, ok := p.sess.ranges[key]
	if !ok {
		return 0, fmt.Errorf("quel: variable %q has no range declaration", v)
	}
	r, err := p.sess.cat.Get(relName)
	if err != nil {
		return 0, err
	}
	i := len(p.vars)
	p.vars = append(p.vars, v)
	p.varIdx[key] = i
	p.rels = append(p.rels, r)
	return i, nil
}

// collectVars registers every variable appearing in the expression.
func (p *planner) collectVars(e Expr) error {
	switch e := e.(type) {
	case nil:
		return nil
	case *BinExpr:
		for _, o := range []Operand{e.L, e.R} {
			if c, ok := o.(ColOperand); ok {
				if _, err := p.addVar(c.Col.Var); err != nil {
					return err
				}
			}
		}
		return nil
	case *AndExpr:
		for _, t := range e.Terms {
			if err := p.collectVars(t); err != nil {
				return err
			}
		}
		return nil
	case *OrExpr:
		for _, t := range e.Terms {
			if err := p.collectVars(t); err != nil {
				return err
			}
		}
		return nil
	case *NotExpr:
		return p.collectVars(e.Term)
	default:
		return fmt.Errorf("quel: unknown expression %T", e)
	}
}

// colSlot resolves a column reference to (variable slot, attribute index).
func (p *planner) colSlot(c ColRef) (int, int, error) {
	slot, ok := p.varIdx[strings.ToLower(c.Var)]
	if !ok {
		return 0, 0, fmt.Errorf("quel: variable %q has no range declaration", c.Var)
	}
	ai, ok := p.rels[slot].Schema().Index(c.Attr)
	if !ok {
		return 0, 0, fmt.Errorf("quel: relation %s has no attribute %q", p.rels[slot].Name(), c.Attr)
	}
	return slot, ai, nil
}

// compiled evaluates a predicate over a binding.
type compiled func(binding) bool

// compile turns an expression into an executable predicate. All slots the
// expression touches must be bound when it runs.
func (p *planner) compile(e Expr) (compiled, error) {
	switch e := e.(type) {
	case *BinExpr:
		l, err := p.compileOperand(e.L)
		if err != nil {
			return nil, err
		}
		r, err := p.compileOperand(e.R)
		if err != nil {
			return nil, err
		}
		op := e.Op
		return func(b binding) bool {
			c, err := l(b).Compare(r(b))
			if err != nil {
				return false
			}
			switch op {
			case "=":
				return c == 0
			case "!=":
				return c != 0
			case "<":
				return c < 0
			case "<=":
				return c <= 0
			case ">":
				return c > 0
			case ">=":
				return c >= 0
			}
			return false
		}, nil
	case *AndExpr:
		terms := make([]compiled, len(e.Terms))
		for i, t := range e.Terms {
			c, err := p.compile(t)
			if err != nil {
				return nil, err
			}
			terms[i] = c
		}
		return func(b binding) bool {
			for _, t := range terms {
				if !t(b) {
					return false
				}
			}
			return true
		}, nil
	case *OrExpr:
		terms := make([]compiled, len(e.Terms))
		for i, t := range e.Terms {
			c, err := p.compile(t)
			if err != nil {
				return nil, err
			}
			terms[i] = c
		}
		return func(b binding) bool {
			for _, t := range terms {
				if t(b) {
					return true
				}
			}
			return false
		}, nil
	case *NotExpr:
		c, err := p.compile(e.Term)
		if err != nil {
			return nil, err
		}
		return func(b binding) bool { return !c(b) }, nil
	default:
		return nil, fmt.Errorf("quel: unknown expression %T", e)
	}
}

type valueFn func(binding) relation.Value

func (p *planner) compileOperand(o Operand) (valueFn, error) {
	switch o := o.(type) {
	case ColOperand:
		slot, ai, err := p.colSlot(o.Col)
		if err != nil {
			return nil, err
		}
		rel := p.rels[slot]
		return func(b binding) relation.Value { return rel.Row(b[slot])[ai] }, nil
	case ConstOperand:
		v := o.Val
		return func(binding) relation.Value { return v }, nil
	default:
		return nil, fmt.Errorf("quel: unknown operand %T", o)
	}
}

// conjunct classification for planning.
type conjunct struct {
	expr Expr
	// For a BinExpr between two columns or a column and a constant:
	isEq     bool
	lSlot    int // -1 when constant
	lAttr    int
	rSlot    int
	rAttr    int
	slotsIn  map[int]bool // all slots the conjunct touches
	compiled compiled
	// Single-variable "column op constant" selections are index-usable:
	isSel   bool
	selSlot int
	selAttr int
	selOp   string
	selVal  relation.Value
}

// splitConjuncts flattens the top-level conjunction of e.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*AndExpr); ok {
		var out []Expr
		for _, t := range a.Terms {
			out = append(out, splitConjuncts(t)...)
		}
		return out
	}
	return []Expr{e}
}

func (p *planner) analyse(e Expr) (*conjunct, error) {
	c := &conjunct{expr: e, lSlot: -1, rSlot: -1, slotsIn: map[int]bool{}}
	var walk func(Expr) error
	walk = func(e Expr) error {
		switch e := e.(type) {
		case *BinExpr:
			for _, o := range []Operand{e.L, e.R} {
				if col, ok := o.(ColOperand); ok {
					slot, _, err := p.colSlot(col.Col)
					if err != nil {
						return err
					}
					c.slotsIn[slot] = true
				}
			}
		case *AndExpr:
			for _, t := range e.Terms {
				if err := walk(t); err != nil {
					return err
				}
			}
		case *OrExpr:
			for _, t := range e.Terms {
				if err := walk(t); err != nil {
					return err
				}
			}
		case *NotExpr:
			return walk(e.Term)
		}
		return nil
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	if b, ok := e.(*BinExpr); ok {
		lc, lok := b.L.(ColOperand)
		rc, rok := b.R.(ColOperand)
		lv, lIsConst := b.L.(ConstOperand)
		rv, rIsConst := b.R.(ConstOperand)
		switch {
		case b.Op == "=" && lok && rok:
			ls, la, err := p.colSlot(lc.Col)
			if err != nil {
				return nil, err
			}
			rs, ra, err := p.colSlot(rc.Col)
			if err != nil {
				return nil, err
			}
			if ls != rs {
				c.isEq = true
				c.lSlot, c.lAttr, c.rSlot, c.rAttr = ls, la, rs, ra
			}
		case lok && rIsConst:
			slot, attr, err := p.colSlot(lc.Col)
			if err != nil {
				return nil, err
			}
			c.isSel, c.selSlot, c.selAttr, c.selOp, c.selVal = true, slot, attr, b.Op, rv.Val
		case rok && lIsConst:
			slot, attr, err := p.colSlot(rc.Col)
			if err != nil {
				return nil, err
			}
			c.isSel, c.selSlot, c.selAttr, c.selOp, c.selVal = true, slot, attr, flipCmp(b.Op), lv.Val
		}
	}
	comp, err := p.compile(e)
	if err != nil {
		return nil, err
	}
	c.compiled = comp
	return c, nil
}

// assemble produces all bindings of the plan variables satisfying the
// qualification. Single-variable conjuncts are pushed down as selections,
// cross-variable equalities drive hash joins, and everything else runs as
// a residual filter.
func (p *planner) assemble(where Expr) ([]binding, error) {
	n := len(p.vars)
	if n == 0 {
		return []binding{{}}, nil
	}
	var conjs []*conjunct
	for _, e := range splitConjuncts(where) {
		c, err := p.analyse(e)
		if err != nil {
			return nil, err
		}
		conjs = append(conjs, c)
	}
	used := make([]bool, len(conjs))

	// Per-variable candidate row lists after pushing down single-variable
	// conjuncts. When one of them is an index-usable selection on a large
	// relation, the session's lazy secondary index supplies the initial
	// candidates and the remaining predicates filter them.
	cand := make([][]int, n)
	for slot := 0; slot < n; slot++ {
		var preds []compiled
		var sel *conjunct
		for ci, c := range conjs {
			if len(c.slotsIn) == 1 && c.slotsIn[slot] && !c.isEq {
				preds = append(preds, c.compiled)
				used[ci] = true
				if sel == nil && c.isSel && c.selSlot == slot {
					sel = c
				}
			}
		}
		probe := make(binding, n)
		for i := range probe {
			probe[i] = -1
		}
		passes := func(i int) bool {
			probe[slot] = i
			for _, pr := range preds {
				if !pr(probe) {
					return false
				}
			}
			return true
		}
		if sel != nil {
			if ix := p.sess.indexFor(p.rels[slot], sel.selAttr); ix != nil {
				if rows, err := ix.Lookup(sel.selOp, sel.selVal); err == nil {
					sort.Ints(rows) // restore row order for stable results
					for _, i := range rows {
						if passes(i) {
							cand[slot] = append(cand[slot], i)
						}
					}
					continue
				}
			}
		}
		for i := 0; i < p.rels[slot].Len(); i++ {
			if passes(i) {
				cand[slot] = append(cand[slot], i)
			}
		}
	}

	bound := make([]bool, n)
	// Seed with variable 0.
	bindings := make([]binding, 0, len(cand[0]))
	for _, i := range cand[0] {
		b := make(binding, n)
		for j := range b {
			b[j] = -1
		}
		b[0] = i
		bindings = append(bindings, b)
	}
	bound[0] = true
	nBound := 1

	for nBound < n {
		// Prefer a variable joined to the bound set by equality conjuncts.
		next := -1
		for slot := 0; slot < n && next == -1; slot++ {
			if bound[slot] {
				continue
			}
			for ci, c := range conjs {
				if used[ci] || !c.isEq {
					continue
				}
				a, b := c.lSlot, c.rSlot
				if (a == slot && bound[b]) || (b == slot && bound[a]) {
					next = slot
					break
				}
			}
		}
		if next == -1 {
			// No join edge: cross product with the first unbound variable.
			for slot := 0; slot < n; slot++ {
				if !bound[slot] {
					next = slot
					break
				}
			}
			var out []binding
			for _, b := range bindings {
				for _, i := range cand[next] {
					nb := append(binding(nil), b...)
					nb[next] = i
					out = append(out, nb)
				}
			}
			bindings = out
			bound[next] = true
			nBound++
			continue
		}
		// Gather every equality edge between next and the bound set.
		type edge struct{ boundAttr, nextAttr, boundSlot int }
		var es []edge
		for ci, c := range conjs {
			if used[ci] || !c.isEq {
				continue
			}
			switch {
			case c.lSlot == next && bound[c.rSlot]:
				es = append(es, edge{boundAttr: c.rAttr, nextAttr: c.lAttr, boundSlot: c.rSlot})
				used[ci] = true
			case c.rSlot == next && bound[c.lSlot]:
				es = append(es, edge{boundAttr: c.lAttr, nextAttr: c.rAttr, boundSlot: c.lSlot})
				used[ci] = true
			}
		}
		// Hash next's candidate rows on its side of the edges.
		rel := p.rels[next]
		table := make(map[string][]int, len(cand[next]))
		for _, i := range cand[next] {
			var key strings.Builder
			for _, e := range es {
				key.WriteString(rel.Row(i)[e.nextAttr].Key())
				key.WriteByte('\x1f')
			}
			table[key.String()] = append(table[key.String()], i)
		}
		var out []binding
		for _, b := range bindings {
			var key strings.Builder
			for _, e := range es {
				key.WriteString(p.rels[e.boundSlot].Row(b[e.boundSlot])[e.boundAttr].Key())
				key.WriteByte('\x1f')
			}
			for _, i := range table[key.String()] {
				nb := append(binding(nil), b...)
				nb[next] = i
				out = append(out, nb)
			}
		}
		bindings = out
		bound[next] = true
		nBound++
	}

	// Residual filter: every conjunct not yet consumed.
	var residual []compiled
	for ci, c := range conjs {
		if !used[ci] {
			residual = append(residual, c.compiled)
		}
	}
	if len(residual) > 0 {
		kept := bindings[:0]
		for _, b := range bindings {
			ok := true
			for _, r := range residual {
				if !r(b) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, b)
			}
		}
		bindings = kept
	}
	return bindings, nil
}

func (s *Session) execRetrieve(st *RetrieveStmt) (*Result, error) {
	p := newPlanner(s)
	for _, t := range st.Target {
		if _, err := p.addVar(t.Col.Var); err != nil {
			return nil, err
		}
	}
	if err := p.collectVars(st.Where); err != nil {
		return nil, err
	}
	for _, c := range st.SortBy {
		if _, err := p.addVar(c.Col.Var); err != nil {
			return nil, err
		}
	}

	// Resolve targets and build the output schema.
	type targetInfo struct {
		slot, attr int
		name       string
	}
	infos := make([]targetInfo, len(st.Target))
	usedNames := map[string]bool{}
	for i, t := range st.Target {
		slot, ai, err := p.colSlot(t.Col)
		if err != nil {
			return nil, err
		}
		name := t.As
		if name == "" {
			name = p.rels[slot].Schema().Col(ai).Name
		}
		if usedNames[strings.ToLower(name)] {
			name = t.Col.Var + "." + name
		}
		for usedNames[strings.ToLower(name)] {
			name += "_"
		}
		usedNames[strings.ToLower(name)] = true
		infos[i] = targetInfo{slot: slot, attr: ai, name: name}
	}
	cols := make([]relation.Column, len(infos))
	for i, info := range infos {
		cols[i] = relation.Column{
			Name: info.name,
			Type: p.rels[info.slot].Schema().Col(info.attr).Type,
		}
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, err
	}

	bindings, err := p.assemble(st.Where)
	if err != nil {
		return nil, err
	}

	name := st.Into
	if name == "" {
		name = "result"
	}
	out := relation.New(name, schema)
	for _, b := range bindings {
		row := make(relation.Tuple, len(infos))
		for i, info := range infos {
			row[i] = p.rels[info.slot].Row(b[info.slot])[info.attr]
		}
		if err := out.Insert(row); err != nil {
			return nil, err
		}
	}
	if st.Unique {
		out = out.Unique()
	}
	if len(st.SortBy) > 0 {
		keys := make([]relation.SortKey, len(st.SortBy))
		for i, item := range st.SortBy {
			// Map the sort column to an output column: prefer a target on
			// the same variable+attribute.
			found := ""
			slot, ai, err := p.colSlot(item.Col)
			if err != nil {
				return nil, err
			}
			for j, info := range infos {
				if info.slot == slot && info.attr == ai {
					found = infos[j].name
					break
				}
			}
			if found == "" {
				return nil, fmt.Errorf("quel: sort by %s: column is not retrieved", item.Col)
			}
			keys[i] = relation.SortKey{Column: found, Desc: item.Desc}
		}
		out, err = out.Sort(keys...)
		if err != nil {
			return nil, err
		}
	}
	if st.Into != "" {
		if s.cat.Has(st.Into) {
			return nil, fmt.Errorf("quel: retrieve into %s: relation already exists", st.Into)
		}
		s.cat.Put(out)
	}
	return &Result{Rel: out}, nil
}

func (s *Session) execDelete(st *DeleteStmt) (*Result, error) {
	p := newPlanner(s)
	slot, err := p.addVar(st.Var)
	if err != nil {
		return nil, err
	}
	if err := p.collectVars(st.Where); err != nil {
		return nil, err
	}
	if st.Where == nil {
		rel := p.rels[slot]
		n := rel.Delete(func(relation.Tuple) bool { return true })
		return &Result{Deleted: n}, nil
	}
	bindings, err := p.assemble(st.Where)
	if err != nil {
		return nil, err
	}
	// Existential semantics: a target tuple dies if any binding includes it.
	doomed := make(map[int]bool, len(bindings))
	for _, b := range bindings {
		doomed[b[slot]] = true
	}
	rel := p.rels[slot]
	idx := 0
	n := rel.Delete(func(relation.Tuple) bool {
		dead := doomed[idx]
		idx++
		return dead
	})
	return &Result{Deleted: n}, nil
}
