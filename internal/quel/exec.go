package quel

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"intensional/internal/exec"
	"intensional/internal/plan"
	"intensional/internal/relation"
	"intensional/internal/storage"
)

// Counters tallies the planner's access-path decisions across queries.
// One instance is typically shared by every session a snapshot spawns so
// /metrics can report scan behaviour system-wide; the zero value is
// ready to use and all fields are safe for concurrent update.
type Counters struct {
	// FullScans counts access paths that read every row of a relation.
	FullScans atomic.Int64
	// IndexScans counts access paths served by a secondary index.
	IndexScans atomic.Int64
	// IndexFallbacks counts access paths that wanted an index but had to
	// degrade to a full scan — a stale index that could not be rebuilt,
	// a mixed-kind column, or an incomparable probe value. A steadily
	// climbing value means some query is quietly running O(n).
	IndexFallbacks atomic.Int64
}

// IndexCache shares lazily built secondary indexes between sessions.
// Without one, each Session keeps a private cache that dies with it —
// useless in the SQL path, which spins up a fresh session per query.
// Entries are keyed by relation name but validated on every lookup
// against the relation object the caller is actually scanning: the
// index must have been built over that identical object (Index.For —
// pointer identity, which catches a relation replaced under the same
// name on a cache shared across snapshots) and still match its version
// (Index.Fresh). A mis-shared cache therefore degrades to rebuilds
// instead of serving rows from a stale twin.
type IndexCache struct {
	mu sync.Mutex
	m  map[string]*relation.Index // guarded by mu
}

// NewIndexCache creates an empty shared index cache.
func NewIndexCache() *IndexCache {
	return &IndexCache{m: make(map[string]*relation.Index)}
}

// get returns the cached index under key only if it was built over rel
// itself — a name match alone is not proof of identity.
func (c *IndexCache) get(key string, rel *relation.Relation) *relation.Index {
	c.mu.Lock()
	defer c.mu.Unlock()
	ix := c.m[key]
	if ix == nil || !ix.For(rel) {
		return nil
	}
	return ix
}

func (c *IndexCache) put(key string, ix *relation.Index) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = ix
}

// Len reports the number of cached indexes.
func (c *IndexCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Session executes QUEL statements against a catalog. Range declarations
// persist for the life of the session, as in INGRES, and so do the
// secondary indexes the planner builds lazily for selective conditions
// on large relations (rebuilt automatically when the data changes).
type Session struct {
	cat     *storage.Catalog
	ranges  map[string]string // lower(var) → relation name
	indexes map[string]*relation.Index

	cache    *IndexCache // optional shared cache; overrides indexes
	counters *Counters   // optional shared scan counters
	logf     func(format string, args ...any)
}

// indexMinRows is the relation size below which a scan beats building an
// index.
const indexMinRows = 64

// NewSession creates a session over the given catalog.
func NewSession(cat *storage.Catalog) *Session {
	return &Session{
		cat:     cat,
		ranges:  make(map[string]string),
		indexes: make(map[string]*relation.Index),
	}
}

// SetIndexCache makes the session build and look up secondary indexes in
// the given shared cache instead of its private one.
func (s *Session) SetIndexCache(c *IndexCache) { s.cache = c }

// SetCounters wires the session's access-path decisions to shared
// counters.
func (s *Session) SetCounters(c *Counters) { s.counters = c }

// SetLogf installs a logger for planner diagnostics (index fallbacks).
func (s *Session) SetLogf(f func(format string, args ...any)) { s.logf = f }

// indexFor returns a fresh index on the relation's column, building or
// rebuilding as needed. A nil index with an empty reason means indexing
// is simply not worthwhile (small relation); a non-empty reason reports
// a build failure the caller should surface as an index fallback.
func (s *Session) indexFor(rel *relation.Relation, col int) (*relation.Index, string) {
	if rel.Len() < indexMinRows {
		return nil, ""
	}
	key := strings.ToLower(rel.Name()) + "\x00" + rel.Schema().Col(col).Name
	if s.cache != nil {
		if ix := s.cache.get(key, rel); ix != nil && ix.Fresh() {
			return ix, ""
		}
	} else if ix, ok := s.indexes[key]; ok && ix.For(rel) && ix.Fresh() {
		return ix, ""
	}
	ix, err := rel.BuildIndex(rel.Schema().Col(col).Name)
	if err != nil {
		return nil, err.Error()
	}
	if s.cache != nil {
		s.cache.put(key, ix)
	} else {
		s.indexes[key] = ix
	}
	return ix, ""
}

// noteFallback records an index that could not serve a planned access
// path — the silent-degradation case the plannerIndexFallbacks metric
// exists to expose.
func (s *Session) noteFallback(rel, col, reason string) {
	if s.counters != nil {
		s.counters.IndexFallbacks.Add(1)
	}
	if s.logf != nil {
		s.logf("quel: index fallback on %s.%s: %s", rel, col, reason)
	}
}

func (s *Session) countFullScan() {
	if s.counters != nil {
		s.counters.FullScans.Add(1)
	}
}

func (s *Session) countIndexScan() {
	if s.counters != nil {
		s.counters.IndexScans.Add(1)
	}
}

// Result reports the effect of one statement: the retrieved relation
// (for retrieve) and the tuple counts mutated by delete, append, and
// replace.
type Result struct {
	Rel      *relation.Relation
	Deleted  int
	Appended int
	Replaced int
}

// Exec parses and executes one QUEL statement.
func (s *Session) Exec(src string) (*Result, error) {
	return s.ExecContext(context.Background(), src)
}

// ExecContext parses and executes one QUEL statement. The context is
// threaded into the streaming executor for retrieves, which honours
// cancellation at batch boundaries.
func (s *Session) ExecContext(ctx context.Context, src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return s.ExecStmtContext(ctx, st)
}

// ExecStmt executes a parsed statement.
func (s *Session) ExecStmt(st Stmt) (*Result, error) {
	return s.ExecStmtContext(context.Background(), st)
}

// ExecStmtContext executes a parsed statement, threading the context
// into the streaming executor for retrieves. Updates (delete, append,
// replace) run to completion: they mutate catalog relations in place,
// so abandoning one midway would leave a half-applied statement.
func (s *Session) ExecStmtContext(ctx context.Context, st Stmt) (*Result, error) {
	switch st := st.(type) {
	case *RangeStmt:
		if err := s.SetRange(st.Var, st.Rel); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *RetrieveStmt:
		return s.execRetrieve(ctx, st)
	case *DeleteStmt:
		return s.execDelete(st)
	case *AppendStmt:
		return s.execAppend(st)
	case *ReplaceStmt:
		return s.execReplace(st)
	default:
		return nil, fmt.Errorf("quel: unknown statement %T", st)
	}
}

// SetRange binds a range variable to a relation, the programmatic form
// of `range of v is R`.
func (s *Session) SetRange(varName, rel string) error {
	if !s.cat.Has(rel) {
		return fmt.Errorf("quel: range of %s: no relation %q", varName, rel)
	}
	s.ranges[strings.ToLower(varName)] = rel
	return nil
}

// coerce adapts a constant to a column type, parsing bare-identifier
// strings into numbers where the column demands it.
func coerce(v relation.Value, t relation.Type) (relation.Value, error) {
	if v.Conforms(t) {
		return v, nil
	}
	if v.Kind() == relation.KindString {
		return relation.ParseValue(v.Str(), t)
	}
	return relation.Value{}, fmt.Errorf("quel: value %#v does not fit column type %s", v, t)
}

func (s *Session) execAppend(st *AppendStmt) (*Result, error) {
	rel, err := s.cat.Get(st.Rel)
	if err != nil {
		return nil, err
	}
	row := make(relation.Tuple, rel.Schema().Len())
	for i := range row {
		row[i] = relation.Null()
	}
	for _, a := range st.Assign {
		ci, ok := rel.Schema().Index(a.Attr)
		if !ok {
			return nil, fmt.Errorf("quel: append: relation %s has no attribute %q", rel.Name(), a.Attr)
		}
		c, ok := a.Val.(ConstOperand)
		if !ok {
			return nil, fmt.Errorf("quel: append: %s must be assigned a constant", a.Attr)
		}
		v, err := coerce(c.Val, rel.Schema().Col(ci).Type)
		if err != nil {
			return nil, fmt.Errorf("quel: append %s.%s: %w", rel.Name(), a.Attr, err)
		}
		row[ci] = v
	}
	if err := rel.Insert(row); err != nil {
		return nil, err
	}
	return &Result{Appended: 1}, nil
}

func (s *Session) execReplace(st *ReplaceStmt) (*Result, error) {
	p := newPlanner(s)
	slot, err := p.addVar(st.Var)
	if err != nil {
		return nil, err
	}
	if err := p.collectVars(st.Where); err != nil {
		return nil, err
	}
	// Assignment operands may reference range variables too.
	type setter struct {
		col int
		fn  valueFn
	}
	rel := p.rels[slot]
	var setters []setter
	for _, a := range st.Assign {
		ci, ok := rel.Schema().Index(a.Attr)
		if !ok {
			return nil, fmt.Errorf("quel: replace: relation %s has no attribute %q", rel.Name(), a.Attr)
		}
		if col, ok := a.Val.(ColOperand); ok {
			if _, err := p.addVar(col.Col.Var); err != nil {
				return nil, err
			}
		}
		fn, err := p.compileOperand(a.Val)
		if err != nil {
			return nil, err
		}
		setters = append(setters, setter{col: ci, fn: fn})
	}

	var bindings []binding
	if st.Where == nil && len(p.vars) == 1 {
		for i := 0; i < rel.Len(); i++ {
			b := make(binding, 1)
			b[0] = i
			bindings = append(bindings, b)
		}
	} else {
		bindings, err = p.assemble(st.Where)
		if err != nil {
			return nil, err
		}
	}
	touched := map[int]bool{}
	for _, b := range bindings {
		for _, set := range setters {
			v, err := coerce(set.fn(b), rel.Schema().Col(set.col).Type)
			if err != nil {
				return nil, fmt.Errorf("quel: replace %s.%s: %w",
					rel.Name(), rel.Schema().Col(set.col).Name, err)
			}
			if err := rel.Set(b[slot], set.col, v); err != nil {
				return nil, err
			}
		}
		touched[b[slot]] = true
	}
	return &Result{Replaced: len(touched)}, nil
}

// binding assigns one row index per plan variable; -1 marks unbound slots.
type binding []int

// planner resolves variables, compiles predicates, and assembles bindings
// with hash joins where equality conjuncts allow.
type planner struct {
	sess   *Session
	vars   []string
	varIdx map[string]int
	rels   []*relation.Relation
}

func newPlanner(s *Session) *planner {
	return &planner{sess: s, varIdx: make(map[string]int)}
}

// addVar registers a range variable, resolving its relation.
func (p *planner) addVar(v string) (int, error) {
	key := strings.ToLower(v)
	if i, ok := p.varIdx[key]; ok {
		return i, nil
	}
	relName, ok := p.sess.ranges[key]
	if !ok {
		return 0, fmt.Errorf("quel: variable %q has no range declaration", v)
	}
	r, err := p.sess.cat.Get(relName)
	if err != nil {
		return 0, err
	}
	i := len(p.vars)
	p.vars = append(p.vars, v)
	p.varIdx[key] = i
	p.rels = append(p.rels, r)
	return i, nil
}

// collectVars registers every variable appearing in the expression.
func (p *planner) collectVars(e Expr) error {
	switch e := e.(type) {
	case nil:
		return nil
	case *BinExpr:
		for _, o := range []Operand{e.L, e.R} {
			if c, ok := o.(ColOperand); ok {
				if _, err := p.addVar(c.Col.Var); err != nil {
					return err
				}
			}
		}
		return nil
	case *AndExpr:
		for _, t := range e.Terms {
			if err := p.collectVars(t); err != nil {
				return err
			}
		}
		return nil
	case *OrExpr:
		for _, t := range e.Terms {
			if err := p.collectVars(t); err != nil {
				return err
			}
		}
		return nil
	case *NotExpr:
		return p.collectVars(e.Term)
	default:
		return fmt.Errorf("quel: unknown expression %T", e)
	}
}

// colSlot resolves a column reference to (variable slot, attribute index).
func (p *planner) colSlot(c ColRef) (int, int, error) {
	slot, ok := p.varIdx[strings.ToLower(c.Var)]
	if !ok {
		return 0, 0, fmt.Errorf("quel: variable %q has no range declaration", c.Var)
	}
	ai, ok := p.rels[slot].Schema().Index(c.Attr)
	if !ok {
		return 0, 0, fmt.Errorf("quel: relation %s has no attribute %q", p.rels[slot].Name(), c.Attr)
	}
	return slot, ai, nil
}

// compiled evaluates a predicate over a binding.
type compiled func(binding) bool

// compile turns an expression into an executable predicate. All slots the
// expression touches must be bound when it runs.
func (p *planner) compile(e Expr) (compiled, error) {
	switch e := e.(type) {
	case *BinExpr:
		l, err := p.compileOperand(e.L)
		if err != nil {
			return nil, err
		}
		r, err := p.compileOperand(e.R)
		if err != nil {
			return nil, err
		}
		op := e.Op
		return func(b binding) bool {
			c, err := l(b).Compare(r(b))
			if err != nil {
				return false
			}
			switch op {
			case "=":
				return c == 0
			case "!=":
				return c != 0
			case "<":
				return c < 0
			case "<=":
				return c <= 0
			case ">":
				return c > 0
			case ">=":
				return c >= 0
			}
			return false
		}, nil
	case *AndExpr:
		terms := make([]compiled, len(e.Terms))
		for i, t := range e.Terms {
			c, err := p.compile(t)
			if err != nil {
				return nil, err
			}
			terms[i] = c
		}
		return func(b binding) bool {
			for _, t := range terms {
				if !t(b) {
					return false
				}
			}
			return true
		}, nil
	case *OrExpr:
		terms := make([]compiled, len(e.Terms))
		for i, t := range e.Terms {
			c, err := p.compile(t)
			if err != nil {
				return nil, err
			}
			terms[i] = c
		}
		return func(b binding) bool {
			for _, t := range terms {
				if t(b) {
					return true
				}
			}
			return false
		}, nil
	case *NotExpr:
		c, err := p.compile(e.Term)
		if err != nil {
			return nil, err
		}
		return func(b binding) bool { return !c(b) }, nil
	default:
		return nil, fmt.Errorf("quel: unknown expression %T", e)
	}
}

type valueFn func(binding) relation.Value

func (p *planner) compileOperand(o Operand) (valueFn, error) {
	switch o := o.(type) {
	case ColOperand:
		slot, ai, err := p.colSlot(o.Col)
		if err != nil {
			return nil, err
		}
		rel := p.rels[slot]
		return func(b binding) relation.Value { return rel.Row(b[slot])[ai] }, nil
	case ConstOperand:
		v := o.Val
		return func(binding) relation.Value { return v }, nil
	default:
		return nil, fmt.Errorf("quel: unknown operand %T", o)
	}
}

// conjunct classification for planning.
type conjunct struct {
	expr Expr
	// For a BinExpr between two columns or a column and a constant:
	isEq     bool
	lSlot    int // -1 when constant
	lAttr    int
	rSlot    int
	rAttr    int
	slotsIn  map[int]bool // all slots the conjunct touches
	compiled compiled
	// Single-variable "column op constant" selections are index-usable:
	isSel   bool
	selSlot int
	selAttr int
	selOp   string
	selVal  relation.Value
	// implied marks a conjunct synthesized by the semantic optimizer
	// rather than written in the query.
	implied bool
}

// label renders the conjunct for plan display.
func (c *conjunct) label() string {
	l := c.expr.String()
	if c.implied {
		l += " [implied]"
	}
	return l
}

// splitConjuncts flattens the top-level conjunction of e.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*AndExpr); ok {
		var out []Expr
		for _, t := range a.Terms {
			out = append(out, splitConjuncts(t)...)
		}
		return out
	}
	return []Expr{e}
}

func (p *planner) analyse(e Expr) (*conjunct, error) {
	c := &conjunct{expr: e, lSlot: -1, rSlot: -1, slotsIn: map[int]bool{}}
	var walk func(Expr) error
	walk = func(e Expr) error {
		switch e := e.(type) {
		case *BinExpr:
			for _, o := range []Operand{e.L, e.R} {
				if col, ok := o.(ColOperand); ok {
					slot, _, err := p.colSlot(col.Col)
					if err != nil {
						return err
					}
					c.slotsIn[slot] = true
				}
			}
		case *AndExpr:
			for _, t := range e.Terms {
				if err := walk(t); err != nil {
					return err
				}
			}
		case *OrExpr:
			for _, t := range e.Terms {
				if err := walk(t); err != nil {
					return err
				}
			}
		case *NotExpr:
			return walk(e.Term)
		}
		return nil
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	if b, ok := e.(*BinExpr); ok {
		c.implied = b.Implied
		lc, lok := b.L.(ColOperand)
		rc, rok := b.R.(ColOperand)
		lv, lIsConst := b.L.(ConstOperand)
		rv, rIsConst := b.R.(ConstOperand)
		switch {
		case b.Op == "=" && lok && rok:
			ls, la, err := p.colSlot(lc.Col)
			if err != nil {
				return nil, err
			}
			rs, ra, err := p.colSlot(rc.Col)
			if err != nil {
				return nil, err
			}
			if ls != rs {
				c.isEq = true
				c.lSlot, c.lAttr, c.rSlot, c.rAttr = ls, la, rs, ra
			}
		case lok && rIsConst:
			slot, attr, err := p.colSlot(lc.Col)
			if err != nil {
				return nil, err
			}
			c.isSel, c.selSlot, c.selAttr, c.selOp, c.selVal = true, slot, attr, b.Op, rv.Val
		case rok && lIsConst:
			slot, attr, err := p.colSlot(rc.Col)
			if err != nil {
				return nil, err
			}
			c.isSel, c.selSlot, c.selAttr, c.selOp, c.selVal = true, slot, attr, relation.FlipOp(b.Op), lv.Val
		}
	}
	comp, err := p.compile(e)
	if err != nil {
		return nil, err
	}
	c.compiled = comp
	return c, nil
}

// accessPath is the planned way to produce one range variable's
// candidate rows: a full scan or an index range scan on the chosen
// selection, plus the remaining pushed-down single-variable predicates.
type accessPath struct {
	slot  int
	preds []*conjunct // all pushed-down single-variable conjuncts
	// sel/ix, when set, serve the initial candidates from an index; sel
	// is always one of preds (its predicate re-checks cost one compare).
	sel *conjunct
	ix  *relation.Index
	// fallback records why an index-usable selection could not get an
	// index at plan time (build failure on a mixed-kind column, count
	// error); empty when an index was chosen or none was applicable.
	fallback string
	est      int
}

// joinEdge is one equality conjunct between the bound prefix and the
// variable being joined.
type joinEdge struct{ boundSlot, boundAttr, nextAttr int }

// joinStep binds one more variable: by hash join over its edges, or by
// cross product when no equality links it to the bound prefix.
type joinStep struct {
	next  int
	edges []joinEdge
	on    []string // rendered edge conditions, for plan display
	est   int      // estimated prefix cardinality after this step
}

// scanPlan is the planned qualification evaluation: per-variable access
// paths, a join order, and a residual filter. It is built once and may
// run many times (prepared statements re-run against the same snapshot).
type scanPlan struct {
	p        *planner
	paths    []accessPath // one per slot, in slot order
	steps    []joinStep   // join order after seeding with slot 0
	residual []*conjunct
	est      int // estimated binding count after the residual filter
}

// selectivity scales a cardinality estimate by the heuristic 1/3 per
// extra predicate, holding non-zero estimates above zero.
func selectivity(est, preds int) int {
	for i := 0; i < preds && est > 1; i++ {
		est = (est + 2) / 3
	}
	return est
}

// plan classifies the qualification's conjuncts and chooses access paths
// and a join order. Access paths are cost-based: every index-usable
// selection on a slot is ranked by its exact index range count, and the
// narrowest wins — not the first one that happens to have an index.
func (p *planner) plan(where Expr) (*scanPlan, error) {
	sp := &scanPlan{p: p}
	n := len(p.vars)
	if n == 0 {
		return sp, nil
	}
	var conjs []*conjunct
	for _, e := range splitConjuncts(where) {
		c, err := p.analyse(e)
		if err != nil {
			return nil, err
		}
		conjs = append(conjs, c)
	}
	used := make([]bool, len(conjs))

	// Push down single-variable conjuncts and pick each slot's access path.
	sp.paths = make([]accessPath, n)
	for slot := 0; slot < n; slot++ {
		ap := &sp.paths[slot]
		ap.slot = slot
		var sels []*conjunct
		for ci, c := range conjs {
			if len(c.slotsIn) == 1 && c.slotsIn[slot] && !c.isEq {
				ap.preds = append(ap.preds, c)
				used[ci] = true
				if c.isSel && c.selSlot == slot {
					sels = append(sels, c)
				}
			}
		}
		rel := p.rels[slot]
		best := -1
		failCol := ""
		for _, c := range sels {
			col := rel.Schema().Col(c.selAttr).Name
			ix, reason := p.sess.indexFor(rel, c.selAttr)
			if ix == nil {
				if reason != "" && ap.fallback == "" {
					ap.fallback, failCol = reason, col
				}
				continue
			}
			cnt, err := ix.Count(c.selOp, c.selVal)
			if err != nil {
				if ap.fallback == "" {
					ap.fallback, failCol = err.Error(), col
				}
				continue
			}
			if best < 0 || cnt < best {
				best, ap.sel, ap.ix = cnt, c, ix
			}
		}
		if ap.ix != nil {
			// An index was chosen; any earlier candidate's failure is moot.
			ap.fallback = ""
			ap.est = selectivity(best, len(ap.preds)-1)
		} else {
			if ap.fallback != "" {
				p.sess.noteFallback(rel.Name(), failCol, ap.fallback)
			}
			ap.est = selectivity(rel.Len(), len(ap.preds))
		}
	}

	// Greedy join order: always extend the bound prefix with a variable
	// reachable by an equality conjunct, falling back to a cross product.
	bound := make([]bool, n)
	bound[0] = true
	cur := sp.paths[0].est
	for nBound := 1; nBound < n; nBound++ {
		next := -1
		for slot := 0; slot < n && next == -1; slot++ {
			if bound[slot] {
				continue
			}
			for ci, c := range conjs {
				if used[ci] || !c.isEq {
					continue
				}
				if (c.lSlot == slot && bound[c.rSlot]) || (c.rSlot == slot && bound[c.lSlot]) {
					next = slot
					break
				}
			}
		}
		if next == -1 {
			// No join edge: cross product with the first unbound variable.
			for slot := 0; slot < n; slot++ {
				if !bound[slot] {
					next = slot
					break
				}
			}
			est := cur * sp.paths[next].est
			sp.steps = append(sp.steps, joinStep{next: next, est: est})
			bound[next] = true
			cur = est
			continue
		}
		step := joinStep{next: next}
		for ci, c := range conjs {
			if used[ci] || !c.isEq {
				continue
			}
			switch {
			case c.lSlot == next && bound[c.rSlot]:
				step.edges = append(step.edges, joinEdge{boundSlot: c.rSlot, boundAttr: c.rAttr, nextAttr: c.lAttr})
				step.on = append(step.on, c.expr.String())
				used[ci] = true
			case c.rSlot == next && bound[c.lSlot]:
				step.edges = append(step.edges, joinEdge{boundSlot: c.lSlot, boundAttr: c.lAttr, nextAttr: c.rAttr})
				step.on = append(step.on, c.expr.String())
				used[ci] = true
			}
		}
		// Equi-join estimate: the smaller input bounds the matches.
		step.est = cur
		if sp.paths[next].est < step.est {
			step.est = sp.paths[next].est
		}
		sp.steps = append(sp.steps, step)
		bound[next] = true
		cur = step.est
	}

	// Residual filter: every conjunct not yet consumed.
	for ci, c := range conjs {
		if !used[ci] {
			sp.residual = append(sp.residual, c)
		}
	}
	sp.est = selectivity(cur, len(sp.residual))
	return sp, nil
}

// scan produces one access path's candidate rows. An index chosen at
// plan time serves the initial candidates; if it has gone stale since
// (or the probe turns out incomparable), the path is rebuilt once and
// otherwise degrades — loudly — to a full scan.
func (sp *scanPlan) scan(ap *accessPath) []int {
	p := sp.p
	rel := p.rels[ap.slot]
	probe := make(binding, len(p.vars))
	for i := range probe {
		probe[i] = -1
	}
	passes := func(i int) bool {
		probe[ap.slot] = i
		for _, c := range ap.preds {
			if !c.compiled(probe) {
				return false
			}
		}
		return true
	}
	var out []int
	if ap.ix != nil {
		ix := ap.ix
		rows, err := ix.Lookup(ap.sel.selOp, ap.sel.selVal)
		if err != nil {
			// Stale index: rebuild and retry once before degrading.
			if ix2, _ := p.sess.indexFor(rel, ap.sel.selAttr); ix2 != nil {
				rows, err = ix2.Lookup(ap.sel.selOp, ap.sel.selVal)
			}
		}
		if err == nil {
			p.sess.countIndexScan()
			sort.Ints(rows) // restore row order for stable results
			for _, i := range rows {
				if passes(i) {
					out = append(out, i)
				}
			}
			return out
		}
		p.sess.noteFallback(rel.Name(), rel.Schema().Col(ap.sel.selAttr).Name, err.Error())
	}
	p.sess.countFullScan()
	for i := 0; i < rel.Len(); i++ {
		if passes(i) {
			out = append(out, i)
		}
	}
	return out
}

// run executes the plan: per-slot candidate scans, then the planned join
// order, then the residual filter.
func (sp *scanPlan) run() ([]binding, error) {
	p := sp.p
	n := len(p.vars)
	if n == 0 {
		return []binding{{}}, nil
	}
	cand := make([][]int, n)
	for slot := range sp.paths {
		cand[slot] = sp.scan(&sp.paths[slot])
	}

	// Seed with variable 0.
	bindings := make([]binding, 0, len(cand[0]))
	for _, i := range cand[0] {
		b := make(binding, n)
		for j := range b {
			b[j] = -1
		}
		b[0] = i
		bindings = append(bindings, b)
	}

	for _, step := range sp.steps {
		next := step.next
		if len(step.edges) == 0 {
			var out []binding
			for _, b := range bindings {
				for _, i := range cand[next] {
					nb := append(binding(nil), b...)
					nb[next] = i
					out = append(out, nb)
				}
			}
			bindings = out
			continue
		}
		// Hash next's candidate rows on its side of the edges.
		rel := p.rels[next]
		table := make(map[string][]int, len(cand[next]))
		for _, i := range cand[next] {
			var key strings.Builder
			for _, e := range step.edges {
				key.WriteString(rel.Row(i)[e.nextAttr].Key())
				key.WriteByte('\x1f')
			}
			table[key.String()] = append(table[key.String()], i)
		}
		var out []binding
		for _, b := range bindings {
			var key strings.Builder
			for _, e := range step.edges {
				key.WriteString(p.rels[e.boundSlot].Row(b[e.boundSlot])[e.boundAttr].Key())
				key.WriteByte('\x1f')
			}
			for _, i := range table[key.String()] {
				nb := append(binding(nil), b...)
				nb[next] = i
				out = append(out, nb)
			}
		}
		bindings = out
	}

	if len(sp.residual) > 0 {
		kept := bindings[:0]
		for _, b := range bindings {
			ok := true
			for _, c := range sp.residual {
				if !c.compiled(b) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, b)
			}
		}
		bindings = kept
	}
	return bindings, nil
}

// assemble plans and runs the qualification in one step — the
// single-shot path delete and replace use. Retrieve goes through
// PlanRetrieve so the plan can be described and re-run.
func (p *planner) assemble(where Expr) ([]binding, error) {
	sp, err := p.plan(where)
	if err != nil {
		return nil, err
	}
	return sp.run()
}

// mustCount re-derives the index range count for display; falls back to
// the relation size if the index went stale since planning.
func mustCount(ap *accessPath) int {
	if n, err := ap.ix.Count(ap.sel.selOp, ap.sel.selVal); err == nil {
		return n
	}
	return ap.ix.Len()
}

// planSchema converts a relation schema to plan columns.
func planSchema(s *relation.Schema) []plan.Column {
	cols := make([]plan.Column, s.Len())
	for i := 0; i < s.Len(); i++ {
		c := s.Col(i)
		cols[i] = plan.Column{Name: c.Name, Type: c.Type.String()}
	}
	return cols
}

// targetInfo maps one projection target to its (slot, attribute) source
// and resolved output name.
type targetInfo struct {
	slot, attr int
	name       string
}

// resolveTargets resolves the statement's projection list against the
// planner's variables and builds the output schema. It touches no rows.
func resolveTargets(p *planner, st *RetrieveStmt) ([]targetInfo, *relation.Schema, error) {
	infos := make([]targetInfo, len(st.Target))
	usedNames := map[string]bool{}
	for i, t := range st.Target {
		slot, ai, err := p.colSlot(t.Col)
		if err != nil {
			return nil, nil, err
		}
		name := t.As
		if name == "" {
			name = p.rels[slot].Schema().Col(ai).Name
		}
		if usedNames[strings.ToLower(name)] {
			name = t.Col.Var + "." + name
		}
		for usedNames[strings.ToLower(name)] {
			name += "_"
		}
		usedNames[strings.ToLower(name)] = true
		infos[i] = targetInfo{slot: slot, attr: ai, name: name}
	}
	cols := make([]relation.Column, len(infos))
	for i, info := range infos {
		cols[i] = relation.Column{
			Name: info.name,
			Type: p.rels[info.slot].Schema().Col(info.attr).Type,
		}
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, nil, err
	}
	return infos, schema, nil
}

// bindVars registers every range variable the statement mentions.
func (p *planner) bindVars(st *RetrieveStmt) error {
	for _, t := range st.Target {
		if _, err := p.addVar(t.Col.Var); err != nil {
			return err
		}
	}
	if err := p.collectVars(st.Where); err != nil {
		return err
	}
	for _, c := range st.SortBy {
		if _, err := p.addVar(c.Col.Var); err != nil {
			return err
		}
	}
	return nil
}

// RetrieveSchema resolves the statement's output schema — names and
// types of the result columns — without planning access paths or
// touching any rows. It is the cheap half of PlanRetrieve, used when the
// semantic optimizer has already proven the result empty.
func (s *Session) RetrieveSchema(st *RetrieveStmt) (*relation.Schema, error) {
	p := newPlanner(s)
	if err := p.bindVars(st); err != nil {
		return nil, err
	}
	_, schema, err := resolveTargets(p, st)
	return schema, err
}

// RetrievePlan is a prepared retrieve: variables resolved, targets and
// sort keys checked, access paths and join order chosen. Run may be
// called any number of times; each run re-scans the underlying relations
// through the plan. A RetrievePlan is only valid while the catalog
// snapshot it was planned against is — callers caching plans must key
// them by snapshot version.
type RetrievePlan struct {
	sess   *Session
	st     *RetrieveStmt
	p      *planner
	sp     *scanPlan
	infos  []targetInfo
	schema *relation.Schema
	keys   []relation.SortKey
	ss     *streamSpec // lowered streaming pipeline (see stream.go)
}

// Schema returns the plan's output schema.
func (rp *RetrievePlan) Schema() *relation.Schema { return rp.schema }

// PlanRetrieve prepares a retrieve statement: resolves every variable,
// target and sort key, chooses access paths cost-based, and fixes the
// join order.
func (s *Session) PlanRetrieve(st *RetrieveStmt) (*RetrievePlan, error) {
	p := newPlanner(s)
	if err := p.bindVars(st); err != nil {
		return nil, err
	}
	infos, schema, err := resolveTargets(p, st)
	if err != nil {
		return nil, err
	}
	var keys []relation.SortKey
	for _, item := range st.SortBy {
		// Map the sort column to an output column: prefer a target on
		// the same variable+attribute.
		found := ""
		slot, ai, err := p.colSlot(item.Col)
		if err != nil {
			return nil, err
		}
		for _, info := range infos {
			if info.slot == slot && info.attr == ai {
				found = info.name
				break
			}
		}
		if found == "" {
			return nil, fmt.Errorf("quel: sort by %s: column is not retrieved", item.Col)
		}
		keys = append(keys, relation.SortKey{Column: found, Desc: item.Desc})
	}
	sp, err := p.plan(st.Where)
	if err != nil {
		return nil, err
	}
	rp := &RetrievePlan{sess: s, st: st, p: p, sp: sp, infos: infos, schema: schema, keys: keys}
	if err := rp.buildStream(); err != nil {
		return nil, err
	}
	return rp, nil
}

// Describe renders the prepared retrieve as a typed plan tree — the
// exact node objects the streaming operators execute, so the plan shown
// cannot drift from the plan that runs.
func (rp *RetrievePlan) Describe() plan.Node {
	return rp.ss.root()
}

// Stream returns a fresh single-use operator tree for one execution of
// the plan. The aggregate path wraps it; everyone else should call Run
// or RunContext.
func (rp *RetrievePlan) Stream() exec.Operator {
	return rp.ss.instantiate()
}

// Run executes the prepared retrieve through the streaming pipeline.
func (rp *RetrievePlan) Run() (*Result, error) {
	return rp.RunContext(context.Background())
}

// RunContext executes the prepared retrieve through the streaming
// operator pipeline, honouring cancellation at batch boundaries. Each
// call instantiates a fresh operator tree, so concurrent runs of one
// prepared plan are safe.
func (rp *RetrievePlan) RunContext(ctx context.Context) (*Result, error) {
	rows, err := exec.Collect(ctx, rp.ss.instantiate(), rp.sp.est)
	if err != nil {
		return nil, err
	}
	name := rp.st.Into
	if name == "" {
		name = "result"
	}
	out := relation.FromRows(name, rp.schema, rows)
	if rp.st.Into != "" {
		if rp.sess.cat.Has(rp.st.Into) {
			return nil, fmt.Errorf("quel: retrieve into %s: relation already exists", rp.st.Into)
		}
		rp.sess.cat.Put(out)
	}
	return &Result{Rel: out}, nil
}

// RunMaterialized executes the prepared retrieve through the legacy
// binding-at-a-time materializing path. It is retained as the reference
// implementation the streaming pipeline is differentially tested and
// benchmarked against.
func (rp *RetrievePlan) RunMaterialized() (*Result, error) {
	bindings, err := rp.sp.run()
	if err != nil {
		return nil, err
	}
	name := rp.st.Into
	if name == "" {
		name = "result"
	}
	out := relation.New(name, rp.schema)
	for _, b := range bindings {
		row := make(relation.Tuple, len(rp.infos))
		for i, info := range rp.infos {
			row[i] = rp.p.rels[info.slot].Row(b[info.slot])[info.attr]
		}
		if err := out.Insert(row); err != nil {
			return nil, err
		}
	}
	if rp.st.Unique {
		out = out.Unique()
	}
	if len(rp.keys) > 0 {
		out, err = out.Sort(rp.keys...)
		if err != nil {
			return nil, err
		}
	}
	if rp.st.Into != "" {
		if rp.sess.cat.Has(rp.st.Into) {
			return nil, fmt.Errorf("quel: retrieve into %s: relation already exists", rp.st.Into)
		}
		rp.sess.cat.Put(out)
	}
	return &Result{Rel: out}, nil
}

func (s *Session) execRetrieve(ctx context.Context, st *RetrieveStmt) (*Result, error) {
	rp, err := s.PlanRetrieve(st)
	if err != nil {
		return nil, err
	}
	return rp.RunContext(ctx)
}

func (s *Session) execDelete(st *DeleteStmt) (*Result, error) {
	p := newPlanner(s)
	slot, err := p.addVar(st.Var)
	if err != nil {
		return nil, err
	}
	if err := p.collectVars(st.Where); err != nil {
		return nil, err
	}
	if st.Where == nil {
		rel := p.rels[slot]
		n := rel.Delete(func(relation.Tuple) bool { return true })
		return &Result{Deleted: n}, nil
	}
	bindings, err := p.assemble(st.Where)
	if err != nil {
		return nil, err
	}
	// Existential semantics: a target tuple dies if any binding includes it.
	doomed := make(map[int]bool, len(bindings))
	for _, b := range bindings {
		doomed[b[slot]] = true
	}
	rel := p.rels[slot]
	idx := 0
	n := rel.Delete(func(relation.Tuple) bool {
		dead := doomed[idx]
		idx++
		return dead
	})
	return &Result{Deleted: n}, nil
}
