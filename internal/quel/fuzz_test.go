package quel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"intensional/internal/relation"
	"intensional/internal/storage"
)

// TestExecNeverPanicsProperty feeds random statement soup to the full
// session (parse + plan + execute): errors are fine, panics are not.
func TestExecNeverPanicsProperty(t *testing.T) {
	words := []string{
		"range", "of", "is", "retrieve", "into", "unique", "where", "sort", "by",
		"delete", "append", "to", "replace", "and", "or", "not",
		"r", "s", "REL", "X", "Y", "(", ")", ",", ".", "=", "!=", "<", "<=",
		">", ">=", "1", "2.5", `"v"`, "S",
	}
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rr := rand.New(rand.NewSource(seed))
		cat := storage.NewCatalog()
		rel := relation.New("REL", relation.MustSchema(
			relation.Column{Name: "X", Type: relation.TInt},
			relation.Column{Name: "Y", Type: relation.TString},
		))
		rel.MustInsert(relation.Int(1), relation.String("a"))
		cat.Put(rel)
		sess := NewSession(cat)
		_, _ = sess.Exec("range of r is REL")
		for stmt := 0; stmt < 3; stmt++ {
			n := rr.Intn(20)
			src := ""
			for i := 0; i < n; i++ {
				src += words[rr.Intn(len(words))] + " "
			}
			_, _ = sess.Exec(src)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}
