package quel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"intensional/internal/relation"
	"intensional/internal/storage"
)

// TestExecNeverPanicsProperty feeds random statement soup to the full
// session (parse + plan + execute): errors are fine, panics are not.
func TestExecNeverPanicsProperty(t *testing.T) {
	words := []string{
		"range", "of", "is", "retrieve", "into", "unique", "where", "sort", "by",
		"delete", "append", "to", "replace", "and", "or", "not",
		"r", "s", "REL", "X", "Y", "(", ")", ",", ".", "=", "!=", "<", "<=",
		">", ">=", "1", "2.5", `"v"`, "S",
	}
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rr := rand.New(rand.NewSource(seed))
		cat := storage.NewCatalog()
		rel := relation.New("REL", relation.MustSchema(
			relation.Column{Name: "X", Type: relation.TInt},
			relation.Column{Name: "Y", Type: relation.TString},
		))
		rel.MustInsert(relation.Int(1), relation.String("a"))
		cat.Put(rel)
		sess := NewSession(cat)
		_, _ = sess.Exec("range of r is REL")
		for stmt := 0; stmt < 3; stmt++ {
			n := rr.Intn(20)
			src := ""
			for i := 0; i < n; i++ {
				src += words[rr.Intn(len(words))] + " "
			}
			_, _ = sess.Exec(src)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// FuzzExec drives the full pipeline — lex, parse, plan, execute —
// with arbitrary statement text against a one-row catalog. The seed
// corpus in testdata/fuzz/FuzzExec covers every statement form the
// grammar accepts (range/retrieve/append/replace/delete) plus known
// near-misses; plain `go test` replays it as regression cases, and
// `go test -fuzz=FuzzExec` mutates from it.
func FuzzExec(f *testing.F) {
	for _, seed := range []string{
		"range of s is REL",
		"retrieve (r.X, r.Y) where r.X = 1",
		`retrieve into T unique (r.Y, r.X) sort by r.Y`,
		`retrieve (r.X) where not (r.Y = "a") and r.X >= 1 or r.X != 2`,
		`append to REL (X = 2, Y = "b")`,
		`replace r (Y = "c") where r.X = 1`,
		"delete r where r.X < 2",
		"retrieve (r.X",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip("oversized input")
		}
		cat := storage.NewCatalog()
		rel := relation.New("REL", relation.MustSchema(
			relation.Column{Name: "X", Type: relation.TInt},
			relation.Column{Name: "Y", Type: relation.TString},
		))
		rel.MustInsert(relation.Int(1), relation.String("a"))
		cat.Put(rel)
		sess := NewSession(cat)
		if _, err := sess.Exec("range of r is REL"); err != nil {
			t.Fatalf("seed range statement: %v", err)
		}
		// Errors are expected for almost all inputs; panics are the bug.
		_, _ = sess.Exec(src)
	})
}
