package quel

import (
	"fmt"
	"strconv"
	"strings"

	"intensional/internal/relation"
)

type parser struct {
	toks []token
	i    int
}

// Parse parses a single QUEL statement.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("quel: unexpected %s after statement", p.cur())
	}
	return stmt, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("quel: expected %q, got %s", kw, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("quel: expected identifier, got %s", t)
	}
	p.i++
	return t.text, nil
}

func (p *parser) expect(k tokenKind, what string) error {
	if p.cur().kind != k {
		return fmt.Errorf("quel: expected %s, got %s", what, p.cur())
	}
	p.i++
	return nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.keyword("range"):
		return p.parseRange()
	case p.keyword("retrieve"):
		return p.parseRetrieve()
	case p.keyword("delete"):
		return p.parseDelete()
	case p.keyword("append"):
		return p.parseAppend()
	case p.keyword("replace"):
		return p.parseReplace()
	default:
		return nil, fmt.Errorf("quel: expected range, retrieve, append, replace, or delete; got %s", p.cur())
	}
}

func (p *parser) parseAssignList() ([]Assign, error) {
	if err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	var out []Assign
	for {
		attr, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if !(p.cur().kind == tokOp && p.cur().text == "=") {
			return nil, fmt.Errorf("quel: expected = after %s, got %s", attr, p.cur())
		}
		p.i++
		val, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		out = append(out, Assign{Attr: attr, Val: val})
		if p.cur().kind == tokComma {
			p.i++
			continue
		}
		break
	}
	if err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseAppend() (Stmt, error) {
	if err := p.expectKeyword("to"); err != nil {
		return nil, err
	}
	rel, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	assigns, err := p.parseAssignList()
	if err != nil {
		return nil, err
	}
	return &AppendStmt{Rel: rel, Assign: assigns}, nil
}

func (p *parser) parseReplace() (Stmt, error) {
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	assigns, err := p.parseAssignList()
	if err != nil {
		return nil, err
	}
	st := &ReplaceStmt{Var: v, Assign: assigns}
	if p.keyword("where") {
		e, err := p.parseQual()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseRange() (Stmt, error) {
	if err := p.expectKeyword("of"); err != nil {
		return nil, err
	}
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("is"); err != nil {
		return nil, err
	}
	rel, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &RangeStmt{Var: v, Rel: rel}, nil
}

func (p *parser) parseRetrieve() (Stmt, error) {
	st := &RetrieveStmt{}
	if p.keyword("into") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Into = name
	}
	if p.keyword("unique") {
		st.Unique = true
	}
	if err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	for {
		t, err := p.parseTarget()
		if err != nil {
			return nil, err
		}
		st.Target = append(st.Target, t)
		if p.cur().kind == tokComma {
			p.i++
			continue
		}
		break
	}
	if err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	if p.keyword("where") {
		e, err := p.parseQual()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.keyword("sort") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			item := SortItem{Col: c}
			if p.keyword("desc") {
				item.Desc = true
			} else {
				p.keyword("asc")
			}
			st.SortBy = append(st.SortBy, item)
			if p.cur().kind == tokComma {
				p.i++
				continue
			}
			break
		}
	}
	return st, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Var: v}
	if p.keyword("where") {
		e, err := p.parseQual()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// parseTarget parses "r.attr" or "name = r.attr".
func (p *parser) parseTarget() (Target, error) {
	// Lookahead: ident '=' means a rename; ident '.' means a column ref.
	if p.cur().kind == tokIdent && p.toks[p.i+1].kind == tokOp && p.toks[p.i+1].text == "=" {
		name := p.next().text
		p.i++ // consume '='
		c, err := p.parseColRef()
		if err != nil {
			return Target{}, err
		}
		return Target{As: name, Col: c}, nil
	}
	c, err := p.parseColRef()
	if err != nil {
		return Target{}, err
	}
	return Target{Col: c}, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	v, err := p.expectIdent()
	if err != nil {
		return ColRef{}, err
	}
	if err := p.expect(tokDot, "."); err != nil {
		return ColRef{}, err
	}
	a, err := p.expectIdent()
	if err != nil {
		return ColRef{}, err
	}
	return ColRef{Var: v, Attr: a}, nil
}

// parseQual parses a qualification with precedence not > and > or.
func (p *parser) parseQual() (Expr, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (Expr, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for p.keyword("or") {
		t, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return first, nil
	}
	return &OrExpr{Terms: terms}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for p.keyword("and") {
		t, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return first, nil
	}
	return &AndExpr{Terms: terms}, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.keyword("not") {
		t, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Term: t}, nil
	}
	if p.cur().kind == tokLParen {
		p.i++
		e, err := p.parseQual()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind != tokOp {
		return nil, fmt.Errorf("quel: expected comparison operator, got %s", t)
	}
	p.i++
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &BinExpr{Op: t.text, L: l, R: r}, nil
}

func (p *parser) parseOperand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		if p.toks[p.i+1].kind == tokDot {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			return ColOperand{Col: c}, nil
		}
		// A bare identifier is a string constant (the paper writes
		// unquoted constants such as BQS-04 in qualifications).
		p.i++
		return ConstOperand{Val: relation.String(t.text)}, nil
	case tokString:
		p.i++
		return ConstOperand{Val: relation.String(t.text)}, nil
	case tokNumber:
		p.i++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("quel: bad number %q: %w", t.text, err)
			}
			return ConstOperand{Val: relation.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("quel: bad number %q: %w", t.text, err)
		}
		return ConstOperand{Val: relation.Int(n)}, nil
	default:
		return nil, fmt.Errorf("quel: expected operand, got %s", t)
	}
}
