package quel

import (
	"testing"

	"intensional/internal/relation"
	"intensional/internal/storage"
)

func dmlCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	r, err := cat.Create("EMP", relation.MustSchema(
		relation.Column{Name: "Id", Type: relation.TInt},
		relation.Column{Name: "Name", Type: relation.TString},
		relation.Column{Name: "Age", Type: relation.TInt},
		relation.Column{Name: "Dept", Type: relation.TString},
	))
	if err != nil {
		t.Fatal(err)
	}
	r.MustInsert(relation.Int(1), relation.String("Ann"), relation.Int(30), relation.String("eng"))
	r.MustInsert(relation.Int(2), relation.String("Bob"), relation.Int(45), relation.String("ops"))
	return cat
}

func TestAppend(t *testing.T) {
	cat := dmlCatalog(t)
	s := NewSession(cat)
	res := mustExec(t, s, `append to EMP (Id = 3, Name = "Carol", Age = 28, Dept = eng)`)
	if res.Appended != 1 {
		t.Fatalf("appended = %d", res.Appended)
	}
	r, _ := cat.Get("EMP")
	if r.Len() != 3 {
		t.Fatalf("rows = %d", r.Len())
	}
	row := r.Row(2)
	if row[1].Str() != "Carol" || row[2].Int64() != 28 || row[3].Str() != "eng" {
		t.Errorf("appended row = %v", row)
	}
}

func TestAppendPartialAssignsNull(t *testing.T) {
	cat := dmlCatalog(t)
	s := NewSession(cat)
	mustExec(t, s, `append to EMP (Id = 9)`)
	r, _ := cat.Get("EMP")
	row := r.Row(2)
	if !row[1].IsNull() || !row[2].IsNull() {
		t.Errorf("unassigned columns should be null: %v", row)
	}
}

func TestAppendCoercesBareNumbers(t *testing.T) {
	cat := dmlCatalog(t)
	s := NewSession(cat)
	// A quoted number still coerces into an int column.
	mustExec(t, s, `append to EMP (Id = "7", Age = 50)`)
	r, _ := cat.Get("EMP")
	if r.Row(2)[0].Int64() != 7 {
		t.Errorf("coerced id = %v", r.Row(2)[0])
	}
}

func TestAppendErrors(t *testing.T) {
	s := NewSession(dmlCatalog(t))
	bad := []string{
		`append to NOPE (Id = 1)`,
		`append to EMP (Nope = 1)`,
		`append to EMP (Id = xyz)`,  // unparseable for int column
		`append to EMP (Id = e.Id)`, // column operand without context
		`append to EMP Id = 1`,      // missing parens
		`append EMP (Id = 1)`,       // missing "to"
		`append to EMP (Id 1)`,      // missing =
	}
	for _, src := range bad {
		if _, err := s.Exec(src); err == nil {
			t.Errorf("Exec(%q): expected error", src)
		}
	}
}

func TestReplaceQualified(t *testing.T) {
	cat := dmlCatalog(t)
	s := NewSession(cat)
	mustExec(t, s, "range of e is EMP")
	res := mustExec(t, s, `replace e (Dept = "platform") where e.Dept = "eng"`)
	if res.Replaced != 1 {
		t.Fatalf("replaced = %d", res.Replaced)
	}
	r, _ := cat.Get("EMP")
	if r.Row(0)[3].Str() != "platform" || r.Row(1)[3].Str() != "ops" {
		t.Errorf("rows = %v / %v", r.Row(0), r.Row(1))
	}
}

func TestReplaceUnqualifiedTouchesAll(t *testing.T) {
	cat := dmlCatalog(t)
	s := NewSession(cat)
	mustExec(t, s, "range of e is EMP")
	res := mustExec(t, s, `replace e (Age = 21)`)
	if res.Replaced != 2 {
		t.Fatalf("replaced = %d", res.Replaced)
	}
	r, _ := cat.Get("EMP")
	for _, row := range r.Rows() {
		if row[2].Int64() != 21 {
			t.Errorf("row = %v", row)
		}
	}
}

func TestReplaceFromOtherVariable(t *testing.T) {
	cat := dmlCatalog(t)
	grades, err := cat.Create("GRADES", relation.MustSchema(
		relation.Column{Name: "Dept", Type: relation.TString},
		relation.Column{Name: "Level", Type: relation.TInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	grades.MustInsert(relation.String("eng"), relation.Int(5))
	grades.MustInsert(relation.String("ops"), relation.Int(3))

	s := NewSession(cat)
	mustExec(t, s, "range of e is EMP")
	mustExec(t, s, "range of g is GRADES")
	// Copy each employee's department level into Age (a contrived but
	// structural cross-variable update).
	res := mustExec(t, s, `replace e (Age = g.Level) where e.Dept = g.Dept`)
	if res.Replaced != 2 {
		t.Fatalf("replaced = %d", res.Replaced)
	}
	r, _ := cat.Get("EMP")
	if r.Row(0)[2].Int64() != 5 || r.Row(1)[2].Int64() != 3 {
		t.Errorf("rows = %v / %v", r.Row(0), r.Row(1))
	}
}

func TestReplaceErrors(t *testing.T) {
	s := NewSession(dmlCatalog(t))
	mustExec(t, s, "range of e is EMP")
	bad := []string{
		`replace x (Age = 1)`,            // undeclared variable
		`replace e (Nope = 1)`,           // unknown attribute
		`replace e (Age = "notanumber")`, // uncoercible
		`replace e Age = 1`,              // missing parens
	}
	for _, src := range bad {
		if _, err := s.Exec(src); err == nil {
			t.Errorf("Exec(%q): expected error", src)
		}
	}
}

func TestRelationSet(t *testing.T) {
	r := relation.New("R", relation.MustSchema(
		relation.Column{Name: "A", Type: relation.TInt},
	))
	r.MustInsert(relation.Int(1))
	if err := r.Set(0, 0, relation.Int(2)); err != nil {
		t.Fatal(err)
	}
	if r.Row(0)[0].Int64() != 2 {
		t.Errorf("row = %v", r.Row(0))
	}
	if err := r.Set(5, 0, relation.Int(1)); err == nil {
		t.Error("row out of range should error")
	}
	if err := r.Set(0, 5, relation.Int(1)); err == nil {
		t.Error("column out of range should error")
	}
	if err := r.Set(0, 0, relation.String("x")); err == nil {
		t.Error("kind mismatch should error")
	}
}
