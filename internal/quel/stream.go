package quel

import (
	"fmt"

	"intensional/internal/exec"
	"intensional/internal/plan"
	"intensional/internal/relation"
)

// This file lowers a scanPlan into the streaming operator pipeline. The
// lowering happens once, at PlanRetrieve time: every plan.Plan node is
// built here, wired into the tree Describe returns, and kept on the
// spec that constructs the matching exec operator — so the plan EXPLAIN
// shows and the tree that runs cannot drift. Each Run instantiates a
// fresh single-use operator tree from the spec (prepared statements
// execute concurrently; specs are immutable after planning).

// rowValueFn evaluates an operand over a concatenated pipeline row.
type rowValueFn func(relation.Tuple) relation.Value

// compileRow compiles an expression into a predicate over concatenated
// pipeline rows. offs maps each variable slot to its column offset in
// the row; every slot the expression touches must be bound (offset
// >= 0) by the time the predicate runs.
func (p *planner) compileRow(e Expr, offs []int) (exec.Pred, error) {
	switch e := e.(type) {
	case *BinExpr:
		l, err := p.compileRowOperand(e.L, offs)
		if err != nil {
			return nil, err
		}
		r, err := p.compileRowOperand(e.R, offs)
		if err != nil {
			return nil, err
		}
		op := e.Op
		return func(t relation.Tuple) bool {
			c, err := l(t).Compare(r(t))
			if err != nil {
				return false
			}
			switch op {
			case "=":
				return c == 0
			case "!=":
				return c != 0
			case "<":
				return c < 0
			case "<=":
				return c <= 0
			case ">":
				return c > 0
			case ">=":
				return c >= 0
			}
			return false
		}, nil
	case *AndExpr:
		terms := make([]exec.Pred, len(e.Terms))
		for i, t := range e.Terms {
			c, err := p.compileRow(t, offs)
			if err != nil {
				return nil, err
			}
			terms[i] = c
		}
		return func(t relation.Tuple) bool {
			for _, term := range terms {
				if !term(t) {
					return false
				}
			}
			return true
		}, nil
	case *OrExpr:
		terms := make([]exec.Pred, len(e.Terms))
		for i, t := range e.Terms {
			c, err := p.compileRow(t, offs)
			if err != nil {
				return nil, err
			}
			terms[i] = c
		}
		return func(t relation.Tuple) bool {
			for _, term := range terms {
				if term(t) {
					return true
				}
			}
			return false
		}, nil
	case *NotExpr:
		c, err := p.compileRow(e.Term, offs)
		if err != nil {
			return nil, err
		}
		return func(t relation.Tuple) bool { return !c(t) }, nil
	default:
		return nil, fmt.Errorf("quel: unknown expression %T", e)
	}
}

func (p *planner) compileRowOperand(o Operand, offs []int) (rowValueFn, error) {
	switch o := o.(type) {
	case ColOperand:
		slot, ai, err := p.colSlot(o.Col)
		if err != nil {
			return nil, err
		}
		if offs[slot] < 0 {
			return nil, fmt.Errorf("quel: internal: %s read before its variable is bound in the pipeline", o.Col)
		}
		off := offs[slot] + ai
		return func(t relation.Tuple) relation.Value { return t[off] }, nil
	case ConstOperand:
		v := o.Val
		return func(relation.Tuple) relation.Value { return v }, nil
	default:
		return nil, fmt.Errorf("quel: unknown operand %T", o)
	}
}

// combinePreds conjoins compiled row predicates.
func combinePreds(preds []exec.Pred) exec.Pred {
	if len(preds) == 1 {
		return preds[0]
	}
	return func(t relation.Tuple) bool {
		for _, p := range preds {
			if !p(t) {
				return false
			}
		}
		return true
	}
}

// scanSpec is the compiled streaming form of one access path: the plan
// leaf it executes, the optional pushed-down filter on top, and the
// index bits when the planner chose an index.
type scanSpec struct {
	slot       int
	rel        *relation.Relation
	scanNode   plan.Node    // *plan.IndexScan or *plan.FullScan
	filterNode *plan.Filter // nil when no extra predicates
	pred       exec.Pred    // combined extra predicates; nil when none
	// Index access path (nil ix means full scan):
	ix      *relation.Index
	op      string
	val     relation.Value
	selAttr int
	// selPred re-checks the index condition; the scan consults it only
	// when it degrades to a full scan.
	selPred exec.Pred
}

// top returns the spec's plan subtree: the filter when present, else
// the scan leaf.
func (sc *scanSpec) top() plan.Node {
	if sc.filterNode != nil {
		return sc.filterNode
	}
	return sc.scanNode
}

// joinSpec binds one more variable into the pipeline: by hash join over
// absolute key offsets, or by cross product when leftKey is empty.
type joinSpec struct {
	right    *scanSpec
	leftKey  []int // offsets into the probe row
	rightKey []int // attribute positions in the right relation
	node     plan.Node
	schema   *relation.Schema // concatenated pipeline schema after this join
}

// filterSpec is a compiled residual filter and its plan node.
type filterSpec struct {
	pred exec.Pred
	node *plan.Filter
}

// streamSpec is the fully lowered retrieve: scan specs, join order,
// residual filter, projection, and the plan tree assembled from exactly
// the nodes the operators will execute.
type streamSpec struct {
	sess     *Session
	dual     bool // zero range variables: emit one empty row
	dualNode plan.Node
	seed     *scanSpec
	joins    []joinSpec
	residual *filterSpec
	projCols []int
	projNode *plan.Project
	schema   *relation.Schema // output schema
	distinct *plan.Distinct   // nil unless retrieve unique
	sortNode *plan.Sort       // nil unless sorted
	sorts    []exec.SortSpec
	est      int
}

// buildStream lowers the planned retrieve into a streamSpec, building
// the plan tree as it goes. Called once from PlanRetrieve.
func (rp *RetrievePlan) buildStream() error {
	p, sp := rp.p, rp.sp
	ss := &streamSpec{sess: p.sess, est: sp.est, schema: rp.schema}
	n := len(p.vars)
	var root plan.Node

	// qual renders one slot's columns qualified as "var.attr" — slot
	// names are unique, so the concatenated pipeline schema stays valid
	// even when the same relation is ranged twice.
	qual := func(slot int) []relation.Column {
		sch := p.rels[slot].Schema()
		out := make([]relation.Column, sch.Len())
		for i := 0; i < sch.Len(); i++ {
			c := sch.Col(i)
			out[i] = relation.Column{Name: p.vars[slot] + "." + c.Name, Type: c.Type}
		}
		return out
	}

	if n == 0 {
		ss.dual = true
		ss.dualNode = &plan.FullScan{Relation: "dual", Est: 1}
		root = ss.dualNode
	} else {
		offs := make([]int, n)
		for i := range offs {
			offs[i] = -1
		}
		seed, err := buildScanSpec(p, sp, &sp.paths[0])
		if err != nil {
			return err
		}
		ss.seed = seed
		root = seed.top()
		offs[0] = 0
		width := p.rels[0].Schema().Len()
		pipeCols := qual(0)

		for _, step := range sp.steps {
			right, err := buildScanSpec(p, sp, &sp.paths[step.next])
			if err != nil {
				return err
			}
			js := joinSpec{right: right}
			for _, e := range step.edges {
				js.leftKey = append(js.leftKey, offs[e.boundSlot]+e.boundAttr)
				js.rightKey = append(js.rightKey, e.nextAttr)
			}
			if len(step.edges) == 0 {
				js.node = &plan.CrossJoin{Est: step.est, Left: root, Right: right.top()}
			} else {
				js.node = &plan.HashJoin{On: step.on, Est: step.est, Left: root, Right: right.top()}
			}
			root = js.node
			offs[step.next] = width
			width += p.rels[step.next].Schema().Len()
			pipeCols = append(pipeCols, qual(step.next)...)
			js.schema, err = relation.NewSchema(pipeCols...)
			if err != nil {
				return err
			}
			ss.joins = append(ss.joins, js)
		}

		if len(sp.residual) > 0 {
			conds := make([]string, len(sp.residual))
			preds := make([]exec.Pred, len(sp.residual))
			for i, c := range sp.residual {
				conds[i] = c.label()
				pred, err := p.compileRow(c.expr, offs)
				if err != nil {
					return err
				}
				preds[i] = pred
			}
			node := &plan.Filter{Conds: conds, Est: sp.est, Input: root}
			root = node
			ss.residual = &filterSpec{pred: combinePreds(preds), node: node}
		}

		ss.projCols = make([]int, len(rp.infos))
		for i, info := range rp.infos {
			ss.projCols[i] = offs[info.slot] + info.attr
		}
	}

	cols := make([]plan.Column, rp.schema.Len())
	for i := 0; i < rp.schema.Len(); i++ {
		c := rp.schema.Col(i)
		cols[i] = plan.Column{Name: c.Name, Type: c.Type.String()}
	}
	ss.projNode = &plan.Project{Cols: cols, Est: sp.est, Input: root}
	root = ss.projNode
	if rp.st.Unique {
		ss.distinct = &plan.Distinct{Input: root}
		root = ss.distinct
	}
	if len(rp.keys) > 0 {
		keys := make([]string, len(rp.keys))
		for i, k := range rp.keys {
			keys[i] = k.Column
			if k.Desc {
				keys[i] += " desc"
			}
			ci, ok := rp.schema.Index(k.Column)
			if !ok {
				return fmt.Errorf("quel: internal: sort key %s not in output schema", k.Column)
			}
			ss.sorts = append(ss.sorts, exec.SortSpec{Col: ci, Desc: k.Desc})
		}
		ss.sortNode = &plan.Sort{Keys: keys, Input: root}
	}
	rp.ss = ss
	return nil
}

// root returns the plan tree Describe renders — assembled from the same
// nodes the operator tree executes.
func (ss *streamSpec) root() plan.Node {
	if ss.sortNode != nil {
		return ss.sortNode
	}
	if ss.distinct != nil {
		return ss.distinct
	}
	return ss.projNode
}

// buildScanSpec compiles one access path: plan leaf node, pushed-down
// filter, and row predicates. Index paths keep the selection out of the
// filter (the index serves it exactly) but carry a compiled re-check
// for fallback mode; full-scan paths filter on every pushed-down
// predicate.
func buildScanSpec(p *planner, sp *scanPlan, ap *accessPath) (*scanSpec, error) {
	rel := p.rels[ap.slot]
	sc := &scanSpec{slot: ap.slot, rel: rel}

	// Single-slot offsets: the scan's predicates run over the raw
	// relation row, so this slot sits at offset 0.
	offs := make([]int, len(p.vars))
	for i := range offs {
		offs[i] = -1
	}
	offs[ap.slot] = 0

	cols := planSchema(rel.Schema())
	alias := p.vars[ap.slot]
	var extra []*conjunct
	if ap.ix != nil {
		sc.ix = ap.ix
		sc.op = ap.sel.selOp
		sc.val = ap.sel.selVal
		sc.selAttr = ap.sel.selAttr
		sel, err := p.compileRow(ap.sel.expr, offs)
		if err != nil {
			return nil, err
		}
		sc.selPred = sel
		sc.scanNode = &plan.IndexScan{
			Relation: rel.Name(),
			Binding:  alias,
			Column:   rel.Schema().Col(ap.sel.selAttr).Name,
			Op:       ap.sel.selOp,
			Value:    ap.sel.selVal.GoString(),
			Est:      selectivity(mustCount(ap), 0),
			Cols:     cols,
			Implied:  ap.sel.implied,
		}
		for _, c := range ap.preds {
			if c != ap.sel {
				extra = append(extra, c)
			}
		}
	} else {
		sc.scanNode = &plan.FullScan{
			Relation: rel.Name(),
			Binding:  alias,
			Est:      rel.Len(),
			Cols:     cols,
			Fallback: ap.fallback,
		}
		extra = ap.preds
	}
	if len(extra) > 0 {
		conds := make([]string, len(extra))
		preds := make([]exec.Pred, len(extra))
		for i, c := range extra {
			conds[i] = c.label()
			pred, err := p.compileRow(c.expr, offs)
			if err != nil {
				return nil, err
			}
			preds[i] = pred
		}
		sc.pred = combinePreds(preds)
		sc.filterNode = &plan.Filter{Conds: conds, Est: ap.est, Input: sc.scanNode}
	}
	return sc, nil
}

// scanOp instantiates one access path's operator subtree, wiring the
// session's index-rebuild and scan-counter hooks.
func (ss *streamSpec) scanOp(sc *scanSpec) exec.Operator {
	sess := ss.sess
	var op exec.Operator
	if sc.ix != nil {
		rel, attr := sc.rel, sc.selAttr
		hooks := exec.IndexScanHooks{
			Rebuild: func() *relation.Index {
				ix, _ := sess.indexFor(rel, attr)
				return ix
			},
			OnIndexScan: sess.countIndexScan,
			OnFullScan:  sess.countFullScan,
			OnFallback: func(reason string) {
				sess.noteFallback(rel.Name(), rel.Schema().Col(attr).Name, reason)
			},
		}
		op = exec.NewIndexScan(sc.scanNode, rel, sc.ix, sc.op, sc.val, sc.selPred, hooks)
	} else {
		op = exec.NewFullScan(sc.scanNode, sc.rel, sess.countFullScan)
	}
	if sc.pred != nil {
		op = exec.NewFilter(sc.filterNode, sc.pred, op)
	}
	return op
}

// instantiate builds a fresh single-use operator tree for one run.
func (ss *streamSpec) instantiate() exec.Operator {
	var op exec.Operator
	if ss.dual {
		op = exec.NewValues(ss.dualNode, ss.schema, []relation.Tuple{{}})
	} else {
		op = ss.scanOp(ss.seed)
		for i := range ss.joins {
			j := &ss.joins[i]
			right := ss.scanOp(j.right)
			if len(j.leftKey) == 0 {
				op = exec.NewCrossJoin(j.node, j.schema, op, right)
			} else {
				op = exec.NewHashJoin(j.node, j.schema, op, right,
					exec.KeyOf(j.leftKey), exec.KeyOf(j.rightKey))
			}
		}
		if ss.residual != nil {
			op = exec.NewFilter(ss.residual.node, ss.residual.pred, op)
		}
	}
	op = exec.NewProject(ss.projNode, ss.schema, ss.projCols, op)
	if ss.distinct != nil {
		op = exec.NewDistinct(ss.distinct, op)
	}
	if ss.sortNode != nil {
		op = exec.NewSort(ss.sortNode, ss.sorts, op)
	}
	return op
}
