// Package quel implements the QUEL subset the paper's Inductive Learning
// Subsystem issues against the database: persistent range declarations,
// retrieve [into] [unique] with qualifications and sort by, and qualified
// delete. Multi-variable qualifications are planned with hash joins so the
// induction algorithm's self-joins stay linear in the relation size.
package quel

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // = != < <= > >=
	tokLParen
	tokRParen
	tokComma
	tokDot
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of statement"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenises a QUEL statement.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == ',':
			l.emit(tokComma, ",")
		case c == '.':
			l.emit(tokDot, ".")
		case c == '=':
			l.emit(tokOp, "=")
		case c == '!':
			if l.peek(1) != '=' {
				return nil, fmt.Errorf("quel: position %d: expected != after !", l.pos)
			}
			l.emit2(tokOp, "!=")
		case c == '<':
			if l.peek(1) == '=' {
				l.emit2(tokOp, "<=")
			} else if l.peek(1) == '>' {
				l.emit2(tokOp, "!=")
			} else {
				l.emit(tokOp, "<")
			}
		case c == '>':
			if l.peek(1) == '=' {
				l.emit2(tokOp, ">=")
			} else {
				l.emit(tokOp, ">")
			}
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9' || c == '-' && l.peekDigit(1):
			l.lexNumber()
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			return nil, fmt.Errorf("quel: position %d: unexpected character %q", l.pos, c)
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
	return l.tokens, nil
}

func (l *lexer) peek(n int) byte {
	if l.pos+n < len(l.src) {
		return l.src[l.pos+n]
	}
	return 0
}

func (l *lexer) peekDigit(n int) bool {
	c := l.peek(n)
	return c >= '0' && c <= '9'
}

func (l *lexer) emit(k tokenKind, s string) {
	l.tokens = append(l.tokens, token{kind: k, text: s, pos: l.pos})
	l.pos++
}

func (l *lexer) emit2(k tokenKind, s string) {
	l.tokens = append(l.tokens, token{kind: k, text: s, pos: l.pos})
	l.pos += 2
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.tokens = append(l.tokens, token{kind: tokString, text: b.String(), pos: start})
			l.pos++
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("quel: position %d: unterminated string", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		// A dot followed by a non-digit belongs to the next token.
		if l.src[l.pos] == '.' && !l.peekDigit(1) {
			break
		}
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}
