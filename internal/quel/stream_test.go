package quel

import (
	"fmt"
	"strings"
	"testing"

	"intensional/internal/relation"
)

// TestIndexCacheRejectsReplacedRelation pins the staleness hole fixed in
// the shared IndexCache: entries used to be validated with Index.Fresh
// alone but keyed by relation name only, so replacing a relation under
// the same name left a cached index over the *old* object that still
// looked fresh (the old object's version never moves again). A session
// picking it up silently answered queries from the replaced data. The
// cache must validate relation identity as well as freshness.
func TestIndexCacheRejectsReplacedRelation(t *testing.T) {
	cat := bigCatalog(t, 100) // K = 0..99, above the indexing threshold
	cache := NewIndexCache()

	s1 := NewSession(cat)
	s1.SetIndexCache(cache)
	mustExec(t, s1, "range of b is BIG")
	res := mustExec(t, s1, "retrieve (b.K) where b.K = 50")
	if res.Rel.Len() != 1 {
		t.Fatalf("seed query: %d rows, want 1", res.Rel.Len())
	}
	if cache.Len() != 1 {
		t.Fatalf("index cache size = %d, want 1", cache.Len())
	}

	// Replace BIG wholesale: same name, different object, K = 100..199.
	repl := relation.New("BIG", relation.MustSchema(
		relation.Column{Name: "K", Type: relation.TInt},
		relation.Column{Name: "G", Type: relation.TInt},
	))
	for i := 100; i < 200; i++ {
		repl.MustInsert(relation.Int(int64(i)), relation.Int(int64(i%7)))
	}
	cat.Put(repl)

	s2 := NewSession(cat)
	s2.SetIndexCache(cache)
	mustExec(t, s2, "range of b is BIG")
	res = mustExec(t, s2, "retrieve (b.K) where b.K = 150")
	if res.Rel.Len() != 1 || !res.Rel.Row(0)[0].Equal(relation.Int(150)) {
		t.Fatalf("query against replaced relation = %v, want one row K=150 "+
			"(a stale index over the old relation was served)", res.Rel.Rows())
	}
}

// TestStreamingFallbackCountsAndLogs pins the index-fallback
// observability through the streaming pipeline: when a planned index
// scan finds its index stale at Open and the rebuild declines (the
// relation shrank below the indexing threshold), the scan must degrade
// to a full scan, still return correct rows, and report the degradation
// through Counters.IndexFallbacks and the session log.
func TestStreamingFallbackCountsAndLogs(t *testing.T) {
	cat := bigCatalog(t, 100)
	s := NewSession(cat)
	var ctr Counters
	s.SetCounters(&ctr)
	var logs []string
	s.SetLogf(func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	})
	mustExec(t, s, "range of b is BIG")

	rp := planFor(t, s, "retrieve (b.K) where b.K = 50")
	if findIndexScan(rp.Describe()) == nil {
		t.Fatalf("plan did not choose an index scan:\n%s", rp.Describe())
	}

	// Invalidate the planned index and shrink the relation below the
	// indexing threshold, so the rebuild at Open declines.
	rel, err := cat.Get("BIG")
	if err != nil {
		t.Fatal(err)
	}
	rel.Delete(func(tu relation.Tuple) bool { return tu[0].Int64() >= 60 })
	if rel.Len() >= indexMinRows {
		t.Fatalf("test setup: %d rows does not undercut indexMinRows=%d", rel.Len(), indexMinRows)
	}

	res, err := rp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 1 || !res.Rel.Row(0)[0].Equal(relation.Int(50)) {
		t.Fatalf("fallback result = %v, want one row K=50", res.Rel.Rows())
	}
	if got := ctr.IndexFallbacks.Load(); got != 1 {
		t.Errorf("IndexFallbacks = %d, want 1", got)
	}
	if got := ctr.FullScans.Load(); got != 1 {
		t.Errorf("FullScans = %d, want 1", got)
	}
	if got := ctr.IndexScans.Load(); got != 0 {
		t.Errorf("IndexScans = %d, want 0", got)
	}
	if joined := strings.Join(logs, "\n"); !strings.Contains(joined, "index fallback") {
		t.Errorf("no index-fallback log line; logs:\n%s", joined)
	}
}
