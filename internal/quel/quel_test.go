package quel

import (
	"strings"
	"testing"

	"intensional/internal/relation"
	"intensional/internal/storage"
)

// testCatalog builds a small two-relation catalog mirroring the shapes the
// induction algorithm works over.
func testCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	cls, err := cat.Create("CLASS", relation.MustSchema(
		relation.Column{Name: "Class", Type: relation.TString},
		relation.Column{Name: "Type", Type: relation.TString},
		relation.Column{Name: "Displacement", Type: relation.TInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	cls.MustInsert(relation.String("0101"), relation.String("SSBN"), relation.Int(16600))
	cls.MustInsert(relation.String("0102"), relation.String("SSBN"), relation.Int(7250))
	cls.MustInsert(relation.String("0201"), relation.String("SSN"), relation.Int(6000))
	cls.MustInsert(relation.String("0204"), relation.String("SSN"), relation.Int(3640))
	cls.MustInsert(relation.String("1301"), relation.String("SSBN"), relation.Int(30000))

	sub, err := cat.Create("SUBMARINE", relation.MustSchema(
		relation.Column{Name: "Id", Type: relation.TString},
		relation.Column{Name: "Name", Type: relation.TString},
		relation.Column{Name: "Class", Type: relation.TString},
	))
	if err != nil {
		t.Fatal(err)
	}
	sub.MustInsert(relation.String("SSBN730"), relation.String("Rhode Island"), relation.String("0101"))
	sub.MustInsert(relation.String("SSBN130"), relation.String("Typhoon"), relation.String("1301"))
	sub.MustInsert(relation.String("SSN692"), relation.String("Omaha"), relation.String("0201"))
	sub.MustInsert(relation.String("SSN648"), relation.String("Aspro"), relation.String("0204"))
	return cat
}

func mustExec(t *testing.T, s *Session, src string) *Result {
	t.Helper()
	res, err := s.Exec(src)
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return res
}

func TestRangeAndRetrieve(t *testing.T) {
	s := NewSession(testCatalog(t))
	mustExec(t, s, "range of c is CLASS")
	res := mustExec(t, s, "retrieve (c.Class, c.Type)")
	if res.Rel.Len() != 5 {
		t.Fatalf("retrieve all = %d rows", res.Rel.Len())
	}
	if got := res.Rel.Schema().Names(); got[0] != "Class" || got[1] != "Type" {
		t.Errorf("output columns = %v", got)
	}
}

func TestRetrieveWhere(t *testing.T) {
	s := NewSession(testCatalog(t))
	mustExec(t, s, "range of c is CLASS")
	res := mustExec(t, s, `retrieve (c.Class) where c.Displacement > 8000`)
	if res.Rel.Len() != 2 {
		t.Fatalf("where > 8000 = %d rows:\n%s", res.Rel.Len(), res.Rel)
	}
	res = mustExec(t, s, `retrieve (c.Class) where c.Type = "SSBN" and c.Displacement < 20000`)
	if res.Rel.Len() != 2 {
		t.Fatalf("conjunction = %d rows", res.Rel.Len())
	}
	res = mustExec(t, s, `retrieve (c.Class) where c.Type = "SSN" or c.Displacement >= 30000`)
	if res.Rel.Len() != 3 {
		t.Fatalf("disjunction = %d rows", res.Rel.Len())
	}
	res = mustExec(t, s, `retrieve (c.Class) where not (c.Type = "SSN")`)
	if res.Rel.Len() != 3 {
		t.Fatalf("negation = %d rows", res.Rel.Len())
	}
}

func TestRetrieveUniqueSort(t *testing.T) {
	s := NewSession(testCatalog(t))
	mustExec(t, s, "range of c is CLASS")
	res := mustExec(t, s, "retrieve unique (c.Type) sort by c.Type")
	if res.Rel.Len() != 2 {
		t.Fatalf("unique = %d rows", res.Rel.Len())
	}
	if res.Rel.Row(0)[0].Str() != "SSBN" || res.Rel.Row(1)[0].Str() != "SSN" {
		t.Errorf("sorted rows: %v %v", res.Rel.Row(0), res.Rel.Row(1))
	}
}

// TestInductionStep1 executes the paper's step-1 statement verbatim:
// retrieve into S unique (r.Y, r.X) sort by r.Y.
func TestInductionStep1(t *testing.T) {
	cat := testCatalog(t)
	s := NewSession(cat)
	mustExec(t, s, "range of r is CLASS")
	res := mustExec(t, s, "retrieve into S unique (r.Type, r.Displacement) sort by r.Type")
	if !cat.Has("S") {
		t.Fatal("retrieve into should create S in the catalog")
	}
	if res.Rel.Len() != 5 {
		t.Fatalf("S = %d rows", res.Rel.Len())
	}
	if res.Rel.Row(0)[0].Str() != "SSBN" {
		t.Errorf("first row after sort: %v", res.Rel.Row(0))
	}
	if _, err := s.Exec("retrieve into S unique (r.Type) "); err == nil {
		t.Error("retrieve into an existing relation should error")
	}
}

// TestInductionStep2And3 runs the inconsistency removal join and the
// existential delete of the paper's algorithm.
func TestInductionStep2And3(t *testing.T) {
	cat := storage.NewCatalog()
	rel, err := cat.Create("REL", relation.MustSchema(
		relation.Column{Name: "X", Type: relation.TInt},
		relation.Column{Name: "Y", Type: relation.TString},
	))
	if err != nil {
		t.Fatal(err)
	}
	// X=1 maps consistently to a; X=2 maps to both a and b (inconsistent).
	rel.MustInsert(relation.Int(1), relation.String("a"))
	rel.MustInsert(relation.Int(2), relation.String("a"))
	rel.MustInsert(relation.Int(2), relation.String("b"))

	s := NewSession(cat)
	mustExec(t, s, "range of r is REL")
	mustExec(t, s, "retrieve into S unique (r.Y, r.X) sort by r.Y")
	mustExec(t, s, "range of s is S")
	mustExec(t, s, "retrieve into T unique (s.Y, s.X) where (r.X = s.X and r.Y != s.Y)")
	tRel, err := cat.Get("T")
	if err != nil {
		t.Fatal(err)
	}
	if tRel.Len() != 2 {
		t.Fatalf("T should hold both inconsistent pairs, got %d:\n%s", tRel.Len(), tRel)
	}
	mustExec(t, s, "range of t is T")
	res := mustExec(t, s, "delete s where (s.X = t.X and s.Y = t.Y)")
	if res.Deleted != 2 {
		t.Fatalf("delete removed %d, want 2", res.Deleted)
	}
	sRel, err := cat.Get("S")
	if err != nil {
		t.Fatal(err)
	}
	if sRel.Len() != 1 || !sRel.Row(0)[1].Equal(relation.Int(1)) {
		t.Fatalf("S after delete:\n%s", sRel)
	}
}

func TestJoinAcrossRelations(t *testing.T) {
	s := NewSession(testCatalog(t))
	mustExec(t, s, "range of sub is SUBMARINE")
	mustExec(t, s, "range of c is CLASS")
	res := mustExec(t, s, `retrieve (sub.Name, c.Type) where sub.Class = c.Class and c.Displacement > 8000`)
	if res.Rel.Len() != 2 {
		t.Fatalf("join = %d rows:\n%s", res.Rel.Len(), res.Rel)
	}
	for _, row := range res.Rel.Rows() {
		if row[1].Str() != "SSBN" {
			t.Errorf("unexpected row %v", row)
		}
	}
}

func TestCrossProductWhenNoEdge(t *testing.T) {
	s := NewSession(testCatalog(t))
	mustExec(t, s, "range of sub is SUBMARINE")
	mustExec(t, s, "range of c is CLASS")
	res := mustExec(t, s, "retrieve (sub.Id, c.Class)")
	if res.Rel.Len() != 4*5 {
		t.Fatalf("cross product = %d rows, want 20", res.Rel.Len())
	}
}

func TestTargetRenameAndCollision(t *testing.T) {
	s := NewSession(testCatalog(t))
	mustExec(t, s, "range of sub is SUBMARINE")
	mustExec(t, s, "range of c is CLASS")
	res := mustExec(t, s, "retrieve (ShipClass = sub.Class, c.Class) where sub.Class = c.Class")
	names := res.Rel.Schema().Names()
	if names[0] != "ShipClass" || names[1] != "Class" {
		t.Errorf("renamed columns = %v", names)
	}
	res = mustExec(t, s, "retrieve (sub.Class, c.Class) where sub.Class = c.Class")
	names = res.Rel.Schema().Names()
	if names[0] != "Class" || names[1] != "c.Class" {
		t.Errorf("collision-qualified columns = %v", names)
	}
}

func TestDeleteSingleVariable(t *testing.T) {
	cat := testCatalog(t)
	s := NewSession(cat)
	mustExec(t, s, "range of c is CLASS")
	res := mustExec(t, s, `delete c where c.Type = "SSN"`)
	if res.Deleted != 2 {
		t.Fatalf("deleted %d, want 2", res.Deleted)
	}
	cls, _ := cat.Get("CLASS")
	if cls.Len() != 3 {
		t.Fatalf("CLASS has %d rows after delete", cls.Len())
	}
	res = mustExec(t, s, "delete c")
	if res.Deleted != 3 {
		t.Fatalf("unqualified delete removed %d", res.Deleted)
	}
}

func TestQuotedAndBareConstants(t *testing.T) {
	cat := storage.NewCatalog()
	r, err := cat.Create("SONAR", relation.MustSchema(
		relation.Column{Name: "Sonar", Type: relation.TString},
	))
	if err != nil {
		t.Fatal(err)
	}
	r.MustInsert(relation.String("BQS-04"))
	r.MustInsert(relation.String("BQQ-2"))
	s := NewSession(cat)
	mustExec(t, s, "range of x is SONAR")
	res := mustExec(t, s, `retrieve (x.Sonar) where x.Sonar = "BQS-04"`)
	if res.Rel.Len() != 1 {
		t.Fatalf("quoted constant: %d rows", res.Rel.Len())
	}
	res = mustExec(t, s, `retrieve (x.Sonar) where x.Sonar = BQS-04`)
	if res.Rel.Len() != 1 {
		t.Fatalf("bare constant: %d rows", res.Rel.Len())
	}
}

func TestErrors(t *testing.T) {
	s := NewSession(testCatalog(t))
	bad := []string{
		"range of x is NOPE",                 // unknown relation
		"retrieve (x.Class)",                 // undeclared variable
		"frobnicate (x.y)",                   // unknown statement
		"retrieve (c.Class",                  // unbalanced paren
		"retrieve (c.Class) where c.Class <", // missing operand
		"retrieve (c.Class) sort by c.Type",  // sort column not retrieved (declared below)
		"retrieve (c.Nope)",                  // unknown attribute
		"delete",                             // missing variable
		`retrieve (c.Class) where c.Class ! 3`,
	}
	mustExec(t, s, "range of c is CLASS")
	for _, src := range bad {
		if _, err := s.Exec(src); err == nil {
			t.Errorf("Exec(%q): expected error", src)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`retrieve (c.Class) where c.Class = "unterminated`, "retrieve (c.Class) @"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestExprString(t *testing.T) {
	st, err := Parse(`retrieve (c.Class) where (c.Type = "SSBN" or c.Displacement > 100) and not (c.Class = "1301")`)
	if err != nil {
		t.Fatal(err)
	}
	ret := st.(*RetrieveStmt)
	got := ret.Where.String()
	for _, want := range []string{"or", "and", "not", "c.Type", `"SSBN"`} {
		if !strings.Contains(got, want) {
			t.Errorf("Where.String() = %q missing %q", got, want)
		}
	}
}

func TestNumericConstants(t *testing.T) {
	cat := storage.NewCatalog()
	r, err := cat.Create("M", relation.MustSchema(
		relation.Column{Name: "N", Type: relation.TInt},
		relation.Column{Name: "F", Type: relation.TFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	r.MustInsert(relation.Int(-5), relation.Float(1.5))
	r.MustInsert(relation.Int(10), relation.Float(2.5))
	s := NewSession(cat)
	mustExec(t, s, "range of m is M")
	if res := mustExec(t, s, "retrieve (m.N) where m.N = -5"); res.Rel.Len() != 1 {
		t.Error("negative int constant")
	}
	if res := mustExec(t, s, "retrieve (m.N) where m.F >= 2.5"); res.Rel.Len() != 1 {
		t.Error("float constant")
	}
}
