package quel

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"intensional/internal/relation"
	"intensional/internal/storage"
)

// refEval evaluates a retrieve statement by brute force: full cross
// product of all range variables, then the compiled predicate — the
// reference the planner's pushdowns and hash joins are checked against.
func refEval(t *testing.T, cat *storage.Catalog, ranges map[string]string, st *RetrieveStmt) []string {
	t.Helper()
	sess := NewSession(cat)
	p := newPlanner(sess)
	for v, rel := range ranges {
		sess.ranges[v] = rel
	}
	for _, tg := range st.Target {
		if _, err := p.addVar(tg.Col.Var); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.collectVars(st.Where); err != nil {
		t.Fatal(err)
	}
	var pred compiled
	if st.Where != nil {
		var err error
		pred, err = p.compile(st.Where)
		if err != nil {
			t.Fatal(err)
		}
	}
	n := len(p.vars)
	var rows []string
	b := make(binding, n)
	var rec func(slot int)
	rec = func(slot int) {
		if slot == n {
			if pred != nil && !pred(b) {
				return
			}
			key := ""
			for _, tg := range st.Target {
				slot2, ai, err := p.colSlot(tg.Col)
				if err != nil {
					t.Fatal(err)
				}
				key += p.rels[slot2].Row(b[slot2])[ai].Key() + "|"
			}
			rows = append(rows, key)
			return
		}
		for i := 0; i < p.rels[slot].Len(); i++ {
			b[slot] = i
			rec(slot + 1)
		}
	}
	rec(0)
	sort.Strings(rows)
	return rows
}

// randomCatalog builds 2–3 small relations with low-cardinality values so
// joins and selections both hit and miss.
func randomCatalog(rr *rand.Rand) *storage.Catalog {
	cat := storage.NewCatalog()
	for i, name := range []string{"T0", "T1", "T2"} {
		s := relation.MustSchema(
			relation.Column{Name: "K", Type: relation.TInt},
			relation.Column{Name: "V", Type: relation.TInt},
			relation.Column{Name: "S", Type: relation.TString},
		)
		r := relation.New(name, s)
		rows := rr.Intn(12)
		for j := 0; j < rows; j++ {
			r.MustInsert(
				relation.Int(int64(rr.Intn(5))),
				relation.Int(int64(rr.Intn(10))),
				relation.String(string(rune('a'+rr.Intn(3)))),
			)
		}
		cat.Put(r)
		_ = i
	}
	return cat
}

// randomExpr builds a random qualification over the declared variables.
func randomExpr(rr *rand.Rand, vars []string, depth int) Expr {
	if depth <= 0 || rr.Intn(3) == 0 {
		v := vars[rr.Intn(len(vars))]
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		op := ops[rr.Intn(len(ops))]
		l := ColOperand{Col: ColRef{Var: v, Attr: []string{"K", "V"}[rr.Intn(2)]}}
		var r Operand
		if rr.Intn(2) == 0 {
			r = ConstOperand{Val: relation.Int(int64(rr.Intn(10)))}
		} else {
			v2 := vars[rr.Intn(len(vars))]
			r = ColOperand{Col: ColRef{Var: v2, Attr: []string{"K", "V"}[rr.Intn(2)]}}
		}
		return &BinExpr{Op: op, L: l, R: r}
	}
	switch rr.Intn(3) {
	case 0:
		return &AndExpr{Terms: []Expr{randomExpr(rr, vars, depth-1), randomExpr(rr, vars, depth-1)}}
	case 1:
		return &OrExpr{Terms: []Expr{randomExpr(rr, vars, depth-1), randomExpr(rr, vars, depth-1)}}
	default:
		return &NotExpr{Term: randomExpr(rr, vars, depth-1)}
	}
}

// TestPlannerMatchesBruteForceProperty cross-checks the planner (selection
// pushdown, hash joins, residual filters) against full cross-product
// evaluation on random schemas, data, and qualifications.
func TestPlannerMatchesBruteForceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		cat := randomCatalog(rr)
		nVars := 1 + rr.Intn(3)
		ranges := map[string]string{}
		var vars []string
		for i := 0; i < nVars; i++ {
			v := fmt.Sprintf("v%d", i)
			vars = append(vars, v)
			ranges[v] = fmt.Sprintf("T%d", rr.Intn(3))
		}
		st := &RetrieveStmt{}
		for _, v := range vars {
			st.Target = append(st.Target, Target{Col: ColRef{Var: v, Attr: "K"}})
		}
		if rr.Intn(5) > 0 {
			st.Where = randomExpr(rr, vars, 2)
		}

		// Reference evaluation.
		want := refEval(t, cat, ranges, st)

		// Planner evaluation.
		sess := NewSession(cat)
		for v, rel := range ranges {
			if _, err := sess.ExecStmt(&RangeStmt{Var: v, Rel: rel}); err != nil {
				t.Logf("range: %v", err)
				return false
			}
		}
		res, err := sess.ExecStmt(st)
		if err != nil {
			t.Logf("exec: %v", err)
			return false
		}
		got := make([]string, 0, res.Rel.Len())
		for _, row := range res.Rel.Rows() {
			key := ""
			for _, v := range row {
				key += v.Key() + "|"
			}
			got = append(got, key)
		}
		sort.Strings(got)
		if len(got) != len(want) {
			t.Logf("seed %d: planner %d rows, reference %d rows (where: %v)",
				seed, len(got), len(want), st.Where)
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("seed %d: row %d differs", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDeleteMatchesBruteForceProperty checks qualified deletes with
// existential semantics against a reference computation.
func TestDeleteMatchesBruteForceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		cat := randomCatalog(rr)
		ranges := map[string]string{"a": "T0", "b": "T1"}
		where := randomExpr(rr, []string{"a", "b"}, 1)

		// Reference: a T0 row survives unless the qualification holds for
		// it — existentially over b only when b actually appears in the
		// qualification (unreferenced range variables do not participate,
		// as in QUEL).
		ref := func() []string {
			sess := NewSession(cat.Clone())
			p := newPlanner(sess)
			sess.ranges["a"], sess.ranges["b"] = "T0", "T1"
			if _, err := p.addVar("a"); err != nil {
				t.Fatal(err)
			}
			if err := p.collectVars(where); err != nil {
				t.Fatal(err)
			}
			pred, err := p.compile(where)
			if err != nil {
				t.Fatal(err)
			}
			usesB := len(p.vars) > 1
			t0, _ := sess.cat.Get("T0")
			t1, _ := sess.cat.Get("T1")
			var kept []string
			for i := 0; i < t0.Len(); i++ {
				doomed := false
				if usesB {
					for j := 0; j < t1.Len(); j++ {
						if pred(binding{i, j}) {
							doomed = true
							break
						}
					}
				} else {
					doomed = pred(binding{i})
				}
				if !doomed {
					kept = append(kept, t0.Row(i).Key())
				}
			}
			sort.Strings(kept)
			return kept
		}()

		// Planner path.
		catB := cat.Clone()
		sess := NewSession(catB)
		for v, rel := range ranges {
			if _, err := sess.ExecStmt(&RangeStmt{Var: v, Rel: rel}); err != nil {
				return false
			}
		}
		if _, err := sess.ExecStmt(&DeleteStmt{Var: "a", Where: where}); err != nil {
			t.Logf("seed %d: delete: %v", seed, err)
			return false
		}
		t0, _ := catB.Get("T0")
		var got []string
		for _, row := range t0.Rows() {
			got = append(got, row.Key())
		}
		sort.Strings(got)
		if len(got) != len(ref) {
			t.Logf("seed %d: kept %d rows, reference %d", seed, len(got), len(ref))
			return false
		}
		for i := range got {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
