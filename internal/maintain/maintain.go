// Package maintain tracks the validity of induced rules as the database
// mutates — the incremental counterpart to re-running the Inductive
// Learning Subsystem from scratch. Every mutation is checked against the
// rules it can affect:
//
//   - an INSERT that produces a counterexample (premise satisfied,
//     consequence violated) marks the rule STALE and records the tuple;
//     when the new tuple only partially instantiates an inter-object
//     rule's clauses, the rule is marked stale conservatively, because
//     the joined instance it creates may contradict the consequence.
//   - a DELETE of a tuple a rule covered marks the rule REFINABLE: a
//     deletion can never contradict a rule, but the rule's intervals may
//     now be looser than the data warrants and its support has dropped.
//
// Stale rules must not be served as valid: State.Serving filters them
// out of the snapshot's inference rule set while the full set (with
// status) remains visible for operators. Re-induction of the affected
// schemes (core.System.Maintain) clears the state.
//
// A State is immutable — ApplyMutation returns a new value — so it can
// ride inside the core layer's lock-free snapshots unchanged.
package maintain

import (
	"fmt"
	"sort"
	"strings"

	"intensional/internal/dict"
	"intensional/internal/query"
	"intensional/internal/relation"
	"intensional/internal/rules"
)

// Status is a rule's maintenance state.
type Status int

const (
	// Valid rules are served by inference.
	Valid Status = iota
	// Stale rules have a (possible) counterexample and are withheld
	// from inference until re-induction.
	Stale
	// Refinable rules are still valid — deletions cannot contradict —
	// but re-induction may tighten their intervals or drop them below
	// the support threshold.
	Refinable
)

// String renders the status as its lowercase name.
func (s Status) String() string {
	switch s {
	case Stale:
		return "stale"
	case Refinable:
		return "refinable"
	default:
		return "valid"
	}
}

// Info is one rule's maintenance record.
type Info struct {
	Status Status
	// Counterexamples counts the mutated tuples that (may) contradict
	// the rule. For conservative inter-object marks this is an upper
	// bound: the tuple witnesses a possible contradiction in the join.
	Counterexamples int
	// Definite reports whether at least one counterexample is proven —
	// every clause of the rule was evaluable on the mutated tuple.
	Definite bool
	// Example renders the first counterexample tuple, for operators.
	Example string
}

// State is an immutable rule-ID → Info map; rules absent from it are
// valid. The zero-value pointer from NewState is the all-valid state.
type State struct {
	info map[int]Info
}

// NewState returns the all-valid state.
func NewState() *State { return &State{} }

// Info returns the rule's maintenance record (zero value: valid).
func (s *State) Info(id int) Info {
	if s == nil || s.info == nil {
		return Info{}
	}
	return s.info[id]
}

// IsStale reports whether the rule must be withheld from inference.
func (s *State) IsStale(id int) bool { return s.Info(id).Status == Stale }

// Counts returns how many tracked rules are stale and refinable.
func (s *State) Counts() (stale, refinable int) {
	if s == nil {
		return 0, 0
	}
	for _, inf := range s.info {
		switch inf.Status {
		case Stale:
			stale++
		case Refinable:
			refinable++
		}
	}
	return stale, refinable
}

// ApplyMutation checks one executed mutation against the rule set and
// returns the successor state. The dictionary supplies the relationship
// topology that decides which inter-object rules the mutated table can
// affect.
func (s *State) ApplyMutation(d *dict.Dictionary, rs *rules.Set, m *query.Mutation) *State {
	if rs == nil || rs.Len() == 0 || m == nil || m.Count() == 0 {
		return s
	}
	cls := closuresContaining(d, m.Table)
	out := s.clone()
	for _, r := range rs.Rules() {
		if !affected(r, m.Table, cls) {
			continue
		}
		inf := out.info[r.ID]
		for _, t := range m.Inserted {
			verdict, definite := checkInsert(r, m, t)
			if !verdict {
				continue
			}
			inf.Status = Stale
			inf.Counterexamples++
			if definite {
				inf.Definite = true
			}
			if inf.Example == "" {
				inf.Example = fmt.Sprintf("%s%s", m.Table, t)
			}
		}
		if inf.Status != Stale {
			for _, t := range m.Deleted {
				if coversDelete(r, m, t) {
					inf.Status = Refinable
					break
				}
			}
		}
		if inf.Status != Valid {
			out.info[r.ID] = inf
		}
	}
	if len(out.info) == 0 {
		return NewState()
	}
	return out
}

// clone copies the state for modification.
func (s *State) clone() *State {
	out := &State{info: make(map[int]Info)}
	if s != nil {
		for id, inf := range s.info {
			out.info[id] = inf
		}
	}
	return out
}

// Serving returns the rules inference may use: the full set minus stale
// rules, IDs preserved. Refinable rules are included — they still hold
// on the data.
func (s *State) Serving(full *rules.Set) *rules.Set {
	if full == nil {
		return nil
	}
	stale, _ := s.Counts()
	if stale == 0 {
		return full
	}
	out := rules.NewSet()
	for _, r := range full.Rules() {
		if !s.IsStale(r.ID) {
			out.Add(r)
		}
	}
	return out
}

// SchemeKeys returns the scheme keys that have stale or refinable rules
// — the scope of the next re-induction — sorted for determinism.
func (s *State) SchemeKeys(full *rules.Set) []string {
	if s == nil || len(s.info) == 0 || full == nil {
		return nil
	}
	seen := map[string]bool{}
	for _, r := range full.Rules() {
		if s.Info(r.ID).Status != Valid {
			seen[r.Scheme().Key()] = true
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// affected reports whether a mutation of table can change the rule's
// truth: the rule mentions the table directly, or the rule spans
// several relations and some relationship join closure contains both
// the table and every relation the rule mentions (a new tuple anywhere
// in the join path can create new joined instances). A single-relation
// rule depends on that relation's tuples alone.
func affected(r *rules.Rule, table string, cls []map[string]bool) bool {
	rels := ruleRelations(r)
	for _, rel := range rels {
		if strings.EqualFold(rel, table) {
			return true
		}
	}
	if len(rels) < 2 {
		return false
	}
	for _, c := range cls {
		all := true
		for _, rel := range rels {
			if !c[strings.ToLower(rel)] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// ruleRelations returns the distinct relation names the rule's clauses
// mention, in clause order.
func ruleRelations(r *rules.Rule) []string {
	var out []string
	add := func(rel string) {
		for _, x := range out {
			if strings.EqualFold(x, rel) {
				return
			}
		}
		out = append(out, rel)
	}
	for _, c := range r.LHS {
		add(c.Attr.Relation)
	}
	add(r.RHS.Attr.Relation)
	return out
}

// closuresContaining returns the join closure (relationship relation,
// participants, and hierarchy levels above them) of every relationship
// whose closure contains the table — mirroring the joins induction
// materialises (induct.buildJoin).
func closuresContaining(d *dict.Dictionary, table string) []map[string]bool {
	if d == nil {
		return nil
	}
	var out []map[string]bool
	for _, rel := range d.Relationships() {
		c := map[string]bool{strings.ToLower(rel.Name): true}
		for _, l := range rel.Links {
			cur := l.To.Relation
			for depth := 0; depth < 8; depth++ { // bounded against cycles
				if c[strings.ToLower(cur)] {
					break
				}
				c[strings.ToLower(cur)] = true
				up, ok := d.LevelAbove(cur)
				if !ok {
					break
				}
				cur = up.To.Relation
			}
		}
		if c[strings.ToLower(table)] {
			out = append(out, c)
		}
	}
	return out
}

// checkInsert decides whether inserting tuple t into m.Table can make
// the rule false. It returns (counterexample?, definite?):
//
//   - a clause on the mutated table that the tuple fails ⇒ the tuple
//     cannot instantiate the premise ⇒ not a counterexample;
//   - the consequence on the mutated table satisfied ⇒ every joined
//     instance through the tuple satisfies the rule ⇒ not one either;
//   - every clause evaluable (single-table rule) with premise satisfied
//     and consequence violated ⇒ definite counterexample;
//   - otherwise a clause lives in another relation of the join, the new
//     joined instances are unknown ⇒ conservative counterexample.
func checkInsert(r *rules.Rule, m *query.Mutation, t relation.Tuple) (counterexample, definite bool) {
	allEval := true
	for _, c := range r.LHS {
		v, evaluable := clauseValue(c, m, t)
		if !evaluable {
			allEval = false
			continue
		}
		if !c.Contains(v) {
			return false, false
		}
	}
	v, evaluable := clauseValue(r.RHS, m, t)
	if !evaluable {
		return true, false
	}
	if r.RHS.Contains(v) {
		return false, false
	}
	return true, allEval
}

// coversDelete reports whether the deleted tuple was (possibly) covered
// by the rule's premise: no clause on the mutated table rules it out.
func coversDelete(r *rules.Rule, m *query.Mutation, t relation.Tuple) bool {
	for _, c := range r.LHS {
		v, evaluable := clauseValue(c, m, t)
		if evaluable && !c.Contains(v) {
			return false
		}
	}
	return true
}

// clauseValue evaluates the clause's attribute on the mutated tuple; it
// is only evaluable when the clause names the mutated table and the
// column exists there.
func clauseValue(c rules.Clause, m *query.Mutation, t relation.Tuple) (relation.Value, bool) {
	if !strings.EqualFold(c.Attr.Relation, m.Table) {
		return relation.Value{}, false
	}
	i, ok := m.Schema.Index(c.Attr.Attribute)
	if !ok || i >= len(t) {
		return relation.Value{}, false
	}
	return t[i], true
}
