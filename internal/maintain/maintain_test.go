package maintain

import (
	"strings"
	"testing"

	"intensional/internal/dict"
	"intensional/internal/query"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/shipdb"
	"intensional/internal/sqlparse"
	"intensional/internal/storage"
)

// fixture builds the ship test bed with its dictionary and the paper's
// seventeen rules.
func fixture(t *testing.T) (*storage.Catalog, *dict.Dictionary, *rules.Set) {
	t.Helper()
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	return cat, d, shipdb.PaperRules()
}

func mutate(t *testing.T, cat *storage.Catalog, src string) *query.Mutation {
	t.Helper()
	st, err := sqlparse.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := query.ApplyMutation(cat, st)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// ruleOn finds a rule whose rendering contains every fragment.
func ruleOn(t *testing.T, rs *rules.Set, fragments ...string) *rules.Rule {
	t.Helper()
	for _, r := range rs.Rules() {
		s := r.String()
		all := true
		for _, f := range fragments {
			if !strings.Contains(s, f) {
				all = false
				break
			}
		}
		if all {
			return r
		}
	}
	t.Fatalf("no rule matching %v in:\n%s", fragments, rs)
	return nil
}

func TestInsertCounterexampleMarksStale(t *testing.T) {
	cat, d, rs := fixture(t)
	st := NewState()

	// R2-style rule: CLASS.Displacement in SSBN range implies Type SSBN.
	// Inserting an SSN class with an SSBN-range displacement contradicts
	// every rule whose premise covers 9999 and whose consequence is
	// Type = SSBN.
	m := mutate(t, cat, `INSERT INTO CLASS VALUES ('9901', 'Contradictor', 'SSN', 16600)`)
	st2 := st.ApplyMutation(d, rs, m)

	stale, _ := st2.Counts()
	if stale == 0 {
		t.Fatal("no rule went stale on a contradicting insert")
	}
	r := ruleOn(t, rs, "CLASS.Displacement", "CLASS.Type = SSBN")
	inf := st2.Info(r.ID)
	if inf.Status != Stale || !inf.Definite || inf.Counterexamples != 1 {
		t.Errorf("info = %+v", inf)
	}
	if !strings.Contains(inf.Example, "Contradictor") {
		t.Errorf("example = %q", inf.Example)
	}
	// The original state is untouched (immutability).
	if s, _ := st.Counts(); s != 0 {
		t.Error("ApplyMutation mutated the receiver")
	}
}

func TestConformingInsertKeepsRulesValid(t *testing.T) {
	cat, d, rs := fixture(t)
	// An SSN class whose displacement sits inside the SSN rules' ranges
	// (2145..6955) and outside the SSBN premises.
	m := mutate(t, cat, `INSERT INTO CLASS VALUES ('9902', 'Conformer', 'SSN', 5000)`)
	st := NewState().ApplyMutation(d, rs, m)
	for _, r := range rs.Rules() {
		if inf := st.Info(r.ID); inf.Status == Stale && inf.Definite {
			t.Errorf("R%d definitely stale after a conforming insert: %+v (%s)", r.ID, inf, r)
		}
	}
}

func TestDeleteMarksRefinable(t *testing.T) {
	cat, d, rs := fixture(t)
	m := mutate(t, cat, `DELETE FROM CLASS WHERE Class = '0101'`) // Ohio, SSBN, 16600
	st := NewState().ApplyMutation(d, rs, m)
	stale, refinable := st.Counts()
	if stale != 0 {
		t.Errorf("deletes must never mark stale, got %d", stale)
	}
	if refinable == 0 {
		t.Error("deleting a covered tuple marked nothing refinable")
	}
	r := ruleOn(t, rs, "CLASS.Displacement", "CLASS.Type = SSBN")
	if st.Info(r.ID).Status != Refinable {
		t.Errorf("R%d = %v, want refinable", r.ID, st.Info(r.ID).Status)
	}
	// Refinable rules are still served.
	if st.Serving(rs).Len() != rs.Len() {
		t.Errorf("serving set lost rules: %d of %d", st.Serving(rs).Len(), rs.Len())
	}
}

func TestServingFiltersStaleKeepsIDs(t *testing.T) {
	cat, d, rs := fixture(t)
	m := mutate(t, cat, `INSERT INTO CLASS VALUES ('9901', 'Contradictor', 'SSN', 16600)`)
	st := NewState().ApplyMutation(d, rs, m)
	serving := st.Serving(rs)
	if serving.Len() >= rs.Len() {
		t.Fatalf("serving %d rules, full set %d", serving.Len(), rs.Len())
	}
	for _, r := range serving.Rules() {
		if st.IsStale(r.ID) {
			t.Errorf("stale R%d served", r.ID)
		}
		orig, ok := rs.ByID(r.ID)
		if !ok || orig != r {
			t.Errorf("serving set renumbered R%d", r.ID)
		}
	}
	// All-valid state serves the identical set object.
	if NewState().Serving(rs) != rs {
		t.Error("all-valid Serving should return the full set unchanged")
	}
}

func TestIntraRuleUnaffectedByOtherTable(t *testing.T) {
	cat, d, rs := fixture(t)
	// Single-relation rules over CLASS cannot be touched by SUBMARINE
	// inserts; multi-relation rules legitimately can (new join tuples).
	m := mutate(t, cat, `INSERT INTO SUBMARINE VALUES ('SSN999', 'Phantom', '0204')`)
	st := NewState().ApplyMutation(d, rs, m)
	for _, r := range rs.Rules() {
		intra := true
		rel := r.RHS.Attr.Relation
		for _, c := range r.LHS {
			if !strings.EqualFold(c.Attr.Relation, rel) {
				intra = false
			}
		}
		if intra && !strings.EqualFold(rel, shipdb.Submarine) && st.Info(r.ID).Status != Valid {
			t.Errorf("intra %s rule R%d affected by SUBMARINE insert: %v", rel, r.ID, st.Info(r.ID).Status)
		}
	}
}

func TestInterObjectConservativeStaleness(t *testing.T) {
	cat, d, rs := fixture(t)
	// INSTALL join rules: installing a BQS-04 sonar on an SSBN-class
	// ship contradicts R17 "if SONAR.Sonar = BQS-04 then CLASS.Type =
	// SSN". The new INSTALL tuple alone cannot prove it, so the mark is
	// conservative (not definite).
	m := mutate(t, cat, `INSERT INTO INSTALL VALUES ('SSBN130', 'BQS-04')`)
	st := NewState().ApplyMutation(d, rs, m)
	r := ruleOn(t, rs, "SONAR.Sonar = BQS-04", "CLASS.Type")
	inf := st.Info(r.ID)
	if inf.Status != Stale {
		t.Fatalf("inter-object rule R%d not stale: %+v", r.ID, inf)
	}
	if inf.Definite {
		t.Error("single-table evidence cannot be definite for a join rule")
	}
}

func TestUpdateIsDeletePlusInsert(t *testing.T) {
	cat, d, rs := fixture(t)
	m := mutate(t, cat, `UPDATE CLASS SET Displacement = 16600 WHERE Class = '0215'`) // Barbel SSN
	st := NewState().ApplyMutation(d, rs, m)
	stale, refinable := st.Counts()
	if stale == 0 {
		t.Error("update moving an SSN into the SSBN displacement range must stale a rule")
	}
	_ = refinable
	r := ruleOn(t, rs, "CLASS.Displacement", "CLASS.Type = SSBN")
	if !st.Info(r.ID).Definite {
		t.Errorf("expected a definite counterexample, got %+v", st.Info(r.ID))
	}
}

func TestSchemeKeys(t *testing.T) {
	cat, d, rs := fixture(t)
	m := mutate(t, cat, `INSERT INTO CLASS VALUES ('9901', 'Contradictor', 'SSN', 16600)`)
	st := NewState().ApplyMutation(d, rs, m)
	keys := st.SchemeKeys(rs)
	if len(keys) == 0 {
		t.Fatal("no schemes to re-induce")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Errorf("scheme keys unsorted: %v", keys)
		}
	}
	if NewState().SchemeKeys(rs) != nil {
		t.Error("all-valid state has no schemes to re-induce")
	}
}

func TestNullInsertIsConservative(t *testing.T) {
	cat, d, rs := fixture(t)
	m := mutate(t, cat, `INSERT INTO CLASS (Class, Type) VALUES ('9903', 'SSBN')`)
	st := NewState().ApplyMutation(d, rs, m)
	// NULL displacement: premise "Displacement in range" is not
	// satisfied, so displacement-premise rules stay valid; rules with
	// consequence on Displacement see an out-of-range (null) value and
	// go stale conservatively.
	r := ruleOn(t, rs, "CLASS.Displacement", "CLASS.Type = SSBN")
	if got := st.Info(r.ID); got.Status == Stale && got.Definite && strings.HasPrefix(r.String(), "if CLASS.Displacement") {
		t.Errorf("null-premise insert proved a counterexample: %+v", got)
	}
}

func TestValueSemantics(t *testing.T) {
	if Valid.String() != "valid" || Stale.String() != "stale" || Refinable.String() != "refinable" {
		t.Error("status names")
	}
	var s *State
	if s.Info(1).Status != Valid || s.IsStale(1) {
		t.Error("nil state must read as all-valid")
	}
	if st, ref := s.Counts(); st != 0 || ref != 0 {
		t.Error("nil counts")
	}
	if relation.Null().IsNull() != true {
		t.Error("sanity")
	}
}
