// Package baseline implements the comparator the paper's conclusion
// references: intensional answering from schema integrity constraints
// alone (in the style of Motro's VLDB'89 system), with no induced
// knowledge. The KER schema's declared constraint rules and structure
// rules are converted into the same rule representation the inference
// processor consumes, so the two knowledge sources can be compared on
// identical queries (experiment A3).
package baseline

import (
	"fmt"
	"strings"

	"intensional/internal/dict"
	"intensional/internal/ker"
	"intensional/internal/rules"
)

// Options select which declared knowledge enters the baseline rule set.
type Options struct {
	// IncludeStructureRules also converts "if x isa T and ... then y isa
	// S" structure rules. These often restate what induction would find
	// (Appendix B embeds the displacement ranges as structure rules), so
	// the strict integrity-constraint baseline excludes them.
	IncludeStructureRules bool
}

// FromModel converts the declared with-constraints of a KER model into a
// rule set. The dictionary resolves "isa SUBTYPE" conclusions to
// classifying-attribute clauses; object types are matched to relations by
// name.
func FromModel(m *ker.Model, d *dict.Dictionary, opts Options) (*rules.Set, error) {
	set := rules.NewSet()
	for _, o := range m.Types() {
		for _, c := range o.Constraints {
			switch c := c.(type) {
			case ker.ConstraintRule:
				r, err := convertConstraintRule(o, c)
				if err != nil {
					return nil, err
				}
				set.Add(r)
			case ker.StructureRule:
				if !opts.IncludeStructureRules {
					continue
				}
				r, err := convertStructureRule(o, d, c)
				if err != nil {
					return nil, err
				}
				set.Add(r)
			case ker.DomainRangeConstraint:
				// Domain ranges restrict storable values; they carry no
				// implication between attributes, so no rule results.
			}
		}
	}
	return set, nil
}

// convertConstraintRule grounds a constraint rule's conditions on the
// owning object type's relation.
func convertConstraintRule(o *ker.ObjectType, c ker.ConstraintRule) (*rules.Rule, error) {
	lhs := make([]rules.Clause, len(c.LHS))
	for i, cond := range c.LHS {
		cl, err := groundCond(o.Name, nil, cond)
		if err != nil {
			return nil, err
		}
		lhs[i] = cl
	}
	rhs, err := groundCond(o.Name, nil, c.RHS)
	if err != nil {
		return nil, err
	}
	return &rules.Rule{LHS: lhs, RHS: rhs}, nil
}

// convertStructureRule grounds a structure rule: role variables map to
// their declared object types, and the "isa SUBTYPE" conclusion becomes a
// point clause on the subtype's classifying attribute.
func convertStructureRule(o *ker.ObjectType, d *dict.Dictionary, c ker.StructureRule) (*rules.Rule, error) {
	roleType := map[string]string{}
	for _, role := range c.Roles {
		roleType[strings.ToLower(role.Var)] = role.Type
	}
	lhs := make([]rules.Clause, len(c.LHS))
	for i, cond := range c.LHS {
		cl, err := groundCond(o.Name, roleType, cond)
		if err != nil {
			return nil, err
		}
		lhs[i] = cl
	}
	h, sub, ok := d.HierarchyOfSubtype(c.ConclIsa)
	if !ok {
		return nil, fmt.Errorf("baseline: structure rule of %s concludes unknown subtype %q",
			o.Name, c.ConclIsa)
	}
	rhs := rules.PointClause(h.Attr(), sub.Value)
	return &rules.Rule{LHS: lhs, RHS: rhs}, nil
}

// groundCond resolves a condition's attribute reference to a concrete
// relation: role-qualified conditions use the role's object type, bare
// conditions the owning object type.
func groundCond(owner string, roleType map[string]string, c ker.Cond) (rules.Clause, error) {
	rel := owner
	if c.Var != "" {
		if roleType == nil {
			return rules.Clause{}, fmt.Errorf("baseline: condition %s uses a role variable outside a structure rule", c)
		}
		t, ok := roleType[strings.ToLower(c.Var)]
		if !ok {
			return rules.Clause{}, fmt.Errorf("baseline: condition %s references undeclared role %q", c, c.Var)
		}
		rel = t
	}
	return rules.RangeClause(rules.Attr(rel, c.Attr), c.Lo, c.Hi), nil
}
