package baseline_test

import (
	"testing"

	"intensional/internal/baseline"
	"intensional/internal/dict"
	"intensional/internal/infer"
	"intensional/internal/ker"
	"intensional/internal/query"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/shipdb"
	"intensional/internal/storage"
)

func baselineSetup(t *testing.T, opts baseline.Options) (*dict.Dictionary, *query.Processor) {
	t.Helper()
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ker.Parse(shipdb.KERSchema)
	if err != nil {
		t.Fatal(err)
	}
	set, err := baseline.FromModel(m, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	d.SetRules(set)
	return d, query.New(cat)
}

func TestConstraintOnlyRuleSet(t *testing.T) {
	d, _ := baselineSetup(t, baseline.Options{})
	set := d.Rules()
	// Appendix B declares exactly two constraint rules (the Class-range →
	// Type rules of object type CLASS).
	if set.Len() != 2 {
		t.Fatalf("constraint-only rules = %d, want 2:\n%s", set.Len(), set)
	}
	want := &rules.Rule{
		LHS: []rules.Clause{rules.RangeClause(rules.Attr("CLASS", "Class"),
			strVal("0101"), strVal("0103"))},
		RHS: rules.PointClause(rules.Attr("CLASS", "Type"), strVal("SSBN")),
	}
	if !set.Rules()[0].Equal(want) {
		t.Errorf("rule 0 = %s", set.Rules()[0])
	}
}

func TestWithStructureRules(t *testing.T) {
	d, _ := baselineSetup(t, baseline.Options{IncludeStructureRules: true})
	set := d.Rules()
	// 2 constraint rules + 2 CLASS structure rules + 3 SONAR + 4 INSTALL.
	if set.Len() != 11 {
		t.Fatalf("rules = %d, want 11:\n%s", set.Len(), set)
	}
}

// TestExample1BaselineWeaker is the A3 comparison: with integrity
// constraints only, Example 1 derives no intensional answer (no declared
// rule covers displacement), while induced rules derive Type = SSBN.
func TestExample1BaselineWeaker(t *testing.T) {
	d, q := baselineSetup(t, baseline.Options{})
	_, an, err := q.Run(`SELECT SUBMARINE.ID FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := infer.New(d).Derive(an)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Forward()); n != 0 {
		t.Errorf("constraint-only baseline should derive nothing for Example 1, got %v", res.Forward())
	}
}

// TestExample2BaselineEquivalent: the declared Class-range constraint
// gives Example 2 the same backward description the induced R5 gives.
func TestExample2BaselineEquivalent(t *testing.T) {
	d, q := baselineSetup(t, baseline.Options{})
	_, an, err := q.Run(`SELECT SUBMARINE.NAME, SUBMARINE.CLASS FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = "SSBN"`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := infer.New(d).Derive(an)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, desc := range res.Descriptions {
		if desc.Clause.Attr.EqualFold(rules.Attr("CLASS", "Class")) &&
			desc.Clause.Lo.Str() == "0101" && desc.Clause.Hi.Str() == "0103" {
			found = true
		}
	}
	if !found {
		t.Errorf("baseline should find the Class range: %v", res.Descriptions)
	}
}

// TestExample3BaselineWithStructureRules: the declared INSTALL structure
// rule "y.Sonar = BQS-04 then x isa SSN" fires forward for Example 3.
func TestExample3BaselineWithStructureRules(t *testing.T) {
	d, q := baselineSetup(t, baseline.Options{IncludeStructureRules: true})
	_, an, err := q.Run(`SELECT SUBMARINE.NAME FROM SUBMARINE, CLASS, INSTALL
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND SUBMARINE.ID = INSTALL.SHIP
		AND INSTALL.SONAR = "BQS-04"`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := infer.New(d).Derive(an)
	if err != nil {
		t.Fatal(err)
	}
	gotSSN := false
	for _, f := range res.Forward() {
		if f.Subtype == "SSN" {
			gotSSN = true
		}
	}
	if !gotSSN {
		t.Errorf("structure-rule baseline should derive SSN: %v", res.Facts)
	}
}

func TestConversionErrors(t *testing.T) {
	cat := storage.NewCatalog()
	d := dict.New(cat)
	m, err := ker.Parse(`
object type T
  has key: X domain: integer
  with if x isa T and x.X = 1 then x isa NOSUCH
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baseline.FromModel(m, d, baseline.Options{IncludeStructureRules: true}); err == nil {
		t.Error("unknown subtype in conclusion should error")
	}
	m2, err := ker.Parse(`
object type T
  has key: X domain: integer
  with if x isa T and y.X = 1 then x isa T
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baseline.FromModel(m2, d, baseline.Options{IncludeStructureRules: true}); err == nil {
		t.Error("undeclared role variable should error")
	}
}

func strVal(s string) relation.Value { return relation.String(s) }
