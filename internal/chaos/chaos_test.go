package chaos_test

import (
	"path/filepath"
	"testing"

	"intensional/internal/chaos"
)

// TestShortChaosRun keeps a bounded slice of the chaos harness in the
// ordinary test suite: enough cycles to cross several disk deaths,
// torn writes, and checkpoints, cheap enough to run on every push. The
// full run is `make chaos`.
func TestShortChaosRun(t *testing.T) {
	rep, err := chaos.Run(filepath.Join(t.TempDir(), "db"), chaos.Config{
		Iters: 25,
		Seed:  1,
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Iters != 25 {
		t.Errorf("completed %d iterations, want 25", rep.Iters)
	}
	if rep.Acked == 0 || rep.Refused == 0 {
		t.Errorf("run exercised too little: %d acked, %d refused (want both > 0)", rep.Acked, rep.Refused)
	}
}

// TestShortReplicaChaosRun keeps a bounded slice of the replication
// chaos scenario in the ordinary test suite: enough cycles to cross
// follower kills, partitions, and leader checkpoints. The full run is
// `make chaos`.
func TestShortReplicaChaosRun(t *testing.T) {
	rep, err := chaos.RunReplica(t.TempDir(), chaos.ReplicaConfig{
		Iters: 12,
		Seed:  1,
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Iters != 12 {
		t.Errorf("completed %d iterations, want 12", rep.Iters)
	}
	if rep.Kills == 0 && rep.Partitions == 0 {
		t.Errorf("run exercised no faults: %+v", rep)
	}
}

// TestChaosIsDeterministic replays the same seed twice and expects
// byte-identical reports — the property that makes a failing seed a
// reproducible bug report.
func TestChaosIsDeterministic(t *testing.T) {
	run := func(dir string) *chaos.Report {
		rep, err := chaos.Run(dir, chaos.Config{Iters: 10, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a := run(filepath.Join(t.TempDir(), "a"))
	b := run(filepath.Join(t.TempDir(), "b"))
	if a.Acked != b.Acked || a.Refused != b.Refused || a.Checkpoint != b.Checkpoint {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestShortBootstrapChaosRun keeps a bounded slice of the
// mid-bootstrap-partition scenario in the ordinary suite: every cycle
// drops the snapshot link at a seeded chunk and requires a resumed,
// byte-identical recovery. The full 200-cycle run is `make chaos`.
func TestShortBootstrapChaosRun(t *testing.T) {
	rep, err := chaos.RunReplicaBootstrap(t.TempDir(), chaos.ReplicaConfig{
		Iters: 8,
		Seed:  1,
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Iters != 8 || rep.Partitions != 8 {
		t.Errorf("completed %d iterations with %d drops, want 8 of each", rep.Iters, rep.Partitions)
	}
}

// TestShortReconfigChaosRun keeps a bounded slice of the
// reconfiguration-under-load scenario in the ordinary suite: seeded
// leader swaps behind a failover-aware client, no restarts, no lost
// writes. The full 200-cycle run is `make chaos`.
func TestShortReconfigChaosRun(t *testing.T) {
	rep, err := chaos.RunReplicaReconfig(t.TempDir(), chaos.ReplicaConfig{
		Iters: 10,
		Seed:  1,
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Iters != 10 {
		t.Errorf("completed %d iterations, want 10", rep.Iters)
	}
	if rep.Handovers == 0 {
		t.Errorf("run swapped no leaders: %+v", rep)
	}
}

// TestShortSlowLinkChaosRun keeps one throttled bootstrap in the
// ordinary suite: the transfer must complete AND take at least the
// time the rate limit implies.
func TestShortSlowLinkChaosRun(t *testing.T) {
	rep, err := chaos.RunReplicaSlowLink(t.TempDir(), chaos.ReplicaConfig{
		Iters: 2,
		Seed:  1,
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Iters != 2 {
		t.Errorf("completed %d iterations, want 2", rep.Iters)
	}
}
