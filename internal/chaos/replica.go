// Replication chaos: the seeded kill/partition harness for the
// replicated serving tier. One leader serves its WAL over loopback
// HTTP; one follower streams it while the harness kills and restarts
// the follower mid-stream, partitions the network, and forces
// checkpoint-triggered WAL resets on the leader. After every cycle the
// follower must reconverge and satisfy the tier's three promises:
//
//  1. Durability across the wire: every batch the leader acknowledged
//     is visible on the follower exactly as committed — kills and
//     partitions lose nothing.
//  2. Soundness everywhere: the follower never serves a rule its own
//     replayed rows contradict, because it replays the same
//     maintenance records the leader logged.
//  3. Convergence: leader and follower answer the probe query
//     identically, at the same snapshot version.
//
// Random choices are driven by one seeded source, so a failing run is
// reproducible from its seed; the waits are condition-based, so timing
// noise cannot fail a healthy run.

package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"intensional/internal/answer"
	"intensional/internal/core"
	"intensional/internal/induct"
	"intensional/internal/replica"
)

// ReplicaConfig parameterises a replication chaos run.
type ReplicaConfig struct {
	// Iters is how many write → fault → reconverge cycles to run.
	Iters int
	// Seed drives every random choice; the same seed replays the same
	// schedule of writes, kills, and partitions.
	Seed int64
	// Logf, when non-nil, receives per-iteration progress lines.
	Logf func(format string, args ...any)
}

// replicaRetain is the leader's in-memory WAL retention for the run:
// small enough that a follower killed across a burst of writes falls
// behind it and must exercise the snapshot re-bootstrap path.
const replicaRetain = 6

// flakyTransport drops every request while down — the network
// partition between follower and leader.
type flakyTransport struct {
	down atomic.Bool
}

func (t *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if t.down.Load() {
		return nil, fmt.Errorf("chaos: network partitioned")
	}
	return http.DefaultTransport.RoundTrip(r)
}

// RunReplica executes cfg.Iters replication chaos cycles under dir. It
// returns an error only for harness-level failures (the leader's disk
// is healthy; a refused leader write is a harness bug here); invariant
// breaches go in Report.Violations.
func RunReplica(dir string, cfg ReplicaConfig) (*Report, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 50
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	leaderDir := dir + "/leader"
	if err := buildFixture(leaderDir); err != nil {
		return nil, fmt.Errorf("chaos: build fixture: %w", err)
	}
	leader, err := core.OpenDurable(leaderDir, core.DurableOptions{
		CheckpointBytes:   64 << 10,
		ReplicationRetain: replicaRetain,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: open leader: %w", err)
	}
	defer leader.Close() //ilint:allow errdrop — harness teardown; nothing to do about a close failure

	mux := http.NewServeMux()
	mux.Handle("/replica/wal", replica.WALHandler(leader))
	mux.Handle("/replica/snapshot", replica.SnapshotHandler(leader))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	net := &flakyTransport{}
	openFollower := func() (*replica.Follower, error) {
		f, err := replica.Open(replica.Options{
			Dir:             dir + "/follower",
			Leader:          srv.URL,
			PollWait:        200 * time.Millisecond,
			RetryBase:       2 * time.Millisecond,
			RetryMax:        10 * time.Millisecond,
			DisconnectAfter: 1,
			HTTP:            &http.Client{Transport: net},
			Logf:            logf,
		})
		if err != nil {
			return nil, err
		}
		f.Start()
		return f, nil
	}
	f, err := openFollower()
	if err != nil {
		return nil, fmt.Errorf("chaos: open follower: %w", err)
	}
	defer func() {
		f.Close() //ilint:allow errdrop — harness teardown
	}()

	rep := &Report{}
	markers := &markerSet{present: map[string]bool{}, indet: map[string]bool{}}
	ctx := context.Background()

	for i := 0; i < cfg.Iters; i++ {
		// Fault phase: kill the follower process, partition the network,
		// or leave it streaming — then write on the leader either way, so
		// every fault overlaps in-flight replication.
		const (
			faultNone = iota
			faultKill
			faultPartition
		)
		fault := faultNone
		switch rng.Intn(4) {
		case 0:
			fault = faultKill
			rep.Kills++
			logf("chaos: iter %d: killing the follower mid-stream", i)
			if err := f.Close(); err != nil {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("iteration %d: follower close: %v", i, err))
				break
			}
		case 1:
			fault = faultPartition
			rep.Partitions++
			logf("chaos: iter %d: partitioning the follower", i)
			net.down.Store(true)
		}

		// Write phase: acknowledged leader batches become the ground
		// truth the reconverged follower is checked against. Bursts can
		// exceed the leader's retention window, forcing a killed follower
		// through the snapshot re-bootstrap path when it comes back.
		steps := 2 + rng.Intn(6)
		for j := 0; j < steps; j++ {
			var stmt, marker string
			var insert bool
			switch rng.Intn(8) {
			case 0:
				// Contradict an induced rule so replicated maintenance has
				// something to withhold.
				stmt = fmt.Sprintf(`INSERT INTO CLASS VALUES ('97%02d', 'RChaos-%d-%d', 'SSN', 16600)`, i%100, i, j)
			case 1:
				if m := markers.pick(rng); m != "" {
					marker, insert = m, false
					stmt = fmt.Sprintf(`DELETE FROM SONAR WHERE Sonar = '%s'`, m)
					break
				}
				fallthrough
			default:
				marker, insert = fmt.Sprintf("RC-%d-%d", i, j), true
				stmt = fmt.Sprintf(`INSERT INTO SONAR VALUES ('%s', 'RChaos')`, marker)
			}
			if _, err := leader.ApplyBatch(ctx, []string{stmt}); err != nil {
				return nil, fmt.Errorf("chaos: iteration %d: leader write refused (healthy disk): %w", i, err)
			}
			rep.Acked++
			if marker != "" {
				markers.present[marker] = insert
			}
		}
		if rng.Intn(6) == 0 {
			// Rule maintenance on the leader ships to the follower as a
			// WAL record like any other write.
			if _, err := leader.Maintain(ctx, induct.Options{Nc: 3}); err != nil {
				return nil, fmt.Errorf("chaos: iteration %d: leader maintain: %w", i, err)
			}
		}
		if rng.Intn(5) == 0 {
			// A leader checkpoint resets its WAL file; follower catch-up
			// must survive the reset (the retention buffer is independent
			// of the file).
			rep.Checkpoint++
			if err := leader.Checkpoint(); err != nil {
				return nil, fmt.Errorf("chaos: iteration %d: leader checkpoint: %w", i, err)
			}
		}

		// Heal phase: restart the killed follower from its own directory,
		// or lift the partition.
		switch fault {
		case faultKill:
			if f, err = openFollower(); err != nil {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("iteration %d: follower restart failed: %v", i, err))
			}
		case faultPartition:
			net.down.Store(false)
		}
		if len(rep.Violations) > 0 {
			break
		}

		// Reconvergence, then the three invariants.
		target := leader.WalSeq()
		if !waitApplied(f, target, 20*time.Second) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("iteration %d: follower stuck at seq %d, leader at %d (status %+v)",
					i, f.System().WalSeq(), target, f.Status()))
			break
		}
		checkMarkers(f.System(), i, markers, rep)
		checkRules(f.System(), i, rep)
		checkConverged(leader, f.System(), i, rep)
		rep.Iters++
		if len(rep.Violations) > 0 {
			break
		}
	}
	st := f.Status()
	logf("chaos: replica run: %d cycles, %d acked, %d kills, %d partitions, %d leader checkpoints, %d bootstraps, %d violations",
		rep.Iters, rep.Acked, rep.Kills, rep.Partitions, rep.Checkpoint, st.Bootstraps, len(rep.Violations))
	return rep, nil
}

// waitApplied blocks until the follower has applied seq or the timeout
// lapses.
func waitApplied(f *replica.Follower, seq uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if f.Status().AppliedSeq >= seq {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// replicaProbe is the convergence probe: a join touching both the
// replicated base relations and the rule-derived intensional answer.
const replicaProbe = `SELECT SUBMARINE.Id, SUBMARINE.Name, CLASS.Type
	FROM SUBMARINE, CLASS
	WHERE SUBMARINE.Class = CLASS.Class`

// checkConverged asserts invariant 3: leader and follower answer the
// probe identically, at the same snapshot version.
func checkConverged(leader, follower *core.System, i int, rep *Report) {
	lr, err := leader.Query(replicaProbe, answer.ForwardOnly)
	if err != nil {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("iteration %d: leader probe query: %v", i, err))
		return
	}
	fr, err := follower.Query(replicaProbe, answer.ForwardOnly)
	if err != nil {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("iteration %d: follower probe query: %v", i, err))
		return
	}
	if lr.Version != fr.Version {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("iteration %d: snapshot versions diverge: leader %d, follower %d", i, lr.Version, fr.Version))
	}
	if lr.Extensional.String() != fr.Extensional.String() {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("iteration %d: extensional answers diverge", i))
	}
	if lr.Intensional.Text() != fr.Intensional.Text() {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("iteration %d: intensional answers diverge:\nleader: %s\nfollower: %s",
				i, lr.Intensional.Text(), fr.Intensional.Text()))
	}
}
