// Network-fault chaos: the seeded scenarios for replication over real
// networks. Where replica.go kills processes and cuts the link between
// exchanges, these three scenarios attack the transfer and control
// paths themselves:
//
//   - Bootstrap: a fresh follower's chunked snapshot download loses its
//     link mid-transfer, at a seeded chunk index, every cycle. The
//     follower must resume from its spool — verified chunks are never
//     re-fetched (pinned by per-chunk request counters), the transfer
//     counts as ONE bootstrap, and the recovered replica answers
//     byte-identically.
//   - Reconfig: a two-node cluster serves a failover-aware client while
//     the configuration store repeatedly swaps the leader. Handover is
//     driven entirely by the watchers (fenced demotion, drained
//     promotion); no process restarts, no acknowledged write is lost,
//     and the client's read-your-writes token holds across the swap.
//   - SlowLink: the leader throttles snapshot chunks to a fixed byte
//     rate. The transfer must still complete, converge, and take at
//     least the time the throttle implies — proving the pace is real,
//     not a no-op.
//
// All three are deterministic per seed, like every scenario in this
// package.

package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"time"

	"intensional/internal/cluster"
	"intensional/internal/core"
	"intensional/internal/replica"
	"intensional/internal/server"
)

// bootstrapChunkSize keeps archives spanning many chunks, so a seeded
// drop index usually lands mid-transfer.
const bootstrapChunkSize = 512

// chunkDropTransport counts snapshot chunk requests by index and fails
// the link exactly once, on the first request for chunk failAt.
type chunkDropTransport struct {
	failAt int

	mu     sync.Mutex
	counts map[int]int // guarded by mu
	failed bool        // guarded by mu
}

func (t *chunkDropTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	q := r.URL.Query()
	if r.URL.Path == "/replica/snapshot" && q.Get("chunk") != "" {
		n, _ := strconv.Atoi(q.Get("chunk")) //ilint:allow errdrop — the follower under test only sends numeric chunk indices
		t.mu.Lock()
		if t.counts == nil {
			t.counts = map[int]int{}
		}
		t.counts[n]++
		fail := n == t.failAt && !t.failed
		if fail {
			t.failed = true
		}
		t.mu.Unlock()
		if fail {
			return nil, fmt.Errorf("chaos: link dropped at chunk %d", n)
		}
	}
	return http.DefaultTransport.RoundTrip(r)
}

func (t *chunkDropTransport) count(n int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[n]
}

// RunReplicaBootstrap executes cfg.Iters bootstrap-partition cycles:
// write on the leader, start a fresh follower whose snapshot download
// dies at a seeded chunk, and require a resumed — not restarted —
// transfer and a byte-identical replica.
func RunReplicaBootstrap(dir string, cfg ReplicaConfig) (*Report, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 200
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	leaderDir := dir + "/leader"
	if err := buildFixture(leaderDir); err != nil {
		return nil, fmt.Errorf("chaos: build fixture: %w", err)
	}
	leader, err := core.OpenDurable(leaderDir, core.DurableOptions{CheckpointBytes: 64 << 10})
	if err != nil {
		return nil, fmt.Errorf("chaos: open leader: %w", err)
	}
	defer leader.Close() //ilint:allow errdrop — harness teardown; nothing to do about a close failure

	tracker := replica.NewLeader(leader, replica.LeaderOptions{ChunkSize: bootstrapChunkSize})
	mux := http.NewServeMux()
	mux.Handle("/replica/wal", tracker.WALHandler())
	mux.Handle("/replica/snapshot", tracker.SnapshotHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rep := &Report{}
	markers := &markerSet{present: map[string]bool{}, indet: map[string]bool{}}
	ctx := context.Background()

	for i := 0; i < cfg.Iters; i++ {
		// Grow the archive so every cycle transfers fresh state.
		steps := 1 + rng.Intn(4)
		for j := 0; j < steps; j++ {
			marker := fmt.Sprintf("BC-%d-%d", i, j)
			stmt := fmt.Sprintf(`INSERT INTO SONAR VALUES ('%s', 'BChaos')`, marker)
			if _, err := leader.ApplyBatch(ctx, []string{stmt}); err != nil {
				return nil, fmt.Errorf("chaos: iteration %d: leader write refused (healthy disk): %w", i, err)
			}
			rep.Acked++
			markers.present[marker] = true
		}

		// Learn the archive's chunk span, then pick where the link dies.
		m, err := (&replica.Client{Base: srv.URL}).Manifest(ctx)
		if err != nil {
			return nil, fmt.Errorf("chaos: iteration %d: manifest: %w", i, err)
		}
		failAt := rng.Intn(len(m.Chunks))
		rep.Partitions++
		logf("chaos: iter %d: bootstrapping %d chunks, dropping the link at chunk %d", i, len(m.Chunks), failAt)

		tr := &chunkDropTransport{failAt: failAt}
		f, err := replica.Open(replica.Options{
			Dir:             fmt.Sprintf("%s/f%d", dir, i),
			Leader:          srv.URL,
			NodeID:          "boot",
			PollWait:        200 * time.Millisecond,
			RetryBase:       2 * time.Millisecond,
			RetryMax:        10 * time.Millisecond,
			DisconnectAfter: 1,
			HTTP:            &http.Client{Transport: tr},
			Logf:            logf,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: iteration %d: open follower: %w", i, err)
		}
		f.Start()
		if !waitApplied(f, leader.WalSeq(), 20*time.Second) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("iteration %d: follower stuck at seq %d, leader at %d (status %+v)",
					i, f.System().WalSeq(), leader.WalSeq(), f.Status()))
			f.Close() //ilint:allow errdrop — harness teardown after a violation
			break
		}

		// The resume invariants, pinned by the chunk-request counters: one
		// logical bootstrap, verified chunks fetched exactly once, the
		// dropped chunk exactly twice.
		if st := f.Status(); st.Bootstraps != 1 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("iteration %d: %d bootstraps, want 1 (resume restarted the transfer?)", i, st.Bootstraps))
		}
		for n := 0; n < failAt; n++ {
			if got := tr.count(n); got != 1 {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("iteration %d: chunk %d fetched %d times; a resume must not re-fetch verified chunks", i, n, got))
			}
		}
		if got := tr.count(failAt); got != 2 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("iteration %d: dropped chunk %d fetched %d times, want 2", i, failAt, got))
		}
		checkMarkers(f.System(), i, markers, rep)
		checkRules(f.System(), i, rep)
		checkConverged(leader, f.System(), i, rep)
		if err := f.Close(); err != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("iteration %d: follower close: %v", i, err))
		}
		rep.Iters++
		if len(rep.Violations) > 0 {
			break
		}
	}
	logf("chaos: bootstrap run: %d cycles, %d acked, %d mid-transfer drops, %d violations",
		rep.Iters, rep.Acked, rep.Partitions, len(rep.Violations))
	return rep, nil
}

// reconfigNode is one process of the reconfig scenario: a system, its
// role controller, and a full serving-tier handler.
type reconfigNode struct {
	id   string
	sys  *core.System
	node *replica.Node
	srv  *httptest.Server
}

// RunReplicaReconfig executes cfg.Iters write → (maybe) swap-the-leader
// cycles against a two-node cluster behind a failover-aware client.
// Every handover is live: watcher-driven, fenced, drained, and without
// restarting either process.
func RunReplicaReconfig(dir string, cfg ReplicaConfig) (*Report, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 200
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	aDir := dir + "/a"
	if err := buildFixture(aDir); err != nil {
		return nil, fmt.Errorf("chaos: build fixture: %w", err)
	}
	sysA, err := core.OpenDurable(aDir, core.DurableOptions{CheckpointBytes: 64 << 10})
	if err != nil {
		return nil, fmt.Errorf("chaos: open a: %w", err)
	}
	defer sysA.Close() //ilint:allow errdrop — harness teardown

	newNode := func(id string, sys *core.System, f *replica.Follower) (*reconfigNode, error) {
		tracker := replica.NewLeader(sys, replica.LeaderOptions{ChunkSize: bootstrapChunkSize})
		node, err := replica.NewNode(sys, tracker, f, replica.NodeOptions{
			ID: id,
			Follower: replica.Options{
				Dir:       fmt.Sprintf("%s/%s", dir, id),
				Leader:    "rewritten-on-demotion",
				PollWait:  200 * time.Millisecond,
				RetryBase: 2 * time.Millisecond,
				RetryMax:  10 * time.Millisecond,
			},
			Logf: logf,
		})
		if err != nil {
			return nil, err
		}
		n := &reconfigNode{id: id, sys: sys, node: node}
		n.srv = httptest.NewServer(server.New(sys, server.Options{
			Replica:        tracker,
			LeaderAddrFunc: node.LeaderAddr,
			FollowerStatus: node.FollowerStatus,
		}).Handler())
		return n, nil
	}

	a, err := newNode("a", sysA, nil)
	if err != nil {
		return nil, fmt.Errorf("chaos: node a: %w", err)
	}
	defer a.srv.Close()
	defer a.node.Close()

	fb, err := replica.Open(replica.Options{
		Dir:       dir + "/b",
		Leader:    a.srv.URL,
		NodeID:    "b",
		PollWait:  200 * time.Millisecond,
		RetryBase: 2 * time.Millisecond,
		RetryMax:  10 * time.Millisecond,
		Logf:      logf,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: open b: %w", err)
	}
	fb.Start()
	defer fb.System().Close() //ilint:allow errdrop — harness teardown
	b, err := newNode("b", fb.System(), fb)
	if err != nil {
		return nil, fmt.Errorf("chaos: node b: %w", err)
	}
	defer b.srv.Close()
	defer b.node.Close()

	configFor := func(leaderID string) *cluster.Config {
		roleA, roleB := cluster.RoleFollower, cluster.RoleLeader
		if leaderID == "a" {
			roleA, roleB = cluster.RoleLeader, cluster.RoleFollower
		}
		return &cluster.Config{Nodes: []cluster.Node{
			{ID: "a", Addr: a.srv.URL, Role: roleA},
			{ID: "b", Addr: b.srv.URL, Role: roleB},
		}}
	}
	store := cluster.NewMemStore(configFor("a"))
	stop := make(chan struct{})
	defer close(stop)
	go a.node.Watch(stop, store)
	go b.node.Watch(stop, store)

	client := replica.NewFailoverClient(a.srv.URL)
	client.Retry = replica.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond}
	client.MaxAttempts = 64
	client.Logf = logf

	rep := &Report{}
	markers := &markerSet{present: map[string]bool{}, indet: map[string]bool{}}
	ctx := context.Background()
	leaderID := "a"

	rolesSettled := func(want string) bool {
		lead, follow := a, b
		if want == "b" {
			lead, follow = b, a
		}
		return lead.node.Role() == cluster.RoleLeader && follow.node.Role() == cluster.RoleFollower
	}
	waitSettled := func(want string, timeout time.Duration) bool {
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			if rolesSettled(want) {
				return true
			}
			time.Sleep(2 * time.Millisecond)
		}
		return false
	}
	bySeq := func(sys *core.System, seq uint64, timeout time.Duration) bool {
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			if sys.WalSeq() >= seq {
				return true
			}
			time.Sleep(2 * time.Millisecond)
		}
		return false
	}

	for i := 0; i < cfg.Iters; i++ {
		// Maybe swap the leader, then immediately write through the
		// client — the handover happens underneath the load, and the
		// client's redirects and retries absorb it.
		if rng.Intn(2) == 0 {
			if leaderID == "a" {
				leaderID = "b"
			} else {
				leaderID = "a"
			}
			rep.Handovers++
			logf("chaos: iter %d: swapping the leader to %s under load", i, leaderID)
			store.Set(configFor(leaderID))
		}
		steps := 1 + rng.Intn(3)
		var lastSeq uint64
		for j := 0; j < steps; j++ {
			marker := fmt.Sprintf("HC-%d-%d", i, j)
			res, err := client.Mutate(ctx, []string{fmt.Sprintf(`INSERT INTO SONAR VALUES ('%s', 'HChaos')`, marker)})
			if err != nil {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("iteration %d: client write failed across handover: %v", i, err))
				break
			}
			rep.Acked++
			markers.present[marker] = true
			lastSeq = res.WalSeq
		}
		if len(rep.Violations) > 0 {
			break
		}

		// Read-your-writes through the client: the tokened query must see
		// this cycle's last marker wherever the client is pointed now.
		lastMarker := fmt.Sprintf("HC-%d-%d", i, steps-1)
		qr, err := client.Query(ctx, fmt.Sprintf(
			`SELECT SONAR.Sonar FROM SONAR WHERE SONAR.Sonar = '%s'`, lastMarker), "extensional")
		if err != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("iteration %d: client read-your-writes query: %v", i, err))
			break
		}
		if qr.RowCount != 1 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("iteration %d: read-your-writes lost marker %s (rowCount %d)", i, lastMarker, qr.RowCount))
			break
		}

		// Let the cluster settle — roles as configured, both nodes at the
		// last acknowledged write — then check the three invariants on
		// both systems.
		if !waitSettled(leaderID, 20*time.Second) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("iteration %d: handover to %s never settled (a=%s b=%s)",
					i, leaderID, a.node.Role(), b.node.Role()))
			break
		}
		if !bySeq(a.sys, lastSeq, 20*time.Second) || !bySeq(b.sys, lastSeq, 20*time.Second) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("iteration %d: nodes never reached seq %d (a=%d b=%d)",
					i, lastSeq, a.sys.WalSeq(), b.sys.WalSeq()))
			break
		}
		lead, follow := a, b
		if leaderID == "b" {
			lead, follow = b, a
		}
		checkMarkers(follow.sys, i, markers, rep)
		checkRules(follow.sys, i, rep)
		checkConverged(lead.sys, follow.sys, i, rep)
		rep.Iters++
		if len(rep.Violations) > 0 {
			break
		}
	}
	logf("chaos: reconfig run: %d cycles, %d acked, %d handovers, %d violations",
		rep.Iters, rep.Acked, rep.Handovers, len(rep.Violations))
	return rep, nil
}

// slowLinkRate throttles bootstrap chunk shipping hard enough that a
// no-op pace would finish measurably too fast.
const slowLinkRate = 64 << 10 // bytes/second

// RunReplicaSlowLink executes cfg.Iters throttled-bootstrap cycles: the
// leader rate-limits snapshot chunks and the follower must still
// bootstrap, converge, and take at least the time the throttle implies.
func RunReplicaSlowLink(dir string, cfg ReplicaConfig) (*Report, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 10
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	leaderDir := dir + "/leader"
	if err := buildFixture(leaderDir); err != nil {
		return nil, fmt.Errorf("chaos: build fixture: %w", err)
	}
	leader, err := core.OpenDurable(leaderDir, core.DurableOptions{CheckpointBytes: 64 << 10})
	if err != nil {
		return nil, fmt.Errorf("chaos: open leader: %w", err)
	}
	defer leader.Close() //ilint:allow errdrop — harness teardown

	tracker := replica.NewLeader(leader, replica.LeaderOptions{
		ChunkSize: 2048,
		RateLimit: slowLinkRate,
	})
	mux := http.NewServeMux()
	mux.Handle("/replica/wal", tracker.WALHandler())
	mux.Handle("/replica/snapshot", tracker.SnapshotHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rep := &Report{}
	markers := &markerSet{present: map[string]bool{}, indet: map[string]bool{}}
	ctx := context.Background()

	for i := 0; i < cfg.Iters; i++ {
		steps := 1 + rng.Intn(3)
		for j := 0; j < steps; j++ {
			marker := fmt.Sprintf("SL-%d-%d", i, j)
			if _, err := leader.ApplyBatch(ctx, []string{fmt.Sprintf(`INSERT INTO SONAR VALUES ('%s', 'SChaos')`, marker)}); err != nil {
				return nil, fmt.Errorf("chaos: iteration %d: leader write refused (healthy disk): %w", i, err)
			}
			rep.Acked++
			markers.present[marker] = true
		}
		m, err := (&replica.Client{Base: srv.URL}).Manifest(ctx)
		if err != nil {
			return nil, fmt.Errorf("chaos: iteration %d: manifest: %w", i, err)
		}

		start := time.Now()
		f, err := replica.Open(replica.Options{
			Dir:       fmt.Sprintf("%s/f%d", dir, i),
			Leader:    srv.URL,
			NodeID:    "slow",
			PollWait:  200 * time.Millisecond,
			RetryBase: 2 * time.Millisecond,
			RetryMax:  10 * time.Millisecond,
			Logf:      logf,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: iteration %d: open follower: %w", i, err)
		}
		f.Start()
		if !waitApplied(f, leader.WalSeq(), 60*time.Second) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("iteration %d: throttled bootstrap never converged (status %+v)", i, f.Status()))
			f.Close() //ilint:allow errdrop — harness teardown after a violation
			break
		}
		elapsed := time.Since(start)
		// The pace floor, with slack for the reservation timeline's free
		// first chunk: shipping Size bytes at the configured rate cannot
		// legitimately beat half the theoretical minimum.
		floor := time.Duration(m.Size) * time.Second / (2 * slowLinkRate)
		if elapsed < floor {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("iteration %d: %d bytes arrived in %s, under the %s throttle floor — the rate limit is not pacing",
					i, m.Size, elapsed, floor))
		}
		logf("chaos: iter %d: %d bytes bootstrapped in %s under a %d B/s throttle", i, m.Size, elapsed.Round(time.Millisecond), slowLinkRate)
		checkMarkers(f.System(), i, markers, rep)
		checkRules(f.System(), i, rep)
		checkConverged(leader, f.System(), i, rep)
		if err := f.Close(); err != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("iteration %d: follower close: %v", i, err))
		}
		rep.Iters++
		if len(rep.Violations) > 0 {
			break
		}
	}
	logf("chaos: slow-link run: %d cycles, %d acked, %d violations", rep.Iters, rep.Acked, len(rep.Violations))
	return rep, nil
}
