// Package chaos is the randomized crash-recovery harness for the
// durable write path: a seeded loop of mutate → inject fault → kill →
// reopen, asserting after every cycle the two invariants the design
// promises and a unit test cannot sweep broadly enough to trust:
//
//  1. Durability: every acknowledged batch is recoverable. A mutation
//     whose ApplyBatch returned nil is visible after any crash; one
//     that returned an error left no trace.
//  2. Soundness: no serving rule is contradicted by the data. Stale
//     rules are withheld from inference, so a recovered system never
//     answers intensionally from a rule its own rows refute.
//
// Faults are injected through the same fault.FS seam the unit tests
// use — a random operation number starts a "disk death" (every file
// operation from there on fails, optionally with torn writes), and
// fault.Injector.Shutdown force-closes the files mid-flight like a
// process kill. Everything is driven by one math/rand source, so a
// failing run is reproducible from its seed alone.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"intensional/internal/core"
	"intensional/internal/fault"
	"intensional/internal/induct"
	"intensional/internal/maintain"
	"intensional/internal/rules"
	"intensional/internal/shipdb"
)

// Config parameterises a chaos run.
type Config struct {
	// Iters is how many crash-recovery cycles to run.
	Iters int
	// Seed drives every random choice; the same seed replays the same
	// run exactly.
	Seed int64
	// CheckpointBytes is the auto-checkpoint threshold handed to the
	// system under test (default 32 KiB, small enough to exercise
	// checkpoints under fault).
	CheckpointBytes int64
	// Logf, when non-nil, receives per-iteration progress lines.
	Logf func(format string, args ...any)
}

// Report summarises a completed run.
type Report struct {
	Iters      int      // cycles completed
	Acked      int      // acknowledged mutations across the run
	Refused    int      // mutations refused by an injected fault
	Checkpoint int      // explicit checkpoints attempted
	Kills      int      // follower kill/restarts (replica scenario)
	Partitions int      // network partitions / mid-transfer link drops
	Handovers  int      // live leader swaps (reconfig scenario)
	Violations []string // invariant breaches; empty means the run passed
}

// Run executes cfg.Iters crash-recovery cycles against a fresh durable
// ship database created under dir. It returns an error only for
// harness-level failures (e.g. the fixture cannot be built); invariant
// breaches go in Report.Violations.
func Run(dir string, cfg Config) (*Report, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 200
	}
	if cfg.CheckpointBytes == 0 {
		cfg.CheckpointBytes = 32 << 10
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	if err := buildFixture(dir); err != nil {
		return nil, fmt.Errorf("chaos: build fixture: %w", err)
	}

	rep := &Report{}
	// markers is the ground truth recovery is checked against: which
	// chaos markers an acknowledged batch put in (or removed from)
	// SONAR, and which are indeterminate after a failed-fsync refusal.
	// Guarded by nothing: the harness is single-goroutine.
	markers := &markerSet{present: map[string]bool{}, indet: map[string]bool{}}

	for i := 0; i < cfg.Iters; i++ {
		if err := cycle(dir, cfg, rng, logf, i, markers, rep); err != nil {
			return nil, err
		}
		rep.Iters++
		if len(rep.Violations) > 0 {
			break // the run is already a failure; stop at first breach
		}
	}
	sort.Strings(rep.Violations)
	logf("chaos: %d cycles, %d acked, %d refused, %d checkpoints, %d violations",
		rep.Iters, rep.Acked, rep.Refused, rep.Checkpoint, len(rep.Violations))
	return rep, nil
}

// cycle is one mutate → fault → kill → reopen round.
func cycle(dir string, cfg Config, rng *rand.Rand, logf func(string, ...any), i int, markers *markerSet, rep *Report) error {
	in := fault.NewInjector(fault.OS)
	sys, err := core.OpenDurable(dir, core.DurableOptions{
		FS:              in,
		CheckpointBytes: cfg.CheckpointBytes,
	})
	if err != nil {
		// No fault is armed yet; failing to open here is a harness bug,
		// not an injected crash.
		return fmt.Errorf("chaos: iteration %d: open before faults: %w", i, err)
	}

	// Arm the disk death: some file operation in the near future fails,
	// and every one after it too. Half the time the dying writes are
	// torn — a prefix reaches the disk.
	in.FailFrom(in.Ops()+1+rng.Intn(40), fault.ErrInjected)
	if rng.Intn(2) == 0 {
		in.TornWrites(true)
	}

	mutate(sys, rng, logf, i, markers, rep)

	// Kill the process: every tracked file is force-closed mid-flight.
	in.Shutdown()

	// Recovery on the real filesystem must always succeed and must
	// satisfy both invariants.
	v, err := core.OpenDurable(dir, core.DurableOptions{CheckpointBytes: cfg.CheckpointBytes})
	if err != nil {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("iteration %d: recovery failed: %v", i, err))
		return nil
	}
	defer v.Close() //ilint:allow errdrop — verify handle; nothing to do about a close failure
	checkMarkers(v, i, markers, rep)
	checkRules(v, i, rep)

	// Occasionally checkpoint the recovered state so the WAL stays
	// bounded across the run without hiding replay from most cycles.
	if rng.Intn(4) == 0 {
		rep.Checkpoint++
		if err := v.Checkpoint(); err != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("iteration %d: clean checkpoint failed: %v", i, err))
		}
	}
	return nil
}

// mutate applies a random batch of work to the faulted system. An
// acknowledged mutation updates the expected marker set; the first
// refusal stops the phase — the disk is dead, and the write path's own
// degraded mode takes over from there.
func mutate(sys *core.System, rng *rand.Rand, logf func(string, ...any), i int, markers *markerSet, rep *Report) {
	ctx := context.Background()
	steps := 1 + rng.Intn(6)
	for j := 0; j < steps; j++ {
		var stmt string
		var marker string
		var insert bool
		switch rng.Intn(10) {
		case 0:
			// Contradict an induced rule, so maintenance has something
			// to withhold and re-induce.
			stmt = fmt.Sprintf(`INSERT INTO CLASS VALUES ('98%02d', 'Chaos-%d-%d', 'SSN', 16600)`, i%100, i, j)
		case 1:
			// Remove a marker a previous cycle committed.
			if m := markers.pick(rng); m != "" {
				marker, insert = m, false
				stmt = fmt.Sprintf(`DELETE FROM SONAR WHERE Sonar = '%s'`, m)
				break
			}
			fallthrough
		default:
			marker, insert = fmt.Sprintf("CH-%d-%d", i, j), true
			stmt = fmt.Sprintf(`INSERT INTO SONAR VALUES ('%s', 'Chaos')`, marker)
		}
		res, err := sys.ApplyBatch(ctx, []string{stmt})
		if err != nil {
			logf("chaos: iter %d step %d REFUSED %s: %v", i, j, stmt, err)
			rep.Refused++
			if marker != "" && errors.Is(err, core.ErrLogIndeterminate) {
				// The record's bytes may have reached the log before the
				// fsync failed, so this batch can legitimately surface as
				// committed after the crash. Recovery observes which way
				// it went and pins the expectation from there.
				markers.indet[marker] = true
			}
			return
		}
		logf("chaos: iter %d step %d acked %s (checkpointed=%v warn=%q)", i, j, stmt, res.Checkpointed, res.CheckpointErr)
		rep.Acked++
		if marker != "" {
			markers.present[marker] = insert
		}
		if rng.Intn(8) == 0 {
			// Maintenance under fault: a failure here only matters if it
			// breaks an invariant, which recovery checks.
			if _, err := sys.Maintain(ctx, induct.Options{Nc: 3}); err != nil {
				rep.Refused++
				return
			}
		}
		if rng.Intn(10) == 0 {
			rep.Checkpoint++
			if err := sys.Checkpoint(); err != nil {
				rep.Refused++
				return
			}
		}
	}
}

// markerSet is the harness's ground truth for SONAR chaos markers.
type markerSet struct {
	// present maps marker → expected visibility after recovery.
	present map[string]bool
	// indet holds markers whose last mutation ended in
	// core.ErrLogIndeterminate — either outcome is legal until the next
	// recovery observes which one the disk kept.
	indet map[string]bool
}

// pick returns a random marker currently expected present and not
// indeterminate.
func (ms *markerSet) pick(rng *rand.Rand) string {
	var live []string
	for m, p := range ms.present {
		if p && !ms.indet[m] {
			live = append(live, m)
		}
	}
	if len(live) == 0 {
		return ""
	}
	sort.Strings(live) // deterministic choice for a given seed
	return live[rng.Intn(len(live))]
}

// checkMarkers asserts the durability invariant: every acknowledged
// insert is present exactly once, every acknowledged delete is absent.
// Indeterminate markers are allowed either outcome once; the observed
// state becomes the expectation.
func checkMarkers(sys *core.System, i int, markers *markerSet, rep *Report) {
	r, err := sys.Catalog().Get(shipdb.Sonar)
	if err != nil {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("iteration %d: recovered catalog lost SONAR: %v", i, err))
		return
	}
	col, ok := r.Schema().Index("Sonar")
	if !ok {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("iteration %d: recovered SONAR lost its key column", i))
		return
	}
	counts := map[string]int{}
	for _, row := range r.Rows() {
		counts[row[col].Str()]++
	}
	names := make([]string, 0, len(markers.present))
	for m := range markers.present {
		names = append(names, m)
	}
	sort.Strings(names)
	for _, m := range names {
		got := counts[m]
		if markers.indet[m] {
			// Either outcome is legal, but never duplication; pin the
			// expectation to what the disk kept.
			if got > 1 {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("iteration %d: indeterminate marker %s: %d copies after recovery", i, m, got))
			}
			markers.present[m] = got > 0
			delete(markers.indet, m)
			continue
		}
		want := 0
		if markers.present[m] {
			want = 1
		}
		if got != want {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("iteration %d: marker %s: %d copies after recovery, want %d", i, m, got, want))
		}
	}
}

// checkRules asserts the soundness invariant: no rule the recovered
// system would serve has a counterexample among its own rows. Only
// single-relation rules are row-checkable without a join; that covers
// every rule the ship fixture induces.
func checkRules(sys *core.System, i int, rep *Report) {
	full, maint, _ := sys.RuleStatus()
	for _, r := range full.Rules() {
		if maint.Info(r.ID).Status == maintainStale {
			continue // withheld from inference; allowed to be contradicted
		}
		if v := ruleCounterexample(sys, r); v != "" {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("iteration %d: serving rule %d (%s) contradicted: %s", i, r.ID, r, v))
		}
	}
}

// maintainStale aliases the status constant so checkRules reads plainly.
const maintainStale = maintain.Stale

// ruleCounterexample scans the rule's relation for a row satisfying
// every premise clause but violating the consequence. Returns "" when
// none exists or the rule spans relations (not row-checkable here).
func ruleCounterexample(sys *core.System, r *rules.Rule) string {
	rel := r.RHS.Attr.Relation
	for _, c := range r.LHS {
		if !strings.EqualFold(c.Attr.Relation, rel) {
			return ""
		}
	}
	data, err := sys.Catalog().Get(rel)
	if err != nil {
		return fmt.Sprintf("relation %s unreadable: %v", rel, err)
	}
	sch := data.Schema()
	colOf := func(attr string) (int, bool) { return sch.Index(attr) }
	for _, row := range data.Rows() {
		ok := true
		for _, c := range r.LHS {
			idx, found := colOf(c.Attr.Attribute)
			if !found || !c.Contains(row[idx]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		idx, found := colOf(r.RHS.Attr.Attribute)
		if !found {
			return fmt.Sprintf("consequence column %s missing", r.RHS.Attr)
		}
		if !r.RHS.Contains(row[idx]) {
			return fmt.Sprintf("row %v", row)
		}
	}
	return ""
}

// buildFixture saves a ship database with induced rules under dir.
func buildFixture(dir string) error {
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		return err
	}
	sys := core.New(cat, d)
	if _, err := sys.Induce(induct.Options{Nc: 3}); err != nil {
		return err
	}
	return sys.Save(dir)
}
