package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "f.txt")
	f, err := OS.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	got, err := os.ReadFile(name)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if err := OS.Rename(name, name+".2"); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(name + ".2"); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorCountsAndNth(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS)
	in.FailNthOp(3, ErrInjected) // op1=create, op2=write, op3=sync

	f, err := in.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync err = %v, want ErrInjected", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if in.Ops() != 3 {
		t.Fatalf("ops = %d, want 3", in.Ops())
	}
	if in.Count(OpSync) != 1 || in.Count(OpWrite) != 1 || in.Count(OpCreate) != 1 {
		t.Fatalf("per-op counts wrong: sync=%d write=%d create=%d",
			in.Count(OpSync), in.Count(OpWrite), in.Count(OpCreate))
	}
}

func TestInjectorFailFrom(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS)
	f, err := in.Create(filepath.Join(dir, "a")) // op 1
	if err != nil {
		t.Fatal(err)
	}
	in.FailFrom(2, ErrInjected)
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) { // op 2
		t.Fatalf("write err = %v, want ErrInjected", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) { // op 3
		t.Fatalf("sync err = %v, want ErrInjected", err)
	}
	if err := in.Rename("a", "b"); !errors.Is(err, ErrInjected) { // op 4
		t.Fatalf("rename err = %v, want ErrInjected", err)
	}
	in.Clear()
	if _, err := f.Write([]byte("y")); err != nil {
		t.Fatalf("write after Clear: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorFailOpByPathAndOccurrence(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS)
	in.FailOp(OpSync, "target", 2, ErrInjected)

	other, err := in.Create(filepath.Join(dir, "other"))
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := in.Create(filepath.Join(dir, "target"))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Sync(); err != nil { // non-matching path: never fails
		t.Fatal(err)
	}
	if err := tgt.Sync(); err != nil { // 1st matching sync: passes
		t.Fatal(err)
	}
	if err := tgt.Sync(); !errors.Is(err, ErrInjected) { // 2nd: fails
		t.Fatalf("2nd target sync = %v, want ErrInjected", err)
	}
	if err := tgt.Sync(); err != nil { // 3rd: passes again (nth, not from)
		t.Fatal(err)
	}
	if err := other.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tgt.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorFailOpFromIsPersistent(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS)
	in.FailOpFrom(OpSync, "", 1, ErrInjected)
	f, err := in.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d = %v, want ErrInjected", i, err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "torn")
	in := NewInjector(OS)
	f, err := in.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	in.TornWrites(true)
	in.FailOpFrom(OpWrite, "", 1, ErrInjected)
	if _, err := f.WriteAt([]byte("abcdefgh"), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("write = %v, want ErrInjected", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcd" {
		t.Fatalf("torn write left %q, want half the buffer %q", got, "abcd")
	}
}

func TestFaultPointsAndHit(t *testing.T) {
	in := NewInjector(OS)
	if err := Hit(in, "apply.logged"); err != nil {
		t.Fatalf("unarmed point = %v, want nil", err)
	}
	in.FailPoint("apply.logged", ErrInjected)
	if err := Hit(in, "apply.logged"); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed point = %v, want ErrInjected", err)
	}
	if err := Hit(in, "other.point"); err != nil {
		t.Fatalf("different point = %v, want nil", err)
	}
	in.Clear()
	if err := Hit(in, "apply.logged"); err != nil {
		t.Fatalf("cleared point = %v, want nil", err)
	}
	// Hit on a plain FS is a no-op.
	if err := Hit(OS, "apply.logged"); err != nil {
		t.Fatalf("Hit(OS) = %v, want nil", err)
	}
}

func TestShutdownClosesTrackedFiles(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS)
	f, err := in.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	in.Shutdown()
	// The underlying descriptor is gone: writes through the wrapper now
	// reach a closed file.
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write after Shutdown succeeded, want closed-file error")
	}
}

func TestFakeClock(t *testing.T) {
	start := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	c := NewFakeClock(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	c.Advance(42 * time.Second)
	if got := c.Now().Sub(start); got != 42*time.Second {
		t.Fatalf("advanced %v, want 42s", got)
	}
	if Wall.Now().IsZero() {
		t.Fatal("Wall clock returned zero time")
	}
}
