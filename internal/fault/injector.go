package fault

import (
	"fmt"
	"sort"
	"sync"
)

// Injector is an FS decorator that deterministically fails selected
// operations. Faults are selected three ways, all 1-based and counted
// in the order operations reach the injector:
//
//   - FailNthOp / FailFrom select by global operation number, counting
//     every operation of every kind. The fault-matrix test walks this
//     counter; FailFrom is the chaos harness's disk-death model (from
//     operation N on, nothing succeeds — the closest deterministic
//     stand-in for pulling the plug).
//   - FailOp / FailOpFrom select by kind and path substring, counting
//     only matching operations and only from the moment the rule is
//     armed ("the next fsync of the WAL file"), so tests can set up
//     state with working I/O and then arm the fault.
//   - FailPoint arms a named crash point; the core layer reports those
//     via fault.Hit at the instants where a process can die between
//     two file operations.
//
// With TornWrites enabled, a failing write first persists a prefix of
// its buffer — the shape a power cut leaves behind — so recovery code
// faces torn records, not just absent ones.
//
// An Injector is safe for concurrent use.
type Injector struct {
	fs FS

	mu      sync.Mutex
	ops     int              // guarded by mu; total operations observed
	perOp   map[Op]int       // guarded by mu; operations observed by kind
	nth     map[int]error    // guarded by mu; global op number -> error
	from    int              // guarded by mu; 0 = off, else ops >= from fail
	fromErr error            // guarded by mu
	rules   []*opRule        // guarded by mu
	points  map[string]error // guarded by mu
	torn    bool             // guarded by mu
	open    []File           // guarded by mu; files opened through the injector
}

type opRule struct {
	op     Op
	path   string // substring match against the operation's path; "" = any
	lo, hi int    // 1-based occurrence range among matching ops; hi = 0 means lo only, hi < 0 means open-ended
	err    error
	seen   int
}

// NewInjector wraps fs (usually fault.OS) with an injector carrying no
// faults; every operation passes through until a Fail* method arms one.
func NewInjector(fs FS) *Injector {
	return &Injector{
		fs:     fs,
		perOp:  make(map[Op]int),
		nth:    make(map[int]error),
		points: make(map[string]error),
	}
}

// FailNthOp makes the nth operation (counting every kind) fail with err.
func (in *Injector) FailNthOp(n int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.nth[n] = err
}

// FailFrom makes operation n and every later operation fail with err:
// the disk is dead from that point on. Clear re-arms a working disk.
func (in *Injector) FailFrom(n int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.from = n
	in.fromErr = err
}

// FailOp makes the nth operation of kind op whose path contains path
// (counted among matching operations only) fail with err.
func (in *Injector) FailOp(op Op, path string, nth int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &opRule{op: op, path: path, lo: nth, err: err})
}

// FailOpFrom is FailOp for a persistent fault: the nth matching
// operation and every matching one after it fail with err.
func (in *Injector) FailOpFrom(op Op, path string, nth int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &opRule{op: op, path: path, lo: nth, hi: -1, err: err})
}

// FailPoint arms the named crash point: every fault.Hit on it returns
// err until Clear.
func (in *Injector) FailPoint(name string, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.points[name] = err
}

// TornWrites makes failing writes first persist half their buffer, the
// way a power cut tears a record mid-write.
func (in *Injector) TornWrites(on bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.torn = on
}

// Clear disarms every fault and crash point but keeps the operation
// counters: the disk works again, and Ops still reports the total
// observed since construction.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.nth = make(map[int]error)
	in.from = 0
	in.fromErr = nil
	in.rules = nil
	in.points = make(map[string]error)
	in.torn = false
}

// Ops reports the total number of operations observed.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Count reports the number of operations of kind op observed.
func (in *Injector) Count(op Op) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.perOp[op]
}

// Point reports the named crash point and returns its armed error, if
// any. Callers normally reach it through fault.Hit.
func (in *Injector) Point(name string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.points[name]
}

// Shutdown force-closes every file opened through the injector,
// simulating the process dying with descriptors open. The files'
// buffered-but-unsynced state is whatever the operating system keeps;
// combined with FailFrom it is the harness's kill step.
func (in *Injector) Shutdown() {
	in.mu.Lock()
	open := in.open
	in.open = nil
	in.mu.Unlock()
	for _, f := range open {
		f.Close() //ilint:allow errdrop — force-close at simulated process death; errors are the point
	}
}

// check counts one operation and decides whether it fails. torn
// reports whether a failing write should still persist a prefix.
func (in *Injector) check(op Op, path string) (err error, torn bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	in.perOp[op]++
	for _, r := range in.rules {
		if r.op != op {
			continue
		}
		if r.path != "" && !contains(path, r.path) {
			continue
		}
		r.seen++
		hit := r.seen == r.lo || (r.hi < 0 && r.seen >= r.lo) || (r.hi > 0 && r.seen >= r.lo && r.seen <= r.hi)
		if hit && err == nil {
			err = r.err
		}
	}
	if err == nil {
		if e, ok := in.nth[in.ops]; ok {
			err = e
		}
	}
	if err == nil && in.from > 0 && in.ops >= in.from {
		err = in.fromErr
	}
	if err != nil {
		err = fmt.Errorf("%w: op %d (%s %s)", err, in.ops, op, path)
	}
	return err, in.torn
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Rules returns a deterministic description of the armed faults, for
// chaos-harness failure reports.
func (in *Injector) Rules() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []string
	for _, r := range in.rules {
		out = append(out, fmt.Sprintf("op %s path %q nth %d..%d", r.op, r.path, r.lo, r.hi))
	}
	nums := make([]int, 0, len(in.nth))
	for n := range in.nth {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	for _, n := range nums {
		out = append(out, fmt.Sprintf("nth-op %d", n))
	}
	if in.from > 0 {
		out = append(out, fmt.Sprintf("fail-from %d (torn=%v)", in.from, in.torn))
	}
	return out
}
