// Package fault is the deterministic fault-injection seam of the
// durability path. Every file operation the storage and WAL layers
// perform goes through the FS interface, so a test — or the chaos
// harness — can make the Nth create/write/fsync/rename/remove fail,
// short-write a record as a power cut would, or kill the process at a
// named point between two operations, all without touching the real
// code path: production passes fault.OS and pays one interface call.
//
// The package has three parts:
//
//   - FS and File: the filesystem surface the durability path is
//     allowed to use. fault.OS implements it over package os.
//   - Injector: an FS decorator that counts operations and fails the
//     ones a test selects — by global operation number (the fault
//     matrix), by kind and path (the targeted regression tests), or
//     everything from a point on (the chaos harness's disk-death
//     model). It also carries named crash points for the spots where a
//     process can die between file operations.
//   - Clock: an injectable time source, so degraded-state timestamps
//     and retry hints are testable without sleeping.
//
// The ilint pass "faultseam" enforces the seam: internal/storage and
// internal/wal must not call os.* mutation functions directly.
package fault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Op classifies one filesystem operation for counting and matching.
type Op string

const (
	OpOpen      Op = "open"      // FS.OpenFile
	OpCreate    Op = "create"    // FS.Create
	OpRead      Op = "read"      // File.ReadAt
	OpWrite     Op = "write"     // File.Write / File.WriteAt
	OpSync      Op = "sync"      // File.Sync
	OpTruncate  Op = "truncate"  // File.Truncate
	OpRename    Op = "rename"    // FS.Rename
	OpRemove    Op = "remove"    // FS.Remove / FS.RemoveAll
	OpMkdir     Op = "mkdir"     // FS.MkdirAll / FS.MkdirTemp
	OpWriteFile Op = "writefile" // FS.WriteFile
	OpSyncDir   Op = "syncdir"   // FS.SyncDir
)

// File is the open-file surface of the durability path. *os.File
// satisfies every method; the injector wraps it to observe and fail
// individual reads, writes, syncs, and truncates.
type File interface {
	io.Writer
	io.WriterAt
	io.ReaderAt
	Sync() error
	Truncate(size int64) error
	Close() error
	Stat() (os.FileInfo, error)
	Name() string
}

// FS is the filesystem surface of the durability path: every way the
// storage and WAL layers create, mutate, or remove on-disk state. Read
// paths that cannot corrupt anything (os.Open, os.ReadFile, os.Stat)
// stay on package os.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm os.FileMode) error
	MkdirTemp(dir, pattern string) (string, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	// SyncDir fsyncs a directory, making the directory entries it holds
	// (a just-renamed database directory, a just-created WAL) durable
	// across a power cut. The atomic-save protocol calls it on the
	// parent after the rename that commits a checkpoint.
	SyncDir(dir string) error
}

// OS is the production FS: a thin veneer over package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) RemoveAll(path string) error { return os.RemoveAll(path) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) MkdirTemp(dir, pattern string) (string, error) { return os.MkdirTemp(dir, pattern) }

func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		// Some filesystems refuse fsync on directories; surfacing the
		// error is still right — the caller treats an unsyncable parent
		// as a failed durability point, not a silent one.
		return serr
	}
	return cerr
}

// ErrInjected is the default error injected faults carry; tests match
// it with errors.Is through whatever wrapping the layers add.
var ErrInjected = errors.New("fault: injected failure")

// Hit reports the named crash point to fs's injector, when fs is one;
// on any other FS it is a no-op. The core layer calls it at the spots
// where a process can die between two file operations (after the WAL
// fsync, between a checkpoint's save and its log reset), so crash
// tests select those instants through the same injector that fails
// file operations.
func Hit(fs FS, point string) error {
	if in, ok := fs.(*Injector); ok {
		return in.Point(point)
	}
	return nil
}

// Clock is an injectable time source.
type Clock interface {
	Now() time.Time
}

// Wall is the production clock.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }
