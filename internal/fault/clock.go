package fault

import (
	"sync"
	"time"
)

// FakeClock is a Clock that only moves when told to. Tests inject it
// where degraded-state timestamps or retry hints are computed, so
// "degraded for 42s" is an assertion, not a sleep.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time // guarded by mu
}

// NewFakeClock returns a FakeClock frozen at t.
func NewFakeClock(t time.Time) *FakeClock {
	return &FakeClock{t: t}
}

func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
