package fault

import "os"

// The Injector's FS implementation: count, maybe fail, else delegate.

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err, _ := in.check(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := in.fs.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return in.track(f), nil
}

func (in *Injector) Create(name string) (File, error) {
	if err, _ := in.check(OpCreate, name); err != nil {
		return nil, err
	}
	f, err := in.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return in.track(f), nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err, _ := in.check(OpRename, oldpath); err != nil {
		return err
	}
	return in.fs.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err, _ := in.check(OpRemove, name); err != nil {
		return err
	}
	return in.fs.Remove(name)
}

func (in *Injector) RemoveAll(path string) error {
	if err, _ := in.check(OpRemove, path); err != nil {
		return err
	}
	return in.fs.RemoveAll(path)
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if err, _ := in.check(OpMkdir, path); err != nil {
		return err
	}
	return in.fs.MkdirAll(path, perm)
}

func (in *Injector) MkdirTemp(dir, pattern string) (string, error) {
	if err, _ := in.check(OpMkdir, dir); err != nil {
		return "", err
	}
	return in.fs.MkdirTemp(dir, pattern)
}

func (in *Injector) WriteFile(name string, data []byte, perm os.FileMode) error {
	if err, torn := in.check(OpWriteFile, name); err != nil {
		if torn && len(data) > 1 {
			// Best-effort torn write: half the payload lands.
			in.fs.WriteFile(name, data[:len(data)/2], perm) //ilint:allow errdrop — the injected error is the outcome; the tear is incidental
		}
		return err
	}
	return in.fs.WriteFile(name, data, perm)
}

func (in *Injector) SyncDir(dir string) error {
	if err, _ := in.check(OpSyncDir, dir); err != nil {
		return err
	}
	return in.fs.SyncDir(dir)
}

func (in *Injector) track(f File) File {
	wf := &injFile{in: in, f: f, name: f.Name()}
	in.mu.Lock()
	in.open = append(in.open, f)
	in.mu.Unlock()
	return wf
}

// injFile routes a File's mutating operations back through the
// injector's counters.
type injFile struct {
	in   *Injector
	f    File
	name string
}

func (w *injFile) Write(p []byte) (int, error) {
	if err, torn := w.in.check(OpWrite, w.name); err != nil {
		if torn && len(p) > 1 {
			w.f.Write(p[:len(p)/2]) //ilint:allow errdrop — the injected error is the outcome; the tear is incidental
		}
		return 0, err
	}
	return w.f.Write(p)
}

func (w *injFile) WriteAt(p []byte, off int64) (int, error) {
	if err, torn := w.in.check(OpWrite, w.name); err != nil {
		if torn && len(p) > 1 {
			w.f.WriteAt(p[:len(p)/2], off) //ilint:allow errdrop — the injected error is the outcome; the tear is incidental
		}
		return 0, err
	}
	return w.f.WriteAt(p, off)
}

func (w *injFile) ReadAt(p []byte, off int64) (int, error) {
	if err, _ := w.in.check(OpRead, w.name); err != nil {
		return 0, err
	}
	return w.f.ReadAt(p, off)
}

func (w *injFile) Sync() error {
	if err, _ := w.in.check(OpSync, w.name); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *injFile) Truncate(size int64) error {
	if err, _ := w.in.check(OpTruncate, w.name); err != nil {
		return err
	}
	return w.f.Truncate(size)
}

// Close is never injected: the crash model kills processes, it does
// not fail close(2), and recovery code must always be able to release
// descriptors.
func (w *injFile) Close() error { return w.f.Close() }

func (w *injFile) Stat() (os.FileInfo, error) { return w.f.Stat() }

func (w *injFile) Name() string { return w.name }
