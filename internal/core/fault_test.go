package core_test

// Fault-injection coverage of the durability path: read-only degraded
// mode, and the fault matrix over OpenDurable + Checkpoint asserting
// "recover fully or fail loudly, never load partial state".

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"intensional/internal/answer"
	"intensional/internal/core"
	"intensional/internal/fault"
	"intensional/internal/shipdb"
	"intensional/internal/wal"
)

// countRows counts rows of a relation whose rendering contains marker.
func countRows(t *testing.T, s *core.System, rel, marker string) int {
	t.Helper()
	r, err := s.Catalog().Get(rel)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, row := range r.Rows() {
		if strings.Contains(fmt.Sprint(row), marker) {
			n++
		}
	}
	return n
}

// TestPersistentWalFailureDegradesToReadOnly drives the full degraded
// life cycle: a failed WAL fsync poisons the log and flips the system
// to read-only immediately; mutations are refused without touching the
// disk while queries keep serving; a successful checkpoint after the
// disk recovers clears the state.
func TestPersistentWalFailureDegradesToReadOnly(t *testing.T) {
	in := fault.NewInjector(fault.OS)
	start := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	clk := fault.NewFakeClock(start)
	s, _ := durableShip(t, false, core.DurableOptions{FS: in, Clock: clk})
	before := tableLen(t, s, shipdb.Sonar)

	in.FailOpFrom(fault.OpSync, ".wal", 1, fault.ErrInjected)
	_, err := s.Apply(context.Background(), `INSERT INTO SONAR VALUES ('TST-90', 'Active')`)
	if !errors.Is(err, core.ErrLogFailed) {
		t.Fatalf("apply with failing wal fsync = %v, want ErrLogFailed", err)
	}
	info := s.Degraded()
	if info == nil {
		t.Fatal("poisoned wal did not degrade the system")
	}
	if !info.Since.Equal(start) {
		t.Errorf("degraded since %v, want the injected clock's %v", info.Since, start)
	}

	// Read-only: further mutations are refused before touching the disk.
	ops := in.Ops()
	if _, err := s.Apply(context.Background(), `INSERT INTO SONAR VALUES ('TST-91', 'Active')`); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("apply while degraded = %v, want ErrReadOnly", err)
	}
	if in.Ops() != ops {
		t.Errorf("degraded apply touched the disk: %d ops -> %d", ops, in.Ops())
	}
	if got := tableLen(t, s, shipdb.Sonar); got != before {
		t.Errorf("failed/refused applies leaked rows: %d, want %d", got, before)
	}

	// Queries keep serving from the last good snapshot.
	resp, err := s.Query(`SELECT SONAR.Sonar FROM SONAR`, answer.Combined)
	if err != nil {
		t.Fatalf("query while degraded: %v", err)
	}
	if resp.Extensional.Len() != before {
		t.Errorf("degraded query saw %d rows, want %d", resp.Extensional.Len(), before)
	}

	// The disk comes back; a successful checkpoint clears degradation.
	in.Clear()
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("recovery checkpoint: %v", err)
	}
	if s.Degraded() != nil {
		t.Fatal("still degraded after a successful checkpoint")
	}
	if _, err := s.Apply(context.Background(), `INSERT INTO SONAR VALUES ('TST-92', 'Active')`); err != nil {
		t.Fatalf("apply after recovery: %v", err)
	}
}

// TestConsecutiveAppendFailuresDegrade covers the non-poisoned path:
// write failures with clean rewinds leave the handle usable, and only a
// run of DegradeAfter consecutive failures flips to read-only.
func TestConsecutiveAppendFailuresDegrade(t *testing.T) {
	in := fault.NewInjector(fault.OS)
	s, _ := durableShip(t, false, core.DurableOptions{FS: in, DegradeAfter: 2})

	in.FailOpFrom(fault.OpWrite, ".wal", 1, fault.ErrInjected)
	ins := `INSERT INTO SONAR VALUES ('TST-93', 'Active')`
	if _, err := s.Apply(context.Background(), ins); !errors.Is(err, core.ErrLogFailed) {
		t.Fatalf("1st failing apply = %v, want ErrLogFailed", err)
	}
	if s.Degraded() != nil {
		t.Fatal("degraded after a single rewound write failure")
	}
	if _, err := s.Apply(context.Background(), ins); !errors.Is(err, core.ErrLogFailed) {
		t.Fatalf("2nd failing apply = %v, want ErrLogFailed", err)
	}
	if s.Degraded() == nil {
		t.Fatal("not degraded after DegradeAfter consecutive failures")
	}
	if _, err := s.Apply(context.Background(), ins); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("apply while degraded = %v, want ErrReadOnly", err)
	}
	in.Clear()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(context.Background(), ins); err != nil {
		t.Fatalf("apply after recovery: %v", err)
	}
}

// TestSuccessfulAppendResetsFailureStreak: transient, non-consecutive
// failures never accumulate into degradation.
func TestSuccessfulAppendResetsFailureStreak(t *testing.T) {
	in := fault.NewInjector(fault.OS)
	s, _ := durableShip(t, false, core.DurableOptions{FS: in, DegradeAfter: 2})
	ins := `INSERT INTO SONAR VALUES ('TST-94', 'Active')`
	for i := 0; i < 3; i++ {
		in.FailOp(fault.OpWrite, ".wal", 1, fault.ErrInjected)
		if _, err := s.Apply(context.Background(), ins); !errors.Is(err, core.ErrLogFailed) {
			t.Fatalf("round %d failing apply = %v", i, err)
		}
		if _, err := s.Apply(context.Background(), `DELETE FROM SONAR WHERE Sonar = 'TST-94'`); err != nil {
			t.Fatalf("round %d recovering apply: %v", i, err)
		}
	}
	if s.Degraded() != nil {
		t.Fatal("interleaved failures degraded the system despite successes between them")
	}
}

// copyTree copies the database fixture (directory plus its sibling
// .wal) so each fault-matrix case starts from identical bytes.
func copyTree(t *testing.T, srcDir, dstDir string) {
	t.Helper()
	err := filepath.Walk(srcDir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(srcDir, path)
		if err != nil {
			return err
		}
		dst := filepath.Join(dstDir, rel)
		if info.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		return copyFile(path, dst)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := copyFile(srcDir+".wal", dstDir+".wal"); err != nil {
		t.Fatal(err)
	}
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close() //ilint:allow errdrop — read-only descriptor
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close() //ilint:allow errdrop — the copy error is reported
		return err
	}
	return out.Close()
}

// TestOpenDurableFaultMatrix fails every single file operation of the
// recover-then-checkpoint sequence in turn, and asserts the invariant
// the durability design claims: the system either recovers fully or
// fails loudly (the injected error or wal.ErrCorrupt) — it never opens
// successfully with partial state, and the on-disk database always
// remains fully recoverable afterwards.
func TestOpenDurableFaultMatrix(t *testing.T) {
	// Fixture: a durable database with two un-checkpointed batches in
	// its WAL, so recovery exercises replay as well as load.
	fixture := filepath.Join(t.TempDir(), "fixture")
	{
		s := shipSystem(t)
		if err := s.Save(fixture); err != nil {
			t.Fatal(err)
		}
		d, err := core.OpenDurable(fixture, core.DurableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []string{"TST-M1", "TST-M2"} {
			if _, err := d.Apply(context.Background(), fmt.Sprintf(`INSERT INTO SONAR VALUES ('%s', 'Matrix')`, m)); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
	base := func(s *core.System) int { return tableLen(t, s, shipdb.Sonar) }

	// Counting pass: how many injectable operations does a clean
	// open + checkpoint + close perform?
	var total, want int
	{
		dir := filepath.Join(t.TempDir(), "count")
		copyTree(t, fixture, dir)
		in := fault.NewInjector(fault.OS)
		s, err := core.OpenDurable(dir, core.DurableOptions{FS: in})
		if err != nil {
			t.Fatal(err)
		}
		want = base(s)
		if got := countRows(t, s, shipdb.Sonar, "TST-M1") + countRows(t, s, shipdb.Sonar, "TST-M2"); got != 2 {
			t.Fatalf("clean open replayed %d marker rows, want 2", got)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		total = in.Ops()
	}
	if total < 10 {
		t.Fatalf("suspiciously few injectable ops (%d) — is the FS seam threaded through?", total)
	}

	for k := 1; k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("op%02d", k), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "db")
			copyTree(t, fixture, dir)
			in := fault.NewInjector(fault.OS)
			in.FailNthOp(k, fault.ErrInjected)

			s, err := core.OpenDurable(dir, core.DurableOptions{FS: in})
			if err != nil {
				// Loud failure: the injected fault or a corruption error,
				// never anything silent or unrelated.
				if !errors.Is(err, fault.ErrInjected) && !errors.Is(err, wal.ErrCorrupt) {
					t.Errorf("open failed with unexpected error: %v", err)
				}
			} else {
				// A successful open must hold the COMPLETE state.
				if got := countRows(t, s, shipdb.Sonar, "TST-M1") + countRows(t, s, shipdb.Sonar, "TST-M2"); got != 2 {
					t.Errorf("open succeeded with partial state: %d marker rows, want 2", got)
				}
				if got := base(s); got != want {
					t.Errorf("open succeeded with %d SONAR rows, want %d", got, want)
				}
				// Checkpoint may fail loudly; the on-disk database must
				// survive either way.
				if cerr := s.Checkpoint(); cerr != nil && !errors.Is(cerr, fault.ErrInjected) {
					t.Errorf("checkpoint failed with unexpected error: %v", cerr)
				}
				s.Close() //ilint:allow errdrop — the injected fault may surface here too; recovery below is the assertion
			}

			// Whatever happened, a clean reopen recovers the full state.
			s2, err := core.OpenDurable(dir, core.DurableOptions{})
			if err != nil {
				t.Fatalf("clean reopen after fault at op %d: %v", k, err)
			}
			defer s2.Close()
			if got := countRows(t, s2, shipdb.Sonar, "TST-M1") + countRows(t, s2, shipdb.Sonar, "TST-M2"); got != 2 {
				t.Errorf("recovery lost acknowledged batches: %d marker rows, want 2", got)
			}
			if got := base(s2); got != want {
				t.Errorf("recovered SONAR has %d rows, want %d", got, want)
			}
		})
	}
}
