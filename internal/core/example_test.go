package core_test

import (
	"fmt"
	"log"

	"intensional/internal/answer"
	"intensional/internal/core"
	"intensional/internal/induct"
	"intensional/internal/shipdb"
)

// The paper's Example 1 end to end: induce the knowledge base, run the
// query, and read the intensional answer next to the extensional one.
func Example() {
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		log.Fatal(err)
	}
	sys := core.New(cat, d)
	if _, err := sys.Induce(induct.Options{Nc: 3}); err != nil {
		log.Fatal(err)
	}
	resp, err := sys.Query(`
		SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
		FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`,
		answer.ForwardOnly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d ships\n", resp.Extensional.Len())
	fmt.Println(resp.Intensional.Text())
	// Output:
	// 2 ships
	// All answers are of type SSBN: type SSBN has Displacement > 8000.
}
