package core_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"intensional/internal/answer"
	"intensional/internal/core"
	"intensional/internal/fault"
	"intensional/internal/induct"
	"intensional/internal/rules"
	"intensional/internal/shipdb"
)

// tableLen reads a relation's row count from the current snapshot.
func tableLen(t *testing.T, s *core.System, name string) int {
	t.Helper()
	r, err := s.Catalog().Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return r.Len()
}

// durableShip saves a fresh ship system (rules induced when induce is
// set) into a directory and reopens it durably.
func durableShip(t *testing.T, induce bool, o core.DurableOptions) (*core.System, string) {
	t.Helper()
	s := shipSystem(t)
	if induce {
		if _, err := s.Induce(induct.Options{Nc: 3}); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir() + "/db"
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	d, err := core.OpenDurable(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, dir
}

// findRule locates the rule whose rendering contains every fragment.
func findRule(t *testing.T, rs *rules.Set, fragments ...string) *rules.Rule {
	t.Helper()
	for _, r := range rs.Rules() {
		s := r.String()
		ok := true
		for _, f := range fragments {
			if !strings.Contains(s, f) {
				ok = false
				break
			}
		}
		if ok {
			return r
		}
	}
	t.Fatalf("no rule matching %v in:\n%s", fragments, rs)
	return nil
}

// contradictor is a CLASS insert that definitely contradicts the
// "Displacement in SSBN range implies Type = SSBN" rule: an SSN with
// 16600 tons.
const contradictor = `INSERT INTO CLASS VALUES ('9901', 'Contradictor', 'SSN', 16600)`

func TestApplyInsertInstallsNewVersion(t *testing.T) {
	s := shipSystem(t)
	before := tableLen(t, s, shipdb.Submarine)
	v := s.Version()

	res, err := s.Apply(context.Background(), `INSERT INTO SUBMARINE VALUES ('SSN998', 'Testfish', '0204')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != v+1 || s.Version() != v+1 {
		t.Errorf("version = %d/%d, want %d", res.Version, s.Version(), v+1)
	}
	if len(res.Mutations) != 1 || res.Mutations[0].Count() != 1 {
		t.Errorf("mutations = %+v", res.Mutations)
	}
	if got := tableLen(t, s, shipdb.Submarine); got != before+1 {
		t.Errorf("SUBMARINE has %d rows, want %d", got, before+1)
	}
}

func TestApplyRejectsNonDML(t *testing.T) {
	s := shipSystem(t)
	v := s.Version()
	if _, err := s.Apply(context.Background(), `SELECT SUBMARINE.Id FROM SUBMARINE`); err == nil {
		t.Error("SELECT must be rejected by Apply")
	}
	if _, err := s.Apply(context.Background(), `INSERT INTO`); err == nil {
		t.Error("parse error must propagate")
	}
	if _, err := s.ApplyBatch(context.Background(), nil); err == nil {
		t.Error("empty batch must error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Apply(ctx, `DELETE FROM SONAR WHERE Sonar = 'none'`); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: %v", err)
	}
	if s.Version() != v {
		t.Errorf("failed applies must not install: version %d, want %d", s.Version(), v)
	}
}

func TestApplyBatchIsAtomic(t *testing.T) {
	s := shipSystem(t)
	before := tableLen(t, s, shipdb.Submarine)
	v := s.Version()
	_, err := s.ApplyBatch(context.Background(), []string{
		`INSERT INTO SUBMARINE VALUES ('SSN997', 'Ghost', '0204')`,
		`INSERT INTO NO_SUCH_TABLE VALUES (1)`,
	})
	if err == nil {
		t.Fatal("batch with a failing statement must error")
	}
	if s.Version() != v {
		t.Errorf("version moved to %d after a failed batch", s.Version())
	}
	if got := tableLen(t, s, shipdb.Submarine); got != before {
		t.Errorf("failed batch leaked a row: %d rows, want %d", got, before)
	}
}

func TestApplyBatchAllOrNothingInstall(t *testing.T) {
	s := shipSystem(t)
	before := tableLen(t, s, shipdb.Sonar)
	res, err := s.ApplyBatch(context.Background(), []string{
		`INSERT INTO SONAR VALUES ('TST-01', 'Active')`,
		`INSERT INTO SONAR VALUES ('TST-02', 'Passive')`,
		`DELETE FROM SONAR WHERE Sonar = 'TST-01'`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tableLen(t, s, shipdb.Sonar); got != before+1 {
		t.Errorf("SONAR has %d rows, want %d", got, before+1)
	}
	if len(res.Mutations) != 3 {
		t.Errorf("mutations = %d, want 3", len(res.Mutations))
	}
}

// TestApplyWithholdsContradictedRule is the core guarantee of the write
// path: the instant a mutation contradicting a rule commits, the rule is
// stale in the installed snapshot and excluded from inference.
func TestApplyWithholdsContradictedRule(t *testing.T) {
	s := shipSystem(t)
	if _, err := s.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	full0, _, _ := s.RuleStatus()
	target := findRule(t, full0, "CLASS.Displacement", "CLASS.Type = SSBN")

	res, err := s.Apply(context.Background(), contradictor)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale == 0 {
		t.Fatal("contradicting insert reported no stale rules")
	}

	full, maint, v := s.RuleStatus()
	if v != res.Version {
		t.Errorf("RuleStatus version %d, apply installed %d", v, res.Version)
	}
	inf := maint.Info(target.ID)
	if !maint.IsStale(target.ID) || !inf.Definite {
		t.Fatalf("R%d not definitely stale: %+v", target.ID, inf)
	}
	if _, ok := full.ByID(target.ID); !ok {
		t.Error("full set must retain the stale rule for operators")
	}
	if _, ok := s.Rules().ByID(target.ID); ok {
		t.Error("serving set still contains the contradicted rule")
	}

	// The intensional answer must no longer be derived through the
	// contradicted rule, in any mode.
	for _, mode := range []answer.Mode{answer.ForwardOnly, answer.BackwardOnly, answer.Combined} {
		resp, err := s.Query(`SELECT SUBMARINE.ID FROM SUBMARINE, CLASS
			WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`, mode)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Version != res.Version {
			t.Errorf("mode %v answered from version %d, want %d", mode, resp.Version, res.Version)
		}
		for _, f := range resp.Inference.Facts {
			for _, id := range f.Via {
				if id == target.ID {
					t.Errorf("mode %v derived a fact via stale R%d", mode, target.ID)
				}
			}
		}
		for _, d := range resp.Inference.Descriptions {
			if d.Via == target.ID {
				t.Errorf("mode %v described via stale R%d", mode, target.ID)
			}
		}
	}
}

func TestMaintainReinducesOnlyStaleSchemes(t *testing.T) {
	s := shipSystem(t)
	if _, err := s.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	full0, _, _ := s.RuleStatus()
	target := findRule(t, full0, "CLASS.Displacement", "CLASS.Type = SSBN")

	if _, err := s.Apply(context.Background(), contradictor); err != nil {
		t.Fatal(err)
	}
	// The re-induction scope is whatever schemes the mutation touched
	// (the target's for certain, plus conservatively staled join
	// schemes); rules outside it must survive by identity.
	fullAfter, stateAfter, _ := s.RuleStatus()
	scope := map[string]bool{}
	for _, k := range stateAfter.SchemeKeys(fullAfter) {
		scope[k] = true
	}
	if !scope[target.Scheme().Key()] {
		t.Fatal("contradicted rule's scheme not in the re-induction scope")
	}
	var untouched []*rules.Rule
	for _, r := range fullAfter.Rules() {
		if !scope[r.Scheme().Key()] {
			untouched = append(untouched, r)
		}
	}
	if len(untouched) == 0 {
		t.Fatal("every scheme went stale; fixture cannot show scoping")
	}
	vBefore := s.Version()
	res, err := s.Maintain(context.Background(), induct.Options{Nc: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != vBefore+1 {
		t.Errorf("maintain installed version %d, want %d", res.Version, vBefore+1)
	}
	if len(res.Schemes) == 0 || res.Dropped == 0 {
		t.Errorf("maintain result = %+v", res)
	}

	full, maint, _ := s.RuleStatus()
	if st, ref := maint.Counts(); st != 0 || ref != 0 {
		t.Errorf("state after maintain: %d stale, %d refinable", st, ref)
	}
	for _, r := range untouched {
		got, ok := full.ByID(r.ID)
		if !ok || got != r {
			t.Errorf("untouched R%d lost or renumbered by maintain", r.ID)
		}
	}
	// All-valid: the serving set is the full set again.
	if s.Rules().Len() != full.Len() {
		t.Errorf("serving %d of %d rules after maintain", s.Rules().Len(), full.Len())
	}

	// Nothing stale: a second pass is a no-op at the same version.
	res2, err := s.Maintain(context.Background(), induct.Options{Nc: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Version != res.Version || len(res2.Schemes) != 0 {
		t.Errorf("idle maintain = %+v", res2)
	}
}

func TestOpenDurableReplaysLoggedBatches(t *testing.T) {
	s, dir := durableShip(t, false, core.DurableOptions{})
	if !s.Durable() {
		t.Fatal("OpenDurable produced a non-durable system")
	}
	before := tableLen(t, s, shipdb.Submarine)
	if _, err := s.Apply(context.Background(), `INSERT INTO SUBMARINE VALUES ('SSN996', 'Echo', '0204')`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(context.Background(), `UPDATE SUBMARINE SET Name = 'Echo II' WHERE Id = 'SSN996'`); err != nil {
		t.Fatal(err)
	}
	if s.WalSize() == 0 {
		t.Fatal("durable applies left the WAL empty")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The directory on disk has NOT been rewritten; recovery is replay.
	s2, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := tableLen(t, s2, shipdb.Submarine); got != before+1 {
		t.Fatalf("replay restored %d rows, want %d", got, before+1)
	}
	r, err := s2.Catalog().Get(shipdb.Submarine)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range r.Rows() {
		if strings.Contains(fmt.Sprint(row), "Echo II") {
			found = true
		}
	}
	if !found {
		t.Error("replayed update lost: no 'Echo II' row")
	}
}

func TestCheckpointTruncatesWalWithoutDoubleApply(t *testing.T) {
	s, dir := durableShip(t, false, core.DurableOptions{})
	before := tableLen(t, s, shipdb.Sonar)
	if _, err := s.Apply(context.Background(), `INSERT INTO SONAR VALUES ('TST-03', 'Towed')`); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.WalSize() != 0 {
		t.Errorf("wal size %d after checkpoint, want 0", s.WalSize())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := tableLen(t, s2, shipdb.Sonar); got != before+1 {
		t.Errorf("after checkpoint+reopen: %d rows, want %d (double-apply?)", got, before+1)
	}
}

func TestSaveOwnDirIsCheckpoint(t *testing.T) {
	s, dir := durableShip(t, false, core.DurableOptions{})
	if _, err := s.Apply(context.Background(), `INSERT INTO SONAR VALUES ('TST-04', 'Hull')`); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if s.WalSize() != 0 {
		t.Error("Save over the durable directory must truncate the WAL")
	}
	// Save elsewhere must NOT touch the log.
	if _, err := s.Apply(context.Background(), `INSERT INTO SONAR VALUES ('TST-05', 'Hull')`); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(t.TempDir() + "/copy"); err != nil {
		t.Fatal(err)
	}
	if s.WalSize() == 0 {
		t.Error("Save to a different directory truncated the WAL")
	}
}

// TestCrashBetweenCheckpointSaveAndReset kills the checkpoint inside
// the window where the directory has been atomically rewritten (and so
// already contains every logged mutation) but the WAL has not been
// reset. Replay must recognise the log's records as already applied —
// by their stamped sequence against the directory's recorded one — and
// skip them, not double-apply them.
func TestCrashBetweenCheckpointSaveAndReset(t *testing.T) {
	in := fault.NewInjector(fault.OS)
	s, dir := durableShip(t, false, core.DurableOptions{FS: in})
	before := tableLen(t, s, shipdb.Sonar)
	if _, err := s.Apply(context.Background(), `INSERT INTO SONAR VALUES ('TST-20', 'Active')`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(context.Background(), `INSERT INTO SONAR VALUES ('TST-21', 'Passive')`); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("simulated crash")
	in.FailPoint(core.PointCheckpointSaved, boom)
	err := s.Checkpoint()
	in.Clear()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if s.WalSize() == 0 {
		t.Fatal("log was reset despite the simulated crash")
	}
	s.Close()

	s2, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tableLen(t, s2, shipdb.Sonar); got != before+2 {
		t.Fatalf("after crashed checkpoint + reopen: %d rows, want %d (double-apply?)", got, before+2)
	}
	// The recovered system continues the sequence: a further mutation and
	// a clean checkpoint must round-trip exactly once more.
	if _, err := s2.Apply(context.Background(), `INSERT INTO SONAR VALUES ('TST-22', 'Towed')`); err != nil {
		t.Fatal(err)
	}
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := tableLen(t, s3, shipdb.Sonar); got != before+3 {
		t.Errorf("after recovery + clean checkpoint: %d rows, want %d", got, before+3)
	}
}

// TestSaveAliasedOwnDirIsCheckpoint saves over the durable directory
// through a symlinked parent — a path string comparison cannot equate
// the two names, but the save still rewrites the live directory, so it
// must be treated as a checkpoint (and even a missed reset must not
// double-apply on reopen).
func TestSaveAliasedOwnDirIsCheckpoint(t *testing.T) {
	s, dir := durableShip(t, false, core.DurableOptions{})
	before := tableLen(t, s, shipdb.Sonar)
	if _, err := s.Apply(context.Background(), `INSERT INTO SONAR VALUES ('TST-23', 'Hull')`); err != nil {
		t.Fatal(err)
	}
	link := filepath.Join(t.TempDir(), "parentlink")
	if err := os.Symlink(filepath.Dir(dir), link); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	alias := filepath.Join(link, filepath.Base(dir))
	if err := s.Save(alias); err != nil {
		t.Fatal(err)
	}
	if s.WalSize() != 0 {
		t.Error("aliased Save over the durable directory must truncate the WAL")
	}
	s.Close()

	s2, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := tableLen(t, s2, shipdb.Sonar); got != before+1 {
		t.Errorf("after aliased save + reopen: %d rows, want %d (double-apply?)", got, before+1)
	}
}

// TestAutoCheckpointFailureReportedInResult pins the API contract: a
// committed batch whose post-commit auto-checkpoint fails returns a nil
// error (so err-first callers never retry a durable batch) and reports
// the degradation in CheckpointErr.
func TestAutoCheckpointFailureReportedInResult(t *testing.T) {
	in := fault.NewInjector(fault.OS)
	s, dir := durableShip(t, false, core.DurableOptions{CheckpointBytes: 1, FS: in})
	before := tableLen(t, s, shipdb.Sonar)
	boom := errors.New("disk on fire")
	in.FailPoint(core.PointCheckpointSaved, boom)
	res, err := s.Apply(context.Background(), `INSERT INTO SONAR VALUES ('TST-24', 'Active')`)
	in.Clear()
	if err != nil {
		t.Fatalf("committed batch must not return an error: %v", err)
	}
	if res.Checkpointed {
		t.Error("failed checkpoint reported as done")
	}
	if !strings.Contains(res.CheckpointErr, boom.Error()) {
		t.Errorf("CheckpointErr = %q, want it to mention %q", res.CheckpointErr, boom)
	}
	// The batch is durable exactly once.
	s.Close()
	s2, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := tableLen(t, s2, shipdb.Sonar); got != before+1 {
		t.Errorf("reopen after degraded apply: %d rows, want %d", got, before+1)
	}
}

func TestMaintainCancelledContext(t *testing.T) {
	s := shipSystem(t)
	if _, err := s.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(context.Background(), contradictor); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Maintain(ctx, induct.Options{Nc: 3}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Maintain = %v, want context.Canceled", err)
	}
	_, maint, _ := s.RuleStatus()
	if st, _ := maint.Counts(); st == 0 {
		t.Error("cancelled Maintain must leave the staleness state untouched")
	}
}

func TestAutoCheckpointThreshold(t *testing.T) {
	s, _ := durableShip(t, false, core.DurableOptions{CheckpointBytes: 1})
	res, err := s.Apply(context.Background(), `INSERT INTO SONAR VALUES ('TST-06', 'Active')`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Checkpointed {
		t.Error("apply past the threshold must auto-checkpoint")
	}
	if s.WalSize() != 0 {
		t.Errorf("wal size %d after auto-checkpoint", s.WalSize())
	}
}

func TestCheckpointNotDurable(t *testing.T) {
	s := shipSystem(t)
	if err := s.Checkpoint(); !errors.Is(err, core.ErrNotDurable) {
		t.Errorf("Checkpoint on non-durable system: %v", err)
	}
	if s.Durable() || s.WalSize() != 0 {
		t.Error("plain system reports durability")
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close on non-durable system: %v", err)
	}
}

// TestCrashBeforeCommitLosesBatch kills the apply after execution but
// before the WAL append: the batch was never acknowledged and must be
// gone after restart.
func TestCrashBeforeCommitLosesBatch(t *testing.T) {
	in := fault.NewInjector(fault.OS)
	s, dir := durableShip(t, false, core.DurableOptions{FS: in})
	before := tableLen(t, s, shipdb.Submarine)
	boom := errors.New("simulated crash")
	in.FailPoint(core.PointExecuted, boom)
	_, err := s.Apply(context.Background(), `INSERT INTO SUBMARINE VALUES ('SSN995', 'Wraith', '0204')`)
	in.Clear()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := tableLen(t, s, shipdb.Submarine); got != before {
		t.Errorf("aborted apply visible in memory: %d rows", got)
	}
	if s.WalSize() != 0 {
		t.Error("aborted apply reached the WAL")
	}
	s.Close()

	s2, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := tableLen(t, s2, shipdb.Submarine); got != before {
		t.Errorf("lost batch resurrected on restart: %d rows, want %d", got, before)
	}
}

// TestCrashAfterCommitReplaysBatch kills the apply after the WAL fsync
// but before the snapshot installs: the record is the commit point, so
// restart must restore the mutation.
func TestCrashAfterCommitReplaysBatch(t *testing.T) {
	in := fault.NewInjector(fault.OS)
	s, dir := durableShip(t, false, core.DurableOptions{FS: in})
	before := tableLen(t, s, shipdb.Submarine)
	boom := errors.New("simulated crash")
	in.FailPoint(core.PointLogged, boom)
	_, err := s.Apply(context.Background(), `INSERT INTO SUBMARINE VALUES ('SSN994', 'Revenant', '0204')`)
	in.Clear()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if s.WalSize() == 0 {
		t.Fatal("commit point not reached")
	}
	s.Close()

	s2, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := tableLen(t, s2, shipdb.Submarine); got != before+1 {
		t.Errorf("committed batch not replayed: %d rows, want %d", got, before+1)
	}
}

// TestReplayPreservesStaleness proves staleness is re-derived
// deterministically from the log: a contradicting insert replayed on
// restart leaves the rule withheld, never served as valid.
func TestReplayPreservesStaleness(t *testing.T) {
	s, dir := durableShip(t, true, core.DurableOptions{})
	full0, _, _ := s.RuleStatus()
	target := findRule(t, full0, "CLASS.Displacement", "CLASS.Type = SSBN")
	if _, err := s.Apply(context.Background(), contradictor); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, maint, _ := s2.RuleStatus()
	if !maint.IsStale(target.ID) {
		t.Fatal("replay lost the staleness mark")
	}
	if _, ok := s2.Rules().ByID(target.ID); ok {
		t.Error("contradicted rule served as valid after restart")
	}
}

func TestAutoMaintainClearsStaleness(t *testing.T) {
	s := shipSystem(t)
	if _, err := s.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	s.StartAutoMaintain(induct.Options{Nc: 3, Workers: 2})
	defer s.StopAutoMaintain()

	res, err := s.Apply(context.Background(), contradictor)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale == 0 {
		t.Fatal("contradictor produced no staleness")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, maint, _ := s.RuleStatus()
		if st, _ := maint.Counts(); st == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("auto-maintain never cleared the stale rules")
		}
		time.Sleep(10 * time.Millisecond)
	}
	runs, errs := s.AutoMaintainStats()
	if runs == 0 || errs != 0 {
		t.Errorf("auto-maintain stats: %d runs, %d errors", runs, errs)
	}
}

// TestConcurrentMutateQueryHammer drives writers and readers in every
// answer mode against one durable system under the race detector. The
// invariant: once the contradicting insert commits at version V, no
// response produced by a snapshot ≥ V derives anything through the
// contradicted rule. (No Maintain runs here, so rule IDs are never
// reassigned and the ID-based check is exact; Maintain racing the write
// path is covered by TestConcurrentMaintainRace.)
func TestConcurrentMutateQueryHammer(t *testing.T) {
	s, _ := durableShip(t, true, core.DurableOptions{CheckpointBytes: 1 << 16})
	full0, _, _ := s.RuleStatus()
	target := findRule(t, full0, "CLASS.Displacement", "CLASS.Type = SSBN")

	var staleAt atomic.Uint64 // version at which the contradictor committed
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	const query = `SELECT SUBMARINE.ID FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`

	// Writers: benign inserts on two goroutines, with the contradictor
	// fired mid-stream.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 20; i++ {
				var err error
				if w == 0 && i == 10 {
					var res *core.ApplyResult
					res, err = s.Apply(context.Background(), contradictor)
					if err == nil {
						staleAt.Store(res.Version)
					}
				} else {
					_, err = s.Apply(context.Background(),
						fmt.Sprintf(`INSERT INTO SUBMARINE VALUES ('H%d%02d', 'Hammer', '0204')`, w, i))
				}
				if err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}(w)
	}

	// Readers in every mode.
	for _, mode := range []answer.Mode{answer.ForwardOnly, answer.BackwardOnly, answer.Combined} {
		readers.Add(1)
		go func(mode answer.Mode) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := s.QueryContext(context.Background(), query, mode)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				v := staleAt.Load()
				if v == 0 || resp.Version < v {
					continue
				}
				for _, f := range resp.Inference.Facts {
					for _, id := range f.Via {
						if id == target.ID {
							t.Errorf("version %d served stale R%d (stale since %d)", resp.Version, target.ID, v)
							return
						}
					}
				}
				for _, d := range resp.Inference.Descriptions {
					if d.Via == target.ID {
						t.Errorf("version %d described via stale R%d", resp.Version, target.ID)
						return
					}
				}
			}
		}(mode)
	}

	waitOrDie := func(wg *sync.WaitGroup, who string) {
		t.Helper()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("%s deadlocked", who)
		}
	}
	waitOrDie(&writers, "writers")
	// Give the readers one last look at the final (stale-bearing) version.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	waitOrDie(&readers, "readers")
	if staleAt.Load() == 0 {
		t.Fatal("contradictor never committed")
	}
	if _, maint, _ := s.RuleStatus(); !maint.IsStale(target.ID) {
		t.Error("contradicted rule not stale at the end of the hammer")
	}
}

// TestConcurrentMaintainRace races Apply, Maintain, and queries; it
// asserts nothing errors and the system converges to an all-valid rule
// base once the writers stop and a final maintenance pass runs. The
// race detector guards the snapshot-swap discipline.
func TestConcurrentMaintainRace(t *testing.T) {
	s := shipSystem(t)
	if _, err := s.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			stmt := fmt.Sprintf(`INSERT INTO SUBMARINE VALUES ('M%03d', 'Racer', '0204')`, i)
			if i%5 == 3 {
				stmt = fmt.Sprintf(`INSERT INTO CLASS VALUES ('99%02d', 'Racer', 'SSN', %d)`, i, 16000+i)
			}
			if _, err := s.Apply(context.Background(), stmt); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Maintain(context.Background(), induct.Options{Nc: 3, Workers: 2}); err != nil {
				t.Errorf("maintain: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Query(`SELECT CLASS.CLASSNAME FROM CLASS WHERE CLASS.DISPLACEMENT > 8000`, answer.Combined); err != nil {
				t.Errorf("reader: %v", err)
				return
			}
		}
	}()

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	if _, err := s.Maintain(context.Background(), induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	_, maint, _ := s.RuleStatus()
	if st, ref := maint.Counts(); st != 0 || ref != 0 {
		t.Errorf("not all-valid after final maintain: %d stale, %d refinable", st, ref)
	}
}
