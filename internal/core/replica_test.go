package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"intensional/internal/answer"
	"intensional/internal/core"
	"intensional/internal/dict"
	"intensional/internal/induct"
	"intensional/internal/storage"
)

// blankFollower opens an empty durable system in follower mode — the
// state of a brand-new replica before its first bootstrap.
func blankFollower(t *testing.T, o core.DurableOptions) *core.System {
	t.Helper()
	cat := storage.NewCatalog()
	s := core.New(cat, dict.New(cat))
	dir := t.TempDir() + "/replica"
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	o.Follower = true
	f, err := core.OpenDurable(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// syncFollower streams the leader's retained records into the follower
// until their WAL positions meet.
func syncFollower(t *testing.T, leader, f *core.System) {
	t.Helper()
	for {
		recs, cur, err := leader.ReplicationBatch(context.Background(), f.WalSeq(), 0, 100)
		if err != nil {
			t.Fatalf("ReplicationBatch(after=%d): %v", f.WalSeq(), err)
		}
		for _, r := range recs {
			if err := f.ReplayRecord(r.Seq, r.Payload); err != nil {
				t.Fatalf("ReplayRecord(%d): %v", r.Seq, err)
			}
		}
		if f.WalSeq() >= cur {
			return
		}
	}
}

// assertConverged checks the convergence contract: same WAL position,
// same snapshot version, and byte-identical answers for a query.
func assertConverged(t *testing.T, leader, f *core.System, sql string) {
	t.Helper()
	if ls, fs := leader.WalSeq(), f.WalSeq(); ls != fs {
		t.Fatalf("wal seq: leader %d, follower %d", ls, fs)
	}
	if lv, fv := leader.Version(), f.Version(); lv != fv {
		t.Fatalf("version: leader %d, follower %d", lv, fv)
	}
	lr, err := leader.Query(sql, answer.ForwardOnly)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := f.Query(sql, answer.ForwardOnly)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Extensional.String() != fr.Extensional.String() {
		t.Errorf("extensional answers diverge:\nleader:\n%s\nfollower:\n%s", lr.Extensional, fr.Extensional)
	}
	if lr.Intensional.Text() != fr.Intensional.Text() {
		t.Errorf("intensional answers diverge:\nleader: %q\nfollower: %q", lr.Intensional.Text(), fr.Intensional.Text())
	}
}

const subQuery = `SELECT SUBMARINE.Id, SUBMARINE.Name FROM SUBMARINE`

func TestApplyReportsWalSeq(t *testing.T) {
	s, _ := durableShip(t, false, core.DurableOptions{})
	res, err := s.Apply(context.Background(), `INSERT INTO SUBMARINE VALUES ('SSN901', 'Seqfish', '0204')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 1 || s.WalSeq() != 1 {
		t.Errorf("seq = %d, WalSeq = %d, want 1, 1", res.Seq, s.WalSeq())
	}
	res, err = s.Apply(context.Background(), `INSERT INTO SUBMARINE VALUES ('SSN902', 'Seqfish II', '0204')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 2 {
		t.Errorf("second seq = %d, want 2", res.Seq)
	}
}

func TestReplicationBatchStreamsCommits(t *testing.T) {
	s, _ := durableShip(t, false, core.DurableOptions{})
	for i := 0; i < 3; i++ {
		if _, err := s.Apply(context.Background(), `DELETE FROM SONAR WHERE SONAR.Sonar = 'none'`); err != nil {
			t.Fatal(err)
		}
	}
	recs, cur, err := s.ReplicationBatch(context.Background(), 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cur != 3 || len(recs) != 3 {
		t.Fatalf("got %d records, cur %d; want 3, 3", len(recs), cur)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
	}
	// Caught up: nothing to return without waiting.
	recs, cur, err = s.ReplicationBatch(context.Background(), 3, 0, 10)
	if err != nil || len(recs) != 0 || cur != 3 {
		t.Fatalf("caught-up poll: %d records, cur %d, err %v", len(recs), cur, err)
	}
	// max truncates the batch.
	recs, _, err = s.ReplicationBatch(context.Background(), 0, 0, 2)
	if err != nil || len(recs) != 2 {
		t.Fatalf("max-bounded poll: %d records, err %v", len(recs), err)
	}
}

func TestReplicationBatchLongPoll(t *testing.T) {
	s, _ := durableShip(t, false, core.DurableOptions{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		s.Apply(context.Background(), `DELETE FROM SONAR WHERE SONAR.Sonar = 'none'`)
	}()
	recs, _, err := s.ReplicationBatch(context.Background(), 0, 5*time.Second, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("long poll returned %+v", recs)
	}
	// A quiet window returns an empty batch, not an error.
	recs, cur, err := s.ReplicationBatch(context.Background(), 1, 20*time.Millisecond, 10)
	if err != nil || len(recs) != 0 || cur != 1 {
		t.Fatalf("quiet poll: %d records, cur %d, err %v", len(recs), cur, err)
	}
}

func TestReplicationRetentionFloor(t *testing.T) {
	s, _ := durableShip(t, false, core.DurableOptions{ReplicationRetain: 2})
	for i := 0; i < 5; i++ {
		if _, err := s.Apply(context.Background(), `DELETE FROM SONAR WHERE SONAR.Sonar = 'none'`); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.ReplicationBatch(context.Background(), 0, 0, 10); !errors.Is(err, core.ErrSnapshotNeeded) {
		t.Fatalf("below-floor poll: %v, want ErrSnapshotNeeded", err)
	}
	recs, _, err := s.ReplicationBatch(context.Background(), 3, 0, 10)
	if err != nil || len(recs) != 2 {
		t.Fatalf("in-window poll: %d records, err %v", len(recs), err)
	}
}

func TestFollowerRefusesWrites(t *testing.T) {
	f := blankFollower(t, core.DurableOptions{})
	if !f.Follower() {
		t.Fatal("Follower() = false on a follower")
	}
	_, err := f.Apply(context.Background(), `DELETE FROM SONAR WHERE SONAR.Sonar = 'none'`)
	if !errors.Is(err, core.ErrNotLeader) {
		t.Errorf("Apply on follower: %v, want ErrNotLeader", err)
	}
	if !errors.Is(err, core.ErrReadOnly) {
		t.Errorf("ErrNotLeader must wrap ErrReadOnly, got %v", err)
	}
	if _, err := f.Induce(induct.Options{Nc: 3}); !errors.Is(err, core.ErrNotLeader) {
		t.Errorf("Induce on follower: %v, want ErrNotLeader", err)
	}
	if _, err := f.Maintain(context.Background(), induct.Options{Nc: 3}); !errors.Is(err, core.ErrNotLeader) {
		t.Errorf("Maintain on follower: %v, want ErrNotLeader", err)
	}
}

func TestBootstrapAndStreamConverge(t *testing.T) {
	leader, _ := durableShip(t, true, core.DurableOptions{})
	if _, err := leader.Apply(context.Background(), `INSERT INTO SUBMARINE VALUES ('SSN903', 'Bootfish', '0204')`); err != nil {
		t.Fatal(err)
	}

	f := blankFollower(t, core.DurableOptions{})
	a, err := leader.BootstrapArchive()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InstallBootstrap(a); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, leader, f, subQuery)
	if lr, fr := leader.Rules().Len(), f.Rules().Len(); lr == 0 || lr != fr {
		t.Fatalf("rule sets: leader %d, follower %d", lr, fr)
	}

	// Writes after the bootstrap arrive record by record — including a
	// rule install, which must replay to the identical rule base.
	if _, err := leader.Apply(context.Background(), `INSERT INTO SUBMARINE VALUES ('SSN904', 'Streamfish', '0204')`); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	syncFollower(t, leader, f)
	assertConverged(t, leader, f, subQuery)
	if lr, fr := leader.Rules().String(), f.Rules().String(); lr != fr {
		t.Fatalf("replayed rule bases diverge:\nleader:\n%s\nfollower:\n%s", lr, fr)
	}
}

func TestFollowerSurvivesRestart(t *testing.T) {
	leader, _ := durableShip(t, true, core.DurableOptions{})

	cat := storage.NewCatalog()
	s := core.New(cat, dict.New(cat))
	dir := t.TempDir() + "/replica"
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	f, err := core.OpenDurable(dir, core.DurableOptions{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := leader.BootstrapArchive()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InstallBootstrap(a); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Apply(context.Background(), `INSERT INTO SUBMARINE VALUES ('SSN905', 'Restartfish', '0204')`); err != nil {
		t.Fatal(err)
	}
	syncFollower(t, leader, f)
	seq, version := f.WalSeq(), f.Version()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from local state: position and version survive, and only
	// the delta needs streaming.
	f2, err := core.OpenDurable(dir, core.DurableOptions{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.WalSeq() != seq || f2.Version() != version {
		t.Fatalf("restarted follower at seq %d version %d, want %d, %d", f2.WalSeq(), f2.Version(), seq, version)
	}
	if _, err := leader.Apply(context.Background(), `INSERT INTO SUBMARINE VALUES ('SSN906', 'Deltafish', '0204')`); err != nil {
		t.Fatal(err)
	}
	syncFollower(t, leader, f2)
	assertConverged(t, leader, f2, subQuery)
}

func TestReplayRecordGapAndDuplicate(t *testing.T) {
	leader, _ := durableShip(t, false, core.DurableOptions{})
	f := blankFollower(t, core.DurableOptions{})
	a, err := leader.BootstrapArchive()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InstallBootstrap(a); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := leader.Apply(context.Background(), `DELETE FROM SONAR WHERE SONAR.Sonar = 'none'`); err != nil {
			t.Fatal(err)
		}
	}
	recs, _, err := leader.ReplicationBatch(context.Background(), 0, 0, 10)
	if err != nil || len(recs) != 2 {
		t.Fatalf("stream: %d records, err %v", len(recs), err)
	}
	// A gap (record 2 before record 1) means a snapshot is needed.
	if err := f.ReplayRecord(recs[1].Seq, recs[1].Payload); !errors.Is(err, core.ErrSnapshotNeeded) {
		t.Fatalf("gap replay: %v, want ErrSnapshotNeeded", err)
	}
	if err := f.ReplayRecord(recs[0].Seq, recs[0].Payload); err != nil {
		t.Fatal(err)
	}
	// Duplicate delivery is a no-op.
	v := f.Version()
	if err := f.ReplayRecord(recs[0].Seq, recs[0].Payload); err != nil {
		t.Fatalf("duplicate replay: %v", err)
	}
	if f.Version() != v {
		t.Fatalf("duplicate replay moved version %d → %d", v, f.Version())
	}
	if err := f.ReplayRecord(recs[1].Seq, recs[1].Payload); err != nil {
		t.Fatal(err)
	}
	if f.WalSeq() != 2 {
		t.Fatalf("follower at seq %d, want 2", f.WalSeq())
	}
}

func TestWaitForSeq(t *testing.T) {
	s, _ := durableShip(t, false, core.DurableOptions{})
	if _, err := s.Apply(context.Background(), `DELETE FROM SONAR WHERE SONAR.Sonar = 'none'`); err != nil {
		t.Fatal(err)
	}
	// Already applied: returns immediately.
	if err := s.WaitForSeq(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// Not yet applied: honours the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.WaitForSeq(ctx, 99); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("future seq wait: %v", err)
	}
	// A commit wakes a parked waiter.
	done := make(chan error, 1)
	go func() { done <- s.WaitForSeq(context.Background(), 2) }()
	time.Sleep(10 * time.Millisecond)
	if _, err := s.Apply(context.Background(), `INSERT INTO SUBMARINE VALUES ('SSN907', 'Wakefish', '0204')`); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitForSeq never woke")
	}
}

func TestReopenResumesVersionNumbering(t *testing.T) {
	s, dir := durableShip(t, true, core.DurableOptions{})
	if _, err := s.Apply(context.Background(), `INSERT INTO SUBMARINE VALUES ('SSN908', 'Versionfish', '0204')`); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// One more write after the checkpoint, so reopen replays it on top
	// of the restamped base version.
	if _, err := s.Apply(context.Background(), `INSERT INTO SUBMARINE VALUES ('SSN909', 'Replayfish', '0204')`); err != nil {
		t.Fatal(err)
	}
	version, seq := s.Version(), s.WalSeq()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Version() != version || s2.WalSeq() != seq {
		t.Fatalf("reopened at version %d seq %d, want %d, %d", s2.Version(), s2.WalSeq(), version, seq)
	}
}

func TestInducedRulesSurviveCrashReplay(t *testing.T) {
	s, dir := durableShip(t, false, core.DurableOptions{})
	if _, err := s.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	want := s.Rules().String()
	version := s.Version()
	// No checkpoint: the rule install exists only as a WAL record.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Rules().String(); got != want {
		t.Fatalf("rules after replay:\n%s\nwant:\n%s", got, want)
	}
	if s2.Version() != version {
		t.Fatalf("version after replay = %d, want %d", s2.Version(), version)
	}
}
