// Package core assembles the intensional query processing system of
// Figure 6: the traditional query processor, the intelligent data
// dictionary, the inductive learning subsystem, and the inference
// processor, behind one public API. This is the entry point examples,
// tools, and the iqpd server use.
//
// # Concurrency contract
//
// A System is safe for concurrent use. It publishes its state as an
// immutable snapshot — catalog, dictionary, rule set, and a per-snapshot
// response cache, stamped with a version number. Readers (Query,
// QueryContext, Catalog, Dictionary, Rules, Version) load the current
// snapshot and work against it without further coordination; nothing in
// a published snapshot is mutated except internally locked caches.
// Writers (Induce, Save) are serialised among themselves. Induce builds
// a whole new snapshot — cloned catalog, fresh dictionary, new rule set
// — and installs it atomically, so queries in flight keep the consistent
// view they started with and never observe a half-installed rule base.
//
// The flip side: references obtained from Catalog()/Dictionary()/Rules()
// are snapshots too. After an Induce they describe the previous version;
// re-fetch to observe the new one. Direct mutation of a fetched catalog
// is only safe before the system starts serving concurrent traffic.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"intensional/internal/answer"
	"intensional/internal/dict"
	"intensional/internal/fault"
	"intensional/internal/induct"
	"intensional/internal/infer"
	"intensional/internal/maintain"
	"intensional/internal/query"
	"intensional/internal/quel"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/storage"
	"intensional/internal/wal"
)

// System is one intensional query processing instance bound to a
// database. See the package comment for the concurrency contract.
type System struct {
	wmu  sync.Mutex   // serialises snapshot-replacing writers (Apply, Induce, Maintain, Save, Checkpoint)
	mu   sync.RWMutex // protects the snapshot pointer swap
	snap *snapshot    // guarded by mu

	// Durability, set by OpenDurable before the system is shared and
	// immutable afterwards (the Log has its own internal lock). A nil
	// log means the system is not durable.
	log             *wal.Log
	dir             string
	checkpointBytes int64
	// fs and clock are the fault-injection seams: every file operation
	// the system's own persistence performs goes through fs, and every
	// degraded-state timestamp through clock. Set before the system is
	// shared (New/OpenDurable), immutable afterwards.
	fs    fault.FS
	clock fault.Clock
	// degradeAfter is how many consecutive WAL append failures flip the
	// system to read-only; a poisoned log handle flips it immediately.
	// Set before sharing, immutable afterwards.
	degradeAfter int
	// walFails counts consecutive WAL append failures. guarded by wmu.
	walFails int
	// degraded holds the read-only degraded state, nil when healthy.
	// Written under wmu; read lock-free by health/metrics reporting.
	degraded atomic.Pointer[DegradedInfo]
	// walSeq is the sequence number of the last WAL record appended (or
	// replayed/skipped at open). Every record is stamped with the
	// sequence it commits, and Save persists the current value into the
	// directory, so replay can skip records already contained in the
	// saved catalog — the idempotency that closes the crash window
	// between a checkpoint's save and its log reset.
	walSeq uint64 // guarded by wmu

	// Replication state (see replica.go). replRetain is set by
	// OpenDurable before sharing, immutable afterwards. follower is
	// atomic because live reconfiguration flips it (Promote/Demote)
	// while readers check it lock-free. replBuf is the in-memory
	// retention window followers stream from; it is appended under wmu
	// in commit order but read by ReplicationBatch without it, hence its
	// own lock. appliedSeq mirrors walSeq for lock-free readers, and
	// seqCh is the watch channel WaitForSeq parks on — closed and
	// replaced on every advance.
	follower   atomic.Bool
	replRetain int
	replMu     sync.Mutex
	replBuf    []ReplRecord // guarded by replMu
	appliedSeq atomic.Uint64
	seqMu      sync.Mutex
	seqCh      chan struct{} // guarded by seqMu

	// Eager-maintenance worker lifecycle (StartAutoMaintain).
	amu      sync.Mutex
	autoKick chan struct{} // guarded by amu
	autoStop chan struct{} // guarded by amu
	autoDone chan struct{} // guarded by amu
	autoRuns atomic.Uint64
	autoErrs atomic.Uint64

	// Planner observability, cumulative over the system's lifetime (they
	// deliberately survive snapshot replacement so /metrics trends are
	// monotone): scan counters shared by every snapshot's sessions, and
	// prepared-statement cache outcomes.
	counters   quel.Counters
	planHits   atomic.Int64
	planMisses atomic.Int64
}

// snapshot is one immutable published state of the system. Everything
// reachable from it is frozen once installed, except the dictionary's
// internally locked domain caches and the response cache.
type snapshot struct {
	version uint64
	cat     *storage.Catalog
	d       *dict.Dictionary
	q       *query.Processor
	inf     *infer.Processor
	cache   *responseCache
	// full is the complete rule base including stale rules; the
	// dictionary's rule set (what inference serves) is full minus the
	// rules maint marks stale.
	full *rules.Set
	// maint classifies full: which rules a mutation has contradicted
	// (stale) or loosened (refinable) since the last (re-)induction.
	maint *maintain.State
	// plans caches prepared statements for this snapshot, keyed by
	// normalized SQL. Per-snapshot like the response cache, so a plan's
	// index choices and semantic rewrites never outlive the data and
	// rules that justified them.
	plans *planCache
}

func newSnapshot(version uint64, cat *storage.Catalog, d *dict.Dictionary) *snapshot {
	q := query.New(cat)
	// One shared index cache per snapshot: relations are immutable once
	// the snapshot is published, so indexes built by one query serve all
	// later queries on the same version.
	q.UseIndexCache(quel.NewIndexCache())
	return &snapshot{
		version: version,
		cat:     cat,
		d:       d,
		q:       q,
		inf:     infer.New(d),
		cache:   newResponseCache(),
		full:    d.Rules(),
		maint:   maintain.NewState(),
		plans:   newPlanCache(),
	}
}

// wire attaches the system's cumulative planner counters and logger to a
// snapshot's query processor. Every snapshot passes through here (New or
// install) before it can serve a query.
func (s *System) wire(sn *snapshot) {
	sn.q.UseCounters(&s.counters)
	sn.q.UseLogf(log.Printf)
}

// New assembles a system over a catalog and its dictionary. The catalog
// and dictionary become version 1's snapshot; mutate them only before
// the system starts serving concurrent callers.
func New(cat *storage.Catalog, d *dict.Dictionary) *System {
	sn := newSnapshot(1, cat, d)
	s := &System{
		snap:         sn,
		fs:           fault.OS,
		clock:        fault.Wall,
		degradeAfter: defaultDegradeAfter,
		seqCh:        make(chan struct{}),
	}
	s.wire(sn)
	return s
}

// current returns the snapshot serving reads right now.
func (s *System) current() *snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap
}

// install publishes a new snapshot; all subsequent reads see it.
func (s *System) install(sn *snapshot) {
	s.wire(sn)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snap = sn
}

// Version returns the current snapshot's version. It starts at 1 and
// increases by one each time Induce installs a new rule base, so callers
// can tell which knowledge state produced an answer.
func (s *System) Version() uint64 { return s.current().version }

// Catalog returns the catalog backing the current snapshot.
func (s *System) Catalog() *storage.Catalog { return s.current().cat }

// Dictionary returns the intelligent data dictionary of the current
// snapshot.
func (s *System) Dictionary() *dict.Dictionary { return s.current().d }

// Rules returns the current snapshot's rule base.
func (s *System) Rules() *rules.Set { return s.current().d.Rules() }

// Induce runs the Inductive Learning Subsystem over the database and
// atomically installs the result as a new snapshot: the catalog is
// cloned, a fresh dictionary is rebuilt from the declarations, the
// induced rule base is stored into the clone as rule relations, and the
// version advances. Queries in flight keep the snapshot they started
// with; queries issued after Induce returns see the new rules. Induce
// calls are serialised; concurrent Query calls are never blocked.
func (s *System) Induce(opts induct.Options) (*rules.Set, error) {
	return s.InduceContext(context.Background(), opts)
}

// InduceContext is Induce with a deadline: the context is checked at
// the stage boundaries of the induction pipeline (after acquiring the
// writer lock, after the dictionary rebuild, after induction), so a
// caller-imposed timeout or cancellation abandons the work at the next
// boundary instead of installing a snapshot nobody is waiting for.
func (s *System) InduceContext(ctx context.Context, opts induct.Options) (*rules.Set, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.follower.Load() {
		return nil, ErrNotLeader
	}
	cur := s.current()
	cat := cur.cat.Clone()
	d := dict.New(cat)
	if err := d.Apply(cur.d.Decls()); err != nil {
		return nil, fmt.Errorf("core: induce: rebuild dictionary: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	set, err := induct.New(d, opts).InduceAllContext(ctx)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d.SetRules(set)
	if err := d.StoreRules(); err != nil {
		return nil, err
	}
	var committed []byte
	if s.log != nil {
		if committed, err = s.logRulesLocked(set); err != nil {
			return nil, err
		}
	}
	s.install(newSnapshot(cur.version+1, cat, d))
	if committed != nil {
		s.replicate(s.walSeq, committed)
	}
	return set, nil
}

// Response is the result of one query: the conventional extensional
// answer plus the derived intensional answer, stamped with the snapshot
// version that produced it. Responses may be served from a per-snapshot
// cache and shared between callers — treat every part of a Response,
// including the extensional relation, as immutable.
type Response struct {
	Version     uint64
	Extensional *relation.Relation
	Analysis    *query.Analysis
	Inference   *infer.Result
	Intensional *answer.Answer
}

// Query executes a SQL query, returning both answer forms. mode selects
// which inference direction the rendered intensional answer reports.
func (s *System) Query(sql string, mode answer.Mode) (*Response, error) {
	return s.QueryContext(context.Background(), sql, mode)
}

// QueryContext is Query with a deadline: the context is threaded into
// the streaming executor, which checks it at batch boundaries, so a
// caller-imposed timeout abandons a long scan mid-stream rather than
// only between pipeline stages. Successful responses are cached per
// snapshot, keyed by (sql, mode) — a repeated query against an
// unchanged rule base re-materialises nothing.
func (s *System) QueryContext(ctx context.Context, sql string, mode answer.Mode) (*Response, error) {
	sn := s.current()
	key := fmt.Sprintf("%d\x00%s", mode, sql)
	if r, ok := sn.cache.get(key); ok {
		return r, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Execute through the prepared-statement path: the plan — with the
	// rule base's semantic rewrites applied — is cached per snapshot, so
	// a repeated statement skips parse, analysis, and planning entirely.
	prep, err := s.prepare(sn, sql)
	if err != nil {
		return nil, err
	}
	ext, err := prep.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	an := prep.Analysis
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := sn.inf.Derive(an)
	if err != nil {
		return nil, err
	}
	resp := &Response{
		Version:     sn.version,
		Extensional: ext,
		Analysis:    an,
		Inference:   res,
		Intensional: answer.Render(an, res, mode),
	}
	sn.cache.put(key, resp)
	return resp, nil
}

// responseCache memoises successful query responses for one snapshot.
// It dies with its snapshot, so entries never outlive the rule base and
// data that produced them.
type responseCache struct {
	mu sync.Mutex
	m  map[string]*Response // guarded by mu
}

// maxCachedResponses bounds the cache; past it the whole cache is
// dropped, which keeps eviction deterministic and the common
// steady-state workload (a bounded set of hot queries) fully cached.
const maxCachedResponses = 1024

func newResponseCache() *responseCache {
	return &responseCache{m: make(map[string]*Response)}
}

func (c *responseCache) get(k string) (*Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[k]
	return r, ok
}

func (c *responseCache) put(k string, r *Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= maxCachedResponses {
		c.m = make(map[string]*Response)
	}
	c.m[k] = r
}

// declsFile is the database directory entry holding the dictionary
// declarations.
const declsFile = "dictionary.json"

// walSeqFile is the database directory entry recording the sequence
// number of the last WAL record whose effects the directory contains.
// Replay skips records at or below it, making recovery idempotent: a
// crash between a checkpoint's atomic save and its log reset replays a
// log whose every record the catalog already holds, and each is
// recognised and skipped instead of double-applied.
const walSeqFile = "walseq.json"

// walSeqRecord is the JSON shape of walSeqFile. Version records the
// snapshot version the directory holds, so a reopened system resumes
// numbering where it left off instead of restarting at 1 — the property
// that keeps a leader's version numbers aligned with its followers'
// across restarts. Zero (files written before the field existed) means
// "whatever Open assigns".
type walSeqRecord struct {
	Seq     uint64 `json:"seq"`
	Version uint64 `json:"version,omitempty"`
}

// readWalSeq loads the directory's checkpointed WAL sequence and
// snapshot version; a missing file (a directory saved by a non-durable
// system, or predating the format) means nothing is recorded as
// applied.
func readWalSeq(dir string) (seq, version uint64, err error) {
	data, err := os.ReadFile(filepath.Join(dir, walSeqFile))
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("core: read wal sequence: %w", err)
	}
	var rec walSeqRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return 0, 0, fmt.Errorf("core: parse %s: %w", walSeqFile, err)
	}
	return rec.Seq, rec.Version, nil
}

// Save writes the database, its rule relations, and the dictionary
// declarations to a directory — the complete relocatable unit of
// Section 5.2.2. The whole directory is written atomically (built in a
// temporary sibling and swapped into place), so a crash mid-save never
// corrupts a previously saved database. Stale rules are not persisted:
// the serving rule set is what Save stores, and a load after a crash
// re-derives staleness deterministically from the replayed WAL.
//
// On a durable system, saving over its own directory is a checkpoint:
// the WAL is truncated in the same critical section, because the saved
// directory already contains every logged mutation. Own-directory
// detection compares inodes (os.SameFile) after the save, so aliases —
// relative paths, symlinked parents — are caught too. The comparison
// failing open is safe: every saved directory records the WAL sequence
// it contains, so a reopen skips the already-applied records instead of
// double-applying them; a missed reset costs log space, not
// correctness.
func (s *System) Save(dir string) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := s.saveLocked(dir); err != nil {
		return err
	}
	if s.log != nil && sameDir(dir, s.dir) {
		return s.log.Reset()
	}
	return nil
}

// sameDir reports whether two paths name the same directory on disk.
// Called after the save, when both paths exist if they alias each
// other; any stat failure means they cannot be the same live directory.
func sameDir(a, b string) bool {
	if filepath.Clean(a) == filepath.Clean(b) {
		return true
	}
	ai, err := os.Stat(a)
	if err != nil {
		return false
	}
	bi, err := os.Stat(b)
	if err != nil {
		return false
	}
	return os.SameFile(ai, bi)
}

// saveLocked writes the current snapshot to dir. Caller holds wmu.
//
//ilint:locked wmu
func (s *System) saveLocked(dir string) error {
	sn := s.current()
	if sn.d.Rules().Len() > 0 {
		if err := sn.d.StoreRules(); err != nil {
			return err
		}
	}
	return storage.WriteAtomicFS(s.fs, dir, func(tmp string) error {
		if err := sn.cat.WriteIntoFS(s.fs, tmp); err != nil {
			return err
		}
		data, err := dict.MarshalDecls(sn.d.Decls())
		if err != nil {
			return err
		}
		if err := s.fs.WriteFile(filepath.Join(tmp, declsFile), data, 0o644); err != nil {
			return fmt.Errorf("core: save declarations: %w", err)
		}
		seq, err := json.Marshal(walSeqRecord{Seq: s.walSeq, Version: sn.version})
		if err != nil {
			return fmt.Errorf("core: encode wal sequence: %w", err)
		}
		if err := s.fs.WriteFile(filepath.Join(tmp, walSeqFile), seq, 0o644); err != nil {
			return fmt.Errorf("core: save wal sequence: %w", err)
		}
		return nil
	})
}

// Open loads a database directory written by Save: catalog, dictionary
// declarations, and (when present) the induced rule base.
func Open(dir string) (*System, error) {
	if err := storage.RecoverAtomic(dir); err != nil {
		return nil, err
	}
	cat, err := storage.Load(dir)
	if err != nil {
		return nil, err
	}
	d := dict.New(cat)
	if data, err := os.ReadFile(filepath.Join(dir, declsFile)); err == nil {
		decls, err := dict.UnmarshalDecls(data)
		if err != nil {
			return nil, err
		}
		if err := d.Apply(decls); err != nil {
			return nil, err
		}
	}
	if cat.Has(rules.RuleRelName) {
		if err := d.LoadRules(); err != nil {
			return nil, err
		}
	}
	return New(cat, d), nil
}
