// Package core assembles the intensional query processing system of
// Figure 6: the traditional query processor, the intelligent data
// dictionary, the inductive learning subsystem, and the inference
// processor, behind one public API. This is the entry point examples and
// tools use.
package core

import (
	"fmt"
	"os"
	"path/filepath"

	"intensional/internal/answer"
	"intensional/internal/dict"
	"intensional/internal/induct"
	"intensional/internal/infer"
	"intensional/internal/query"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/storage"
)

// System is one intensional query processing instance bound to a
// database.
type System struct {
	cat *storage.Catalog
	d   *dict.Dictionary
	q   *query.Processor
	inf *infer.Processor
}

// New assembles a system over a catalog and its dictionary.
func New(cat *storage.Catalog, d *dict.Dictionary) *System {
	return &System{cat: cat, d: d, q: query.New(cat), inf: infer.New(d)}
}

// Catalog returns the underlying catalog.
func (s *System) Catalog() *storage.Catalog { return s.cat }

// Dictionary returns the intelligent data dictionary.
func (s *System) Dictionary() *dict.Dictionary { return s.d }

// Rules returns the current rule base.
func (s *System) Rules() *rules.Set { return s.d.Rules() }

// Induce runs the Inductive Learning Subsystem over the database,
// installs the resulting rule base in the dictionary, and stores it as
// rule relations in the catalog so it relocates with the data.
func (s *System) Induce(opts induct.Options) (*rules.Set, error) {
	set, err := induct.New(s.d, opts).InduceAll()
	if err != nil {
		return nil, err
	}
	s.d.SetRules(set)
	if err := s.d.StoreRules(); err != nil {
		return nil, err
	}
	return set, nil
}

// Response is the result of one query: the conventional extensional
// answer plus the derived intensional answer.
type Response struct {
	Extensional *relation.Relation
	Analysis    *query.Analysis
	Inference   *infer.Result
	Intensional *answer.Answer
}

// Query executes a SQL query, returning both answer forms. mode selects
// which inference direction the rendered intensional answer reports.
func (s *System) Query(sql string, mode answer.Mode) (*Response, error) {
	ext, an, err := s.q.Run(sql)
	if err != nil {
		return nil, err
	}
	res, err := s.inf.Derive(an)
	if err != nil {
		return nil, err
	}
	return &Response{
		Extensional: ext,
		Analysis:    an,
		Inference:   res,
		Intensional: answer.Render(an, res, mode),
	}, nil
}

// declsFile is the database directory entry holding the dictionary
// declarations.
const declsFile = "dictionary.json"

// Save writes the database, its rule relations, and the dictionary
// declarations to a directory — the complete relocatable unit of
// Section 5.2.2.
func (s *System) Save(dir string) error {
	if s.d.Rules().Len() > 0 {
		if err := s.d.StoreRules(); err != nil {
			return err
		}
	}
	if err := s.cat.Save(dir); err != nil {
		return err
	}
	data, err := dict.MarshalDecls(s.d.Decls())
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, declsFile), data, 0o644); err != nil {
		return fmt.Errorf("core: save declarations: %w", err)
	}
	return nil
}

// Open loads a database directory written by Save: catalog, dictionary
// declarations, and (when present) the induced rule base.
func Open(dir string) (*System, error) {
	cat, err := storage.Load(dir)
	if err != nil {
		return nil, err
	}
	d := dict.New(cat)
	if data, err := os.ReadFile(filepath.Join(dir, declsFile)); err == nil {
		decls, err := dict.UnmarshalDecls(data)
		if err != nil {
			return nil, err
		}
		if err := d.Apply(decls); err != nil {
			return nil, err
		}
	}
	if cat.Has(rules.RuleRelName) {
		if err := d.LoadRules(); err != nil {
			return nil, err
		}
	}
	return New(cat, d), nil
}
