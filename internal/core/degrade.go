// Read-only degraded mode: the write path's answer to a disk that has
// stopped cooperating.
//
// A WAL append failure means a mutation could not be made durable. One
// failure may be transient, but a poisoned log handle (a failed fsync —
// the kernel's view of the file is unknown) or a run of consecutive
// failures means acknowledging further writes would be lying about
// durability. Instead of dying, the system flips to read-only: every
// ApplyBatch refuses with ErrReadOnly while queries keep serving from
// the last installed snapshot, whose rule base is still sound — a
// snapshot only installs after its WAL record is durable, so nothing
// the readers see was ever acknowledged-but-lost.
//
// Recovery is a successful Checkpoint: the atomic save persists the
// current state without needing the WAL, and the log reset rewrites the
// log file from scratch, clearing the poison. The operator reaches it
// via the shell's .checkpoint or by restarting the process (replay +
// fresh handle).

package core

import (
	"fmt"
	"time"
)

// ErrReadOnly is returned by ApplyBatch while the system is in
// read-only degraded mode. Queries are unaffected.
var ErrReadOnly = fmt.Errorf("core: system is read-only (degraded after WAL append failures; checkpoint or restart to recover)")

// defaultDegradeAfter is how many consecutive WAL append failures flip
// the system to read-only when DurableOptions.DegradeAfter is unset. A
// poisoned log handle flips it immediately regardless.
const defaultDegradeAfter = 3

// DegradedInfo describes why and since when the system is read-only.
type DegradedInfo struct {
	// Reason is the failure that triggered degradation.
	Reason string
	// Since is when the system entered the degraded state.
	Since time.Time
}

// Degraded returns the read-only degraded state, or nil while healthy.
// It is safe to call from any goroutine without locks, so health and
// metrics endpoints can report it while the write path is wedged.
func (s *System) Degraded() *DegradedInfo {
	return s.degraded.Load()
}

// noteAppendFailure records one failed WAL append and decides whether
// to enter read-only mode: immediately when the log handle is poisoned
// (the file's durable state is unknown), or after degradeAfter
// consecutive failures. Caller holds wmu.
//
//ilint:locked wmu
func (s *System) noteAppendFailure(err error) {
	s.walFails++
	poisoned := s.log.Poisoned() != nil
	if !poisoned && s.walFails < s.degradeAfter {
		return
	}
	if s.degraded.Load() != nil {
		return
	}
	reason := fmt.Sprintf("wal append failed %d consecutive time(s): %v", s.walFails, err)
	if poisoned {
		reason = fmt.Sprintf("wal handle poisoned: %v", err)
	}
	s.degraded.Store(&DegradedInfo{Reason: reason, Since: s.clock.Now()})
}

// clearDegradedLocked leaves read-only mode after the state has been
// durably persisted by other means (a successful checkpoint). Caller
// holds wmu.
//
//ilint:locked wmu
func (s *System) clearDegradedLocked() {
	s.walFails = 0
	s.degraded.Store(nil)
}
