// The replication substrate: what a leader exports and a follower
// replays.
//
// Replication is physical and single-leader. Every state change a
// durable leader commits is one WAL record — mutation batches since PR
// 3, and (as of the replicated serving tier) rule-set installs from
// Induce and Maintain, so the WAL's sequence order fully determines the
// snapshot sequence. A follower replays those records in order through
// the same code paths recovery uses, appending each to its own WAL
// before installing the snapshot it produces; leader, crash-replayed
// leader, and follower therefore converge on identical snapshots with
// identical version numbers.
//
// The leader retains recent records in memory (replBuf) so followers
// stream without re-reading the log file, and the buffer survives the
// checkpoint's log reset — retention is bounded by count, not by the
// WAL's truncation schedule. A follower that falls behind the retained
// window gets ErrSnapshotNeeded and re-bootstraps from a full snapshot
// archive, which is the same path a brand-new follower takes.

package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"intensional/internal/dict"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/storage"
)

// ErrNotLeader is returned by write operations on a follower replica.
// It unwraps to ErrReadOnly, so callers treating the system as
// "read-only for whatever reason" keep working; callers that care can
// redirect the write to the leader. The message deliberately does not
// include ErrReadOnly's text — a follower is healthy, not degraded.
var ErrNotLeader error = notLeaderError{}

type notLeaderError struct{}

func (notLeaderError) Error() string {
	return "core: not the leader: this replica is a follower; writes go to the leader"
}

func (notLeaderError) Unwrap() error { return ErrReadOnly }

// ErrSnapshotNeeded is returned when replication cannot proceed record
// by record: the leader no longer retains the requested records, or the
// follower was handed a record beyond the next expected sequence. The
// remedy is the same in both cases — bootstrap from a full snapshot.
var ErrSnapshotNeeded = errors.New("core: wal records no longer available; bootstrap from a snapshot")

// walKindRules marks a WAL record carrying a rule-set install (Induce
// or Maintain) instead of a statement batch. The zero kind is a
// statement batch, so logs written before rule records existed replay
// unchanged.
const walKindRules = "rules"

// defaultReplicationRetain bounds the in-memory replication buffer when
// DurableOptions does not.
const defaultReplicationRetain = 1024

// ReplRecord is one WAL record as shipped to followers: the sequence it
// commits and the exact payload bytes the leader logged. Followers
// append the payload verbatim to their own WAL, so a follower's log is
// byte-comparable to the leader's tail.
type ReplRecord struct {
	Seq     uint64 `json:"seq"`
	Payload []byte `json:"payload"`
}

// relColWire is one column of a relation on the wire.
type relColWire struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// relWire is a relation on the wire: schema plus rows rendered through
// the Value.String/ParseValue round-trip (floats use strconv's
// shortest-exact form, so the trip is lossless). nil marks NULL.
type relWire struct {
	Name string       `json:"name"`
	Cols []relColWire `json:"cols"`
	Rows [][]*string  `json:"rows"`
}

func encodeRelWire(r *relation.Relation) relWire {
	cols := r.Schema().Columns()
	w := relWire{Name: r.Name(), Cols: make([]relColWire, len(cols))}
	for i, c := range cols {
		w.Cols[i] = relColWire{Name: c.Name, Type: c.Type.String()}
	}
	for _, t := range r.Rows() {
		row := make([]*string, len(t))
		for i, v := range t {
			if v.IsNull() {
				continue
			}
			s := v.String()
			row[i] = &s
		}
		w.Rows = append(w.Rows, row)
	}
	return w
}

func parseRelType(s string) (relation.Type, error) {
	switch s {
	case "string":
		return relation.TString, nil
	case "int":
		return relation.TInt, nil
	case "float":
		return relation.TFloat, nil
	default:
		return 0, fmt.Errorf("core: unknown column type %q", s)
	}
}

func decodeRelWire(w relWire) (*relation.Relation, error) {
	cols := make([]relation.Column, len(w.Cols))
	for i, c := range w.Cols {
		t, err := parseRelType(c.Type)
		if err != nil {
			return nil, fmt.Errorf("core: relation %s: %w", w.Name, err)
		}
		cols[i] = relation.Column{Name: c.Name, Type: t}
	}
	sch, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("core: relation %s: %w", w.Name, err)
	}
	r := relation.New(w.Name, sch)
	for ri, row := range w.Rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("core: relation %s row %d has %d values, want %d", w.Name, ri, len(row), len(cols))
		}
		t := make(relation.Tuple, len(row))
		for i, s := range row {
			if s == nil {
				t[i] = relation.Null()
				continue
			}
			v, err := relation.ParseValue(*s, cols[i].Type)
			if err != nil {
				return nil, fmt.Errorf("core: relation %s row %d: %w", w.Name, ri, err)
			}
			t[i] = v
		}
		if err := r.Insert(t); err != nil {
			return nil, fmt.Errorf("core: relation %s row %d: %w", w.Name, ri, err)
		}
	}
	return r, nil
}

// encodeRules renders a rule set as its four rule relations on the
// wire — the payload of a walKindRules record.
func encodeRules(set *rules.Set) ([]relWire, error) {
	enc, err := rules.Encode(set)
	if err != nil {
		return nil, err
	}
	out := make([]relWire, 0, 4)
	for _, r := range []*relation.Relation{enc.Rules, enc.Map, enc.Attrs, enc.Meta} {
		out = append(out, encodeRelWire(r))
	}
	return out, nil
}

// replaySnapshot builds the successor snapshot one WAL record commits,
// dispatching on the record kind. Shared by crash recovery (OpenDurable)
// and follower replay (ReplayRecord), so both paths produce the
// snapshot the leader installed.
func replaySnapshot(cur *snapshot, rec walRecord) (*snapshot, error) {
	if rec.Kind == walKindRules {
		return installRulesSnapshot(cur, rec.Rules)
	}
	sn, _, err := applyStmts(cur, rec.Stmts)
	return sn, err
}

// installRulesSnapshot replays a rule-set install: the four rule
// relations replace their prior versions in a shallow-cloned catalog,
// the dictionary is rebuilt, and the decoded set becomes the new
// snapshot's all-valid rule base — exactly the state Induce or Maintain
// installed on the leader.
func installRulesSnapshot(cur *snapshot, wires []relWire) (*snapshot, error) {
	cat := cur.cat.ShallowClone()
	for _, w := range wires {
		r, err := decodeRelWire(w)
		if err != nil {
			return nil, err
		}
		if cat.Has(r.Name()) {
			if err := cat.Drop(r.Name()); err != nil {
				return nil, err
			}
		}
		cat.Put(r)
	}
	d := dict.New(cat)
	if err := d.Apply(cur.d.Decls()); err != nil {
		return nil, fmt.Errorf("core: replay rules: rebuild dictionary: %w", err)
	}
	if err := d.LoadRules(); err != nil {
		return nil, fmt.Errorf("core: replay rules: %w", err)
	}
	return newSnapshot(cur.version+1, cat, d), nil
}

// replicate records a committed WAL record in the retention buffer and
// wakes sequence waiters. Called with wmu held (records must enter the
// buffer in commit order); the buffer has its own lock because
// ReplicationBatch reads it without wmu.
//
//ilint:locked wmu
func (s *System) replicate(seq uint64, payload []byte) {
	s.replMu.Lock()
	s.replBuf = append(s.replBuf, ReplRecord{Seq: seq, Payload: payload})
	if n := s.replRetain; n > 0 && len(s.replBuf) > n {
		keep := make([]ReplRecord, n)
		copy(keep, s.replBuf[len(s.replBuf)-n:])
		s.replBuf = keep
	}
	s.replMu.Unlock()
	s.advanceSeq(seq)
}

// advanceSeq publishes a newly applied WAL sequence and wakes WaitForSeq
// callers.
func (s *System) advanceSeq(seq uint64) {
	s.seqMu.Lock()
	if seq > s.appliedSeq.Load() {
		s.appliedSeq.Store(seq)
	}
	ch := s.seqCh
	s.seqCh = make(chan struct{})
	s.seqMu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// WalSeq returns the sequence of the last WAL record whose effects the
// current state includes — committed writes on a leader, replayed
// records on a follower. Zero on a system that has never logged.
func (s *System) WalSeq() uint64 { return s.appliedSeq.Load() }

// Follower reports whether the system currently acts as a follower
// replica. The role can change at runtime via Promote and Demote (live
// cluster reconfiguration), so callers must not cache the answer across
// requests.
func (s *System) Follower() bool { return s.follower.Load() }

// Promote turns a follower into a write-accepting leader — the
// follower half of a live leader handover. The caller must have stopped
// the replication loop first; from the moment Promote returns, local
// writes are accepted and logged, and the node's retention buffer
// (populated by replayed records) lets other replicas keep streaming
// from it without a re-bootstrap.
func (s *System) Promote() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.log == nil {
		return ErrNotDurable
	}
	if !s.follower.Load() {
		return fmt.Errorf("core: Promote on a node that already leads")
	}
	s.follower.Store(false)
	return nil
}

// Demote turns the leader into a follower — the leader half of a live
// handover. Demote itself only flips the fence (subsequent writes get
// ErrNotLeader); deciding whether demotion is SAFE — every committed
// record replicated to the successor — is the cluster layer's fencing
// check, which must run before this. The caller then attaches a
// replication loop pointed at the new leader.
func (s *System) Demote() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.log == nil {
		return ErrNotDurable
	}
	if s.follower.Load() {
		return fmt.Errorf("core: Demote on a follower")
	}
	s.follower.Store(true)
	return nil
}

// WaitForSeq blocks until the system has applied WAL sequence seq (the
// read-your-writes wait: a follower query carrying a write token parks
// here until replication catches up) or ctx ends.
func (s *System) WaitForSeq(ctx context.Context, seq uint64) error {
	for {
		s.seqMu.Lock()
		ch := s.seqCh
		s.seqMu.Unlock()
		if s.appliedSeq.Load() >= seq {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// ReplicationBatch returns retained WAL records with sequence > after,
// at most max of them, plus the leader's current committed sequence.
// When no such records exist yet and wait is positive, the call blocks
// up to wait for the next commit (the long-poll). A follower asking for
// records older than the retention window gets ErrSnapshotNeeded and
// must re-bootstrap.
func (s *System) ReplicationBatch(ctx context.Context, after uint64, wait time.Duration, max int) ([]ReplRecord, uint64, error) {
	if max <= 0 {
		max = 512
	}
	for {
		recs, cur, err := s.replicationSlice(after, max)
		if err != nil || len(recs) > 0 || wait <= 0 {
			return recs, cur, err
		}
		wctx, cancel := context.WithTimeout(ctx, wait)
		err = s.WaitForSeq(wctx, after+1)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return nil, cur, ctx.Err()
			}
			// The poll window elapsed quietly — an empty batch, not an
			// error; the follower learns the leader's position and re-polls.
			return nil, s.WalSeq(), nil
		}
		wait = 0 // records exist now; return them without a second park
	}
}

// replicationSlice copies the retained records with sequence > after.
func (s *System) replicationSlice(after uint64, max int) ([]ReplRecord, uint64, error) {
	cur := s.WalSeq()
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if after >= cur {
		return nil, cur, nil
	}
	// The buffer is contiguous and seq-ascending; its floor is the
	// sequence just before its first record. Anything at or below the
	// floor is gone — only a snapshot can cover the gap.
	floor := cur
	if len(s.replBuf) > 0 {
		floor = s.replBuf[0].Seq - 1
	}
	if after < floor {
		return nil, cur, fmt.Errorf("%w (want > %d, retained > %d)", ErrSnapshotNeeded, after, floor)
	}
	var out []ReplRecord
	for _, r := range s.replBuf {
		if r.Seq <= after {
			continue
		}
		out = append(out, r)
		if len(out) >= max {
			break
		}
	}
	return out, cur, nil
}

// BootstrapArchive is a full snapshot of a system's replicable state:
// every relation (with the rule relations freshly encoded from the
// serving rule set, so a bootstrapping follower never receives a stale
// rule), the dictionary declarations, and the WAL position and snapshot
// version the archive captures. It is the starting point for a new
// follower and the catch-up path for one that fell behind retention.
type BootstrapArchive struct {
	Seq       uint64    `json:"seq"`
	Version   uint64    `json:"version"`
	Relations []relWire `json:"relations"`
	Decls     []byte    `json:"decls,omitempty"`
}

// BootstrapArchive captures the current state as a transferable
// snapshot. Taken under the writer lock so the archive is one
// consistent (seq, version, state) triple.
func (s *System) BootstrapArchive() (*BootstrapArchive, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	sn := s.current()
	a := &BootstrapArchive{Seq: s.walSeq, Version: sn.version}
	ruleRel := map[string]bool{
		rules.RuleRelName: true, rules.MapRelName: true,
		rules.AttrRelName: true, rules.MetaRelName: true,
	}
	for _, name := range sn.cat.Names() {
		if ruleRel[name] {
			continue // re-encoded below from the serving set
		}
		r, err := sn.cat.Get(name)
		if err != nil {
			return nil, err
		}
		a.Relations = append(a.Relations, encodeRelWire(r))
	}
	// The catalog's stored rule relations can lag the serving set (a
	// mutation may have staled rules since the last StoreRules); encode
	// the set actually served so the follower starts all-valid and
	// replays subsequent staleness itself.
	if set := sn.d.Rules(); set.Len() > 0 {
		wires, err := encodeRules(set)
		if err != nil {
			return nil, err
		}
		a.Relations = append(a.Relations, wires...)
	}
	decls, err := dict.MarshalDecls(sn.d.Decls())
	if err != nil {
		return nil, err
	}
	a.Decls = decls
	return a, nil
}

// InstallBootstrap replaces the system's entire state with an archive:
// catalog, dictionary, rules, WAL position, and snapshot version. The
// follower then checkpoints, so its own directory and (reset) WAL
// record the archived position and a restart resumes from it. Only
// followers bootstrap; a leader's state is the source of truth.
func (s *System) InstallBootstrap(a *BootstrapArchive) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if !s.follower.Load() {
		return fmt.Errorf("core: bootstrap install on a non-follower system")
	}
	cat := storage.NewCatalog()
	for _, w := range a.Relations {
		r, err := decodeRelWire(w)
		if err != nil {
			return err
		}
		cat.Put(r)
	}
	d := dict.New(cat)
	if len(a.Decls) > 0 {
		decls, err := dict.UnmarshalDecls(a.Decls)
		if err != nil {
			return err
		}
		if err := d.Apply(decls); err != nil {
			return err
		}
	}
	if cat.Has(rules.RuleRelName) {
		if err := d.LoadRules(); err != nil {
			return err
		}
	}
	s.install(newSnapshot(a.Version, cat, d))
	s.walSeq = a.Seq
	s.replMu.Lock()
	s.replBuf = nil
	s.replMu.Unlock()
	s.advanceSeq(a.Seq)
	if s.log != nil {
		if err := s.checkpointLocked(); err != nil {
			return fmt.Errorf("core: persist bootstrap: %w", err)
		}
	}
	return nil
}

// ReplayRecord applies one replicated WAL record on a follower: the
// payload is appended verbatim to the follower's own WAL (the local
// commit point, preserving the leader's ordering of log-then-install),
// then the snapshot it produces installs. Records at or below the
// follower's position are duplicate deliveries and are skipped; a
// record beyond the next expected sequence is a gap only a snapshot can
// fill, reported as ErrSnapshotNeeded.
func (s *System) ReplayRecord(seq uint64, payload []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.log == nil {
		return ErrNotDurable
	}
	if !s.follower.Load() {
		return fmt.Errorf("core: ReplayRecord on a leader (replay is the follower apply path)")
	}
	if seq <= s.walSeq {
		return nil
	}
	if seq != s.walSeq+1 {
		return fmt.Errorf("%w (record %d after %d)", ErrSnapshotNeeded, seq, s.walSeq)
	}
	rec, err := decodeWalRecord(payload)
	if err != nil {
		return err
	}
	if rec.Seq != seq {
		return fmt.Errorf("core: record claims seq %d, shipped as %d", rec.Seq, seq)
	}
	sn, err := replaySnapshot(s.current(), rec)
	if err != nil {
		return err
	}
	if err := s.log.Append(payload); err != nil {
		s.noteAppendFailure(err)
		return fmt.Errorf("%w: %v", ErrLogFailed, err)
	}
	s.walFails = 0
	s.walSeq = seq
	s.install(sn)
	// Replayed records enter the retention buffer too, not just the
	// applied-sequence watch: a follower promoted to leader by a live
	// reconfiguration can then serve /replica/wal to the demoted leader
	// and other replicas without forcing them through a re-bootstrap.
	s.replicate(seq, payload)
	if s.checkpointBytes > 0 && s.log.Size() > s.checkpointBytes {
		if cerr := s.checkpointLocked(); cerr != nil {
			// Local housekeeping only; the record is applied and durable
			// in the (un-truncated) log, and the next threshold crossing
			// retries the checkpoint.
			log.Printf("core: follower checkpoint after replay %d: %v", seq, cerr)
		}
	}
	return nil
}
