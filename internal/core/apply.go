// The write path: durable mutations and incremental rule maintenance.
//
// Apply/ApplyBatch execute DML copy-on-write against the current
// snapshot's catalog, run the incremental rule-maintenance check, append
// one record to the write-ahead log (the commit point, when the system
// is durable), and install the result as snapshot version N+1. Readers
// keep the snapshot they loaded; a rule contradicted by a mutation is
// withheld from the new snapshot's inference rule set the instant the
// snapshot installs, so no query ever sees a contradicted rule served
// as valid.
//
// Checkpointing composes the WAL with the atomic Save: the catalog
// (which contains every logged mutation) is atomically written first,
// and only then is the log truncated. Every WAL record carries the
// sequence number it commits and every saved directory records the last
// sequence it contains, so replay is idempotent: a crash between the
// save and the log reset replays records the catalog already holds, and
// each is skipped by sequence instead of double-applied. See Checkpoint
// for the full ordering argument.

package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"

	"intensional/internal/dict"
	"intensional/internal/fault"
	"intensional/internal/induct"
	"intensional/internal/maintain"
	"intensional/internal/query"
	"intensional/internal/rules"
	"intensional/internal/sqlparse"
	"intensional/internal/storage"
	"intensional/internal/wal"
)

// Crash points, reported to the system's fault.FS via fault.Hit. When
// the FS is a fault.Injector with the point armed, the operation aborts
// there — simulating a process dying between two file operations.
// Production FSes ignore them.
const (
	// pointExecuted: statements applied to the working catalog, nothing
	// logged yet. Dying here must lose the (unacknowledged) batch.
	pointExecuted = "apply.executed"
	// pointLogged: WAL record fsync'd, snapshot not yet installed.
	// Dying here must replay the batch on restart.
	pointLogged = "apply.logged"
	// pointCheckpointSaved: the checkpoint's atomic save has renamed
	// into place, the log is not yet reset. Dying here leaves a log
	// whose every record the directory already contains; replay must
	// skip them by sequence instead of double-applying.
	pointCheckpointSaved = "checkpoint.saved"
)

// walRecord is the JSON payload of one WAL entry. Seq is the record's
// position in the log's commit order, compared against the saved
// directory's walseq.json on replay; records at or below the saved
// sequence are already in the catalog and are skipped. Kind selects the
// payload: the zero kind is a statement batch applied atomically
// (Stmts), and walKindRules is a rule-set install (Rules) — logging
// both means every snapshot version a durable system installs is one
// WAL record, which is what lets followers replay their way to the
// leader's exact version numbers.
type walRecord struct {
	Seq   uint64    `json:"seq"`
	Kind  string    `json:"kind,omitempty"`
	Stmts []string  `json:"stmts,omitempty"`
	Rules []relWire `json:"rules,omitempty"`
}

// decodeWalRecord parses one WAL payload.
func decodeWalRecord(payload []byte) (walRecord, error) {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return walRecord{}, fmt.Errorf("core: decode wal record: %w", err)
	}
	return rec, nil
}

// walPath returns the log location for a database directory: a sibling
// file, never inside the directory, because checkpointing replaces the
// whole directory atomically and must not unlink the open log.
func walPath(dir string) string { return filepath.Clean(dir) + ".wal" }

// WALPath returns the write-ahead log location OpenDurable uses for a
// database directory — exported so the replica layer can place or
// remove a follower's log alongside its directory.
func WALPath(dir string) string { return walPath(dir) }

// ErrNotDurable is returned by Checkpoint on a system opened without a
// write-ahead log.
var ErrNotDurable = fmt.Errorf("core: system has no write-ahead log (use OpenDurable)")

// ErrLogFailed marks apply errors where the statements executed but the
// WAL append failed — an infrastructure fault (disk full, I/O error),
// not a problem with the request. When the failed stage was the record
// write and the log rewound cleanly, the batch did NOT commit; see
// ErrLogIndeterminate for the one case where that cannot be promised.
var ErrLogFailed = fmt.Errorf("core: write-ahead log append failed")

// ErrLogIndeterminate marks the append failures where the batch's
// commit state is unknown until the next recovery: the record's bytes
// may have reached the file before the failure (a failed fsync reports
// nothing about what the kernel already wrote — the "fsyncgate"
// semantics that poison the log handle), so after a crash, replay may
// legitimately surface the batch as committed. Callers treating errors
// as "definitely not applied" must check for this sentinel; it wraps
// ErrLogFailed, so err-is checks for the general failure still match.
var ErrLogIndeterminate = fmt.Errorf("%w (commit state indeterminate until the next recovery)", ErrLogFailed)

// DurableOptions configure OpenDurable.
type DurableOptions struct {
	// CheckpointBytes, when positive, auto-checkpoints after any apply
	// that leaves the WAL larger than this many bytes.
	CheckpointBytes int64
	// FS, when non-nil, routes every file operation of the durability
	// path (WAL appends, checkpoint saves) through it — the
	// fault-injection seam. Nil means the real filesystem.
	FS fault.FS
	// Clock, when non-nil, supplies degraded-state timestamps. Nil
	// means the wall clock.
	Clock fault.Clock
	// DegradeAfter is how many consecutive WAL append failures flip the
	// system to read-only degraded mode (a poisoned log flips it
	// immediately). Zero means the default of 3.
	DegradeAfter int
	// Follower opens the system as a follower replica: local writes are
	// refused with ErrNotLeader, and state advances only through
	// ReplayRecord and InstallBootstrap.
	Follower bool
	// ReplicationRetain bounds how many committed WAL records the system
	// keeps in memory for followers to stream (the buffer survives
	// checkpoints' log resets). Zero means a default of 1024; followers
	// further behind than the buffer re-bootstrap from a snapshot.
	ReplicationRetain int
}

// OpenDurable opens a database directory like Open and attaches the
// write-ahead log at "<dir>.wal" (created if absent), replaying any
// mutations logged after the last checkpoint. Records whose sequence
// number is at or below the directory's recorded walseq are already in
// the loaded catalog (a checkpoint saved them, then crashed or missed
// the log reset) and are skipped, so replay is idempotent. The returned
// system logs every ApplyBatch before acknowledging it; see Checkpoint
// for how the log is bounded. The log file travels with the directory
// only if moved alongside it — Save to a different directory writes a
// fully checkpointed copy instead.
//
// OpenDurable runs before the system is shared, so it touches
// wmu-guarded state without the lock.
//
//ilint:locked wmu
func OpenDurable(dir string, o DurableOptions) (*System, error) {
	// Repair an interrupted checkpoint swap before loading: a crash
	// between the two renames leaves only the ".old" generation, whose
	// walseq predates the un-reset WAL — replay brings it forward.
	fsys := o.FS
	if fsys == nil {
		fsys = fault.OS
	}
	if err := storage.RecoverAtomicFS(fsys, dir); err != nil {
		return nil, err
	}
	s, err := Open(dir)
	if err != nil {
		return nil, err
	}
	if o.FS != nil {
		s.fs = o.FS
	}
	if o.Clock != nil {
		s.clock = o.Clock
	}
	if o.DegradeAfter > 0 {
		s.degradeAfter = o.DegradeAfter
	}
	s.follower.Store(o.Follower)
	s.replRetain = o.ReplicationRetain
	if s.replRetain == 0 {
		s.replRetain = defaultReplicationRetain
	}
	savedSeq, savedVersion, err := readWalSeq(dir)
	if err != nil {
		return nil, err
	}
	if cur := s.current(); savedVersion > cur.version {
		// Restamp the base snapshot with the version the checkpoint
		// recorded, so version numbers stay monotone across restarts and
		// a follower replaying this log lands on the leader's numbers.
		s.install(newSnapshot(savedVersion, cur.cat, cur.d))
	}
	log, entries, err := wal.OpenFS(s.fs, walPath(dir))
	if err != nil {
		return nil, err
	}
	s.walSeq = savedSeq
	var replayed []ReplRecord
	for i, payload := range entries {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			cerr := log.Close()
			return nil, fmt.Errorf("core: wal entry %d: %w (close: %v)", i, err, cerr)
		}
		if rec.Seq != 0 && rec.Seq <= savedSeq {
			continue // already contained in the checkpointed catalog
		}
		sn, err := replaySnapshot(s.current(), rec)
		if err != nil {
			cerr := log.Close()
			return nil, fmt.Errorf("core: replay wal entry %d: %w (close: %v)", i, err, cerr)
		}
		s.install(sn)
		if rec.Seq > s.walSeq {
			s.walSeq = rec.Seq
		}
		if rec.Seq != 0 {
			replayed = append(replayed, ReplRecord{Seq: rec.Seq, Payload: payload})
		}
	}
	if n := s.replRetain; len(replayed) > n {
		replayed = replayed[len(replayed)-n:]
	}
	// Re-seed the retention buffer so followers resume streaming across
	// a leader restart without re-bootstrapping.
	s.replMu.Lock()
	s.replBuf = replayed
	s.replMu.Unlock()
	s.appliedSeq.Store(s.walSeq)
	s.log = log
	s.dir = dir
	s.checkpointBytes = o.CheckpointBytes
	return s, nil
}

// ApplyResult reports one committed mutation batch.
type ApplyResult struct {
	// Version is the snapshot the batch installed.
	Version uint64
	// Seq is the WAL sequence the batch committed at, zero on a
	// non-durable system. It is the basis of the read-your-writes token:
	// a replica that has applied Seq serves this write.
	Seq uint64
	// Mutations holds the per-statement effects, in batch order.
	Mutations []*query.Mutation
	// Stale and Refinable count the rules in each state after the batch
	// (cumulative since the last induction or maintenance).
	Stale, Refinable int
	// Checkpointed reports whether the apply triggered an automatic
	// checkpoint.
	Checkpointed bool
	// CheckpointErr describes an automatic checkpoint that failed after
	// the batch committed. The batch itself is durable and installed —
	// ApplyBatch returns a nil error in this case, so err-first callers
	// never mistake a committed batch for a failed one — but the WAL was
	// not compacted; the condition is degraded housekeeping, not a
	// failed mutation.
	CheckpointErr string
}

// Apply executes one DML statement as a single-statement batch.
func (s *System) Apply(ctx context.Context, sql string) (*ApplyResult, error) {
	return s.ApplyBatch(ctx, []string{sql})
}

// ApplyBatch executes a batch of DML statements atomically: either every
// statement lands in snapshot version N+1, or none does. On a durable
// system the batch is one WAL record, fsync'd before the snapshot
// installs — the append is the commit point, so a crash before it loses
// the (unacknowledged) batch and a crash after it replays the batch on
// restart. Rules contradicted by the batch are stale in the new snapshot
// and excluded from its inference rule set.
func (s *System) ApplyBatch(ctx context.Context, stmts []string) (*ApplyResult, error) {
	if len(stmts) == 0 {
		return nil, fmt.Errorf("core: empty statement batch")
	}
	parsed := make([]sqlparse.Stmt, len(stmts))
	for i, src := range stmts {
		st, err := sqlparse.ParseStatement(src)
		if err != nil {
			return nil, err
		}
		if !sqlparse.IsDML(st) {
			return nil, fmt.Errorf("core: statement %d is a %s, not a mutation", i, st.Kind())
		}
		parsed[i] = st
	}

	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.follower.Load() {
		return nil, ErrNotLeader
	}
	if st := s.degraded.Load(); st != nil {
		return nil, fmt.Errorf("%w (%s)", ErrReadOnly, st.Reason)
	}
	cur := s.current()
	sn, muts, err := applyParsed(cur, parsed)
	if err != nil {
		return nil, err
	}
	if err := fault.Hit(s.fs, pointExecuted); err != nil {
		return nil, err
	}
	var committed []byte
	if s.log != nil {
		payload, err := json.Marshal(walRecord{Seq: s.walSeq + 1, Stmts: stmts})
		if err != nil {
			return nil, fmt.Errorf("core: encode wal record: %w", err)
		}
		if err := s.log.Append(payload); err != nil {
			s.noteAppendFailure(err)
			if s.log.Poisoned() != nil {
				// The record may be fully written despite the error (a
				// failed fsync or rewind leaves the tail bytes unknown);
				// a crash-and-replay could surface this batch.
				return nil, fmt.Errorf("%w: %v", ErrLogIndeterminate, err)
			}
			return nil, fmt.Errorf("%w: %v", ErrLogFailed, err)
		}
		s.walFails = 0
		s.walSeq++
		committed = payload
	}
	if err := fault.Hit(s.fs, pointLogged); err != nil {
		return nil, err
	}
	s.install(sn)
	if committed != nil {
		s.replicate(s.walSeq, committed)
	}

	res := &ApplyResult{Version: sn.version, Seq: s.walSeq, Mutations: muts}
	res.Stale, res.Refinable = sn.maint.Counts()
	if res.Stale > 0 {
		s.kickAutoMaintain()
	}
	if s.log != nil && s.checkpointBytes > 0 && s.log.Size() > s.checkpointBytes {
		if err := s.checkpointLocked(); err != nil {
			// The batch is committed and durable; only the log
			// compaction failed. Report it in the result, not the error,
			// so err-first callers do not retry a committed batch.
			res.CheckpointErr = err.Error()
			return res, nil
		}
		res.Checkpointed = true
	}
	return res, nil
}

// applyStmts parses and applies a statement batch against a snapshot,
// returning the successor snapshot. Used by ApplyBatch (under wmu) and
// by WAL replay (pre-publication).
func applyStmts(cur *snapshot, stmts []string) (*snapshot, []*query.Mutation, error) {
	parsed := make([]sqlparse.Stmt, len(stmts))
	for i, src := range stmts {
		st, err := sqlparse.ParseStatement(src)
		if err != nil {
			return nil, nil, err
		}
		parsed[i] = st
	}
	return applyParsed(cur, parsed)
}

// applyParsed executes parsed statements copy-on-write against cur's
// catalog and runs rule maintenance, building (but not installing) the
// successor snapshot.
func applyParsed(cur *snapshot, parsed []sqlparse.Stmt) (*snapshot, []*query.Mutation, error) {
	workCat := cur.cat.ShallowClone()
	st := cur.maint
	muts := make([]*query.Mutation, 0, len(parsed))
	for _, p := range parsed {
		m, err := query.ApplyMutation(workCat, p)
		if err != nil {
			return nil, nil, err
		}
		st = st.ApplyMutation(cur.d, cur.full, m)
		muts = append(muts, m)
	}
	d := dict.New(workCat)
	if err := d.Apply(cur.d.Decls()); err != nil {
		return nil, nil, fmt.Errorf("core: rebuild dictionary: %w", err)
	}
	d.SetRules(st.Serving(cur.full))
	sn := newSnapshot(cur.version+1, workCat, d)
	sn.full = cur.full
	sn.maint = st
	return sn, muts, nil
}

// Checkpoint persists the database atomically and truncates the WAL.
// Ordering argument: Save writes catalog + declarations + the current
// WAL sequence into a temporary sibling and renames it over the
// directory, so at every instant the directory is either the old state
// (whose recorded sequence admits replay of the logged mutations) or
// the new state (whose recorded sequence makes replay skip them). Only
// after the rename succeeds is the log reset; a crash in the window
// between the two leaves a log whose every record is at or below the
// saved sequence, and OpenDurable skips them all — no mutation is ever
// double-applied, and none is ever lost.
func (s *System) Checkpoint() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.log == nil {
		return ErrNotDurable
	}
	return s.checkpointLocked()
}

// checkpointLocked runs the checkpoint protocol. A successful
// checkpoint also leaves read-only degraded mode: the state is durably
// saved and the log reset rewrote the WAL file from scratch, so the
// conditions that forced degradation no longer hold. Caller holds wmu.
//
//ilint:locked wmu
func (s *System) checkpointLocked() error {
	if err := s.saveLocked(s.dir); err != nil {
		return err
	}
	if err := fault.Hit(s.fs, pointCheckpointSaved); err != nil {
		return err
	}
	if err := s.log.Reset(); err != nil {
		return err
	}
	s.clearDegradedLocked()
	return nil
}

// logRulesLocked commits a rule-set install to the WAL as a
// walKindRules record — the rule-base counterpart of ApplyBatch's
// commit point, so induced and maintained rules survive a crash and
// ship to followers. Caller holds wmu, installs the snapshot only after
// this returns nil, and then offers the returned payload to followers
// with replicate (after the install, so sequence waiters never observe
// a sequence ahead of the serving snapshot).
//
//ilint:locked wmu
func (s *System) logRulesLocked(set *rules.Set) ([]byte, error) {
	wires, err := encodeRules(set)
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(walRecord{Seq: s.walSeq + 1, Kind: walKindRules, Rules: wires})
	if err != nil {
		return nil, fmt.Errorf("core: encode rules record: %w", err)
	}
	if err := s.log.Append(payload); err != nil {
		s.noteAppendFailure(err)
		if s.log.Poisoned() != nil {
			return nil, fmt.Errorf("%w: %v", ErrLogIndeterminate, err)
		}
		return nil, fmt.Errorf("%w: %v", ErrLogFailed, err)
	}
	s.walFails = 0
	s.walSeq++
	return payload, nil
}

// WalSize returns the write-ahead log's size in bytes, or 0 when the
// system is not durable — the quantity the auto-checkpoint threshold
// and the metrics endpoint report.
func (s *System) WalSize() int64 {
	if s.log == nil {
		return 0
	}
	return s.log.Size()
}

// Durable reports whether the system writes a WAL.
func (s *System) Durable() bool { return s.log != nil }

// Close stops the auto-maintainer (if running) and closes the WAL. The
// system must not be used afterwards.
func (s *System) Close() error {
	s.StopAutoMaintain()
	if s.log == nil {
		return nil
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.log.Close()
}

// RuleStatus returns, from one consistent snapshot: the full rule set
// (stale rules included), the maintenance state classifying it, and the
// snapshot version. The set Rules() serves for inference is this set
// minus the stale rules.
func (s *System) RuleStatus() (*rules.Set, *maintain.State, uint64) {
	sn := s.current()
	return sn.full, sn.maint, sn.version
}

// MaintainResult reports one maintenance pass.
type MaintainResult struct {
	// Version is the snapshot the pass installed (unchanged if there was
	// nothing to do).
	Version uint64
	// Schemes lists the re-induced rule schemes (sorted keys).
	Schemes []string
	// Dropped and Added count rules removed (stale/refinable of the
	// re-induced schemes) and re-derived.
	Dropped, Added int
}

// Maintain re-induces exactly the rule schemes holding stale or
// refinable rules, merges the result with the untouched rules (which
// keep their numbers), and installs it as a new all-valid snapshot. It
// is the incremental counterpart to Induce: the candidate pairs outside
// the mutated schemes are not re-run.
//
// The induction runs against a cloned catalog without holding the
// writer mutex, so applies and checkpoints proceed concurrently with a
// long re-induction pass. The lock is taken only to install: if another
// writer installed a snapshot meanwhile, the pass's input is outdated
// (the write may have staled further rules, or changed the data the
// re-induced intervals were fit to) and Maintain retries against the
// new snapshot. ctx cancels the pass between stages.
func (s *System) Maintain(ctx context.Context, opts induct.Options) (*MaintainResult, error) {
	if s.follower.Load() {
		return nil, ErrNotLeader
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cur := s.current()
		scope := cur.maint.SchemeKeys(cur.full)
		if len(scope) == 0 {
			return &MaintainResult{Version: cur.version}, nil
		}
		inScope := make(map[string]bool, len(scope))
		for _, k := range scope {
			inScope[k] = true
		}

		cat := cur.cat.Clone()
		d := dict.New(cat)
		if err := d.Apply(cur.d.Decls()); err != nil {
			return nil, fmt.Errorf("core: maintain: rebuild dictionary: %w", err)
		}
		in := induct.New(d, opts)
		pairs, err := in.CandidatePairs()
		if err != nil {
			return nil, err
		}
		var scoped []induct.Pair
		for _, p := range pairs {
			if inScope[p.Scheme().Key()] {
				scoped = append(scoped, p)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		results, err := in.InducePairsContext(ctx, scoped)
		if err != nil {
			return nil, err
		}

		// Untouched rules keep their numbers; re-induced schemes get
		// fresh numbers after the current maximum.
		merged := rules.NewSet()
		res := &MaintainResult{Schemes: scope}
		for _, r := range cur.full.Rules() {
			if inScope[r.Scheme().Key()] {
				res.Dropped++
				continue
			}
			merged.Add(r)
		}
		for _, rs := range results {
			for _, r := range rs {
				r.ID = 0
				merged.Add(r)
				res.Added++
			}
		}
		d.SetRules(merged)
		if err := d.StoreRules(); err != nil {
			return nil, err
		}

		s.wmu.Lock()
		if s.current().version != cur.version {
			// A write landed during the induction; its effects (data and
			// staleness) are not in this pass. Discard and redo.
			s.wmu.Unlock()
			continue
		}
		var committed []byte
		if s.log != nil {
			committed, err = s.logRulesLocked(merged)
			if err != nil {
				s.wmu.Unlock()
				return nil, err
			}
		}
		sn := newSnapshot(cur.version+1, cat, d)
		sn.full = merged
		sn.maint = maintain.NewState()
		s.install(sn)
		if committed != nil {
			s.replicate(s.walSeq, committed)
		}
		s.wmu.Unlock()
		res.Version = sn.version
		return res, nil
	}
}

// StartAutoMaintain launches the eager maintenance worker: each apply
// that leaves rules stale kicks it, and it runs Maintain with the given
// induction options (reusing its Workers pool) until the rule base is
// all-valid again. Kicks arriving mid-run coalesce (single flight).
// Calling it twice replaces the previous worker.
func (s *System) StartAutoMaintain(opts induct.Options) {
	s.StopAutoMaintain()
	s.amu.Lock()
	defer s.amu.Unlock()
	s.autoKick = make(chan struct{}, 1)
	s.autoStop = make(chan struct{})
	s.autoDone = make(chan struct{})
	go s.autoMaintainLoop(opts, s.autoKick, s.autoStop, s.autoDone)
}

// StopAutoMaintain stops the maintenance worker and waits for an
// in-flight pass to finish. Safe to call when none is running.
func (s *System) StopAutoMaintain() {
	s.amu.Lock()
	stop, done := s.autoStop, s.autoDone
	s.autoStop, s.autoDone, s.autoKick = nil, nil, nil
	s.amu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// kickAutoMaintain nudges the worker without blocking; a pending kick
// already covers this apply.
func (s *System) kickAutoMaintain() {
	s.amu.Lock()
	kick := s.autoKick
	s.amu.Unlock()
	if kick == nil {
		return
	}
	select {
	case kick <- struct{}{}:
	default:
	}
}

func (s *System) autoMaintainLoop(opts induct.Options, kick <-chan struct{}, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	// Cancelling on stop bounds StopAutoMaintain's wait: an in-flight
	// pass is abandoned at the next stage boundary instead of running a
	// full induction to completion.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-stop
		cancel()
	}()
	for {
		select {
		case <-stop:
			return
		case <-kick:
			switch _, err := s.Maintain(ctx, opts); {
			case err == nil:
				s.autoRuns.Add(1)
			case errors.Is(err, context.Canceled):
				// Shutdown, not a failure.
			default:
				s.autoErrs.Add(1)
			}
		}
	}
}

// AutoMaintainStats returns how many eager maintenance passes have run
// and how many failed.
func (s *System) AutoMaintainStats() (runs, errs uint64) {
	return s.autoRuns.Load(), s.autoErrs.Load()
}
