package core

import (
	"strings"
	"sync"

	"intensional/internal/plan"
	"intensional/internal/query"
	"intensional/internal/semopt"
)

// NormalizeSQL collapses runs of whitespace to single spaces so that
// formatting variants of one statement share a prepared plan. It is the
// prepared-statement cache key; matching stays case-sensitive because
// string literals are.
func NormalizeSQL(sql string) string {
	return strings.Join(strings.Fields(sql), " ")
}

// planCache memoises prepared statements for one snapshot, keyed by
// normalized SQL. Like the response cache it dies with its snapshot, so
// a plan never outlives the catalog version and rule base it was chosen
// for — the staleness story for cached index choices and semantic
// rewrites is simply snapshot lifetime.
type planCache struct {
	mu sync.Mutex
	m  map[string]*query.Prepared // guarded by mu
}

// maxCachedPlans bounds the cache; past it the whole cache is dropped,
// same deterministic eviction as the response cache.
const maxCachedPlans = 1024

func newPlanCache() *planCache {
	return &planCache{m: make(map[string]*query.Prepared)}
}

func (c *planCache) get(k string) *query.Prepared {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[k]
}

func (c *planCache) put(k string, p *query.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= maxCachedPlans {
		c.m = make(map[string]*query.Prepared)
	}
	c.m[k] = p
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// rewriter adapts the snapshot's semantic optimizer to the query
// processor's Rewriter hook. The adaptation exists because of the import
// direction: semopt consumes query.Analysis, so query cannot call
// semopt itself.
//
// Safety argument for applying the advice to execution: the dictionary
// serves only rules consistent with this snapshot's data (maintenance
// retires contradicted rules before a new snapshot is published), so a
// restriction semopt derives from them holds for every tuple of the true
// answer. Adding it as a filter removes only non-answers; dropping a
// redundant restriction keeps the filter logically equal; an Empty proof
// means no stored tuple can qualify. And because the plan cache is
// per-snapshot, a rewrite can never outlive the rule base that justified
// it.
func (sn *snapshot) rewriter() query.Rewriter {
	return func(an *query.Analysis) (*query.Rewrites, error) {
		rep, err := semopt.Analyze(an, sn.d)
		if err != nil {
			return nil, err
		}
		return &query.Rewrites{
			Empty:     rep.Empty,
			Because:   rep.Because,
			Implied:   rep.Implied,
			Redundant: rep.Redundant,
		}, nil
	}
}

// prepare returns the snapshot's prepared statement for sql, planning
// and caching it on first use.
func (s *System) prepare(sn *snapshot, sql string) (*query.Prepared, error) {
	key := NormalizeSQL(sql)
	if p := sn.plans.get(key); p != nil {
		s.planHits.Add(1)
		return p, nil
	}
	s.planMisses.Add(1)
	p, err := sn.q.Prepare(key, sn.rewriter())
	if err != nil {
		return nil, err
	}
	sn.plans.put(key, p)
	return p, nil
}

// Prepare plans a SQL query against the current snapshot, applying the
// rule base's semantic rewrites, and caches the result as a prepared
// statement keyed by normalized SQL. Repeated calls with the same
// statement against an unchanged snapshot return the cached plan.
func (s *System) Prepare(sql string) (*query.Prepared, error) {
	return s.prepare(s.current(), sql)
}

// Explain returns the typed execution plan for a SQL query — access
// paths with cardinality estimates, join order, and the semantic
// rewrites the rule base contributed — without executing it. The plan
// shown is the plan that runs: Explain prepares (and caches) the same
// statement Query executes.
func (s *System) Explain(sql string) (*plan.Plan, error) {
	p, err := s.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return p.Describe(), nil
}

// PlannerStats is a point-in-time report of planner behaviour for
// metrics: cumulative scan counters over the system's lifetime and the
// prepared-statement cache's hit rate.
type PlannerStats struct {
	// FullScans and IndexScans count executed access paths by kind.
	FullScans  int64
	IndexScans int64
	// IndexFallbacks counts access paths that wanted an index but
	// degraded to a full scan (stale index, mixed-kind column,
	// incomparable probe). Nonzero and climbing means some query is
	// quietly running O(n); the reason is logged when it happens.
	IndexFallbacks int64
	// PlanCacheHits / PlanCacheMisses are cumulative prepared-statement
	// cache outcomes; CachedPlans is the current snapshot's cache size.
	PlanCacheHits   int64
	PlanCacheMisses int64
	CachedPlans     int
}

// PlannerStats reports the planner counters and prepared-statement
// cache state.
func (s *System) PlannerStats() PlannerStats {
	return PlannerStats{
		FullScans:       s.counters.FullScans.Load(),
		IndexScans:      s.counters.IndexScans.Load(),
		IndexFallbacks:  s.counters.IndexFallbacks.Load(),
		PlanCacheHits:   s.planHits.Load(),
		PlanCacheMisses: s.planMisses.Load(),
		CachedPlans:     s.current().plans.len(),
	}
}
