package core_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"intensional/internal/answer"
	"intensional/internal/core"
	"intensional/internal/induct"
	"intensional/internal/shipdb"
)

func shipSystem(t *testing.T) *core.System {
	t.Helper()
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	return core.New(cat, d)
}

// TestEndToEnd runs the whole pipeline through the public API: induce,
// then ask the paper's three example queries.
func TestEndToEnd(t *testing.T) {
	s := shipSystem(t)
	set, err := s.Induce(induct.Options{Nc: 3})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 || s.Rules().Len() != set.Len() {
		t.Fatalf("rule base not installed: %d", set.Len())
	}

	resp, err := s.Query(`SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
		FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`, answer.ForwardOnly)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Extensional.Len() != 2 {
		t.Errorf("extensional = %d rows", resp.Extensional.Len())
	}
	if !strings.Contains(resp.Intensional.Text(), "SSBN") {
		t.Errorf("intensional = %q", resp.Intensional.Text())
	}

	resp, err = s.Query(`SELECT SUBMARINE.NAME, SUBMARINE.CLASS FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = "SSBN"`, answer.BackwardOnly)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Extensional.Len() != 7 {
		t.Errorf("extensional = %d rows", resp.Extensional.Len())
	}
	if !strings.Contains(resp.Intensional.Text(), "0101 to 0103") {
		t.Errorf("intensional = %q", resp.Intensional.Text())
	}
}

// TestSaveOpenRoundtrip relocates the database with its knowledge and
// reruns inference at the new location without re-inducing.
func TestSaveOpenRoundtrip(t *testing.T) {
	s := shipSystem(t)
	if _, err := s.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	nRules := s.Rules().Len()
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}

	s2, err := core.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Rules().Len() != nRules {
		t.Fatalf("recovered %d rules, want %d", s2.Rules().Len(), nRules)
	}
	if len(s2.Dictionary().Hierarchies()) != 3 {
		t.Errorf("hierarchies = %d", len(s2.Dictionary().Hierarchies()))
	}
	resp, err := s2.Query(`SELECT SUBMARINE.ID FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`, answer.ForwardOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Intensional.Text(), "SSBN") {
		t.Errorf("relocated inference = %q", resp.Intensional.Text())
	}
}

func TestCatalogAccessor(t *testing.T) {
	s := shipSystem(t)
	if !s.Catalog().Has("SUBMARINE") {
		t.Error("Catalog accessor broken")
	}
}

func TestSaveFailsOnUnwritablePath(t *testing.T) {
	s := shipSystem(t)
	if err := s.Save("/proc/definitely/not/writable"); err == nil {
		t.Error("Save to unwritable path should error")
	}
}

func TestOpenCorruptDeclarations(t *testing.T) {
	s := shipSystem(t)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "dictionary.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Open(dir); err == nil {
		t.Error("corrupt declarations should fail Open")
	}
}

func TestOpenCorruptRuleRelations(t *testing.T) {
	s := shipSystem(t)
	if _, err := s.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Truncate the rule relation CSV to a bare header missing columns.
	if err := os.WriteFile(filepath.Join(dir, "rules.csv"), []byte("RuleNo\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Open(dir); err == nil {
		t.Error("corrupt rule relations should fail Open")
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := core.Open(t.TempDir()); err == nil {
		t.Error("Open of empty dir should error")
	}
}

func TestQueryErrorPropagates(t *testing.T) {
	s := shipSystem(t)
	if _, err := s.Query("SELECT nope FROM nothing", answer.Combined); err == nil {
		t.Error("bad query should error")
	}
}

func TestSaveWithoutRules(t *testing.T) {
	s := shipSystem(t)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	s2, err := core.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Rules().Len() != 0 {
		t.Errorf("rules = %d, want 0", s2.Rules().Len())
	}
}
