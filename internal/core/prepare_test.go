package core_test

import (
	"strings"
	"testing"

	"intensional/internal/answer"
	"intensional/internal/core"
	"intensional/internal/induct"
)

func inducedShipSystem(t *testing.T) *core.System {
	t.Helper()
	s := shipSystem(t)
	if _, err := s.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestExplainReturnsPlan: every query shape the executor accepts gets a
// plan — selection, join, aggregate, GROUP BY, ORDER BY, DISTINCT, star.
func TestExplainReturnsPlan(t *testing.T) {
	s := inducedShipSystem(t)
	queries := []string{
		`SELECT * FROM CLASS`,
		`SELECT Class FROM CLASS WHERE Displacement > 5000`,
		`SELECT DISTINCT Type FROM CLASS`,
		`SELECT Class, Displacement FROM CLASS ORDER BY Displacement DESC`,
		`SELECT SUBMARINE.NAME FROM SUBMARINE, CLASS
			WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`,
		`SELECT COUNT(*) FROM SUBMARINE`,
		`SELECT Type, COUNT(*), AVG(Displacement) FROM CLASS GROUP BY Type`,
		`SELECT Class FROM CLASS WHERE Type = "SSBN" OR Displacement > 8000`,
	}
	for _, sql := range queries {
		pl, err := s.Explain(sql)
		if err != nil {
			t.Errorf("Explain(%q): %v", sql, err)
			continue
		}
		if pl.Root == nil {
			t.Errorf("Explain(%q): nil root", sql)
			continue
		}
		if pl.String() == "" {
			t.Errorf("Explain(%q): empty rendering", sql)
		}
		// The plan must be for a runnable statement.
		if _, err := s.Query(sql, answer.Combined); err != nil {
			t.Errorf("Query(%q) after Explain: %v", sql, err)
		}
	}
}

// TestEmptyShortCircuitNoScan: a provably-empty restriction must answer
// without touching any relation — no index scans, no full scans.
func TestEmptyShortCircuitNoScan(t *testing.T) {
	s := inducedShipSystem(t)
	before := s.PlannerStats()

	// Every CLASS displacement is >= 3000 under the induced rules, so
	// this is provably empty.
	resp, err := s.Query(`SELECT Class FROM CLASS WHERE Displacement < 2000`, answer.Combined)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Extensional.Len() != 0 {
		t.Fatalf("rows = %d, want 0", resp.Extensional.Len())
	}
	after := s.PlannerStats()
	if after.FullScans != before.FullScans || after.IndexScans != before.IndexScans {
		t.Errorf("provably-empty query scanned: full %d→%d, index %d→%d",
			before.FullScans, after.FullScans, before.IndexScans, after.IndexScans)
	}

	pl, err := s.Explain(`SELECT Class FROM CLASS WHERE Displacement < 2000`)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Root.Kind() != "Empty" {
		t.Errorf("plan root = %s, want Empty\n%s", pl.Root.Kind(), pl)
	}
	if len(pl.Rewrites) == 0 || pl.Rewrites[0].Kind != "empty" {
		t.Errorf("rewrites = %+v, want an empty rewrite", pl.Rewrites)
	}

	// An aggregate over the provably-empty input still produces its one
	// grand-total row, and still without scanning.
	resp, err = s.Query(`SELECT COUNT(*) FROM CLASS WHERE Displacement < 2000`, answer.Combined)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Extensional.Len() != 1 || resp.Extensional.Row(0)[0].Int64() != 0 {
		t.Fatalf("grand total = %v", resp.Extensional.Rows())
	}
	final := s.PlannerStats()
	if final.FullScans != after.FullScans || final.IndexScans != after.IndexScans {
		t.Errorf("provably-empty aggregate scanned: full %d→%d, index %d→%d",
			after.FullScans, final.FullScans, after.IndexScans, final.IndexScans)
	}
}

// TestExplainShowsImpliedRewrite: Example 1's implied restriction
// (Displacement > 8000 ⇒ Type = SSBN) must appear as a rewrite and as
// an implied conjunct in the plan.
func TestExplainShowsImpliedRewrite(t *testing.T) {
	s := inducedShipSystem(t)
	pl, err := s.Explain(`SELECT SUBMARINE.NAME FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rw := range pl.Rewrites {
		if rw.Kind == "implied" && strings.Contains(rw.Detail, "Type") {
			found = true
		}
	}
	if !found {
		t.Errorf("no implied Type rewrite in %+v", pl.Rewrites)
	}
	if !strings.Contains(pl.String(), "implied") {
		t.Errorf("plan rendering lacks the implied mark:\n%s", pl)
	}

	// The rewritten plan must not change the answer.
	resp, err := s.Query(`SELECT SUBMARINE.NAME FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`, answer.Combined)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Extensional.Len() != 2 {
		t.Errorf("rows = %d, want 2", resp.Extensional.Len())
	}
}

// TestExplainShowsRedundantRewrite: a conjunct subsumed by another is
// dropped from the executed filter and reported.
func TestExplainShowsRedundantRewrite(t *testing.T) {
	s := inducedShipSystem(t)
	sql := `SELECT Class FROM CLASS WHERE Displacement > 3000 AND Displacement > 8000`
	pl, err := s.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rw := range pl.Rewrites {
		if rw.Kind == "redundant" && strings.Contains(rw.Detail, "dropped") {
			found = true
		}
	}
	if !found {
		t.Errorf("no redundant rewrite in %+v", pl.Rewrites)
	}
	resp, err := s.Query(sql, answer.Combined)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Extensional.Len() != 2 {
		t.Errorf("rows = %d, want 2", resp.Extensional.Len())
	}
}

// TestPreparedStatementCache: the same statement (modulo whitespace)
// prepares once per snapshot; a mutation installs a new snapshot and
// invalidates the cached plan.
func TestPreparedStatementCache(t *testing.T) {
	s := shipSystem(t)
	base := s.PlannerStats()

	p1, err := s.Prepare(`SELECT Class FROM CLASS WHERE Displacement > 5000`)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Prepare("SELECT Class   FROM CLASS\n\tWHERE Displacement > 5000")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("whitespace variant missed the plan cache")
	}
	st := s.PlannerStats()
	if hits := st.PlanCacheHits - base.PlanCacheHits; hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
	if misses := st.PlanCacheMisses - base.PlanCacheMisses; misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
	if st.CachedPlans != 1 {
		t.Errorf("cached plans = %d, want 1", st.CachedPlans)
	}

	// Prepared statements run repeatedly with stable results.
	r1, err := p1.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != r2.Len() {
		t.Errorf("re-run changed row count: %d vs %d", r1.Len(), r2.Len())
	}

	// A mutation installs a new snapshot: the old plan is gone, the next
	// Prepare is a miss against the new version.
	if _, err := s.Apply(t.Context(), `INSERT INTO CLASS VALUES ("1399", "Test", "SSBN", 9000)`); err != nil {
		t.Fatalf("mutation failed: %v", err)
	}
	st2 := s.PlannerStats()
	if st2.CachedPlans != 0 {
		t.Errorf("cached plans after mutation = %d, want 0", st2.CachedPlans)
	}
	if _, err := s.Prepare(`SELECT Class FROM CLASS WHERE Displacement > 5000`); err != nil {
		t.Fatal(err)
	}
	st3 := s.PlannerStats()
	if st3.PlanCacheMisses != st2.PlanCacheMisses+1 {
		t.Errorf("misses after mutation = %d, want %d", st3.PlanCacheMisses, st2.PlanCacheMisses+1)
	}
}

func TestNormalizeSQL(t *testing.T) {
	if got := core.NormalizeSQL("  SELECT   x\n\tFROM  t "); got != "SELECT x FROM t" {
		t.Errorf("NormalizeSQL = %q", got)
	}
}
