package core_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"intensional/internal/answer"
	"intensional/internal/induct"
)

const forwardQuery = `SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
	FROM SUBMARINE, CLASS
	WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`

const backwardQuery = `SELECT SUBMARINE.NAME, SUBMARINE.CLASS FROM SUBMARINE, CLASS
	WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = "SSBN"`

// TestQueryInduceHammer drives Query from many goroutines while Induce
// repeatedly installs new snapshots — the core-layer analogue of the
// catalog-hammering test from the parallel-induction PR. Run under
// -race it verifies the snapshot-swap concurrency contract; the answer
// checks verify every reader saw a consistent state.
func TestQueryInduceHammer(t *testing.T) {
	s := shipSystem(t)
	if _, err := s.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}

	const readers = 8
	const queriesPerReader = 40
	const induceRounds = 6

	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < queriesPerReader; j++ {
				sql, mode, want := forwardQuery, answer.ForwardOnly, 2
				if (i+j)%2 == 1 {
					sql, mode, want = backwardQuery, answer.BackwardOnly, 7
				}
				resp, err := s.Query(sql, mode)
				if err != nil {
					errs <- err
					return
				}
				if resp.Extensional.Len() != want {
					t.Errorf("reader %d: extensional = %d rows, want %d", i, resp.Extensional.Len(), want)
					return
				}
				if resp.Version == 0 {
					t.Errorf("reader %d: response has no version stamp", i)
					return
				}
			}
		}(i)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < induceRounds; r++ {
			if _, err := s.Induce(induct.Options{Nc: 3}); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// 1 initial + 1 setup induce + induceRounds more.
	if got, want := s.Version(), uint64(2+induceRounds); got != want {
		t.Errorf("final version = %d, want %d", got, want)
	}
}

// TestVersionAdvancesOnInduce pins the version counter semantics: 1 at
// construction, +1 per Induce, and the version stamped onto responses.
func TestVersionAdvancesOnInduce(t *testing.T) {
	s := shipSystem(t)
	if got := s.Version(); got != 1 {
		t.Fatalf("fresh system version = %d, want 1", got)
	}
	if _, err := s.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	if got := s.Version(); got != 2 {
		t.Fatalf("post-induce version = %d, want 2", got)
	}
	resp, err := s.Query(forwardQuery, answer.ForwardOnly)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != 2 {
		t.Errorf("response version = %d, want 2", resp.Version)
	}
}

// TestQueryCachedPerSnapshot checks that a repeated query is served from
// the snapshot's cache (same response pointer) and that installing a new
// snapshot starts a fresh cache.
func TestQueryCachedPerSnapshot(t *testing.T) {
	s := shipSystem(t)
	if _, err := s.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	r1, err := s.Query(forwardQuery, answer.ForwardOnly)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Query(forwardQuery, answer.ForwardOnly)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("repeated query on one snapshot should hit the response cache")
	}
	// Same SQL, different mode: distinct cache entry.
	r3, err := s.Query(forwardQuery, answer.Combined)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("different mode must not share a cache entry")
	}
	if _, err := s.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	r4, err := s.Query(forwardQuery, answer.ForwardOnly)
	if err != nil {
		t.Fatal(err)
	}
	if r4 == r1 {
		t.Error("new snapshot must not serve the old snapshot's cache")
	}
	if r4.Version == r1.Version {
		t.Errorf("versions should differ across induce: %d vs %d", r4.Version, r1.Version)
	}
}

// TestSnapshotIsolation verifies that references fetched before an
// Induce keep describing the old state while the system serves the new.
func TestSnapshotIsolation(t *testing.T) {
	s := shipSystem(t)
	oldRules := s.Rules()
	oldCat := s.Catalog()
	if oldRules.Len() != 0 {
		t.Fatalf("seed rules = %d", oldRules.Len())
	}
	set, err := s.Induce(induct.Options{Nc: 3})
	if err != nil {
		t.Fatal(err)
	}
	if oldRules.Len() != 0 {
		t.Error("old rule-set reference mutated by Induce")
	}
	if s.Rules().Len() != set.Len() {
		t.Errorf("new snapshot rules = %d, want %d", s.Rules().Len(), set.Len())
	}
	if s.Catalog() == oldCat {
		t.Error("Induce should install a cloned catalog, not mutate the old one in place")
	}
}

// TestQueryContextCancelled checks the stage-boundary deadline.
func TestQueryContextCancelled(t *testing.T) {
	s := shipSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.QueryContext(ctx, forwardQuery, answer.ForwardOnly); err == nil {
		t.Error("cancelled context should fail the query")
	} else if !strings.Contains(err.Error(), "cancel") {
		t.Errorf("err = %v, want context cancellation", err)
	}
}
