package core

// SetApplyHook installs a stage hook for crash-injection tests and
// returns a restore function. Stages are "executed" (catalog mutated,
// nothing logged) and "logged" (WAL record durable, snapshot not yet
// installed); a non-nil error from the hook aborts ApplyBatch there,
// simulating the process dying at that instant.
func SetApplyHook(f func(stage string) error) func() {
	old := applyHook
	applyHook = f
	return func() { applyHook = old }
}
