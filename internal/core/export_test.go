package core

// The crash-point names, exported to tests so fault injectors can arm
// them (fault.Injector.FailPoint) without duplicating string literals.
const (
	PointExecuted        = pointExecuted
	PointLogged          = pointLogged
	PointCheckpointSaved = pointCheckpointSaved
)
