package core

// SetApplyHook installs a stage hook for crash-injection tests and
// returns a restore function. Stages are "executed" (catalog mutated,
// nothing logged) and "logged" (WAL record durable, snapshot not yet
// installed); a non-nil error from the hook aborts ApplyBatch there,
// simulating the process dying at that instant.
func SetApplyHook(f func(stage string) error) func() {
	old := applyHook
	applyHook = f
	return func() { applyHook = old }
}

// SetCheckpointHook installs a hook running between a checkpoint's
// atomic save and its log reset, and returns a restore function. A
// non-nil error aborts the checkpoint inside that window, simulating a
// crash after the directory holds the logged mutations but before the
// log forgets them — the window sequence-stamped replay must cover.
func SetCheckpointHook(f func() error) func() {
	old := checkpointHook
	checkpointHook = f
	return func() { checkpointHook = old }
}
