package server_test

// Acceptance tests for the graceful-degradation layer: panic
// containment, admission control, and read-only degraded mode.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"intensional/internal/core"
	"intensional/internal/fault"
	"intensional/internal/server"
)

const simpleQuery = `SELECT SONAR.Sonar FROM SONAR`

// robustMetricsWire mirrors the /metrics sections these tests assert.
type robustMetricsWire struct {
	System struct {
		Degraded       bool   `json:"degraded"`
		DegradedReason string `json:"degradedReason"`
	} `json:"system"`
	Server struct {
		InFlight     int    `json:"inFlight"`
		Queued       int64  `json:"queued"`
		QueueFull    uint64 `json:"rejectedQueueFull"`
		QueueTimeout uint64 `json:"rejectedQueueTimeout"`
		Panics       uint64 `json:"panicsRecovered"`
	} `json:"server"`
}

type healthzWire struct {
	OK             bool   `json:"ok"`
	Mode           string `json:"mode"`
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degradedReason"`
	DegradedSince  string `json:"degradedSince"`
}

// TestPanicRecoveredAs500 proves a panicking handler yields a 500 and
// the process — including the very same server — keeps serving.
func TestPanicRecoveredAs500(t *testing.T) {
	srv, ts := newTestServer(t, server.Options{ErrorLog: &bytes.Buffer{}})
	var once sync.Once
	srv.SetSlowHookForTest(func() {
		panicking := false
		once.Do(func() { panicking = true })
		if panicking {
			panic("injected handler panic")
		}
	})

	resp, body := postJSON(t, ts.URL+"/query", map[string]string{"sql": simpleQuery})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler status = %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panicked") {
		t.Errorf("panic 500 body does not say so: %s", body)
	}

	// The process survived: the next request on the same server works.
	resp, body = postJSON(t, ts.URL+"/query", map[string]string{"sql": simpleQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after recovered panic = %d, body %s", resp.StatusCode, body)
	}

	var met robustMetricsWire
	getJSON(t, ts.URL+"/metrics", &met)
	if met.Server.Panics != 1 {
		t.Errorf("panicsRecovered = %d, want 1", met.Server.Panics)
	}
}

// TestAdmissionSaturation fills the single execution slot and the
// single queue position, then proves the third request is refused
// immediately with 429, the queued one times out with 503, and both
// carry Retry-After — the server never hangs.
func TestAdmissionSaturation(t *testing.T) {
	srv, ts := newTestServer(t, server.Options{
		MaxInFlight:  1,
		MaxQueue:     1,
		QueueWait:    150 * time.Millisecond,
		QueryTimeout: 10 * time.Second,
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.SetSlowHookForTest(func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	})
	defer close(release)

	// Request 1 takes the only slot and blocks inside the handler.
	r1 := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/query", map[string]string{"sql": simpleQuery})
		r1 <- resp.StatusCode
	}()
	<-entered

	// Request 2 takes the only queue position and waits for a slot.
	r2 := make(chan *http.Response, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/query", map[string]string{"sql": simpleQuery})
		r2 <- resp
	}()
	waitQueued(t, ts.URL)

	// Request 3 finds slot and queue full: refused on the spot.
	resp, body := postJSON(t, ts.URL+"/query", map[string]string{"sql": simpleQuery})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request = %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}

	// Request 2 outlives QueueWait without a slot freeing: 503.
	select {
	case resp := <-r2:
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("queued request = %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("503 without a Retry-After header")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request hung past its QueueWait")
	}

	// Observability endpoints bypass admission even while saturated.
	var health healthzWire
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK || !health.OK {
		t.Fatalf("healthz while saturated: status %d ok=%v", resp.StatusCode, health.OK)
	}

	release <- struct{}{}
	select {
	case code := <-r1:
		if code != http.StatusOK {
			t.Fatalf("released request = %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("released request never completed")
	}

	var met robustMetricsWire
	getJSON(t, ts.URL+"/metrics", &met)
	if met.Server.QueueFull != 1 || met.Server.QueueTimeout != 1 {
		t.Errorf("admission counters = full %d / timeout %d, want 1 / 1",
			met.Server.QueueFull, met.Server.QueueTimeout)
	}
}

// waitQueued polls /metrics (admission-exempt) until one request is
// reported waiting for a slot.
func waitQueued(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var met robustMetricsWire
		getJSON(t, base+"/metrics", &met)
		if met.Server.Queued >= 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("request never reached the admission queue")
}

// TestDegradedModeServesReadsRefusesWrites drives the whole degraded
// story over HTTP: a persistent WAL fsync failure flips /healthz to
// degraded:read-only, mutations get 503, queries keep answering, and a
// successful checkpoint restores write service.
func TestDegradedModeServesReadsRefusesWrites(t *testing.T) {
	in := fault.NewInjector(fault.OS)
	dir := t.TempDir() + "/db"
	if err := shipSystem(t).Save(dir); err != nil {
		t.Fatal(err)
	}
	sys, err := core.OpenDurable(dir, core.DurableOptions{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv := server.New(sys, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ins := map[string]string{"sql": `INSERT INTO SONAR VALUES ('TST-80', 'Active')`}

	// Healthy first: one mutation commits.
	if resp, body := postJSON(t, ts.URL+"/mutate", ins); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy mutate = %d, body %s", resp.StatusCode, body)
	}

	// The disk dies under the WAL: the next append's fsync fails and
	// every retry after it would too.
	in.FailOpFrom(fault.OpSync, ".wal", 1, fault.ErrInjected)
	resp, body := postJSON(t, ts.URL+"/mutate", map[string]string{
		"sql": `INSERT INTO SONAR VALUES ('TST-81', 'Active')`,
	})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("mutate with dead disk = %d, body %s", resp.StatusCode, body)
	}

	// Now degraded: health says so, loudly.
	var health healthzWire
	getJSON(t, ts.URL+"/healthz", &health)
	if !health.OK || health.Mode != "degraded:read-only" || !health.Degraded {
		t.Fatalf("healthz = %+v, want ok with mode degraded:read-only", health)
	}
	if health.DegradedReason == "" || health.DegradedSince == "" {
		t.Errorf("degraded health missing reason/since: %+v", health)
	}

	// Mutations are refused up front with 503 + Retry-After...
	resp, body = postJSON(t, ts.URL+"/mutate", ins)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutate while degraded = %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 without a Retry-After header")
	}
	if resp, body = postJSON(t, ts.URL+"/maintain", map[string]any{}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("maintain while degraded = %d, body %s", resp.StatusCode, body)
	}

	// ...while queries keep serving from the last good snapshot,
	// including the pre-failure commit.
	resp, body = postJSON(t, ts.URL+"/query", map[string]string{
		"sql": `SELECT SONAR.Sonar FROM SONAR WHERE Sonar = 'TST-80'`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query while degraded = %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "TST-80") {
		t.Errorf("degraded query lost the committed row: %s", body)
	}

	var met robustMetricsWire
	getJSON(t, ts.URL+"/metrics", &met)
	if !met.System.Degraded || met.System.DegradedReason == "" {
		t.Errorf("metrics do not report degradation: %+v", met.System)
	}

	// The disk comes back; a checkpoint (operator action) restores
	// write service.
	in.Clear()
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var recovered healthzWire
	getJSON(t, ts.URL+"/healthz", &recovered)
	if recovered.Mode != "ok" || recovered.Degraded {
		t.Fatalf("healthz after recovery = %+v, want mode ok", recovered)
	}
	if resp, body := postJSON(t, ts.URL+"/mutate", map[string]string{
		"sql": `INSERT INTO SONAR VALUES ('TST-82', 'Active')`,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate after recovery = %d, body %s", resp.StatusCode, body)
	}
}
