package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"intensional/internal/core"
	"intensional/internal/induct"
	"intensional/internal/replica"
	"intensional/internal/server"
	"intensional/internal/shipdb"
)

// openLeader stands up a durable leader (ship test bed, rules induced)
// serving the full API including the replication endpoints.
func openLeader(t *testing.T) (*core.System, *httptest.Server) {
	t.Helper()
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/leader"
	if err := core.New(cat, d).Save(dir); err != nil {
		t.Fatal(err)
	}
	sys, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if _, err := sys.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(sys, server.Options{}).Handler())
	t.Cleanup(ts.Close)
	return sys, ts
}

// openFollowerServer starts a replica.Follower streaming from leaderURL
// and serves it through a full server.Handler with the follower options
// wired. opts.LeaderAddr and opts.FollowerStatus are filled in.
func openFollowerServer(t *testing.T, leaderURL string, opts server.Options) (*replica.Follower, *httptest.Server) {
	t.Helper()
	f, err := replica.Open(replica.Options{
		Dir:       t.TempDir() + "/follower",
		Leader:    leaderURL,
		PollWait:  time.Second,
		RetryBase: 2 * time.Millisecond,
		RetryMax:  10 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	f.Start()
	opts.LeaderAddr = leaderURL
	opts.FollowerStatus = f.Status
	ts := httptest.NewServer(server.New(f.System(), opts).Handler())
	t.Cleanup(ts.Close)
	return f, ts
}

// healthzProbe mirrors the healthz fields these tests assert on.
type healthzProbe struct {
	OK          bool   `json:"ok"`
	Mode        string `json:"mode"`
	Version     uint64 `json:"version"`
	WalSeq      uint64 `json:"walSeq"`
	Replication *struct {
		Role       string `json:"role"`
		WalSeq     uint64 `json:"walSeq"`
		LeaderAddr string `json:"leaderAddr"`
		State      string `json:"state"`
		Lag        uint64 `json:"lag"`
		Bootstraps uint64 `json:"bootstraps"`
	} `json:"replication"`
}

// waitMode polls base's /healthz until its mode matches want.
func waitMode(t *testing.T, base, want string) healthzProbe {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var hz healthzProbe
	for time.Now().Before(deadline) {
		getJSON(t, base+"/healthz", &hz)
		if hz.Mode == want {
			return hz
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("healthz mode never reached %q (last %+v)", want, hz)
	return hz
}

// TestReplicationSmoke is the two-process convergence check over real
// HTTP: mutate on the leader, read your write on the follower via the
// token, and require byte-identical query answers from both.
func TestReplicationSmoke(t *testing.T) {
	_, leaderTS := openLeader(t)
	_, followerTS := openFollowerServer(t, leaderTS.URL, server.Options{})
	waitMode(t, followerTS.URL, "follower:ready")

	// Write on the leader; the response carries the durable WAL seq as a
	// read-your-writes token.
	resp, body := postJSON(t, leaderTS.URL+"/mutate", map[string]any{
		"sql": `INSERT INTO SUBMARINE VALUES ('SSN950', 'Smokefish', '0204')`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leader mutate: %d %s", resp.StatusCode, body)
	}
	var mut struct {
		Version uint64 `json:"version"`
		WalSeq  uint64 `json:"walSeq"`
		Token   string `json:"token"`
	}
	if err := json.Unmarshal(body, &mut); err != nil {
		t.Fatal(err)
	}
	if mut.WalSeq == 0 || mut.Token == "" {
		t.Fatalf("mutate response carries no token: %s", body)
	}

	// The tokened query on the follower waits for the write, then sees it.
	q := map[string]any{
		"sql":   `SELECT SUBMARINE.Id, SUBMARINE.Name FROM SUBMARINE WHERE SUBMARINE.Id = 'SSN950'`,
		"mode":  "forward",
		"token": mut.Token,
	}
	resp, fBody := postJSON(t, followerTS.URL+"/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower tokened query: %d %s", resp.StatusCode, fBody)
	}
	if !bytes.Contains(fBody, []byte("Smokefish")) {
		t.Fatalf("follower does not see the tokened write: %s", fBody)
	}

	// Same request against both nodes answers byte-identically.
	_, lBody := postJSON(t, leaderTS.URL+"/query", q)
	if !bytes.Equal(lBody, fBody) {
		t.Errorf("answers diverge:\nleader:   %s\nfollower: %s", lBody, fBody)
	}
}

func TestFollowerRefusesWritesWithLeaderAddress(t *testing.T) {
	_, leaderTS := openLeader(t)
	_, followerTS := openFollowerServer(t, leaderTS.URL, server.Options{})
	waitMode(t, followerTS.URL, "follower:ready")

	for _, ep := range []string{"/mutate", "/induce", "/maintain"} {
		body := map[string]any{}
		if ep == "/mutate" {
			body["sql"] = `INSERT INTO SUBMARINE VALUES ('SSN951', 'Refusefish', '0204')`
		}
		resp, out := postJSON(t, followerTS.URL+ep, body)
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Errorf("follower %s: %d %s, want 421", ep, resp.StatusCode, out)
		}
		if got := resp.Header.Get("Location"); got != leaderTS.URL {
			t.Errorf("follower %s Location = %q, want the leader %q", ep, got, leaderTS.URL)
		}
		if !strings.Contains(string(out), leaderTS.URL) {
			t.Errorf("follower %s error omits the leader address: %s", ep, out)
		}
	}
}

// TestReplicationObservability pins the observability satellite: walSeq
// and the replication role on the leader's /healthz and /metrics too,
// and the follower's state section.
func TestReplicationObservability(t *testing.T) {
	leader, leaderTS := openLeader(t)
	_, followerTS := openFollowerServer(t, leaderTS.URL, server.Options{})
	fhz := waitMode(t, followerTS.URL, "follower:ready")

	var hz healthzProbe
	getJSON(t, leaderTS.URL+"/healthz", &hz)
	if hz.WalSeq != leader.WalSeq() || hz.WalSeq == 0 {
		t.Errorf("leader healthz walSeq = %d, want %d", hz.WalSeq, leader.WalSeq())
	}
	if hz.Replication == nil || hz.Replication.Role != "leader" {
		t.Errorf("leader healthz replication section: %+v", hz.Replication)
	}

	rep := fhz.Replication
	if rep == nil || rep.Role != "follower" || rep.LeaderAddr != leaderTS.URL {
		t.Fatalf("follower healthz replication section: %+v", rep)
	}
	if rep.State != "ready" || rep.Bootstraps == 0 {
		t.Errorf("follower replication state = %+v", rep)
	}
	if fhz.WalSeq != hz.WalSeq {
		t.Errorf("converged follower at walSeq %d, leader at %d", fhz.WalSeq, hz.WalSeq)
	}

	for url, role := range map[string]string{leaderTS.URL: "leader", followerTS.URL: "follower"} {
		var met struct {
			Replication *struct {
				Role string `json:"role"`
			} `json:"replication"`
			System struct {
				WalSeq uint64 `json:"walSeq"`
			} `json:"system"`
		}
		getJSON(t, url+"/metrics", &met)
		if met.Replication == nil || met.Replication.Role != role {
			t.Errorf("%s metrics replication role: %+v, want %q", url, met.Replication, role)
		}
		if met.System.WalSeq == 0 {
			t.Errorf("%s metrics system.walSeq missing", url)
		}
	}
}

func TestQueryTokenValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"sql": forwardQuery, "token": "bogus",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed token: %d %s, want 400", resp.StatusCode, out)
	}
}

// TestQueryTokenWaitTimesOut pins the wait-or-504 contract: a token the
// replica has not applied yields 504, never a silently stale read.
func TestQueryTokenWaitTimesOut(t *testing.T) {
	_, leaderTS := openLeader(t)
	_, followerTS := openFollowerServer(t, leaderTS.URL, server.Options{
		QueryTimeout: 300 * time.Millisecond,
	})
	waitMode(t, followerTS.URL, "follower:ready")

	resp, out := postJSON(t, followerTS.URL+"/query", map[string]any{
		"sql": forwardQuery, "token": "w999999",
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("unapplied token: %d %s, want 504", resp.StatusCode, out)
	}
}

// TestMetricsExposeFanOutAndChunkCounters pins the leader-side
// observability added with chunked bootstrap: the fan-out table (who
// streams from this node, how far behind, what the bootstrap cost) and
// the snapshot-transfer counters.
func TestMetricsExposeFanOutAndChunkCounters(t *testing.T) {
	leader, leaderTS := openLeader(t)
	f, err := replica.Open(replica.Options{
		Dir:       t.TempDir() + "/follower",
		Leader:    leaderTS.URL,
		NodeID:    "iqp-2",
		PollWait:  time.Second,
		RetryBase: 2 * time.Millisecond,
		RetryMax:  10 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	f.Start()

	type fanProbe struct {
		Replication *struct {
			Followers []struct {
				ID              string `json:"id"`
				AckedSeq        uint64 `json:"ackedSeq"`
				Lag             uint64 `json:"lag"`
				LastContact     string `json:"lastContact"`
				BootstrapChunks uint64 `json:"bootstrapChunks"`
				BootstrapBytes  uint64 `json:"bootstrapBytes"`
			} `json:"followers"`
			ChunkRequests  uint64 `json:"chunkRequests"`
			ChunkBytes     uint64 `json:"chunkBytes"`
			SnapshotBuilds uint64 `json:"snapshotBuilds"`
		} `json:"replication"`
	}
	cur := leader.WalSeq()
	deadline := time.Now().Add(10 * time.Second)
	var met fanProbe
	for {
		getJSON(t, leaderTS.URL+"/metrics", &met)
		rep := met.Replication
		if rep != nil && len(rep.Followers) == 1 && rep.Followers[0].AckedSeq >= cur {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fan-out never showed iqp-2 acknowledging seq %d: %+v", cur, met.Replication)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fan := met.Replication.Followers[0]
	if fan.ID != "iqp-2" || fan.Lag != 0 || fan.LastContact == "" {
		t.Errorf("fan-out entry: %+v", fan)
	}
	if fan.BootstrapChunks == 0 || fan.BootstrapBytes == 0 {
		t.Errorf("bootstrap volume untracked: %+v", fan)
	}
	if met.Replication.ChunkRequests == 0 || met.Replication.ChunkBytes == 0 || met.Replication.SnapshotBuilds != 1 {
		t.Errorf("chunk counters: %+v", met.Replication)
	}
}

// TestDynamicLeaderAddress pins the live-reconfiguration seam in the
// server: the 421 Location and the reported leaderAddr both come from
// LeaderAddrFunc on every request, so a re-pointed node redirects to
// the leader it follows now, not the one it started with.
func TestDynamicLeaderAddress(t *testing.T) {
	_, leaderTS := openLeader(t)
	var addr atomic.Value
	addr.Store(leaderTS.URL)
	f, followerTS := openFollowerServer(t, leaderTS.URL, server.Options{
		LeaderAddrFunc: func() string { return addr.Load().(string) },
	})
	_ = f
	waitMode(t, followerTS.URL, "follower:ready")

	resp, _ := postJSON(t, followerTS.URL+"/mutate", map[string]any{
		"sql": `INSERT INTO SUBMARINE VALUES ('SSN952', 'Dynfish', '0204')`,
	})
	if got := resp.Header.Get("Location"); got != leaderTS.URL {
		t.Fatalf("Location = %q, want %q", got, leaderTS.URL)
	}

	addr.Store("http://moved.example:8473")
	resp, _ = postJSON(t, followerTS.URL+"/mutate", map[string]any{
		"sql": `INSERT INTO SUBMARINE VALUES ('SSN953', 'Movedfish', '0204')`,
	})
	if got := resp.Header.Get("Location"); got != "http://moved.example:8473" {
		t.Fatalf("after re-point, Location = %q, want the new leader", got)
	}
	var hz healthzProbe
	getJSON(t, followerTS.URL+"/healthz", &hz)
	if hz.Replication == nil || hz.Replication.LeaderAddr != "http://moved.example:8473" {
		t.Fatalf("healthz leaderAddr did not track the re-point: %+v", hz.Replication)
	}
}
