package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"intensional/internal/core"
	"intensional/internal/server"
)

// contradictor definitely contradicts the induced "Displacement in SSBN
// range implies Type = SSBN" rule: an SSN with 16600 tons.
const contradictor = `INSERT INTO CLASS VALUES ('9901', 'Contradictor', 'SSN', 16600)`

// wire mirrors of the new response shapes.
type mutateWire struct {
	Version   uint64 `json:"version"`
	Mutations []struct {
		Kind     string `json:"kind"`
		Table    string `json:"table"`
		Inserted int    `json:"inserted"`
		Deleted  int    `json:"deleted"`
	} `json:"mutations"`
	Stale     int    `json:"stale"`
	Refinable int    `json:"refinable"`
	WalBytes  int64  `json:"walBytes"`
	Warning   string `json:"warning"`
}

type rulesWire struct {
	Version   uint64 `json:"version"`
	Count     int    `json:"count"`
	Serving   int    `json:"serving"`
	Stale     int    `json:"stale"`
	Refinable int    `json:"refinable"`
	Rules     []struct {
		ID              int    `json:"id"`
		Rule            string `json:"rule"`
		Status          string `json:"status"`
		Stale           bool   `json:"stale"`
		Counterexamples int    `json:"counterexamples"`
		Definite        bool   `json:"definite"`
		Example         string `json:"example"`
	} `json:"rules"`
}

type maintainWire struct {
	Version uint64   `json:"version"`
	Schemes []string `json:"schemes"`
	Dropped int      `json:"dropped"`
	Added   int      `json:"added"`
}

type sysMetricsWire struct {
	Endpoints map[string]struct {
		Requests uint64 `json:"requests"`
	} `json:"endpoints"`
	System struct {
		Version             uint64         `json:"version"`
		Rules               int            `json:"rules"`
		Serving             int            `json:"serving"`
		Stale               int            `json:"stale"`
		StaleByRelationship map[string]int `json:"staleByRelationship"`
		Durable             bool           `json:"durable"`
		WalBytes            int64          `json:"walBytes"`
	} `json:"system"`
}

func TestMutateInsert(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	resp, body := postJSON(t, ts.URL+"/mutate", map[string]string{
		"sql": `INSERT INTO SUBMARINE VALUES ('SSN993', 'Wiretest', '0204')`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var m mutateWire
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Version != 3 { // 1 fresh, 2 induced, 3 mutated
		t.Errorf("version = %d, want 3", m.Version)
	}
	if len(m.Mutations) != 1 || m.Mutations[0].Kind != "insert" ||
		m.Mutations[0].Table != "SUBMARINE" || m.Mutations[0].Inserted != 1 {
		t.Errorf("mutations = %+v", m.Mutations)
	}
}

func TestMutateBatchAtomic(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	resp, body := postJSON(t, ts.URL+"/mutate", map[string]any{
		"stmts": []string{
			`INSERT INTO SONAR VALUES ('TST-10', 'Active')`,
			`INSERT INTO NO_SUCH_TABLE VALUES (1)`,
		},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	// Nothing from the failed batch is visible.
	q, qbody := postJSON(t, ts.URL+"/query", map[string]string{
		"sql": `SELECT SONAR.SONARTYPE FROM SONAR WHERE SONAR.SONAR = "TST-10"`,
	})
	if q.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d, body %s", q.StatusCode, qbody)
	}
	var qw queryWire
	if err := json.Unmarshal(qbody, &qw); err != nil {
		t.Fatal(err)
	}
	if qw.RowCount != 0 {
		t.Errorf("failed batch leaked a row: %d", qw.RowCount)
	}
}

func TestMutateRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	for name, body := range map[string]any{
		"empty":       map[string]any{},
		"both":        map[string]any{"sql": "DELETE FROM SONAR", "stmts": []string{"DELETE FROM SONAR"}},
		"select":      map[string]string{"sql": "SELECT SONAR.SONAR FROM SONAR"},
		"parse error": map[string]string{"sql": "INSERT INTO"},
	} {
		resp, b := postJSON(t, ts.URL+"/mutate", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, body %s", name, resp.StatusCode, b)
		}
	}
}

// TestMutateStaleRuleLifecycle walks the documented operator session:
// a contradicting insert marks the rule stale, /rules shows it with its
// counterexample, no query mode serves it, and /maintain re-inducts it
// back to an all-valid base.
func TestMutateStaleRuleLifecycle(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})

	// Find the target rule while everything is valid.
	var before rulesWire
	getJSON(t, ts.URL+"/rules", &before)
	if before.Stale != 0 || before.Serving != before.Count {
		t.Fatalf("fresh base not all-valid: %+v", before)
	}
	targetID := 0
	for _, r := range before.Rules {
		if strings.Contains(r.Rule, "CLASS.Displacement") && strings.Contains(r.Rule, "CLASS.Type = SSBN") {
			targetID = r.ID
		}
	}
	if targetID == 0 {
		t.Fatal("no displacement→SSBN rule induced")
	}

	resp, body := postJSON(t, ts.URL+"/mutate", map[string]string{"sql": contradictor})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status = %d, body %s", resp.StatusCode, body)
	}
	var m mutateWire
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Stale == 0 {
		t.Fatal("contradicting insert reported no stale rules")
	}

	var after rulesWire
	getJSON(t, ts.URL+"/rules", &after)
	if after.Serving != after.Count-after.Stale {
		t.Errorf("serving = %d, count %d, stale %d", after.Serving, after.Count, after.Stale)
	}
	found := false
	for _, r := range after.Rules {
		if r.ID != targetID {
			continue
		}
		found = true
		if !r.Stale || r.Status != "stale" || r.Counterexamples != 1 || !r.Definite {
			t.Errorf("target rule record = %+v", r)
		}
		if !strings.Contains(r.Example, "Contradictor") {
			t.Errorf("example = %q", r.Example)
		}
	}
	if !found {
		t.Fatal("stale rule missing from /rules")
	}

	// No mode derives through the stale rule.
	for _, mode := range []string{"forward", "backward", "combined", "intensional"} {
		q, qbody := postJSON(t, ts.URL+"/query", map[string]string{"sql": forwardQuery, "mode": mode})
		if q.StatusCode != http.StatusOK {
			t.Fatalf("mode %s: status %d, body %s", mode, q.StatusCode, qbody)
		}
		var qw struct {
			Facts []struct {
				Via []int `json:"via"`
			} `json:"facts"`
			Descriptions []struct {
				Via int `json:"via"`
			} `json:"descriptions"`
		}
		if err := json.Unmarshal(qbody, &qw); err != nil {
			t.Fatal(err)
		}
		for _, f := range qw.Facts {
			for _, id := range f.Via {
				if id == targetID {
					t.Errorf("mode %s served stale R%d", mode, targetID)
				}
			}
		}
		for _, d := range qw.Descriptions {
			if d.Via == targetID {
				t.Errorf("mode %s described via stale R%d", mode, targetID)
			}
		}
	}

	// The metrics system section sees the same staleness.
	var mw sysMetricsWire
	getJSON(t, ts.URL+"/metrics", &mw)
	if mw.System.Stale != after.Stale || mw.System.Version != after.Version {
		t.Errorf("metrics system = %+v, rules said stale=%d version=%d", mw.System, after.Stale, after.Version)
	}
	if len(mw.System.StaleByRelationship) == 0 {
		t.Error("staleByRelationship empty while rules are stale")
	} else if mw.System.StaleByRelationship["CLASS"] == 0 {
		t.Errorf("no CLASS staleness in %v", mw.System.StaleByRelationship)
	}

	// Maintain re-inducts the affected schemes; the base is all-valid.
	r2, b2 := postJSON(t, ts.URL+"/maintain", map[string]int{"nc": 3})
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("maintain status = %d, body %s", r2.StatusCode, b2)
	}
	var mres maintainWire
	if err := json.Unmarshal(b2, &mres); err != nil {
		t.Fatal(err)
	}
	if len(mres.Schemes) == 0 || mres.Dropped == 0 || mres.Version != after.Version+1 {
		t.Errorf("maintain = %+v", mres)
	}
	var final rulesWire
	getJSON(t, ts.URL+"/rules", &final)
	if final.Stale != 0 || final.Refinable != 0 || final.Serving != final.Count {
		t.Errorf("base not all-valid after maintain: %+v", final)
	}
}

func TestMutateDurableReportsWal(t *testing.T) {
	sys := shipSystem(t)
	dir := t.TempDir() + "/db"
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	dsys, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dsys.Close() })
	srv := server.New(dsys, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, body := postJSON(t, ts.URL+"/mutate", map[string]string{
		"sql": `INSERT INTO SONAR VALUES ('TST-11', 'Towed')`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var m mutateWire
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.WalBytes == 0 {
		t.Error("durable mutate reported an empty WAL")
	}
	var mw sysMetricsWire
	getJSON(t, ts.URL+"/metrics", &mw)
	if !mw.System.Durable || mw.System.WalBytes == 0 {
		t.Errorf("metrics system = %+v", mw.System)
	}
	var h struct {
		Durable bool `json:"durable"`
	}
	getJSON(t, ts.URL+"/healthz", &h)
	if !h.Durable {
		t.Error("healthz hides durability")
	}
}

// TestConcurrentMutateAndQuery hammers /mutate and /query together; the
// server must never 5xx and every response must decode.
func TestConcurrentMutateAndQuery(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, body := postJSON(t, ts.URL+"/mutate", map[string]string{
					"sql": fmt.Sprintf(`INSERT INTO SUBMARINE VALUES ('W%d%02d', 'Load', '0204')`, w, i),
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("mutate: %d %s", resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, body := postJSON(t, ts.URL+"/query", map[string]string{"sql": forwardQuery})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query: %d %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	var h struct {
		Version uint64 `json:"version"`
		OK      bool   `json:"ok"`
	}
	getJSON(t, ts.URL+"/healthz", &h)
	if !h.OK || h.Version != 22 { // 2 after induce + 20 mutations
		t.Errorf("healthz after hammer = %+v", h)
	}
}
