package server_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"intensional/internal/server"
)

// explainWire mirrors the /explain response shape for decoding.
type explainWire struct {
	Version uint64 `json:"version"`
	Plan    struct {
		SQL      string `json:"sql"`
		EstRows  int    `json:"estRows"`
		Rewrites []struct {
			Kind   string `json:"kind"`
			Detail string `json:"detail"`
		} `json:"rewrites"`
		Root struct {
			Kind  string `json:"kind"`
			Label string `json:"label"`
		} `json:"root"`
		Text string `json:"text"`
	} `json:"plan"`
}

// plannerWire mirrors the /metrics planner section.
type plannerWire struct {
	Planner struct {
		FullScans             int64   `json:"fullScans"`
		IndexScans            int64   `json:"indexScans"`
		PlannerIndexFallbacks int64   `json:"plannerIndexFallbacks"`
		PlanCacheHits         int64   `json:"planCacheHits"`
		PlanCacheMisses       int64   `json:"planCacheMisses"`
		PlanCacheHitRate      float64 `json:"planCacheHitRate"`
		CachedPlans           int     `json:"cachedPlans"`
	} `json:"planner"`
}

// TestExplainEndpoint: POST /explain returns the typed plan with the
// rule base's semantic rewrites, without executing the query.
func TestExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})

	resp, body := postJSON(t, ts.URL+"/explain", map[string]string{"sql": forwardQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out explainWire
	decode(t, body, &out)
	if out.Plan.Root.Kind == "" {
		t.Fatalf("no plan root in %s", body)
	}
	if out.Plan.Text == "" {
		t.Error("no text rendering")
	}
	// The rule base implies CLASS.Type = SSBN from Displacement > 8000.
	found := false
	for _, rw := range out.Plan.Rewrites {
		if rw.Kind == "implied" {
			found = true
		}
	}
	if !found {
		t.Errorf("no implied rewrite in %s", body)
	}
}

// TestExplainEndpointErrors: malformed bodies and unknown tables are
// client errors.
func TestExplainEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	for _, tc := range []struct {
		body any
		want int
	}{
		{map[string]string{}, http.StatusBadRequest},
		{map[string]string{"sql": "   "}, http.StatusBadRequest},
		{map[string]string{"sql": "SELECT x FROM NOPE"}, http.StatusBadRequest},
		{map[string]string{"sql": "not sql"}, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, ts.URL+"/explain", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("body %v: status = %d, want %d (%s)", tc.body, resp.StatusCode, tc.want, body)
		}
	}
}

// TestPlannerMetrics: /metrics grows a planner section whose cache
// counters move when statements repeat.
func TestPlannerMetrics(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})

	// Same statement twice: /explain prepares it, /query reuses the plan.
	if resp, body := postJSON(t, ts.URL+"/explain", map[string]string{"sql": forwardQuery}); resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: %d %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/query", map[string]string{"sql": forwardQuery}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}

	var met plannerWire
	getJSON(t, ts.URL+"/metrics", &met)
	p := met.Planner
	if p.PlanCacheMisses < 1 {
		t.Errorf("planCacheMisses = %d, want >= 1", p.PlanCacheMisses)
	}
	if p.PlanCacheHits < 1 {
		t.Errorf("planCacheHits = %d, want >= 1 (query should reuse explain's plan)", p.PlanCacheHits)
	}
	if p.PlanCacheHitRate <= 0 || p.PlanCacheHitRate >= 1 {
		t.Errorf("planCacheHitRate = %v, want in (0,1)", p.PlanCacheHitRate)
	}
	if p.CachedPlans < 1 {
		t.Errorf("cachedPlans = %d, want >= 1", p.CachedPlans)
	}
	// The ship relations are tiny (below the index threshold), so the
	// join ran as full scans; what matters here is that executed paths
	// are visible.
	if p.FullScans+p.IndexScans < 1 {
		t.Errorf("no scans counted: %+v", p)
	}
	if p.PlannerIndexFallbacks != 0 {
		t.Errorf("plannerIndexFallbacks = %d, want 0", p.PlannerIndexFallbacks)
	}
}

// decode unmarshals a response body or fails the test.
func decode(t *testing.T, body []byte, dst any) {
	t.Helper()
	if err := json.Unmarshal(body, dst); err != nil {
		t.Fatalf("decode: %v (body %s)", err, body)
	}
}
