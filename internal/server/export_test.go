package server

// SetSlowHookForTest installs f to run at the entry of the /query and
// /induce handlers, inside the deadline middleware — tests use it to
// force a timeout deterministically. Install before serving traffic.
func (s *Server) SetSlowHookForTest(f func()) { s.slow = f }
