package server

import (
	"intensional/internal/core"
	"intensional/internal/infer"
	"intensional/internal/plan"
	"intensional/internal/relation"
)

// queryRequest is the POST /query body.
type queryRequest struct {
	SQL string `json:"sql"`
	// Mode selects the response shape and inference direction:
	// "extensional", "intensional", "combined" (default), "forward",
	// or "backward".
	Mode string `json:"mode"`
	// Token is a read-your-writes token from an earlier mutate response
	// ("w<seq>"). The query waits until this node has applied that WAL
	// sequence before reading; 504 if it does not arrive in time. On the
	// leader the wait is trivially satisfied.
	Token string `json:"token,omitempty"`
}

// explainRequest is the POST /explain body.
type explainRequest struct {
	SQL string `json:"sql"`
}

// explainResponse is the POST /explain response: the typed plan the
// executor would run for this statement on the stamped snapshot —
// access paths with cardinality estimates, join order, and the
// semantic rewrites the rule base contributed.
type explainResponse struct {
	Version uint64     `json:"version"`
	Plan    *plan.Plan `json:"plan"`
}

// plannerJSON is the GET /metrics planner section: cumulative scan
// counters and prepared-statement cache outcomes.
type plannerJSON struct {
	FullScans  int64 `json:"fullScans"`
	IndexScans int64 `json:"indexScans"`
	// PlannerIndexFallbacks counts access paths that wanted an index but
	// degraded to a full scan; the reason is logged when it happens.
	PlannerIndexFallbacks int64 `json:"plannerIndexFallbacks"`
	PlanCacheHits         int64 `json:"planCacheHits"`
	PlanCacheMisses       int64 `json:"planCacheMisses"`
	// PlanCacheHitRate is hits/(hits+misses); 0 before any preparation.
	PlanCacheHitRate float64 `json:"planCacheHitRate"`
	CachedPlans      int     `json:"cachedPlans"`
}

// induceRequest is the POST /induce body, mirroring induct.Options.
type induceRequest struct {
	Nc         int     `json:"nc"`
	NcFraction float64 `json:"ncFraction"`
	Workers    int     `json:"workers"`
}

type induceResponse struct {
	Version   uint64  `json:"version"`
	Rules     int     `json:"rules"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// maintainResponse is the POST /maintain response: the schemes that
// were re-induced and the rule turnover.
type maintainResponse struct {
	Version   uint64   `json:"version"`
	Schemes   []string `json:"schemes,omitempty"`
	Dropped   int      `json:"dropped"`
	Added     int      `json:"added"`
	ElapsedMS float64  `json:"elapsedMs"`
}

// systemJSON is the GET /metrics system section: one consistent
// snapshot of the write-path state.
type systemJSON struct {
	Version   uint64 `json:"version"`
	Rules     int    `json:"rules"`
	Serving   int    `json:"serving"`
	Stale     int    `json:"stale"`
	Refinable int    `json:"refinable"`
	// StaleByRelationship counts non-valid rules per relationship key —
	// the distinct relations a rule ranges over, sorted and joined with
	// "+" (e.g. "CLASS" or "CLASS+SONAR").
	StaleByRelationship map[string]int `json:"staleByRelationship,omitempty"`
	Durable             bool           `json:"durable"`
	WalBytes            int64          `json:"walBytes"`
	// WalSeq is the durable WAL sequence this node has applied — on the
	// leader the last committed batch, on a follower the last replayed
	// record. Equal sequences imply identical snapshots.
	WalSeq           uint64 `json:"walSeq,omitempty"`
	AutoMaintainRuns uint64 `json:"autoMaintainRuns"`
	AutoMaintainErrs uint64 `json:"autoMaintainErrs"`
	// Degraded reports read-only degraded mode: mutations refused with
	// 503 while queries keep serving from the last good snapshot.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degradedReason,omitempty"`
}

// replicationJSON is the replication section of /healthz and /metrics:
// the node's role and durable WAL position on every durable node, plus
// the follower loop's state, lag, and error surface on followers, and
// the fan-out table plus snapshot-transfer counters on the leader.
type replicationJSON struct {
	Role   string `json:"role"`
	WalSeq uint64 `json:"walSeq"`
	// LeaderAddr is where writes go; set on followers.
	LeaderAddr string `json:"leaderAddr,omitempty"`
	// State is one of the cluster.State* constants (follower only).
	State string `json:"state,omitempty"`
	// LeaderSeq and Lag position this follower against the leader's WAL
	// as of the last successful poll.
	LeaderSeq      uint64 `json:"leaderSeq,omitempty"`
	Lag            uint64 `json:"lag,omitempty"`
	Bootstraps     uint64 `json:"bootstraps,omitempty"`
	RecordsApplied uint64 `json:"recordsApplied,omitempty"`
	LastContact    string `json:"lastContact,omitempty"`
	LastError      string `json:"lastError,omitempty"`
	// BootstrapChunks of BootstrapTotalChunks report an in-flight
	// snapshot transfer's progress; both are zero between transfers.
	BootstrapChunks      uint64 `json:"bootstrapChunks,omitempty"`
	BootstrapTotalChunks uint64 `json:"bootstrapTotalChunks,omitempty"`
	// Followers is the fan-out table: one entry per node that has ever
	// streamed from this one, sorted by id.
	Followers []followerJSON `json:"followers,omitempty"`
	// ChunkRequests/ChunkBytes/SnapshotBuilds count bootstrap traffic
	// served: chunks shipped, their volume, and how many distinct
	// archives were encoded (cache effectiveness).
	ChunkRequests  uint64 `json:"chunkRequests,omitempty"`
	ChunkBytes     uint64 `json:"chunkBytes,omitempty"`
	SnapshotBuilds uint64 `json:"snapshotBuilds,omitempty"`
}

// followerJSON is one fan-out table entry: where a downstream replica
// stands against this node's WAL and what its bootstrap cost.
type followerJSON struct {
	ID       string `json:"id"`
	AckedSeq uint64 `json:"ackedSeq"`
	// Lag is this node's WAL position minus the follower's
	// acknowledgement — records committed here it has not confirmed.
	Lag             uint64 `json:"lag"`
	LastContact     string `json:"lastContact,omitempty"`
	BootstrapChunks uint64 `json:"bootstrapChunks,omitempty"`
	BootstrapBytes  uint64 `json:"bootstrapBytes,omitempty"`
}

// mutateRequest is the POST /mutate body: either one statement in sql
// or a batch in stmts (exactly one of the two), applied atomically.
type mutateRequest struct {
	SQL   string   `json:"sql"`
	Stmts []string `json:"stmts"`
}

// mutationJSON reports one statement's effect.
type mutationJSON struct {
	Kind     string `json:"kind"`
	Table    string `json:"table"`
	Inserted int    `json:"inserted"`
	Deleted  int    `json:"deleted"`
}

// mutateResponse is the POST /mutate response. Stale and Refinable are
// the rule-maintenance totals after the batch; Warning carries a
// committed-but-degraded condition (auto-checkpoint failure).
type mutateResponse struct {
	Version      uint64         `json:"version"`
	Mutations    []mutationJSON `json:"mutations"`
	Stale        int            `json:"stale"`
	Refinable    int            `json:"refinable"`
	Checkpointed bool           `json:"checkpointed,omitempty"`
	WalBytes     int64          `json:"walBytes"`
	// WalSeq is the durable WAL sequence this batch committed at; Token
	// is its read-your-writes form ("w<seq>") — pass it as a /query token
	// on any replica to wait for this write to be visible there.
	WalSeq  uint64 `json:"walSeq,omitempty"`
	Token   string `json:"token,omitempty"`
	Warning string `json:"warning,omitempty"`
}

type rulesResponse struct {
	Version   uint64     `json:"version"`
	Count     int        `json:"count"`
	Serving   int        `json:"serving"`
	Stale     int        `json:"stale"`
	Refinable int        `json:"refinable"`
	Rules     []ruleJSON `json:"rules,omitempty"`
}

type ruleJSON struct {
	ID      int    `json:"id"`
	Rule    string `json:"rule"`
	Support int    `json:"support"`
	Status  string `json:"status"`
	// Stale duplicates Status == "stale" for cheap client checks; stale
	// rules are withheld from inference until re-induction.
	Stale           bool   `json:"stale,omitempty"`
	Counterexamples int    `json:"counterexamples,omitempty"`
	Definite        bool   `json:"definite,omitempty"`
	Example         string `json:"example,omitempty"`
}

type healthzResponse struct {
	OK bool `json:"ok"`
	// Mode is "ok", "degraded:read-only", or — on a follower — the
	// replication state prefixed "follower:" ("follower:ready",
	// "follower:catching-up", ...). The process stays live (OK true)
	// while degraded or catching up: queries serve from the last
	// applied snapshot.
	Mode           string `json:"mode"`
	Version        uint64 `json:"version"`
	Relations      int    `json:"relations"`
	Rules          int    `json:"rules"`
	Stale          int    `json:"stale"`
	Durable        bool   `json:"durable"`
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degradedReason,omitempty"`
	DegradedSince  string `json:"degradedSince,omitempty"`
	// WalSeq is the durable WAL sequence this node has applied.
	WalSeq uint64 `json:"walSeq,omitempty"`
	// Replication reports the node's role and follower progress.
	Replication *replicationJSON `json:"replication,omitempty"`
}

// relationJSON is the wire form of an extensional answer. Cells are
// typed JSON values: null, string, or number.
type relationJSON struct {
	Name    string       `json:"name"`
	Columns []columnJSON `json:"columns"`
	Rows    [][]any      `json:"rows"`
}

type columnJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type factJSON struct {
	Attr     string `json:"attr"`
	Interval string `json:"interval"`
	Derived  bool   `json:"derived"`
	Via      []int  `json:"via,omitempty"`
	Subtype  string `json:"subtype,omitempty"`
}

type descriptionJSON struct {
	Clause      string `json:"clause"`
	Consequence string `json:"consequence"`
	Via         int    `json:"via"`
	Subtype     string `json:"subtype,omitempty"`
}

// queryResponse is the POST /query response: the extensional rows,
// the rendered intensional sentences, and the structured inference
// behind them, stamped with the snapshot version that produced it.
type queryResponse struct {
	Version      uint64            `json:"version"`
	Mode         string            `json:"mode"`
	RowCount     int               `json:"rowCount"`
	Extensional  *relationJSON     `json:"extensional,omitempty"`
	Intensional  []string          `json:"intensional,omitempty"`
	Facts        []factJSON        `json:"facts,omitempty"`
	Descriptions []descriptionJSON `json:"descriptions,omitempty"`
	Conjunctive  bool              `json:"conjunctive"`
	Empty        bool              `json:"empty"`
}

func valueToJSON(v relation.Value) any {
	switch v.Kind() {
	case relation.KindNull:
		return nil
	case relation.KindString:
		return v.Str()
	case relation.KindInt:
		return v.Int64()
	default:
		return v.Float64()
	}
}

func relationToJSON(r *relation.Relation) *relationJSON {
	out := &relationJSON{Name: r.Name(), Rows: make([][]any, 0, r.Len())}
	for _, col := range r.Schema().Columns() {
		out.Columns = append(out.Columns, columnJSON{Name: col.Name, Type: col.Type.String()})
	}
	for _, row := range r.Rows() {
		cells := make([]any, len(row))
		for i, v := range row {
			cells[i] = valueToJSON(v)
		}
		out.Rows = append(out.Rows, cells)
	}
	return out
}

func factToJSON(f infer.Fact) factJSON {
	return factJSON{
		Attr:     f.Attr.String(),
		Interval: f.Interval.String(),
		Derived:  f.Derived,
		Via:      f.Via,
		Subtype:  f.Subtype,
	}
}

func descriptionToJSON(d infer.Description) descriptionJSON {
	return descriptionJSON{
		Clause:      d.Clause.String(),
		Consequence: d.Consequence.String(),
		Via:         d.Via,
		Subtype:     d.Subtype,
	}
}

// toQueryJSON projects a core.Response onto the wire shape. mode is
// echoed back as the client sent it (normalised to "combined" when
// empty); wantExt/wantInt select the sections.
func toQueryJSON(resp *core.Response, mode string, wantExt, wantInt bool) queryResponse {
	if mode == "" {
		mode = "combined"
	}
	out := queryResponse{
		Version:     resp.Version,
		Mode:        mode,
		RowCount:    resp.Extensional.Len(),
		Conjunctive: resp.Inference.Conjunctive,
		Empty:       resp.Inference.Empty,
	}
	if wantExt {
		out.Extensional = relationToJSON(resp.Extensional)
	}
	if wantInt {
		out.Intensional = resp.Intensional.Lines
		for _, f := range resp.Inference.Facts {
			out.Facts = append(out.Facts, factToJSON(f))
		}
		for _, d := range resp.Inference.Descriptions {
			out.Descriptions = append(out.Descriptions, descriptionToJSON(d))
		}
	}
	return out
}
