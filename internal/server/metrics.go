package server

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// bucketBoundsMS are the latency histogram upper bounds in milliseconds;
// an implicit final bucket catches everything slower. Chosen to resolve
// both cached sub-millisecond queries and multi-second inductions.
var bucketBoundsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// endpointMetrics accumulates one endpoint's counters. All fields are
// guarded by the owning metrics registry's lock.
type endpointMetrics struct {
	requests uint64
	statuses map[int]uint64
	buckets  []uint64 // len(bucketBoundsMS)+1, last is the overflow bucket
	totalMS  float64
	maxMS    float64
}

// metrics is the in-process registry behind GET /metrics: per-endpoint
// request counts, status counts, and latency histograms. Stdlib only —
// it is the JSON analogue of a Prometheus exposition.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics // guarded by mu
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointMetrics)}
}

// observe records one completed request.
func (m *metrics) observe(endpoint string, status int, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.endpoints[endpoint]
	if !ok {
		e = &endpointMetrics{
			statuses: make(map[int]uint64),
			buckets:  make([]uint64, len(bucketBoundsMS)+1),
		}
		m.endpoints[endpoint] = e
	}
	e.requests++
	e.statuses[status]++
	e.totalMS += ms
	if ms > e.maxMS {
		e.maxMS = ms
	}
	i := sort.SearchFloat64s(bucketBoundsMS, ms)
	e.buckets[i]++
}

// histogramJSON pairs the shared bucket bounds with one endpoint's
// counts; counts has one extra trailing entry for the overflow bucket.
type histogramJSON struct {
	BoundsMS []float64 `json:"boundsMs"`
	Counts   []uint64  `json:"counts"`
}

type endpointJSON struct {
	Requests uint64            `json:"requests"`
	Statuses map[string]uint64 `json:"statuses"`
	TotalMS  float64           `json:"totalMs"`
	MaxMS    float64           `json:"maxMs"`
	Latency  histogramJSON     `json:"latency"`
}

type metricsJSON struct {
	Endpoints map[string]endpointJSON `json:"endpoints"`
	// System, Server, and Planner are filled in by the handler — from
	// the core snapshot, the admission/panic counters, and the planner
	// counters respectively; the registry itself only owns the
	// per-endpoint counters.
	System  systemJSON  `json:"system"`
	Server  serverJSON  `json:"server"`
	Planner plannerJSON `json:"planner"`
	// Replication is present on durable nodes: role, WAL position, and
	// follower streaming progress.
	Replication *replicationJSON `json:"replication,omitempty"`
}

// snapshot copies the registry into its wire form. encoding/json sorts
// map keys, so the exposition is deterministic.
func (m *metrics) snapshot() metricsJSON {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := metricsJSON{Endpoints: make(map[string]endpointJSON, len(m.endpoints))}
	for name, e := range m.endpoints {
		ej := endpointJSON{
			Requests: e.requests,
			Statuses: make(map[string]uint64, len(e.statuses)),
			TotalMS:  e.totalMS,
			MaxMS:    e.maxMS,
			Latency: histogramJSON{
				BoundsMS: bucketBoundsMS,
				Counts:   append([]uint64(nil), e.buckets...),
			},
		}
		for code, n := range e.statuses {
			ej.Statuses[strconv.Itoa(code)] = n
		}
		out.Endpoints[name] = ej
	}
	return out
}
