package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"intensional/internal/core"
	"intensional/internal/induct"
	"intensional/internal/server"
	"intensional/internal/shipdb"
)

const forwardQuery = `SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
	FROM SUBMARINE, CLASS
	WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`

func shipSystem(t *testing.T) *core.System {
	t.Helper()
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.New(cat, d)
	if _, err := sys.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	return sys
}

// newTestServer stands up an httptest server over the ship test bed with
// rules already induced (version 2).
func newTestServer(t *testing.T, opts server.Options) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(shipSystem(t), opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, dst any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dst != nil {
		if err := json.Unmarshal(data, dst); err != nil {
			t.Fatalf("decode %s: %v (body %s)", url, err, data)
		}
	}
	return resp
}

// queryWire mirrors the /query response shape for decoding in tests.
type queryWire struct {
	Version     uint64 `json:"version"`
	Mode        string `json:"mode"`
	RowCount    int    `json:"rowCount"`
	Extensional *struct {
		Columns []struct{ Name, Type string } `json:"columns"`
		Rows    [][]any                       `json:"rows"`
	} `json:"extensional"`
	Intensional []string `json:"intensional"`
	Conjunctive bool     `json:"conjunctive"`
}

func TestQueryCombined(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	resp, body := postJSON(t, ts.URL+"/query", map[string]string{"sql": forwardQuery, "mode": "forward"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var q queryWire
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if q.RowCount != 2 || q.Extensional == nil || len(q.Extensional.Rows) != 2 {
		t.Errorf("rowCount=%d extensional=%v", q.RowCount, q.Extensional)
	}
	if !strings.Contains(strings.Join(q.Intensional, "\n"), "SSBN") {
		t.Errorf("intensional = %q", q.Intensional)
	}
	if q.Version != 2 {
		t.Errorf("version = %d, want 2", q.Version)
	}
	if !q.Conjunctive {
		t.Error("conjunctive should be true")
	}
}

func TestQueryExtensionalMode(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	resp, body := postJSON(t, ts.URL+"/query", map[string]string{"sql": forwardQuery, "mode": "extensional"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var q queryWire
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if q.Extensional == nil || len(q.Intensional) != 0 {
		t.Errorf("extensional mode: ext=%v int=%v", q.Extensional, q.Intensional)
	}
}

func TestQueryIntensionalMode(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	resp, body := postJSON(t, ts.URL+"/query", map[string]string{"sql": forwardQuery, "mode": "intensional"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var q queryWire
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if q.Extensional != nil || len(q.Intensional) == 0 {
		t.Errorf("intensional mode: ext=%v int=%v", q.Extensional, q.Intensional)
	}
	if q.RowCount != 2 {
		t.Errorf("rowCount should still report the extensional size, got %d", q.RowCount)
	}
}

// errWire decodes the JSON error envelope.
type errWire struct {
	Error string `json:"error"`
}

func TestMalformedSQLIs400(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	resp, body := postJSON(t, ts.URL+"/query", map[string]string{"sql": "SELECT nope FROM nothing"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var e errWire
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("want JSON error body, got %s (%v)", body, err)
	}
}

func TestBadRequestBodies(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	cases := []struct {
		name string
		body string
	}{
		{"truncated json", `{"sql":`},
		{"unknown field", `{"sql":"SELECT 1","bogus":true}`},
		{"missing sql", `{}`},
		{"unknown mode", fmt.Sprintf(`{"sql":%q,"mode":"sideways"}`, forwardQuery)},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
		var e errWire
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: want JSON error body, got %s", tc.name, data)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	resp := getJSON(t, ts.URL+"/query", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d, want 405", resp.StatusCode)
	}
}

func TestInduceAndRules(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	resp, body := postJSON(t, ts.URL+"/induce", map[string]any{"nc": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("induce status = %d, body %s", resp.StatusCode, body)
	}
	var ind struct {
		Version uint64 `json:"version"`
		Rules   int    `json:"rules"`
	}
	if err := json.Unmarshal(body, &ind); err != nil {
		t.Fatal(err)
	}
	if ind.Version != 3 {
		t.Errorf("post-induce version = %d, want 3", ind.Version)
	}
	if ind.Rules == 0 {
		t.Error("induce returned no rules")
	}

	var rl struct {
		Version uint64 `json:"version"`
		Count   int    `json:"count"`
		Rules   []struct {
			ID      int    `json:"id"`
			Rule    string `json:"rule"`
			Support int    `json:"support"`
		} `json:"rules"`
	}
	if resp := getJSON(t, ts.URL+"/rules", &rl); resp.StatusCode != http.StatusOK {
		t.Fatalf("rules status = %d", resp.StatusCode)
	}
	if rl.Count != ind.Rules || len(rl.Rules) != rl.Count || rl.Version != 3 {
		t.Errorf("rules = %d/%d at version %d, want %d at 3", rl.Count, len(rl.Rules), rl.Version, ind.Rules)
	}
	if rl.Count > 0 && (rl.Rules[0].ID == 0 || rl.Rules[0].Rule == "") {
		t.Errorf("rule 0 = %+v", rl.Rules[0])
	}
}

func TestInduceRejectsNegativeOptions(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	resp, _ := postJSON(t, ts.URL+"/induce", map[string]any{"nc": -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	var h struct {
		OK        bool   `json:"ok"`
		Version   uint64 `json:"version"`
		Relations int    `json:"relations"`
		Rules     int    `json:"rules"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !h.OK || h.Version != 2 || h.Relations == 0 || h.Rules == 0 {
		t.Errorf("healthz = %+v", h)
	}
}

// metricsWire mirrors the /metrics exposition.
type metricsWire struct {
	Endpoints map[string]struct {
		Requests uint64            `json:"requests"`
		Statuses map[string]uint64 `json:"statuses"`
		Latency  struct {
			BoundsMS []float64 `json:"boundsMs"`
			Counts   []uint64  `json:"counts"`
		} `json:"latency"`
	} `json:"endpoints"`
}

func TestMetricsCountersIncrement(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts.URL+"/query", map[string]string{"sql": forwardQuery}); resp.StatusCode != 200 {
			t.Fatalf("query status = %d, body %s", resp.StatusCode, body)
		}
	}
	if resp, _ := postJSON(t, ts.URL+"/query", map[string]string{"sql": "SELECT nope FROM nothing"}); resp.StatusCode != 400 {
		t.Fatalf("bad query status = %d", resp.StatusCode)
	}

	var m metricsWire
	if resp := getJSON(t, ts.URL+"/metrics", &m); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	q, ok := m.Endpoints["POST /query"]
	if !ok {
		t.Fatalf("no POST /query endpoint in metrics: %+v", m.Endpoints)
	}
	if q.Requests != 3 || q.Statuses["200"] != 2 || q.Statuses["400"] != 1 {
		t.Errorf("query metrics = %+v", q)
	}
	var histTotal uint64
	for _, c := range q.Latency.Counts {
		histTotal += c
	}
	if histTotal != q.Requests {
		t.Errorf("histogram counts sum to %d, want %d", histTotal, q.Requests)
	}
	if len(q.Latency.Counts) != len(q.Latency.BoundsMS)+1 {
		t.Errorf("histogram has %d counts for %d bounds", len(q.Latency.Counts), len(q.Latency.BoundsMS))
	}
}

func TestDeadlineExceededIs504(t *testing.T) {
	srv := server.New(shipSystem(t), server.Options{QueryTimeout: 30 * time.Millisecond})
	srv.SetSlowHookForTest(func() { time.Sleep(300 * time.Millisecond) })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/query", map[string]string{"sql": forwardQuery})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	var e errWire
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "deadline") {
		t.Errorf("want deadline error body, got %s", body)
	}

	var m metricsWire
	getJSON(t, ts.URL+"/metrics", &m)
	if got := m.Endpoints["POST /query"].Statuses["504"]; got != 1 {
		t.Errorf("504 count = %d, want 1", got)
	}
}

// TestConcurrentQueryAndInduce hammers /query from several goroutines
// while /induce installs new snapshots — every query must come back 200
// with the right rows, whichever snapshot served it.
func TestConcurrentQueryAndInduce(t *testing.T) {
	_, ts := newTestServer(t, server.Options{})
	client := ts.Client()
	post := func(path, body string) (int, []byte, error) {
		resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		return resp.StatusCode, data, err
	}

	queryBody, err := json.Marshal(map[string]string{"sql": forwardQuery, "mode": "forward"})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				status, data, err := post("/query", string(queryBody))
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if status != http.StatusOK {
					t.Errorf("query status = %d, body %s", status, data)
					return
				}
				var q queryWire
				if err := json.Unmarshal(data, &q); err != nil || q.RowCount != 2 {
					t.Errorf("query result = %s (err %v)", data, err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			status, data, err := post("/induce", `{"nc":3}`)
			if err != nil || status != http.StatusOK {
				t.Errorf("induce status = %d err %v body %s", status, err, data)
				return
			}
		}
	}()
	wg.Wait()

	var h struct {
		Version uint64 `json:"version"`
	}
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Version != 6 {
		t.Errorf("final version = %d, want 6", h.Version)
	}
}

func TestAccessLogLines(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, server.Options{AccessLog: &buf})
	if resp, _ := postJSON(t, ts.URL+"/query", map[string]string{"sql": forwardQuery}); resp.StatusCode != 200 {
		t.Fatalf("query failed")
	}
	getJSON(t, ts.URL+"/healthz", nil)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines: %q", len(lines), lines)
	}
	var rec struct {
		Method string  `json:"method"`
		Path   string  `json:"path"`
		Status int     `json:"status"`
		DurMS  float64 `json:"durMs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec.Method != "POST" || rec.Path != "/query" || rec.Status != 200 {
		t.Errorf("record = %+v", rec)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for log capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
