// Package server exposes a core.System over a stdlib-only HTTP/JSON API
// — the serving layer that promotes the paper's one-user-at-a-time
// prototype to a concurrent network service. Endpoints:
//
//	POST /query    SQL in, extensional + intensional answer out
//	POST /explain  SQL in, the typed execution plan out — access paths
//	               with cardinality estimates, join order, and the
//	               semantic rewrites the rule base contributed — without
//	               executing the query
//	POST /mutate   INSERT/DELETE/UPDATE batch, applied atomically
//	POST /induce   re-run rule induction, install a new snapshot
//	POST /maintain re-induce only the schemes holding stale rules
//	GET  /rules    the current rule base with per-rule staleness
//	GET  /healthz  liveness plus version/relation/rule counts
//	GET  /metrics  per-endpoint request counters and latency histograms,
//	               plus the system section: snapshot version, WAL size,
//	               and per-relationship rule staleness
//
// Every request runs under a deadline; /query relies on core's
// snapshot-swap concurrency contract, so any number of queries proceed
// while /induce builds and atomically installs a new rule base, and a
// /mutate that contradicts a rule installs a snapshot whose inference
// set already withholds it. No dependencies beyond the standard
// library.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"intensional/internal/answer"
	"intensional/internal/cluster"
	"intensional/internal/core"
	"intensional/internal/induct"
	"intensional/internal/maintain"
	"intensional/internal/replica"
	"intensional/internal/rules"
)

// Options configures a Server. Zero values select the defaults.
type Options struct {
	// QueryTimeout bounds /query, /rules, /healthz and /metrics requests
	// (default 10s).
	QueryTimeout time.Duration
	// InduceTimeout bounds /induce requests, which re-run the full
	// induction pipeline (default 2m).
	InduceTimeout time.Duration
	// AccessLog, when non-nil, receives one JSON line per request.
	AccessLog io.Writer
	// ErrorLog, when non-nil, receives panic stack traces and other
	// internal failures, one entry per line group.
	ErrorLog io.Writer
	// MaxInFlight bounds concurrently executing handlers (default 64).
	// /healthz and /metrics are exempt, so the system stays observable
	// while saturated.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot (default
	// 2×MaxInFlight). When the queue is full, requests are refused
	// immediately with 429 and a Retry-After header.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot
	// before a 503 (default 1s).
	QueueWait time.Duration
	// LeaderAddr is the leader's base URL. Set on followers so write
	// requests are refused with 421 pointing at the node that accepts
	// them.
	LeaderAddr string
	// LeaderAddrFunc, when non-nil, supplies the leader's address
	// dynamically — a live-reconfigurable node re-points mid-flight, so
	// the 421 Location must track it. Takes precedence over LeaderAddr.
	LeaderAddrFunc func() string
	// FollowerStatus, when non-nil, supplies the replica loop's
	// progress for /healthz and /metrics on a follower.
	FollowerStatus func() cluster.FollowerStatus
	// Replica is the process's shared replication tracker: it serves
	// /replica/wal and /replica/snapshot and holds the fan-out table
	// reported in /metrics. Nil means the server builds its own with
	// default chunking; pass one to share it with a replica.Node (the
	// demotion fence consults the same acknowledgements /metrics shows).
	Replica *replica.Leader
	// ReplicationTimeout bounds /replica/wal long polls and
	// /replica/snapshot transfers on the leader (default 75s — above
	// the follower's poll wait, so quiet polls park instead of
	// churning 504s).
	ReplicationTimeout time.Duration
}

func (o Options) queryTimeout() time.Duration {
	if o.QueryTimeout > 0 {
		return o.QueryTimeout
	}
	return 10 * time.Second
}

func (o Options) induceTimeout() time.Duration {
	if o.InduceTimeout > 0 {
		return o.InduceTimeout
	}
	return 2 * time.Minute
}

func (o Options) maxInFlight() int {
	if o.MaxInFlight > 0 {
		return o.MaxInFlight
	}
	return 64
}

func (o Options) maxQueue() int {
	if o.MaxQueue > 0 {
		return o.MaxQueue
	}
	return 2 * o.maxInFlight()
}

func (o Options) queueWait() time.Duration {
	if o.QueueWait > 0 {
		return o.QueueWait
	}
	return time.Second
}

func (o Options) replicationTimeout() time.Duration {
	if o.ReplicationTimeout > 0 {
		return o.ReplicationTimeout
	}
	return 75 * time.Second
}

// Server serves intensional answers over HTTP. It is safe for concurrent
// use; all shared state lives in the underlying core.System (snapshot
// contract) and in the internally locked metrics registry.
type Server struct {
	sys   *core.System
	opts  Options
	rep   *replica.Leader
	met   *metrics
	logMu sync.Mutex // serialises access- and error-log lines
	slow  func()     // test hook: injected latency at handler entry

	sem    chan struct{} // in-flight slots; len(sem) = executing handlers
	queued atomic.Int64  // requests waiting for a slot

	queueFull    atomic.Uint64 // 429s: queue already full
	queueTimeout atomic.Uint64 // 503s: no slot within QueueWait
	panics       atomic.Uint64 // handler panics converted to 500s
}

// New builds a Server over a system.
func New(sys *core.System, opts Options) *Server {
	rep := opts.Replica
	if rep == nil {
		rep = replica.NewLeader(sys, replica.LeaderOptions{})
	}
	return &Server{
		sys:  sys,
		opts: opts,
		rep:  rep,
		met:  newMetrics(),
		sem:  make(chan struct{}, opts.maxInFlight()),
	}
}

// Handler returns the route table with admission, timeout, panic
// recovery, metrics, and access-log middleware applied. Method
// mismatches yield 405, unknown paths 404. /healthz and /metrics skip
// admission control so the system stays observable while saturated.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, d time.Duration, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, s.admit(s.withTimeout(d, h))))
	}
	observe := func(pattern string, d time.Duration, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, s.withTimeout(d, h)))
	}
	qt := s.opts.queryTimeout()
	route("POST /query", qt, s.handleQuery)
	route("POST /explain", qt, s.handleExplain)
	route("POST /mutate", qt, s.handleMutate)
	route("POST /induce", s.opts.induceTimeout(), s.handleInduce)
	route("POST /maintain", s.opts.induceTimeout(), s.handleMaintain)
	route("GET /rules", qt, s.handleRules)
	observe("GET /healthz", qt, s.handleHealthz)
	observe("GET /metrics", qt, s.handleMetrics)
	// Replication endpoints skip admission (a parked long poll must not
	// hold an execution slot) and run under their own, longer deadline.
	// The handlers themselves refuse non-durable and follower systems.
	rt := s.opts.replicationTimeout()
	observe("GET /replica/wal", rt, s.rep.WALHandler().ServeHTTP)
	observe("GET /replica/snapshot", rt, s.rep.SnapshotHandler().ServeHTTP)
	return mux
}

// maxBodyBytes bounds request bodies; queries and induction options are
// tiny, so anything larger is a client error.
const maxBodyBytes = 1 << 20

// decodeJSON reads a JSON request body into dst.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

// writeJSON writes v as the response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(data); err != nil {
		// The client went away; there is no one left to tell.
		return
	}
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

// parseMode maps the request's mode string to the inference direction
// and the response sections to include.
func parseMode(mode string) (m answer.Mode, wantExt, wantInt bool, err error) {
	switch strings.ToLower(strings.TrimSpace(mode)) {
	case "", "combined":
		return answer.Combined, true, true, nil
	case "extensional":
		return answer.Combined, true, false, nil
	case "intensional":
		return answer.Combined, false, true, nil
	case "forward":
		return answer.ForwardOnly, true, true, nil
	case "backward":
		return answer.BackwardOnly, true, true, nil
	default:
		return 0, false, false, fmt.Errorf("unknown mode %q (want extensional, intensional, combined, forward, or backward)", mode)
	}
}

// parseToken extracts the WAL sequence from a read-your-writes token,
// as issued in mutate responses.
func parseToken(tok string) (uint64, error) {
	if len(tok) > 1 && tok[0] == 'w' {
		if seq, err := strconv.ParseUint(tok[1:], 10, 64); err == nil {
			return seq, nil
		}
	}
	return 0, fmt.Errorf("malformed token %q (want \"w<seq>\" from a mutate response)", tok)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.slow != nil {
		s.slow()
	}
	var req queryRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, http.StatusBadRequest, "missing sql")
		return
	}
	mode, wantExt, wantInt, err := parseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if tok := strings.TrimSpace(req.Token); tok != "" {
		// Read-your-writes: hold the query until this node has applied
		// the tokened write, or 504 so the client can retry — never
		// silently serve an older snapshot.
		seq, err := parseToken(tok)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := s.sys.WaitForSeq(r.Context(), seq); err != nil {
			writeError(w, http.StatusGatewayTimeout, fmt.Sprintf(
				"write w%d not yet applied on this replica (at w%d); retry or query the leader",
				seq, s.sys.WalSeq()))
			return
		}
	}
	resp, err := s.sys.QueryContext(r.Context(), req.SQL, mode)
	if err != nil {
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			// The deadline middleware already answered 504; this write
			// lands in a discarded buffer.
			writeError(w, http.StatusGatewayTimeout, "query abandoned at deadline")
			return
		}
		// Parse, binding, and inference errors are all properties of the
		// request against the current schema: client errors.
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, toQueryJSON(resp, req.Mode, wantExt, wantInt))
}

// handleExplain prepares (and caches) the statement exactly as /query
// would and returns its plan without running it: the plan shown is the
// plan that executes.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if s.slow != nil {
		s.slow()
	}
	var req explainRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, http.StatusBadRequest, "missing sql")
		return
	}
	pl, err := s.sys.Explain(req.SQL)
	if err != nil {
		// Parse, binding, and planning errors are properties of the
		// request against the current schema: client errors.
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, explainResponse{Version: s.sys.Version(), Plan: pl})
}

// refuseDegraded answers 503 when the system is in read-only degraded
// mode and reports whether it did. Mutating endpoints call it up front
// so clients get a clear signal instead of a doomed attempt; /query is
// deliberately not gated — serving reads is the point of the mode.
func (s *Server) refuseDegraded(w http.ResponseWriter) bool {
	st := s.sys.Degraded()
	if st == nil {
		return false
	}
	w.Header().Set("Retry-After", "30")
	writeError(w, http.StatusServiceUnavailable,
		fmt.Sprintf("system is read-only (degraded since %s): %s",
			st.Since.UTC().Format(time.RFC3339), st.Reason))
	return true
}

// leaderAddr resolves where writes currently go: the dynamic source
// when wired (it tracks live reconfiguration), else the static option.
func (s *Server) leaderAddr() string {
	if s.opts.LeaderAddrFunc != nil {
		return s.opts.LeaderAddrFunc()
	}
	return s.opts.LeaderAddr
}

// writeNotLeader answers 421 Misdirected Request — the request is valid
// but this node does not accept writes — with the leader's address when
// known, so clients can redirect.
func (s *Server) writeNotLeader(w http.ResponseWriter, err error) {
	msg := err.Error()
	if addr := s.leaderAddr(); addr != "" {
		w.Header().Set("Location", addr)
		msg += " at " + addr
	}
	writeError(w, http.StatusMisdirectedRequest, msg)
}

// refuseFollower answers 421 when this node is a follower replica and
// reports whether it did. Write endpoints call it up front; the core
// layer enforces the same fence (ErrNotLeader), this just answers
// before parsing a doomed request.
func (s *Server) refuseFollower(w http.ResponseWriter) bool {
	if !s.sys.Follower() {
		return false
	}
	// Resolving the leader address can block behind a role transition in
	// flight (the node mutex is held across promotion). If it comes back
	// empty, re-check the role: when the transition made this node the
	// leader, serve the request instead of answering a Location-less 421.
	if s.leaderAddr() == "" && !s.sys.Follower() {
		return false
	}
	s.writeNotLeader(w, core.ErrNotLeader)
	return true
}

func (s *Server) handleInduce(w http.ResponseWriter, r *http.Request) {
	if s.slow != nil {
		s.slow()
	}
	if s.refuseFollower(w) || s.refuseDegraded(w) {
		return
	}
	var req induceRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Nc < 0 || req.NcFraction < 0 || req.Workers < 0 {
		writeError(w, http.StatusBadRequest, "nc, ncFraction, and workers must be non-negative")
		return
	}
	start := time.Now()
	set, err := s.sys.InduceContext(r.Context(), induct.Options{
		Nc:         req.Nc,
		NcFraction: req.NcFraction,
		Workers:    req.Workers,
	})
	if err != nil {
		if errors.Is(err, core.ErrNotLeader) {
			s.writeNotLeader(w, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, induceResponse{
		Version:   s.sys.Version(),
		Rules:     set.Len(),
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// handleMutate applies a DML batch atomically through the write path.
// The response is sent only after the batch is durable (on a durable
// system) and the new snapshot — with any contradicted rules withheld —
// is installed.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if s.slow != nil {
		s.slow()
	}
	if s.refuseFollower(w) || s.refuseDegraded(w) {
		return
	}
	var req mutateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	stmts := req.Stmts
	if strings.TrimSpace(req.SQL) != "" {
		if len(stmts) > 0 {
			writeError(w, http.StatusBadRequest, "give either sql or stmts, not both")
			return
		}
		stmts = []string{req.SQL}
	}
	if len(stmts) == 0 {
		writeError(w, http.StatusBadRequest, "missing sql or stmts")
		return
	}
	res, err := s.sys.ApplyBatch(r.Context(), stmts)
	if err != nil {
		// A non-nil error means the batch did not commit — except
		// core.ErrLogIndeterminate, where a failed fsync leaves the
		// outcome unknown until the next recovery; the 500 body carries
		// that wording. A committed batch with a failed auto-checkpoint
		// returns nil error and reports it in res.CheckpointErr.
		switch {
		case r.Context().Err() != nil && errors.Is(err, r.Context().Err()):
			writeError(w, http.StatusGatewayTimeout, "mutation abandoned at deadline")
		case errors.Is(err, core.ErrNotLeader):
			// Checked before ErrReadOnly, which it wraps: a follower is
			// permanently read-only for clients — redirect, don't retry.
			s.writeNotLeader(w, err)
		case errors.Is(err, core.ErrReadOnly):
			// The system degraded between the up-front check and the
			// apply (or during this very batch).
			w.Header().Set("Retry-After", "30")
			writeError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, core.ErrLogFailed):
			writeError(w, http.StatusInternalServerError, err.Error())
		default:
			// Parse errors, unknown tables/columns, arity and type
			// mismatches: properties of the request.
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	out := mutateResponse{
		Version:      res.Version,
		Mutations:    make([]mutationJSON, 0, len(res.Mutations)),
		Stale:        res.Stale,
		Refinable:    res.Refinable,
		Checkpointed: res.Checkpointed,
		WalBytes:     s.sys.WalSize(),
		Warning:      res.CheckpointErr,
	}
	if res.Seq > 0 {
		out.WalSeq = res.Seq
		out.Token = fmt.Sprintf("w%d", res.Seq)
	}
	for _, m := range res.Mutations {
		out.Mutations = append(out.Mutations, mutationJSON{
			Kind:     m.Kind,
			Table:    m.Table,
			Inserted: len(m.Inserted),
			Deleted:  len(m.Deleted),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMaintain re-induces exactly the schemes holding stale or
// refinable rules — the lazy counterpart to the -auto-maintain worker.
func (s *Server) handleMaintain(w http.ResponseWriter, r *http.Request) {
	if s.slow != nil {
		s.slow()
	}
	if s.refuseFollower(w) || s.refuseDegraded(w) {
		return
	}
	var req induceRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Nc < 0 || req.NcFraction < 0 || req.Workers < 0 {
		writeError(w, http.StatusBadRequest, "nc, ncFraction, and workers must be non-negative")
		return
	}
	start := time.Now()
	res, err := s.sys.Maintain(r.Context(), induct.Options{
		Nc:         req.Nc,
		NcFraction: req.NcFraction,
		Workers:    req.Workers,
	})
	if err != nil {
		if r.Context().Err() != nil && errors.Is(err, r.Context().Err()) {
			writeError(w, http.StatusGatewayTimeout, "maintenance abandoned at deadline")
			return
		}
		if errors.Is(err, core.ErrNotLeader) {
			s.writeNotLeader(w, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, maintainResponse{
		Version:   res.Version,
		Schemes:   res.Schemes,
		Dropped:   res.Dropped,
		Added:     res.Added,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleRules(w http.ResponseWriter, _ *http.Request) {
	full, maint, version := s.sys.RuleStatus()
	stale, refinable := maint.Counts()
	out := rulesResponse{
		Version:   version,
		Count:     full.Len(),
		Serving:   full.Len() - stale,
		Stale:     stale,
		Refinable: refinable,
	}
	for _, r := range full.Rules() {
		inf := maint.Info(r.ID)
		out.Rules = append(out.Rules, ruleJSON{
			ID:              r.ID,
			Rule:            r.String(),
			Support:         r.Support,
			Status:          inf.Status.String(),
			Stale:           inf.Status == maintain.Stale,
			Counterexamples: inf.Counterexamples,
			Definite:        inf.Definite,
			Example:         inf.Example,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	_, maint, version := s.sys.RuleStatus()
	stale, _ := maint.Counts()
	out := healthzResponse{
		OK:          true,
		Mode:        "ok",
		Version:     version,
		Relations:   s.sys.Catalog().Len(),
		Rules:       s.sys.Rules().Len(),
		Stale:       stale,
		Durable:     s.sys.Durable(),
		WalSeq:      s.sys.WalSeq(),
		Replication: s.replicationStatus(),
	}
	if rep := out.Replication; rep != nil && rep.State != "" {
		// A follower's consistency state is its health mode: "ready" once
		// it has caught the leader's WAL position, "catching-up",
		// "bootstrapping", or "disconnected" before that. It serves reads
		// throughout.
		out.Mode = "follower:" + rep.State
	}
	if st := s.sys.Degraded(); st != nil {
		// Still OK for liveness — the process serves queries — but the
		// mode tells operators mutations are being refused.
		out.Mode = "degraded:read-only"
		out.Degraded = true
		out.DegradedReason = st.Reason
		out.DegradedSince = st.Since.UTC().Format(time.RFC3339)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.met.snapshot()
	snap.System = s.systemMetrics()
	snap.Server = s.serverMetrics()
	snap.Planner = s.plannerMetrics()
	snap.Replication = s.replicationStatus()
	writeJSON(w, http.StatusOK, snap)
}

// replicationStatus builds the replication section of /healthz and
// /metrics: role and durable WAL position on every durable node, plus
// the follower loop's progress when a status provider is wired.
// Non-durable systems have nothing to replicate and report nothing.
func (s *Server) replicationStatus() *replicationJSON {
	if !s.sys.Durable() {
		return nil
	}
	cur := s.sys.WalSeq()
	out := &replicationJSON{Role: string(cluster.RoleLeader), WalSeq: cur}
	if s.sys.Follower() {
		out.Role = string(cluster.RoleFollower)
		out.LeaderAddr = s.leaderAddr()
	}
	if s.opts.FollowerStatus != nil {
		st := s.opts.FollowerStatus()
		out.State = st.State
		out.LeaderSeq = st.LeaderSeq
		out.Lag = st.Lag()
		out.Bootstraps = st.Bootstraps
		out.RecordsApplied = st.RecordsApplied
		out.LastError = st.LastError
		out.BootstrapChunks = st.BootstrapChunks
		out.BootstrapTotalChunks = st.BootstrapTotalChunks
		if !st.LastContact.IsZero() {
			out.LastContact = st.LastContact.UTC().Format(time.RFC3339)
		}
	}
	// The fan-out side: whoever streams from this node, and what their
	// bootstraps cost. Populated on leaders and on followers that other
	// replicas chain from.
	for _, fi := range s.rep.Followers() {
		fj := followerJSON{
			ID:              fi.ID,
			AckedSeq:        fi.AckedSeq,
			BootstrapChunks: fi.BootstrapChunks,
			BootstrapBytes:  fi.BootstrapBytes,
		}
		if cur > fi.AckedSeq {
			fj.Lag = cur - fi.AckedSeq
		}
		if !fi.LastContact.IsZero() {
			fj.LastContact = fi.LastContact.UTC().Format(time.RFC3339)
		}
		out.Followers = append(out.Followers, fj)
	}
	out.ChunkRequests = s.rep.ChunkRequests()
	out.ChunkBytes = s.rep.ChunkBytes()
	out.SnapshotBuilds = s.rep.SnapshotBuilds()
	return out
}

// systemMetrics reads one consistent snapshot of the write-path state:
// version, rule staleness (totals and per relationship), and WAL size.
func (s *Server) systemMetrics() systemJSON {
	full, maint, version := s.sys.RuleStatus()
	stale, refinable := maint.Counts()
	runs, errs := s.sys.AutoMaintainStats()
	out := systemJSON{
		Version:          version,
		Rules:            full.Len(),
		Serving:          full.Len() - stale,
		Stale:            stale,
		Refinable:        refinable,
		Durable:          s.sys.Durable(),
		WalBytes:         s.sys.WalSize(),
		WalSeq:           s.sys.WalSeq(),
		AutoMaintainRuns: runs,
		AutoMaintainErrs: errs,
	}
	if st := s.sys.Degraded(); st != nil {
		out.Degraded = true
		out.DegradedReason = st.Reason
	}
	for _, r := range full.Rules() {
		if maint.Info(r.ID).Status == maintain.Valid {
			continue
		}
		if out.StaleByRelationship == nil {
			out.StaleByRelationship = make(map[string]int)
		}
		out.StaleByRelationship[relationshipKey(r)]++
	}
	return out
}

// plannerMetrics projects the core planner counters onto the wire shape.
func (s *Server) plannerMetrics() plannerJSON {
	st := s.sys.PlannerStats()
	out := plannerJSON{
		FullScans:             st.FullScans,
		IndexScans:            st.IndexScans,
		PlannerIndexFallbacks: st.IndexFallbacks,
		PlanCacheHits:         st.PlanCacheHits,
		PlanCacheMisses:       st.PlanCacheMisses,
		CachedPlans:           st.CachedPlans,
	}
	if total := st.PlanCacheHits + st.PlanCacheMisses; total > 0 {
		out.PlanCacheHitRate = float64(st.PlanCacheHits) / float64(total)
	}
	return out
}

// relationshipKey names the relation or join a rule ranges over: the
// distinct relation names of its clauses, sorted and joined with "+".
func relationshipKey(r *rules.Rule) string {
	seen := map[string]bool{}
	var names []string
	add := func(rel string) {
		u := strings.ToUpper(rel)
		if !seen[u] {
			seen[u] = true
			names = append(names, u)
		}
	}
	for _, c := range r.LHS {
		add(c.Attr.Relation)
	}
	add(r.RHS.Attr.Relation)
	sort.Strings(names)
	return strings.Join(names, "+")
}
