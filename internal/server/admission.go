package server

// Admission control and panic containment — the serving layer's side of
// graceful degradation. Two rules:
//
//  1. The process never dies because of one request. Handlers run in
//     their own goroutine (see withTimeout), where a panic would kill
//     the whole process; recoverTo converts it into a logged stack and
//     a 500 instead.
//
//  2. The process never hangs because of many requests. A server-wide
//     in-flight limit bounds concurrently executing handlers; a bounded
//     queue absorbs short bursts. Past that, requests are refused
//     immediately — 429 when the queue is full, 503 when a queued
//     request waits out QueueWait — always with a Retry-After header,
//     never an unbounded wait. /healthz and /metrics bypass admission
//     so the system stays observable while saturated.

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// admit gates h behind the in-flight limit and bounded queue.
func (s *Server) admit(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			h.ServeHTTP(w, r)
			return
		default:
		}
		// All slots busy: join the bounded queue or be refused now.
		if s.queued.Add(1) > int64(s.opts.maxQueue()) {
			s.queued.Add(-1)
			s.queueFull.Add(1)
			s.refuse(w, http.StatusTooManyRequests,
				fmt.Sprintf("server saturated: %d requests in flight and the queue is full", s.opts.maxInFlight()))
			return
		}
		defer s.queued.Add(-1)
		wait := time.NewTimer(s.opts.queueWait())
		defer wait.Stop()
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			h.ServeHTTP(w, r)
		case <-wait.C:
			s.queueTimeout.Add(1)
			s.refuse(w, http.StatusServiceUnavailable,
				fmt.Sprintf("server saturated: no execution slot freed within %v", s.opts.queueWait()))
		case <-r.Context().Done():
			// The client gave up while queued; answer for the log's sake.
			s.refuse(w, http.StatusServiceUnavailable, "client canceled while queued")
		}
	})
}

// refuse sends an admission rejection with a Retry-After hint sized to
// the queue wait — the interval after which a slot plausibly freed.
func (s *Server) refuse(w http.ResponseWriter, status int, msg string) {
	secs := int(s.opts.queueWait() / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, status, msg)
}

// notePanic logs a recovered panic's stack and counts it. Must be
// called from a deferred context with recover()'s non-nil result.
func (s *Server) notePanic(r *http.Request, p any) {
	s.panics.Add(1)
	s.logError("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
}

// logError writes one line to the error log, if configured.
func (s *Server) logError(format string, args ...any) {
	if s.opts.ErrorLog == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	fmt.Fprintf(s.opts.ErrorLog, format+"\n", args...)
}

// serverJSON is the GET /metrics "server" section: admission and panic
// counters for the robustness layer.
type serverJSON struct {
	InFlight     int    `json:"inFlight"`
	Queued       int64  `json:"queued"`
	MaxInFlight  int    `json:"maxInFlight"`
	MaxQueue     int    `json:"maxQueue"`
	QueueFull    uint64 `json:"rejectedQueueFull"`
	QueueTimeout uint64 `json:"rejectedQueueTimeout"`
	Panics       uint64 `json:"panicsRecovered"`
}

func (s *Server) serverMetrics() serverJSON {
	return serverJSON{
		InFlight:     len(s.sem),
		Queued:       s.queued.Load(),
		MaxInFlight:  s.opts.maxInFlight(),
		MaxQueue:     s.opts.maxQueue(),
		QueueFull:    s.queueFull.Load(),
		QueueTimeout: s.queueTimeout.Load(),
		Panics:       s.panics.Load(),
	}
}
