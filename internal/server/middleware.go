package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// statusWriter records the status and byte count a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// instrument wraps a handler with the observability layer: per-endpoint
// request counters and latency histograms, plus one structured
// access-log line per request. It sits outside the timeout middleware so
// 504s are counted and logged like any other response.
func (s *Server) instrument(endpoint string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		func() {
			// Second line of defence: a panic in the middleware stack
			// itself (not the handler goroutine) still gets counted,
			// answered, and logged instead of tearing down the
			// connection without a metrics observation.
			defer func() {
				if p := recover(); p != nil {
					s.notePanic(r, p)
					if sw.status == 0 {
						writeError(sw, http.StatusInternalServerError, "internal error: handler panicked (see server log)")
					}
				}
			}()
			h.ServeHTTP(sw, r)
		}()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.met.observe(endpoint, sw.status, elapsed)
		s.logAccess(r, sw.status, sw.bytes, elapsed)
	})
}

// accessRecord is one JSON access-log line.
type accessRecord struct {
	Time      string  `json:"time"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Status    int     `json:"status"`
	Bytes     int     `json:"bytes"`
	DurMS     float64 `json:"durMs"`
	Remote    string  `json:"remote"`
	UserAgent string  `json:"userAgent,omitempty"`
}

func (s *Server) logAccess(r *http.Request, status, size int, elapsed time.Duration) {
	if s.opts.AccessLog == nil {
		return
	}
	line, err := json.Marshal(accessRecord{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		Method:    r.Method,
		Path:      r.URL.Path,
		Status:    status,
		Bytes:     size,
		DurMS:     float64(elapsed) / float64(time.Millisecond),
		Remote:    r.RemoteAddr,
		UserAgent: r.UserAgent(),
	})
	if err != nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	fmt.Fprintln(s.opts.AccessLog, string(line))
}

// withTimeout enforces a per-request deadline. The wrapped handler runs
// in its own goroutine against a buffered response; if it beats the
// deadline the buffer is flushed to the client, otherwise the client
// gets a 504 JSON error and the late result is discarded. The request
// context carries the deadline, so core.QueryContext abandons the work
// at its next stage boundary instead of running to completion.
//
// The spawned goroutine is also the panic containment boundary: an
// unrecovered panic on a plain goroutine kills the whole process, and
// no middleware stacked outside this one could catch it. recoverTo
// converts it into a logged stack plus a 500; the partially written
// buffer is discarded so the client never sees half a response.
func (s *Server) withTimeout(d time.Duration, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		r = r.WithContext(ctx)
		done := make(chan *bufferedResponse, 1)
		go func() {
			br := newBufferedResponse()
			defer func() {
				if p := recover(); p != nil {
					s.notePanic(r, p)
					// Discard whatever the handler half-wrote.
					br = newBufferedResponse()
					writeError(br, http.StatusInternalServerError, "internal error: handler panicked (see server log)")
				}
				done <- br
			}()
			h.ServeHTTP(br, r)
		}()
		select {
		case br := <-done:
			br.flush(w)
		case <-ctx.Done():
			writeError(w, http.StatusGatewayTimeout,
				fmt.Sprintf("request exceeded the %v deadline", d))
		}
	})
}

// bufferedResponse is an http.ResponseWriter that holds everything in
// memory until flush, so a timed-out handler never races the 504 write.
type bufferedResponse struct {
	header http.Header
	buf    bytes.Buffer
	status int
}

func newBufferedResponse() *bufferedResponse {
	return &bufferedResponse{header: make(http.Header)}
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.buf.Write(p)
}

func (b *bufferedResponse) flush(w http.ResponseWriter) {
	keys := make([]string, 0, len(b.header))
	for k := range b.header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range b.header[k] {
			w.Header().Add(k, v)
		}
	}
	status := b.status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	if _, err := w.Write(b.buf.Bytes()); err != nil {
		// The client went away mid-flush; nothing to clean up.
		return
	}
}
