// Package infer implements the paper's inference processor (Section 4):
// forward inference (Modus Ponens — a rule fires when its premise
// subsumes a known fact, traversing the type hierarchies downward) and
// backward inference (a rule whose consequence lies within a known fact
// contributes its premise as a partial description of the answer).
// Conditions are snapped to the attribute's observed values before
// subsumption — the closed-world step that makes "Displacement > 8000"
// subsumed by R9's premise [7250..30000] in Example 1.
package infer

import (
	"fmt"
	"sort"
	"strings"

	"intensional/internal/dict"
	"intensional/internal/query"
	"intensional/internal/rules"
)

// Fact is one piece of knowledge about every tuple of the answer: the
// attribute's value lies in Interval. Original facts restate query
// restrictions; derived facts come from forward inference.
type Fact struct {
	Attr     rules.AttrRef
	Interval rules.Interval
	Derived  bool
	Via      []int // rule IDs that produced or narrowed the fact
	// Subtype names the hierarchy subtype the fact pins the object to,
	// when the attribute is a classifying attribute and the interval is a
	// single known classifying value.
	Subtype string
}

// String renders the fact.
func (f Fact) String() string {
	s := fmt.Sprintf("%s in %s", f.Attr, f.Interval)
	if f.Subtype != "" {
		s += fmt.Sprintf(" (isa %s)", f.Subtype)
	}
	return s
}

// Description is one backward-inference component: the instances
// satisfying Clause carry the consequence fact. It characterises a set
// contained in (not containing) the extensional answer, so it may be
// partial — the paper's Example 2 incompleteness.
type Description struct {
	Clause      rules.Clause
	Consequence rules.Clause
	Via         int    // rule ID
	Subtype     string // subtype named by the consequence, when classifying
	// Aliases lists the attributes equivalent to the clause's attribute
	// under the query's joins and the schema's links — the renderer uses
	// them to match the clause against the query's projection.
	Aliases []rules.AttrRef
}

// String renders the description.
func (d Description) String() string {
	return fmt.Sprintf("%s ⊆ answers (then %s, via R%d)", d.Clause, d.Consequence, d.Via)
}

// Result is the full output of type inference over one query.
type Result struct {
	// Facts holds every fact at fixpoint, original and derived. Derived
	// facts are the forward intensional answer: they characterise a set
	// CONTAINING the extensional answer.
	Facts []Fact
	// Descriptions holds the backward components: each characterises a
	// set CONTAINED IN the extensional answer.
	Descriptions []Description
	// Conjunctive reports whether the query analysis supported inference
	// (non-conjunctive queries yield no intensional answer).
	Conjunctive bool
	// Empty reports that the extensional answer is provably empty: some
	// restriction, clipped to the attribute's active domain, admits no
	// value (e.g. "Displacement < 2000" when no ship is below 2145).
	Empty bool
	// EmptyBecause names the restrictions that prove emptiness.
	EmptyBecause []query.Restriction
}

// Explain renders the derivation trace: every fact with the rules that
// produced or narrowed it, and every backward description with its rule.
// The rule set resolves rule numbers to their text.
func (r *Result) Explain(set *rules.Set) string {
	var b strings.Builder
	if !r.Conjunctive {
		b.WriteString("no derivation: the query condition is not a pure conjunction\n")
		return b.String()
	}
	if r.Empty {
		for _, why := range r.EmptyBecause {
			fmt.Fprintf(&b, "answer proven empty: no stored value satisfies %s\n", why)
		}
		return b.String()
	}
	for _, f := range r.Facts {
		if !f.Derived {
			fmt.Fprintf(&b, "condition: %s (from the query, snapped to observed values)\n", f)
			continue
		}
		fmt.Fprintf(&b, "derived:   %s\n", f)
		for _, id := range f.Via {
			if rule, ok := set.ByID(id); ok {
				fmt.Fprintf(&b, "           by R%d: %s\n", id, rule)
			} else {
				fmt.Fprintf(&b, "           by R%d\n", id)
			}
		}
	}
	for _, d := range r.Descriptions {
		fmt.Fprintf(&b, "partial:   %s ⇒ %s", d.Clause, d.Consequence)
		if d.Subtype != "" {
			fmt.Fprintf(&b, " (isa %s)", d.Subtype)
		}
		if rule, ok := set.ByID(d.Via); ok {
			fmt.Fprintf(&b, "\n           by R%d: %s\n", d.Via, rule)
		} else {
			fmt.Fprintf(&b, "\n           by R%d\n", d.Via)
		}
	}
	if b.Len() == 0 {
		b.WriteString("no facts or descriptions derived\n")
	}
	return b.String()
}

// Forward returns only the derived facts.
func (r *Result) Forward() []Fact {
	var out []Fact
	for _, f := range r.Facts {
		if f.Derived {
			out = append(out, f)
		}
	}
	return out
}

// Processor derives intensional answers from query analyses using the
// dictionary's rule base, hierarchies, and active domains.
type Processor struct {
	d *dict.Dictionary
}

// New creates a processor over the dictionary.
func New(d *dict.Dictionary) *Processor { return &Processor{d: d} }

// equivalence is a union-find over attribute keys built from the query's
// join predicates and the dictionary's hierarchy-level links: attributes
// equated by a join carry the same facts.
type equivalence struct {
	parent map[string]string
	attrs  map[string]rules.AttrRef
}

func newEquivalence() *equivalence {
	return &equivalence{parent: map[string]string{}, attrs: map[string]rules.AttrRef{}}
}

func (e *equivalence) add(a rules.AttrRef) string {
	k := a.Key()
	if _, ok := e.parent[k]; !ok {
		e.parent[k] = k
		e.attrs[k] = a
	}
	return k
}

func (e *equivalence) find(k string) string {
	for e.parent[k] != k {
		e.parent[k] = e.parent[e.parent[k]]
		k = e.parent[k]
	}
	return k
}

func (e *equivalence) union(a, b rules.AttrRef) {
	ra, rb := e.find(e.add(a)), e.find(e.add(b))
	if ra != rb {
		e.parent[ra] = rb
	}
}

// classOf returns every attribute equivalent to a (including a itself),
// in attribute-key order — members are collected from a map, and their
// order decides which backward-inference rule fires first.
func (e *equivalence) classOf(a rules.AttrRef) []rules.AttrRef {
	root := e.find(e.add(a))
	var keys []string
	for k := range e.parent {
		if e.find(k) == root {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]rules.AttrRef, len(keys))
	for i, k := range keys {
		out[i] = e.attrs[k]
	}
	return out
}

// Derive runs forward inference to fixpoint and then the backward step,
// returning the structured result.
func (p *Processor) Derive(an *query.Analysis) (*Result, error) {
	res := &Result{Conjunctive: an.Conjunctive}
	if !an.Conjunctive {
		return res, nil
	}

	eq := newEquivalence()
	for _, j := range an.Joins {
		eq.union(j.L, j.R)
	}
	// Hierarchy-level links and relationship links are schema-level
	// identities (foreign keys), valid whether or not the query joins the
	// relations explicitly — Example 3 restricts INSTALL.Sonar without
	// joining SONAR, yet rules on SONAR.Sonar must fire.
	for _, l := range p.d.LevelLinks() {
		eq.union(l.From, l.To)
	}
	for _, rel := range p.d.Relationships() {
		for _, l := range rel.Links {
			eq.union(l.From, l.To)
		}
	}

	// facts maps equivalence-class roots to the current fact.
	type entry struct {
		fact Fact
		root string
	}
	facts := map[string]*entry{}

	addFact := func(attr rules.AttrRef, iv rules.Interval, via []int, derived bool) bool {
		root := eq.find(eq.add(attr))
		if cur, ok := facts[root]; ok {
			narrowed := cur.fact.Interval.Intersect(iv)
			if cur.fact.Interval.Subsumes(narrowed) && narrowed.Subsumes(cur.fact.Interval) {
				return false // no change
			}
			cur.fact.Interval = narrowed
			cur.fact.Via = append(cur.fact.Via, via...)
			cur.fact.Derived = cur.fact.Derived || derived
			return true
		}
		facts[root] = &entry{
			fact: Fact{Attr: attr, Interval: iv, Derived: derived, Via: via},
			root: root,
		}
		return true
	}

	// Seed with the query restrictions, snapped to the attribute's
	// observed values (closed world). A restriction no stored value
	// satisfies proves the extensional answer is empty — itself an
	// intensional answer.
	for _, r := range an.Restrictions {
		if !r.HasInterval {
			continue
		}
		iv := r.Interval
		if snapped, ok, err := p.d.SnapToObserved(r.Attr, iv); err == nil {
			if !ok {
				res.Empty = true
				res.EmptyBecause = append(res.EmptyBecause, r)
				continue
			}
			iv = snapped
		}
		addFact(r.Attr, iv, nil, false)
	}
	if res.Empty {
		return res, nil
	}

	// Forward chaining to fixpoint. Each pass scans every rule against
	// every fact in the premise attribute's equivalence class.
	ruleSet := p.d.Rules()
	for pass := 0; pass < ruleSet.Len()+len(an.Restrictions)+1; pass++ {
		changed := false
		for _, r := range ruleSet.Rules() {
			if len(r.LHS) != 1 {
				continue
			}
			premise := r.LHS[0]
			root := eq.find(eq.add(premise.Attr))
			cur, ok := facts[root]
			if !ok {
				continue
			}
			if !premise.Interval().Subsumes(cur.fact.Interval) {
				continue
			}
			if addFact(r.RHS.Attr, r.RHS.Interval(), []int{r.ID}, true) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Collect facts in a stable order: restrictions first, then derived
	// facts by first rule ID.
	var out []Fact
	for _, e := range facts {
		f := e.fact
		f.Subtype = p.subtypeOf(eq, f)
		out = append(out, f)
	}
	sortFacts(out)
	res.Facts = out

	// Backward step: for every fact, rules whose consequence lies within
	// it contribute their premise as a partial description.
	seen := map[int]bool{}
	for _, f := range res.Facts {
		for _, attr := range eq.classOf(f.Attr) {
			for _, r := range ruleSet.WithConsequenceOn(attr) {
				if seen[r.ID] || len(r.LHS) != 1 {
					continue
				}
				if !r.RHS.Interval().Within(f.Interval) {
					continue
				}
				seen[r.ID] = true
				d := Description{
					Clause:      r.LHS[0],
					Consequence: r.RHS,
					Via:         r.ID,
					Aliases:     eq.classOf(r.LHS[0].Attr),
				}
				if name, ok := p.classifyingSubtype(r.RHS); ok {
					d.Subtype = name
				}
				res.Descriptions = append(res.Descriptions, d)
			}
		}
	}
	return res, nil
}

// subtypeOf resolves the subtype a fact pins its object to, looking
// through the attribute's equivalence class for a classifying attribute.
func (p *Processor) subtypeOf(eq *equivalence, f Fact) string {
	if !f.Interval.IsPoint() {
		return ""
	}
	v := f.Interval.Lo.Value
	for _, attr := range eq.classOf(f.Attr) {
		h, ok := p.d.Hierarchy(attr.Relation)
		if !ok || !strings.EqualFold(h.ClassifyingAttr, attr.Attribute) {
			continue
		}
		if name, ok := h.SubtypeFor(v); ok {
			return name
		}
	}
	return ""
}

// classifyingSubtype resolves the subtype named by a point clause on a
// classifying attribute.
func (p *Processor) classifyingSubtype(c rules.Clause) (string, bool) {
	if !c.IsPoint() {
		return "", false
	}
	h, ok := p.d.Hierarchy(c.Attr.Relation)
	if !ok || !strings.EqualFold(h.ClassifyingAttr, c.Attr.Attribute) {
		return "", false
	}
	return h.SubtypeFor(c.Lo)
}

// sortFacts orders original facts before derived ones, then by attribute
// key for determinism.
func sortFacts(fs []Fact) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && factLess(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func factLess(a, b Fact) bool {
	if a.Derived != b.Derived {
		return !a.Derived
	}
	return a.Attr.Key() < b.Attr.Key()
}
