package infer_test

import (
	"strings"
	"testing"

	"intensional/internal/answer"
	"intensional/internal/dict"
	"intensional/internal/induct"
	"intensional/internal/infer"
	"intensional/internal/query"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/shipdb"
)

// harness wires the full pipeline: ship catalog, dictionary, induced
// rules (Nc=3), query processor, inference processor.
type harness struct {
	d *dict.Dictionary
	q *query.Processor
	p *infer.Processor
}

func newHarness(t *testing.T, nc int) *harness {
	t.Helper()
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	set, err := induct.New(d, induct.Options{Nc: nc}).InduceAll()
	if err != nil {
		t.Fatal(err)
	}
	d.SetRules(set)
	return &harness{d: d, q: query.New(cat), p: infer.New(d)}
}

func (h *harness) run(t *testing.T, sql string) (*query.Analysis, *infer.Result) {
	t.Helper()
	_, an, err := h.q.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.p.Derive(an)
	if err != nil {
		t.Fatal(err)
	}
	return an, res
}

const (
	example1 = `SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
		FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`
	example2 = `SELECT SUBMARINE.NAME, SUBMARINE.CLASS
		FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = "SSBN"`
	example3 = `SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
		FROM SUBMARINE, CLASS, INSTALL
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND SUBMARINE.ID = INSTALL.SHIP
		AND INSTALL.SONAR = "BQS-04"`
)

// TestExample1Forward reproduces Example 1: forward inference with R9
// derives "Ship type SSBN has displacement greater than 8000".
func TestExample1Forward(t *testing.T) {
	h := newHarness(t, 3)
	an, res := h.run(t, example1)

	fwd := res.Forward()
	if len(fwd) != 1 {
		t.Fatalf("forward facts = %v, want exactly one (Type=SSBN)", fwd)
	}
	f := fwd[0]
	if !f.Attr.EqualFold(rules.Attr("CLASS", "Type")) || f.Subtype != "SSBN" {
		t.Errorf("derived fact = %s", f)
	}
	if !f.Interval.IsPoint() || !f.Interval.Lo.Value.Equal(relation.String("SSBN")) {
		t.Errorf("derived interval = %s", f.Interval)
	}

	a := answer.Render(an, res, answer.ForwardOnly)
	if !strings.Contains(a.Text(), "type SSBN has Displacement > 8000") {
		t.Errorf("rendered answer = %q", a.Text())
	}
}

// TestExample2Backward reproduces Example 2: backward inference with R5
// derives "Ship Classes in the range of 0101 to 0103 are SSBN", and the
// answer is incomplete (class 1301 missing) because R_new is pruned.
func TestExample2Backward(t *testing.T) {
	h := newHarness(t, 3)
	an, res := h.run(t, example2)

	if len(res.Forward()) != 0 {
		t.Errorf("no forward facts expected, got %v", res.Forward())
	}
	var classDesc *infer.Description
	for i, d := range res.Descriptions {
		if d.Clause.Attr.EqualFold(rules.Attr("CLASS", "Class")) {
			classDesc = &res.Descriptions[i]
		}
	}
	if classDesc == nil {
		t.Fatalf("no backward description on CLASS.Class: %v", res.Descriptions)
	}
	if classDesc.Clause.Lo.Str() != "0101" || classDesc.Clause.Hi.Str() != "0103" {
		t.Errorf("description range = %s", classDesc.Clause)
	}
	if classDesc.Subtype != "SSBN" {
		t.Errorf("description subtype = %q", classDesc.Subtype)
	}
	// Incompleteness: class 1301 is nowhere in the backward descriptions.
	for _, d := range res.Descriptions {
		if d.Clause.Contains(relation.String("1301")) &&
			d.Clause.Attr.EqualFold(rules.Attr("CLASS", "Class")) {
			t.Errorf("class 1301 should be missing at Nc=3, got %s", d)
		}
	}

	a := answer.Render(an, res, answer.BackwardOnly)
	if !strings.Contains(a.Text(), "Classes in the range of 0101 to 0103 are SSBN") {
		t.Errorf("rendered answer = %q", a.Text())
	}
	// Projection ranking: the Class description (projected) precedes the
	// Displacement one (not projected).
	lines := a.Lines
	if len(lines) < 2 || !strings.Contains(lines[0], "Class") || !strings.Contains(lines[1], "Displacement") {
		t.Errorf("ranking: %v", lines)
	}
}

// TestExample2CompleteAtNc1 verifies the paper's note: if R_new
// ("Class = 1301 then SSBN") is maintained, the intensional answer
// becomes complete.
func TestExample2CompleteAtNc1(t *testing.T) {
	h := newHarness(t, 1)
	_, res := h.run(t, example2)
	found := false
	for _, d := range res.Descriptions {
		if d.Clause.Attr.EqualFold(rules.Attr("CLASS", "Class")) &&
			d.Clause.Contains(relation.String("1301")) {
			found = true
		}
	}
	if !found {
		t.Error("at Nc=1 the 1301 description (R_new) should appear")
	}
}

// TestExample3Combined reproduces Example 3: forward inference derives
// Type=SSN (R17) and SonarType=BQS (R11); backward inference from the
// derived BQS fact contributes the class range 0208–0215 (R16).
func TestExample3Combined(t *testing.T) {
	h := newHarness(t, 3)
	an, res := h.run(t, example3)

	var gotSSN, gotBQS bool
	for _, f := range res.Forward() {
		switch f.Subtype {
		case "SSN":
			gotSSN = true
		case "BQS":
			gotBQS = true
		}
	}
	if !gotSSN || !gotBQS {
		t.Fatalf("forward facts missing SSN/BQS: %v", res.Facts)
	}

	var classRange *infer.Description
	for i, d := range res.Descriptions {
		if d.Clause.Attr.EqualFold(rules.Attr("SUBMARINE", "Class")) &&
			d.Clause.Lo.Str() == "0208" && d.Clause.Hi.Str() == "0215" {
			classRange = &res.Descriptions[i]
		}
	}
	if classRange == nil {
		t.Fatalf("backward description 0208..0215 missing: %v", res.Descriptions)
	}
	if classRange.Subtype != "BQS" {
		t.Errorf("class-range consequence subtype = %q", classRange.Subtype)
	}

	a := answer.Render(an, res, answer.Combined)
	text := a.Text()
	for _, want := range []string{"SSN", "BQS", "0208", "0215"} {
		if !strings.Contains(text, want) {
			t.Errorf("combined answer missing %q:\n%s", want, text)
		}
	}
}

// TestForwardSupersetInvariant checks the containment semantics of
// Section 4: instances satisfying the forward intensional answer form a
// superset of the extensional answer.
func TestForwardSupersetInvariant(t *testing.T) {
	h := newHarness(t, 3)
	for _, sql := range []string{example1, example2, example3} {
		ext, an, err := h.q.Run(sql)
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.p.Derive(an)
		if err != nil {
			t.Fatal(err)
		}
		// Every derived fact on CLASS.Type must hold for every answer row
		// that carries a Type column.
		ti, ok := ext.Schema().Index("Type")
		if !ok {
			continue
		}
		for _, f := range res.Forward() {
			if !f.Attr.EqualFold(rules.Attr("CLASS", "Type")) {
				continue
			}
			for _, row := range ext.Rows() {
				if !f.Interval.Contains(row[ti]) {
					t.Errorf("%s: forward fact %s violated by answer row %v", sql, f, row)
				}
			}
		}
	}
}

// TestBackwardSubsetInvariant checks that Example 2's backward
// description is contained in the extensional answer.
func TestBackwardSubsetInvariant(t *testing.T) {
	h := newHarness(t, 3)
	ext, an, err := h.q.Run(example2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.p.Derive(an)
	if err != nil {
		t.Fatal(err)
	}
	ci := ext.Schema().MustIndex("Class")
	answerClasses := map[string]bool{}
	for _, row := range ext.Rows() {
		answerClasses[row[ci].Str()] = true
	}
	for _, d := range res.Descriptions {
		if !d.Clause.Attr.EqualFold(rules.Attr("CLASS", "Class")) {
			continue
		}
		// Every class in the described range that exists in the database
		// must be in the extensional answer.
		cls, err := h.d.Catalog().Get("CLASS")
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range cls.Rows() {
			v := row[cls.Schema().MustIndex("Class")]
			if d.Clause.Contains(v) && !answerClasses[v.Str()] {
				t.Errorf("backward description %s includes non-answer class %s", d, v)
			}
		}
	}
}

// TestNonConjunctiveYieldsNothing checks the guard for disjunctive
// queries.
func TestNonConjunctiveYieldsNothing(t *testing.T) {
	h := newHarness(t, 3)
	an, res := h.run(t, `SELECT Class FROM CLASS WHERE Type = "SSBN" OR Displacement > 8000`)
	if res.Conjunctive {
		t.Error("result should be flagged non-conjunctive")
	}
	if len(res.Facts) != 0 || len(res.Descriptions) != 0 {
		t.Errorf("no inference expected: %v %v", res.Facts, res.Descriptions)
	}
	a := answer.Render(an, res, answer.Combined)
	if !strings.Contains(a.Text(), "not a pure conjunction") {
		t.Errorf("rendered = %q", a.Text())
	}
}

// TestNoApplicableRules: a condition spanning both ship types (observed
// displacements 6000..30000 cross the SSN/SSBN boundary) fits no single
// premise, so nothing is derived.
func TestNoApplicableRules(t *testing.T) {
	h := newHarness(t, 3)
	an, res := h.run(t, `SELECT Class FROM CLASS WHERE Displacement > 5000`)
	if n := len(res.Forward()); n != 0 {
		t.Errorf("forward facts = %d, want 0: %v", n, res.Forward())
	}
	a := answer.Render(an, res, answer.Combined)
	if !strings.Contains(a.Text(), "No intensional answer could be derived") {
		t.Errorf("rendered = %q", a.Text())
	}
}

// TestEmptyAnswerDetection: a condition that clips to an empty interval
// against the active domain proves the answer empty — itself an
// intensional answer.
func TestEmptyAnswerDetection(t *testing.T) {
	h := newHarness(t, 3)
	an, res := h.run(t, `SELECT Class FROM CLASS WHERE Displacement < 2000`)
	if !res.Empty || len(res.EmptyBecause) != 1 {
		t.Fatalf("empty = %v, because = %v", res.Empty, res.EmptyBecause)
	}
	if len(res.Facts) != 0 || len(res.Descriptions) != 0 {
		t.Errorf("no facts expected for an empty answer")
	}
	a := answer.Render(an, res, answer.Combined)
	if !strings.Contains(a.Text(), "The answer is empty") {
		t.Errorf("rendered = %q", a.Text())
	}
}

// TestPaperRulesInference re-runs Example 1 with the verbatim paper rule
// set (IDs R1–R17) instead of induced rules, pinning the rule provenance.
func TestPaperRulesInference(t *testing.T) {
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	d.SetRules(shipdb.PaperRules())
	q := query.New(cat)
	_, an, err := q.Run(example1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := infer.New(d).Derive(an)
	if err != nil {
		t.Fatal(err)
	}
	fwd := res.Forward()
	if len(fwd) != 1 || len(fwd[0].Via) != 1 || fwd[0].Via[0] != 9 {
		t.Fatalf("Example 1 should fire exactly R9: %v", fwd)
	}
}

// TestExplainPaths covers the derivation-trace rendering for the guard
// branches (non-conjunctive, empty, nothing derived).
func TestExplainPaths(t *testing.T) {
	h := newHarness(t, 3)
	an, res := h.run(t, `SELECT Class FROM CLASS WHERE Type = "SSBN" OR Type = "SSN"`)
	_ = an
	if got := res.Explain(h.d.Rules()); !strings.Contains(got, "not a pure conjunction") {
		t.Errorf("explain = %q", got)
	}
	_, res = h.run(t, `SELECT Class FROM CLASS WHERE Displacement < 2000`)
	if got := res.Explain(h.d.Rules()); !strings.Contains(got, "answer proven empty") {
		t.Errorf("explain = %q", got)
	}
	_, res = h.run(t, `SELECT Class FROM CLASS WHERE Displacement > 5000`)
	got := res.Explain(h.d.Rules())
	if !strings.Contains(got, "condition: CLASS.Displacement") {
		t.Errorf("explain = %q", got)
	}
	// A rule ID not present in the set still renders.
	res.Descriptions = append(res.Descriptions, infer.Description{
		Clause:      rules.PointClause(rules.Attr("CLASS", "Class"), relation.String("0101")),
		Consequence: rules.PointClause(rules.Attr("CLASS", "Type"), relation.String("SSBN")),
		Via:         999,
	})
	if got := res.Explain(h.d.Rules()); !strings.Contains(got, "by R999") {
		t.Errorf("explain = %q", got)
	}
}

// TestFactStringAndDescriptionString covers the display forms.
func TestFactStringAndDescriptionString(t *testing.T) {
	f := infer.Fact{
		Attr:     rules.Attr("CLASS", "Type"),
		Interval: rules.Point(relation.String("SSBN")),
		Subtype:  "SSBN",
	}
	if got := f.String(); !strings.Contains(got, "isa SSBN") {
		t.Errorf("Fact.String = %q", got)
	}
	d := infer.Description{
		Clause:      rules.RangeClause(rules.Attr("CLASS", "Class"), relation.String("0101"), relation.String("0103")),
		Consequence: rules.PointClause(rules.Attr("CLASS", "Type"), relation.String("SSBN")),
		Via:         5,
	}
	if got := d.String(); !strings.Contains(got, "via R5") {
		t.Errorf("Description.String = %q", got)
	}
}
