package infer_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"intensional/internal/dict"
	"intensional/internal/induct"
	"intensional/internal/infer"
	"intensional/internal/query"
	"intensional/internal/relation"
	"intensional/internal/storage"
)

// randomBandDB builds a single-relation database R(X, T) where T is a
// deterministic banding of X (so induction finds clean rules), with a
// hierarchy classified by T.
func randomBandDB(rr *rand.Rand) (*storage.Catalog, *dict.Dictionary, []int64, error) {
	// Random band edges over 0..99.
	nBands := 2 + rr.Intn(4)
	edgeSet := map[int64]bool{}
	for len(edgeSet) < nBands-1 {
		edgeSet[int64(1+rr.Intn(98))] = true
	}
	var edges []int64
	for e := range edgeSet {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	band := func(x int64) string {
		b := 0
		for _, e := range edges {
			if x >= e {
				b++
			}
		}
		return fmt.Sprintf("band%d", b)
	}

	cat := storage.NewCatalog()
	r := relation.New("R", relation.MustSchema(
		relation.Column{Name: "X", Type: relation.TInt},
		relation.Column{Name: "T", Type: relation.TString},
	))
	n := 5 + rr.Intn(60)
	for i := 0; i < n; i++ {
		x := int64(rr.Intn(100))
		r.MustInsert(relation.Int(x), relation.String(band(x)))
	}
	cat.Put(r)
	d := dict.New(cat)
	h := &dict.Hierarchy{Object: "R", ClassifyingAttr: "T"}
	for b := 0; b < nBands; b++ {
		name := fmt.Sprintf("band%d", b)
		h.Subtypes = append(h.Subtypes, dict.Subtype{Name: name, Value: relation.String(name)})
	}
	if err := d.AddHierarchy(h); err != nil {
		return nil, nil, nil, err
	}
	return cat, d, edges, nil
}

// TestInferenceSoundOnRandomDBsProperty: on random banded databases with
// induced rules, for random conditions,
//
//   - every forward fact holds for every tuple of the extensional answer
//     (the "contains the answer" direction of Section 4), and
//   - every backward description's covered tuples satisfy the
//     description's consequence (the rule-soundness direction).
func TestInferenceSoundOnRandomDBsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		cat, d, _, err := randomBandDB(rr)
		if err != nil {
			return false
		}
		set, err := induct.New(d, induct.Options{Nc: 1 + rr.Intn(3)}).InduceAll()
		if err != nil {
			return false
		}
		d.SetRules(set)
		p := infer.New(d)
		q := query.New(cat)

		ops := []string{"=", "<", "<=", ">", ">="}
		for trial := 0; trial < 4; trial++ {
			op := ops[rr.Intn(len(ops))]
			v := rr.Intn(100)
			sql := fmt.Sprintf("SELECT X, T FROM R WHERE X %s %d", op, v)
			ext, an, err := q.Run(sql)
			if err != nil {
				return false
			}
			res, err := p.Derive(an)
			if err != nil {
				return false
			}
			if res.Empty {
				if ext.Len() != 0 {
					t.Logf("seed %d: declared empty but %d answers", seed, ext.Len())
					return false
				}
				continue
			}
			xi := ext.Schema().MustIndex("X")
			ti := ext.Schema().MustIndex("T")
			// Forward facts contain the answer.
			for _, f := range res.Forward() {
				for _, row := range ext.Rows() {
					var val relation.Value
					switch f.Attr.Attribute {
					case "X":
						val = row[xi]
					case "T":
						val = row[ti]
					default:
						continue
					}
					if !f.Interval.Contains(val) {
						t.Logf("seed %d: fact %s violated by answer row %v (query %s)",
							seed, f, row, sql)
						return false
					}
				}
			}
			// Backward descriptions are sound rules on the data.
			rel, _ := cat.Get("R")
			rxi := rel.Schema().MustIndex("X")
			rti := rel.Schema().MustIndex("T")
			for _, desc := range res.Descriptions {
				for _, row := range rel.Rows() {
					var lv, cv relation.Value
					switch desc.Clause.Attr.Attribute {
					case "X":
						lv = row[rxi]
					case "T":
						lv = row[rti]
					default:
						continue
					}
					switch desc.Consequence.Attr.Attribute {
					case "X":
						cv = row[rxi]
					case "T":
						cv = row[rti]
					default:
						continue
					}
					if desc.Clause.Contains(lv) && !desc.Consequence.Contains(cv) {
						t.Logf("seed %d: description %s unsound on row %v", seed, desc, row)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
