// Package plan defines the typed query-plan tree the Prepare layer
// produces before execution and the EXPLAIN surfaces render. Following
// the Parse → Prepare → Execute split of production SQL engines, a Plan
// is built once per (snapshot, normalized SQL) pair, cached as a
// prepared statement, and describes exactly the access paths, join
// steps, and filters the executor will run — the planner and the
// executor share one plan structure, so EXPLAIN cannot drift from
// execution.
//
// Every node is typed in the sense of the polymorphic relational
// algebra: it exposes the schema (column names and types) of the rows
// it produces, so consumers can type-check a plan bottom-up without
// executing it. Estimated cardinalities come from index range counts
// (exact at plan time) scaled by heuristic selectivities for residual
// predicates.
//
// The plan also records the semantic rewrites applied while building it
// — the paper's induced rules acting as a query accelerator: provably
// empty restrictions short-circuit to an Empty node, rule-implied
// restrictions appear as extra pushed-down conjuncts, and redundant
// restrictions are dropped from the residual filter. Rewrites make the
// intensional knowledge visible in the plan.
package plan

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Column is one typed output column of a plan node.
type Column struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Node is one operator of the plan tree. Implementations are the
// concrete shapes below; Schema is the node's output type.
type Node interface {
	// Kind names the operator ("IndexScan", "HashJoin", ...).
	Kind() string
	// Label is the one-line operator description EXPLAIN prints after
	// the kind.
	Label() string
	// EstRows is the estimated output cardinality.
	EstRows() int
	// Schema is the node's output columns, in order.
	Schema() []Column
	// Children returns the input nodes, outermost first.
	Children() []Node
}

// FullScan reads every row of a relation.
type FullScan struct {
	Relation string
	Binding  string // range-variable / alias the relation is scanned as
	Est      int
	Cols     []Column
	// Fallback, when non-empty, records why a usable index was abandoned
	// for this scan (stale index, incomparable probe) — the reason the
	// plannerIndexFallbacks counter ticked.
	Fallback string
}

func (n *FullScan) Kind() string { return "FullScan" }

func (n *FullScan) Label() string {
	l := n.Relation
	if n.Binding != "" && !strings.EqualFold(n.Binding, n.Relation) {
		l += " as " + n.Binding
	}
	if n.Fallback != "" {
		l += " (index fallback: " + n.Fallback + ")"
	}
	return l
}
func (n *FullScan) EstRows() int     { return n.Est }
func (n *FullScan) Schema() []Column { return n.Cols }
func (n *FullScan) Children() []Node { return nil }

// IndexScan reads the rows a sorted secondary index selects for one
// "column op value" condition.
type IndexScan struct {
	Relation string
	Binding  string
	Column   string
	Op       string
	Value    string // rendered constant
	Est      int    // exact range count at plan time
	Cols     []Column
	// Implied marks an access condition that came from a semopt-implied
	// restriction rather than the query text.
	Implied bool
}

func (n *IndexScan) Kind() string { return "IndexScan" }

func (n *IndexScan) Label() string {
	l := fmt.Sprintf("%s on %s %s %s", n.Relation, n.Column, n.Op, n.Value)
	if n.Binding != "" && !strings.EqualFold(n.Binding, n.Relation) {
		l = fmt.Sprintf("%s as %s on %s %s %s", n.Relation, n.Binding, n.Column, n.Op, n.Value)
	}
	if n.Implied {
		l += " [implied]"
	}
	return l
}
func (n *IndexScan) EstRows() int     { return n.Est }
func (n *IndexScan) Schema() []Column { return n.Cols }
func (n *IndexScan) Children() []Node { return nil }

// Filter applies predicates to its input.
type Filter struct {
	Conds []string
	Est   int
	Input Node
}

func (n *Filter) Kind() string     { return "Filter" }
func (n *Filter) Label() string    { return strings.Join(n.Conds, " and ") }
func (n *Filter) EstRows() int     { return n.Est }
func (n *Filter) Schema() []Column { return n.Input.Schema() }
func (n *Filter) Children() []Node { return []Node{n.Input} }

// HashJoin equi-joins its inputs: the right side is hashed on the join
// keys and probed with the left.
type HashJoin struct {
	On          []string // "l.attr = r.attr" conditions
	Est         int
	Left, Right Node
}

func (n *HashJoin) Kind() string  { return "HashJoin" }
func (n *HashJoin) Label() string { return strings.Join(n.On, " and ") }
func (n *HashJoin) EstRows() int  { return n.Est }
func (n *HashJoin) Schema() []Column {
	return append(append([]Column(nil), n.Left.Schema()...), n.Right.Schema()...)
}
func (n *HashJoin) Children() []Node { return []Node{n.Left, n.Right} }

// CrossJoin pairs every left row with every right row — the fallback
// when no equality conjunct links a variable to the bound set.
type CrossJoin struct {
	Est         int
	Left, Right Node
}

func (n *CrossJoin) Kind() string  { return "CrossJoin" }
func (n *CrossJoin) Label() string { return "" }
func (n *CrossJoin) EstRows() int  { return n.Est }
func (n *CrossJoin) Schema() []Column {
	return append(append([]Column(nil), n.Left.Schema()...), n.Right.Schema()...)
}
func (n *CrossJoin) Children() []Node { return []Node{n.Left, n.Right} }

// Project narrows the input to the target columns.
type Project struct {
	Cols  []Column
	Est   int
	Input Node
}

func (n *Project) Kind() string { return "Project" }
func (n *Project) Label() string {
	names := make([]string, len(n.Cols))
	for i, c := range n.Cols {
		names[i] = c.Name
	}
	return strings.Join(names, ", ")
}
func (n *Project) EstRows() int     { return n.Est }
func (n *Project) Schema() []Column { return n.Cols }
func (n *Project) Children() []Node { return []Node{n.Input} }

// Distinct removes duplicate rows.
type Distinct struct {
	Input Node
}

func (n *Distinct) Kind() string     { return "Distinct" }
func (n *Distinct) Label() string    { return "" }
func (n *Distinct) EstRows() int     { return n.Input.EstRows() }
func (n *Distinct) Schema() []Column { return n.Input.Schema() }
func (n *Distinct) Children() []Node { return []Node{n.Input} }

// Sort orders the input by the given keys.
type Sort struct {
	Keys  []string // column names, "desc"-suffixed when descending
	Input Node
}

func (n *Sort) Kind() string     { return "Sort" }
func (n *Sort) Label() string    { return strings.Join(n.Keys, ", ") }
func (n *Sort) EstRows() int     { return n.Input.EstRows() }
func (n *Sort) Schema() []Column { return n.Input.Schema() }
func (n *Sort) Children() []Node { return []Node{n.Input} }

// Aggregate groups the input and folds aggregate functions over each
// group.
type Aggregate struct {
	Items   []string // output items, e.g. "count(*)", "avg_displacement"
	GroupBy []string
	Est     int
	Cols    []Column
	Input   Node
}

func (n *Aggregate) Kind() string { return "Aggregate" }

func (n *Aggregate) Label() string {
	l := strings.Join(n.Items, ", ")
	if len(n.GroupBy) > 0 {
		l += " group by " + strings.Join(n.GroupBy, ", ")
	}
	return l
}
func (n *Aggregate) EstRows() int     { return n.Est }
func (n *Aggregate) Schema() []Column { return n.Cols }
func (n *Aggregate) Children() []Node { return []Node{n.Input} }

// Empty produces no rows: the semantic optimizer proved the answer
// empty from the serving rules and active domains, so execution touches
// no relation at all.
type Empty struct {
	Reason string
	Cols   []Column
}

func (n *Empty) Kind() string     { return "Empty" }
func (n *Empty) Label() string    { return n.Reason }
func (n *Empty) EstRows() int     { return 0 }
func (n *Empty) Schema() []Column { return n.Cols }
func (n *Empty) Children() []Node { return nil }

// Rewrite records one semantic-optimization decision taken while
// planning — the visible trace of the rule base accelerating the query.
type Rewrite struct {
	// Kind is "empty", "implied", or "redundant".
	Kind string `json:"kind"`
	// Detail is the human-readable condition, e.g. the implied
	// restriction added or the redundant one dropped.
	Detail string `json:"detail"`
}

// Plan is the prepared form of one query.
type Plan struct {
	// SQL is the normalized statement text the plan was prepared from —
	// the prepared-statement cache key.
	SQL string
	// Root is the plan tree.
	Root Node
	// Rewrites lists the semantic-optimization decisions applied.
	Rewrites []Rewrite
}

// EstRows is the plan's estimated result cardinality.
func (p *Plan) EstRows() int {
	if p.Root == nil {
		return 0
	}
	return p.Root.EstRows()
}

// String renders the plan as an indented operator tree, rewrites first.
func (p *Plan) String() string {
	var b strings.Builder
	for _, rw := range p.Rewrites {
		fmt.Fprintf(&b, "rewrite [%s]: %s\n", rw.Kind, rw.Detail)
	}
	var walk func(n Node, prefix string, last bool, root bool)
	walk = func(n Node, prefix string, last bool, root bool) {
		line := n.Kind()
		if l := n.Label(); l != "" {
			line += " [" + l + "]"
		}
		line += fmt.Sprintf(" (est %d)", n.EstRows())
		if root {
			b.WriteString(line + "\n")
		} else {
			branch := "├─ "
			if last {
				branch = "└─ "
			}
			b.WriteString(prefix + branch + line + "\n")
		}
		kids := n.Children()
		childPrefix := prefix
		if !root {
			if last {
				childPrefix += "   "
			} else {
				childPrefix += "│  "
			}
		}
		for i, k := range kids {
			walk(k, childPrefix, i == len(kids)-1, false)
		}
	}
	if p.Root != nil {
		walk(p.Root, "", true, true)
	}
	return b.String()
}

// WireNode is the JSON shape of a plan node, kind-tagged and recursive,
// for the POST /explain response.
type WireNode struct {
	Kind     string     `json:"kind"`
	Label    string     `json:"label,omitempty"`
	EstRows  int        `json:"estRows"`
	Schema   []Column   `json:"schema,omitempty"`
	Children []WireNode `json:"children,omitempty"`
}

// ToWire converts a node tree to its JSON shape.
func ToWire(n Node) WireNode {
	w := WireNode{Kind: n.Kind(), Label: n.Label(), EstRows: n.EstRows(), Schema: n.Schema()}
	for _, k := range n.Children() {
		w.Children = append(w.Children, ToWire(k))
	}
	return w
}

// MarshalJSON renders the whole plan in wire form.
func (p *Plan) MarshalJSON() ([]byte, error) {
	out := struct {
		SQL      string    `json:"sql"`
		EstRows  int       `json:"estRows"`
		Rewrites []Rewrite `json:"rewrites,omitempty"`
		Root     *WireNode `json:"root,omitempty"`
		Text     string    `json:"text"`
	}{SQL: p.SQL, EstRows: p.EstRows(), Rewrites: p.Rewrites, Text: p.String()}
	if p.Root != nil {
		w := ToWire(p.Root)
		out.Root = &w
	}
	return json.Marshal(out)
}
