// Package wal is an append-only write-ahead log of logical mutations.
// Each record is length-prefixed and checksummed, and every append is
// fsync'd before it returns, so a mutation acknowledged by the write
// path survives a crash. Startup replay (Open) scans the log, hands the
// complete records back to the caller, and truncates a torn tail — the
// crash-recovery contract is "everything up to the last complete
// record, nothing after it". A bad record that is followed by a valid
// one is not a torn tail: appends are sequential and fsync'd, so data
// after a record proves that record was once acknowledged as durable,
// and Open refuses with ErrCorrupt instead of silently dropping
// committed mutations.
//
// The log stores opaque payloads; the core layer encodes statement
// batches into them. Checkpointing composes with storage.WriteAtomic:
// after the catalog has been atomically saved, Reset truncates the log
// back to its header, because every logged mutation is now in the
// snapshot on disk.
//
// On-disk format:
//
//	magic   "IQPWAL1\n"                      (8 bytes, written at create)
//	record  uint32 payload length (big endian)
//	        uint32 IEEE CRC-32 of the payload
//	        payload bytes
//	record  ...
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"intensional/internal/fault"
)

var magic = []byte("IQPWAL1\n")

const headerLen = 8 // uint32 length + uint32 CRC

// HeaderSize is the byte offset of the first record — where a tailing
// reader (Tail) starts.
const HeaderSize = int64(8) // len(magic)

// maxRecord bounds a single record so a corrupt length prefix cannot
// drive a multi-gigabyte allocation during replay; anything larger is
// treated as a torn tail.
const maxRecord = 64 << 20

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// ErrCorrupt is returned by Open when a record fails validation but a
// structurally valid record follows it. A torn tail can only be the
// final (unacknowledged) append; a valid record after a bad one means
// fsync-acknowledged data would be lost, which must surface to the
// operator rather than be absorbed by truncation.
var ErrCorrupt = errors.New("wal: corrupt record before the log tail")

// ErrPoisoned is returned by Append after an earlier fsync (or
// unrecoverable write) failed. A failed fsync leaves the kernel's view
// of the file unknowable — dirty pages may have been dropped — so
// continuing to append would build on state that may not exist.
// Recovery is Reset (which rewrites the file from scratch and syncs,
// making its contents known again) or reopening the log.
var ErrPoisoned = errors.New("wal: log poisoned by an earlier append failure; checkpoint or reopen to recover")

// ErrTruncated is returned by Tail when the log has been reset since the
// reader's epoch: the bytes at the reader's offset no longer describe
// the records it had been following. The reader restarts from HeaderSize
// with the returned epoch; records that lived in the pre-reset log are
// gone from disk (the caller's retention layer, if any, must already
// hold them).
var ErrTruncated = errors.New("wal: log reset since the reader's offset")

// Log is an open write-ahead log. Append, Size, Reset, and Close are
// safe for concurrent use; in the system there is one writer (the core
// mutation path, serialized by its own lock) plus metric readers.
type Log struct {
	path string
	mu   sync.Mutex
	f    fault.File // guarded by mu
	size int64      // guarded by mu; current file length in bytes
	// poisoned records the first fsync/write failure that left the
	// file's durable state unknown; while set, Append refuses with
	// ErrPoisoned. guarded by mu.
	poisoned error
	// epoch counts log generations: it increments every time the file is
	// rewritten from scratch (Reset, or a fresh create), so a tailing
	// reader can tell "new records appended past my offset" from "the
	// log I was reading no longer exists". guarded by mu.
	epoch uint64
}

// Open opens (creating if absent) the log at path and replays it,
// returning the payloads of every complete record in append order. A
// torn tail — a partial header, a length running past EOF, a checksum
// mismatch or absurd length on the final append — is truncated away so
// the log ends at the last complete record; the data it described was
// never acknowledged as durable. A bad record with a valid record
// after it is mid-log corruption, not a tear, and yields ErrCorrupt.
func Open(path string) (*Log, [][]byte, error) {
	return OpenFS(fault.OS, path)
}

// OpenFS is Open through an explicit filesystem — the fault-injection
// seam. Production callers use Open (which passes fault.OS); tests and
// the chaos harness pass a fault.Injector to fail or tear individual
// operations.
func OpenFS(fsys fault.FS, path string) (*Log, [][]byte, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{path: path, f: f}
	entries, err := l.recover()
	if err != nil {
		if cerr := f.Close(); cerr != nil {
			err = fmt.Errorf("%w (close: %v)", err, cerr)
		}
		return nil, nil, err
	}
	// A freshly created log's directory entry must outlive a crash
	// before any append is acknowledged; sync the parent once at open.
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		if cerr := f.Close(); cerr != nil {
			err = fmt.Errorf("%w (close: %v)", err, cerr)
		}
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	return l, entries, nil
}

// recover scans the freshly opened file, validating the magic and every
// record. An incomplete or corrupt record ends the scan: if nothing
// valid follows it is a torn tail and is truncated; if a valid record
// follows, recovery refuses with ErrCorrupt (see checkCorruption). It
// runs from Open, before the Log is visible to any other goroutine.
//
//ilint:locked mu
func (l *Log) recover() ([][]byte, error) {
	info, err := l.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("wal: stat: %w", err)
	}
	if info.Size() < int64(len(magic)) {
		// Empty, or a crash during creation before the magic landed; no
		// record can exist. Start the file over.
		if err := l.restart(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	head := make([]byte, len(magic))
	if _, err := l.f.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("wal: read magic: %w", err)
	}
	if string(head) != string(magic) {
		return nil, fmt.Errorf("wal: %s is not a WAL file (bad magic %q)", l.path, head)
	}

	var entries [][]byte
	off := int64(len(magic))
	hdr := make([]byte, headerLen)
	for {
		n, err := l.f.ReadAt(hdr, off)
		if err == io.EOF && n == 0 {
			break // clean end
		}
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("wal: read header: %w", err)
		}
		if n < headerLen {
			break // torn header
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if length > maxRecord {
			// Corrupt length: the record's extent cannot be trusted, so
			// whether this is a torn final append or mid-log damage is
			// decided by whether anything valid follows.
			if err := l.checkCorruption(off, info.Size()); err != nil {
				return nil, err
			}
			break
		}
		payload := make([]byte, length)
		pn, err := l.f.ReadAt(payload, off+headerLen)
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("wal: read payload: %w", err)
		}
		if pn < int(length) {
			break // torn payload, reaches EOF
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if err := l.checkCorruption(off, info.Size()); err != nil {
				return nil, err
			}
			break
		}
		entries = append(entries, payload)
		off += headerLen + int64(length)
	}
	if off != info.Size() {
		// Drop the torn tail so the next append starts at a record
		// boundary.
		if err := l.f.Truncate(off); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return nil, fmt.Errorf("wal: sync: %w", err)
		}
	}
	l.size = off
	return entries, nil
}

// checkCorruption decides whether a bad record at off is a torn tail
// (truncatable) or mid-log corruption (a hard error). A torn write can
// only be the final append, so if any structurally valid record —
// sane non-zero length, fully present payload, matching checksum —
// starts anywhere after off, the bad record was once acknowledged as
// durable and truncating would silently discard committed data.
// Zero-length candidates are ignored: a crash can extend the file with
// zeros, and 8 zero bytes decode as an empty record with a matching
// (zero) checksum. It runs from recover, before the Log is shared.
//
//ilint:locked mu
func (l *Log) checkCorruption(off, size int64) error {
	if off+1 >= size {
		return nil
	}
	tail := make([]byte, size-off)
	if _, err := l.f.ReadAt(tail, off); err != nil && err != io.EOF {
		return fmt.Errorf("wal: read tail: %w", err)
	}
	for o := int64(1); o+headerLen <= int64(len(tail)); o++ {
		length := int64(binary.BigEndian.Uint32(tail[o : o+4]))
		sum := binary.BigEndian.Uint32(tail[o+4 : o+8])
		if length == 0 || length > maxRecord {
			continue
		}
		end := o + headerLen + length
		if end > int64(len(tail)) {
			continue
		}
		if crc32.ChecksumIEEE(tail[o+headerLen:end]) == sum {
			return fmt.Errorf("%w: bad record at offset %d, but a valid record follows at offset %d — refusing to truncate acknowledged data", ErrCorrupt, off, off+o)
		}
	}
	return nil
}

// restart truncates the file to zero and writes a fresh magic header.
// Success makes the file's entire (8-byte) content freshly written and
// synced — fully known — so it clears any poison; failure poisons,
// because the file was left mid-rewrite.
//
//ilint:locked mu
func (l *Log) restart() error {
	if err := l.f.Truncate(0); err != nil {
		l.poisoned = err
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.WriteAt(magic, 0); err != nil {
		l.poisoned = err
		return fmt.Errorf("wal: write magic: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.poisoned = err
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.size = int64(len(magic))
	l.poisoned = nil
	l.epoch++
	return nil
}

// Append writes one record and fsyncs. When it returns nil the record
// is durable. A failed write is rewound (truncated back to the previous
// length) so no torn record is buried by the next append; if the rewind
// also fails, or the fsync fails, the handle is poisoned: the kernel's
// view of the file is unknown (a failed fsync may have dropped dirty
// pages), so further appends refuse with ErrPoisoned until a successful
// Reset rewrites the file or the log is reopened. Retrying on such a
// handle could acknowledge a record whose bytes never reach the disk.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	if l.poisoned != nil {
		return fmt.Errorf("%w (cause: %v)", ErrPoisoned, l.poisoned)
	}
	rec := make([]byte, headerLen+len(payload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[headerLen:], payload)
	if _, err := l.f.WriteAt(rec, l.size); err != nil {
		// Best-effort rewind; if the truncate fails too, the tail state
		// is unknown and the handle is poisoned.
		if terr := l.f.Truncate(l.size); terr != nil {
			l.poisoned = err
			return fmt.Errorf("wal: append: %w (rewind also failed: %v)", err, terr)
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.poisoned = err
		return fmt.Errorf("wal: append sync: %w", err)
	}
	l.size += int64(len(rec))
	return nil
}

// Poisoned reports the failure that poisoned the log handle, or nil.
func (l *Log) Poisoned() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.poisoned
}

// Size returns the bytes of logged records — the file length minus the
// magic header, so a freshly created or just-reset log reports 0. This
// is the quantity auto-checkpointing thresholds watch.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.size < int64(len(magic)) {
		return 0
	}
	return l.size - int64(len(magic))
}

// Epoch returns the log's current generation. It increments on every
// Reset (and on creating a fresh file), pairing with Tail: a reader
// presents the epoch it last read under, and a mismatch means its byte
// offset is meaningless in the rewritten file.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// Tail reads the complete records starting at byte offset off — the
// incremental reader that follows the log while the writer appends. It
// returns the payloads in append order, the offset just past the last
// returned record (pass it back as the next off), and the current
// epoch. A reader starts at HeaderSize with the epoch from Epoch (or 0
// with the epoch from a previous Tail); at exact EOF it returns an
// empty slice and the same offset, never an error.
//
// Every byte below the log's acknowledged size is a complete record
// (appends land atomically under the log's lock and torn tails are
// truncated at open), so Tail never observes a partial record; a decode
// failure below the acknowledged size is real corruption and surfaces
// as an error. If the log was reset since the reader's epoch, Tail
// returns ErrTruncated along with the current epoch; the reader
// restarts from HeaderSize.
func (l *Log) Tail(off int64, epoch uint64) (payloads [][]byte, next int64, curEpoch uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil, off, epoch, ErrClosed
	}
	if epoch != l.epoch || off < HeaderSize || off > l.size {
		return nil, HeaderSize, l.epoch, ErrTruncated
	}
	hdr := make([]byte, headerLen)
	for off+headerLen <= l.size {
		if _, err := l.f.ReadAt(hdr, off); err != nil {
			return nil, off, l.epoch, fmt.Errorf("wal: tail header: %w", err)
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if length > maxRecord || off+headerLen+int64(length) > l.size {
			return nil, off, l.epoch, fmt.Errorf("wal: tail: record at offset %d overruns the acknowledged size %d", off, l.size)
		}
		payload := make([]byte, length)
		if _, err := l.f.ReadAt(payload, off+headerLen); err != nil {
			return nil, off, l.epoch, fmt.Errorf("wal: tail payload: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, off, l.epoch, fmt.Errorf("wal: tail: checksum mismatch at offset %d below the acknowledged size", off)
		}
		payloads = append(payloads, payload)
		off += headerLen + int64(length)
	}
	return payloads, off, l.epoch, nil
}

// Reset truncates the log back to its header. Callers invoke it only
// after the state the log protects has been durably persisted elsewhere
// (the checkpoint protocol). A successful Reset also recovers a
// poisoned handle: the rewrite-and-sync makes the file's whole content
// known-good again.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	return l.restart()
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close syncs and closes the log. Further operations return ErrClosed.
// A poisoned handle skips the sync — nothing on it is trustworthy to
// flush; replay on the next open reconciles.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if l.poisoned == nil {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}
