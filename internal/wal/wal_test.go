package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"intensional/internal/fault"
)

func openT(t *testing.T, path string) (*Log, [][]byte) {
	t.Helper()
	l, entries, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, entries
}

func appendT(t *testing.T, l *Log, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if err := l.Append([]byte(p)); err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
	}
}

func closeT(t *testing.T, l *Log) {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func wantEntries(t *testing.T, got [][]byte, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Errorf("entry %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAppendReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	l, entries := openT(t, path)
	wantEntries(t, entries)
	appendT(t, l, "one", "two", `{"stmts":["INSERT INTO t VALUES (1)"]}`)
	closeT(t, l)

	l2, entries := openT(t, path)
	wantEntries(t, entries, "one", "two", `{"stmts":["INSERT INTO t VALUES (1)"]}`)
	// The log stays appendable after replay.
	appendT(t, l2, "four")
	closeT(t, l2)
	_, entries = openT(t, path)
	wantEntries(t, entries, "one", "two", `{"stmts":["INSERT INTO t VALUES (1)"]}`, "four")
}

func TestEmptyPayloadAndLargePayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	big := bytes.Repeat([]byte("x"), 1<<20)
	if err := l.Append(nil); err != nil {
		t.Fatalf("empty append: %v", err)
	}
	if err := l.Append(big); err != nil {
		t.Fatalf("big append: %v", err)
	}
	closeT(t, l)
	_, entries := openT(t, path)
	if len(entries) != 2 || len(entries[0]) != 0 || !bytes.Equal(entries[1], big) {
		t.Fatalf("replay mismatch: %d entries", len(entries))
	}
}

func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	appendT(t, l, "a", "b")
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if l.Size() != 0 {
		t.Errorf("size after reset = %d, want 0 (records only)", l.Size())
	}
	appendT(t, l, "c")
	closeT(t, l)
	_, entries := openT(t, path)
	wantEntries(t, entries, "c")
}

// chop truncates the file to size-n bytes, simulating a crash that tore
// the final record.
func chop(t *testing.T, path string, n int64) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-n); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryTornPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	appendT(t, l, "committed-1", "committed-2", "torn-record")
	closeT(t, l)
	chop(t, path, 4) // cut into the last payload

	l2, entries := openT(t, path)
	wantEntries(t, entries, "committed-1", "committed-2")
	// The tail was truncated; appends land on a clean boundary.
	appendT(t, l2, "after-recovery")
	closeT(t, l2)
	_, entries = openT(t, path)
	wantEntries(t, entries, "committed-1", "committed-2", "after-recovery")
}

func TestRecoveryTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	appendT(t, l, "keep")
	appendT(t, l, "gone")
	closeT(t, l)
	chop(t, path, int64(headerLen+len("gone")-3)) // leave 3 header bytes

	_, entries := openT(t, path)
	wantEntries(t, entries, "keep")
}

func TestRecoveryCorruptChecksum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	appendT(t, l, "good", "flipped")
	closeT(t, l)

	// Flip one payload byte of the final record.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := f.Stat()
	if _, err := f.WriteAt([]byte{'X'}, info.Size()-1); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, entries := openT(t, path)
	wantEntries(t, entries, "good")
}

func TestRecoveryAbsurdLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	appendT(t, l, "good")
	closeT(t, l)

	// Append a record claiming a multi-gigabyte payload.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, headerLen)
	binary.BigEndian.PutUint32(hdr[0:4], 1<<31)
	binary.BigEndian.PutUint32(hdr[4:8], 0)
	if _, err := f.Write(hdr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, entries := openT(t, path)
	wantEntries(t, entries, "good")
}

func TestRecoveryValidChecksumTornMagicOnlyFile(t *testing.T) {
	// Crash during creation: fewer bytes than the magic. Open restarts
	// the file instead of failing.
	path := filepath.Join(t.TempDir(), "db.wal")
	if err := os.WriteFile(path, magic[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	l, entries := openT(t, path)
	wantEntries(t, entries)
	appendT(t, l, "fresh")
	closeT(t, l)
	_, entries = openT(t, path)
	wantEntries(t, entries, "fresh")
}

func TestRecoveryForeignFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	if err := os.WriteFile(path, []byte("definitely not a WAL file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); err == nil {
		t.Fatal("Open accepted a non-WAL file")
	}
}

// TestRecoveryMidRecordCorruptionIsHardError pins the policy for
// corruption before the tail: a record that fails its checksum while an
// intact record follows it was fsync-acknowledged when the next append
// ran, so truncating would silently discard committed data. Open must
// refuse with ErrCorrupt instead.
func TestRecoveryMidRecordCorruptionIsHardError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	appendT(t, l, "first", "middle", "last")
	closeT(t, l)

	// Corrupt "middle"'s payload in place.
	off := int64(len(magic)) + int64(headerLen+len("first")) + int64(headerLen)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{'?'}, off); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on mid-log corruption = %v, want ErrCorrupt", err)
	}
}

// TestRecoveryZeroFilledTailTruncates simulates a crash where the
// filesystem extended the file with zeros past the last fsync'd record:
// zeros decode as an empty record with a matching zero checksum, which
// must not be mistaken for a valid record proving mid-log corruption.
func TestRecoveryZeroFilledTailTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	appendT(t, l, "good-1", "good-2")
	closeT(t, l)

	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A bad-checksum header followed by zeros, as a torn append that was
	// partially persisted would leave behind.
	hdr := make([]byte, headerLen)
	binary.BigEndian.PutUint32(hdr[0:4], 64)
	binary.BigEndian.PutUint32(hdr[4:8], 0xdeadbeef)
	if _, err := f.Write(append(hdr, make([]byte, 64)...)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	l2, entries := openT(t, path)
	wantEntries(t, entries, "good-1", "good-2")
	appendT(t, l2, "after-recovery")
	closeT(t, l2)
	_, entries = openT(t, path)
	wantEntries(t, entries, "good-1", "good-2", "after-recovery")
}

// TestRecoveryAbsurdLengthBeforeValidRecordIsHardError covers the
// untrusted-extent case: a header claiming a multi-gigabyte payload
// cannot locate the next record, but if one provably exists after it
// the log has lost acknowledged data and recovery must not truncate.
func TestRecoveryAbsurdLengthBeforeValidRecordIsHardError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	appendT(t, l, "good")
	closeT(t, l)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, len(data)-len(magic))
	copy(rec, data[len(magic):]) // the valid "good" record

	// Rewrite the log as: magic, absurd-length header, valid record.
	hdr := make([]byte, headerLen)
	binary.BigEndian.PutUint32(hdr[0:4], 1<<31)
	out := append(append(append([]byte{}, magic...), hdr...), rec...)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestClosedLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	closeT(t, l)
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Errorf("Append on closed log: %v", err)
	}
	if err := l.Reset(); err != ErrClosed {
		t.Errorf("Reset on closed log: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestAppendFailureRewinds(t *testing.T) {
	// A payload over the record bound fails the checksum-length check on
	// replay; more interesting is that a failed append leaves Size
	// unchanged. Simulate failure by closing the underlying file out
	// from under the log — Append must error and the size not move.
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	appendT(t, l, "ok")
	size := l.Size()
	if err := l.f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("doomed")); err == nil {
		t.Fatal("append on closed fd succeeded")
	}
	if l.Size() != size {
		t.Errorf("size moved after failed append: %d -> %d", size, l.Size())
	}
	l.f = nil // suppress the double close in Close
	_, entries := openT(t, path)
	wantEntries(t, entries, "ok")
}

func TestFsyncFailurePoisonsLog(t *testing.T) {
	// Satellite: after a failed fsync the kernel's view of the file is
	// unknown, so the handle must be poisoned — no rewind-and-retry.
	path := filepath.Join(t.TempDir(), "db.wal")
	in := fault.NewInjector(fault.OS)
	l, _, err := OpenFS(in, path)
	if err != nil {
		t.Fatal(err)
	}
	appendT(t, l, "acked")
	size := l.Size()

	in.FailOp(fault.OpSync, "", 1, fault.ErrInjected)
	if err := l.Append([]byte("doomed")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append with failing fsync = %v, want ErrInjected", err)
	}
	if l.Poisoned() == nil {
		t.Fatal("log not poisoned after failed fsync")
	}
	if l.Size() != size {
		t.Errorf("size moved after failed fsync: %d -> %d", size, l.Size())
	}
	ops := in.Ops()
	if err := l.Append([]byte("refused")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append on poisoned log = %v, want ErrPoisoned", err)
	}
	if in.Ops() != ops {
		t.Errorf("poisoned append touched the disk: %d ops -> %d", ops, in.Ops())
	}

	// A successful Reset rewrites the file from scratch and recovers.
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset on poisoned log: %v", err)
	}
	if l.Poisoned() != nil {
		t.Fatalf("still poisoned after successful Reset: %v", l.Poisoned())
	}
	appendT(t, l, "fresh")
	closeT(t, l)
	_, entries := openT(t, path)
	wantEntries(t, entries, "fresh")
}

func TestPersistentFsyncFailureStaysPoisoned(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	in := fault.NewInjector(fault.OS)
	l, _, err := OpenFS(in, path)
	if err != nil {
		t.Fatal(err)
	}
	appendT(t, l, "acked")
	in.FailOpFrom(fault.OpSync, "", 1, fault.ErrInjected)
	if err := l.Append([]byte("doomed")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append = %v, want ErrInjected", err)
	}
	// Reset's own sync fails too: the handle must stay poisoned.
	if err := l.Reset(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Reset under persistent fsync failure = %v, want ErrInjected", err)
	}
	if l.Poisoned() == nil {
		t.Fatal("poison cleared by a failed Reset")
	}
	if err := l.Append([]byte("refused")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append = %v, want ErrPoisoned", err)
	}
	// The disk comes back: Reset now succeeds and recovers the handle.
	in.Clear()
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset after faults cleared: %v", err)
	}
	appendT(t, l, "recovered")
	closeT(t, l)
	_, entries := openT(t, path)
	wantEntries(t, entries, "recovered")
}

func TestWriteFailureWithCleanRewindDoesNotPoison(t *testing.T) {
	// A failed write whose rewind succeeds leaves a known-good file; the
	// next append may proceed.
	path := filepath.Join(t.TempDir(), "db.wal")
	in := fault.NewInjector(fault.OS)
	l, _, err := OpenFS(in, path)
	if err != nil {
		t.Fatal(err)
	}
	appendT(t, l, "one")
	in.FailOp(fault.OpWrite, "", 1, fault.ErrInjected)
	if err := l.Append([]byte("doomed")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append = %v, want ErrInjected", err)
	}
	if l.Poisoned() != nil {
		t.Fatalf("poisoned after rewound write failure: %v", l.Poisoned())
	}
	appendT(t, l, "two")
	closeT(t, l)
	_, entries := openT(t, path)
	wantEntries(t, entries, "one", "two")
}

func TestTornAppendTruncatedOnReplay(t *testing.T) {
	// A torn write (power cut mid-append) plus a failed rewind poisons
	// the handle; replay on reopen truncates the tear.
	path := filepath.Join(t.TempDir(), "db.wal")
	in := fault.NewInjector(fault.OS)
	l, _, err := OpenFS(in, path)
	if err != nil {
		t.Fatal(err)
	}
	appendT(t, l, "acked-1", "acked-2")
	in.TornWrites(true)
	in.FailFrom(in.Ops()+1, fault.ErrInjected) // disk dies: write tears, rewind fails
	if err := l.Append([]byte("torn-record-payload")); err == nil {
		t.Fatal("append succeeded with dead disk")
	}
	if l.Poisoned() == nil {
		t.Fatal("log not poisoned when rewind failed")
	}
	in.Shutdown() // process dies

	_, entries := openT(t, path)
	wantEntries(t, entries, "acked-1", "acked-2")
}

func TestChecksumCoversPayload(t *testing.T) {
	// White-box: the stored CRC must match the canonical IEEE sum, so an
	// external reader can validate the format.
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	appendT(t, l, "check-me")
	closeT(t, l)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := data[len(magic):]
	length := binary.BigEndian.Uint32(rec[0:4])
	sum := binary.BigEndian.Uint32(rec[4:8])
	payload := rec[headerLen : headerLen+int(length)]
	if string(payload) != "check-me" || sum != crc32.ChecksumIEEE(payload) {
		t.Errorf("record = %q sum %d", payload, sum)
	}
}
