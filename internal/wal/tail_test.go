package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// tailT drains Tail from the given cursor, failing the test on error.
func tailT(t *testing.T, l *Log, off int64, epoch uint64) ([][]byte, int64, uint64) {
	t.Helper()
	payloads, next, cur, err := l.Tail(off, epoch)
	if err != nil {
		t.Fatalf("Tail(%d, %d): %v", off, epoch, err)
	}
	return payloads, next, cur
}

// A reader parked at exact EOF sees nothing, keeps its cursor, and picks
// up records the writer appends afterwards — the live-tailing contract
// the replication stream depends on.
func TestTailAtEOFThenWriterAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	defer closeT(t, l)
	appendT(t, l, "one", "two")

	got, next, epoch := tailT(t, l, HeaderSize, l.Epoch())
	wantEntries(t, got, "one", "two")

	// Exact EOF: empty read, cursor unchanged, no error.
	got, again, epoch2 := tailT(t, l, next, epoch)
	wantEntries(t, got)
	if again != next || epoch2 != epoch {
		t.Fatalf("EOF read moved the cursor: off %d→%d, epoch %d→%d", next, again, epoch, epoch2)
	}

	// The writer appends; the parked reader sees exactly the new record.
	appendT(t, l, "three")
	got, next2, _ := tailT(t, l, next, epoch)
	wantEntries(t, got, "three")
	if next2 <= next {
		t.Fatalf("cursor did not advance past the appended record: %d → %d", next, next2)
	}
}

// A torn tail is truncated at open; a tailing reader over the reopened
// log sees only the complete records, and appending continues cleanly
// from the truncation point.
func TestTailAfterTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	appendT(t, l, "alpha", "beta")
	closeT(t, l)

	// Tear the tail: a header promising more bytes than exist.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 99, 1, 2, 3, 4, 'x'}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	l2, entries := openT(t, path)
	defer closeT(t, l2)
	wantEntries(t, entries, "alpha", "beta")
	got, next, epoch := tailT(t, l2, HeaderSize, l2.Epoch())
	wantEntries(t, got, "alpha", "beta")

	// The truncation left the cursor at a clean boundary: appends land
	// exactly where the reader is parked.
	appendT(t, l2, "gamma")
	got, _, _ = tailT(t, l2, next, epoch)
	wantEntries(t, got, "gamma")
}

// A Reset (checkpoint) invalidates every outstanding cursor: the reader
// gets ErrTruncated once, restarts at HeaderSize with the new epoch, and
// follows the fresh generation.
func TestTailAcrossReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	defer closeT(t, l)
	appendT(t, l, "pre-1", "pre-2")

	got, next, epoch := tailT(t, l, HeaderSize, l.Epoch())
	wantEntries(t, got, "pre-1", "pre-2")

	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	appendT(t, l, "post-1")

	_, restart, cur, err := l.Tail(next, epoch)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("Tail after Reset: err = %v, want ErrTruncated", err)
	}
	if restart != HeaderSize {
		t.Fatalf("restart offset = %d, want %d", restart, HeaderSize)
	}
	if cur == epoch {
		t.Fatalf("epoch did not advance across Reset (still %d)", cur)
	}
	got, _, _ = tailT(t, l, restart, cur)
	wantEntries(t, got, "post-1")

	// A stale offset beyond the shrunken file is ErrTruncated too, even
	// with a guessed-right epoch — the cursor is simply out of range.
	if _, _, _, err := l.Tail(1<<20, cur); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Tail past EOF: err = %v, want ErrTruncated", err)
	}
}

// Tail on a closed log refuses rather than reading a dead handle.
func TestTailClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	l, _ := openT(t, path)
	appendT(t, l, "x")
	epoch := l.Epoch()
	closeT(t, l)
	if _, _, _, err := l.Tail(HeaderSize, epoch); !errors.Is(err, ErrClosed) {
		t.Fatalf("Tail on closed log: err = %v, want ErrClosed", err)
	}
}
