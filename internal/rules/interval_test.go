package rules

import (
	"math/rand"
	"testing"
	"testing/quick"

	"intensional/internal/relation"
)

func TestFromOp(t *testing.T) {
	v := relation.Int(8000)
	cases := []struct {
		op       string
		contains []int64
		excludes []int64
	}{
		{"=", []int64{8000}, []int64{7999, 8001}},
		{"<", []int64{7999}, []int64{8000, 8001}},
		{"<=", []int64{7999, 8000}, []int64{8001}},
		{">", []int64{8001}, []int64{8000, 7999}},
		{">=", []int64{8000, 8001}, []int64{7999}},
	}
	for _, c := range cases {
		iv, err := FromOp(c.op, v)
		if err != nil {
			t.Fatalf("FromOp(%q): %v", c.op, err)
		}
		for _, x := range c.contains {
			if !iv.Contains(relation.Int(x)) {
				t.Errorf("op %q: interval %s should contain %d", c.op, iv, x)
			}
		}
		for _, x := range c.excludes {
			if iv.Contains(relation.Int(x)) {
				t.Errorf("op %q: interval %s should exclude %d", c.op, iv, x)
			}
		}
	}
	if _, err := FromOp("!=", v); err == nil {
		t.Error("FromOp(!=) should error (no interval form)")
	}
}

// TestExample1Subsumption reproduces the paper's forward-inference step:
// the condition "Displacement > 8000" is subsumed by the premise
// "7250 <= Displacement <= 30000" of rule R9.
func TestExample1Subsumption(t *testing.T) {
	premise := Range(relation.Int(7250), relation.Int(30000))
	cond, err := FromOp(">", relation.Int(8000))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's premise has a finite upper bound while the condition is
	// unbounded above, so strict interval subsumption fails; the inference
	// engine subsumes against the premise's lower half (see infer package).
	// Here we check the half-bounded premise form.
	halfPremise := Interval{Lo: Closed(relation.Int(7250)), Hi: Unbound()}
	if !halfPremise.Subsumes(cond) {
		t.Errorf("premise %s should subsume condition %s", halfPremise, cond)
	}
	if premise.Subsumes(cond) {
		t.Errorf("closed premise %s must NOT subsume unbounded condition %s", premise, cond)
	}
}

func TestSubsumesStrings(t *testing.T) {
	// R12-style lexicographic ranges.
	premise := Range(relation.String("BQS-04"), relation.String("BQS-15"))
	if !premise.Subsumes(Point(relation.String("BQS-12"))) {
		t.Error("BQS-12 should be inside [BQS-04..BQS-15]")
	}
	if premise.Subsumes(Point(relation.String("BQQ-5"))) {
		t.Error("BQQ-5 is outside [BQS-04..BQS-15]")
	}
	if premise.Subsumes(Point(relation.Int(5))) {
		t.Error("string interval must not subsume an int point")
	}
}

func TestOpenClosedEndpoints(t *testing.T) {
	closed := Range(relation.Int(0), relation.Int(10))
	openHi := Interval{Lo: Closed(relation.Int(0)), Hi: Opened(relation.Int(10))}
	if !closed.Subsumes(openHi) {
		t.Error("[0,10] should subsume [0,10)")
	}
	if openHi.Subsumes(closed) {
		t.Error("[0,10) must not subsume [0,10]")
	}
	if openHi.Contains(relation.Int(10)) {
		t.Error("[0,10) must not contain 10")
	}
	if !openHi.Within(closed) {
		t.Error("[0,10) is within [0,10]")
	}
}

func TestIntersects(t *testing.T) {
	a := Range(relation.Int(0), relation.Int(10))
	b := Range(relation.Int(10), relation.Int(20))
	c := Range(relation.Int(11), relation.Int(20))
	if !a.Intersects(b) {
		t.Error("[0,10] and [10,20] touch at 10")
	}
	if a.Intersects(c) {
		t.Error("[0,10] and [11,20] are disjoint")
	}
	openA := Interval{Lo: Closed(relation.Int(0)), Hi: Opened(relation.Int(10))}
	if openA.Intersects(b) {
		t.Error("[0,10) and [10,20] are disjoint")
	}
	if !Everything().Intersects(a) {
		t.Error("everything intersects [0,10]")
	}
	s := Point(relation.String("x"))
	if s.Intersects(a) {
		t.Error("string point must not intersect int interval")
	}
}

func TestIsPoint(t *testing.T) {
	if !Point(relation.Int(5)).IsPoint() {
		t.Error("Point should be a point")
	}
	if Range(relation.Int(5), relation.Int(6)).IsPoint() {
		t.Error("[5,6] is not a point")
	}
	if Everything().IsPoint() {
		t.Error("everything is not a point")
	}
	half := Interval{Lo: Closed(relation.Int(5)), Hi: Opened(relation.Int(5))}
	if half.IsPoint() {
		t.Error("[5,5) is not a point")
	}
}

func TestIntervalString(t *testing.T) {
	cases := []struct {
		iv   Interval
		want string
	}{
		{Everything(), "(-inf..+inf)"},
		{Point(relation.Int(5)), "[5..5]"},
		{Interval{Lo: Opened(relation.Int(0)), Hi: Closed(relation.Int(9))}, "(0..9]"},
		{Interval{Lo: Unbound(), Hi: Opened(relation.Int(3))}, "(-inf..3)"},
	}
	for _, c := range cases {
		if got := c.iv.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func randInterval(rr *rand.Rand) Interval {
	b := func(lower bool) Bound {
		switch rr.Intn(3) {
		case 0:
			return Unbound()
		case 1:
			return Closed(relation.Int(int64(rr.Intn(40) - 20)))
		default:
			return Opened(relation.Int(int64(rr.Intn(40) - 20)))
		}
	}
	return Interval{Lo: b(true), Hi: b(false)}
}

// Property: Subsumes agrees with pointwise containment over a sampled
// grid of values.
func TestSubsumesPointwiseProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randInterval(rr), randInterval(rr)
		if a.Subsumes(b) {
			for x := int64(-25); x <= 25; x++ {
				v := relation.Int(x)
				if b.Contains(v) && !a.Contains(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: Subsumes is reflexive and transitive.
func TestSubsumesOrderProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b, c := randInterval(rr), randInterval(rr), randInterval(rr)
		if !a.Subsumes(a) {
			return false
		}
		if a.Subsumes(b) && b.Subsumes(c) && !a.Subsumes(c) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: Intersects agrees with existence of a common sampled point
// for closed integer endpoints (no false negatives on the grid).
func TestIntersectsPointwiseProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randInterval(rr), randInterval(rr)
		common := false
		for x := int64(-25); x <= 25 && !common; x++ {
			v := relation.Int(x)
			common = a.Contains(v) && b.Contains(v)
		}
		if common && !a.Intersects(b) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
