package rules

import (
	"fmt"

	"intensional/internal/relation"
)

// Bound is one endpoint of an interval. A bound is either unbounded (±∞),
// or a value that is included (closed) or excluded (open).
type Bound struct {
	Unbounded bool
	Open      bool
	Value     relation.Value
}

// Unbound returns an infinite bound.
func Unbound() Bound { return Bound{Unbounded: true} }

// Closed returns an inclusive bound at v.
func Closed(v relation.Value) Bound { return Bound{Value: v} }

// Opened returns an exclusive bound at v.
func Opened(v relation.Value) Bound { return Bound{Value: v, Open: true} }

// Interval is a (possibly half-open or unbounded) range of attribute
// values under the relation.Value total order. Query conditions and rule
// clauses both normalise to intervals so subsumption is one algorithm.
type Interval struct {
	Lo, Hi Bound
}

// Everything returns the unbounded interval.
func Everything() Interval { return Interval{Lo: Unbound(), Hi: Unbound()} }

// Point returns the degenerate interval [v, v].
func Point(v relation.Value) Interval { return Interval{Lo: Closed(v), Hi: Closed(v)} }

// Range returns the closed interval [lo, hi].
func Range(lo, hi relation.Value) Interval { return Interval{Lo: Closed(lo), Hi: Closed(hi)} }

// FromOp converts a comparison "attr op v" into the interval of values
// satisfying it. Supported operators: =, <, <=, >, >=.
func FromOp(op string, v relation.Value) (Interval, error) {
	switch op {
	case "=":
		return Point(v), nil
	case "<":
		return Interval{Lo: Unbound(), Hi: Opened(v)}, nil
	case "<=":
		return Interval{Lo: Unbound(), Hi: Closed(v)}, nil
	case ">":
		return Interval{Lo: Opened(v), Hi: Unbound()}, nil
	case ">=":
		return Interval{Lo: Closed(v), Hi: Unbound()}, nil
	default:
		return Interval{}, fmt.Errorf("rules: operator %q has no interval form", op)
	}
}

// IsPoint reports whether the interval contains exactly one value
// expressible as a closed [v, v].
func (iv Interval) IsPoint() bool {
	return !iv.Lo.Unbounded && !iv.Hi.Unbounded && !iv.Lo.Open && !iv.Hi.Open &&
		iv.Lo.Value.Equal(iv.Hi.Value)
}

// Contains reports whether v lies in the interval. Values incomparable
// with a bound are outside.
func (iv Interval) Contains(v relation.Value) bool {
	if !iv.Lo.Unbounded {
		c, err := v.Compare(iv.Lo.Value)
		if err != nil {
			return false
		}
		if c < 0 || (c == 0 && iv.Lo.Open) {
			return false
		}
	}
	if !iv.Hi.Unbounded {
		c, err := v.Compare(iv.Hi.Value)
		if err != nil {
			return false
		}
		if c > 0 || (c == 0 && iv.Hi.Open) {
			return false
		}
	}
	return true
}

// loAtMost reports whether bound a is at or below bound b when both are
// lower bounds (a admits everything b admits at the low end).
func loAtMost(a, b Bound) (bool, error) {
	if a.Unbounded {
		return true, nil
	}
	if b.Unbounded {
		return false, nil
	}
	c, err := a.Value.Compare(b.Value)
	if err != nil {
		return false, err
	}
	if c != 0 {
		return c < 0, nil
	}
	// Equal endpoints: a admits at least as much iff a is closed or b open.
	return !a.Open || b.Open, nil
}

// hiAtLeast reports whether bound a is at or above bound b when both are
// upper bounds.
func hiAtLeast(a, b Bound) (bool, error) {
	if a.Unbounded {
		return true, nil
	}
	if b.Unbounded {
		return false, nil
	}
	c, err := a.Value.Compare(b.Value)
	if err != nil {
		return false, err
	}
	if c != 0 {
		return c > 0, nil
	}
	return !a.Open || b.Open, nil
}

// Subsumes reports whether iv ⊇ other: every value in other lies in iv.
// This is the test forward inference applies between a rule premise (iv)
// and a query condition (other). Intervals over incomparable value kinds
// do not subsume each other.
func (iv Interval) Subsumes(other Interval) bool {
	lo, err := loAtMost(iv.Lo, other.Lo)
	if err != nil || !lo {
		return false
	}
	hi, err := hiAtLeast(iv.Hi, other.Hi)
	if err != nil || !hi {
		return false
	}
	return true
}

// Within reports whether iv ⊆ other — the test backward inference applies
// between a rule consequence (iv) and a query condition (other).
func (iv Interval) Within(other Interval) bool { return other.Subsumes(iv) }

// Intersects reports whether the two intervals share at least one value.
// Unbounded or open endpoints are handled; incomparable kinds never
// intersect.
func (iv Interval) Intersects(other Interval) bool {
	disjointAbove := func(lo, hi Bound) bool {
		// lo is a lower bound of one interval, hi an upper bound of the
		// other; they are disjoint when lo > hi.
		if lo.Unbounded || hi.Unbounded {
			return false
		}
		c, err := lo.Value.Compare(hi.Value)
		if err != nil {
			return true // incomparable kinds: treat as disjoint
		}
		if c != 0 {
			return c > 0
		}
		return lo.Open || hi.Open
	}
	return !disjointAbove(iv.Lo, other.Hi) && !disjointAbove(other.Lo, iv.Hi)
}

// IsEmpty reports whether the interval provably contains no value: both
// ends bounded with the lower bound above the upper, or equal with either
// end open.
func (iv Interval) IsEmpty() bool {
	if iv.Lo.Unbounded || iv.Hi.Unbounded {
		return false
	}
	c, err := iv.Lo.Value.Compare(iv.Hi.Value)
	if err != nil {
		return false
	}
	if c > 0 {
		return true
	}
	return c == 0 && (iv.Lo.Open || iv.Hi.Open)
}

// Intersect returns the interval of values common to both intervals. The
// result may be empty (use Intersects to test first when that matters).
func (iv Interval) Intersect(other Interval) Interval {
	return iv.Clip(other)
}

// Clip intersects the interval with domain, returning the tighter bounds.
// The inference processor clips query conditions to an attribute's active
// domain (the range of values actually stored) before testing premise
// subsumption: under the database's closed world, "Displacement > 8000"
// means (8000 .. max observed], which is how the paper's Example 1 finds
// the condition subsumed by rule R9's premise [7250 .. 30000].
func (iv Interval) Clip(domain Interval) Interval {
	out := iv
	if tighterLo(domain.Lo, out.Lo) {
		out.Lo = domain.Lo
	}
	if tighterHi(domain.Hi, out.Hi) {
		out.Hi = domain.Hi
	}
	return out
}

// tighterLo reports whether lower bound a admits strictly fewer values
// than lower bound b (a does not admit everything b admits).
func tighterLo(a, b Bound) bool {
	ok, err := loAtMost(a, b)
	if err != nil {
		return false
	}
	return !ok
}

// tighterHi reports whether upper bound a admits strictly less than b.
func tighterHi(a, b Bound) bool {
	ok, err := hiAtLeast(a, b)
	if err != nil {
		return false
	}
	return !ok
}

// String renders the interval in mathematical notation.
func (iv Interval) String() string {
	lo, hi := "(-inf", "+inf)"
	if !iv.Lo.Unbounded {
		br := "["
		if iv.Lo.Open {
			br = "("
		}
		lo = br + iv.Lo.Value.String()
	}
	if !iv.Hi.Unbounded {
		br := "]"
		if iv.Hi.Open {
			br = ")"
		}
		hi = iv.Hi.Value.String() + br
	}
	return lo + ".." + hi
}
