package rules

import (
	"fmt"
	"strings"

	"intensional/internal/relation"
)

// Rule-relation names used when a rule set is stored alongside a database
// (Section 5.2.2). RuleRelName follows the paper's schema
// R' = (RuleNo, Role, Lvalue, AttributeNo, Uvalue) exactly; the attribute
// value mapping relation holds the encoded-number ↔ real-value mapping.
// AttrRelName replaces the INGRES system table that identified attributes,
// and MetaRelName is an extension preserving each rule's support count
// (the paper's representation drops it; Nc pruning needs it after reload).
const (
	RuleRelName = "RULES"
	MapRelName  = "ATTRVALMAP"
	AttrRelName = "RULEATTRS"
	MetaRelName = "RULEMETA"
)

// RuleRelationSchema is the schema of R'.
func RuleRelationSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "RuleNo", Type: relation.TInt},
		relation.Column{Name: "Role", Type: relation.TString},
		relation.Column{Name: "Lvalue", Type: relation.TFloat},
		relation.Column{Name: "Att_no", Type: relation.TInt},
		relation.Column{Name: "Uvalue", Type: relation.TFloat},
	)
}

// MapRelationSchema is the schema of the attribute value mapping relation.
func MapRelationSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "Att_no", Type: relation.TInt},
		relation.Column{Name: "Value", Type: relation.TFloat},
		relation.Column{Name: "RealValue", Type: relation.TString},
	)
}

// AttrRelationSchema is the schema of the attribute identification
// relation (standing in for the INGRES system table).
func AttrRelationSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "Att_no", Type: relation.TInt},
		relation.Column{Name: "Relation", Type: relation.TString},
		relation.Column{Name: "Attribute", Type: relation.TString},
		relation.Column{Name: "Type", Type: relation.TString},
	)
}

// MetaRelationSchema is the schema of the support-preserving extension.
func MetaRelationSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "RuleNo", Type: relation.TInt},
		relation.Column{Name: "Support", Type: relation.TInt},
	)
}

// Relations bundles the four rule relations produced by Encode.
type Relations struct {
	Rules *relation.Relation // R'(RuleNo, Role, Lvalue, Att_no, Uvalue)
	Map   *relation.Relation // (Att_no, Value, RealValue)
	Attrs *relation.Relation // (Att_no, Relation, Attribute, Type)
	Meta  *relation.Relation // (RuleNo, Support)
}

// encoder assigns attribute numbers and per-attribute value codes in
// first-use order, as in the paper's example (a1→1.00, a2→2.00, b1→1.00).
type encoder struct {
	attrNo   map[string]int64
	attrs    []AttrRef
	attrKind []relation.Kind
	valCode  []map[string]float64 // per attribute: value key → code
	vals     [][]relation.Value   // per attribute: code order
}

func newEncoder() *encoder {
	return &encoder{attrNo: make(map[string]int64)}
}

func (e *encoder) attr(a AttrRef, kind relation.Kind) (int64, error) {
	k := a.Key()
	if no, ok := e.attrNo[k]; ok {
		if e.attrKind[no] != kind {
			return 0, fmt.Errorf("rules: attribute %s used with both %s and %s values",
				a, e.attrKind[no], kind)
		}
		return no, nil
	}
	no := int64(len(e.attrs))
	e.attrNo[k] = no
	e.attrs = append(e.attrs, a)
	e.attrKind = append(e.attrKind, kind)
	e.valCode = append(e.valCode, make(map[string]float64))
	e.vals = append(e.vals, nil)
	return no, nil
}

func (e *encoder) value(attrNo int64, v relation.Value) float64 {
	m := e.valCode[attrNo]
	if code, ok := m[v.Key()]; ok {
		return code
	}
	code := float64(len(m) + 1)
	m[v.Key()] = code
	e.vals[attrNo] = append(e.vals[attrNo], v)
	return code
}

func kindName(k relation.Kind) string {
	switch k {
	case relation.KindString:
		return "string"
	case relation.KindInt:
		return "int"
	case relation.KindFloat:
		return "float"
	default:
		return "null"
	}
}

// Encode converts a rule set into the four rule relations. The encoding is
// purely relational, so the result can be saved, relocated, and reloaded
// with the database it was induced from.
func Encode(s *Set) (*Relations, error) {
	enc := newEncoder()
	rr := relation.New(RuleRelName, RuleRelationSchema())
	meta := relation.New(MetaRelName, MetaRelationSchema())

	writeClause := func(ruleNo int, role string, c Clause) error {
		if c.Lo.Kind() != c.Hi.Kind() && !(c.Lo.IsNumeric() && c.Hi.IsNumeric()) {
			return fmt.Errorf("rules: rule %d clause %s mixes value kinds", ruleNo, c)
		}
		no, err := enc.attr(c.Attr, c.Lo.Kind())
		if err != nil {
			return err
		}
		lo := enc.value(no, c.Lo)
		hi := enc.value(no, c.Hi)
		return rr.Insert(relation.Tuple{
			relation.Int(int64(ruleNo)), relation.String(role),
			relation.Float(lo), relation.Int(no), relation.Float(hi),
		})
	}

	for _, r := range s.Rules() {
		for _, c := range r.LHS {
			if err := writeClause(r.ID, "L", c); err != nil {
				return nil, err
			}
		}
		if err := writeClause(r.ID, "R", r.RHS); err != nil {
			return nil, err
		}
		if err := meta.Insert(relation.Tuple{
			relation.Int(int64(r.ID)), relation.Int(int64(r.Support)),
		}); err != nil {
			return nil, err
		}
	}

	mapRel := relation.New(MapRelName, MapRelationSchema())
	attrRel := relation.New(AttrRelName, AttrRelationSchema())
	for no, a := range enc.attrs {
		if err := attrRel.Insert(relation.Tuple{
			relation.Int(int64(no)), relation.String(a.Relation),
			relation.String(a.Attribute), relation.String(kindName(enc.attrKind[no])),
		}); err != nil {
			return nil, err
		}
		for code, v := range enc.vals[no] {
			if err := mapRel.Insert(relation.Tuple{
				relation.Int(int64(no)), relation.Float(float64(code + 1)),
				relation.String(v.String()),
			}); err != nil {
				return nil, err
			}
		}
	}
	return &Relations{Rules: rr, Map: mapRel, Attrs: attrRel, Meta: meta}, nil
}

// Decode reconstructs a rule set from its rule relations. The Meta
// relation is optional (nil restores rules with zero support).
func Decode(rel *Relations) (*Set, error) {
	if rel == nil || rel.Rules == nil || rel.Map == nil || rel.Attrs == nil {
		return nil, fmt.Errorf("rules: decode requires the rule, mapping, and attribute relations")
	}
	type attrInfo struct {
		ref  AttrRef
		kind string
	}
	attrs := map[int64]attrInfo{}
	for _, t := range rel.Attrs.Rows() {
		attrs[t[0].Int64()] = attrInfo{
			ref:  Attr(t[1].Str(), t[2].Str()),
			kind: t[3].Str(),
		}
	}
	vals := map[int64]map[float64]relation.Value{}
	for _, t := range rel.Map.Rows() {
		no, code, raw := t[0].Int64(), t[1].Float64(), t[2].Str()
		info, ok := attrs[no]
		if !ok {
			return nil, fmt.Errorf("rules: mapping references unknown attribute %d", no)
		}
		var v relation.Value
		var err error
		switch info.kind {
		case "string":
			v = relation.String(raw)
		case "int":
			v, err = relation.ParseValue(raw, relation.TInt)
		case "float":
			v, err = relation.ParseValue(raw, relation.TFloat)
		default:
			err = fmt.Errorf("unknown kind %q", info.kind)
		}
		if err != nil {
			return nil, fmt.Errorf("rules: decode attribute %d value %q: %w", no, raw, err)
		}
		if vals[no] == nil {
			vals[no] = map[float64]relation.Value{}
		}
		vals[no][code] = v
	}

	support := map[int64]int{}
	if rel.Meta != nil {
		for _, t := range rel.Meta.Rows() {
			support[t[0].Int64()] = int(t[1].Int64())
		}
	}

	// Group clause rows by rule number, preserving row order.
	type partial struct {
		lhs []Clause
		rhs *Clause
	}
	parts := map[int64]*partial{}
	var order []int64
	for _, t := range rel.Rules.Rows() {
		ruleNo, role := t[0].Int64(), strings.ToUpper(t[1].Str())
		lo, no, hi := t[2].Float64(), t[3].Int64(), t[4].Float64()
		info, ok := attrs[no]
		if !ok {
			return nil, fmt.Errorf("rules: rule %d references unknown attribute %d", ruleNo, no)
		}
		lov, ok1 := vals[no][lo]
		hiv, ok2 := vals[no][hi]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("rules: rule %d has unmapped value codes (%g, %g) for %s",
				ruleNo, lo, hi, info.ref)
		}
		p := parts[ruleNo]
		if p == nil {
			p = &partial{}
			parts[ruleNo] = p
			order = append(order, ruleNo)
		}
		c := RangeClause(info.ref, lov, hiv)
		switch role {
		case "L":
			p.lhs = append(p.lhs, c)
		case "R":
			if p.rhs != nil {
				return nil, fmt.Errorf("rules: rule %d has multiple RHS clauses (not Horn)", ruleNo)
			}
			p.rhs = &c
		default:
			return nil, fmt.Errorf("rules: rule %d has unknown role %q", ruleNo, role)
		}
	}

	out := NewSet()
	for _, no := range order {
		p := parts[no]
		if p.rhs == nil {
			return nil, fmt.Errorf("rules: rule %d has no RHS clause", no)
		}
		out.Add(&Rule{ID: int(no), LHS: p.lhs, RHS: *p.rhs, Support: support[no]})
	}
	return out, nil
}
