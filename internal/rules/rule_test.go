package rules

import (
	"strings"
	"testing"

	"intensional/internal/relation"
)

func TestAttrRef(t *testing.T) {
	a, err := ParseAttrRef("CLASS.Displacement")
	if err != nil {
		t.Fatal(err)
	}
	if a.Relation != "CLASS" || a.Attribute != "Displacement" {
		t.Errorf("parsed %v", a)
	}
	if a.String() != "CLASS.Displacement" {
		t.Errorf("String = %q", a.String())
	}
	if !a.EqualFold(Attr("class", "DISPLACEMENT")) {
		t.Error("EqualFold should ignore case")
	}
	if a.Key() != Attr("Class", "displacement").Key() {
		t.Error("Key should normalise case")
	}
	for _, bad := range []string{"noDot", ".x", "x.", ""} {
		if _, err := ParseAttrRef(bad); err == nil {
			t.Errorf("ParseAttrRef(%q) should error", bad)
		}
	}
}

func TestClauseString(t *testing.T) {
	p := PointClause(Attr("CLASS", "Type"), relation.String("SSBN"))
	if got := p.String(); got != "CLASS.Type = SSBN" {
		t.Errorf("point clause = %q", got)
	}
	r := RangeClause(Attr("CLASS", "Displacement"), relation.Int(7250), relation.Int(30000))
	if got := r.String(); got != "7250 <= CLASS.Displacement <= 30000" {
		t.Errorf("range clause = %q", got)
	}
	if !p.IsPoint() || r.IsPoint() {
		t.Error("IsPoint misclassifies")
	}
	if !r.Contains(relation.Int(8000)) || r.Contains(relation.Int(100)) {
		t.Error("Contains misclassifies")
	}
}

func r9() *Rule {
	return &Rule{
		LHS:     []Clause{RangeClause(Attr("CLASS", "Displacement"), relation.Int(7250), relation.Int(30000))},
		RHS:     PointClause(Attr("CLASS", "Type"), relation.String("SSBN")),
		Support: 4,
	}
}

func r8() *Rule {
	return &Rule{
		LHS:     []Clause{RangeClause(Attr("CLASS", "Displacement"), relation.Int(2145), relation.Int(6955))},
		RHS:     PointClause(Attr("CLASS", "Type"), relation.String("SSN")),
		Support: 9,
	}
}

func TestRuleString(t *testing.T) {
	want := "if 7250 <= CLASS.Displacement <= 30000 then CLASS.Type = SSBN"
	if got := r9().String(); got != want {
		t.Errorf("rule = %q, want %q", got, want)
	}
	multi := &Rule{
		LHS: []Clause{
			PointClause(Attr("A", "x"), relation.Int(1)),
			PointClause(Attr("B", "y"), relation.Int(2)),
		},
		RHS: PointClause(Attr("C", "z"), relation.Int(3)),
	}
	if got := multi.String(); !strings.Contains(got, " and ") {
		t.Errorf("multi-clause rule should join with 'and': %q", got)
	}
}

func TestPremiseSubsumes(t *testing.T) {
	r := r9()
	attr := Attr("CLASS", "Displacement")
	cond := Range(relation.Int(8000), relation.Int(30000))
	if !r.PremiseSubsumes(attr, cond) {
		t.Error("premise [7250,30000] should subsume [8000,30000]")
	}
	if r.PremiseSubsumes(attr, Range(relation.Int(100), relation.Int(200))) {
		t.Error("premise must not subsume a disjoint condition")
	}
	if r.PremiseSubsumes(Attr("CLASS", "Other"), cond) {
		t.Error("different attribute must not match")
	}
	multi := &Rule{
		LHS: []Clause{PointClause(attr, relation.Int(1)), PointClause(Attr("B", "y"), relation.Int(2))},
		RHS: PointClause(Attr("C", "z"), relation.Int(3)),
	}
	if multi.PremiseSubsumes(attr, Point(relation.Int(1))) {
		t.Error("multi-clause premise must not forward-apply from one attribute")
	}
}

func TestConsequenceWithin(t *testing.T) {
	r := r9()
	attr := Attr("CLASS", "Type")
	if !r.ConsequenceWithin(attr, Point(relation.String("SSBN"))) {
		t.Error("RHS Type=SSBN lies within condition Type=SSBN")
	}
	if r.ConsequenceWithin(attr, Point(relation.String("SSN"))) {
		t.Error("RHS Type=SSBN not within Type=SSN")
	}
	if r.ConsequenceWithin(Attr("CLASS", "Other"), Everything()) {
		t.Error("different attribute must not match")
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet()
	a := s.Add(r9())
	b := s.Add(r8())
	if a.ID != 1 || b.ID != 2 {
		t.Errorf("IDs = %d, %d; want 1, 2", a.ID, b.ID)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	sch := Scheme{X: Attr("CLASS", "Displacement"), Y: Attr("CLASS", "Type")}
	if got := s.ByScheme(sch); len(got) != 2 {
		t.Errorf("ByScheme = %d rules", len(got))
	}
	if got := s.WithPremiseOn(Attr("class", "displacement")); len(got) != 2 {
		t.Errorf("WithPremiseOn = %d rules", len(got))
	}
	if got := s.WithConsequenceOn(Attr("CLASS", "Type")); len(got) != 2 {
		t.Errorf("WithConsequenceOn = %d rules", len(got))
	}
	if got := s.Schemes(); len(got) != 1 || got[0].Key() != sch.Key() {
		t.Errorf("Schemes = %v", got)
	}
	out := s.String()
	if !strings.Contains(out, "R1: if") || !strings.Contains(out, "R2: if") {
		t.Errorf("Set.String:\n%s", out)
	}
}

func TestSetByID(t *testing.T) {
	s := NewSet()
	a := s.Add(r9())
	if got, ok := s.ByID(a.ID); !ok || got != a {
		t.Errorf("ByID(%d) = %v, %v", a.ID, got, ok)
	}
	if _, ok := s.ByID(999); ok {
		t.Error("ByID(999) should miss")
	}
}

func TestSetExplicitIDs(t *testing.T) {
	s := NewSet()
	s.Add(&Rule{ID: 9, LHS: r9().LHS, RHS: r9().RHS})
	next := s.Add(r8())
	if next.ID != 10 {
		t.Errorf("next ID = %d, want 10", next.ID)
	}
}

func TestPrune(t *testing.T) {
	s := NewSet()
	s.Add(r9()) // support 4
	s.Add(r8()) // support 9
	one := &Rule{
		LHS:     []Clause{PointClause(Attr("CLASS", "Class"), relation.String("1301"))},
		RHS:     PointClause(Attr("CLASS", "Type"), relation.String("SSBN")),
		Support: 1,
	}
	s.Add(one)
	pruned := s.Prune(2)
	if pruned.Len() != 2 {
		t.Fatalf("Prune(2) kept %d rules, want 2", pruned.Len())
	}
	for _, r := range pruned.Rules() {
		if r.Support < 2 {
			t.Errorf("rule R%d with support %d survived pruning", r.ID, r.Support)
		}
	}
	// The paper's R_new: at Nc=1 the single-instance rule is retained.
	if s.Prune(1).Len() != 3 {
		t.Error("Prune(1) should keep all rules")
	}
}

func TestRuleEqual(t *testing.T) {
	if !r9().Equal(r9()) {
		t.Error("identical rules should be Equal")
	}
	if r9().Equal(r8()) {
		t.Error("different rules should not be Equal")
	}
	a := r9()
	b := r9()
	b.ID, b.Support = 99, 99
	if !a.Equal(b) {
		t.Error("Equal must ignore ID and Support")
	}
}
