package rules

import (
	"math/rand"
	"testing"
	"testing/quick"

	"intensional/internal/relation"
)

// TestRuleRelationPaperExample reproduces the Section 5.2.2 example:
// the rule "if a1 <= R.A <= a2 then R.B = b1" encodes as
//
//	| RuleNo | Role | Lvalue | Att_no | Uvalue |
//	|   1    |  L   |  1.00  |   0    |  2.00  |
//	|   1    |  R   |  1.00  |   1    |  1.00  |
//
// with the attribute value mapping relation
//
//	| Att_no | Value | RealValue |
//	|   0    | 1.00  |    a1     |
//	|   0    | 2.00  |    a2     |
//	|   1    | 1.00  |    b1     |
func TestRuleRelationPaperExample(t *testing.T) {
	s := NewSet()
	s.Add(&Rule{
		LHS: []Clause{RangeClause(Attr("R", "A"), relation.String("a1"), relation.String("a2"))},
		RHS: PointClause(Attr("R", "B"), relation.String("b1")),
	})
	rel, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	wantRules := [][5]string{
		{"1", "L", "1", "0", "2"},
		{"1", "R", "1", "1", "1"},
	}
	if rel.Rules.Len() != len(wantRules) {
		t.Fatalf("rule relation has %d rows, want %d:\n%s", rel.Rules.Len(), len(wantRules), rel.Rules)
	}
	for i, want := range wantRules {
		row := rel.Rules.Row(i)
		for j, w := range want {
			if got := row[j].String(); got != w {
				t.Errorf("rule relation row %d col %d = %q, want %q", i, j, got, w)
			}
		}
	}
	wantMap := [][3]string{
		{"0", "1", "a1"},
		{"0", "2", "a2"},
		{"1", "1", "b1"},
	}
	if rel.Map.Len() != len(wantMap) {
		t.Fatalf("mapping relation has %d rows, want %d:\n%s", rel.Map.Len(), len(wantMap), rel.Map)
	}
	for i, want := range wantMap {
		row := rel.Map.Row(i)
		for j, w := range want {
			if got := row[j].String(); got != w {
				t.Errorf("mapping row %d col %d = %q, want %q", i, j, got, w)
			}
		}
	}
}

func sampleSet() *Set {
	s := NewSet()
	s.Add(&Rule{
		LHS:     []Clause{RangeClause(Attr("CLASS", "Displacement"), relation.Int(7250), relation.Int(30000))},
		RHS:     PointClause(Attr("CLASS", "Type"), relation.String("SSBN")),
		Support: 4,
	})
	s.Add(&Rule{
		LHS:     []Clause{RangeClause(Attr("CLASS", "Class"), relation.String("0201"), relation.String("0215"))},
		RHS:     PointClause(Attr("CLASS", "Type"), relation.String("SSN")),
		Support: 9,
	})
	s.Add(&Rule{
		LHS: []Clause{
			PointClause(Attr("SUBMARINE", "Class"), relation.String("0203")),
			RangeClause(Attr("SONAR", "Sonar"), relation.String("BQQ-2"), relation.String("BQQ-8")),
		},
		RHS:     PointClause(Attr("SONAR", "SonarType"), relation.String("BQQ")),
		Support: 2,
	})
	s.Add(&Rule{
		LHS:     []Clause{RangeClause(Attr("EMP", "Ratio"), relation.Float(0.5), relation.Float(1.5))},
		RHS:     PointClause(Attr("EMP", "Grade"), relation.Int(3)),
		Support: 7,
	})
	return s
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	s := sampleSet()
	rel, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(rel)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("decoded %d rules, want %d", got.Len(), s.Len())
	}
	for i, orig := range s.Rules() {
		dec := got.Rules()[i]
		if !dec.Equal(orig) {
			t.Errorf("rule %d mismatch:\n got %s\nwant %s", i, dec, orig)
		}
		if dec.ID != orig.ID || dec.Support != orig.Support {
			t.Errorf("rule %d id/support = %d/%d, want %d/%d",
				i, dec.ID, dec.Support, orig.ID, orig.Support)
		}
	}
}

func TestDecodeWithoutMeta(t *testing.T) {
	rel, err := Encode(sampleSet())
	if err != nil {
		t.Fatal(err)
	}
	rel.Meta = nil
	got, err := Decode(rel)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got.Rules() {
		if r.Support != 0 {
			t.Errorf("rule R%d support = %d, want 0 without meta", r.ID, r.Support)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) should error")
	}
	rel, err := Encode(sampleSet())
	if err != nil {
		t.Fatal(err)
	}
	// Unknown attribute number in rule relation.
	bad := &Relations{Rules: rel.Rules.Clone(), Map: rel.Map, Attrs: rel.Attrs, Meta: rel.Meta}
	bad.Rules.Row(0)[3] = relation.Int(99)
	if _, err := Decode(bad); err == nil {
		t.Error("unknown attribute number should error")
	}
	// Unknown role.
	bad2 := &Relations{Rules: rel.Rules.Clone(), Map: rel.Map, Attrs: rel.Attrs, Meta: rel.Meta}
	bad2.Rules.Row(0)[1] = relation.String("X")
	if _, err := Decode(bad2); err == nil {
		t.Error("unknown role should error")
	}
	// Missing RHS: drop the R row of rule 1.
	bad3 := &Relations{Rules: rel.Rules.Clone(), Map: rel.Map, Attrs: rel.Attrs, Meta: rel.Meta}
	bad3.Rules.Delete(func(tp relation.Tuple) bool {
		return tp[0].Int64() == 1 && tp[1].Str() == "R"
	})
	if _, err := Decode(bad3); err == nil {
		t.Error("rule without RHS should error")
	}
	// Duplicate RHS: not a Horn clause.
	bad4 := &Relations{Rules: rel.Rules.Clone(), Map: rel.Map, Attrs: rel.Attrs, Meta: rel.Meta}
	row := bad4.Rules.Row(1).Clone()
	if err := bad4.Rules.Insert(row); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bad4); err == nil {
		t.Error("two RHS clauses should error")
	}
}

func TestEncodeMixedKindClause(t *testing.T) {
	s := NewSet()
	s.Add(&Rule{
		LHS: []Clause{{Attr: Attr("R", "A"), Lo: relation.Int(1), Hi: relation.String("x")}},
		RHS: PointClause(Attr("R", "B"), relation.Int(1)),
	})
	if _, err := Encode(s); err == nil {
		t.Error("clause mixing value kinds should fail to encode")
	}
}

func TestEncodeConflictingAttrKinds(t *testing.T) {
	s := NewSet()
	s.Add(&Rule{
		LHS: []Clause{PointClause(Attr("R", "A"), relation.Int(1))},
		RHS: PointClause(Attr("R", "B"), relation.Int(1)),
	})
	s.Add(&Rule{
		LHS: []Clause{PointClause(Attr("R", "A"), relation.String("x"))},
		RHS: PointClause(Attr("R", "B"), relation.Int(2)),
	})
	if _, err := Encode(s); err == nil {
		t.Error("one attribute used with two kinds should fail to encode")
	}
}

// Property: encode/decode roundtrips random rule sets.
func TestRoundtripProperty(t *testing.T) {
	attrs := []AttrRef{Attr("R", "A"), Attr("R", "B"), Attr("S", "C")}
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		s := NewSet()
		n := 1 + rr.Intn(12)
		for i := 0; i < n; i++ {
			mk := func(a AttrRef) Clause {
				lo := int64(rr.Intn(50))
				hi := lo + int64(rr.Intn(20))
				return RangeClause(a, relation.Int(lo), relation.Int(hi))
			}
			lhs := []Clause{mk(attrs[0])}
			if rr.Intn(3) == 0 {
				lhs = append(lhs, mk(attrs[2]))
			}
			s.Add(&Rule{LHS: lhs, RHS: mk(attrs[1]), Support: rr.Intn(10)})
		}
		rel, err := Encode(s)
		if err != nil {
			return false
		}
		got, err := Decode(rel)
		if err != nil || got.Len() != s.Len() {
			return false
		}
		for i := range s.Rules() {
			a, b := s.Rules()[i], got.Rules()[i]
			if !a.Equal(b) || a.ID != b.ID || a.Support != b.Support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClipToActiveDomain(t *testing.T) {
	cond, err := FromOp(">", relation.Int(8000))
	if err != nil {
		t.Fatal(err)
	}
	domain := Range(relation.Int(2145), relation.Int(30000))
	clipped := cond.Clip(domain)
	want := "(8000..30000]"
	if got := clipped.String(); got != want {
		t.Errorf("Clip = %s, want %s", got, want)
	}
	premise := Range(relation.Int(7250), relation.Int(30000))
	if !premise.Subsumes(clipped) {
		t.Error("after clipping, R9's premise must subsume the Example 1 condition")
	}
	// Clipping with a looser domain is a no-op.
	if got := Point(relation.Int(5)).Clip(Everything()); got.String() != "[5..5]" {
		t.Errorf("Clip by everything = %s", got)
	}
}
