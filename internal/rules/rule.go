package rules

import (
	"fmt"
	"sort"
	"strings"

	"intensional/internal/relation"
)

// Clause is the paper's (lvalue, attribute, uvalue) expression: the
// attribute's value lies in the closed range [Lo, Hi]. A point clause
// (Lo = Hi) renders as an equality.
type Clause struct {
	Attr AttrRef
	Lo   relation.Value
	Hi   relation.Value
}

// PointClause builds a clause asserting attr = v.
func PointClause(attr AttrRef, v relation.Value) Clause {
	return Clause{Attr: attr, Lo: v, Hi: v}
}

// RangeClause builds a clause asserting lo <= attr <= hi.
func RangeClause(attr AttrRef, lo, hi relation.Value) Clause {
	return Clause{Attr: attr, Lo: lo, Hi: hi}
}

// IsPoint reports whether the clause pins the attribute to a single value.
func (c Clause) IsPoint() bool { return c.Lo.Equal(c.Hi) }

// Interval returns the clause's value range as an interval.
func (c Clause) Interval() Interval { return Range(c.Lo, c.Hi) }

// Contains reports whether v satisfies the clause.
func (c Clause) Contains(v relation.Value) bool { return c.Interval().Contains(v) }

// String renders the clause the way the paper writes rules:
// either "attr = v" or "lo <= attr <= hi".
func (c Clause) String() string {
	if c.IsPoint() {
		return fmt.Sprintf("%s = %s", c.Attr, c.Lo)
	}
	return fmt.Sprintf("%s <= %s <= %s", c.Lo, c.Attr, c.Hi)
}

// Rule is a Horn rule: a conjunction of LHS clauses implying a single RHS
// clause. Support records how many database instances satisfied the rule
// when it was induced; the pruning threshold Nc acts on it.
type Rule struct {
	ID      int
	LHS     []Clause
	RHS     Clause
	Support int
}

// Scheme returns the rule's scheme X→Y. Rules induced by the ILS have a
// single LHS clause; for multi-clause premises the first clause's
// attribute stands for X.
func (r *Rule) Scheme() Scheme {
	s := Scheme{Y: r.RHS.Attr}
	if len(r.LHS) > 0 {
		s.X = r.LHS[0].Attr
	}
	return s
}

// String renders the rule as "if <LHS> then <RHS>".
func (r *Rule) String() string {
	parts := make([]string, len(r.LHS))
	for i, c := range r.LHS {
		parts[i] = c.String()
	}
	return fmt.Sprintf("if %s then %s", strings.Join(parts, " and "), r.RHS)
}

// PremiseSubsumes reports whether the rule's premise on the given
// attribute subsumes the condition interval — the forward-inference
// applicability test. Rules whose premise mentions other attributes as
// well are not applicable from a single-attribute condition.
func (r *Rule) PremiseSubsumes(attr AttrRef, cond Interval) bool {
	if len(r.LHS) != 1 {
		return false
	}
	c := r.LHS[0]
	return c.Attr.EqualFold(attr) && c.Interval().Subsumes(cond)
}

// ConsequenceWithin reports whether the rule's consequence lies within the
// condition interval on the given attribute — the backward-inference
// applicability test.
func (r *Rule) ConsequenceWithin(attr AttrRef, cond Interval) bool {
	return r.RHS.Attr.EqualFold(attr) && r.RHS.Interval().Within(cond)
}

// Equal reports structural equality of two rules ignoring ID and support.
func (r *Rule) Equal(o *Rule) bool {
	if len(r.LHS) != len(o.LHS) {
		return false
	}
	for i := range r.LHS {
		if !clauseEqual(r.LHS[i], o.LHS[i]) {
			return false
		}
	}
	return clauseEqual(r.RHS, o.RHS)
}

func clauseEqual(a, b Clause) bool {
	return a.Attr.EqualFold(b.Attr) && a.Lo.Equal(b.Lo) && a.Hi.Equal(b.Hi)
}

// Set is an ordered collection of rules with scheme-based lookup: the
// knowledge base the inference processor searches.
type Set struct {
	rules    []*Rule
	byScheme map[string][]*Rule
	nextID   int
}

// NewSet returns an empty rule set.
func NewSet() *Set {
	return &Set{byScheme: make(map[string][]*Rule), nextID: 1}
}

// Add inserts a rule, assigning it the next rule number if it has none.
func (s *Set) Add(r *Rule) *Rule {
	if r.ID == 0 {
		r.ID = s.nextID
	}
	if r.ID >= s.nextID {
		s.nextID = r.ID + 1
	}
	s.rules = append(s.rules, r)
	k := r.Scheme().Key()
	s.byScheme[k] = append(s.byScheme[k], r)
	return r
}

// Len returns the number of rules.
func (s *Set) Len() int { return len(s.rules) }

// Rules returns the rules in insertion order. Callers must not mutate.
func (s *Set) Rules() []*Rule { return s.rules }

// ByScheme returns the rules of the given scheme.
func (s *Set) ByScheme(sch Scheme) []*Rule { return s.byScheme[sch.Key()] }

// ByID returns the rule with the given rule number.
func (s *Set) ByID(id int) (*Rule, bool) {
	for _, r := range s.rules {
		if r.ID == id {
			return r, true
		}
	}
	return nil, false
}

// WithPremiseOn returns the rules whose (single-clause) premise is on the
// given attribute.
func (s *Set) WithPremiseOn(attr AttrRef) []*Rule {
	var out []*Rule
	for _, r := range s.rules {
		if len(r.LHS) == 1 && r.LHS[0].Attr.EqualFold(attr) {
			out = append(out, r)
		}
	}
	return out
}

// WithConsequenceOn returns the rules whose consequence is on the given
// attribute.
func (s *Set) WithConsequenceOn(attr AttrRef) []*Rule {
	var out []*Rule
	for _, r := range s.rules {
		if r.RHS.Attr.EqualFold(attr) {
			out = append(out, r)
		}
	}
	return out
}

// Prune returns a new set keeping only rules with Support >= nc — the
// paper's Nc threshold. Rule numbers are preserved.
func (s *Set) Prune(nc int) *Set {
	out := NewSet()
	for _, r := range s.rules {
		if r.Support >= nc {
			out.Add(r)
		}
	}
	return out
}

// Schemes returns the distinct schemes present, sorted by key.
func (s *Set) Schemes() []Scheme {
	seen := map[string]Scheme{}
	for _, r := range s.rules {
		sch := r.Scheme()
		seen[sch.Key()] = sch
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Scheme, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}

// String renders every rule, one per line, as "R<n>: if ... then ...".
func (s *Set) String() string {
	var b strings.Builder
	for _, r := range s.rules {
		fmt.Fprintf(&b, "R%d: %s\n", r.ID, r)
	}
	return b.String()
}
