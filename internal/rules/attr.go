// Package rules implements the paper's knowledge representation: clauses
// of the form (lvalue, attribute, uvalue), Horn rules with a conjunctive
// left-hand side and a single right-hand-side clause, rule sets keyed by
// rule scheme X→Y, the interval algebra used for forward/backward type
// inference, and the relocatable rule-relation encoding of Section 5.2.2.
package rules

import (
	"fmt"
	"strings"
)

// AttrRef names an attribute of an object type, e.g. CLASS.Displacement.
// References compare case-insensitively, following the relational layer.
type AttrRef struct {
	Relation  string
	Attribute string
}

// Attr builds an AttrRef.
func Attr(rel, attr string) AttrRef { return AttrRef{Relation: rel, Attribute: attr} }

// ParseAttrRef parses "Relation.Attribute".
func ParseAttrRef(s string) (AttrRef, error) {
	i := strings.LastIndex(s, ".")
	if i <= 0 || i == len(s)-1 {
		return AttrRef{}, fmt.Errorf("rules: bad attribute reference %q (want Relation.Attribute)", s)
	}
	return AttrRef{Relation: s[:i], Attribute: s[i+1:]}, nil
}

// String renders the reference as "Relation.Attribute".
func (a AttrRef) String() string { return a.Relation + "." + a.Attribute }

// Key returns a case-normalised map key for the reference.
func (a AttrRef) Key() string {
	return strings.ToLower(a.Relation) + "." + strings.ToLower(a.Attribute)
}

// EqualFold reports whether two references name the same attribute,
// ignoring case.
func (a AttrRef) EqualFold(b AttrRef) bool {
	return strings.EqualFold(a.Relation, b.Relation) && strings.EqualFold(a.Attribute, b.Attribute)
}

// Scheme identifies a rule scheme X→Y: the attribute pair a rule set is
// induced for.
type Scheme struct {
	X, Y AttrRef
}

// String renders the scheme as "X --> Y".
func (s Scheme) String() string { return s.X.String() + " --> " + s.Y.String() }

// Key returns a case-normalised map key for the scheme.
func (s Scheme) Key() string { return s.X.Key() + "-->" + s.Y.Key() }
