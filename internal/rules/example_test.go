package rules_test

import (
	"fmt"

	"intensional/internal/relation"
	"intensional/internal/rules"
)

// The forward-inference applicability test: a rule fires when its premise
// subsumes the (closed-world) query condition.
func ExampleInterval_Subsumes() {
	premise := rules.Range(relation.Int(7250), relation.Int(30000)) // R9's premise
	condition := rules.Range(relation.Int(16600), relation.Int(30000))
	fmt.Println(premise.Subsumes(condition))
	fmt.Println(condition.Subsumes(premise))
	// Output:
	// true
	// false
}

// Rules render in the paper's If-then form.
func ExampleRule_String() {
	r := &rules.Rule{
		LHS: []rules.Clause{rules.RangeClause(
			rules.Attr("CLASS", "Displacement"), relation.Int(7250), relation.Int(30000))},
		RHS: rules.PointClause(rules.Attr("CLASS", "Type"), relation.String("SSBN")),
	}
	fmt.Println(r)
	// Output:
	// if 7250 <= CLASS.Displacement <= 30000 then CLASS.Type = SSBN
}

// Encode produces the relocatable rule relations of Section 5.2.2.
func ExampleEncode() {
	set := rules.NewSet()
	set.Add(&rules.Rule{
		LHS: []rules.Clause{rules.RangeClause(rules.Attr("R", "A"),
			relation.String("a1"), relation.String("a2"))},
		RHS: rules.PointClause(rules.Attr("R", "B"), relation.String("b1")),
	})
	enc, _ := rules.Encode(set)
	for _, row := range enc.Rules.Rows() {
		fmt.Println(row)
	}
	// Output:
	// (1, L, 1, 0, 2)
	// (1, R, 1, 1, 1)
}
