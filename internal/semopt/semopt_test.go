package semopt_test

import (
	"strings"
	"testing"

	"intensional/internal/dict"
	"intensional/internal/induct"
	"intensional/internal/query"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/semopt"
	"intensional/internal/shipdb"
)

func shipSetup(t *testing.T) (*dict.Dictionary, *query.Processor) {
	t.Helper()
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	set, err := induct.New(d, induct.Options{Nc: 3}).InduceAll()
	if err != nil {
		t.Fatal(err)
	}
	d.SetRules(set)
	return d, query.New(cat)
}

func analyse(t *testing.T, d *dict.Dictionary, q *query.Processor, sql string) *semopt.Report {
	t.Helper()
	_, an, err := q.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := semopt.Analyze(an, d)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestImpliedFilter: Example 1's condition implies Type = SSBN, an extra
// filter a partitioned store could exploit.
func TestImpliedFilter(t *testing.T) {
	d, q := shipSetup(t)
	rep := analyse(t, d, q, `SELECT SUBMARINE.ID FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000`)
	if rep.Empty {
		t.Fatal("not empty")
	}
	found := false
	for _, imp := range rep.Implied {
		if imp.Attr.EqualFold(rules.Attr("CLASS", "Type")) && imp.Op == "=" &&
			imp.Val.Equal(relation.String("SSBN")) {
			found = true
		}
	}
	if !found {
		t.Errorf("implied = %v", rep.Implied)
	}
	if !strings.Contains(rep.String(), "implied filter: CLASS.Type = \"SSBN\"") {
		t.Errorf("report = %q", rep.String())
	}
}

// TestEmptyProof: a condition outside the active domain proves the
// answer empty without scanning.
func TestEmptyProof(t *testing.T) {
	d, q := shipSetup(t)
	rep := analyse(t, d, q, `SELECT Class FROM CLASS WHERE Displacement < 2000`)
	if !rep.Empty || len(rep.Because) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "empty: no stored value satisfies") {
		t.Errorf("report = %q", rep.String())
	}
}

// TestRedundantRestriction: "Displacement > 3000 AND Displacement > 8000"
// makes the first restriction droppable.
func TestRedundantRestriction(t *testing.T) {
	d, q := shipSetup(t)
	rep := analyse(t, d, q, `SELECT Class FROM CLASS
		WHERE Displacement > 3000 AND Displacement > 8000`)
	if len(rep.Redundant) != 1 || rep.Redundant[0] != 0 {
		t.Errorf("redundant = %v", rep.Redundant)
	}
}

func TestNoAdvice(t *testing.T) {
	d, q := shipSetup(t)
	rep := analyse(t, d, q, `SELECT Class FROM CLASS WHERE Displacement > 5000`)
	if rep.Empty || len(rep.Implied) != 0 || len(rep.Redundant) != 0 {
		t.Errorf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "no semantic optimization applies") {
		t.Errorf("report = %q", rep.String())
	}
}

func TestNonConjunctiveSkipped(t *testing.T) {
	d, q := shipSetup(t)
	rep := analyse(t, d, q, `SELECT Class FROM CLASS WHERE Type = "SSBN" OR Displacement > 8000`)
	if rep.Empty || len(rep.Implied) != 0 {
		t.Errorf("report = %+v", rep)
	}
}
