// Package semopt implements semantic query optimization over the induced
// knowledge — the companion technique the paper cites as [CHU90]
// ("Semantic Query Optimization via Database Restructuring") and [KING81]
// (QUIST). The same rule base that produces intensional answers also
// improves query processing:
//
//   - Empty proof: a restriction no stored value satisfies proves the
//     answer empty without scanning.
//   - Implied restrictions: forward-derived facts are additional filters
//     a processor may push into the plan (e.g. "Displacement > 8000"
//     implies "Type = SSBN", letting a type-partitioned store skip the
//     SSN partition).
//   - Redundant restrictions: a restriction whose interval is implied by
//     another restriction on the same attribute can be dropped from the
//     filter.
package semopt

import (
	"fmt"
	"strings"

	"intensional/internal/dict"
	"intensional/internal/infer"
	"intensional/internal/query"
	"intensional/internal/rules"
)

// Report is the optimizer's advice for one query.
type Report struct {
	// Empty reports the answer is provably empty; Because names the
	// restrictions that prove it.
	Empty   bool
	Because []query.Restriction
	// Implied lists additional restrictions every answer tuple satisfies
	// (derived by forward inference), usable as extra plan filters.
	Implied []query.Restriction
	// Redundant lists indices into the analysis' Restrictions whose
	// condition is implied by another restriction and can be dropped.
	Redundant []int
}

// String renders the advice.
func (r *Report) String() string {
	var b strings.Builder
	if r.Empty {
		for _, why := range r.Because {
			fmt.Fprintf(&b, "empty: no stored value satisfies %s\n", why)
		}
		return b.String()
	}
	for _, imp := range r.Implied {
		fmt.Fprintf(&b, "implied filter: %s\n", imp)
	}
	for _, i := range r.Redundant {
		fmt.Fprintf(&b, "redundant restriction #%d\n", i)
	}
	if b.Len() == 0 {
		b.WriteString("no semantic optimization applies\n")
	}
	return b.String()
}

// Analyze derives the optimizer's advice for a query analysis using the
// dictionary's rule base and active domains.
func Analyze(an *query.Analysis, d *dict.Dictionary) (*Report, error) {
	rep := &Report{}
	if !an.Conjunctive {
		return rep, nil // only conjunctive conditions are analysed
	}
	res, err := infer.New(d).Derive(an)
	if err != nil {
		return nil, err
	}
	if res.Empty {
		rep.Empty = true
		rep.Because = res.EmptyBecause
		return rep, nil
	}

	// Forward facts become implied restrictions.
	for _, f := range res.Forward() {
		r := query.Restriction{Attr: f.Attr, HasInterval: true, Interval: f.Interval}
		switch {
		case f.Interval.IsPoint():
			r.Op = "="
			r.Val = f.Interval.Lo.Value
		case !f.Interval.Lo.Unbounded && !f.Interval.Hi.Unbounded:
			// Render a closed range as the pair of comparisons; keep the
			// interval for programmatic consumers and describe with >=.
			r.Op = ">="
			r.Val = f.Interval.Lo.Value
		}
		rep.Implied = append(rep.Implied, r)
	}

	// Redundancy: restriction i is implied by restriction j (i != j) on
	// the same attribute when j's interval lies within i's.
	for i, ri := range an.Restrictions {
		if !ri.HasInterval {
			continue
		}
		for j, rj := range an.Restrictions {
			if i == j || !rj.HasInterval {
				continue
			}
			if !sameAttr(ri.Attr, rj.Attr) {
				continue
			}
			if rj.Interval.Within(ri.Interval) && !ri.Interval.Within(rj.Interval) {
				rep.Redundant = append(rep.Redundant, i)
				break
			}
		}
	}
	return rep, nil
}

func sameAttr(a, b rules.AttrRef) bool { return a.EqualFold(b) }
