package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the pass that produced it, a
// human-readable message, and optionally related positions carrying
// the other half of the story (the blocking call a context never
// reaches, the write whose bytes a return leaves unsynced). String
// renders the canonical "file:line:col: [pass] message" form the CLI
// prints; related positions are rendered indented below it.
type Diagnostic struct {
	Pos     token.Position
	Pass    string
	Message string
	Related []Related
}

// Related is a secondary position attached to a Diagnostic.
type Related struct {
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
}

// Pass is one analyzer: it inspects a loaded program and reports
// diagnostics. Package-scoped passes are lifted to this signature with
// perPackage; the interprocedural passes (ctxflow, snapfreeze,
// fsyncorder) consume the program's call graph directly.
type Pass struct {
	Name string
	Doc  string
	Run  func(*Program) []Diagnostic
}

// perPackage lifts a package-scoped analyzer to the program level, so
// the intra-package passes run on the same engine as the
// interprocedural ones.
func perPackage(run func(*Package) []Diagnostic) func(*Program) []Diagnostic {
	return func(prog *Program) []Diagnostic {
		var out []Diagnostic
		for _, pkg := range prog.Packages {
			out = append(out, run(pkg)...)
		}
		return out
	}
}

// Passes returns the full pass catalogue in stable order.
func Passes() []*Pass {
	return []*Pass{
		lockguardPass, maporderPass, rowaliasPass, errdropPass, faultseamPass,
		ctxflowPass, snapfreezePass, fsyncorderPass,
	}
}

// PassByName resolves one pass.
func PassByName(name string) (*Pass, bool) {
	for _, p := range Passes() {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// Run executes the passes over every package of the program and returns
// the surviving diagnostics sorted by position. Findings on lines
// carrying an "//ilint:allow <pass>" comment are dropped — the escape
// hatch for the rare deliberate violation (it is not used anywhere in
// this repo's production code; violations are fixed instead).
func (prog *Program) Run(passes ...*Pass) []Diagnostic {
	allowed := prog.allowedLines()
	var out []Diagnostic
	for _, pass := range passes {
		for _, d := range pass.Run(prog) {
			if allowed[lineKey{d.Pos.Filename, d.Pos.Line}][pass.Name] {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
	return out
}

type lineKey struct {
	file string
	line int
}

var allowRe = regexp.MustCompile(`ilint:allow\s+([\w,]+)`)

// allowedLines maps file:line to the set of pass names suppressed
// there, across every package of the program — interprocedural passes
// can report a finding in any package, so suppression is program-wide.
func (prog *Program) allowedLines() map[lineKey]map[string]bool {
	out := map[lineKey]map[string]bool{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := lineKey{pos.Filename, pos.Line}
					if out[k] == nil {
						out[k] = map[string]bool{}
					}
					for _, name := range strings.Split(m[1], ",") {
						out[k][strings.TrimSpace(name)] = true
					}
				}
			}
		}
	}
	return out
}

// rel builds a Related position at a node.
func (pkg *Package) rel(node ast.Node, format string, args ...any) Related {
	return Related{
		Pos:     pkg.Fset.Position(node.Pos()),
		Message: fmt.Sprintf(format, args...),
	}
}

// diag builds a Diagnostic at a node's position.
func (pkg *Package) diag(pass string, node ast.Node, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     pkg.Fset.Position(node.Pos()),
		Pass:    pass,
		Message: fmt.Sprintf(format, args...),
	}
}

// objectOf resolves an identifier through Uses then Defs.
func (pkg *Package) objectOf(id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, conversions, and indirect calls through function values.
func (pkg *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pkg.objectOf(fun).(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pkg.objectOf(fun.Sel).(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgCall reports whether the call invokes a function of the named
// package whose name satisfies want.
func (pkg *Package) isPkgCall(call *ast.CallExpr, pkgPath string, want func(name string) bool) bool {
	f := pkg.calleeFunc(call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && want(f.Name())
}

// isBuiltin reports whether the call invokes the named builtin.
func (pkg *Package) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pkg.objectOf(id).(*types.Builtin)
	return ok
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// errorType is the universe error interface, for result matching.
var errorType = types.Universe.Lookup("error").Type()

// resultErrorIndexes returns which results of a call are of type error.
func (pkg *Package) resultErrorIndexes(call *ast.CallExpr) []int {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		var out []int
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				out = append(out, i)
			}
		}
		return out
	default:
		if t != nil && types.Identical(t, errorType) {
			return []int{0}
		}
	}
	return nil
}

// parents maps every node of root to its parent, for upward walks.
func parents(root ast.Node) map[ast.Node]ast.Node {
	out := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			out[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return out
}

// stmtList extracts the statement list a node can act as a block of.
func stmtList(n ast.Node) []ast.Stmt {
	switch b := n.(type) {
	case *ast.BlockStmt:
		return b.List
	case *ast.CaseClause:
		return b.Body
	case *ast.CommClause:
		return b.Body
	}
	return nil
}

// funcDecls yields every function declaration with a body in the
// package, in file order.
func (pkg *Package) funcDecls() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
