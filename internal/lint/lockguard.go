package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// lockguardPass enforces the "// guarded by <mu>" annotation: a struct
// field so annotated may only be read or written inside functions that
// acquire that mutex (a <recv>.<mu>.Lock() or .RLock() call anywhere in
// the function), or inside functions annotated "//ilint:locked <mu>"
// declaring that their caller holds it. Composite-literal construction
// (a value no other goroutine can see yet) is exempt. The check is
// intra-package — the fields this repo guards are unexported, so every
// access site is visible to it.
var lockguardPass = &Pass{
	Name: "lockguard",
	Doc:  "fields annotated `// guarded by <mu>` must only be accessed under that mutex",
	Run:  perPackage(runLockguard),
}

var (
	guardRe  = regexp.MustCompile(`guarded by (\w+)`)
	lockedRe = regexp.MustCompile(`ilint:locked\s+(\w+)`)
)

// guardInfo records one annotated field and the mutex object guarding it.
type guardInfo struct {
	mu     types.Object
	muName string
}

func runLockguard(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	guarded := map[types.Object]guardInfo{}

	// Collect annotated fields and resolve their mutexes.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				m := guardRe.FindStringSubmatch(fieldComment(field))
				if m == nil {
					continue
				}
				muName := m[1]
				mu := structField(pkg, st, muName)
				if mu == nil {
					diags = append(diags, pkg.diag("lockguard", field,
						"field is annotated `guarded by %s` but the struct has no field %q", muName, muName))
					continue
				}
				for _, name := range field.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						guarded[obj] = guardInfo{mu: mu, muName: muName}
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return diags
	}

	for _, fd := range pkg.funcDecls() {
		held := heldMutexes(pkg, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pkg.objectOf(sel.Sel)
			g, ok := guarded[obj]
			if !ok {
				return true
			}
			if held.objs[g.mu] || held.names[g.muName] {
				return true
			}
			diags = append(diags, pkg.diag("lockguard", sel.Sel,
				"%s is guarded by %s, but %s does not acquire it (and is not annotated //ilint:locked %s)",
				sel.Sel.Name, g.muName, funcName(fd), g.muName))
			return true
		})
	}
	return diags
}

// fieldComment joins a field's doc and line comments.
func fieldComment(f *ast.Field) string {
	var parts []string
	if f.Doc != nil {
		parts = append(parts, f.Doc.Text())
	}
	if f.Comment != nil {
		parts = append(parts, f.Comment.Text())
	}
	return strings.Join(parts, " ")
}

// structField resolves a named field of a struct literal type.
func structField(pkg *Package, st *ast.StructType, name string) types.Object {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return pkg.Info.Defs[n]
			}
		}
	}
	return nil
}

// heldSet is the mutexes a function acquires (by field object) or
// declares held via //ilint:locked (by name).
type heldSet struct {
	objs  map[types.Object]bool
	names map[string]bool
}

// heldMutexes scans a function for <x>.<mu>.Lock/RLock calls and
// //ilint:locked annotations.
func heldMutexes(pkg *Package, fd *ast.FuncDecl) heldSet {
	held := heldSet{objs: map[types.Object]bool{}, names: map[string]bool{}}
	if fd.Doc != nil {
		// Directive comments are stripped by CommentGroup.Text, so scan
		// the raw list.
		for _, c := range fd.Doc.List {
			for _, m := range lockedRe.FindAllStringSubmatch(c.Text, -1) {
				held.names[m[1]] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch recv := unparen(sel.X).(type) {
		case *ast.SelectorExpr: // c.mu.Lock()
			if obj := pkg.objectOf(recv.Sel); obj != nil {
				held.objs[obj] = true
			}
		case *ast.Ident: // mu.Lock() on a local or package-level mutex
			if obj := pkg.objectOf(recv); obj != nil {
				held.objs[obj] = true
			}
		}
		return true
	})
	return held
}

// funcName renders a function declaration's name for diagnostics.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}
