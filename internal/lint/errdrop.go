package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errdropPass flags discarded error results in non-test code: bare call
// statements whose results include an error, deferred calls that drop
// one (the `defer f.Close()` data-loss class), and assignments that
// send an error to the blank identifier. Exempt by convention, because
// their errors are either unreachable or universally ignored:
//
//   - the fmt Print/Fprint family (console/report output),
//   - methods of strings.Builder and bytes.Buffer, documented to
//     always return a nil error.
//
// Everything else must handle or propagate its error; the repo fixes
// findings rather than suppressing them.
var errdropPass = &Pass{
	Name: "errdrop",
	Doc:  "error results must not be silently discarded",
	Run:  perPackage(runErrdrop),
}

func runErrdrop(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(stmt.X).(*ast.CallExpr); ok {
					if d, bad := dropsError(pkg, call, "discarded"); bad {
						diags = append(diags, d)
					}
				}
			case *ast.DeferStmt:
				if d, bad := dropsError(pkg, stmt.Call, "discarded by defer"); bad {
					diags = append(diags, d)
				}
			case *ast.GoStmt:
				if d, bad := dropsError(pkg, stmt.Call, "discarded by go statement"); bad {
					diags = append(diags, d)
				}
			case *ast.AssignStmt:
				diags = append(diags, blankErrorAssigns(pkg, stmt)...)
			}
			return true
		})
	}
	return diags
}

// dropsError reports whether the statement form drops the call's error.
func dropsError(pkg *Package, call *ast.CallExpr, how string) (Diagnostic, bool) {
	if len(pkg.resultErrorIndexes(call)) == 0 || exemptCall(pkg, call) {
		return Diagnostic{}, false
	}
	return pkg.diag("errdrop", call, "error result of %s is %s", calleeName(pkg, call), how), true
}

// blankErrorAssigns flags `_ = errExpr` and `x, _ := f()` forms where a
// blank identifier swallows an error.
func blankErrorAssigns(pkg *Package, stmt *ast.AssignStmt) []Diagnostic {
	var diags []Diagnostic
	flag := func(rhs ast.Expr, desc string) {
		diags = append(diags, pkg.diag("errdrop", rhs,
			"error result of %s is assigned to the blank identifier", desc))
	}
	if len(stmt.Lhs) != len(stmt.Rhs) {
		// Single multi-value call distributed over the targets.
		if len(stmt.Rhs) != 1 {
			return nil
		}
		call, ok := unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok || exemptCall(pkg, call) {
			return nil
		}
		for _, i := range pkg.resultErrorIndexes(call) {
			if i < len(stmt.Lhs) && isBlank(stmt.Lhs[i]) {
				flag(call, calleeName(pkg, call))
			}
		}
		return diags
	}
	for i, lhs := range stmt.Lhs {
		if !isBlank(lhs) {
			continue
		}
		rhs := unparen(stmt.Rhs[i])
		t := pkg.Info.TypeOf(rhs)
		if t == nil || !types.Identical(t, errorType) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok {
			if exemptCall(pkg, call) {
				continue
			}
			flag(rhs, calleeName(pkg, call))
			continue
		}
		flag(rhs, "expression")
	}
	return diags
}

func isBlank(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// exemptCall lists the callees whose errors are conventionally ignored.
func exemptCall(pkg *Package, call *ast.CallExpr) bool {
	f := pkg.calleeFunc(call)
	if f == nil {
		return false
	}
	if f.Pkg() != nil && f.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(f.Name(), "Print") || strings.HasPrefix(f.Name(), "Fprint")) {
		return true
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type().String()
		if strings.HasSuffix(recv, "strings.Builder") || strings.HasSuffix(recv, "bytes.Buffer") {
			return true
		}
	}
	// Methods reached through a hash.Hash* receiver: the hash package
	// documents that Write never returns an error.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if named := namedType(pkg.Info.TypeOf(sel.X)); named != nil {
			obj := named.Obj()
			if obj.Pkg() != nil && (obj.Pkg().Path() == "hash" || strings.HasPrefix(obj.Pkg().Path(), "hash/")) {
				return true
			}
		}
	}
	return false
}

// namedType unwraps pointers to reach a named type, if any.
func namedType(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// calleeName renders the called function for diagnostics.
func calleeName(pkg *Package, call *ast.CallExpr) string {
	if f := pkg.calleeFunc(call); f != nil {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type().String()
			star := strings.HasPrefix(t, "*")
			t = strings.TrimPrefix(t, "*")
			if i := strings.LastIndexByte(t, '/'); i >= 0 {
				t = t[i+1:] // strip the import path, keep "pkg.Type"
			}
			if star {
				t = "*" + t
			}
			return "(" + t + ")." + f.Name()
		}
		if f.Pkg() != nil {
			return f.Pkg().Name() + "." + f.Name()
		}
		return f.Name()
	}
	return "call"
}
