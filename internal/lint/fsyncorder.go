package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// fsyncorderPass enforces the durability ordering of the commit path
// in internal/wal and internal/storage: the success return of a
// function that wrote bytes must be dominated by the fsync of those
// bytes, and atomic renames must be bracketed — file bytes synced
// before the rename, the parent directory fsynced after it.
//
// The analysis replays each in-scope function as a source-ordered
// stream of filesystem events over the fault seam, tracking two bits
// of state:
//
//	dirty    bytes written (File.Write/WriteAt/Truncate, FS.WriteFile,
//	         FS.Create) that no File.Sync has covered yet
//	pending  a directory entry created (FS.OpenFile with O_CREATE)
//	         that no FS.SyncDir has covered yet
//
// Calls to other in-scope functions are classified by a bottom-up
// summary: a callee that can return success with unsynced bytes counts
// as a write; a callee that syncs and returns clean counts as a sync
// barrier. Closure bodies are replayed inline at their textual
// position, which models the fill-callback composition of the atomic
// save (the closure runs inside the callee it is passed to).
//
// Findings:
//
//	F1  a success return while dirty — the caller is told the bytes
//	    are durable before any fsync covered them
//	F2  a rename while dirty — unsynced bytes are committed into place
//	F3  a rename with no SyncDir anywhere after it — the rename itself
//	    can vanish in a power cut
//	F4  a success return while a created file's parent entry is
//	    pending — the file itself can vanish in a power cut
//
// Error returns (nil-checked error idents, Err* sentinels, wrapped
// errors) are exempt: failing un-durably is fine, succeeding un-durably
// is the bug.
var fsyncorderPass = &Pass{
	Name: "fsyncorder",
	Doc:  "commit acks in wal/storage must be dominated by the fsync of the bytes they acknowledge",
	Run:  runFsyncorder,
}

// fsyncorderScope lists the package suffixes under the rule.
var fsyncorderScope = []string{"internal/wal", "internal/storage"}

func inFsyncScope(path string) bool {
	for _, s := range fsyncorderScope {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

type fsEventKind int

const (
	evNone fsEventKind = iota
	evWrite
	evSyncFile
	evSyncDir
	evRename
	evCreateEntry
	evReturn
)

type fsEvent struct {
	kind fsEventKind
	pos  token.Pos // end position: events order by completion point
	node ast.Node
}

// fsSummary is the bottom-up per-function summary: whether a
// successful call can leave unsynced bytes, and whether it contains a
// file-sync barrier.
type fsSummary struct {
	dirty bool
	syncs bool
}

func runFsyncorder(prog *Program) []Diagnostic {
	g := prog.CallGraph()

	sums := map[*types.Func]fsSummary{}
	g.fixpoint(func(n *FuncNode) bool {
		if !inFsyncScope(n.Pkg.Path) {
			return false
		}
		old := sums[n.Fn]
		next := old
		dirty := false
		for _, ev := range fsEvents(n, sums) {
			switch ev.kind {
			case evWrite:
				dirty = true
			case evSyncFile:
				dirty = false
				next.syncs = true
			case evReturn:
				if dirty {
					next.dirty = true
				}
			}
		}
		if next != old {
			sums[n.Fn] = next
			return true
		}
		return false
	})

	var diags []Diagnostic
	for _, n := range g.order {
		if !inFsyncScope(n.Pkg.Path) {
			continue
		}
		diags = append(diags, checkFsyncFunc(n, sums)...)
	}
	return diags
}

// checkFsyncFunc replays one function's event stream and reports
// ordering violations. Each rule fires at most once per function, at
// its first occurrence.
func checkFsyncFunc(n *FuncNode, sums map[*types.Func]fsSummary) []Diagnostic {
	events := fsEvents(n, sums)
	if len(events) == 0 {
		return nil
	}
	pkg := n.Pkg

	// F3 needs lookahead: a SyncDir event at any later position.
	syncDirAfter := func(pos token.Pos) bool {
		for _, ev := range events {
			if ev.kind == evSyncDir && ev.pos > pos {
				return true
			}
		}
		return false
	}

	var diags []Diagnostic
	reported := map[fsEventKind]map[int]bool{}
	report := func(kind fsEventKind, rule int, d Diagnostic) {
		if reported[kind] == nil {
			reported[kind] = map[int]bool{}
		}
		if reported[kind][rule] {
			return
		}
		reported[kind][rule] = true
		diags = append(diags, d)
	}

	dirty := false
	pending := false
	var dirtyAt, pendingAt ast.Node
	for _, ev := range events {
		switch ev.kind {
		case evWrite:
			dirty, dirtyAt = true, ev.node
		case evSyncFile:
			dirty = false
		case evSyncDir:
			pending = false
		case evCreateEntry:
			pending, pendingAt = true, ev.node
		case evRename:
			if dirty {
				d := pkg.diag("fsyncorder", ev.node,
					"rename commits bytes that were never fsynced; sync the written file(s) before the rename")
				d.Related = []Related{pkg.rel(dirtyAt, "bytes written here are still unsynced at the rename")}
				report(evRename, 1, d)
				dirty = false
			}
			if !syncDirAfter(ev.pos) {
				report(evRename, 2, pkg.diag("fsyncorder", ev.node,
					"rename is not followed by a parent-directory fsync; the rename itself can be lost in a power cut"))
			}
		case evReturn:
			if dirty {
				d := pkg.diag("fsyncorder", ev.node,
					"returns success while written bytes are unsynced; fsync before acknowledging")
				d.Related = []Related{pkg.rel(dirtyAt, "bytes written here are not covered by any fsync on this path")}
				report(evReturn, 1, d)
			}
			if pending {
				d := pkg.diag("fsyncorder", ev.node,
					"returns success before the created file's parent directory is fsynced; the file can vanish in a power cut")
				d.Related = []Related{pkg.rel(pendingAt, "directory entry created here")}
				report(evReturn, 2, d)
			}
		}
	}
	return diags
}

// fsEvents extracts the source-ordered event stream of one function.
// Events are positioned at their node's End(), so a call nested in a
// return statement (or an argument closure's body) lands before the
// statement that contains it — matching evaluation order.
func fsEvents(n *FuncNode, sums map[*types.Func]fsSummary) []fsEvent {
	pkg := n.Pkg
	par := parents(n.Decl)
	var events []fsEvent

	for _, site := range n.Calls {
		kind := classifyFsCall(pkg, site, sums)
		if kind != evNone {
			events = append(events, fsEvent{kind: kind, pos: site.Call.End(), node: site.Call})
		}
	}

	// Success returns. Returns inside nested closures are included —
	// a fill callback returning success with unsynced bytes is exactly
	// the contract violation — but closure fall-through ends are not
	// (deferred cleanup closures fall off mid-function).
	errIdxOf := func(sig *types.Signature) int {
		if sig == nil {
			return -1
		}
		for i := sig.Results().Len() - 1; i >= 0; i-- {
			if types.Identical(sig.Results().At(i).Type(), errorType) {
				return i
			}
		}
		return -1
	}
	declSig, _ := pkg.Info.Defs[n.Decl.Name].Type().(*types.Signature)

	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		ret, ok := nd.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		// The signature owning this return: the innermost enclosing
		// function literal, or the declaration.
		sig := declSig
		for p := par[ast.Node(ret)]; p != nil; p = par[p] {
			if lit, ok := p.(*ast.FuncLit); ok {
				if t, ok := pkg.Info.TypeOf(lit).(*types.Signature); ok {
					sig = t
				}
				break
			}
			if _, ok := p.(*ast.FuncDecl); ok {
				break
			}
		}
		if successReturn(pkg, par, ret, errIdxOf(sig)) {
			events = append(events, fsEvent{kind: evReturn, pos: ret.End(), node: ret})
		}
		return true
	})

	// Fall-through end of the declaration body counts as a success
	// return for void functions.
	if list := n.Decl.Body.List; errIdxOf(declSig) < 0 {
		terminated := false
		if len(list) > 0 {
			if _, ok := list[len(list)-1].(*ast.ReturnStmt); ok {
				terminated = true
			}
		}
		if !terminated {
			events = append(events, fsEvent{kind: evReturn, pos: n.Decl.Body.End(), node: n.Decl.Body})
		}
	}

	sortFsEvents(events)
	return events
}

func sortFsEvents(events []fsEvent) {
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].pos < events[j-1].pos; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

// successReturn decides whether a return statement can acknowledge
// success. Error paths are exempt from the durability rules: a plain
// nil in the error position is success; a wrapped error (fmt.Errorf,
// errors.New), an Err* sentinel, or an error ident guarded by its own
// `!= nil` check is an error path; anything else — a bare `return err`
// that may be nil, a `return f.Close()` — is conservatively success.
func successReturn(pkg *Package, par map[ast.Node]ast.Node, ret *ast.ReturnStmt, errIdx int) bool {
	if errIdx < 0 {
		return true
	}
	if len(ret.Results) == 0 {
		// Bare return with named results: treat as an error path only
		// if we cannot see the value; conservatively success.
		return true
	}
	if errIdx >= len(ret.Results) {
		// A single call fanning out to all results: unknown, success.
		return true
	}
	switch v := unparen(ret.Results[errIdx]).(type) {
	case *ast.Ident:
		if v.Name == "nil" {
			return true
		}
		if len(v.Name) >= 3 && v.Name[:3] == "Err" {
			// Exported sentinel (ErrClosed, ErrPoisoned).
			return false
		}
		return !guardedNonNil(par, ret, v.Name)
	case *ast.CallExpr:
		f := pkg.calleeFunc(v)
		if f != nil && f.Pkg() != nil {
			p := f.Pkg().Path()
			if (p == "fmt" && f.Name() == "Errorf") || (p == "errors" && (f.Name() == "New" || f.Name() == "Join")) {
				return false
			}
		}
		return true
	}
	return true
}

// guardedNonNil reports whether ret sits inside an if-block whose
// condition proves the named ident non-nil (`if x != nil { ... return
// ... x ... }` — the standard error-propagation shape).
func guardedNonNil(par map[ast.Node]ast.Node, ret *ast.ReturnStmt, name string) bool {
	var node ast.Node = ret
	for {
		p, ok := par[node]
		if !ok {
			return false
		}
		if ifst, ok := p.(*ast.IfStmt); ok {
			if cond, ok := unparen(ifst.Cond).(*ast.BinaryExpr); ok && cond.Op == token.NEQ {
				for _, side := range []ast.Expr{cond.X, cond.Y} {
					if id, ok := unparen(side).(*ast.Ident); ok && id.Name == name {
						return true
					}
				}
			}
		}
		if _, ok := p.(*ast.FuncDecl); ok {
			return false
		}
		if _, ok := p.(*ast.FuncLit); ok {
			return false
		}
		node = p
	}
}

// faultSeamMethod identifies a call on the fault seam's FS or File
// interface and returns the receiver kind and method name. It
// classifies by the receiver *expression's* static type first — the
// seam's Write/WriteAt/ReadAt are embedded from io, so the resolved
// method object lives in package io, not internal/fault — and falls
// back to the callee's declared receiver for concrete implementations.
func faultSeamMethod(pkg *Package, call *ast.CallExpr) (recv, name string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	if n, isSeam := namedDeclaredIn(pkg.Info.TypeOf(sel.X), "internal/fault"); isSeam && (n == "FS" || n == "File") {
		return n, sel.Sel.Name, true
	}
	f := pkg.calleeFunc(call)
	if f == nil {
		return "", "", false
	}
	sig, isSig := f.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	if n, isSeam := namedDeclaredIn(sig.Recv().Type(), "internal/fault"); isSeam && (n == "FS" || n == "File") {
		return n, f.Name(), true
	}
	return "", "", false
}

// classifyFsCall maps one call site onto the event alphabet.
func classifyFsCall(pkg *Package, site CallSite, sums map[*types.Func]fsSummary) fsEventKind {
	call, f := site.Call, site.Callee
	if recv, name, ok := faultSeamMethod(pkg, call); ok {
		switch recv {
		case "File":
			switch name {
			case "Write", "WriteAt", "Truncate":
				return evWrite
			case "Sync":
				return evSyncFile
			}
		case "FS":
			switch name {
			case "WriteFile", "Create":
				return evWrite
			case "Rename":
				return evRename
			case "SyncDir":
				return evSyncDir
			case "OpenFile":
				if callCreatesEntry(call) {
					return evCreateEntry
				}
			}
		}
		return evNone
	}
	if f == nil || f.Pkg() == nil {
		// Builtins and conversions are inert; a call through a plain
		// function value is opaque — but its body, when it is a closure
		// declared in scope, is replayed inline by the caller that
		// declares it, so the unknown call itself stays neutral.
		return evNone
	}
	if inFsyncScope(f.Pkg().Path()) {
		sum := sums[f]
		if sum.dirty {
			return evWrite
		}
		if sum.syncs {
			return evSyncFile
		}
	}
	return evNone
}

// callCreatesEntry reports whether an OpenFile call's flag argument
// mentions O_CREATE.
func callCreatesEntry(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	found := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "O_CREATE" {
			found = true
		}
		return !found
	})
	return found
}
