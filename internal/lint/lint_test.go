package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads one testdata package as its own module, with the
// real repo mounted as a dependency so fixtures can import
// intensional/internal/relation.
func loadFixture(t *testing.T, name string) *Program {
	t.Helper()
	prog, err := Load(Config{
		Dir:        filepath.Join("testdata", "src", name),
		ModulePath: "fixture/" + name,
		Deps:       map[string]string{"intensional": filepath.Join("..", "..")},
	})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(prog.Packages) == 0 {
		t.Fatalf("fixture %s loaded no packages", name)
	}
	return prog
}

var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// wants collects the `// want "regex"` expectations of a program's
// files, keyed by file:line.
func wants(t *testing.T, prog *Program) map[lineKey][]string {
	t.Helper()
	out := map[lineKey][]string{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						pos := prog.Fset.Position(c.Pos())
						k := lineKey{pos.Filename, pos.Line}
						out[k] = append(out[k], m[1])
					}
				}
			}
		}
	}
	return out
}

// checkDiagnostics asserts that the diagnostics exactly satisfy the
// fixture's want expectations: every diagnostic matches a want on its
// line, and every want is hit by at least one diagnostic.
func checkDiagnostics(t *testing.T, prog *Program, diags []Diagnostic) {
	t.Helper()
	expected := wants(t, prog)
	hit := map[string]bool{}
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, pat := range expected[k] {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("bad want pattern %q at %s:%d: %v", pat, k.file, k.line, err)
			}
			if re.MatchString(d.Message) {
				matched = true
				hit[fmt.Sprintf("%s:%d:%s", k.file, k.line, pat)] = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, pats := range expected {
		for _, pat := range pats {
			if !hit[fmt.Sprintf("%s:%d:%s", k.file, k.line, pat)] {
				t.Errorf("%s:%d: expected a diagnostic matching %q, got none", k.file, k.line, pat)
			}
		}
	}
}

// runPassFixture runs one pass over its golden fixture package.
func runPassFixture(t *testing.T, passName string) {
	t.Helper()
	pass, ok := PassByName(passName)
	if !ok {
		t.Fatalf("no pass %q", passName)
	}
	prog := loadFixture(t, passName)
	diags := prog.Run(pass)
	if len(diags) == 0 {
		t.Errorf("pass %s produced no diagnostics on its fixture — the pass is dead", passName)
	}
	checkDiagnostics(t, prog, diags)
}

func TestLockguardFixture(t *testing.T)  { runPassFixture(t, "lockguard") }
func TestMaporderFixture(t *testing.T)   { runPassFixture(t, "maporder") }
func TestRowaliasFixture(t *testing.T)   { runPassFixture(t, "rowalias") }
func TestErrdropFixture(t *testing.T)    { runPassFixture(t, "errdrop") }
func TestFaultseamFixture(t *testing.T)  { runPassFixture(t, "faultseam") }
func TestCtxflowFixture(t *testing.T)    { runPassFixture(t, "ctxflow") }
func TestSnapfreezeFixture(t *testing.T) { runPassFixture(t, "snapfreeze") }
func TestFsyncorderFixture(t *testing.T) { runPassFixture(t, "fsyncorder") }

// TestAllowSuppression proves the //ilint:allow escape hatch drops a
// finding the pass would otherwise report.
func TestAllowSuppression(t *testing.T) {
	prog := loadFixture(t, "allow")
	if diags := prog.Run(Passes()...); len(diags) != 0 {
		t.Errorf("suppressed fixture produced diagnostics: %v", diags)
	}
	// Sanity: the same code without the Run-level filter does flag.
	pass, _ := PassByName("errdrop")
	raw := pass.Run(prog)
	if len(raw) == 0 {
		t.Error("allow fixture contains no raw finding — suppression test proves nothing")
	}
}

// TestRepoClean runs every pass over the real module: `make lint` must
// exit 0, and this keeps that invariant inside `go test ./...` too.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	prog, err := Load(Config{Dir: filepath.Join("..", "..")})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(prog.Packages) < 15 {
		t.Fatalf("expected to load the whole module, got %d packages", len(prog.Packages))
	}
	var msgs []string
	for _, d := range prog.Run(Passes()...) {
		msgs = append(msgs, d.String())
	}
	if len(msgs) > 0 {
		t.Errorf("ilint found %d issue(s) in the tree:\n%s", len(msgs), strings.Join(msgs, "\n"))
	}
}

// TestDiagnosticOrdering pins the deterministic sort of Run output.
func TestDiagnosticOrdering(t *testing.T) {
	prog := loadFixture(t, "errdrop")
	a := prog.Run(Passes()...)
	b := prog.Run(Passes()...)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() || len(a[i].Related) != len(b[i].Related) {
			t.Errorf("diagnostic %d differs between runs: %v vs %v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Pos.Filename < a[i-1].Pos.Filename ||
			(a[i].Pos.Filename == a[i-1].Pos.Filename && a[i].Pos.Line < a[i-1].Pos.Line) {
			t.Errorf("diagnostics not position-sorted: %v before %v", a[i-1], a[i])
		}
	}
}

// TestPassRegistry pins the pass catalogue the Makefile and docs name.
func TestPassRegistry(t *testing.T) {
	want := []string{
		"lockguard", "maporder", "rowalias", "errdrop", "faultseam",
		"ctxflow", "snapfreeze", "fsyncorder",
	}
	got := Passes()
	if len(got) != len(want) {
		t.Fatalf("expected %d passes, got %d", len(want), len(got))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Errorf("pass %d: expected %s, got %s", i, name, got[i].Name)
		}
		if got[i].Doc == "" {
			t.Errorf("pass %s has no doc", name)
		}
	}
	if _, ok := PassByName("nope"); ok {
		t.Error("PassByName accepted an unknown name")
	}
}

// TestBaselineRoundTrip pins the suppression semantics: a written
// baseline suppresses exactly the findings it was written from, and a
// fixed finding surfaces as a stale entry instead of vanishing.
func TestBaselineRoundTrip(t *testing.T) {
	mk := func(file, pass, msg string, line int) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: file, Line: line, Column: 1}, Pass: pass, Message: msg}
	}
	diags := []Diagnostic{
		mk("a.go", "ctxflow", "finding one", 3),
		mk("a.go", "ctxflow", "finding one", 9), // same key, count 2
		mk("b.go", "fsyncorder", "finding two", 5),
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, diags); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("loading baseline: %v", err)
	}
	if kept, stale := base.Apply(diags); len(kept) != 0 || len(stale) != 0 {
		t.Errorf("full baseline: kept=%d stale=%d, want 0/0", len(kept), len(stale))
	}
	// One finding fixed: its entry must surface as stale, not rot.
	kept, stale := base.Apply(diags[:2])
	if len(kept) != 0 {
		t.Errorf("kept %d findings, want 0", len(kept))
	}
	if len(stale) != 1 || stale[0].Pass != "fsyncorder" || stale[0].Count != 1 {
		t.Errorf("stale = %+v, want the fixed fsyncorder entry", stale)
	}
	// A new finding is never absorbed by an unrelated entry.
	extra := append(append([]Diagnostic{}, diags...), mk("c.go", "snapfreeze", "finding three", 1))
	if kept, _ := base.Apply(extra); len(kept) != 1 || kept[0].Pass != "snapfreeze" {
		t.Errorf("kept = %v, want only the new snapfreeze finding", kept)
	}
	// Missing file == empty baseline.
	empty, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing baseline: %v", err)
	}
	if kept, stale := empty.Apply(diags); len(kept) != 3 || len(stale) != 0 {
		t.Errorf("empty baseline: kept=%d stale=%d, want 3/0", len(kept), len(stale))
	}
}

// TestMarshalDiagnostics pins the JSON shape CI consumes.
func TestMarshalDiagnostics(t *testing.T) {
	d := Diagnostic{
		Pos: token.Position{Filename: "x.go", Line: 2, Column: 7}, Pass: "ctxflow", Message: "m",
		Related: []Related{{Pos: token.Position{Filename: "y.go", Line: 4, Column: 1}, Message: "r"}},
	}
	data, err := MarshalDiagnostics([]Diagnostic{d})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"file": "x.go"`, `"line": 2`, `"pass": "ctxflow"`, `"related"`, `"file": "y.go"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON output missing %s:\n%s", want, data)
		}
	}
	if again, _ := MarshalDiagnostics([]Diagnostic{d}); string(again) != string(data) {
		t.Error("JSON output not stable across calls")
	}
}
