package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// maporderPass flags the nondeterminism class that would silently break
// rule numbering: ranging over a map while (a) appending to a slice
// that outlives the loop, with no later sort of that slice in the
// enclosing statement sequence, or (b) emitting output (fmt print
// functions, builtin print/println) directly from the loop body. Order-
// insensitive bodies — map writes, counters, commutative min/max folds —
// are not flagged, and the canonical idiom
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// passes because the sort call referencing the slice suppresses the
// finding.
var maporderPass = &Pass{
	Name: "maporder",
	Doc:  "map iteration must not feed ordered output without an intervening sort",
	Run:  perPackage(runMaporder),
}

func runMaporder(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, fd := range pkg.funcDecls() {
		par := parents(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			diags = append(diags, checkMapRange(pkg, rs, par)...)
			return true
		})
	}
	return diags
}

func checkMapRange(pkg *Package, rs *ast.RangeStmt, par map[ast.Node]ast.Node) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok || !pkg.isBuiltin(call, "append") || i >= len(stmt.Lhs) {
					continue
				}
				target := rootObject(pkg, stmt.Lhs[i])
				if target == nil {
					continue
				}
				// Appends to a variable local to the loop body don't
				// observe iteration order across iterations.
				if target.Pos() >= rs.Pos() && target.Pos() < rs.End() {
					continue
				}
				if sortedAfter(pkg, rs, par, target) {
					continue
				}
				diags = append(diags, pkg.diag("maporder", call,
					"append to %q while ranging over a map, and no later sort of it: slice order depends on map iteration order", target.Name()))
			}
		case *ast.ExprStmt:
			call, ok := unparen(stmt.X).(*ast.CallExpr)
			if ok && isOutputCall(pkg, call) {
				diags = append(diags, pkg.diag("maporder", call,
					"output emitted while ranging over a map: line order depends on map iteration order"))
			}
		}
		return true
	})
	return diags
}

// rootObject resolves the variable at the root of an assignment target:
// the object of `x` in `x`, `x.f`, or `x[i]`.
func rootObject(pkg *Package, e ast.Expr) types.Object {
	for {
		switch v := unparen(e).(type) {
		case *ast.Ident:
			return pkg.objectOf(v)
		case *ast.SelectorExpr:
			return pkg.objectOf(v.Sel)
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isOutputCall reports whether the call writes program output: the fmt
// Print/Fprint family or the builtin print/println.
func isOutputCall(pkg *Package, call *ast.CallExpr) bool {
	if pkg.isPkgCall(call, "fmt", func(name string) bool {
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
	}) {
		return true
	}
	return pkg.isBuiltin(call, "print") || pkg.isBuiltin(call, "println")
}

// sortedAfter reports whether any statement after the range loop, in
// its enclosing block or an ancestor block of the same function,
// contains a sort/slices call whose arguments reference obj.
func sortedAfter(pkg *Package, rs *ast.RangeStmt, par map[ast.Node]ast.Node, obj types.Object) bool {
	var node ast.Node = rs
	for {
		parent, ok := par[node]
		if !ok {
			return false
		}
		if list := stmtList(parent); list != nil {
			after := false
			for _, stmt := range list {
				if stmt == node {
					after = true
					continue
				}
				if after && stmtSorts(pkg, stmt, obj) {
					return true
				}
			}
		}
		if _, isFunc := parent.(*ast.FuncDecl); isFunc {
			return false
		}
		if _, isLit := parent.(*ast.FuncLit); isLit {
			return false
		}
		node = parent
	}
}

// stmtSorts reports whether a statement calls a sorting function — the
// sort/slices packages, or a helper whose name starts with "sort" —
// with an argument referencing obj.
func stmtSorts(pkg *Package, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		f := pkg.calleeFunc(call)
		if f == nil {
			return true
		}
		fromSortPkg := f.Pkg() != nil && (f.Pkg().Path() == "sort" || f.Pkg().Path() == "slices")
		if !fromSortPkg && !strings.HasPrefix(strings.ToLower(f.Name()), "sort") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pkg.objectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
