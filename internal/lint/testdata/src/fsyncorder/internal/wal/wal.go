// Package wal is the golden fixture for the fsyncorder pass: append
// and open shapes over the real fault seam, correct and torn.
package wal

import (
	"fmt"
	"os"

	"intensional/internal/fault"
)

// commit appends and syncs before acknowledging: the contract, a true
// negative.
func commit(f fault.File, b []byte) error {
	if _, err := f.WriteAt(b, 0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// commitBad acknowledges bytes the kernel may still be buffering.
func commitBad(f fault.File, b []byte) error {
	if _, err := f.WriteAt(b, 0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil // want "returns success while written bytes are unsynced"
}

// appendSynced funnels the fsync through a helper: the callee summary
// classifies flush as a sync barrier, a true negative.
func appendSynced(f fault.File, b []byte) error {
	if _, err := f.WriteAt(b, 0); err != nil {
		return err
	}
	return flush(f)
}

// flush syncs and reports the result.
func flush(f fault.File) error {
	return f.Sync()
}

// open creates the log file and makes its directory entry durable
// before handing it out: a true negative.
func open(fsys fault.FS, path, dir string) (fault.File, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return nil, err
	}
	return f, nil
}

// openBad returns before the created entry is durable.
func openBad(fsys fault.FS, path string) (fault.File, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil // want "returns success before the created file's parent directory is fsynced"
}
