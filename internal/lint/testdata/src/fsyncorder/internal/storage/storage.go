// Package storage is the fsyncorder fixture's atomic-swap surface:
// rename must be bracketed by a file sync before and a parent
// directory sync after.
package storage

import (
	"fmt"

	"intensional/internal/fault"
)

// swap runs the full bracket — write, sync, rename, sync parent — a
// true negative.
func swap(fsys fault.FS, f fault.File, tmp, dst, parent string, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := fsys.Rename(tmp, dst); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return fsys.SyncDir(parent)
}

// swapDirty renames bytes that were never fsynced into place.
func swapDirty(fsys fault.FS, f fault.File, tmp, dst, parent string, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := fsys.Rename(tmp, dst); err != nil { // want "rename commits bytes that were never fsynced"
		return fmt.Errorf("storage: %w", err)
	}
	return fsys.SyncDir(parent)
}

// swapNoDirSync leaves the rename itself volatile: a power cut can
// roll the directory back to the old entry.
func swapNoDirSync(fsys fault.FS, f fault.File, tmp, dst string, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return fsys.Rename(tmp, dst) // want "rename is not followed by a parent-directory fsync"
}

// writeScratch intentionally skips the sync: the file is a throwaway
// scratch artifact, and the suppression documents that.
func writeScratch(f fault.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	return nil //ilint:allow fsyncorder
}
