// Package other is OUT of the faultseam scope: its import path ends in
// neither internal/storage nor internal/wal, so the same mutations that
// are findings next door must produce no diagnostics here.
package other

import "os"

func scratch(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.RemoveAll(dir)
}
