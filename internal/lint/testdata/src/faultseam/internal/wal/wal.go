// Package wal is the second in-scope fixture package: internal/wal is
// below the fault seam too.
package wal

import "os"

func create(path string) (*os.File, error) {
	return os.Create(path) // want "os.Create mutates the filesystem below the fault seam"
}

func truncate(path string) error {
	return os.Truncate(path, 0) // want "os.Truncate mutates the filesystem below the fault seam"
}
