// Package storage is the golden fixture for the faultseam pass: a
// stand-in for the real durability layer, whose import path ends in
// internal/storage and therefore sits below the fault seam.
package storage

import (
	"os"
	"path/filepath"
)

// swap mutates the filesystem directly — every call here must be a
// finding.
func swap(dir string) error {
	tmp := dir + ".tmp"
	if err := os.MkdirAll(tmp, 0o755); err != nil { // want "os.MkdirAll mutates the filesystem below the fault seam"
		return err
	}
	if err := os.WriteFile(filepath.Join(tmp, "manifest.json"), nil, 0o644); err != nil { // want "os.WriteFile mutates the filesystem below the fault seam"
		return err
	}
	if err := os.Rename(tmp, dir); err != nil { // want "os.Rename mutates the filesystem below the fault seam"
		return err
	}
	return os.RemoveAll(dir + ".old") // want "os.RemoveAll mutates the filesystem below the fault seam"
}

// open mixes an allowed read with a flagged read-write open.
func open(path string) error {
	if _, err := os.Stat(path); err != nil { // reads are allowed: not a finding
		return err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644) // want "os.OpenFile mutates the filesystem below the fault seam"
	if err != nil {
		return err
	}
	return f.Close()
}

// load is entirely read-only and must stay clean.
func load(dir string) ([]byte, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, err
	}
	return os.ReadFile(filepath.Join(dir, "manifest.json"))
}

// deliberate proves the escape hatch: the Run layer drops this finding.
func deliberate(path string) error {
	return os.Remove(path) //ilint:allow faultseam
}
