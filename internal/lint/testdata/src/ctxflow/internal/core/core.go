// Package core is the ctxflow fixture's second root surface: exported
// context-taking functions are request entrypoints too.
package core

import (
	"context"
	"time"
)

// Refresh takes a context and then ignores it.
func Refresh(ctx context.Context) {
	rebuild() // want "rebuild blocks but takes no context, and Refresh never consults"
}

// Rebuild consults its context between stages: a true negative.
func Rebuild(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	rebuild()
	return nil
}

// rebuild reaches a blocking operation and takes no context.
func rebuild() {
	time.Sleep(time.Millisecond)
}
