// Package server is the golden fixture for the ctxflow pass: handler
// shapes that detach, mislabel, or ignore the request context, next to
// the correct threading idioms.
package server

import (
	"context"
	"net/http"
	"time"
)

// base is a package-level context; its initializer runs outside any
// declared function, so the detachment itself is not on a request path.
var base = context.TODO()

// handleDetach creates a detached context on a request path.
func handleDetach(w http.ResponseWriter, r *http.Request) {
	work(context.Background()) // want "on a request path discards the request's deadline"
}

// handleForeign threads a context, but not the request's.
func handleForeign(w http.ResponseWriter, r *http.Request) {
	work(base) // want "a context not derived from the request's"
}

// handleUncancellable fires blocking work the request can never stop.
func handleUncancellable(w http.ResponseWriter, r *http.Request) {
	induce() // want "induce blocks but takes no context, and handleUncancellable never consults"
}

// handleGood derives a deadline from the request and threads it
// through: the correct idiom, a true negative.
func handleGood(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	work(ctx)
}

// handleAllowed deliberately detaches — background compaction kicked
// off by a request but owned by the server; the suppression documents
// the decision.
func handleAllowed(w http.ResponseWriter, r *http.Request) {
	work(context.Background()) //ilint:allow ctxflow
}

// wrap declares its handler as a nested literal — the middleware
// pattern; the literal's request parameter seeds the analysis.
func wrap(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		work(ctx)
		next(w, r)
	}
}

// work honors whatever context it receives.
func work(ctx context.Context) {
	select {
	case <-ctx.Done():
	case <-time.After(time.Millisecond):
	}
}

// induce reaches a blocking operation and takes no context.
func induce() {
	time.Sleep(time.Millisecond)
}
