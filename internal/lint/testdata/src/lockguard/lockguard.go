// Package lockguard is the golden fixture for the lockguard pass.
package lockguard

import "sync"

type registry struct {
	mu    sync.RWMutex
	items map[string]int // guarded by mu
	tally int            // guarded by ghost want "struct has no field"
}

// get holds the read lock: true negative.
func (r *registry) get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.items[k]
}

// put holds the write lock: true negative.
func (r *registry) put(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.items[k] = v
}

// peek reads the guarded map without the lock.
func (r *registry) peek(k string) int {
	return r.items[k] // want "items is guarded by mu"
}

// poke writes the guarded map without the lock.
func (r *registry) poke(k string) {
	delete(r.items, k) // want "items is guarded by mu"
}

// sizeLocked is documented (and machine-checked) to run under mu.
//
//ilint:locked mu
func (r *registry) sizeLocked() int {
	return len(r.items)
}

// newRegistry constructs the value before it is shared: composite
// literals are exempt.
func newRegistry() *registry {
	return &registry{items: map[string]int{}}
}

var _ = newRegistry
