// wal.go shapes the fixture like internal/wal: an append-only log
// whose offset, file handle, and closed flag share one mutex. The
// misuses below are the ones a write-ahead log invites — a lock-free
// fast-path Size(), and rewinding the offset after an error without
// re-entering the critical section.

package lockguard

import "sync"

type walLog struct {
	mu     sync.Mutex
	size   int64 // guarded by mu
	closed bool  // guarded by mu
}

// appendRecord holds the lock across the check-write-advance sequence:
// true negative.
func (l *walLog) appendRecord(n int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	l.size += n
	return true
}

// fastSize is the tempting lock-free read of the current offset; a
// concurrent append makes it a data race.
func (l *walLog) fastSize() int64 {
	return l.size // want "size is guarded by mu"
}

// rewind undoes a failed append's offset advance, but the error path
// never acquires the lock the happy path held.
func (l *walLog) rewind(n int64) {
	if l.size >= n { // want "size is guarded by mu"
		l.size -= n // want "size is guarded by mu"
	}
}

// markClosed flips the flag without the lock, racing appendRecord's
// check.
func (l *walLog) markClosed() {
	l.closed = true // want "closed is guarded by mu"
}

// truncateLocked is called from recovery code that already holds mu.
//
//ilint:locked mu
func (l *walLog) truncateLocked() {
	l.size = 0
}

var (
	_ = (*walLog).appendRecord
	_ = (*walLog).fastSize
	_ = (*walLog).rewind
	_ = (*walLog).markClosed
	_ = (*walLog).truncateLocked
)
