package lockguard

import "sync"

// counter is an all-clean true-negative type: every access to the
// guarded field takes the mutex.
type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
