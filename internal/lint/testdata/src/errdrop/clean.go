package errdrop

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// handled checks every error: true negative.
func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := twoResults()
	if err != nil {
		return err
	}
	use(n)
	return nil
}

// exempted exercises the conventional exemptions: fmt printing,
// strings.Builder, and hash writers never surface actionable errors.
func exempted() string {
	fmt.Println("report line")
	var b strings.Builder
	b.WriteString("x")
	h := fnv.New32a()
	h.Write([]byte("x"))
	fmt.Fprintf(&b, "%08x", h.Sum32())
	return b.String()
}

// voidCalls returns nothing to drop.
func voidCalls() {
	use(1)
	defer use(2)
}
