// Package errdrop is the golden fixture for the errdrop pass.
package errdrop

import (
	"errors"
	"os"
)

func mayFail() error { return errors.New("boom") }

func twoResults() (int, error) { return 0, errors.New("boom") }

func use(int) {}

// bare drops the only result.
func bare() {
	mayFail() // want "error result of errdrop.mayFail is discarded"
}

// blank discards explicitly.
func blank() {
	_ = mayFail() // want "assigned to the blank identifier"
}

// blankTuple keeps the value but blanks the error.
func blankTuple() {
	n, _ := twoResults() // want "assigned to the blank identifier"
	use(n)
}

// blankVar launders the error through a variable first.
func blankVar() {
	err := mayFail()
	_ = err // want "assigned to the blank identifier"
}

// deferred is the defer-Close data-loss class.
func deferred(f *os.File) {
	defer f.Close() // want "discarded by defer"
}

// goDrop loses the error on another goroutine.
func goDrop() {
	go mayFail() // want "discarded by go statement"
}
