// Package plan mirrors the production plan-tree layout: every named
// type here is frozen once published.
package plan

// Plan is a published execution plan.
type Plan struct {
	Root Node
	Cost int
}

// Node is one plan-tree node.
type Node interface{ Kind() string }

// Scan is a leaf node.
type Scan struct {
	Table string
	Cols  []string
}

// Kind implements Node.
func (*Scan) Kind() string { return "scan" }
