// Package query is the golden fixture for the snapfreeze pass: cached
// prepared statements whose plan trees must never be mutated after
// they are shared, next to the legal fresh-construction idioms.
package query

import "fixture/snapfreeze/internal/plan"

// Prepared mirrors the production prepared statement: planned once,
// cached, and shared by every later execution.
type Prepared struct {
	SQL  string
	Tree *plan.Plan
	Hits int
}

type cache struct {
	m map[string]*Prepared
}

// get returns the shared cached statement.
func (c *cache) get(k string) *Prepared { return c.m[k] }

// touch mutates a cached statement in place.
func (c *cache) touch(k string) {
	p := c.get(k)
	p.Hits++ // want "mutating a published Prepared value"
}

// retag rewrites a column list reachable from a published plan: the
// write lands two hops deep, but the memory is still the plan's.
func (c *cache) retag(k string) {
	s := c.get(k).Tree.Root.(*plan.Scan)
	s.Cols[0] = "renamed" // want "mutating a published Scan value"
}

// reprice hands a published plan to a helper that mutates it: the
// violation surfaces at the call site, via the helper's summary.
func (c *cache) reprice(k string) {
	p := c.get(k)
	stamp(p.Tree, 0) // want "stamp mutates its argument, but this Plan value is published"
}

// evict deliberately resets a cached statement; the cache owns a lock
// in production and the suppression documents the decision.
func (c *cache) evict(k string) {
	p := c.get(k)
	p.Hits = 0 //ilint:allow snapfreeze
}

// stamp is a constructor helper: mutating its parameter is legal, and
// the obligation to pass a fresh plan moves to its callers.
func stamp(p *plan.Plan, cost int) {
	p.Cost = cost
}

// NewPrepared builds, fills, and stamps a fresh statement before
// publishing it: every write here is to private memory, a true
// negative.
func NewPrepared(sql string) *Prepared {
	t := &plan.Plan{}
	t.Cost = 1
	t.Root = &plan.Scan{Table: sql, Cols: []string{"id"}}
	stamp(t, 2)
	return &Prepared{SQL: sql, Tree: t}
}

// install publishes a freshly built statement into the cache: writing
// the map through the cache receiver is a cache mutation, not a plan
// mutation, and the statement itself is fresh.
func (c *cache) install(sql string) *Prepared {
	p := NewPrepared(sql)
	c.m[sql] = p
	return p
}
