package maporder

import "sort"

// keysSorted is the canonical idiom: collect, then sort. True negative.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// keysHelperSorted sorts through a same-package helper, which also
// counts as an intervening sort.
func keysHelperSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(xs []string) { sort.Strings(xs) }

// sum folds commutatively; no order leaks. True negative.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// invert writes into another map; map writes are order-insensitive.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// loopLocal appends to a slice that lives and dies inside one
// iteration; no cross-iteration order is observable.
func loopLocal(m map[string][]int, f func([]int)) {
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		f(doubled)
	}
}
