// Package maporder is the golden fixture for the maporder pass.
package maporder

import "fmt"

// keysUnsorted leaks map iteration order into the returned slice.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to .out. while ranging over a map"
	}
	return out
}

// printLoop emits output in map iteration order.
func printLoop(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "output emitted while ranging over a map"
	}
}

// fieldAppend leaks map order through a struct field.
type bag struct{ vals []int }

func fieldAppend(m map[string]int, b *bag) {
	for _, v := range m {
		b.vals = append(b.vals, v) // want "append to .vals. while ranging over a map"
	}
}

var _ = keysUnsorted
var _ = printLoop
var _ = fieldAppend
