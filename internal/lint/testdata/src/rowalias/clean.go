package rowalias

import (
	"sort"

	"intensional/internal/relation"
)

// cloneAndSort copies the rows into a fresh buffer before sorting:
// the id3 idiom, a true negative.
func cloneAndSort(r *relation.Relation) []relation.Tuple {
	sorted := append([]relation.Tuple(nil), r.Rows()...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i][0].Less(sorted[j][0])
	})
	return sorted
}

// buildTuple fills a freshly made tuple cell by cell: the storage
// decoder idiom, a true negative.
func buildTuple(vals []relation.Value) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = v
	}
	return t
}

// collect appends shared tuples into a private buffer without ever
// writing through them.
func collect(r *relation.Relation) []relation.Tuple {
	var out []relation.Tuple
	for _, t := range r.Rows() {
		if !t[0].IsNull() {
			out = append(out, t)
		}
	}
	return out
}

// mutateClone edits a cloned tuple, never the shared one.
func mutateClone(r *relation.Relation) relation.Tuple {
	t := r.Row(0).Clone()
	t[0] = relation.Null()
	return t
}
