// Package rowalias is the golden fixture for the rowalias pass: it
// imports the real internal/relation package so the protected types are
// the ones production code uses.
package rowalias

import (
	"sort"

	"intensional/internal/relation"
)

// overwriteRow writes a row slot of the relation's live slice.
func overwriteRow(r *relation.Relation) {
	rows := r.Rows()
	rows[0] = nil // want "in-place write through a shared relation tuple/row slice"
}

// mutateCell writes a cell of a shared tuple.
func mutateCell(r *relation.Relation) {
	t := r.Row(0)
	t[0] = relation.Int(1) // want "in-place write through a shared relation tuple/row slice"
}

// mutateRangeVar writes through a range variable aliasing live rows.
func mutateRangeVar(r *relation.Relation) {
	for _, t := range r.Rows() {
		t[0] = relation.Null() // want "in-place write through a shared relation tuple/row slice"
	}
}

// growLive appends onto the live row slice, which may scribble into a
// shared backing array.
func growLive(r *relation.Relation, t relation.Tuple) []relation.Tuple {
	return append(r.Rows(), t) // want "append to a relation's live row slice"
}

// sortLive reorders the relation's rows behind its back.
func sortLive(r *relation.Relation) {
	rows := r.Rows()
	sort.Slice(rows, func(i, j int) bool { // want "sorting a relation's live row slice"
		return rows[i][0].Less(rows[j][0])
	})
}
