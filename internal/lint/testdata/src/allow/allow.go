// Package allow proves the //ilint:allow escape hatch: the dropped
// error below is a raw errdrop finding, suppressed at the Run layer.
package allow

import "errors"

func mayFail() error { return errors.New("boom") }

func deliberate() {
	mayFail() //ilint:allow errdrop
}
