package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// snapfreezePass enforces publish-then-freeze: once a snapshot, a
// cached response, or a prepared plan is published (installed in the
// System, inserted into a cache, handed to a concurrent reader), no
// field of it — and nothing reachable from it — may be mutated. It
// generalizes rowalias's freshness analysis interprocedurally: a value
// is *fresh* while it is still provably private to the constructing
// function (composite literals, make/new, Clone results, and the
// results of functions summarized as returning only fresh values);
// everything else of a frozen type is assumed published.
//
// Frozen types are the repo's published-immutable surfaces: every
// named type of internal/plan (plan trees are replayed verbatim by
// EXPLAIN and execution), query.Prepared and query.aggPlan (the
// prepared-statement cache), quel.RetrievePlan/scanPlan/accessPath
// (the compiled access paths inside cached plans), and core.Response /
// core.snapshot (the response cache and the snapshot chain).
// Internally-locked caches hanging off a snapshot (responseCache,
// IndexCache, planCache) are the sanctioned mutable leaves and are
// deliberately not frozen — lockguard owns their contracts.
//
// The pass reports:
//
//   - a write through a non-fresh frozen value (field assignment,
//     element assignment, append-into-field) whose access chain is not
//     rooted at a parameter — parameter-rooted writes are recorded as
//     a mutation summary instead, and
//   - a call passing a non-fresh frozen value to a function whose
//     summary says it mutates that parameter (or receiver).
//
// That split keeps constructor helpers legal: a helper may mutate the
// plan it is passed, as long as every caller hands it a fresh one.
var snapfreezePass = &Pass{
	Name: "snapfreeze",
	Doc:  "values reachable from a published snapshot, cached response, or cached plan must not be mutated",
	Run:  runSnapfreeze,
}

// frozenNamedTypes lists the frozen types outside internal/plan, keyed
// by package-path suffix.
var frozenNamedTypes = map[string]map[string]bool{
	"internal/query": {"Prepared": true, "aggPlan": true},
	"internal/quel":  {"RetrievePlan": true, "scanPlan": true, "accessPath": true},
	"internal/core":  {"Response": true, "snapshot": true},
}

// frozenType reports whether t (after pointer deref) is a frozen type.
func frozenType(t types.Type) bool {
	named := derefNamed(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if pathHasSuffix(path, "internal/plan") {
		return true
	}
	for suffix, names := range frozenNamedTypes {
		if pathHasSuffix(path, suffix) && names[obj.Name()] {
			return true
		}
	}
	return false
}

func runSnapfreeze(prog *Program) []Diagnostic {
	g := prog.CallGraph()
	freshRet := freshReturnSummaries(g)
	mutates := mutationSummaries(g, freshRet)

	var diags []Diagnostic
	for _, n := range g.order {
		diags = append(diags, checkSnapfreezeFunc(g, n, freshRet, mutates)...)
	}
	return diags
}

// freshReturnSummaries computes which functions return only fresh
// values in frozen result positions. It starts optimistic and demotes
// until a fixpoint, so constructor chains (newSnapshot calling helpers
// that call newSnapshot) converge.
func freshReturnSummaries(g *CallGraph) map[*types.Func]bool {
	freshRet := map[*types.Func]bool{}
	frozenResults := func(fn *types.Func) []int {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return nil
		}
		var out []int
		for i := 0; i < sig.Results().Len(); i++ {
			if frozenType(sig.Results().At(i).Type()) {
				out = append(out, i)
			}
		}
		return out
	}
	for _, n := range g.order {
		freshRet[n.Fn] = true
	}
	g.fixpoint(func(n *FuncNode) bool {
		if !freshRet[n.Fn] {
			return false
		}
		idxs := frozenResults(n.Fn)
		if len(idxs) == 0 {
			return false
		}
		fresh := snapFreshLocals(n.Pkg, n.Decl, freshRet)
		demote := false
		inspectSameFunc(n.Decl.Body, func(nd ast.Node) {
			ret, ok := nd.(*ast.ReturnStmt)
			if !ok || demote {
				return
			}
			if len(ret.Results) == 0 {
				// Bare return with named frozen results: provenance
				// unknown, demote.
				demote = true
				return
			}
			if len(ret.Results) != len(idxs) && len(ret.Results) <= idxs[len(idxs)-1] {
				// A single call expression fanning out to multiple
				// results: fresh only if the callee is.
				demote = !snapFresh(n.Pkg, nil, freshRet, ret.Results[0])
				return
			}
			for _, i := range idxs {
				if i < len(ret.Results) && !snapFresh(n.Pkg, fresh, freshRet, ret.Results[i]) {
					demote = true
					return
				}
			}
		})
		if demote {
			freshRet[n.Fn] = false
			return true
		}
		return false
	})
	return freshRet
}

// paramIndex locates obj among a function's receiver (index 0) and
// parameters (index 1..n); returns -1 when obj is neither.
func paramIndex(pkg *Package, fd *ast.FuncDecl, obj types.Object) int {
	idx := 0
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, name := range f.Names {
				if pkg.objectOf(name) == obj {
					return 0
				}
			}
		}
	}
	idx = 1
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, name := range f.Names {
				if pkg.objectOf(name) == obj {
					return idx
				}
				idx++
			}
			if len(f.Names) == 0 {
				idx++
			}
		}
	}
	return -1
}

// mutationSummaries computes, per function, the set of parameter slots
// (0 = receiver, 1.. = parameters) the function mutates — directly
// through a field/element write rooted at that parameter, or by
// passing the parameter to a callee that mutates it.
func mutationSummaries(g *CallGraph, freshRet map[*types.Func]bool) map[*types.Func]map[int]bool {
	mutates := map[*types.Func]map[int]bool{}
	mark := func(fn *types.Func, slot int) bool {
		if mutates[fn] == nil {
			mutates[fn] = map[int]bool{}
		}
		if mutates[fn][slot] {
			return false
		}
		mutates[fn][slot] = true
		return true
	}
	g.fixpoint(func(n *FuncNode) bool {
		changed := false
		slotOf := func(e ast.Expr) int {
			id, ok := rootIdent(e)
			if !ok {
				return -1
			}
			obj := n.Pkg.objectOf(id)
			if obj == nil {
				return -1
			}
			return paramIndex(n.Pkg, n.Decl, obj)
		}
		inspectSameFuncWrites(n.Pkg, n.Decl.Body, func(base ast.Expr) {
			if _, ok := frozenWriteBase(n.Pkg, base); !ok {
				return
			}
			if slot := slotOf(base); slot >= 0 && mark(n.Fn, slot) {
				changed = true
			}
		})
		for _, site := range n.Calls {
			f := site.Callee
			if f == nil || mutates[f] == nil {
				continue
			}
			for calleeSlot := range mutates[f] {
				var arg ast.Expr
				if calleeSlot == 0 {
					if sel, ok := unparen(site.Call.Fun).(*ast.SelectorExpr); ok {
						arg = sel.X
					}
				} else if calleeSlot-1 < len(site.Call.Args) {
					arg = site.Call.Args[calleeSlot-1]
				}
				if arg == nil {
					continue
				}
				if slot := slotOf(arg); slot >= 0 && mark(n.Fn, slot) {
					changed = true
				}
			}
		}
		return changed
	})
	return mutates
}

// frozenWriteBase attributes a write-through expression to the nearest
// enclosing *named* type on its access chain and reports that type when
// it is frozen. Writing `p.Cols[i]` mutates the plan p (the []string is
// anonymous memory of the plan); writing `sn.plans.m[k]` mutates the
// planCache, not the snapshot — the chain hits a named, non-frozen type
// first, and those (planCache, responseCache, IndexCache, Catalog, the
// query Processor) are the sanctioned internally-locked mutable leaves
// whose contracts lockguard owns.
func frozenWriteBase(pkg *Package, e ast.Expr) (*types.Named, bool) {
	for {
		cur := unparen(e)
		if t := pkg.Info.TypeOf(cur); t != nil {
			if frozenType(t) {
				return derefNamed(t), true
			}
			if derefNamed(t) != nil {
				return nil, false
			}
		}
		switch v := cur.(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return nil, false
			}
			e = v.X
		default:
			return nil, false
		}
	}
}

// rootIdent walks an access chain (x.f[i].g, &x.f, *p) down to its
// root identifier.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch v := unparen(e).(type) {
		case *ast.Ident:
			return v, true
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return nil, false
			}
			e = v.X
		default:
			return nil, false
		}
	}
}

// inspectSameFunc walks body without descending into nested function
// literals — statements of a closure belong to the closure's analysis,
// not its host's.
func inspectSameFunc(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false
		}
		if nd != nil {
			visit(nd)
		}
		return true
	})
}

// inspectSameFuncWrites reports every write-through base expression of
// the body: for `x.f = v`, `x.f[i] = v`, `*p = v`, `x.f++`, the
// expression being written through (x, x.f, p, x.f).
func inspectSameFuncWrites(pkg *Package, body *ast.BlockStmt, visit func(base ast.Expr)) {
	emit := func(lhs ast.Expr) {
		switch v := unparen(lhs).(type) {
		case *ast.SelectorExpr:
			visit(v.X)
		case *ast.IndexExpr:
			visit(v.X)
		case *ast.StarExpr:
			visit(v.X)
		}
	}
	inspectSameFunc(body, func(nd ast.Node) {
		switch st := nd.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return
			}
			for _, lhs := range st.Lhs {
				emit(lhs)
			}
		case *ast.IncDecStmt:
			emit(st.X)
		}
	})
}

// snapFreshLocals is freshLocals generalized with interprocedural
// summaries: locals assigned only from fresh expressions, where calls
// to returns-fresh functions count as fresh.
func snapFreshLocals(pkg *Package, fd *ast.FuncDecl, freshRet map[*types.Func]bool) freshSet {
	assigns := map[types.Object][]ast.Expr{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pkg.objectOf(id)
		if obj == nil {
			return
		}
		assigns[obj] = append(assigns[obj], rhs)
	}
	inspectSameFunc(fd.Body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					record(st.Lhs[i], st.Rhs[i])
				}
			} else if len(st.Rhs) == 1 {
				// Multi-value call: every target is fresh iff the call
				// is (the error half of a comma-err never roots a
				// frozen write, so the overapproximation is harmless).
				for _, lhs := range st.Lhs {
					record(lhs, st.Rhs[0])
				}
			} else {
				for _, lhs := range st.Lhs {
					record(lhs, badExpr)
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if len(st.Values) == 0 {
					record(name, nil)
				} else if i < len(st.Values) {
					record(name, st.Values[i])
				} else if len(st.Values) == 1 {
					record(name, st.Values[0])
				} else {
					record(name, badExpr)
				}
			}
		case *ast.RangeStmt:
			if st.Key != nil {
				record(st.Key, badExpr)
			}
			if st.Value != nil {
				record(st.Value, badExpr)
			}
		}
	})

	fresh := freshSet{}
	for obj := range assigns {
		fresh[obj] = true
	}
	for changed := true; changed; {
		changed = false
		for obj, rhss := range assigns {
			if !fresh[obj] {
				continue
			}
			for _, rhs := range rhss {
				if rhs == nil {
					continue
				}
				if !snapFresh(pkg, fresh, freshRet, rhs) {
					fresh[obj] = false
					changed = true
					break
				}
			}
		}
	}
	return fresh
}

// snapFresh reports whether an expression evaluates to freshly
// allocated, still-private memory. Field selection, indexing, and
// address-taking preserve freshness: a field of a fresh struct is as
// private as the struct.
func snapFresh(pkg *Package, fresh freshSet, freshRet map[*types.Func]bool, e ast.Expr) bool {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		if v.Name == "nil" {
			return true
		}
		obj := pkg.objectOf(v)
		return obj != nil && fresh[obj]
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return v.Op == token.AND && snapFresh(pkg, fresh, freshRet, v.X)
	case *ast.StarExpr:
		return snapFresh(pkg, fresh, freshRet, v.X)
	case *ast.SelectorExpr:
		// Package-qualified names are globals, never fresh.
		if id, ok := unparen(v.X).(*ast.Ident); ok {
			if _, isPkg := pkg.objectOf(id).(*types.PkgName); isPkg {
				return false
			}
		}
		return snapFresh(pkg, fresh, freshRet, v.X)
	case *ast.IndexExpr:
		return snapFresh(pkg, fresh, freshRet, v.X)
	case *ast.SliceExpr:
		return snapFresh(pkg, fresh, freshRet, v.X)
	case *ast.CallExpr:
		if pkg.isBuiltin(v, "make") || pkg.isBuiltin(v, "new") {
			return true
		}
		if pkg.isBuiltin(v, "append") && len(v.Args) > 0 {
			return snapFresh(pkg, fresh, freshRet, v.Args[0])
		}
		if tv, ok := pkg.Info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			return snapFresh(pkg, fresh, freshRet, v.Args[0])
		}
		f := pkg.calleeFunc(v)
		if f == nil {
			return false
		}
		switch f.Name() {
		case "Clone", "ShallowClone", "Copy":
			return true
		}
		return freshRet[f]
	}
	return false
}

// checkSnapfreezeFunc reports the mutation findings of one function.
func checkSnapfreezeFunc(g *CallGraph, n *FuncNode, freshRet map[*types.Func]bool, mutates map[*types.Func]map[int]bool) []Diagnostic {
	pkg := n.Pkg
	fresh := snapFreshLocals(pkg, n.Decl, freshRet)
	isParam := func(e ast.Expr) bool {
		id, ok := rootIdent(e)
		if !ok {
			return false
		}
		obj := pkg.objectOf(id)
		return obj != nil && paramIndex(pkg, n.Decl, obj) >= 0
	}

	var diags []Diagnostic
	inspectSameFuncWrites(pkg, n.Decl.Body, func(base ast.Expr) {
		named, ok := frozenWriteBase(pkg, base)
		if !ok {
			return
		}
		if snapFresh(pkg, fresh, freshRet, base) || isParam(base) {
			return
		}
		diags = append(diags, pkg.diag("snapfreeze", base,
			"mutating a published %s value after publish; build a fresh value (or Clone) and swap it in instead", named.Obj().Name()))
	})
	for _, site := range n.Calls {
		f := site.Callee
		if f == nil || mutates[f] == nil {
			continue
		}
		slots := make([]int, 0, len(mutates[f]))
		for s := range mutates[f] {
			slots = append(slots, s)
		}
		sort.Ints(slots)
		for _, slot := range slots {
			var arg ast.Expr
			if slot == 0 {
				if sel, ok := unparen(site.Call.Fun).(*ast.SelectorExpr); ok {
					arg = sel.X
				}
			} else if slot-1 < len(site.Call.Args) {
				arg = site.Call.Args[slot-1]
			}
			if arg == nil {
				continue
			}
			if !frozenType(pkg.Info.TypeOf(arg)) {
				continue
			}
			// A parameter handed onward becomes this function's own
			// mutation summary (already propagated above), checked at
			// its call sites — that keeps constructor helpers legal.
			if snapFresh(pkg, fresh, freshRet, arg) || isParam(arg) {
				continue
			}
			named := derefNamed(pkg.Info.TypeOf(arg))
			d := pkg.diag("snapfreeze", site.Call,
				"%s mutates its argument, but this %s value is published; pass a fresh value (or Clone) instead", f.Name(), named.Obj().Name())
			if cn := g.Node(f); cn != nil {
				d.Related = append(d.Related, cn.Pkg.rel(cn.Decl.Name, "%s writes through this parameter", f.Name()))
			}
			diags = append(diags, d)
		}
	}
	return diags
}
