package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// rowaliasPass protects the copy-on-write contract of
// internal/relation: outside that package, relation row slices
// ([]relation.Tuple) and tuples (relation.Tuple) obtained from a
// Relation are shared state — mutating them in place corrupts every
// view built on the same backing array. The pass flags, anywhere
// outside internal/relation:
//
//   - assignment through an index of a Tuple or []Tuple that is not a
//     function-local fresh buffer (writing a shared cell or row),
//   - append whose first argument is a non-fresh []Tuple (growing into
//     a relation's live backing array),
//   - sort/slices calls whose first argument is a non-fresh []Tuple
//     (reordering a relation's rows behind its back).
//
// "Fresh" is a flow-insensitive local analysis: a variable every one of
// whose assignments is a freshly allocated value (make, composite
// literal, Clone, append to nil/fresh, a subslice of a fresh variable).
// Building private buffers — id3's example sets, storage's decoded
// tuples — therefore stays legal; only values that may alias live rows
// are protected. Callers mutate relations through Insert/Set/Delete.
//
// internal/exec is exempt alongside internal/relation: it is the
// executor's row-owning layer, whose operators carry rows in per-batch
// arenas, pooled buffers, and hash tables held in operator state.
// Those are fresh by construction (the aliasing contract is documented
// in the exec package comment) but live in struct fields, which the
// local fresh analysis here cannot see.
var rowaliasPass = &Pass{
	Name: "rowalias",
	Doc:  "relation row slices must not be mutated outside the row-owning layers (internal/relation, internal/exec)",
	Run:  perPackage(runRowalias),
}

const (
	relationPkgSuffix = "internal/relation"
	execPkgSuffix     = "internal/exec"
)

func runRowalias(pkg *Package) []Diagnostic {
	if strings.HasSuffix(pkg.Path, relationPkgSuffix) || strings.HasSuffix(pkg.Path, execPkgSuffix) {
		return nil
	}
	var diags []Diagnostic
	for _, fd := range pkg.funcDecls() {
		fresh := freshLocals(pkg, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					ix, ok := unparen(lhs).(*ast.IndexExpr)
					if !ok {
						continue
					}
					base := unparen(ix.X)
					if !isTupleType(pkg.Info.TypeOf(base)) && !isRowSliceType(pkg.Info.TypeOf(base)) {
						continue
					}
					if fresh.is(pkg, base) {
						continue
					}
					diags = append(diags, pkg.diag("rowalias", ix,
						"in-place write through a shared relation tuple/row slice; clone it or use the Relation Insert/Set/Delete API"))
				}
			case *ast.IncDecStmt:
				if ix, ok := unparen(stmt.X).(*ast.IndexExpr); ok {
					base := unparen(ix.X)
					if (isTupleType(pkg.Info.TypeOf(base)) || isRowSliceType(pkg.Info.TypeOf(base))) && !fresh.is(pkg, base) {
						diags = append(diags, pkg.diag("rowalias",
							stmt, "in-place write through a shared relation tuple/row slice; clone it or use the Relation Insert/Set/Delete API"))
					}
				}
			case *ast.CallExpr:
				diags = append(diags, checkRowCall(pkg, stmt, fresh)...)
			}
			return true
		})
	}
	return diags
}

// checkRowCall flags appends to and sorts of non-fresh row slices.
func checkRowCall(pkg *Package, call *ast.CallExpr, fresh freshSet) []Diagnostic {
	var diags []Diagnostic
	if pkg.isBuiltin(call, "append") && len(call.Args) > 0 {
		first := unparen(call.Args[0])
		if isRowSliceType(pkg.Info.TypeOf(first)) && !fresh.is(pkg, first) {
			diags = append(diags, pkg.diag("rowalias", call,
				"append to a relation's live row slice may write into a shared backing array; copy the rows or use Relation.Insert"))
		}
		return diags
	}
	f := pkg.calleeFunc(call)
	if f == nil || f.Pkg() == nil {
		return diags
	}
	if p := f.Pkg().Path(); p != "sort" && p != "slices" {
		return diags
	}
	if len(call.Args) == 0 {
		return diags
	}
	first := unparen(call.Args[0])
	if isRowSliceType(pkg.Info.TypeOf(first)) && !fresh.is(pkg, first) {
		diags = append(diags, pkg.diag("rowalias",
			call, "sorting a relation's live row slice reorders shared rows; sort a copy instead"))
	}
	return diags
}

// isTupleType reports whether t is relation.Tuple.
func isTupleType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Tuple" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), relationPkgSuffix)
}

// isRowSliceType reports whether t is []relation.Tuple.
func isRowSliceType(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	return ok && isTupleType(sl.Elem())
}

// freshSet is the set of function-local variables proven to hold only
// freshly allocated (unaliased) memory.
type freshSet map[types.Object]bool

// is reports whether an expression denotes fresh memory.
func (fs freshSet) is(pkg *Package, e ast.Expr) bool {
	return exprFresh(pkg, fs, e)
}

// freshLocals computes the fresh variables of a function: start
// optimistic with every local assigned at least once, then iteratively
// demote any variable with a non-fresh assignment until a fixpoint —
// the optimism lets fresh-to-fresh copies (x := y where y is fresh)
// converge correctly.
func freshLocals(pkg *Package, fd *ast.FuncDecl) freshSet {
	assigns := map[types.Object][]ast.Expr{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pkg.objectOf(id)
		if obj == nil {
			return
		}
		assigns[obj] = append(assigns[obj], rhs) // rhs may be nil: var decl without init
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					record(st.Lhs[i], st.Rhs[i])
				}
			} else {
				// Multi-value call/comma-ok: results come from elsewhere,
				// treat every target as non-fresh via a nil marker RHS
				// that exprFresh rejects.
				for _, lhs := range st.Lhs {
					record(lhs, badExpr)
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if len(st.Values) == 0 {
					record(name, nil) // zero value: fresh
				} else if i < len(st.Values) {
					record(name, st.Values[i])
				} else {
					record(name, badExpr)
				}
			}
		case *ast.RangeStmt:
			// Range variables alias the ranged container's elements.
			if st.Key != nil {
				record(st.Key, badExpr)
			}
			if st.Value != nil {
				record(st.Value, badExpr)
			}
		}
		return true
	})

	fresh := freshSet{}
	for obj := range assigns {
		fresh[obj] = true
	}
	for changed := true; changed; {
		changed = false
		for obj, rhss := range assigns {
			if !fresh[obj] {
				continue
			}
			for _, rhs := range rhss {
				if rhs == nil {
					continue // zero-value declaration
				}
				if !exprFresh(pkg, fresh, rhs) {
					fresh[obj] = false
					changed = true
					break
				}
			}
		}
	}
	return fresh
}

// badExpr marks an assignment whose value provenance is unknown.
var badExpr ast.Expr = &ast.BadExpr{}

// exprFresh reports whether an expression evaluates to freshly
// allocated memory under the current fresh-variable assumption.
func exprFresh(pkg *Package, fresh freshSet, e ast.Expr) bool {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		if v.Name == "nil" {
			return true
		}
		obj := pkg.objectOf(v)
		return obj != nil && fresh[obj]
	case *ast.CompositeLit:
		return true
	case *ast.SliceExpr:
		return exprFresh(pkg, fresh, v.X)
	case *ast.CallExpr:
		if pkg.isBuiltin(v, "make") {
			return true
		}
		if pkg.isBuiltin(v, "append") && len(v.Args) > 0 {
			return exprFresh(pkg, fresh, v.Args[0])
		}
		// Conversions like relation.Tuple(nil) or []relation.Tuple(nil).
		if tv, ok := pkg.Info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			return exprFresh(pkg, fresh, v.Args[0])
		}
		// Clone methods return independent copies by contract.
		if f := pkg.calleeFunc(v); f != nil && f.Name() == "Clone" {
			return true
		}
		return false
	}
	return false
}
