package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CallGraph is the static call graph of a loaded program: one node per
// function or method declared with a body anywhere in the module, each
// carrying every call expression of that body. Nested function
// literals are attributed to the declaration that lexically contains
// them — a closure's calls count as its enclosing function's, which is
// also how the passes reason about them. Because every package of the
// program is type-checked in one shared universe (one loader, one
// FileSet), the *types.Func a call site resolves to in one package is
// the identical object of the declaration in another, so edges cross
// package boundaries for free. Calls through interfaces resolve to the
// interface method — a leaf, since no body is statically known — and
// calls through plain function values resolve to no callee at all.
type CallGraph struct {
	nodes map[*types.Func]*FuncNode
	// order holds the nodes in declaration-position order, the
	// deterministic iteration order of every fixpoint and reachability
	// computation built on the graph.
	order []*FuncNode
}

// FuncNode is one declared function of the program.
type FuncNode struct {
	Fn    *types.Func
	Pkg   *Package
	Decl  *ast.FuncDecl
	Calls []CallSite
}

// CallSite is one call expression inside a function body.
type CallSite struct {
	Call   *ast.CallExpr
	Callee *types.Func // nil for builtins, conversions, function values
}

// Nodes returns the graph's functions in declaration-position order —
// the deterministic iteration order every analysis on the graph uses.
func (g *CallGraph) Nodes() []*FuncNode {
	return g.order
}

// CallGraph builds (once) and returns the program's call graph.
func (prog *Program) CallGraph() *CallGraph {
	if prog.cg != nil {
		return prog.cg
	}
	g := &CallGraph{nodes: map[*types.Func]*FuncNode{}}
	for _, pkg := range prog.Packages {
		for _, fd := range pkg.funcDecls() {
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &FuncNode{Fn: fn, Pkg: pkg, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					node.Calls = append(node.Calls, CallSite{Call: call, Callee: pkg.calleeFunc(call)})
				}
				return true
			})
			g.nodes[fn] = node
			g.order = append(g.order, node)
		}
	}
	sort.Slice(g.order, func(i, j int) bool {
		a := prog.Fset.Position(g.order[i].Decl.Pos())
		b := prog.Fset.Position(g.order[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	prog.cg = g
	return g
}

// Node returns the graph node of a declared function, or nil when fn
// has no body in the program (stdlib functions, interface methods).
func (g *CallGraph) Node(fn *types.Func) *FuncNode {
	return g.nodes[fn]
}

// fixpoint re-runs step over every function node, in declaration
// order, until a full sweep reports no change — the engine under the
// bottom-up summary computations (blocks, returns-fresh, sync state).
// Recursion and mutual recursion converge because every summary in the
// suite only moves monotonically.
func (g *CallGraph) fixpoint(step func(*FuncNode) bool) {
	for changed := true; changed; {
		changed = false
		for _, n := range g.order {
			if step(n) {
				changed = true
			}
		}
	}
}

// Reachable computes the functions reachable from the roots along
// static call edges, remembering for each one the root that first
// reached it — the passes attach that root as a related position so a
// finding deep in a callee names the entrypoint it matters for.
type Reachable struct {
	root map[*types.Func]*types.Func
}

// Reachable runs a breadth-first walk from the roots. Roots are
// processed in the order given, and call sites in source order, so the
// root recorded for a shared callee is deterministic.
func (g *CallGraph) Reachable(roots []*types.Func) *Reachable {
	r := &Reachable{root: map[*types.Func]*types.Func{}}
	var queue []*types.Func
	for _, rt := range roots {
		if g.nodes[rt] != nil && r.root[rt] == nil {
			r.root[rt] = rt
			queue = append(queue, rt)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, site := range g.nodes[fn].Calls {
			callee := site.Callee
			if callee == nil || g.nodes[callee] == nil {
				continue
			}
			if _, seen := r.root[callee]; seen {
				continue
			}
			r.root[callee] = r.root[fn]
			queue = append(queue, callee)
		}
	}
	return r
}

// Has reports whether fn is reachable from any root.
func (r *Reachable) Has(fn *types.Func) bool {
	_, ok := r.root[fn]
	return ok
}

// Root returns the root that first reached fn, or nil.
func (r *Reachable) Root(fn *types.Func) *types.Func {
	return r.root[fn]
}

// pathHasSuffix reports whether an import path ends with the given
// suffix at a path-segment boundary, the scope predicate every
// repo-specific pass shares (it matches both the real module and the
// fixture modules that mirror its layout).
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// derefNamed unwraps pointers and returns the named type beneath, if
// any.
func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// namedDeclaredIn reports whether t (after pointer deref) is a named
// type declared in a package whose path ends with pkgSuffix.
func namedDeclaredIn(t types.Type, pkgSuffix string) (name string, ok bool) {
	named := derefNamed(t)
	if named == nil {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pathHasSuffix(obj.Pkg().Path(), pkgSuffix) {
		return "", false
	}
	return obj.Name(), true
}
