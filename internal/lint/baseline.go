package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is a committed suppression file: known findings that are
// tolerated (typically while a new pass is being rolled out) keyed by
// pass, file, and message. A baseline never shrinks silently — entries
// that no longer match any finding are reported as stale so the file
// must be regenerated (and the improvement recorded) in the same
// change that fixed the finding.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry suppresses up to Count findings of one pass carrying
// one message in one file. Line numbers are deliberately not part of
// the key: unrelated edits move findings around, and a baseline that
// churns on every edit gets regenerated blindly.
type BaselineEntry struct {
	Pass    string `json:"pass"`
	File    string `json:"file"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

type baselineKey struct {
	pass, file, message string
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, so a repo with no tolerated findings needs no file at all.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s: unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// WriteBaseline writes the baseline that would suppress exactly the
// given diagnostics. Entries are sorted for stable diffs.
func WriteBaseline(path string, diags []Diagnostic) error {
	// An explicit empty slice keeps the clean-repo baseline file an
	// explicit "[]" rather than "null" — the committed file should read
	// as "zero suppressed findings", not as an absent field.
	b := &Baseline{Version: 1, Findings: []BaselineEntry{}}
	counts := map[baselineKey]int{}
	for _, d := range diags {
		counts[baselineKey{d.Pass, d.Pos.Filename, d.Message}]++
	}
	keys := make([]baselineKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.pass != b.pass {
			return a.pass < b.pass
		}
		return a.message < b.message
	})
	for _, k := range keys {
		b.Findings = append(b.Findings, BaselineEntry{
			Pass: k.pass, File: k.file, Message: k.message, Count: counts[k],
		})
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply filters diags through the baseline. It returns the findings
// that survive and the stale entries — suppressions whose finding no
// longer exists (or exists fewer times than Count). Callers must treat
// stale entries as an error: the baseline has to shrink explicitly,
// via regeneration, never by rotting in place.
func (b *Baseline) Apply(diags []Diagnostic) (kept []Diagnostic, stale []BaselineEntry) {
	budget := map[baselineKey]int{}
	for _, e := range b.Findings {
		budget[baselineKey{e.Pass, e.File, e.Message}] += e.Count
	}
	for _, d := range diags {
		k := baselineKey{d.Pass, d.Pos.Filename, d.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		kept = append(kept, d)
	}
	for _, e := range b.Findings {
		k := baselineKey{e.Pass, e.File, e.Message}
		if budget[k] > 0 {
			left := e
			left.Count = budget[k]
			stale = append(stale, left)
			budget[k] = 0
		}
	}
	return kept, stale
}

// jsonDiagnostic is the machine-readable finding shape emitted by
// ilint -json, consumed by CI (artifact upload and the GitHub Actions
// problem matcher operate on the same data the terminal output shows).
type jsonDiagnostic struct {
	File    string        `json:"file"`
	Line    int           `json:"line"`
	Column  int           `json:"column"`
	Pass    string        `json:"pass"`
	Message string        `json:"message"`
	Related []jsonRelated `json:"related,omitempty"`
}

type jsonRelated struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

// MarshalDiagnostics renders findings as stable, indented JSON.
func MarshalDiagnostics(diags []Diagnostic) ([]byte, error) {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		jd := jsonDiagnostic{
			File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
			Pass: d.Pass, Message: d.Message,
		}
		for _, r := range d.Related {
			jd.Related = append(jd.Related, jsonRelated{
				File: r.Pos.Filename, Line: r.Pos.Line, Column: r.Pos.Column,
				Message: r.Message,
			})
		}
		out = append(out, jd)
	}
	data, err := json.MarshalIndent(struct {
		Findings []jsonDiagnostic `json:"findings"`
	}{out}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
