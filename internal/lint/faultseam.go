package lint

import (
	"go/ast"
	"strings"
)

// faultseamPass keeps the durability layer honest about fault
// injection: packages that sit below the fault.FS seam
// (internal/storage and internal/wal) must route every
// filesystem MUTATION through an injected fault.FS, never through
// package os directly. A direct os.Rename or os.Create is invisible to
// the injector, so the chaos harness and the crash-point matrix tests
// silently stop covering that operation — the worst kind of test rot,
// where coverage decays without any test turning red.
//
// Read-only calls (os.Open, os.ReadFile, os.Stat, ...) stay allowed:
// the fault model injects failures on writes, syncs, renames, and
// removes — the operations that decide durability — and keeping reads
// on package os keeps Load and recovery probing simple.
var faultseamPass = &Pass{
	Name: "faultseam",
	Doc:  "fault-injected packages must not mutate the filesystem through package os",
	Run:  perPackage(runFaultseam),
}

// faultseamScope lists the import-path suffixes of the packages below
// the seam. Matching is by suffix so the fixture module
// (fixture/faultseam/internal/storage) exercises the same predicate as
// the real tree (intensional/internal/storage).
var faultseamScope = []string{"internal/storage", "internal/wal"}

// osMutators is the set of package-os functions that change filesystem
// state. Calls to any of these inside the scope are findings; the
// fault.FS interface offers a counterpart for each one that is needed.
var osMutators = map[string]bool{
	"Chmod":      true,
	"Chown":      true,
	"Chtimes":    true,
	"Create":     true,
	"CreateTemp": true,
	"Lchown":     true,
	"Link":       true,
	"Mkdir":      true,
	"MkdirAll":   true,
	"MkdirTemp":  true,
	"OpenFile":   true,
	"Remove":     true,
	"RemoveAll":  true,
	"Rename":     true,
	"Symlink":    true,
	"Truncate":   true,
	"WriteFile":  true,
}

func runFaultseam(pkg *Package) []Diagnostic {
	if !faultseamApplies(pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg.isPkgCall(call, "os", func(name string) bool { return osMutators[name] }) {
				diags = append(diags, pkg.diag("faultseam", call,
					"os.%s mutates the filesystem below the fault seam; go through an injected fault.FS (fault.OS in production)",
					pkg.calleeFunc(call).Name()))
			}
			return true
		})
	}
	return diags
}

// faultseamApplies reports whether the package sits below the seam.
func faultseamApplies(path string) bool {
	for _, suffix := range faultseamScope {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}
