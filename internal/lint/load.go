// Package lint is the repo's static-analysis suite: a stdlib-only
// driver (go/parser + go/ast + go/types, no golang.org/x/tools) that
// loads every package in the module and runs repo-specific passes
// enforcing the concurrency and determinism invariants the parallel
// induction pipeline depends on. See cmd/ilint for the CLI and
// DESIGN.md "Static analysis" for the pass catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the analyzed module.
type Package struct {
	Path  string        // import path
	Dir   string        // directory the files were parsed from
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded module: every package found under the root
// directory, parsed and type-checked, in deterministic path order.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	cg *CallGraph // built on first use, shared by the passes
}

// Config directs Load.
type Config struct {
	// Dir is the root directory to analyze. Every subdirectory holding
	// .go files becomes a package (directories named "testdata" and
	// hidden directories are skipped, as the go tool does).
	Dir string
	// ModulePath is the import path corresponding to Dir. When empty it
	// is read from Dir/go.mod.
	ModulePath string
	// Deps maps additional module paths to their root directories, so
	// fixture modules can import the real module under test. Imports
	// that match neither ModulePath nor Deps resolve through the
	// standard library source importer.
	Deps map[string]string
}

// Load parses and type-checks every package under cfg.Dir. Test files
// (*_test.go) are not loaded: the passes target production code, and
// external test packages would need a second type-checking universe.
func Load(cfg Config) (*Program, error) {
	if cfg.ModulePath == "" {
		mp, err := modulePath(cfg.Dir)
		if err != nil {
			return nil, err
		}
		cfg.ModulePath = mp
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:     fset,
		fallback: importer.ForCompiler(fset, "source", nil),
		roots:    []moduleRoot{{path: cfg.ModulePath, dir: cfg.Dir}},
		pkgs:     map[string]*Package{},
		checking: map[string]bool{},
	}
	// Sorted so root precedence (and any resolution diagnostics) is
	// identical run to run.
	depPaths := make([]string, 0, len(cfg.Deps))
	for p := range cfg.Deps {
		depPaths = append(depPaths, p)
	}
	sort.Strings(depPaths)
	for _, p := range depPaths {
		ld.roots = append(ld.roots, moduleRoot{path: p, dir: cfg.Deps[p]})
	}

	dirs, err := packageDirs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: fset}
	for _, dir := range dirs {
		path := importPathFor(cfg.ModulePath, cfg.Dir, dir)
		pkg, err := ld.load(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			prog.Packages = append(prog.Packages, pkg)
		}
	}
	sort.Slice(prog.Packages, func(i, j int) bool {
		return prog.Packages[i].Path < prog.Packages[j].Path
	})
	return prog, nil
}

// modulePath reads the module declaration from dir/go.mod.
func modulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s/go.mod", dir)
}

// packageDirs walks root and returns every directory containing
// non-test .go files, skipping testdata and hidden directories.
func packageDirs(root string) ([]string, error) {
	var out []string
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			return nil
		}
		name := fi.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		gofiles, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(gofiles) > 0 {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// goFilesIn lists the non-test .go files of one directory.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// importPathFor maps a directory under the module root to its import
// path.
func importPathFor(modPath, modDir, dir string) string {
	rel, err := filepath.Rel(modDir, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// moduleRoot is one import-path prefix the loader resolves from disk.
type moduleRoot struct {
	path string
	dir  string
}

// dirFor resolves an import path inside the root, if it belongs to it.
func (r moduleRoot) dirFor(path string) (string, bool) {
	if path == r.path {
		return r.dir, true
	}
	if rest, ok := strings.CutPrefix(path, r.path+"/"); ok {
		return filepath.Join(r.dir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// loader type-checks module packages on demand, recursing through
// module-internal imports and delegating everything else (the standard
// library) to the source importer.
type loader struct {
	fset     *token.FileSet
	fallback types.Importer
	roots    []moduleRoot
	pkgs     map[string]*Package
	checking map[string]bool
}

// Import implements types.Importer for module-internal resolution.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg.Types, nil
	}
	for _, root := range l.roots {
		if dir, ok := root.dirFor(path); ok {
			pkg, err := l.load(path, dir)
			if err != nil {
				return nil, err
			}
			if pkg == nil {
				return nil, fmt.Errorf("lint: no Go files in %s", dir)
			}
			return pkg.Types, nil
		}
	}
	return l.fallback.Import(path)
}

// load parses and type-checks one package directory. It returns
// (nil, nil) when the directory holds no non-test Go files.
func (l *loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	if len(names) == 0 {
		return nil, nil
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s failed:\n  %s", path, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s failed: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
