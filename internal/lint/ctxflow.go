package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxflowPass enforces context propagation on request paths: every
// blocking operation reachable from a server or core request
// entrypoint must receive and honor the request's context.Context.
//
// Entrypoints (roots) are: functions in internal/server that take a
// *net/http.Request — directly or in a nested handler closure — and
// exported internal/core functions that take a context.Context. From
// those roots the pass walks the call graph and checks three rules:
//
//	R1  a reachable function calls context.Background() or
//	    context.TODO(): the request's deadline and cancellation are
//	    silently dropped.
//	R2  a function holding a request-derived context passes some other
//	    context to a callee.
//	R3  a function holding a request-derived context makes a
//	    (transitively) blocking call that takes no context, while the
//	    function itself never consults its context — no Err/Done, and
//	    no derived context forwarded anywhere. The work outlives the
//	    request's deadline with no way to stop it.
//
// "Derived" is a local flow analysis: context parameters, request
// parameters, r.Context(), and the context.With* chains built from
// them. "Blocking" is a transitive summary over the call graph, seeded
// with the operations this repo actually blocks on: the fault.FS /
// fault.File disk seam, time.Sleep, and rule induction
// (induct.InduceAll / InducePairs).
var ctxflowPass = &Pass{
	Name: "ctxflow",
	Doc:  "request entrypoints must thread their context to every blocking operation they reach",
	Run:  runCtxflow,
}

const (
	serverPkgSuffix = "internal/server"
	corePkgSuffix   = "internal/core"
)

func runCtxflow(prog *Program) []Diagnostic {
	g := prog.CallGraph()
	blocks := blockingSummaries(g)

	var roots []*types.Func
	for _, n := range g.order {
		if ctxflowRoot(n) {
			roots = append(roots, n.Fn)
		}
	}
	reach := g.Reachable(roots)

	var diags []Diagnostic
	for _, n := range g.order {
		if !reach.Has(n.Fn) {
			continue
		}
		diags = append(diags, checkCtxflowFunc(g, n, blocks, reach)...)
	}
	return diags
}

// ctxflowRoot reports whether a function is a request entrypoint.
func ctxflowRoot(n *FuncNode) bool {
	inServer := pathHasSuffix(n.Pkg.Path, serverPkgSuffix)
	inCore := pathHasSuffix(n.Pkg.Path, corePkgSuffix)
	if !inServer && !inCore {
		return false
	}
	if inServer && len(ctxflowSources(n)) > 0 {
		return true
	}
	// Core: the exported context-taking API is the request surface.
	if !ast.IsExported(n.Decl.Name.Name) {
		return false
	}
	for _, f := range n.Decl.Type.Params.List {
		if isContextType(n.Pkg.Info.TypeOf(f.Type)) {
			return true
		}
	}
	return false
}

// ctxflowSources collects the request-context seeds of a function: its
// own context/request parameters plus those of any nested closure (the
// middleware pattern declares the handler as a literal inside a
// wrapper).
func ctxflowSources(n *FuncNode) map[types.Object]bool {
	seeds := map[types.Object]bool{}
	addFields := func(params *ast.FieldList) {
		if params == nil {
			return
		}
		for _, f := range params.List {
			t := n.Pkg.Info.TypeOf(f.Type)
			if !isContextType(t) && !isHTTPRequestPtr(t) {
				continue
			}
			for _, name := range f.Names {
				if obj := n.Pkg.objectOf(name); obj != nil {
					seeds[obj] = true
				}
			}
		}
	}
	addFields(n.Decl.Type.Params)
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		if lit, ok := nd.(*ast.FuncLit); ok {
			addFields(lit.Type.Params)
		}
		return true
	})
	return seeds
}

func isContextType(t types.Type) bool {
	name, ok := namedDeclaredIn(t, "context")
	return ok && name == "Context"
}

func isHTTPRequestPtr(t types.Type) bool {
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return false
	}
	name, ok := namedDeclaredIn(t, "net/http")
	return ok && name == "Request"
}

// blockingSummaries computes, for every declared function, whether it
// transitively reaches a blocking base operation.
func blockingSummaries(g *CallGraph) map[*types.Func]bool {
	blocks := map[*types.Func]bool{}
	g.fixpoint(func(n *FuncNode) bool {
		if blocks[n.Fn] {
			return false
		}
		for _, site := range n.Calls {
			if blockingCall(n.Pkg, site) || (site.Callee != nil && blocks[site.Callee]) {
				blocks[n.Fn] = true
				return true
			}
		}
		return false
	})
	return blocks
}

// blockingCall reports whether a call site is a blocking base
// operation: a fault-seam call (classified by receiver type, which
// also catches the Write/ReadAt methods embedded from io) or one of
// the named blocking functions.
func blockingCall(pkg *Package, site CallSite) bool {
	if _, _, ok := faultSeamMethod(pkg, site.Call); ok {
		return true
	}
	return blockingBase(site.Callee)
}

// blockingBase classifies the operations this repo blocks on: the
// fault seam's disk I/O (FS and File interface methods), time.Sleep,
// and rule induction.
func blockingBase(f *types.Func) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	path := f.Pkg().Path()
	switch {
	case path == "time" && f.Name() == "Sleep":
		return true
	case pathHasSuffix(path, "internal/fault"):
		sig, ok := f.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return false
		}
		name, ok := namedDeclaredIn(sig.Recv().Type(), "internal/fault")
		return ok && (name == "FS" || name == "File")
	case pathHasSuffix(path, "internal/induct"):
		switch f.Name() {
		case "InduceAll", "InducePairs", "InduceAllContext", "InducePairsContext":
			return true
		}
	}
	return false
}

// ctxScope is the per-function derived-context analysis.
type ctxScope struct {
	pkg     *Package
	derived map[types.Object]bool
}

// checkCtxflowFunc applies R1–R3 to one reachable function.
func checkCtxflowFunc(g *CallGraph, n *FuncNode, blocks map[*types.Func]bool, reach *Reachable) []Diagnostic {
	pkg := n.Pkg
	sc := &ctxScope{pkg: pkg, derived: ctxflowSources(n)}
	sc.propagate(n.Decl.Body)
	consults := len(sc.derived) > 0 && sc.consults(n.Decl.Body)

	rootRel := func() []Related {
		if rt := reach.Root(n.Fn); rt != nil && rt != n.Fn {
			if rn := g.Node(rt); rn != nil {
				return []Related{rn.Pkg.rel(rn.Decl.Name, "reachable from request entrypoint %s", rt.Name())}
			}
		}
		return nil
	}

	var diags []Diagnostic
	for _, site := range n.Calls {
		call, f := site.Call, site.Callee

		// R1: a detached context created on a request path.
		if isContextConstructor(f) {
			d := pkg.diag("ctxflow", call,
				"context.%s() on a request path discards the request's deadline and cancellation; derive from the request context instead", f.Name())
			d.Related = rootRel()
			diags = append(diags, d)
			continue
		}

		if len(sc.derived) == 0 {
			continue
		}

		// R2: forwarding a context that is not the request's.
		hasCtxArg := false
		for _, arg := range call.Args {
			if !isContextType(pkg.Info.TypeOf(arg)) {
				continue
			}
			hasCtxArg = true
			if sc.exprDerived(arg) {
				continue
			}
			// A direct Background()/TODO() argument is already R1.
			if c, ok := unparen(arg).(*ast.CallExpr); ok && isContextConstructor(pkg.calleeFunc(c)) {
				continue
			}
			d := pkg.diag("ctxflow", arg,
				"a context not derived from the request's is passed on a request path; thread the request context through instead")
			d.Related = rootRel()
			diags = append(diags, d)
		}

		// R3: a context-less blocking call while this function never
		// consults or forwards the context it holds.
		if hasCtxArg || consults || f == nil {
			continue
		}
		if !blockingCall(pkg, site) && !blocks[f] {
			continue
		}
		d := pkg.diag("ctxflow", call,
			"%s blocks but takes no context, and %s never consults its request context; the work cannot be cancelled", f.Name(), n.Fn.Name())
		if cn := g.Node(f); cn != nil {
			d.Related = append(d.Related, cn.Pkg.rel(cn.Decl.Name, "%s reaches a blocking operation and has no context parameter", f.Name()))
		}
		d.Related = append(d.Related, rootRel()...)
		diags = append(diags, d)
	}
	return diags
}

func isContextConstructor(f *types.Func) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "context" &&
		(f.Name() == "Background" || f.Name() == "TODO")
}

// propagate grows the derived set across assignments until a fixpoint:
// ctx := r.Context(); ctx2, cancel := context.WithTimeout(ctx, d); and
// so on.
func (sc *ctxScope) propagate(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(nd ast.Node) bool {
			st, ok := nd.(*ast.AssignStmt)
			if !ok {
				return true
			}
			mark := func(lhs ast.Expr) {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					return
				}
				obj := sc.pkg.objectOf(id)
				if obj == nil || sc.derived[obj] {
					return
				}
				t := obj.Type()
				if !isContextType(t) && !isHTTPRequestPtr(t) {
					return
				}
				sc.derived[obj] = true
				changed = true
			}
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					if sc.exprDerived(st.Rhs[i]) {
						mark(st.Lhs[i])
					}
				}
			} else if len(st.Rhs) == 1 && sc.exprDerived(st.Rhs[0]) {
				// ctx, cancel := context.WithTimeout(...): the context
				// result carries the derivation.
				for _, lhs := range st.Lhs {
					mark(lhs)
				}
			}
			return true
		})
	}
}

// exprDerived reports whether an expression evaluates to a value
// derived from the request context.
func (sc *ctxScope) exprDerived(e ast.Expr) bool {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		obj := sc.pkg.objectOf(v)
		return obj != nil && sc.derived[obj]
	case *ast.CallExpr:
		f := sc.pkg.calleeFunc(v)
		if f == nil {
			return false
		}
		recv := func() ast.Expr {
			if sel, ok := unparen(v.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		switch {
		// r.Context() on a derived request.
		case f.Name() == "Context" && f.Pkg() != nil && f.Pkg().Path() == "net/http":
			r := recv()
			return r != nil && sc.exprDerived(r)
		// context.WithCancel/WithTimeout/WithDeadline/WithValue(parent, ...).
		case f.Pkg() != nil && f.Pkg().Path() == "context" && strings.HasPrefix(f.Name(), "With"):
			return len(v.Args) > 0 && sc.exprDerived(v.Args[0])
		// r.WithContext(ctx): derived if either half is.
		case f.Name() == "WithContext" && f.Pkg() != nil && f.Pkg().Path() == "net/http":
			if r := recv(); r != nil && sc.exprDerived(r) {
				return true
			}
			return len(v.Args) > 0 && sc.exprDerived(v.Args[0])
		}
	}
	return false
}

// consults reports whether the function honors its derived context: it
// checks Err/Done/Deadline on a derived context, or forwards a derived
// *context* to a callee (r.Context() as an argument, r.WithContext).
// Forwarding the bare request does not count — handing r to a body
// decoder does nothing to cancel a separate blocking call.
func (sc *ctxScope) consults(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(nd ast.Node) bool {
		if found {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Err", "Done", "Deadline":
				if isContextType(sc.pkg.Info.TypeOf(sel.X)) && sc.exprDerived(sel.X) {
					found = true
					return false
				}
			case "WithContext":
				if len(call.Args) > 0 && sc.exprDerived(call.Args[0]) {
					found = true
					return false
				}
			}
		}
		for _, arg := range call.Args {
			if isContextType(sc.pkg.Info.TypeOf(arg)) && sc.exprDerived(arg) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
