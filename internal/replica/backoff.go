// Retry discipline for the replication tier: exponential backoff with
// full jitter and a cap.
//
// Full jitter (delay = uniform(0, min(cap, base·2^attempt))) is the
// variant that spreads a thundering herd best: after a leader restart
// every follower retries at an independent uniformly random offset, so
// the reconnect load arrives smeared instead of in synchronized waves.
// The cap keeps the worst-case wait bounded — a follower never sits out
// more than RetryMax — because replication lag is user-visible
// (read-your-writes waits park until the follower catches up).

package replica

import (
	"math/rand"
	"time"
)

// Backoff defaults, used when the corresponding field is zero.
const (
	// DefaultRetryBase is the first retry's delay ceiling.
	DefaultRetryBase = 200 * time.Millisecond
	// DefaultRetryMax caps the delay ceiling however many attempts fail.
	DefaultRetryMax = 10 * time.Second
)

// Backoff computes retry delays: exponential growth from Base, capped
// at Max, fully jittered. The zero value is usable and picks the
// defaults.
type Backoff struct {
	// Base is the ceiling of the first delay; each further attempt
	// doubles the ceiling. Zero means DefaultRetryBase.
	Base time.Duration
	// Max caps the ceiling. Zero means DefaultRetryMax.
	Max time.Duration
	// Rand supplies the jitter in [0, 1); nil means math/rand's global
	// source. Tests inject a deterministic source here.
	Rand func() float64
}

// Delay returns the wait before retry number attempt (0-based: pass 0
// after the first failure). The result is uniformly random in
// [0, min(Max, Base·2^attempt)] — full jitter, so it can be arbitrarily
// small; that is what de-synchronizes retrying followers.
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = DefaultRetryBase
	}
	max := b.Max
	if max <= 0 {
		max = DefaultRetryMax
	}
	if base > max {
		base = max
	}
	ceil := base
	for i := 0; i < attempt; i++ {
		ceil *= 2
		if ceil >= max || ceil < 0 { // < 0: overflow past the duration range
			ceil = max
			break
		}
	}
	r := b.Rand
	if r == nil {
		r = rand.Float64
	}
	return time.Duration(r() * float64(ceil))
}
