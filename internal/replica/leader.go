// The leader side of the replication wire protocol: WAL streaming plus
// chunked, resumable snapshot bootstrap, with per-follower fan-out
// tracking.
//
// Bootstrap is a two-phase fetch. The follower first GETs the snapshot
// manifest — a content-addressed description of one encoded archive:
// its sha256 id, the WAL sequence and snapshot version it captures, its
// size, and a hash per fixed-size chunk. It then fetches chunks by
// (id, index); each chunk verifies independently, so a follower that
// loses its connection resumes from the last verified chunk instead of
// re-transferring the whole archive. The leader keeps exactly one
// encoded archive cached and keeps serving its chunks even after new
// writes commit — the follower replays the delta from the WAL stream
// afterwards, which is the whole point of physical replication — and
// answers 410 Gone only when the requested id is no longer the cached
// one, telling the follower to refetch the manifest.
//
// The Leader also tracks each follower that identifies itself (the
// ?node= parameter): last acknowledged WAL sequence, last contact, and
// bootstrap transfer volume. The acked sequence is what demotion
// fencing consults — a leader refuses to step down while its configured
// successor has not acknowledged every committed record.

package replica

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"intensional/internal/core"
)

// SnapshotManifest describes one chunked bootstrap archive. The ID is
// the hex sha256 of the encoded archive — content-addressed, so a
// follower resuming a transfer can prove it is still fetching the same
// bytes — and Chunks holds the hex sha256 of each ChunkSize-byte slice
// (the last one may be shorter).
type SnapshotManifest struct {
	ID        string   `json:"id"`
	Seq       uint64   `json:"seq"`
	Version   uint64   `json:"version"`
	Size      int64    `json:"size"`
	ChunkSize int      `json:"chunkSize"`
	Chunks    []string `json:"chunks"`
}

// ErrSnapshotSuperseded is returned by Client.Chunk when the leader no
// longer serves the requested archive id: a manifest refetch rebuilt
// the cached archive. The follower starts a fresh transfer from a new
// manifest.
var ErrSnapshotSuperseded = errors.New("replica: snapshot superseded; refetch the manifest")

// DefaultChunkSize is the bootstrap chunk size when LeaderOptions does
// not override it. Chunks bound the memory both sides hold per exchange
// and set the granularity of resume — after a disconnect at most one
// chunk of transfer is repeated.
const DefaultChunkSize = 256 << 10

// LeaderOptions configure the leader side of the wire protocol.
type LeaderOptions struct {
	// ChunkSize is the bootstrap chunk size in bytes. Zero means
	// DefaultChunkSize.
	ChunkSize int
	// RateLimit caps bootstrap transfer at this many bytes per second
	// across all followers (a slow-link guard so a bootstrapping replica
	// cannot starve the serving path). Zero means unlimited.
	RateLimit int64
}

// Leader serves the replication endpoints from a leader system and
// tracks follower fan-out. One Leader is shared by the WAL and snapshot
// handlers so /metrics and demotion fencing see a single view.
type Leader struct {
	sys       *core.System
	chunkSize int
	pace      *pace

	snapMu sync.Mutex
	snap   *encodedSnapshot // guarded by snapMu

	mu        sync.Mutex
	followers map[string]*FollowerInfo // guarded by mu

	chunkRequests  atomic.Uint64
	chunkBytes     atomic.Uint64
	snapshotBuilds atomic.Uint64
}

// encodedSnapshot is the cached encoding of one bootstrap archive.
type encodedSnapshot struct {
	manifest SnapshotManifest
	data     []byte
}

// FollowerInfo is the leader's view of one self-identified follower.
type FollowerInfo struct {
	// ID is the follower's cluster node id (the ?node= parameter).
	ID string
	// AckedSeq is the highest WAL sequence the follower has acknowledged
	// applying — the after= position of its most recent poll.
	AckedSeq uint64
	// LastContact is when the follower last reached this leader.
	LastContact time.Time
	// BootstrapChunks and BootstrapBytes count snapshot transfer volume
	// served to this follower.
	BootstrapChunks uint64
	BootstrapBytes  uint64
}

// NewLeader returns a Leader serving from sys.
func NewLeader(sys *core.System, o LeaderOptions) *Leader {
	size := o.ChunkSize
	if size <= 0 {
		size = DefaultChunkSize
	}
	return &Leader{
		sys:       sys,
		chunkSize: size,
		pace:      &pace{rate: o.RateLimit},
		followers: make(map[string]*FollowerInfo),
	}
}

// System returns the system this leader serves from.
func (l *Leader) System() *core.System { return l.sys }

// Followers returns a copy of the fan-out table, sorted by node id.
func (l *Leader) Followers() []FollowerInfo {
	l.mu.Lock()
	out := make([]FollowerInfo, 0, len(l.followers))
	for _, fi := range l.followers {
		out = append(out, *fi)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AckedSeq returns the last WAL sequence the named follower
// acknowledged, and whether that follower has ever contacted this
// leader. Demotion fencing consults this.
func (l *Leader) AckedSeq(node string) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fi, ok := l.followers[node]
	if !ok {
		return 0, false
	}
	return fi.AckedSeq, true
}

// ChunkRequests returns the number of bootstrap chunk requests served —
// the chaos harness pins resume correctness on this counter, and
// /metrics exports it.
func (l *Leader) ChunkRequests() uint64 { return l.chunkRequests.Load() }

// ChunkBytes returns the total bootstrap bytes served.
func (l *Leader) ChunkBytes() uint64 { return l.chunkBytes.Load() }

// SnapshotBuilds returns how many distinct archives were encoded.
func (l *Leader) SnapshotBuilds() uint64 { return l.snapshotBuilds.Load() }

func (l *Leader) track(node string, update func(*FollowerInfo)) {
	if node == "" {
		return
	}
	l.mu.Lock()
	fi := l.followers[node]
	if fi == nil {
		fi = &FollowerInfo{ID: node}
		l.followers[node] = fi
	}
	fi.LastContact = time.Now()
	if update != nil {
		update(fi)
	}
	l.mu.Unlock()
}

// refresh returns the cached archive, rebuilding it when the system has
// committed past the cached sequence (or nothing is cached yet). Only
// manifest requests rebuild; chunk requests keep serving the cached
// bytes so an in-flight transfer stays stable under writes.
func (l *Leader) refresh() (*encodedSnapshot, error) {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	if l.snap != nil && l.snap.manifest.Seq == l.sys.WalSeq() {
		return l.snap, nil
	}
	a, err := l.sys.BootstrapArchive()
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(a)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(data)
	m := SnapshotManifest{
		ID:        hex.EncodeToString(sum[:]),
		Seq:       a.Seq,
		Version:   a.Version,
		Size:      int64(len(data)),
		ChunkSize: l.chunkSize,
	}
	for off := 0; off < len(data); off += l.chunkSize {
		end := min(off+l.chunkSize, len(data))
		h := sha256.Sum256(data[off:end])
		m.Chunks = append(m.Chunks, hex.EncodeToString(h[:]))
	}
	l.snapshotBuilds.Add(1)
	l.snap = &encodedSnapshot{manifest: m, data: data}
	return l.snap, nil
}

// cached returns the cached archive if it matches id, else nil (the
// 410 path: a manifest refetch rebuilt the cache, or the process
// restarted since the manifest was issued).
func (l *Leader) cached(id string) *encodedSnapshot {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	if l.snap != nil && l.snap.manifest.ID == id {
		return l.snap
	}
	return nil
}

// WALHandler serves GET /replica/wal: the long-poll record stream.
// Requests carrying ?node= feed the fan-out table — after=N is the
// follower's acknowledgement that it has applied every record up to N.
func (l *Leader) WALHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sys := l.sys
		if !sys.Durable() || sys.Follower() {
			http.Error(w, "replication requires a durable leader", http.StatusServiceUnavailable)
			return
		}
		q := r.URL.Query()
		after, err := strconv.ParseUint(q.Get("after"), 10, 64)
		if q.Get("after") != "" && err != nil {
			http.Error(w, "bad after parameter", http.StatusBadRequest)
			return
		}
		var wait time.Duration
		if s := q.Get("wait"); s != "" {
			secs, err := strconv.ParseFloat(s, 64)
			if err != nil || secs < 0 {
				http.Error(w, "bad wait parameter", http.StatusBadRequest)
				return
			}
			wait = time.Duration(secs * float64(time.Second))
			if wait > maxPollWait {
				wait = maxPollWait
			}
		}
		max := 256
		if s := q.Get("max"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				http.Error(w, "bad max parameter", http.StatusBadRequest)
				return
			}
			if n > maxBatchRecords {
				n = maxBatchRecords
			}
			max = n
		}
		l.track(q.Get("node"), func(fi *FollowerInfo) {
			if after > fi.AckedSeq {
				fi.AckedSeq = after
			}
		})
		recs, seq, err := sys.ReplicationBatch(r.Context(), after, wait, max)
		switch {
		case errors.Is(err, core.ErrSnapshotNeeded):
			http.Error(w, err.Error(), http.StatusGone)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(WalBatch{Records: recs, Seq: seq}); err != nil {
			// The response is already streaming; nothing to salvage.
			return
		}
	})
}

// SnapshotHandler serves GET /replica/snapshot:
//
//	GET /replica/snapshot                      → SnapshotManifest (JSON)
//	GET /replica/snapshot?id=H&chunk=N&size=S  → chunk N's raw bytes
//
// A chunk request whose id is not the cached archive gets 410 Gone; a
// size that disagrees with the manifest's chunk size gets 400, since
// the chunk hashes are only meaningful at the advertised granularity.
func (l *Leader) SnapshotHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if l.sys.Follower() {
			http.Error(w, "snapshots come from the leader", http.StatusServiceUnavailable)
			return
		}
		q := r.URL.Query()
		node := q.Get("node")
		if q.Get("chunk") == "" {
			es, err := l.refresh()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			l.track(node, nil)
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(es.manifest); err != nil {
				return
			}
			return
		}
		n, err := strconv.Atoi(q.Get("chunk"))
		if err != nil || n < 0 {
			http.Error(w, "bad chunk parameter", http.StatusBadRequest)
			return
		}
		es := l.cached(q.Get("id"))
		if es == nil {
			http.Error(w, "snapshot superseded; refetch the manifest", http.StatusGone)
			return
		}
		if s := q.Get("size"); s != "" {
			size, err := strconv.Atoi(s)
			if err != nil || size != es.manifest.ChunkSize {
				http.Error(w, "size disagrees with the manifest chunk size", http.StatusBadRequest)
				return
			}
		}
		if n >= len(es.manifest.Chunks) {
			http.Error(w, "chunk index beyond the manifest", http.StatusBadRequest)
			return
		}
		off := n * es.manifest.ChunkSize
		end := min(off+es.manifest.ChunkSize, len(es.data))
		if err := l.pace.wait(r.Context(), end-off); err != nil {
			return // client went away while rate-limited
		}
		l.chunkRequests.Add(1)
		l.chunkBytes.Add(uint64(end - off))
		l.track(node, func(fi *FollowerInfo) {
			fi.BootstrapChunks++
			fi.BootstrapBytes += uint64(end - off)
		})
		w.Header().Set("Content-Type", "application/octet-stream")
		if _, err := w.Write(es.data[off:end]); err != nil {
			return
		}
	})
}

// WALHandler serves GET /replica/wal from a leader system with a
// private, untracked Leader. Servers that export fan-out metrics or
// fence demotions share one NewLeader instead.
func WALHandler(sys *core.System) http.Handler {
	return NewLeader(sys, LeaderOptions{}).WALHandler()
}

// SnapshotHandler serves GET /replica/snapshot from a leader system
// with a private, untracked Leader.
func SnapshotHandler(sys *core.System) http.Handler {
	return NewLeader(sys, LeaderOptions{}).SnapshotHandler()
}

// pace is a shared byte-rate limiter: each transfer reserves its slot
// on a single timeline, so concurrent bootstraps share the budget
// instead of each getting the full rate.
type pace struct {
	rate int64 // bytes per second; <= 0 disables pacing

	mu   sync.Mutex
	next time.Time // guarded by mu — when the next reservation may start
}

// wait blocks until n bytes fit under the rate, or ctx ends.
func (p *pace) wait(ctx context.Context, n int) error {
	if p == nil || p.rate <= 0 || n <= 0 {
		return nil
	}
	p.mu.Lock()
	now := time.Now()
	if p.next.Before(now) {
		p.next = now
	}
	start := p.next
	p.next = start.Add(time.Duration(float64(n) / float64(p.rate) * float64(time.Second)))
	p.mu.Unlock()
	d := start.Sub(now)
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
