package replica_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"intensional/internal/answer"
	"intensional/internal/cluster"
	"intensional/internal/core"
	"intensional/internal/induct"
	"intensional/internal/replica"
	"intensional/internal/shipdb"
)

// testLeader builds a durable leader over the ship database (rules
// induced) and serves the replication endpoints from it.
func testLeader(t *testing.T) (*core.System, *httptest.Server) {
	t.Helper()
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	s := core.New(cat, d)
	dir := t.TempDir() + "/leader"
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	leader, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })
	if _, err := leader.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/replica/wal", replica.WALHandler(leader))
	mux.Handle("/replica/snapshot", replica.SnapshotHandler(leader))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return leader, srv
}

// waitFor polls cond until it holds, failing the test with detail()
// after the deadline. The shared condition wait: every "eventually"
// assertion in this file goes through here, so a healthy run can only
// be slowed by timing noise, never failed by it.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, detail func() string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition never held within %s: %s", timeout, detail())
		}
		time.Sleep(time.Millisecond)
	}
}

// waitForSeq waits until the follower's status reports seq applied.
func waitForSeq(t *testing.T, f *replica.Follower, seq uint64) cluster.FollowerStatus {
	t.Helper()
	waitFor(t, 10*time.Second,
		func() bool { return f.Status().AppliedSeq >= seq },
		func() string { return fmt.Sprintf("follower never reached seq %d (status %+v)", seq, f.Status()) })
	return f.Status()
}

func openFollower(t *testing.T, dir, leaderURL string, hc *http.Client) *replica.Follower {
	t.Helper()
	f, err := replica.Open(replica.Options{
		Dir:       dir,
		Leader:    leaderURL,
		PollWait:  time.Second,
		RetryBase: 2 * time.Millisecond,
		RetryMax:  20 * time.Millisecond,
		HTTP:      hc,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func assertSameAnswers(t *testing.T, leader, follower *core.System, sql string) {
	t.Helper()
	lr, err := leader.Query(sql, answer.ForwardOnly)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := follower.Query(sql, answer.ForwardOnly)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Version != fr.Version {
		t.Errorf("versions diverge: leader %d, follower %d", lr.Version, fr.Version)
	}
	if lr.Extensional.String() != fr.Extensional.String() {
		t.Errorf("extensional answers diverge:\nleader:\n%s\nfollower:\n%s", lr.Extensional, fr.Extensional)
	}
	if lr.Intensional.Text() != fr.Intensional.Text() {
		t.Errorf("intensional answers diverge:\n%q\nvs\n%q", lr.Intensional.Text(), fr.Intensional.Text())
	}
}

const subQuery = `SELECT SUBMARINE.Id, SUBMARINE.Name FROM SUBMARINE`

func TestFollowerBootstrapsAndStreams(t *testing.T) {
	leader, srv := testLeader(t)
	f := openFollower(t, t.TempDir()+"/f1", srv.URL, nil)
	defer f.Close()
	f.Start()

	waitForSeq(t, f, leader.WalSeq())
	assertSameAnswers(t, leader, f.System(), subQuery)
	st := f.Status()
	if st.Bootstraps != 1 {
		t.Errorf("bootstraps = %d, want 1", st.Bootstraps)
	}
	if st.State != cluster.StateReady {
		t.Errorf("state = %q, want ready", st.State)
	}

	// A write streams over without another bootstrap.
	res, err := leader.Apply(context.Background(), `INSERT INTO SUBMARINE VALUES ('SSN910', 'Pollfish', '0204')`)
	if err != nil {
		t.Fatal(err)
	}
	st = waitForSeq(t, f, res.Seq)
	if st.Bootstraps != 1 {
		t.Errorf("streaming caused a re-bootstrap: %d", st.Bootstraps)
	}
	assertSameAnswers(t, leader, f.System(), subQuery)

	// Follower write fencing holds at the core layer.
	if _, err := f.System().Apply(context.Background(), contradictorStmt); !errors.Is(err, core.ErrNotLeader) {
		t.Errorf("follower Apply: %v, want ErrNotLeader", err)
	}
}

const contradictorStmt = `INSERT INTO CLASS VALUES ('9901', 'Contradictor', 'SSN', 16600)`

func TestFollowerKillRestartResumes(t *testing.T) {
	leader, srv := testLeader(t)
	dir := t.TempDir() + "/f2"
	f := openFollower(t, dir, srv.URL, nil)
	f.Start()
	waitForSeq(t, f, leader.WalSeq())
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Writes land while the follower is down.
	var lastSeq uint64
	for i := 0; i < 3; i++ {
		res, err := leader.Apply(context.Background(),
			fmt.Sprintf(`INSERT INTO SUBMARINE VALUES ('SSN92%d', 'Downfish %d', '0204')`, i, i))
		if err != nil {
			t.Fatal(err)
		}
		lastSeq = res.Seq
	}

	// Restart from the same directory: local state resumes, only the
	// delta streams, no re-bootstrap.
	f2 := openFollower(t, dir, srv.URL, nil)
	defer f2.Close()
	if f2.System().WalSeq() == 0 {
		t.Fatal("restarted follower lost its local WAL position")
	}
	f2.Start()
	st := waitForSeq(t, f2, lastSeq)
	if st.Bootstraps != 0 {
		t.Errorf("restart re-bootstrapped (%d); the local WAL should have been enough", st.Bootstraps)
	}
	assertSameAnswers(t, leader, f2.System(), subQuery)
}

func TestFollowerRebootstrapsPastRetention(t *testing.T) {
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	s := core.New(cat, d)
	dir := t.TempDir() + "/leader"
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	leader, err := core.OpenDurable(dir, core.DurableOptions{ReplicationRetain: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	mux := http.NewServeMux()
	mux.Handle("/replica/wal", replica.WALHandler(leader))
	mux.Handle("/replica/snapshot", replica.SnapshotHandler(leader))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	fdir := t.TempDir() + "/f3"
	f := openFollower(t, fdir, srv.URL, nil)
	f.Start()
	waitFor(t, 10*time.Second,
		func() bool { return f.Status().Bootstraps > 0 && f.Status().State == cluster.StateReady },
		func() string { return fmt.Sprintf("follower never finished its initial bootstrap (status %+v)", f.Status()) })
	f.Stop()

	// Push the leader far past the 2-record retention window.
	var lastSeq uint64
	for i := 0; i < 6; i++ {
		res, err := leader.Apply(context.Background(),
			fmt.Sprintf(`INSERT INTO SUBMARINE VALUES ('SSN93%d', 'Gapfish %d', '0204')`, i, i))
		if err != nil {
			t.Fatal(err)
		}
		lastSeq = res.Seq
	}

	f.Start()
	defer f.Close()
	st := waitForSeq(t, f, lastSeq)
	if st.Bootstraps < 2 {
		t.Errorf("bootstraps = %d, want a re-bootstrap after falling behind retention", st.Bootstraps)
	}
	assertSameAnswers(t, leader, f.System(), subQuery)
}

// partitionTransport fails every request while partitioned.
type partitionTransport struct {
	down atomic.Bool
}

func (p *partitionTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if p.down.Load() {
		return nil, fmt.Errorf("partition: network unreachable")
	}
	return http.DefaultTransport.RoundTrip(r)
}

func TestFollowerRidesOutPartition(t *testing.T) {
	leader, srv := testLeader(t)
	pt := &partitionTransport{}
	f := openFollower(t, t.TempDir()+"/f4", srv.URL, &http.Client{Transport: pt})
	defer f.Close()
	f.Start()
	waitForSeq(t, f, leader.WalSeq())

	pt.down.Store(true)
	res, err := leader.Apply(context.Background(), `INSERT INTO SUBMARINE VALUES ('SSN940', 'Partitionfish', '0204')`)
	if err != nil {
		t.Fatal(err)
	}
	// The follower notices the partition — after DisconnectAfter
	// consecutive failures, not on the first dropped poll — but keeps
	// serving throughout.
	waitFor(t, 5*time.Second,
		func() bool { return f.Status().State == cluster.StateDisconnected },
		func() string { return fmt.Sprintf("follower never reported disconnected (status %+v)", f.Status()) })
	if _, err := f.System().Query(subQuery, answer.ForwardOnly); err != nil {
		t.Fatalf("partitioned follower stopped serving: %v", err)
	}

	// Healing the partition converges without a restart. Wait for the
	// ready state, not just the sequence: a poll in flight before the
	// partition engaged may already have delivered the record.
	pt.down.Store(false)
	waitFor(t, 10*time.Second,
		func() bool {
			st := f.Status()
			return st.State == cluster.StateReady && st.AppliedSeq >= res.Seq
		},
		func() string { return fmt.Sprintf("follower never recovered (status %+v)", f.Status()) })
	assertSameAnswers(t, leader, f.System(), subQuery)
}

func TestStatusLagReporting(t *testing.T) {
	st := cluster.FollowerStatus{LeaderSeq: 12, AppliedSeq: 10}
	if st.Lag() != 2 {
		t.Fatalf("lag = %d", st.Lag())
	}
}

func TestClientErrorMapping(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "too far behind", http.StatusGone)
	}))
	defer srv.Close()
	c := &replica.Client{Base: srv.URL}
	if _, err := c.Poll(context.Background(), 0, 0, 0); !errors.Is(err, core.ErrSnapshotNeeded) {
		t.Errorf("410 poll: %v, want ErrSnapshotNeeded", err)
	}

	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv2.Close()
	c2 := &replica.Client{Base: srv2.URL}
	if _, err := c2.Manifest(context.Background()); err == nil {
		t.Error("500 manifest must error")
	}

	// A chunk request whose archive the leader no longer caches maps to
	// ErrSnapshotSuperseded — the refetch-the-manifest signal.
	if _, err := c.Chunk(context.Background(), "deadbeef", 0, 1024); !errors.Is(err, replica.ErrSnapshotSuperseded) {
		t.Errorf("410 chunk: %v, want ErrSnapshotSuperseded", err)
	}
}

func TestWALHandlerRefusesNonLeader(t *testing.T) {
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	nondurable := core.New(cat, d)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/replica/wal", nil)
	replica.WALHandler(nondurable).ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("non-durable WAL poll: %d, want 503", rec.Code)
	}
}
