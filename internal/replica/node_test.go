package replica_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"intensional/internal/cluster"
	"intensional/internal/core"
	"intensional/internal/replica"
)

// testNode is one process of a two-node cluster under test: its system,
// its shared Leader tracker, its replication endpoints, and its role
// controller.
type testNode struct {
	sys     *core.System
	tracker *replica.Leader
	srv     *httptest.Server
	node    *replica.Node
}

// newHandoverCluster brings up node "a" leading and node "b" following,
// with b fully caught up.
func newHandoverCluster(t *testing.T, hc *http.Client) (a, b *testNode) {
	t.Helper()
	leaderSys, _ := testLeader(t) // the plain-handler server goes unused; each node mounts its own tracker
	a = &testNode{sys: leaderSys}
	a.tracker = replica.NewLeader(leaderSys, replica.LeaderOptions{})
	a.srv = serveTracker(t, a.tracker)

	f, err := replica.Open(replica.Options{
		Dir:       t.TempDir() + "/b",
		Leader:    a.srv.URL,
		NodeID:    "b",
		PollWait:  500 * time.Millisecond,
		RetryBase: 2 * time.Millisecond,
		RetryMax:  10 * time.Millisecond,
		HTTP:      hc,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.System().Close() })
	b = &testNode{sys: f.System()}
	b.tracker = replica.NewLeader(f.System(), replica.LeaderOptions{})
	b.srv = serveTracker(t, b.tracker)
	f.Start()

	a.node, err = replica.NewNode(leaderSys, a.tracker, nil, replica.NodeOptions{
		ID: "a",
		Follower: replica.Options{
			Dir:       t.TempDir() + "/a-follow",
			Leader:    "placeholder", // overwritten from the configuration on demotion
			PollWait:  500 * time.Millisecond,
			RetryBase: 2 * time.Millisecond,
			RetryMax:  10 * time.Millisecond,
			HTTP:      hc,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.node, err = replica.NewNode(f.System(), b.tracker, f, replica.NodeOptions{ID: "b", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.node.Close)
	t.Cleanup(b.node.Close)

	// b catches up and acknowledges everything a committed.
	cur := leaderSys.WalSeq()
	waitForSeq(t, f, cur)
	waitFor(t, 10*time.Second,
		func() bool { acked, ok := a.tracker.AckedSeq("b"); return ok && acked >= cur },
		func() string { return fmt.Sprintf("b never acknowledged seq %d", cur) })
	return a, b
}

func serveTracker(t *testing.T, l *replica.Leader) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/replica/wal", l.WALHandler())
	mux.Handle("/replica/snapshot", l.SnapshotHandler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func handoverConfig(a, b *testNode, leaderID string) *cluster.Config {
	roleA, roleB := cluster.RoleFollower, cluster.RoleLeader
	if leaderID == "a" {
		roleA, roleB = cluster.RoleLeader, cluster.RoleFollower
	}
	return &cluster.Config{Nodes: []cluster.Node{
		{ID: "a", Addr: a.srv.URL, Role: roleA},
		{ID: "b", Addr: b.srv.URL, Role: roleB},
	}}
}

func TestLiveLeaderHandover(t *testing.T) {
	a, b := newHandoverCluster(t, nil)
	cfg := handoverConfig(a, b, "b")

	// Demote first: the fence has b's acknowledgements already (its loop
	// has been polling), and promotion's drain step then finds a demoted
	// leader on its first poll.
	if err := a.node.Apply(cfg); err != nil {
		t.Fatalf("demote a: %v", err)
	}
	if a.node.Role() != cluster.RoleFollower || !a.sys.Follower() {
		t.Fatal("a did not become a follower")
	}
	if err := b.node.Apply(cfg); err != nil {
		t.Fatalf("promote b: %v", err)
	}
	if b.node.Role() != cluster.RoleLeader || b.sys.Follower() {
		t.Fatal("b did not become the leader")
	}
	if a.node.LeaderAddr() != b.srv.URL {
		t.Fatalf("a points at %q, want %q", a.node.LeaderAddr(), b.srv.URL)
	}

	// Idempotence: re-applying the satisfied configuration is a no-op.
	if err := a.node.Apply(cfg); err != nil {
		t.Fatalf("re-apply on a: %v", err)
	}
	if err := b.node.Apply(cfg); err != nil {
		t.Fatalf("re-apply on b: %v", err)
	}

	// Writes now land on b and replicate to a — no process restarted.
	res, err := b.sys.ApplyBatch(context.Background(),
		[]string{`INSERT INTO SUBMARINE VALUES ('SSN950', 'Handoverfish', '0204')`})
	if err != nil {
		t.Fatalf("write on the new leader: %v", err)
	}
	waitFor(t, 10*time.Second,
		func() bool { return a.sys.WalSeq() >= res.Seq },
		func() string {
			return fmt.Sprintf("old leader never replayed seq %d (at %d, status %+v)",
				res.Seq, a.sys.WalSeq(), a.node.FollowerStatus())
		})
	assertSameAnswers(t, b.sys, a.sys, subQuery)

	// And the old leader now refuses direct writes.
	if _, err := a.sys.ApplyBatch(context.Background(), []string{contradictorStmt}); err == nil {
		t.Fatal("demoted leader accepted a write")
	}
}

func TestDemotionFenceBlocksUnreplicatedRecords(t *testing.T) {
	pt := &partitionTransport{}
	a, b := newHandoverCluster(t, &http.Client{Transport: pt})

	// Partition b, then commit on a: records b has not acknowledged.
	pt.down.Store(true)
	if _, err := a.sys.ApplyBatch(context.Background(),
		[]string{`INSERT INTO SUBMARINE VALUES ('SSN951', 'Fencefish', '0204')`}); err != nil {
		t.Fatal(err)
	}
	cfg := handoverConfig(a, b, "b")
	err := a.node.Apply(cfg)
	if err == nil || !strings.Contains(err.Error(), "unreplicated") {
		t.Fatalf("demotion under unreplicated records: %v, want the fence", err)
	}
	if a.node.Role() != cluster.RoleLeader || a.sys.Follower() {
		t.Fatal("a rejected fence left the node in a broken role")
	}

	// Heal; once b acknowledges the tail, the same configuration applies.
	pt.down.Store(false)
	cur := a.sys.WalSeq()
	waitFor(t, 10*time.Second,
		func() bool { acked, ok := a.tracker.AckedSeq("b"); return ok && acked >= cur },
		func() string { return fmt.Sprintf("b never acknowledged seq %d after healing", cur) })
	if err := a.node.Apply(cfg); err != nil {
		t.Fatalf("demote a after catch-up: %v", err)
	}
	if err := b.node.Apply(cfg); err != nil {
		t.Fatalf("promote b: %v", err)
	}
}

func TestNodeRejectsForeignConfiguration(t *testing.T) {
	a, b := newHandoverCluster(t, nil)
	cfg := &cluster.Config{Nodes: []cluster.Node{
		{ID: "x", Addr: "http://h:1", Role: cluster.RoleLeader},
	}}
	if err := a.node.Apply(cfg); err == nil || !strings.Contains(err.Error(), "not in the configuration") {
		t.Fatalf("Apply without self: %v", err)
	}
	if err := b.node.Apply(&cluster.Config{}); err == nil {
		t.Fatal("Apply accepted an invalid configuration")
	}
	if a.node.Role() != cluster.RoleLeader || b.node.Role() != cluster.RoleFollower {
		t.Fatal("rejected configurations changed roles")
	}
}

func TestWatchDrivenHandover(t *testing.T) {
	a, b := newHandoverCluster(t, nil)

	store := cluster.NewMemStore(handoverConfig(a, b, "a"))
	stop := make(chan struct{})
	defer close(stop)
	go a.node.Watch(stop, store)
	go b.node.Watch(stop, store)

	// Flip the configuration and let the two watchers coordinate the
	// whole handover themselves: a's fence holds until b's drain polls
	// acknowledge the tail, b's promotion waits until a has demoted.
	// Set runs inside the wait so a watcher that registered after the
	// first Set still hears about the change (latest-wins delivery makes
	// the repetition free).
	waitFor(t, 20*time.Second,
		func() bool {
			store.Set(handoverConfig(a, b, "b"))
			return a.node.Role() == cluster.RoleFollower && b.node.Role() == cluster.RoleLeader
		},
		func() string {
			return fmt.Sprintf("handover never completed (a=%s b=%s, a status %+v)",
				a.node.Role(), b.node.Role(), a.node.FollowerStatus())
		})

	// The handed-over cluster works: writes land on b, replicate to a.
	res, err := b.sys.ApplyBatch(context.Background(),
		[]string{`INSERT INTO SUBMARINE VALUES ('SSN952', 'Watchfish', '0204')`})
	if err != nil {
		t.Fatalf("write on the new leader: %v", err)
	}
	waitFor(t, 10*time.Second,
		func() bool { return a.sys.WalSeq() >= res.Seq },
		func() string {
			return fmt.Sprintf("a never replayed seq %d (status %+v)", res.Seq, a.node.FollowerStatus())
		})
	assertSameAnswers(t, b.sys, a.sys, subQuery)
}
