// Package replica implements the follower side of the replicated
// serving tier, plus both ends of the replication wire protocol.
//
// The protocol is two HTTP endpoints on the leader, both stdlib-only:
//
//	GET /replica/wal?after=N&wait=S&max=M
//	    Long-poll for WAL records with sequence > N. Returns a JSON
//	    WalBatch; 410 Gone when N is below the leader's retention
//	    window (bootstrap from a snapshot instead).
//	GET /replica/snapshot
//	    A full BootstrapArchive of the leader's current state.
//
// A Follower owns a follower-mode core.System backed by its own
// directory and WAL: records replay through the same machinery crash
// recovery uses, so a follower restart resumes from local state and
// fetches only the delta. The replication loop is: poll, replay each
// record, re-bootstrap from a snapshot whenever the stream reports a
// gap (410 from the leader, ErrSnapshotNeeded from replay) — which is
// also how a brand-new follower starts, since its empty local state is
// maximally behind.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"intensional/internal/cluster"
	"intensional/internal/core"
	"intensional/internal/dict"
	"intensional/internal/storage"
)

// WalBatch is the /replica/wal response: the records shipped (possibly
// none, when the poll window closed quietly) and the leader's committed
// WAL sequence at reply time, which is what followers report lag
// against.
type WalBatch struct {
	Records []core.ReplRecord `json:"records"`
	Seq     uint64            `json:"seq"`
}

// Protocol limits enforced by the leader-side handlers.
const (
	// maxPollWait caps how long one /replica/wal request may park.
	maxPollWait = 55 * time.Second
	// maxBatchRecords caps records per reply.
	maxBatchRecords = 1024
)

// WALHandler serves GET /replica/wal from a leader system.
func WALHandler(sys *core.System) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !sys.Durable() || sys.Follower() {
			http.Error(w, "replication requires a durable leader", http.StatusServiceUnavailable)
			return
		}
		q := r.URL.Query()
		after, err := strconv.ParseUint(q.Get("after"), 10, 64)
		if q.Get("after") != "" && err != nil {
			http.Error(w, "bad after parameter", http.StatusBadRequest)
			return
		}
		var wait time.Duration
		if s := q.Get("wait"); s != "" {
			secs, err := strconv.ParseFloat(s, 64)
			if err != nil || secs < 0 {
				http.Error(w, "bad wait parameter", http.StatusBadRequest)
				return
			}
			wait = time.Duration(secs * float64(time.Second))
			if wait > maxPollWait {
				wait = maxPollWait
			}
		}
		max := 256
		if s := q.Get("max"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				http.Error(w, "bad max parameter", http.StatusBadRequest)
				return
			}
			if n > maxBatchRecords {
				n = maxBatchRecords
			}
			max = n
		}
		recs, seq, err := sys.ReplicationBatch(r.Context(), after, wait, max)
		switch {
		case errors.Is(err, core.ErrSnapshotNeeded):
			http.Error(w, err.Error(), http.StatusGone)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(WalBatch{Records: recs, Seq: seq}); err != nil {
			// The response is already streaming; nothing to salvage.
			return
		}
	})
}

// SnapshotHandler serves GET /replica/snapshot from a leader system.
func SnapshotHandler(sys *core.System) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sys.Follower() {
			http.Error(w, "snapshots come from the leader", http.StatusServiceUnavailable)
			return
		}
		a, err := sys.BootstrapArchive()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(a); err != nil {
			return
		}
	})
}

// Client is the follower side of the wire protocol.
type Client struct {
	// Base is the leader's base URL ("http://10.0.0.5:8473").
	Base string
	// HTTP is the transport; nil means a client with no overall timeout
	// (long polls park by design — per-call contexts bound them).
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) get(ctx context.Context, path string, query url.Values, out any) error {
	u := c.Base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //ilint:allow errdrop — response body; decode/read errors are reported below
	switch resp.StatusCode {
	case http.StatusOK:
		return json.NewDecoder(resp.Body).Decode(out)
	case http.StatusGone:
		return core.ErrSnapshotNeeded
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512)) //ilint:allow errdrop — best-effort error-body excerpt; the status is the error
		return fmt.Errorf("replica: leader returned %s: %s", resp.Status, body)
	}
}

// Poll long-polls the leader for records with sequence > after.
func (c *Client) Poll(ctx context.Context, after uint64, wait time.Duration, max int) (*WalBatch, error) {
	q := url.Values{}
	q.Set("after", strconv.FormatUint(after, 10))
	if wait > 0 {
		q.Set("wait", strconv.FormatFloat(wait.Seconds(), 'f', -1, 64))
	}
	if max > 0 {
		q.Set("max", strconv.Itoa(max))
	}
	var b WalBatch
	if err := c.get(ctx, "/replica/wal", q, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// Snapshot fetches a full bootstrap archive from the leader.
func (c *Client) Snapshot(ctx context.Context) (*core.BootstrapArchive, error) {
	var a core.BootstrapArchive
	if err := c.get(ctx, "/replica/snapshot", nil, &a); err != nil {
		return nil, err
	}
	return &a, nil
}

// Options configure a Follower.
type Options struct {
	// Dir is the follower's own database directory (created empty if
	// missing); its WAL lives alongside at core.WALPath(Dir).
	Dir string
	// Leader is the leader's base URL.
	Leader string
	// CheckpointBytes forwards to core.DurableOptions.
	CheckpointBytes int64
	// PollWait is the long-poll window per request. Zero means 20s.
	PollWait time.Duration
	// RetryDelay is how long the loop sleeps after a failed exchange
	// before retrying. Zero means 1s.
	RetryDelay time.Duration
	// HTTP overrides the transport (tests inject partitions here).
	HTTP *http.Client
	// Logf, when non-nil, receives replication loop events.
	Logf func(format string, args ...any)
}

// Follower runs the replication loop over a follower-mode System.
type Follower struct {
	sys    *core.System
	client *Client
	opts   Options

	mu     sync.Mutex
	status cluster.FollowerStatus // guarded by mu

	// needBoot forces the first exchange to bootstrap. A follower at WAL
	// position 0 cannot prove its base state matches the leader's seq-0
	// state (a blank directory and a checkpoint both sit at 0), and the
	// stream is only sound when positions refer to the same history — so
	// position 0 always starts from a snapshot.
	needBoot atomic.Bool

	cancel context.CancelFunc
	done   chan struct{}
}

// Open opens (creating if absent) the follower's local database and
// returns a Follower ready to Start. The returned follower's System
// serves reads immediately — from whatever state the directory already
// holds — while the loop catches up.
func Open(o Options) (*Follower, error) {
	if o.Dir == "" || o.Leader == "" {
		return nil, fmt.Errorf("replica: Dir and Leader are required")
	}
	if o.PollWait <= 0 {
		o.PollWait = 20 * time.Second
	}
	if o.RetryDelay <= 0 {
		o.RetryDelay = time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if _, err := os.Stat(o.Dir); os.IsNotExist(err) {
		if err := os.MkdirAll(filepath.Dir(o.Dir), 0o755); err != nil {
			return nil, fmt.Errorf("replica: create data directory: %w", err)
		}
		cat := storage.NewCatalog()
		if err := core.New(cat, dict.New(cat)).Save(o.Dir); err != nil {
			return nil, fmt.Errorf("replica: initialise %s: %w", o.Dir, err)
		}
	}
	sys, err := core.OpenDurable(o.Dir, core.DurableOptions{
		Follower:        true,
		CheckpointBytes: o.CheckpointBytes,
	})
	if err != nil {
		return nil, err
	}
	f := &Follower{
		sys:    sys,
		client: &Client{Base: o.Leader, HTTP: o.HTTP},
		opts:   o,
	}
	f.needBoot.Store(sys.WalSeq() == 0)
	f.setStatus(func(st *cluster.FollowerStatus) {
		st.State = cluster.StateCatchingUp
		st.AppliedSeq = sys.WalSeq()
		st.Version = sys.Version()
	})
	return f, nil
}

// System returns the follower's serving system.
func (f *Follower) System() *core.System { return f.sys }

// Status returns the latest replication observation.
func (f *Follower) Status() cluster.FollowerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.status
}

func (f *Follower) setStatus(update func(*cluster.FollowerStatus)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	update(&f.status)
}

// Start launches the replication loop. Call Stop to halt it.
func (f *Follower) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.done = make(chan struct{})
	go f.run(ctx)
}

// Stop halts the replication loop (aborting an in-flight poll) and
// waits for it to exit. The System keeps serving its last state.
func (f *Follower) Stop() {
	if f.cancel == nil {
		return
	}
	f.cancel()
	<-f.done
	f.cancel = nil
}

// Close stops the loop and closes the local system.
func (f *Follower) Close() error {
	f.Stop()
	return f.sys.Close()
}

func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	for ctx.Err() == nil {
		if err := f.exchange(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			f.setStatus(func(st *cluster.FollowerStatus) {
				st.State = cluster.StateDisconnected
				st.LastError = err.Error()
			})
			f.opts.Logf("replica: %v (retrying in %s)", err, f.opts.RetryDelay)
			select {
			case <-time.After(f.opts.RetryDelay):
			case <-ctx.Done():
				return
			}
		}
	}
}

// exchange runs one protocol step: poll for records and replay them,
// falling back to a snapshot bootstrap when the stream has a gap.
func (f *Follower) exchange(ctx context.Context) error {
	if f.needBoot.Load() {
		return f.bootstrap(ctx)
	}
	batch, err := f.client.Poll(ctx, f.sys.WalSeq(), f.opts.PollWait, 0)
	if errors.Is(err, core.ErrSnapshotNeeded) {
		return f.bootstrap(ctx)
	}
	if err != nil {
		return err
	}
	for _, rec := range batch.Records {
		err := f.sys.ReplayRecord(rec.Seq, rec.Payload)
		if errors.Is(err, core.ErrSnapshotNeeded) {
			return f.bootstrap(ctx)
		}
		if err != nil {
			return fmt.Errorf("replay record %d: %w", rec.Seq, err)
		}
		f.setStatus(func(st *cluster.FollowerStatus) { st.RecordsApplied++ })
	}
	f.observe(batch.Seq)
	return nil
}

// bootstrap installs a full snapshot from the leader — the initial sync
// for an empty follower and the catch-up path after falling behind the
// leader's retention window.
func (f *Follower) bootstrap(ctx context.Context) error {
	f.setStatus(func(st *cluster.FollowerStatus) { st.State = cluster.StateBootstrapping })
	f.opts.Logf("replica: bootstrapping from snapshot (local seq %d)", f.sys.WalSeq())
	a, err := f.client.Snapshot(ctx)
	if err != nil {
		return fmt.Errorf("fetch snapshot: %w", err)
	}
	if err := f.sys.InstallBootstrap(a); err != nil {
		return fmt.Errorf("install snapshot: %w", err)
	}
	f.setStatus(func(st *cluster.FollowerStatus) { st.Bootstraps++ })
	f.needBoot.Store(false)
	f.observe(a.Seq)
	f.opts.Logf("replica: bootstrapped at seq %d version %d", a.Seq, a.Version)
	return nil
}

// observe records a successful exchange against the leader's reported
// position.
func (f *Follower) observe(leaderSeq uint64) {
	applied := f.sys.WalSeq()
	f.setStatus(func(st *cluster.FollowerStatus) {
		st.AppliedSeq = applied
		if leaderSeq > st.LeaderSeq || leaderSeq >= applied {
			st.LeaderSeq = leaderSeq
		}
		st.Version = f.sys.Version()
		st.LastContact = time.Now()
		st.LastError = ""
		if st.AppliedSeq >= st.LeaderSeq {
			st.State = cluster.StateReady
		} else {
			st.State = cluster.StateCatchingUp
		}
	})
}
