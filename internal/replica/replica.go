// Package replica implements the follower side of the replicated
// serving tier, plus both ends of the replication wire protocol.
//
// The protocol is two HTTP endpoints on the leader, both stdlib-only:
//
//	GET /replica/wal?after=N&wait=S&max=M&node=ID
//	    Long-poll for WAL records with sequence > N. Returns a JSON
//	    WalBatch; 410 Gone when N is below the leader's retention
//	    window (bootstrap from a snapshot instead). after=N doubles as
//	    the follower's acknowledgement that it has applied seq N.
//	GET /replica/snapshot[?id=H&chunk=N&size=S]
//	    Without chunk: the manifest of the leader's cached bootstrap
//	    archive. With chunk: that chunk's raw bytes (see leader.go).
//
// A Follower owns a follower-mode core.System backed by its own
// directory and WAL: records replay through the same machinery crash
// recovery uses, so a follower restart resumes from local state and
// fetches only the delta. The replication loop is: poll, replay each
// record, re-bootstrap from a snapshot whenever the stream reports a
// gap (410 from the leader, ErrSnapshotNeeded from replay) — which is
// also how a brand-new follower starts, since its empty local state is
// maximally behind.
//
// The loop is built for real networks. Bootstrap downloads arrive in
// content-hashed chunks spooled to disk beside the data directory, so
// a disconnect mid-transfer resumes from the last verified chunk
// rather than restarting; every non-poll exchange is bounded by
// ExchangeTimeout; failures retry under exponential backoff with full
// jitter; and only DisconnectAfter consecutive failures flip the
// reported state to disconnected — reads keep serving the last applied
// snapshot throughout.
package replica

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"intensional/internal/cluster"
	"intensional/internal/core"
	"intensional/internal/dict"
	"intensional/internal/storage"
)

// WalBatch is the /replica/wal response: the records shipped (possibly
// none, when the poll window closed quietly) and the leader's committed
// WAL sequence at reply time, which is what followers report lag
// against.
type WalBatch struct {
	Records []core.ReplRecord `json:"records"`
	Seq     uint64            `json:"seq"`
}

// Protocol limits enforced by the leader-side handlers.
const (
	// maxPollWait caps how long one /replica/wal request may park.
	maxPollWait = 55 * time.Second
	// maxBatchRecords caps records per reply.
	maxBatchRecords = 1024
)

// Client is the follower side of the wire protocol. A Client is
// immutable after construction; Follower.SetLeader swaps in a fresh one
// rather than mutating the address under a concurrent poll.
type Client struct {
	// Base is the leader's base URL ("http://10.0.0.5:8473").
	Base string
	// HTTP is the transport; nil means a client with no overall timeout
	// (long polls park by design — per-call contexts bound them).
	HTTP *http.Client
	// Node, when set, identifies this follower to the leader on every
	// request, feeding the leader's fan-out table and demotion fencing.
	Node string
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string, query url.Values) string {
	if c.Node != "" {
		if query == nil {
			query = url.Values{}
		}
		query.Set("node", c.Node)
	}
	u := c.Base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	return u
}

func (c *Client) get(ctx context.Context, path string, query url.Values, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path, query), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //ilint:allow errdrop — response body; decode/read errors are reported below
	switch resp.StatusCode {
	case http.StatusOK:
		return json.NewDecoder(resp.Body).Decode(out)
	case http.StatusGone:
		return core.ErrSnapshotNeeded
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512)) //ilint:allow errdrop — best-effort error-body excerpt; the status is the error
		return fmt.Errorf("replica: leader returned %s: %s", resp.Status, body)
	}
}

// Poll long-polls the leader for records with sequence > after.
func (c *Client) Poll(ctx context.Context, after uint64, wait time.Duration, max int) (*WalBatch, error) {
	q := url.Values{}
	q.Set("after", strconv.FormatUint(after, 10))
	if wait > 0 {
		q.Set("wait", strconv.FormatFloat(wait.Seconds(), 'f', -1, 64))
	}
	if max > 0 {
		q.Set("max", strconv.Itoa(max))
	}
	var b WalBatch
	if err := c.get(ctx, "/replica/wal", q, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// Manifest fetches the leader's current bootstrap archive manifest.
func (c *Client) Manifest(ctx context.Context) (*SnapshotManifest, error) {
	var m SnapshotManifest
	if err := c.get(ctx, "/replica/snapshot", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Chunk fetches one chunk of the archive identified by the manifest id.
// ErrSnapshotSuperseded reports that the leader no longer serves that
// archive; the caller refetches the manifest and starts over.
func (c *Client) Chunk(ctx context.Context, id string, n, size int) ([]byte, error) {
	q := url.Values{}
	q.Set("id", id)
	q.Set("chunk", strconv.Itoa(n))
	q.Set("size", strconv.Itoa(size))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/replica/snapshot", q), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //ilint:allow errdrop — response body; read errors are reported below
	switch resp.StatusCode {
	case http.StatusOK:
		// A chunk is at most `size` bytes; cap the read so a confused
		// server cannot balloon follower memory.
		data, err := io.ReadAll(io.LimitReader(resp.Body, int64(size)+1))
		if err != nil {
			return nil, err
		}
		if len(data) > size {
			return nil, fmt.Errorf("replica: chunk %d exceeds the %d-byte chunk size", n, size)
		}
		return data, nil
	case http.StatusGone:
		return nil, ErrSnapshotSuperseded
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512)) //ilint:allow errdrop — best-effort error-body excerpt; the status is the error
		return nil, fmt.Errorf("replica: leader returned %s: %s", resp.Status, body)
	}
}

// Follower loop defaults, used when the corresponding Options field is
// zero.
const (
	// DefaultPollWait is the long-poll window per /replica/wal request.
	DefaultPollWait = 20 * time.Second
	// DefaultExchangeTimeout bounds each non-poll exchange (manifest and
	// chunk fetches) and pads the poll deadline past its wait window.
	DefaultExchangeTimeout = 15 * time.Second
	// DefaultDisconnectAfter is how many consecutive failed exchanges
	// flip the reported state to disconnected.
	DefaultDisconnectAfter = 3
)

// Options configure a Follower.
type Options struct {
	// Dir is the follower's own database directory (created empty if
	// missing); its WAL lives alongside at core.WALPath(Dir), and
	// bootstrap downloads spool to Dir + ".bootstrap".
	Dir string
	// Leader is the leader's base URL.
	Leader string
	// NodeID, when set, is reported to the leader on every request; the
	// leader's fan-out table and demotion fencing key on it.
	NodeID string
	// CheckpointBytes forwards to core.DurableOptions.
	CheckpointBytes int64
	// PollWait is the long-poll window per request. Zero means
	// DefaultPollWait.
	PollWait time.Duration
	// ExchangeTimeout bounds each manifest/chunk fetch, and is added to
	// PollWait to bound a poll. Zero means DefaultExchangeTimeout.
	ExchangeTimeout time.Duration
	// RetryBase and RetryMax shape the retry backoff: delays are
	// uniformly random in [0, min(RetryMax, RetryBase·2^attempt)] — full
	// jitter. Zeros mean DefaultRetryBase and DefaultRetryMax.
	RetryBase time.Duration
	RetryMax  time.Duration
	// DisconnectAfter is how many consecutive failed exchanges flip the
	// reported state to StateDisconnected (reads keep serving
	// regardless). Zero means DefaultDisconnectAfter.
	DisconnectAfter int
	// HTTP overrides the transport (tests inject partitions here).
	HTTP *http.Client
	// Logf, when non-nil, receives replication loop events.
	Logf func(format string, args ...any)
	// Rand overrides the backoff jitter source (tests pin it).
	Rand func() float64
}

// Validate rejects nonsense options loudly instead of silently
// defaulting them: negative durations, counts, or sizes, and a retry
// base above the retry cap.
func (o Options) Validate() error {
	if o.Dir == "" {
		return fmt.Errorf("replica: Dir is required")
	}
	if o.Leader == "" {
		return fmt.Errorf("replica: Leader is required")
	}
	switch {
	case o.CheckpointBytes < 0:
		return fmt.Errorf("replica: CheckpointBytes must not be negative (got %d)", o.CheckpointBytes)
	case o.PollWait < 0:
		return fmt.Errorf("replica: PollWait must not be negative (got %s)", o.PollWait)
	case o.ExchangeTimeout < 0:
		return fmt.Errorf("replica: ExchangeTimeout must not be negative (got %s)", o.ExchangeTimeout)
	case o.RetryBase < 0:
		return fmt.Errorf("replica: RetryBase must not be negative (got %s)", o.RetryBase)
	case o.RetryMax < 0:
		return fmt.Errorf("replica: RetryMax must not be negative (got %s)", o.RetryMax)
	case o.DisconnectAfter < 0:
		return fmt.Errorf("replica: DisconnectAfter must not be negative (got %d)", o.DisconnectAfter)
	}
	if o.RetryBase > 0 && o.RetryMax > 0 && o.RetryBase > o.RetryMax {
		return fmt.Errorf("replica: RetryBase (%s) exceeds RetryMax (%s)", o.RetryBase, o.RetryMax)
	}
	return nil
}

// withDefaults returns a copy with zero fields filled in. Validate
// first.
func (o Options) withDefaults() Options {
	if o.PollWait == 0 {
		o.PollWait = DefaultPollWait
	}
	if o.ExchangeTimeout == 0 {
		o.ExchangeTimeout = DefaultExchangeTimeout
	}
	if o.RetryBase == 0 {
		o.RetryBase = DefaultRetryBase
	}
	if o.RetryMax == 0 {
		o.RetryMax = DefaultRetryMax
	}
	if o.DisconnectAfter == 0 {
		o.DisconnectAfter = DefaultDisconnectAfter
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Follower runs the replication loop over a follower-mode System.
type Follower struct {
	sys    *core.System
	client atomic.Pointer[Client] // swapped whole by SetLeader
	opts   Options
	retry  Backoff

	mu     sync.Mutex
	status cluster.FollowerStatus // guarded by mu

	// needBoot forces the first exchange to bootstrap. A follower at WAL
	// position 0 cannot prove its base state matches the leader's seq-0
	// state (a blank directory and a checkpoint both sit at 0), and the
	// stream is only sound when positions refer to the same history — so
	// position 0 always starts from a snapshot.
	needBoot atomic.Bool

	// boot is the resumable bootstrap transfer in progress, nil between
	// transfers. Only the replication goroutine touches it (and Close,
	// after the goroutine has stopped).
	boot *bootState

	cancel context.CancelFunc
	done   chan struct{}
}

// bootState tracks one chunked bootstrap download: the manifest the
// transfer is pinned to, how many chunks are verified (always a
// prefix — chunks are fetched in order), and the disk spool they land
// in.
type bootState struct {
	manifest SnapshotManifest
	verified int
	spool    *os.File
}

// Open opens (creating if absent) the follower's local database and
// returns a Follower ready to Start. The returned follower's System
// serves reads immediately — from whatever state the directory already
// holds — while the loop catches up.
func Open(o Options) (*Follower, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	if _, err := os.Stat(o.Dir); os.IsNotExist(err) {
		if err := os.MkdirAll(filepath.Dir(o.Dir), 0o755); err != nil {
			return nil, fmt.Errorf("replica: create data directory: %w", err)
		}
		cat := storage.NewCatalog()
		if err := core.New(cat, dict.New(cat)).Save(o.Dir); err != nil {
			return nil, fmt.Errorf("replica: initialise %s: %w", o.Dir, err)
		}
	}
	sys, err := core.OpenDurable(o.Dir, core.DurableOptions{
		Follower:        true,
		CheckpointBytes: o.CheckpointBytes,
	})
	if err != nil {
		return nil, err
	}
	f, err := Attach(sys, o)
	if err != nil {
		sys.Close() //ilint:allow errdrop — already failing; the open error wins
		return nil, err
	}
	return f, nil
}

// Attach wraps an already-open follower-mode System in a replication
// loop — the live-demotion path: the cluster layer demotes a leader in
// place and attaches a loop pointed at the new leader, without
// reopening the database.
func Attach(sys *core.System, o Options) (*Follower, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	if !sys.Durable() {
		return nil, fmt.Errorf("replica: Attach requires a durable system")
	}
	if !sys.Follower() {
		return nil, fmt.Errorf("replica: Attach requires a follower-mode system (Demote first)")
	}
	f := &Follower{
		sys:   sys,
		opts:  o,
		retry: Backoff{Base: o.RetryBase, Max: o.RetryMax, Rand: o.Rand},
	}
	f.client.Store(&Client{Base: o.Leader, HTTP: o.HTTP, Node: o.NodeID})
	f.needBoot.Store(sys.WalSeq() == 0)
	f.setStatus(func(st *cluster.FollowerStatus) {
		st.State = cluster.StateCatchingUp
		st.AppliedSeq = sys.WalSeq()
		st.Version = sys.Version()
	})
	return f, nil
}

// System returns the follower's serving system.
func (f *Follower) System() *core.System { return f.sys }

// cl returns the current wire client.
func (f *Follower) cl() *Client { return f.client.Load() }

// LeaderAddr returns the leader base URL the loop currently polls.
func (f *Follower) LeaderAddr() string { return f.cl().Base }

// SetLeader re-points the loop at a new leader — the follower half of a
// live handover. An in-flight exchange against the old leader finishes
// (or fails) on its own; every exchange after this call targets the new
// address. No restart, no re-bootstrap: the WAL position carries over,
// and the new leader's retention decides whether streaming resumes
// directly or via a snapshot.
func (f *Follower) SetLeader(addr string) {
	old := f.cl()
	if old.Base == addr {
		return
	}
	f.client.Store(&Client{Base: addr, HTTP: f.opts.HTTP, Node: f.opts.NodeID})
	f.opts.Logf("replica: leader re-pointed %s -> %s", old.Base, addr)
}

// Status returns the latest replication observation.
func (f *Follower) Status() cluster.FollowerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.status
}

func (f *Follower) setStatus(update func(*cluster.FollowerStatus)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	update(&f.status)
}

// Start launches the replication loop. Call Stop to halt it.
func (f *Follower) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.done = make(chan struct{})
	go f.run(ctx)
}

// Stop halts the replication loop (aborting an in-flight poll) and
// waits for it to exit. The System keeps serving its last state, and a
// bootstrap in progress keeps its spool — a later Start resumes the
// transfer from the last verified chunk.
func (f *Follower) Stop() {
	if f.cancel == nil {
		return
	}
	f.cancel()
	<-f.done
	f.cancel = nil
}

// Close stops the loop, discards any bootstrap spool, and closes the
// local system.
func (f *Follower) Close() error {
	f.Stop()
	f.clearBoot()
	return f.sys.Close()
}

func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	fails := 0
	for ctx.Err() == nil {
		err := f.exchange(ctx)
		if err == nil {
			fails = 0
			continue
		}
		if ctx.Err() != nil {
			return
		}
		fails++
		disconnected := fails >= f.opts.DisconnectAfter
		f.setStatus(func(st *cluster.FollowerStatus) {
			st.LastError = err.Error()
			// Below the threshold the previous state stands: a single
			// dropped poll on a healthy replica is retry noise, not an
			// incident. Reads serve the last applied snapshot either way.
			if disconnected {
				st.State = cluster.StateDisconnected
			}
		})
		delay := f.retry.Delay(fails - 1)
		f.opts.Logf("replica: %v (attempt %d, retrying in %s)", err, fails, delay.Round(time.Millisecond))
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return
		}
	}
}

// exchangeCtx bounds one non-poll exchange.
func (f *Follower) exchangeCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, f.opts.ExchangeTimeout)
}

// exchange runs one protocol step: poll for records and replay them,
// falling back to a snapshot bootstrap when the stream has a gap.
func (f *Follower) exchange(ctx context.Context) error {
	if f.needBoot.Load() {
		return f.bootstrap(ctx)
	}
	cl := f.cl()
	// The poll deadline is the wait window plus one exchange budget: a
	// leader that parks the full window still answers in time, one that
	// has vanished cannot hold the loop hostage.
	pctx, cancel := context.WithTimeout(ctx, f.opts.PollWait+f.opts.ExchangeTimeout)
	batch, err := cl.Poll(pctx, f.sys.WalSeq(), f.opts.PollWait, 0)
	cancel()
	if errors.Is(err, core.ErrSnapshotNeeded) {
		return f.bootstrap(ctx)
	}
	if err != nil {
		return err
	}
	for _, rec := range batch.Records {
		err := f.sys.ReplayRecord(rec.Seq, rec.Payload)
		if errors.Is(err, core.ErrSnapshotNeeded) {
			return f.bootstrap(ctx)
		}
		if err != nil {
			return fmt.Errorf("replay record %d: %w", rec.Seq, err)
		}
		f.setStatus(func(st *cluster.FollowerStatus) { st.RecordsApplied++ })
	}
	f.observe(batch.Seq)
	return nil
}

// spoolPath is where bootstrap downloads accumulate: beside the data
// directory, so the spool and the database land on the same filesystem.
func (f *Follower) spoolPath() string {
	return filepath.Clean(f.opts.Dir) + ".bootstrap"
}

// bootstrap installs a full snapshot from the leader — the initial sync
// for an empty follower and the catch-up path after falling behind the
// leader's retention window. The transfer is chunked and resumable:
// each chunk verifies against the manifest hash as it lands in the disk
// spool, and a transfer interrupted by a disconnect resumes from the
// last verified chunk as long as the leader still serves the same
// archive id.
func (f *Follower) bootstrap(ctx context.Context) error {
	f.setStatus(func(st *cluster.FollowerStatus) { st.State = cluster.StateBootstrapping })
	cl := f.cl()
	mctx, cancel := f.exchangeCtx(ctx)
	m, err := cl.Manifest(mctx)
	cancel()
	if err != nil {
		return fmt.Errorf("fetch snapshot manifest: %w", err)
	}
	if f.boot == nil || f.boot.manifest.ID != m.ID {
		if err := f.resetBoot(m); err != nil {
			return err
		}
		f.opts.Logf("replica: bootstrap %.8s: %d chunks, %d bytes (local seq %d)",
			m.ID, len(m.Chunks), m.Size, f.sys.WalSeq())
	} else {
		f.opts.Logf("replica: bootstrap %.8s: resuming at chunk %d/%d",
			m.ID, f.boot.verified, len(m.Chunks))
	}
	b := f.boot
	for b.verified < len(b.manifest.Chunks) {
		if err := ctx.Err(); err != nil {
			return err
		}
		cctx, cancel := f.exchangeCtx(ctx)
		data, err := cl.Chunk(cctx, b.manifest.ID, b.verified, b.manifest.ChunkSize)
		cancel()
		if errors.Is(err, ErrSnapshotSuperseded) {
			// The leader's cache moved on; this transfer cannot finish.
			// Drop the spool so the retry starts clean from a new manifest.
			f.clearBoot()
			return fmt.Errorf("bootstrap chunk %d: %w", b.verified, err)
		}
		if err != nil {
			return fmt.Errorf("fetch chunk %d/%d: %w", b.verified, len(b.manifest.Chunks), err)
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != b.manifest.Chunks[b.verified] {
			// Corruption in transit; the chunk is not spooled and the next
			// attempt refetches it.
			return fmt.Errorf("chunk %d/%d failed hash verification", b.verified, len(b.manifest.Chunks))
		}
		if _, err := b.spool.WriteAt(data, int64(b.verified)*int64(b.manifest.ChunkSize)); err != nil {
			f.clearBoot()
			return fmt.Errorf("spool chunk %d: %w", b.verified, err)
		}
		b.verified++
		f.setStatus(func(st *cluster.FollowerStatus) {
			st.BootstrapChunks = uint64(b.verified)
			st.BootstrapTotalChunks = uint64(len(b.manifest.Chunks))
		})
	}
	a, err := f.decodeSpool(b)
	if err != nil {
		f.clearBoot()
		return fmt.Errorf("bootstrap archive: %w", err)
	}
	if err := f.sys.InstallBootstrap(a); err != nil {
		f.clearBoot()
		return fmt.Errorf("install snapshot: %w", err)
	}
	f.clearBoot()
	f.setStatus(func(st *cluster.FollowerStatus) {
		st.Bootstraps++
		st.BootstrapChunks, st.BootstrapTotalChunks = 0, 0
	})
	f.needBoot.Store(false)
	f.observe(a.Seq)
	f.opts.Logf("replica: bootstrapped at seq %d version %d (%d chunks)", a.Seq, a.Version, len(m.Chunks))
	return nil
}

// resetBoot starts a fresh transfer for the given manifest, truncating
// whatever a previous transfer left in the spool.
func (f *Follower) resetBoot(m *SnapshotManifest) error {
	f.clearBootKeepFile()
	spool, err := os.OpenFile(f.spoolPath(), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("open bootstrap spool: %w", err)
	}
	f.boot = &bootState{manifest: *m, spool: spool}
	return nil
}

// clearBoot drops the transfer state and removes the spool file.
func (f *Follower) clearBoot() {
	f.clearBootKeepFile()
	os.Remove(f.spoolPath()) //ilint:allow errdrop — best-effort cleanup; a leftover spool is truncated on the next transfer
}

func (f *Follower) clearBootKeepFile() {
	if f.boot == nil {
		return
	}
	f.boot.spool.Close() //ilint:allow errdrop — read-side close; verification already happened against in-memory hashes
	f.boot = nil
}

// decodeSpool verifies the completed spool against the manifest —
// size, then the whole-archive hash, which also proves the chunks were
// assembled at the right offsets — and decodes it. The archive streams
// from disk through the JSON decoder, so follower memory stays bounded
// by the decoded state, not by transfer buffering.
func (f *Follower) decodeSpool(b *bootState) (*core.BootstrapArchive, error) {
	fi, err := b.spool.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() != b.manifest.Size {
		return nil, fmt.Errorf("spool holds %d bytes, manifest promises %d", fi.Size(), b.manifest.Size)
	}
	if _, err := b.spool.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	h := sha256.New()
	if _, err := io.Copy(h, b.spool); err != nil {
		return nil, err
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != b.manifest.ID {
		return nil, fmt.Errorf("assembled archive hash %.8s does not match manifest id %.8s", got, b.manifest.ID)
	}
	if _, err := b.spool.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	var a core.BootstrapArchive
	if err := json.NewDecoder(b.spool).Decode(&a); err != nil {
		return nil, fmt.Errorf("decode archive: %w", err)
	}
	return &a, nil
}

// observe records a successful exchange against the leader's reported
// position.
func (f *Follower) observe(leaderSeq uint64) {
	applied := f.sys.WalSeq()
	f.setStatus(func(st *cluster.FollowerStatus) {
		st.AppliedSeq = applied
		if leaderSeq > st.LeaderSeq || leaderSeq >= applied {
			st.LeaderSeq = leaderSeq
		}
		st.Version = f.sys.Version()
		st.LastContact = time.Now()
		st.LastError = ""
		if st.AppliedSeq >= st.LeaderSeq {
			st.State = cluster.StateReady
		} else {
			st.State = cluster.StateCatchingUp
		}
	})
}
