// Live cluster reconfiguration: the Node role controller.
//
// A Node wraps one process's System and answers the question "what role
// does the cluster configuration currently assign me, and how do I get
// there from the role I hold?" — without restarting the process. The
// three transitions are:
//
//	follower → leader   stop the replication loop, drain, Promote; the
//	                    retention buffer replayed records built up lets
//	                    other replicas stream from the new leader
//	                    without re-bootstrapping.
//	leader → follower   fence, Demote, Attach a replication loop at the
//	                    new leader. The fence is the safety property of
//	                    the whole handover: a leader refuses to step
//	                    down while it holds committed records its
//	                    configured successor has not acknowledged, since
//	                    demoting would strand those records on a node
//	                    that no longer accepts the stream's authority.
//	follower, new addr  re-point the running loop (SetLeader).
//
// The drain step is what makes the two halves of a live handover
// coordinate without any channel beyond the replication stream itself.
// A promoting successor keeps short-polling its old leader — each poll
// doubles as an acknowledgement — replaying whatever still arrives. The
// old leader's fence clears exactly when those acks cover its last
// commit; it demotes; the successor's next poll sees "not a leader" and
// promotion proceeds with the full history. An unreachable old leader
// (crash failover) skips the wait: the configuration is the authority,
// and a dead leader's unreplicated tail is what its own fence will
// surface when it returns.
//
// Apply is idempotent — re-applying the configuration a node already
// satisfies is a no-op — and rejections leave the current role fully
// intact. Watch layers retry on top: a config rejected now (say, the
// successor is still one record behind, or the old leader has not
// demoted yet) applies cleanly a moment later without any operator
// involvement.

package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"intensional/internal/cluster"
	"intensional/internal/core"
)

// DefaultApplyRetryInterval is how often Watch retries a configuration
// that was rejected (typically by the demotion fence, waiting for the
// successor to catch up).
const DefaultApplyRetryInterval = 500 * time.Millisecond

// DefaultPromoteDrainBudget bounds one promotion's drain phase; past
// it, a still-leading old leader makes Apply fail (and Watch retry)
// rather than promote into a fork.
const DefaultPromoteDrainBudget = 5 * time.Second

// drainPollWait is the short poll window drain uses — handover
// latency, not steady-state efficiency, is what matters here.
const drainPollWait = 250 * time.Millisecond

// NodeOptions configure a Node.
type NodeOptions struct {
	// ID is this node's id in the cluster configuration.
	ID string
	// Follower is the Options template used when this node is (or
	// becomes) a follower: Dir, HTTP, timeouts, and backoff shape.
	// Leader and NodeID are overwritten from the configuration.
	Follower Options
	// Logf, when non-nil, receives role transition events.
	Logf func(format string, args ...any)
	// ApplyRetryInterval is how often Watch retries a rejected
	// configuration. Zero means DefaultApplyRetryInterval.
	ApplyRetryInterval time.Duration
	// PromoteDrainBudget bounds the drain phase of a promotion. Zero
	// means DefaultPromoteDrainBudget.
	PromoteDrainBudget time.Duration
}

// Node tracks and transitions one process's cluster role.
type Node struct {
	sys     *core.System
	tracker *Leader
	opts    NodeOptions

	mu         sync.Mutex
	role       cluster.Role // guarded by mu
	leaderAddr string       // guarded by mu — the leader's address; "" while this node leads
	follower   *Follower    // guarded by mu — non-nil while role is RoleFollower
}

// NewNode wraps a running system in a role controller. tracker is the
// process's shared Leader (it serves the replication endpoints and
// holds the fan-out table the demotion fence consults). f is the
// running replication loop when the node starts as a follower, nil when
// it starts as the leader; the starting role is read from the system
// itself. Runs before the Node is visible to any other goroutine.
//
//ilint:locked mu
func NewNode(sys *core.System, tracker *Leader, f *Follower, o NodeOptions) (*Node, error) {
	if o.ID == "" {
		return nil, fmt.Errorf("replica: NodeOptions.ID is required")
	}
	if tracker == nil {
		return nil, fmt.Errorf("replica: NewNode requires the process's Leader tracker")
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.ApplyRetryInterval <= 0 {
		o.ApplyRetryInterval = DefaultApplyRetryInterval
	}
	if o.PromoteDrainBudget <= 0 {
		o.PromoteDrainBudget = DefaultPromoteDrainBudget
	}
	n := &Node{sys: sys, tracker: tracker, opts: o}
	if sys.Follower() {
		if f == nil {
			return nil, fmt.Errorf("replica: follower-mode node needs its replication loop")
		}
		n.role = cluster.RoleFollower
		n.follower = f
		n.leaderAddr = f.LeaderAddr()
	} else {
		n.role = cluster.RoleLeader
	}
	return n, nil
}

// Role returns the role this node currently holds.
func (n *Node) Role() cluster.Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// LeaderAddr returns the address writes should go to: the tracked
// leader's address on a follower, "" on the leader itself.
func (n *Node) LeaderAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderAddr
}

// FollowerStatus returns the replication loop's status; the zero status
// while this node leads.
func (n *Node) FollowerStatus() cluster.FollowerStatus {
	n.mu.Lock()
	f := n.follower
	n.mu.Unlock()
	if f == nil {
		return cluster.FollowerStatus{}
	}
	return f.Status()
}

// Close stops the replication loop if one is running. The system itself
// stays open — it belongs to the caller.
func (n *Node) Close() {
	n.mu.Lock()
	f := n.follower
	n.mu.Unlock()
	if f != nil {
		f.Stop()
	}
}

// Apply transitions the node to the role cfg assigns it. A rejected
// transition (fence, validation, this node missing from the
// membership) leaves the current role untouched and returns the
// reason; callers retry once the world has moved on.
func (n *Node) Apply(cfg *cluster.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	self, ok := cfg.Node(n.opts.ID)
	if !ok {
		return fmt.Errorf("replica: node %q is not in the configuration", n.opts.ID)
	}
	lead, _ := cfg.Leader()

	n.mu.Lock()
	defer n.mu.Unlock()
	switch {
	case self.Role == cluster.RoleLeader && n.role == cluster.RoleFollower:
		return n.promoteLocked()
	case self.Role == cluster.RoleFollower && n.role == cluster.RoleLeader:
		return n.demoteLocked(lead)
	case self.Role == cluster.RoleFollower && n.leaderAddr != lead.Addr:
		n.follower.SetLeader(lead.Addr)
		n.leaderAddr = lead.Addr
		n.opts.Logf("cluster: node %s now follows %s at %s", n.opts.ID, lead.ID, lead.Addr)
	}
	return nil
}

// promoteLocked is the follower→leader transition: stop the loop,
// drain the old leader, promote.
//
//ilint:locked mu
func (n *Node) promoteLocked() error {
	n.follower.Stop()
	if err := n.drainLocked(); err != nil {
		// Cannot safely lead yet; keep replicating and let the caller
		// retry once the old leader has stepped down.
		n.follower.Start()
		return fmt.Errorf("replica: promote %s: %w", n.opts.ID, err)
	}
	if err := n.sys.Promote(); err != nil {
		n.follower.Start()
		return fmt.Errorf("replica: promote %s: %w", n.opts.ID, err)
	}
	n.follower = nil
	n.role = cluster.RoleLeader
	n.leaderAddr = ""
	n.opts.Logf("cluster: node %s promoted to leader at seq %d", n.opts.ID, n.sys.WalSeq())
	return nil
}

// drainLocked short-polls the old leader until it stops leading,
// replaying everything it still ships. Each poll carries this node's
// acknowledgement, which is what clears the old leader's demotion
// fence — the handover's two halves coordinate through the stream. The
// loop ends three ways: the old leader answers "not a leader" or is
// unreachable (drain complete — in the second case the configuration's
// authority overrides a leader we cannot hear), it keeps leading past
// the budget (error; retry later), or replication needs a snapshot
// (error; the restarted loop bootstraps first).
//
//ilint:locked mu
func (n *Node) drainLocked() error {
	cl := n.follower.cl()
	deadline := time.Now().Add(n.opts.PromoteDrainBudget)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), drainPollWait+n.follower.opts.ExchangeTimeout)
		batch, err := cl.Poll(ctx, n.sys.WalSeq(), drainPollWait, 0)
		cancel()
		switch {
		case errors.Is(err, core.ErrSnapshotNeeded):
			return fmt.Errorf("behind the old leader's retention; bootstrapping before promotion")
		case err != nil:
			// Demoted (503) or unreachable: nothing more will arrive.
			return nil
		}
		for _, rec := range batch.Records {
			if rerr := n.sys.ReplayRecord(rec.Seq, rec.Payload); rerr != nil {
				return fmt.Errorf("drain replay record %d: %w", rec.Seq, rerr)
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("old leader at %s still leads after %s; retry once it demotes",
				cl.Base, n.opts.PromoteDrainBudget)
		}
	}
}

// demoteLocked is the leader→follower transition, fenced: it refuses
// while the configured successor has not acknowledged every record this
// leader has committed.
//
//ilint:locked mu
func (n *Node) demoteLocked(lead cluster.Node) error {
	if err := n.fence(lead); err != nil {
		return fmt.Errorf("replica: refusing to demote %s: %w", n.opts.ID, err)
	}
	if err := n.sys.Demote(); err != nil {
		return fmt.Errorf("replica: demote %s: %w", n.opts.ID, err)
	}
	o := n.opts.Follower
	o.Leader = lead.Addr
	o.NodeID = n.opts.ID
	f, err := Attach(n.sys, o)
	if err != nil {
		// Demoted but cannot follow: undo, or the node would be a
		// write-refusing orphan. Promote on a just-demoted durable system
		// cannot fail its own checks.
		if perr := n.sys.Promote(); perr != nil {
			return fmt.Errorf("replica: demote %s: attach failed (%v) and promote-back failed: %w", n.opts.ID, err, perr)
		}
		return fmt.Errorf("replica: demote %s: %w", n.opts.ID, err)
	}
	f.Start()
	n.follower = f
	n.role = cluster.RoleFollower
	n.leaderAddr = lead.Addr
	n.opts.Logf("cluster: node %s demoted; now follows %s at %s", n.opts.ID, lead.ID, lead.Addr)
	return nil
}

// fence decides whether stepping down for the named successor is safe:
// every committed record must be acknowledged by it. The fan-out table
// knows, because a follower's poll position is its acknowledgement.
func (n *Node) fence(lead cluster.Node) error {
	cur := n.sys.WalSeq()
	if cur == 0 {
		return nil // nothing committed, nothing to strand
	}
	acked, ok := n.tracker.AckedSeq(lead.ID)
	if !ok {
		return fmt.Errorf("successor %q has never streamed from this node", lead.ID)
	}
	if acked < cur {
		return fmt.Errorf("successor %q acknowledged seq %d but this node committed %d — %d unreplicated record(s)",
			lead.ID, acked, cur, cur-acked)
	}
	return nil
}

// Watch applies configuration changes from the store until stop closes.
// A rejected configuration (most often the demotion fence waiting for
// the successor's final poll) is retried every ApplyRetryInterval until
// it applies or a newer configuration replaces it.
func (n *Node) Watch(stop <-chan struct{}, store cluster.WatchableStore) {
	ch := store.Watch(stop)
	ticker := time.NewTicker(n.opts.ApplyRetryInterval)
	defer ticker.Stop()
	var pending *cluster.Config
	var lastErr string
	for {
		select {
		case cfg, ok := <-ch:
			if !ok {
				return
			}
			pending = cfg
			lastErr = ""
		case <-ticker.C:
			if pending == nil {
				continue
			}
		case <-stop:
			return
		}
		if err := n.Apply(pending); err != nil {
			// Log each distinct reason once, not once per retry tick.
			if err.Error() != lastErr {
				lastErr = err.Error()
				n.opts.Logf("cluster: configuration not applied: %v (retrying)", err)
			}
			continue
		}
		pending = nil
		lastErr = ""
	}
}
