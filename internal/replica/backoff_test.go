package replica

import (
	"testing"
	"time"
)

func TestBackoffCeilingsDoubleAndCap(t *testing.T) {
	// Rand pinned to 1.0 exposes the ceiling itself.
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Rand: func() float64 { return 1.0 }}
	want := []time.Duration{
		100 * time.Millisecond, // attempt 0
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second, // stays capped
	}
	for attempt, w := range want {
		if got := b.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %s, want %s", attempt, got, w)
		}
	}
}

func TestBackoffFullJitterSpansToZero(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Second, Rand: func() float64 { return 0 }}
	if got := b.Delay(5); got != 0 {
		t.Errorf("jitter floor: Delay = %s, want 0", got)
	}
}

func TestBackoffZeroValueUsesDefaults(t *testing.T) {
	b := Backoff{Rand: func() float64 { return 1.0 }}
	if got := b.Delay(0); got != DefaultRetryBase {
		t.Errorf("zero-value Delay(0) = %s, want %s", got, DefaultRetryBase)
	}
	if got := b.Delay(100); got != DefaultRetryMax {
		t.Errorf("zero-value Delay(100) = %s, want the %s cap", got, DefaultRetryMax)
	}
}

func TestBackoffNoOverflowAtLargeAttempts(t *testing.T) {
	b := Backoff{Base: time.Hour, Max: 24 * time.Hour, Rand: func() float64 { return 1.0 }}
	if got := b.Delay(64); got != 24*time.Hour {
		t.Errorf("Delay(64) = %s, want the cap (doubling must not overflow)", got)
	}
}

func TestBackoffBaseAboveMaxClampsToMax(t *testing.T) {
	b := Backoff{Base: time.Minute, Max: time.Second, Rand: func() float64 { return 1.0 }}
	if got := b.Delay(0); got != time.Second {
		t.Errorf("Delay(0) = %s, want Max when Base exceeds it", got)
	}
}
