// The failover-aware client: what a serving-tier consumer points at a
// replicated cluster. It speaks the server's public JSON API (/query,
// /mutate, /healthz), and absorbs the conditions a real network and a
// live cluster throw at it:
//
//   - 421 Misdirected Request (a write sent to a follower) is followed
//     to the Location header — the client re-targets itself at the
//     leader and retries, so a leader handover is invisible to callers.
//   - 503/429 (degraded node, rate limit) and 504 (a read-your-writes
//     wait that timed out mid-catch-up) retry under the same
//     full-jitter backoff the replication loop uses, honoring
//     Retry-After when the server sends one.
//   - Read-your-writes tokens from mutations are remembered and
//     attached to subsequent queries automatically, so "write on the
//     leader, read your write on any replica" holds across node
//     switches.
//
// Transport-level errors are retried only for reads. A mutation whose
// connection died mid-flight may or may not have committed; retrying
// it blindly could double-apply, so the ambiguity is returned to the
// caller, who knows whether the statement is idempotent.

package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultMaxAttempts bounds one logical request's tries across
// redirects and retries.
const DefaultMaxAttempts = 8

// FailoverClient is a leader-following HTTP client for the serving
// tier's public API. Safe for concurrent use.
type FailoverClient struct {
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Retry shapes the backoff between attempts; its zero value uses the
	// package defaults.
	Retry Backoff
	// MaxAttempts bounds tries per request. Zero means
	// DefaultMaxAttempts.
	MaxAttempts int
	// Logf, when non-nil, receives redirect and retry events.
	Logf func(format string, args ...any)

	mu    sync.Mutex
	base  string // guarded by mu — current target node, updated by 421 redirects
	token string // guarded by mu — latest read-your-writes token
}

// NewFailoverClient returns a client initially pointed at base (any
// cluster node; writes sent to a follower redirect themselves).
func NewFailoverClient(base string) *FailoverClient {
	return &FailoverClient{base: strings.TrimRight(base, "/")}
}

// Target returns the node the client currently talks to.
func (c *FailoverClient) Target() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base
}

// Token returns the read-your-writes token of the latest mutation, ""
// before any.
func (c *FailoverClient) Token() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.token
}

func (c *FailoverClient) setTarget(base string) {
	base = strings.TrimRight(base, "/")
	c.mu.Lock()
	changed := c.base != base
	c.base = base
	c.mu.Unlock()
	if changed {
		c.logf("client: following leader to %s", base)
	}
}

func (c *FailoverClient) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *FailoverClient) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// QueryResult is the client's view of a /query response.
type QueryResult struct {
	Version     uint64    `json:"version"`
	Mode        string    `json:"mode"`
	RowCount    int       `json:"rowCount"`
	Extensional *Relation `json:"extensional"`
	Intensional []string  `json:"intensional"`
}

// Relation is the wire form of an extensional answer.
type Relation struct {
	Name    string   `json:"name"`
	Columns []Column `json:"columns"`
	Rows    [][]any  `json:"rows"`
}

// Column is one column of a wire relation.
type Column struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// MutateResult is the client's view of a /mutate response.
type MutateResult struct {
	Version uint64 `json:"version"`
	Stale   int    `json:"stale"`
	WalSeq  uint64 `json:"walSeq"`
	Token   string `json:"token"`
	Warning string `json:"warning"`
}

// Health is the client's view of a /healthz response.
type Health struct {
	OK      bool   `json:"ok"`
	Mode    string `json:"mode"`
	Version uint64 `json:"version"`
	WalSeq  uint64 `json:"walSeq"`
}

// Query runs one statement, in the given mode ("" means combined),
// against the current target. The latest mutation token rides along, so
// the answer reflects this client's own writes even right after a node
// switch.
func (c *FailoverClient) Query(ctx context.Context, sql, mode string) (*QueryResult, error) {
	body := map[string]string{"sql": sql}
	if mode != "" {
		body["mode"] = mode
	}
	if tok := c.Token(); tok != "" {
		body["token"] = tok
	}
	var out QueryResult
	if err := c.do(ctx, http.MethodPost, "/query", body, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Mutate applies a statement batch atomically on the leader (following
// a redirect if the current target is a follower) and remembers the
// returned read-your-writes token.
func (c *FailoverClient) Mutate(ctx context.Context, stmts []string) (*MutateResult, error) {
	var out MutateResult
	if err := c.do(ctx, http.MethodPost, "/mutate", map[string]any{"stmts": stmts}, &out, false); err != nil {
		return nil, err
	}
	if out.Token != "" {
		c.mu.Lock()
		c.token = out.Token
		c.mu.Unlock()
	}
	return &out, nil
}

// Health fetches the current target's health.
func (c *FailoverClient) Health(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// do runs one logical request: marshal, send, and absorb redirects and
// retryable statuses up to MaxAttempts. idempotent gates whether a
// transport-level failure (connection died, timeout) may be retried —
// true for reads, false for mutations, whose commit status is unknown
// after such a failure.
func (c *FailoverClient) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultMaxAttempts
	}
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			delay := c.Retry.Delay(attempt - 1)
			if ra := retryAfter(lastErr); ra > delay {
				delay = ra
			}
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
			t.Stop()
		}
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.Target()+path, body)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if !idempotent {
				return fmt.Errorf("client: %s %s: %w (commit status unknown; not retrying a mutation)", method, path, err)
			}
			lastErr = err
			c.logf("client: %s %s: %v (attempt %d)", method, path, err, attempt+1)
			continue
		}
		done, err := c.consume(resp, method, path, out)
		if done {
			return err
		}
		lastErr = err
		c.logf("client: %v (attempt %d)", err, attempt+1)
	}
	return fmt.Errorf("client: gave up after %d attempts: %w", attempts, lastErr)
}

// consume reads one response. done=false means the request should be
// retried (the error then says why).
func (c *FailoverClient) consume(resp *http.Response, method, path string, out any) (done bool, err error) {
	defer resp.Body.Close() //ilint:allow errdrop — response body; decode/read errors are reported below
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		if out == nil {
			return true, nil
		}
		return true, json.NewDecoder(resp.Body).Decode(out)
	case resp.StatusCode == http.StatusMisdirectedRequest:
		loc := resp.Header.Get("Location")
		if loc == "" {
			// A node that refuses as a follower but names no successor is
			// mid-handover — it observed itself a follower, then finished
			// promoting before it could name a leader. Retrying the same
			// target resolves once the transition settles; MaxAttempts
			// bounds a node that is genuinely leaderless.
			return false, retryableStatus{
				msg: fmt.Sprintf("%s %s: node is not the leader and named no successor (handover in flight)", method, path),
			}
		}
		c.setTarget(loc)
		// Retryable by construction: a 421 node did not touch state.
		return false, fmt.Errorf("%s %s redirected to %s", method, path, loc)
	case resp.StatusCode == http.StatusServiceUnavailable,
		resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusGatewayTimeout:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512)) //ilint:allow errdrop — best-effort error-body excerpt; the status is the error
		return false, retryableStatus{
			msg:   fmt.Sprintf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(body))),
			after: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512)) //ilint:allow errdrop — best-effort error-body excerpt; the status is the error
		return true, fmt.Errorf("client: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(body)))
	}
}

// retryableStatus is a retryable server status, possibly carrying the
// server's Retry-After hint.
type retryableStatus struct {
	msg   string
	after time.Duration
}

func (e retryableStatus) Error() string { return e.msg }

func retryAfter(err error) time.Duration {
	if rs, ok := err.(retryableStatus); ok {
		return rs.after
	}
	return 0
}

// parseRetryAfter reads the delay-seconds form of Retry-After, capped
// so a confused server cannot park the client for minutes.
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || secs <= 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}
