package replica_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"intensional/internal/cluster"
	"intensional/internal/core"
	"intensional/internal/induct"
	"intensional/internal/replica"
	"intensional/internal/shipdb"
)

// chunkFaultTransport counts chunk requests by index and drops the
// link exactly once, on the first request for chunk failAt — the
// mid-bootstrap disconnect.
type chunkFaultTransport struct {
	failAt int

	mu     sync.Mutex
	counts map[int]int // guarded by mu
	failed bool        // guarded by mu
}

func (tr *chunkFaultTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	q := r.URL.Query()
	if r.URL.Path == "/replica/snapshot" && q.Get("chunk") != "" {
		n, _ := strconv.Atoi(q.Get("chunk"))
		tr.mu.Lock()
		if tr.counts == nil {
			tr.counts = map[int]int{}
		}
		tr.counts[n]++
		fail := n == tr.failAt && !tr.failed
		if fail {
			tr.failed = true
		}
		tr.mu.Unlock()
		if fail {
			return nil, fmt.Errorf("link dropped mid-bootstrap")
		}
	}
	return http.DefaultTransport.RoundTrip(r)
}

func (tr *chunkFaultTransport) count(n int) int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.counts[n]
}

// newChunkedLeader serves the ship database through a shared Leader
// with a tiny chunk size, so bootstrap archives span many chunks.
func newChunkedLeader(t *testing.T, chunkSize int) (*core.System, *replica.Leader, *httptest.Server) {
	t.Helper()
	cat := shipdb.Catalog()
	d, err := shipdb.Dictionary(cat)
	if err != nil {
		t.Fatal(err)
	}
	s := core.New(cat, d)
	dir := t.TempDir() + "/leader"
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	leader, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })
	if _, err := leader.Induce(induct.Options{Nc: 3}); err != nil {
		t.Fatal(err)
	}
	l := replica.NewLeader(leader, replica.LeaderOptions{ChunkSize: chunkSize})
	mux := http.NewServeMux()
	mux.Handle("/replica/wal", l.WALHandler())
	mux.Handle("/replica/snapshot", l.SnapshotHandler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return leader, l, srv
}

func TestBootstrapResumesFromLastVerifiedChunk(t *testing.T) {
	leader, l, srv := newChunkedLeader(t, 512)

	// Sanity: the archive must actually span enough chunks for a
	// mid-transfer failure to be mid-transfer.
	c := &replica.Client{Base: srv.URL}
	m, err := c.Manifest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Chunks) < 4 {
		t.Fatalf("archive spans only %d chunks at 512 bytes; the fixture shrank?", len(m.Chunks))
	}

	tr := &chunkFaultTransport{failAt: 2}
	dir := t.TempDir() + "/f"
	f, err := replica.Open(replica.Options{
		Dir:       dir,
		Leader:    srv.URL,
		NodeID:    "f-resume",
		PollWait:  time.Second,
		RetryBase: 2 * time.Millisecond,
		RetryMax:  10 * time.Millisecond,
		HTTP:      &http.Client{Transport: tr},
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Start()
	st := waitForSeq(t, f, leader.WalSeq())

	if st.Bootstraps != 1 {
		t.Errorf("bootstraps = %d, want exactly 1 despite the dropped link", st.Bootstraps)
	}
	// Resume correctness, pinned by the chunk-request counters: the
	// chunks verified before the disconnect are never requested again,
	// and the failed chunk is requested exactly twice (the drop and the
	// resume).
	for n := 0; n < tr.failAt; n++ {
		if got := tr.count(n); got != 1 {
			t.Errorf("chunk %d requested %d times; a resume must not re-fetch verified chunks", n, got)
		}
	}
	if got := tr.count(tr.failAt); got != 2 {
		t.Errorf("chunk %d requested %d times, want 2 (dropped, then resumed)", tr.failAt, got)
	}
	// The leader saw every chunk exactly once (the dropped request died
	// client-side), and built exactly one archive.
	if got := l.ChunkRequests(); got != uint64(len(m.Chunks)) {
		t.Errorf("leader served %d chunk requests, want %d", got, len(m.Chunks))
	}
	if got := l.SnapshotBuilds(); got != 1 {
		t.Errorf("leader built %d archives, want 1", got)
	}
	// The spool is gone once the archive installs.
	if _, err := os.Stat(dir + ".bootstrap"); !os.IsNotExist(err) {
		t.Errorf("bootstrap spool survived the install: %v", err)
	}
	assertSameAnswers(t, leader, f.System(), subQuery)
}

func TestLeaderTracksFollowerFanOut(t *testing.T) {
	leader, l, srv := newChunkedLeader(t, 4096)
	f, err := replica.Open(replica.Options{
		Dir:       t.TempDir() + "/f",
		Leader:    srv.URL,
		NodeID:    "iqp-2",
		PollWait:  time.Second,
		RetryBase: 2 * time.Millisecond,
		RetryMax:  10 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Start()
	cur := leader.WalSeq()
	waitForSeq(t, f, cur)

	// The follower's steady-state long poll carries after=cur — its
	// acknowledgement that everything committed is applied.
	waitFor(t, 10*time.Second,
		func() bool {
			acked, ok := l.AckedSeq("iqp-2")
			return ok && acked >= cur
		},
		func() string {
			return fmt.Sprintf("leader never saw iqp-2 acknowledge seq %d (followers %+v)", cur, l.Followers())
		})
	fans := l.Followers()
	if len(fans) != 1 || fans[0].ID != "iqp-2" {
		t.Fatalf("fan-out table = %+v, want exactly iqp-2", fans)
	}
	if fans[0].BootstrapChunks == 0 || fans[0].BootstrapBytes == 0 {
		t.Errorf("bootstrap volume untracked: %+v", fans[0])
	}
	if fans[0].LastContact.IsZero() {
		t.Error("LastContact never stamped")
	}
	if _, ok := l.AckedSeq("ghost"); ok {
		t.Error("AckedSeq invented a follower that never connected")
	}
}

func TestBootstrapStatusReportsProgress(t *testing.T) {
	// Not a timing assertion — just that a finished bootstrap clears the
	// in-flight progress counters.
	leader, _, srv := newChunkedLeader(t, 1024)
	f, err := replica.Open(replica.Options{
		Dir:      t.TempDir() + "/f",
		Leader:   srv.URL,
		PollWait: time.Second,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Start()
	st := waitForSeq(t, f, leader.WalSeq())
	if st.BootstrapChunks != 0 || st.BootstrapTotalChunks != 0 {
		t.Errorf("finished bootstrap left progress counters: %+v", st)
	}
	if st.State != cluster.StateReady {
		t.Errorf("state = %q, want ready", st.State)
	}
}
