package replica

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry keeps test backoffs instant.
var fastRetry = Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Rand: func() float64 { return 0.5 }}

func TestFailoverClientFollowsRedirects(t *testing.T) {
	var leaderURL string
	var gotToken atomic.Value
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/mutate":
			json.NewEncoder(w).Encode(map[string]any{"version": 7, "walSeq": 42, "token": "w42"})
		case "/query":
			var req map[string]string
			json.NewDecoder(r.Body).Decode(&req)
			gotToken.Store(req["token"])
			json.NewEncoder(w).Encode(map[string]any{"version": 7, "rowCount": 1})
		default:
			http.NotFound(w, r)
		}
	}))
	defer leader.Close()
	leaderURL = leader.URL

	var redirects atomic.Int64
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/mutate" {
			redirects.Add(1)
			w.Header().Set("Location", leaderURL)
			http.Error(w, "not the leader", http.StatusMisdirectedRequest)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"version": 7, "rowCount": 1})
	}))
	defer follower.Close()

	// Pointed at the follower, a mutation follows the 421 to the leader.
	c := NewFailoverClient(follower.URL)
	c.Retry = fastRetry
	c.Logf = t.Logf
	res, err := c.Mutate(context.Background(), []string{"INSERT ..."})
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	if res.Token != "w42" || c.Token() != "w42" {
		t.Fatalf("token = %q / %q, want w42", res.Token, c.Token())
	}
	if redirects.Load() != 1 {
		t.Fatalf("follower saw %d mutate attempts, want 1", redirects.Load())
	}
	if c.Target() != leaderURL {
		t.Fatalf("client target = %q, want the leader", c.Target())
	}

	// The remembered token rides along on the next query.
	if _, err := c.Query(context.Background(), "SELECT 1", ""); err != nil {
		t.Fatalf("Query: %v", err)
	}
	if gotToken.Load() != "w42" {
		t.Fatalf("query carried token %q, want w42", gotToken.Load())
	}
}

func TestFailoverClientRetriesRetryableStatuses(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "degraded", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"ok": true, "mode": "ok"})
	}))
	defer srv.Close()

	c := NewFailoverClient(srv.URL)
	c.Retry = fastRetry
	h, err := c.Health(context.Background())
	if err != nil || !h.OK {
		t.Fatalf("Health = %+v, %v; want ok after retries", h, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
}

func TestFailoverClientGivesUpAndReportsLastError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "still degraded", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := NewFailoverClient(srv.URL)
	c.Retry = fastRetry
	c.MaxAttempts = 3
	_, err := c.Health(context.Background())
	if err == nil || !strings.Contains(err.Error(), "gave up after 3 attempts") ||
		!strings.Contains(err.Error(), "still degraded") {
		t.Fatalf("err = %v, want a give-up error carrying the last cause", err)
	}
}

func TestFailoverClientDoesNotRetryMutationTransportErrors(t *testing.T) {
	// A server that dies mid-connection: the mutation's commit status is
	// unknown, so the client must surface the ambiguity, not re-send.
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("recorder cannot hijack")
			return
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		conn.Close()
	}))
	defer srv.Close()
	c := NewFailoverClient(srv.URL)
	c.Retry = fastRetry
	_, err := c.Mutate(context.Background(), []string{"INSERT ..."})
	if err == nil || !strings.Contains(err.Error(), "commit status unknown") {
		t.Fatalf("err = %v, want the commit-ambiguity refusal", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d mutate attempts, want exactly 1", calls.Load())
	}
}

func TestFailoverClientTerminalErrorsDoNotRetry(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "parse error at line 1", http.StatusBadRequest)
	}))
	defer srv.Close()
	c := NewFailoverClient(srv.URL)
	c.Retry = fastRetry
	if _, err := c.Query(context.Background(), "SELEC", ""); err == nil || !strings.Contains(err.Error(), "parse error") {
		t.Fatalf("err = %v, want the 400 surfaced", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("a 400 was retried: %d calls", calls.Load())
	}
}

// A 421 with no Location is what a node answers in the instant between
// observing itself a follower and finishing its own promotion — the
// client must retry the same target, not give up.
func TestFailoverClientRetriesLocationless421(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "not the leader", http.StatusMisdirectedRequest)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"version": 3, "walSeq": 9, "token": "w9"})
	}))
	defer srv.Close()
	c := NewFailoverClient(srv.URL)
	c.Retry = fastRetry
	res, err := c.Mutate(context.Background(), []string{"INSERT INTO t VALUES (1)"})
	if err != nil {
		t.Fatalf("Mutate across a bare 421: %v", err)
	}
	if res.WalSeq != 9 {
		t.Fatalf("WalSeq = %d, want 9", res.WalSeq)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d attempts, want 2 (one bare 421, one success)", calls.Load())
	}
	if got := c.Target(); got != srv.URL {
		t.Fatalf("Target() = %q, want unchanged %q", got, srv.URL)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"garbage", 0},
		{"9999", 30 * time.Second}, // capped
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}
