package replica

import (
	"strings"
	"testing"
	"time"
)

func validOptions() Options {
	return Options{Dir: "/tmp/f", Leader: "http://leader:8473"}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Options)
		want   string // substring of the error; "" means valid
	}{
		{"valid minimal", func(o *Options) {}, ""},
		{"valid tuned", func(o *Options) {
			o.PollWait = 5 * time.Second
			o.ExchangeTimeout = 2 * time.Second
			o.RetryBase = 50 * time.Millisecond
			o.RetryMax = 2 * time.Second
			o.DisconnectAfter = 5
		}, ""},
		{"missing dir", func(o *Options) { o.Dir = "" }, "Dir is required"},
		{"missing leader", func(o *Options) { o.Leader = "" }, "Leader is required"},
		{"negative checkpoint", func(o *Options) { o.CheckpointBytes = -1 }, "CheckpointBytes must not be negative"},
		{"negative poll wait", func(o *Options) { o.PollWait = -time.Second }, "PollWait must not be negative"},
		{"negative exchange timeout", func(o *Options) { o.ExchangeTimeout = -1 }, "ExchangeTimeout must not be negative"},
		{"negative retry base", func(o *Options) { o.RetryBase = -time.Millisecond }, "RetryBase must not be negative"},
		{"negative retry max", func(o *Options) { o.RetryMax = -time.Millisecond }, "RetryMax must not be negative"},
		{"negative disconnect threshold", func(o *Options) { o.DisconnectAfter = -2 }, "DisconnectAfter must not be negative"},
		{"base above cap", func(o *Options) {
			o.RetryBase = time.Minute
			o.RetryMax = time.Second
		}, "exceeds RetryMax"},
	}
	for _, tc := range cases {
		o := validOptions()
		tc.mutate(&o)
		err := o.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// Open must refuse invalid options before touching the filesystem — the
// construction-time half of the contract.
func TestOpenRejectsInvalidOptions(t *testing.T) {
	o := validOptions()
	o.Dir = t.TempDir() + "/f"
	o.RetryBase = -time.Second
	if _, err := Open(o); err == nil || !strings.Contains(err.Error(), "RetryBase") {
		t.Fatalf("Open with negative RetryBase: %v, want a loud validation error", err)
	}
}

func TestWithDefaultsFillsZeros(t *testing.T) {
	o := validOptions().withDefaults()
	if o.PollWait != DefaultPollWait || o.ExchangeTimeout != DefaultExchangeTimeout ||
		o.RetryBase != DefaultRetryBase || o.RetryMax != DefaultRetryMax ||
		o.DisconnectAfter != DefaultDisconnectAfter || o.Logf == nil {
		t.Fatalf("withDefaults left zeros: %+v", o)
	}
}
