package shipdb_test

import (
	"testing"

	"intensional/internal/relation"
	"intensional/internal/shipdb"
	"intensional/internal/storage"
)

// TestCatalogMatchesAppendixC pins the embedded instance against the
// counts and spot values the paper's Appendix C prints.
func TestCatalogMatchesAppendixC(t *testing.T) {
	cat := shipdb.Catalog()
	counts := map[string]int{
		shipdb.Submarine: 24,
		shipdb.Class:     13,
		shipdb.TypeRel:   2,
		shipdb.Sonar:     8,
		shipdb.Install:   24,
	}
	for name, want := range counts {
		r, err := cat.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() != want {
			t.Errorf("%s has %d rows, want %d", name, r.Len(), want)
		}
	}
	cls, _ := cat.Get(shipdb.Class)
	p, err := relation.Eq(cls.Schema(), "Class", relation.String("1301"))
	if err != nil {
		t.Fatal(err)
	}
	typhoon := cls.Select(p)
	if typhoon.Len() != 1 || typhoon.Row(0)[3].Int64() != 30000 {
		t.Errorf("Typhoon class row = %v", typhoon.Rows())
	}
}

// TestReferentialIntegrity checks the foreign keys the INSTALL
// relationship and the class hierarchy depend on.
func TestReferentialIntegrity(t *testing.T) {
	cat := shipdb.Catalog()
	sub, _ := cat.Get(shipdb.Submarine)
	cls, _ := cat.Get(shipdb.Class)
	son, _ := cat.Get(shipdb.Sonar)
	inst, _ := cat.Get(shipdb.Install)

	classes := map[string]bool{}
	for _, row := range cls.Rows() {
		classes[row[0].Str()] = true
	}
	ships := map[string]bool{}
	for _, row := range sub.Rows() {
		ships[row[0].Str()] = true
		if !classes[row[2].Str()] {
			t.Errorf("ship %s references unknown class %s", row[0], row[2])
		}
	}
	sonars := map[string]bool{}
	for _, row := range son.Rows() {
		sonars[row[0].Str()] = true
	}
	for _, row := range inst.Rows() {
		if !ships[row[0].Str()] {
			t.Errorf("INSTALL references unknown ship %s", row[0])
		}
		if !sonars[row[1].Str()] {
			t.Errorf("INSTALL references unknown sonar %s", row[1])
		}
	}
}

// TestClassTypesPartition checks the hierarchy property the paper's type
// inference relies on: CLASS instances partition into SSBN and SSN.
func TestClassTypesPartition(t *testing.T) {
	cat := shipdb.Catalog()
	cls, _ := cat.Get(shipdb.Class)
	for _, row := range cls.Rows() {
		typ := row[2].Str()
		if typ != "SSBN" && typ != "SSN" {
			t.Errorf("class %s has unexpected type %q", row[0], typ)
		}
	}
}

func TestPaperRulesShape(t *testing.T) {
	set := shipdb.PaperRules()
	if set.Len() != 17 {
		t.Fatalf("paper rules = %d, want 17", set.Len())
	}
	for i, r := range set.Rules() {
		if r.ID != i+1 {
			t.Errorf("rule %d has ID %d", i, r.ID)
		}
		if len(r.LHS) != 1 {
			t.Errorf("R%d has %d LHS clauses, want 1", r.ID, len(r.LHS))
		}
		if !r.RHS.IsPoint() {
			t.Errorf("R%d consequence is not a point: %s", r.ID, r.RHS)
		}
	}
}

// TestPaperRulesSatisfiedByData checks every paper rule (in the
// data-consistent form) against the embedded instance: no tuple may
// violate an intra-object rule.
func TestPaperRulesSatisfiedByData(t *testing.T) {
	cat := shipdb.Catalog()
	for _, r := range shipdb.PaperRules().Rules() {
		lhs := r.LHS[0]
		if lhs.Attr.Relation != r.RHS.Attr.Relation {
			continue // inter-object rules need the join; covered in induct tests
		}
		rel, err := cat.Get(lhs.Attr.Relation)
		if err != nil {
			t.Fatal(err)
		}
		xi := rel.Schema().MustIndex(lhs.Attr.Attribute)
		yi := rel.Schema().MustIndex(r.RHS.Attr.Attribute)
		for _, row := range rel.Rows() {
			if lhs.Contains(row[xi]) && !r.RHS.Contains(row[yi]) {
				t.Errorf("R%d (%s) violated by %v", r.ID, r, row)
			}
		}
	}
}

func TestDictionaryBuilds(t *testing.T) {
	if _, err := shipdb.Dictionary(shipdb.Catalog()); err != nil {
		t.Fatal(err)
	}
	// A catalog missing the ship relations must fail fast.
	if _, err := shipdb.Dictionary(storage.NewCatalog()); err == nil {
		t.Error("dictionary over empty catalog should error")
	}
}
