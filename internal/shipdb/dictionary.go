package shipdb

import (
	"fmt"

	"intensional/internal/dict"
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/storage"
)

// Dictionary builds the intelligent data dictionary for the ship test
// bed: the three type hierarchies of Figure 4 (ships by class, classes by
// type, sonars by sonar type), the INSTALL relationship, and the
// hierarchy-level link from SUBMARINE instances up to CLASS.
func Dictionary(cat *storage.Catalog) (*dict.Dictionary, error) {
	d := dict.New(cat)

	classHier := &dict.Hierarchy{
		Object:          Class,
		ClassifyingAttr: "Type",
		Subtypes: []dict.Subtype{
			{Name: "SSBN", Value: relation.String("SSBN")},
			{Name: "SSN", Value: relation.String("SSN")},
		},
	}
	subHier := &dict.Hierarchy{Object: Submarine, ClassifyingAttr: "Class"}
	for _, r := range classRows {
		subHier.Subtypes = append(subHier.Subtypes, dict.Subtype{
			Name:  "C" + r.Class,
			Value: relation.String(r.Class),
		})
	}
	sonarHier := &dict.Hierarchy{
		Object:          Sonar,
		ClassifyingAttr: "SonarType",
		Subtypes: []dict.Subtype{
			{Name: "BQQ", Value: relation.String("BQQ")},
			{Name: "BQS", Value: relation.String("BQS")},
			{Name: "TACTAS", Value: relation.String("TACTAS")},
		},
	}
	// Registration order follows the paper's rule grouping: SUBMARINE
	// rules first (R1–R4), then CLASS (R5–R9), then SONAR (R10–R11).
	for _, h := range []*dict.Hierarchy{subHier, classHier, sonarHier} {
		if err := d.AddHierarchy(h); err != nil {
			return nil, fmt.Errorf("shipdb: %w", err)
		}
	}

	install := &dict.Relationship{
		Name: Install,
		Links: []dict.Link{
			{From: rules.Attr(Install, "Ship"), To: rules.Attr(Submarine, "Id")},
			{From: rules.Attr(Install, "Sonar"), To: rules.Attr(Sonar, "Sonar")},
		},
	}
	if err := d.AddRelationship(install); err != nil {
		return nil, fmt.Errorf("shipdb: %w", err)
	}

	if err := d.AddLevelLink(dict.Link{
		From: rules.Attr(Submarine, "Class"),
		To:   rules.Attr(Class, "Class"),
	}); err != nil {
		return nil, fmt.Errorf("shipdb: %w", err)
	}
	return d, nil
}
