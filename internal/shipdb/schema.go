package shipdb

// KERSchema is the Appendix B naval ship database schema in the KER DDL
// accepted by internal/ker. Structure-rule role declarations, which
// Appendix B leaves in comments ("/* x isa SUBMARINE */"), are written
// explicitly as the Appendix A BNF requires.
const KERSchema = `
/* B.1 Domain Definitions */
domain NAME isa char[20]
domain CLASS_NAME isa NAME
domain SHIP_NAME isa NAME
domain TYPE_NAME isa char[30]
domain SONAR_NAME isa char[8]

/* B.2 Object Type Definitions */
object type CLASS
  has key: Class domain: char[4]
  has: ClassName domain: CLASS_NAME
  has: Type domain: TYPE
  has: Displacement domain: integer
  with /* constraint rules */
    if "0101" <= Class <= "0103" then Type = "SSBN",
    if "0201" <= Class <= "0216" then Type = "SSN"

CLASS contains SSBN, SSN
  with /* x isa CLASS */
    if x isa CLASS and 2145 <= x.Displacement <= 6955 then x isa SSN,
    if x isa CLASS and 7250 <= x.Displacement <= 30000 then x isa SSBN

object type SUBMARINE
  has key: Id domain: char[7]
  has: Name domain: SHIP_NAME
  has: Class domain: CLASS

SUBMARINE contains C0101, C0102, C0103, C0201, C0203, C0204,
  C0205, C0207, C0208, C0209, C0212, C0215, C1301

object type TYPE
  has key: Type domain: char[4]
  has: TypeName domain: TYPE_NAME

object type SONAR
  has key: Sonar domain: char[8]
  has: SonarType domain: SONAR_NAME

SONAR contains BQQ, BQS, TACTAS
  with /* x isa SONAR */
    if x isa SONAR and BQQ-2 <= x.Sonar <= BQQ-8 then x isa BQQ,
    if x isa SONAR and BQS-04 <= x.Sonar <= BQS-15 then x isa BQS,
    if x isa SONAR and x.Sonar = "TACTAS" then x isa TACTAS

object type INSTALL
  has key: Ship domain: SUBMARINE
  has: Sonar domain: SONAR
  with /* x isa SUBMARINE and y isa SONAR */
    if x isa SUBMARINE and y isa SONAR and x.Class = "0203" then y isa BQQ,
    if x isa SUBMARINE and y isa SONAR and "0205" <= x.Class <= "0207" then y isa BQQ,
    if x isa SUBMARINE and y isa SONAR and "0208" <= x.Class <= "0215" then y isa BQS,
    if x isa SUBMARINE and y isa SONAR and y.Sonar = "BQS-04" then x isa SSN
`
