// Package shipdb embeds the paper's naval ship test bed: the Appendix C
// database instance (SUBMARINE, CLASS, TYPE, SONAR, INSTALL), the
// Appendix B KER schema as DDL text, and the seventeen induced rules of
// Section 6 for comparison against the Inductive Learning Subsystem's
// output.
package shipdb

import (
	"intensional/internal/relation"
	"intensional/internal/rules"
	"intensional/internal/storage"
)

// Relation names of the test bed.
const (
	Submarine = "SUBMARINE"
	Class     = "CLASS"
	TypeRel   = "TYPE"
	Sonar     = "SONAR"
	Install   = "INSTALL"
)

// submarineRows is the Relation SUBMARINE of Appendix C.
var submarineRows = [][3]string{
	{"SSBN130", "Typhoon", "1301"},
	{"SSBN623", "Nathaniel Hale", "0103"},
	{"SSBN629", "Daniel Boone", "0103"},
	{"SSBN635", "Sam Rayburn", "0103"},
	{"SSBN644", "Lewis and Clark", "0102"},
	{"SSBN658", "Mariano G. Vallejo", "0102"},
	{"SSBN730", "Rhode Island", "0101"},
	{"SSN582", "Bonefish", "0215"},
	{"SSN584", "Seadragon", "0212"},
	{"SSN592", "Snook", "0209"},
	{"SSN601", "Robert E. Lee", "0208"},
	{"SSN604", "Haddo", "0205"},
	{"SSN610", "Thomas A. Edison", "0207"},
	{"SSN614", "Greenling", "0205"},
	{"SSN648", "Aspro", "0204"},
	{"SSN660", "Sand Lance", "0204"},
	{"SSN666", "Hawkbill", "0204"},
	{"SSN671", "Narwhal", "0203"},
	{"SSN673", "Flying Fish", "0204"},
	{"SSN679", "Silversides", "0204"},
	{"SSN686", "L. Mendel Rivers", "0204"},
	{"SSN692", "Omaha", "0201"},
	{"SSN698", "Bremerton", "0201"},
	{"SSN704", "Baltimore", "0201"},
}

// classRows is the Relation CLASS of Appendix C.
var classRows = []struct {
	Class, ClassName, Type string
	Displacement           int64
}{
	{"0101", "Ohio", "SSBN", 16600},
	{"0102", "Benjamin Franklin", "SSBN", 7250},
	{"0103", "Lafayette", "SSBN", 7250},
	{"0201", "LosAngeles", "SSN", 6000},
	{"0203", "Narwhal", "SSN", 4450},
	{"0204", "Sturgeon", "SSN", 3640},
	{"0205", "Thresher", "SSN", 3750},
	{"0207", "Ethan Allen", "SSN", 6955},
	{"0208", "George Washington", "SSN", 6019},
	{"0209", "Skipjack", "SSN", 3075},
	{"0212", "Skate", "SSN", 2360},
	{"0215", "Barbel", "SSN", 2145},
	{"1301", "Typhoon", "SSBN", 30000},
}

// typeRows is the Relation TYPE of Appendix C.
var typeRows = [][2]string{
	{"SSBN", "ballistic nuclear missile sub"},
	{"SSN", "nuclear submarine"},
}

// sonarRows is the Relation SONAR of Appendix C.
var sonarRows = [][2]string{
	{"BQQ-2", "BQQ"},
	{"BQQ-5", "BQQ"},
	{"BQQ-8", "BQQ"},
	{"BQS-04", "BQS"},
	{"BQS-12", "BQS"},
	{"BQS-13", "BQS"},
	{"BQS-15", "BQS"},
	{"TACTAS", "TACTAS"},
}

// installRows is the Relation INSTALL of Appendix C.
var installRows = [][2]string{
	{"SSBN130", "BQQ-2"},
	{"SSBN623", "BQQ-5"},
	{"SSBN629", "BQQ-5"},
	{"SSBN635", "BQS-12"},
	{"SSBN644", "BQQ-5"},
	{"SSBN658", "BQS-12"},
	{"SSBN730", "BQQ-5"},
	{"SSN582", "BQS-04"},
	{"SSN584", "BQS-04"},
	{"SSN592", "BQS-04"},
	{"SSN601", "BQS-04"},
	{"SSN604", "BQQ-2"},
	{"SSN610", "BQQ-5"},
	{"SSN614", "BQQ-2"},
	{"SSN648", "BQQ-2"},
	{"SSN660", "BQQ-5"},
	{"SSN666", "BQQ-8"},
	{"SSN671", "BQQ-2"},
	{"SSN673", "BQS-12"},
	{"SSN679", "BQS-13"},
	{"SSN686", "BQQ-2"},
	{"SSN692", "BQS-15"},
	{"SSN698", "TACTAS"},
	{"SSN704", "BQQ-5"},
}

// Catalog builds a fresh catalog holding the complete Appendix C
// instance.
func Catalog() *storage.Catalog {
	cat := storage.NewCatalog()

	sub := relation.New(Submarine, relation.MustSchema(
		relation.Column{Name: "Id", Type: relation.TString},
		relation.Column{Name: "Name", Type: relation.TString},
		relation.Column{Name: "Class", Type: relation.TString},
	))
	for _, r := range submarineRows {
		sub.MustInsert(relation.String(r[0]), relation.String(r[1]), relation.String(r[2]))
	}
	cat.Put(sub)

	cls := relation.New(Class, relation.MustSchema(
		relation.Column{Name: "Class", Type: relation.TString},
		relation.Column{Name: "ClassName", Type: relation.TString},
		relation.Column{Name: "Type", Type: relation.TString},
		relation.Column{Name: "Displacement", Type: relation.TInt},
	))
	for _, r := range classRows {
		cls.MustInsert(relation.String(r.Class), relation.String(r.ClassName),
			relation.String(r.Type), relation.Int(r.Displacement))
	}
	cat.Put(cls)

	typ := relation.New(TypeRel, relation.MustSchema(
		relation.Column{Name: "Type", Type: relation.TString},
		relation.Column{Name: "TypeName", Type: relation.TString},
	))
	for _, r := range typeRows {
		typ.MustInsert(relation.String(r[0]), relation.String(r[1]))
	}
	cat.Put(typ)

	son := relation.New(Sonar, relation.MustSchema(
		relation.Column{Name: "Sonar", Type: relation.TString},
		relation.Column{Name: "SonarType", Type: relation.TString},
	))
	for _, r := range sonarRows {
		son.MustInsert(relation.String(r[0]), relation.String(r[1]))
	}
	cat.Put(son)

	inst := relation.New(Install, relation.MustSchema(
		relation.Column{Name: "Ship", Type: relation.TString},
		relation.Column{Name: "Sonar", Type: relation.TString},
	))
	for _, r := range installRows {
		inst.MustInsert(relation.String(r[0]), relation.String(r[1]))
	}
	cat.Put(inst)

	return cat
}

// PaperRules returns the seventeen rules of Section 6 (R1–R17) in the
// representation the ILS induces: "isa" consequences are expressed on the
// classifying attribute of the hierarchy (Class for ships, Type for ship
// types, SonarType for sonars).
func PaperRules() *rules.Set {
	s := rules.NewSet()
	str := relation.String
	num := relation.Int

	// (1) SUBMARINE — Id ranges classify ships into classes.
	//
	// The paper prints R1 as "SSN623 <= Id <= SSN635", but the Appendix C
	// instance has Ids SSBN623/SSBN629/SSBN635 for class 0103 (the ships
	// R1 is meant to cover), so the premise is stated here in the
	// data-consistent form the algorithm actually induces.
	s.Add(&rules.Rule{ // R1
		LHS: []rules.Clause{rules.RangeClause(rules.Attr(Submarine, "Id"), str("SSBN623"), str("SSBN635"))},
		RHS: rules.PointClause(rules.Attr(Submarine, "Class"), str("0103")),
	})
	s.Add(&rules.Rule{ // R2
		LHS: []rules.Clause{rules.RangeClause(rules.Attr(Submarine, "Id"), str("SSN648"), str("SSN666"))},
		RHS: rules.PointClause(rules.Attr(Submarine, "Class"), str("0204")),
	})
	s.Add(&rules.Rule{ // R3
		LHS: []rules.Clause{rules.RangeClause(rules.Attr(Submarine, "Id"), str("SSN673"), str("SSN686"))},
		RHS: rules.PointClause(rules.Attr(Submarine, "Class"), str("0204")),
	})
	s.Add(&rules.Rule{ // R4
		LHS: []rules.Clause{rules.RangeClause(rules.Attr(Submarine, "Id"), str("SSN692"), str("SSN704"))},
		RHS: rules.PointClause(rules.Attr(Submarine, "Class"), str("0201")),
	})

	// (2) CLASS — class ranges, class-name ranges, and displacement
	// ranges classify classes into ship types.
	s.Add(&rules.Rule{ // R5
		LHS: []rules.Clause{rules.RangeClause(rules.Attr(Class, "Class"), str("0101"), str("0103"))},
		RHS: rules.PointClause(rules.Attr(Class, "Type"), str("SSBN")),
	})
	s.Add(&rules.Rule{ // R6
		LHS: []rules.Clause{rules.RangeClause(rules.Attr(Class, "Class"), str("0201"), str("0215"))},
		RHS: rules.PointClause(rules.Attr(Class, "Type"), str("SSN")),
	})
	s.Add(&rules.Rule{ // R7
		LHS: []rules.Clause{rules.RangeClause(rules.Attr(Class, "ClassName"), str("Skate"), str("Thresher"))},
		RHS: rules.PointClause(rules.Attr(Class, "Type"), str("SSN")),
	})
	s.Add(&rules.Rule{ // R8
		LHS: []rules.Clause{rules.RangeClause(rules.Attr(Class, "Displacement"), num(2145), num(6955))},
		RHS: rules.PointClause(rules.Attr(Class, "Type"), str("SSN")),
	})
	s.Add(&rules.Rule{ // R9
		LHS: []rules.Clause{rules.RangeClause(rules.Attr(Class, "Displacement"), num(7250), num(30000))},
		RHS: rules.PointClause(rules.Attr(Class, "Type"), str("SSBN")),
	})

	// (3) SONAR — sonar-name ranges classify sonars into sonar types.
	s.Add(&rules.Rule{ // R10
		LHS: []rules.Clause{rules.RangeClause(rules.Attr(Sonar, "Sonar"), str("BQQ-2"), str("BQQ-8"))},
		RHS: rules.PointClause(rules.Attr(Sonar, "SonarType"), str("BQQ")),
	})
	s.Add(&rules.Rule{ // R11
		LHS: []rules.Clause{rules.RangeClause(rules.Attr(Sonar, "Sonar"), str("BQS-04"), str("BQS-15"))},
		RHS: rules.PointClause(rules.Attr(Sonar, "SonarType"), str("BQS")),
	})

	// (4) INSTALL — inter-object rules across the INSTALL relationship
	// (x isa SUBMARINE, y isa SONAR).
	s.Add(&rules.Rule{ // R12
		LHS: []rules.Clause{rules.RangeClause(rules.Attr(Submarine, "Id"), str("SSN582"), str("SSN601"))},
		RHS: rules.PointClause(rules.Attr(Sonar, "SonarType"), str("BQS")),
	})
	s.Add(&rules.Rule{ // R13
		LHS: []rules.Clause{rules.RangeClause(rules.Attr(Submarine, "Id"), str("SSN604"), str("SSN671"))},
		RHS: rules.PointClause(rules.Attr(Sonar, "SonarType"), str("BQQ")),
	})
	s.Add(&rules.Rule{ // R14
		LHS: []rules.Clause{rules.PointClause(rules.Attr(Submarine, "Class"), str("0203"))},
		RHS: rules.PointClause(rules.Attr(Sonar, "SonarType"), str("BQQ")),
	})
	s.Add(&rules.Rule{ // R15
		LHS: []rules.Clause{rules.RangeClause(rules.Attr(Submarine, "Class"), str("0205"), str("0207"))},
		RHS: rules.PointClause(rules.Attr(Sonar, "SonarType"), str("BQQ")),
	})
	s.Add(&rules.Rule{ // R16
		LHS: []rules.Clause{rules.RangeClause(rules.Attr(Submarine, "Class"), str("0208"), str("0215"))},
		RHS: rules.PointClause(rules.Attr(Sonar, "SonarType"), str("BQS")),
	})
	s.Add(&rules.Rule{ // R17
		LHS: []rules.Clause{rules.PointClause(rules.Attr(Sonar, "Sonar"), str("BQS-04"))},
		RHS: rules.PointClause(rules.Attr(Class, "Type"), str("SSN")),
	})
	return s
}
