package exec

import (
	"context"
	"sort"

	"intensional/internal/plan"
	"intensional/internal/relation"
)

// Filter streams the input rows satisfying a predicate. One Next call
// pulls as many input batches as it takes to fill the output batch (or
// hit end of stream), so a selective filter still hands its consumer
// full batches.
type Filter struct {
	node  plan.Node
	pred  Pred
	input Operator

	child *Batch // pooled scratch
	ci    int
	done  bool
}

// NewFilter builds a filter executing node.
func NewFilter(node plan.Node, pred Pred, input Operator) *Filter {
	return &Filter{node: node, pred: pred, input: input}
}

// Plan returns the plan node this operator executes.
func (f *Filter) Plan() plan.Node { return f.node }

// Schema returns the input schema (filtering preserves row type).
func (f *Filter) Schema() *relation.Schema { return f.input.Schema() }

// Open opens the input.
func (f *Filter) Open(ctx context.Context) error {
	f.done = false
	f.ci = 0
	f.child = getBatch()
	return f.input.Open(ctx)
}

// Next emits the next batch of qualifying rows.
func (f *Filter) Next(b *Batch) error {
	b.Reset()
	for !b.Full() && !f.done {
		if f.ci >= f.child.Len() {
			if err := f.input.Next(f.child); err != nil {
				return err
			}
			if f.child.Len() == 0 {
				f.done = true
				break
			}
			f.ci = 0
		}
		t := f.child.Row(f.ci)
		f.ci++
		if f.pred(t) {
			b.Append(t)
		}
	}
	return nil
}

// Close releases the scratch batch and the input.
func (f *Filter) Close() error {
	putBatch(f.child)
	f.child = nil
	return f.input.Close()
}

// Project streams a column subset (or reordering) of its input, carving
// output rows out of one arena allocation per batch.
type Project struct {
	node   plan.Node
	schema *relation.Schema
	cols   []int // input column position per output column
	input  Operator

	out   arena
	child *Batch
	ci    int
	done  bool
}

// NewProject builds a projection executing node; cols maps each output
// column to its input position.
func NewProject(node plan.Node, schema *relation.Schema, cols []int, input Operator) *Project {
	return &Project{node: node, schema: schema, cols: cols, input: input}
}

// Plan returns the plan node this operator executes.
func (p *Project) Plan() plan.Node { return p.node }

// Schema returns the projected output schema.
func (p *Project) Schema() *relation.Schema { return p.schema }

// Open opens the input.
func (p *Project) Open(ctx context.Context) error {
	p.done = false
	p.ci = 0
	p.out = newArena(len(p.cols))
	p.child = getBatch()
	return p.input.Open(ctx)
}

// Next emits the next batch of projected rows.
func (p *Project) Next(b *Batch) error {
	b.Reset()
	if p.done {
		return nil
	}
	for !b.Full() {
		if p.ci >= p.child.Len() {
			if err := p.input.Next(p.child); err != nil {
				return err
			}
			if p.child.Len() == 0 {
				p.done = true
				return nil
			}
			p.ci = 0
		}
		t := p.child.Row(p.ci)
		p.ci++
		row := p.out.next()
		for i, src := range p.cols {
			row[i] = t[src]
		}
		b.Append(row)
	}
	return nil
}

// Close releases the scratch batch and the input.
func (p *Project) Close() error {
	putBatch(p.child)
	p.child = nil
	return p.input.Close()
}

// Distinct streams the first occurrence of each distinct row, tracking
// seen keys as it goes — no buffering of the rows themselves.
type Distinct struct {
	node  plan.Node
	input Operator

	seen  map[string]struct{}
	child *Batch
	ci    int
	done  bool
}

// NewDistinct builds a duplicate eliminator executing node.
func NewDistinct(node plan.Node, input Operator) *Distinct {
	return &Distinct{node: node, input: input}
}

// Plan returns the plan node this operator executes.
func (d *Distinct) Plan() plan.Node { return d.node }

// Schema returns the input schema.
func (d *Distinct) Schema() *relation.Schema { return d.input.Schema() }

// Open opens the input and resets the seen set.
func (d *Distinct) Open(ctx context.Context) error {
	d.done = false
	d.ci = 0
	d.seen = make(map[string]struct{}, BatchSize)
	d.child = getBatch()
	return d.input.Open(ctx)
}

// Next emits the next batch of first-seen rows.
func (d *Distinct) Next(b *Batch) error {
	b.Reset()
	for !b.Full() && !d.done {
		if d.ci >= d.child.Len() {
			if err := d.input.Next(d.child); err != nil {
				return err
			}
			if d.child.Len() == 0 {
				d.done = true
				break
			}
			d.ci = 0
		}
		t := d.child.Row(d.ci)
		d.ci++
		k := t.Key()
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		b.Append(t)
	}
	return nil
}

// Close releases the seen set, the scratch batch, and the input.
func (d *Distinct) Close() error {
	d.seen = nil
	putBatch(d.child)
	d.child = nil
	return d.input.Close()
}

// SortSpec orders one column of a Sort operator's input.
type SortSpec struct {
	Col  int
	Desc bool
}

// Sort orders its whole input — the one operator that materializes by
// necessity, which is why the planner keeps it last in the tree. Rows
// are buffered on the first Next and emitted in batches; ordering is
// stable and null-first, matching Relation.Sort.
type Sort struct {
	node  plan.Node
	keys  []SortSpec
	input Operator

	ctx    context.Context
	rows   []relation.Tuple
	sorted bool
	pos    int
}

// NewSort builds a sort executing node.
func NewSort(node plan.Node, keys []SortSpec, input Operator) *Sort {
	return &Sort{node: node, keys: keys, input: input}
}

// Plan returns the plan node this operator executes.
func (s *Sort) Plan() plan.Node { return s.node }

// Schema returns the input schema.
func (s *Sort) Schema() *relation.Schema { return s.input.Schema() }

// Open opens the input.
func (s *Sort) Open(ctx context.Context) error {
	s.ctx = ctx
	s.rows = nil
	s.sorted = false
	s.pos = 0
	return s.input.Open(ctx)
}

// Next drains and sorts the input on first call, then emits batches of
// ordered rows.
func (s *Sort) Next(b *Batch) error {
	b.Reset()
	if !s.sorted {
		sb := getBatch()
		defer putBatch(sb)
		for {
			if err := s.ctx.Err(); err != nil {
				return err
			}
			if err := s.input.Next(sb); err != nil {
				return err
			}
			if sb.Len() == 0 {
				break
			}
			for i := 0; i < sb.Len(); i++ {
				s.rows = append(s.rows, sb.Row(i))
			}
		}
		sort.SliceStable(s.rows, func(a, b int) bool {
			for _, k := range s.keys {
				c := relation.SortCompare(s.rows[a][k.Col], s.rows[b][k.Col])
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		s.sorted = true
	}
	for s.pos < len(s.rows) && !b.Full() {
		b.Append(s.rows[s.pos])
		s.pos++
	}
	return nil
}

// Close releases the buffered rows and the input.
func (s *Sort) Close() error {
	s.rows = nil
	return s.input.Close()
}

// Limit emits at most n rows and then stops pulling its input entirely
// — the minimal consumer of the early-exit contract.
type Limit struct {
	n     int
	input Operator
	taken int
}

// NewLimit caps the input at n rows.
func NewLimit(n int, input Operator) *Limit {
	return &Limit{n: n, input: input}
}

// Schema returns the input schema.
func (l *Limit) Schema() *relation.Schema { return l.input.Schema() }

// Open opens the input.
func (l *Limit) Open(ctx context.Context) error {
	l.taken = 0
	return l.input.Open(ctx)
}

// Next emits input rows until the cap is reached; after that it never
// pulls the input again.
func (l *Limit) Next(b *Batch) error {
	b.Reset()
	if l.taken >= l.n {
		return nil
	}
	if err := l.input.Next(b); err != nil {
		return err
	}
	b.Truncate(l.n - l.taken)
	l.taken += b.Len()
	return nil
}

// Close closes the input.
func (l *Limit) Close() error { return l.input.Close() }
