package exec_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"intensional/internal/exec"
	"intensional/internal/relation"
)

func mustInsert(t *testing.T, r *relation.Relation, rows ...relation.Tuple) {
	t.Helper()
	for _, row := range rows {
		if err := r.Insert(row); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
}

// numbers builds a relation K:int, V:string with rows (i, label(i)).
func numbers(t *testing.T, name string, n int, label func(int) string) *relation.Relation {
	t.Helper()
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "K", Type: relation.TInt},
		relation.Column{Name: "V", Type: relation.TString},
	))
	for i := 0; i < n; i++ {
		mustInsert(t, r, relation.Tuple{relation.Int(int64(i)), relation.String(label(i))})
	}
	return r
}

func collect(t *testing.T, op exec.Operator) []relation.Tuple {
	t.Helper()
	rows, err := exec.Collect(context.Background(), op, 0)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return rows
}

func keys(rows []relation.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

// counting wraps an operator and counts Next calls, to prove early exit
// stops pulling.
type counting struct {
	exec.Operator
	nexts int
}

func (c *counting) Next(b *exec.Batch) error {
	c.nexts++
	return c.Operator.Next(b)
}

func TestFullScanStreamsInRowOrder(t *testing.T) {
	rel := numbers(t, "R", 3*exec.BatchSize+17, func(i int) string { return fmt.Sprint("v", i) })
	opens := 0
	rows := collect(t, exec.NewFullScan(nil, rel, func() { opens++ }))
	if opens != 1 {
		t.Fatalf("onOpen fired %d times, want 1", opens)
	}
	if len(rows) != rel.Len() {
		t.Fatalf("got %d rows, want %d", len(rows), rel.Len())
	}
	for i, row := range rows {
		if row[0].Int64() != int64(i) {
			t.Fatalf("row %d out of order: %s", i, row)
		}
	}
}

func TestIndexScanServesFromIndex(t *testing.T) {
	rel := numbers(t, "R", 100, func(i int) string { return fmt.Sprint("v", i%7) })
	ix, err := rel.BuildIndex("K")
	if err != nil {
		t.Fatal(err)
	}
	var indexScans, fullScans int
	op := exec.NewIndexScan(nil, rel, ix, ">=", relation.Int(97), nil, exec.IndexScanHooks{
		OnIndexScan: func() { indexScans++ },
		OnFullScan:  func() { fullScans++ },
	})
	rows := collect(t, op)
	if indexScans != 1 || fullScans != 0 {
		t.Fatalf("indexScans=%d fullScans=%d, want 1/0", indexScans, fullScans)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for i, row := range rows {
		if row[0].Int64() != int64(97+i) {
			t.Fatalf("row %d: got %s, want K=%d (row order)", i, row, 97+i)
		}
	}
}

func TestIndexScanRebuildsStaleIndexOnce(t *testing.T) {
	rel := numbers(t, "R", 50, func(i int) string { return "x" })
	ix, err := rel.BuildIndex("K")
	if err != nil {
		t.Fatal(err)
	}
	// Invalidate the index.
	mustInsert(t, rel, relation.Tuple{relation.Int(7), relation.String("dup")})
	rebuilds, indexScans := 0, 0
	op := exec.NewIndexScan(nil, rel, ix, "=", relation.Int(7), nil, exec.IndexScanHooks{
		Rebuild: func() *relation.Index {
			rebuilds++
			ix2, err := rel.BuildIndex("K")
			if err != nil {
				t.Fatal(err)
			}
			return ix2
		},
		OnIndexScan: func() { indexScans++ },
		OnFallback:  func(reason string) { t.Fatalf("unexpected fallback: %s", reason) },
	})
	rows := collect(t, op)
	if rebuilds != 1 || indexScans != 1 {
		t.Fatalf("rebuilds=%d indexScans=%d, want 1/1", rebuilds, indexScans)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (original 7 plus the duplicate)", len(rows))
	}
}

func TestIndexScanFallsBackLoudly(t *testing.T) {
	rel := numbers(t, "R", 30, func(i int) string { return "x" })
	ix, err := rel.BuildIndex("K")
	if err != nil {
		t.Fatal(err)
	}
	mustInsert(t, rel, relation.Tuple{relation.Int(5), relation.String("dup")})
	var reason string
	fullScans := 0
	op := exec.NewIndexScan(nil, rel, ix, "=", relation.Int(5),
		func(tu relation.Tuple) bool { return tu[0].Int64() == 5 },
		exec.IndexScanHooks{
			Rebuild:     func() *relation.Index { return nil },
			OnIndexScan: func() { t.Fatal("index scan fired for a stale index") },
			OnFullScan:  func() { fullScans++ },
			OnFallback:  func(r string) { reason = r },
		})
	rows := collect(t, op)
	if fullScans != 1 {
		t.Fatalf("fullScans=%d, want 1", fullScans)
	}
	if !strings.Contains(reason, "stale") {
		t.Fatalf("fallback reason %q does not mention staleness", reason)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (selection re-checked during fallback)", len(rows))
	}
}

func TestFilterRefillsBatches(t *testing.T) {
	rel := numbers(t, "R", 4*exec.BatchSize, func(i int) string { return "x" })
	op := exec.NewFilter(nil, func(tu relation.Tuple) bool { return tu[0].Int64()%2 == 0 },
		exec.NewFullScan(nil, rel, nil))
	rows := collect(t, op)
	if len(rows) != 2*exec.BatchSize {
		t.Fatalf("got %d rows, want %d", len(rows), 2*exec.BatchSize)
	}
	for i, row := range rows {
		if row[0].Int64() != int64(2*i) {
			t.Fatalf("row %d: got %s", i, row)
		}
	}
}

func TestProjectRowsAreRetainable(t *testing.T) {
	rel := numbers(t, "R", 2*exec.BatchSize, func(i int) string { return fmt.Sprint("v", i) })
	schema := relation.MustSchema(relation.Column{Name: "V", Type: relation.TString})
	op := exec.NewProject(nil, schema, []int{1}, exec.NewFullScan(nil, rel, nil))
	rows := collect(t, op)
	if len(rows) != rel.Len() {
		t.Fatalf("got %d rows, want %d", len(rows), rel.Len())
	}
	// Rows collected from earlier batches must not have been overwritten
	// by later ones — the arena contract.
	for i, row := range rows {
		if len(row) != 1 || row[0].String() != fmt.Sprint("v", i) {
			t.Fatalf("row %d was clobbered: %s", i, row)
		}
	}
}

func TestDistinctKeepsFirstOccurrence(t *testing.T) {
	rel := numbers(t, "R", 300, func(i int) string { return fmt.Sprint("v", i%5) })
	schema := relation.MustSchema(relation.Column{Name: "V", Type: relation.TString})
	op := exec.NewDistinct(nil,
		exec.NewProject(nil, schema, []int{1}, exec.NewFullScan(nil, rel, nil)))
	rows := collect(t, op)
	if len(rows) != 5 {
		t.Fatalf("got %d distinct rows, want 5", len(rows))
	}
	for i, row := range rows {
		if row[0].String() != fmt.Sprint("v", i) {
			t.Fatalf("distinct row %d: got %s, want first-seen order", i, row)
		}
	}
}

func TestSortOrdersAndIsStable(t *testing.T) {
	rel := relation.New("R", relation.MustSchema(
		relation.Column{Name: "K", Type: relation.TInt},
		relation.Column{Name: "Seq", Type: relation.TInt},
	))
	for i := 0; i < 400; i++ {
		mustInsert(t, rel, relation.Tuple{relation.Int(int64(i % 3)), relation.Int(int64(i))})
	}
	op := exec.NewSort(nil, []exec.SortSpec{{Col: 0, Desc: true}}, exec.NewFullScan(nil, rel, nil))
	rows := collect(t, op)
	if len(rows) != 400 {
		t.Fatalf("got %d rows, want 400", len(rows))
	}
	lastK, lastSeq := int64(3), int64(-1)
	for i, row := range rows {
		k, seq := row[0].Int64(), row[1].Int64()
		if k > lastK {
			t.Fatalf("row %d: key %d after %d in a descending sort", i, k, lastK)
		}
		if k == lastK && seq < lastSeq {
			t.Fatalf("row %d: sort is not stable (seq %d after %d)", i, seq, lastSeq)
		}
		if k < lastK {
			lastSeq = -1
		}
		lastK, lastSeq = k, seq
	}
}

func TestHashJoinMatchesNestedLoopReference(t *testing.T) {
	left := numbers(t, "L", 200, func(i int) string { return fmt.Sprint("l", i) })
	right := relation.New("R2", relation.MustSchema(
		relation.Column{Name: "K2", Type: relation.TInt},
		relation.Column{Name: "W", Type: relation.TString},
	))
	for i := 0; i < 300; i++ {
		mustInsert(t, right, relation.Tuple{relation.Int(int64(i % 50)), relation.String(fmt.Sprint("r", i))})
	}
	schema := relation.MustSchema(
		relation.Column{Name: "K", Type: relation.TInt},
		relation.Column{Name: "V", Type: relation.TString},
		relation.Column{Name: "K2", Type: relation.TInt},
		relation.Column{Name: "W", Type: relation.TString},
	)
	op := exec.NewHashJoin(nil, schema,
		exec.NewFullScan(nil, left, nil), exec.NewFullScan(nil, right, nil),
		exec.KeyOf([]int{0}), exec.KeyOf([]int{0}))
	got := collect(t, op)

	// Reference: probe order outer, build arrival order inner.
	var want []string
	for _, l := range left.Rows() {
		for _, r := range right.Rows() {
			if l[0].Equal(r[0]) {
				want = append(want, append(l.Clone(), r...).String())
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i, k := range keys(got) {
		if k != want[i] {
			t.Fatalf("row %d: got %s, want %s", i, k, want[i])
		}
	}
}

func TestHashJoinEmptyBuildSide(t *testing.T) {
	left := numbers(t, "L", 100, func(i int) string { return "x" })
	right := numbers(t, "R", 0, nil)
	schema := relation.MustSchema(
		relation.Column{Name: "A", Type: relation.TInt},
		relation.Column{Name: "B", Type: relation.TString},
		relation.Column{Name: "C", Type: relation.TInt},
		relation.Column{Name: "D", Type: relation.TString},
	)
	op := exec.NewHashJoin(nil, schema,
		exec.NewFullScan(nil, left, nil), exec.NewFullScan(nil, right, nil),
		exec.KeyOf([]int{0}), exec.KeyOf([]int{0}))
	if rows := collect(t, op); len(rows) != 0 {
		t.Fatalf("got %d rows from an empty build side", len(rows))
	}
}

func TestCrossJoinPairsEverything(t *testing.T) {
	left := numbers(t, "L", 7, func(i int) string { return "l" })
	right := numbers(t, "R", 11, func(i int) string { return "r" })
	schema := relation.MustSchema(
		relation.Column{Name: "A", Type: relation.TInt},
		relation.Column{Name: "B", Type: relation.TString},
		relation.Column{Name: "C", Type: relation.TInt},
		relation.Column{Name: "D", Type: relation.TString},
	)
	op := exec.NewCrossJoin(nil, schema,
		exec.NewFullScan(nil, left, nil), exec.NewFullScan(nil, right, nil))
	rows := collect(t, op)
	if len(rows) != 7*11 {
		t.Fatalf("got %d rows, want %d", len(rows), 7*11)
	}
	// Probe-major order: row i pairs left[i/11] with right[i%11].
	for i, row := range rows {
		if row[0].Int64() != int64(i/11) || row[2].Int64() != int64(i%11) {
			t.Fatalf("row %d: got %s", i, row)
		}
	}

	empty := numbers(t, "E", 0, nil)
	op = exec.NewCrossJoin(nil, schema,
		exec.NewFullScan(nil, left, nil), exec.NewFullScan(nil, empty, nil))
	if rows := collect(t, op); len(rows) != 0 {
		t.Fatalf("got %d rows from an empty build side", len(rows))
	}
}

func TestAggregateSemantics(t *testing.T) {
	rel := relation.New("R", relation.MustSchema(
		relation.Column{Name: "G", Type: relation.TString},
		relation.Column{Name: "N", Type: relation.TInt},
	))
	mustInsert(t, rel,
		relation.Tuple{relation.String("b"), relation.Int(10)},
		relation.Tuple{relation.String("a"), relation.Null()},
		relation.Tuple{relation.String("b"), relation.Int(4)},
		relation.Tuple{relation.String("a"), relation.Int(2)},
	)
	schema := relation.MustSchema(
		relation.Column{Name: "G", Type: relation.TString},
		relation.Column{Name: "Stars", Type: relation.TInt},
		relation.Column{Name: "Ns", Type: relation.TInt},
		relation.Column{Name: "Sum", Type: relation.TInt},
		relation.Column{Name: "Avg", Type: relation.TFloat},
		relation.Column{Name: "Min", Type: relation.TInt},
		relation.Column{Name: "Max", Type: relation.TInt},
	)
	items := []exec.AggItem{
		{Kind: exec.AggGroup, Arg: 0},
		{Kind: exec.AggCount, Arg: -1},
		{Kind: exec.AggCount, Arg: 1},
		{Kind: exec.AggSum, Arg: 1},
		{Kind: exec.AggAvg, Arg: 1},
		{Kind: exec.AggMin, Arg: 1},
		{Kind: exec.AggMax, Arg: 1},
	}
	op := exec.NewAggregate(nil, schema, []int{0}, items, exec.NewFullScan(nil, rel, nil))
	rows := collect(t, op)
	if len(rows) != 2 {
		t.Fatalf("got %d groups, want 2", len(rows))
	}
	// Groups come in first-seen order: b before a.
	b, a := rows[0], rows[1]
	if b[0].String() != "b" || a[0].String() != "a" {
		t.Fatalf("group order: got %s then %s, want b then a", b[0], a[0])
	}
	if b[1].Int64() != 2 || b[2].Int64() != 2 || b[3].Int64() != 14 ||
		b[4].Float64() != 7 || b[5].Int64() != 4 || b[6].Int64() != 10 {
		t.Fatalf("group b: got %s", b)
	}
	// COUNT(*) counts the null row, COUNT(N) does not.
	if a[1].Int64() != 2 || a[2].Int64() != 1 || a[3].Int64() != 2 {
		t.Fatalf("group a: got %s", a)
	}

	// Grand total over empty input still emits one row; SUM/AVG are null.
	emptyRel := numbers(t, "E", 0, nil)
	gtSchema := relation.MustSchema(
		relation.Column{Name: "Count", Type: relation.TInt},
		relation.Column{Name: "Sum", Type: relation.TInt},
	)
	op = exec.NewAggregate(nil, gtSchema, nil,
		[]exec.AggItem{{Kind: exec.AggCount, Arg: -1}, {Kind: exec.AggSum, Arg: 0}},
		exec.NewFullScan(nil, emptyRel, nil))
	rows = collect(t, op)
	if len(rows) != 1 {
		t.Fatalf("grand total over empty input: got %d rows, want 1", len(rows))
	}
	if rows[0][0].Int64() != 0 || !rows[0][1].IsNull() {
		t.Fatalf("grand total: got %s, want (0, null)", rows[0])
	}
}

func TestLimitStopsPullingInput(t *testing.T) {
	rel := numbers(t, "R", 20*exec.BatchSize, func(i int) string { return "x" })
	src := &counting{Operator: exec.NewFullScan(nil, rel, nil)}
	op := exec.NewLimit(10, src)
	rows := collect(t, op)
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	if src.nexts != 1 {
		t.Fatalf("source Next called %d times after a 10-row limit, want 1", src.nexts)
	}
}

func TestDrainEarlyExitStopsPipeline(t *testing.T) {
	rel := numbers(t, "R", 20*exec.BatchSize, func(i int) string { return "x" })
	src := &counting{Operator: exec.NewFullScan(nil, rel, nil)}
	n := 0
	err := exec.Drain(context.Background(), src, func(relation.Tuple) bool {
		n++
		return n < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("yield saw %d rows, want 5", n)
	}
	if src.nexts != 1 {
		t.Fatalf("source Next called %d times after early exit, want 1", src.nexts)
	}
}

func TestDrainHonorsCancellation(t *testing.T) {
	rel := numbers(t, "R", 10*exec.BatchSize, func(i int) string { return "x" })
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	err := exec.Drain(ctx, exec.NewFullScan(nil, rel, nil), func(relation.Tuple) bool {
		n++
		if n == exec.BatchSize {
			cancel() // takes effect at the next batch boundary
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if n >= 10*exec.BatchSize {
		t.Fatalf("drain consumed the whole input despite cancellation")
	}
}

func TestValuesAndEmpty(t *testing.T) {
	schema := relation.MustSchema(relation.Column{Name: "K", Type: relation.TInt})
	rows := collect(t, exec.NewValues(nil, schema, []relation.Tuple{
		{relation.Int(1)}, {relation.Int(2)},
	}))
	if len(rows) != 2 || rows[0][0].Int64() != 1 || rows[1][0].Int64() != 2 {
		t.Fatalf("values: got %v", keys(rows))
	}
	if rows := collect(t, exec.NewEmpty(nil, schema)); len(rows) != 0 {
		t.Fatalf("empty emitted %d rows", len(rows))
	}
}
