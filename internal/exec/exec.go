// Package exec is the streaming execution layer: a tree of batched
// iterators that produces query results without materializing every
// intermediate relation. Each operator implements the Open/Next/Close
// contract and carries its output schema, mirroring the typed plan.Plan
// nodes the planner builds — an operator tree is constructed directly
// from the plan nodes it executes, so the plan EXPLAIN renders is
// exactly the tree that runs.
//
// # Iterator contract
//
// Open prepares the operator (and its inputs) for one run; Next fills
// the caller's Batch with up to BatchSize rows, an empty batch meaning
// end of stream; Close releases resources. A tree is single-use: build
// a fresh one per execution. Close is idempotent and safe on an
// operator whose Open failed partway.
//
// Rows flow as relation.Tuple headers. Operators that synthesize rows
// (joins, projections) carve them out of one per-batch value arena, so
// a consumer may retain any emitted tuple indefinitely while the
// pipeline still allocates per batch, not per row. Batches themselves
// are pooled scratch buffers: an operator must copy the tuple headers
// it wants to keep across Next calls (the backing values are stable).
//
// # Early exit and cancellation
//
// A consumer that stops pulling terminates the whole pipeline — no
// operator computes rows nobody asked for, which is what makes
// existence-style probes and LIMIT cheap. Context cancellation is
// checked at batch boundaries (in the source operators and in Drain),
// never per row, so cancellation costs nothing on the hot path and
// still stops a run within one batch.
//
// # What still materializes
//
// Sort buffers its whole input before emitting (a total order needs
// every row), and HashJoin/CrossJoin materialize their build (right)
// side into the hash table. Everything else streams.
package exec

import (
	"context"
	"sync"

	"intensional/internal/relation"
)

// BatchSize is the number of rows one Next call delivers at most —
// large enough to amortize per-call overhead across rows, small enough
// that in-flight memory stays a constant independent of input
// cardinality.
const BatchSize = 256

// Batch is a bounded buffer of rows flowing between operators. The
// producer resets and fills it; the consumer reads Len rows. Tuple
// headers in a batch are overwritten by the next Next call, but the
// values they point at are stable — copy the header to keep a row.
type Batch struct {
	rows []relation.Tuple
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return len(b.rows) }

// Row returns the i-th row.
func (b *Batch) Row(i int) relation.Tuple { return b.rows[i] }

// Reset empties the batch, keeping its capacity.
func (b *Batch) Reset() { b.rows = b.rows[:0] }

// Append adds a row to the batch.
func (b *Batch) Append(t relation.Tuple) { b.rows = append(b.rows, t) }

// Full reports whether the batch has reached BatchSize rows.
func (b *Batch) Full() bool { return len(b.rows) >= BatchSize }

// Truncate drops every row past the first n.
func (b *Batch) Truncate(n int) {
	if n < len(b.rows) {
		b.rows = b.rows[:n]
	}
}

// batchPool recycles batch buffers across operators and runs — the hot
// query path allocates no new batch once the pool is warm.
var batchPool = sync.Pool{
	New: func() any { return &Batch{rows: make([]relation.Tuple, 0, BatchSize)} },
}

func getBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.Reset()
	return b
}

func putBatch(b *Batch) {
	if b != nil {
		batchPool.Put(b)
	}
}

// Operator is one node of a streaming execution tree. See the package
// comment for the contract.
type Operator interface {
	// Open prepares the operator and its inputs for one run.
	Open(ctx context.Context) error
	// Next fills b with up to BatchSize rows; an empty batch is end of
	// stream. b is reset by the callee.
	Next(b *Batch) error
	// Close releases resources. Idempotent; safe after a failed Open.
	Close() error
	// Schema is the operator's output row type, carried the same way
	// plan.Plan nodes carry theirs.
	Schema() *relation.Schema
}

// Pred decides whether a row qualifies.
type Pred func(relation.Tuple) bool

// KeyFn extracts a hash key from a row (join keys, distinct keys).
type KeyFn func(relation.Tuple) string

// KeyOf returns a KeyFn over the given column positions, composing
// each value's collision-free Key. The returned KeyFn reuses a scratch
// buffer across calls and is therefore not safe for concurrent use —
// build one per operator, as instantiating a tree does.
func KeyOf(cols []int) KeyFn {
	if len(cols) == 1 {
		// Single-column keys (the common join) need no composition: a
		// value's Key is already collision-free on its own.
		c := cols[0]
		return func(t relation.Tuple) string { return t[c].Key() }
	}
	var buf []byte
	return func(t relation.Tuple) string {
		buf = buf[:0]
		for _, c := range cols {
			buf = append(buf, t[c].Key()...)
			buf = append(buf, '\x1f')
		}
		return string(buf)
	}
}

// Drain opens op, streams every row into yield, and closes it. A yield
// returning false stops the pipeline early: no further batch is pulled
// from any operator. The context is checked once per batch. Drain
// always closes the tree; the first error wins.
func Drain(ctx context.Context, op Operator, yield func(relation.Tuple) bool) error {
	err := drain(ctx, op, yield)
	if cerr := op.Close(); err == nil {
		err = cerr
	}
	return err
}

func drain(ctx context.Context, op Operator, yield func(relation.Tuple) bool) error {
	if err := op.Open(ctx); err != nil {
		return err
	}
	b := getBatch()
	defer putBatch(b)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := op.Next(b); err != nil {
			return err
		}
		if b.Len() == 0 {
			return nil
		}
		for i := 0; i < b.Len(); i++ {
			if !yield(b.Row(i)) {
				return nil
			}
		}
	}
}

// Collect drains op into a row slice. sizeHint pre-sizes the slice; it
// is a hint, not a bound.
func Collect(ctx context.Context, op Operator, sizeHint int) ([]relation.Tuple, error) {
	if sizeHint < 0 {
		sizeHint = 0
	}
	if sizeHint > 4096 {
		sizeHint = 4096
	}
	rows := make([]relation.Tuple, 0, sizeHint)
	err := Drain(ctx, op, func(t relation.Tuple) bool {
		rows = append(rows, t)
		return true
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// arena carves output tuples out of flat value chunks — one allocation
// per chunk, not per row. Chunks grow geometrically from a few rows up
// to BatchSize, so a tiny result allocates a tiny chunk while a long
// stream settles at one allocation per batch. Carved tuples are full
// slices the consumer may retain indefinitely: handed-out memory is
// never reused, the arena only carves forward.
type arena struct {
	buf   []relation.Value
	width int
	chunk int // rows in the next chunk; doubles up to BatchSize
}

func newArena(width int) arena { return arena{width: width, chunk: 8} }

// next returns a fresh zeroed tuple of the arena's width.
func (a *arena) next() relation.Tuple {
	if len(a.buf) < a.width {
		a.buf = make([]relation.Value, a.chunk*a.width)
		if a.chunk < BatchSize {
			a.chunk *= 2
		}
	}
	t := a.buf[:a.width:a.width]
	a.buf = a.buf[a.width:]
	return relation.Tuple(t)
}
