package exec

import (
	"context"
	"strings"

	"intensional/internal/plan"
	"intensional/internal/relation"
)

// AggKind selects what one output column of an Aggregate computes.
type AggKind uint8

const (
	// AggGroup passes a GROUP BY column's value through.
	AggGroup AggKind = iota
	// AggCount counts rows (Arg < 0, COUNT(*)) or non-null arguments.
	AggCount
	// AggSum sums non-null arguments; null over an empty group.
	AggSum
	// AggAvg averages non-null arguments; null over an empty group.
	AggAvg
	// AggMin takes the smallest non-null argument.
	AggMin
	// AggMax takes the largest non-null argument.
	AggMax
)

// AggItem is one output column of an Aggregate: what to compute and the
// input column it reads (-1 for COUNT(*)).
type AggItem struct {
	Kind AggKind
	Arg  int
}

// Aggregate groups its input on the GroupBy columns and folds each
// group through the item accumulators. It materializes only the group
// accumulators and the (one-row-per-group) output — the input streams
// through. Groups are emitted in first-seen input order. With no
// GroupBy columns, exactly one row is produced even on empty input —
// SQL's grand-total rule.
type Aggregate struct {
	node    plan.Node
	schema  *relation.Schema
	groupBy []int
	items   []AggItem
	input   Operator

	keyIdx []int // per AggGroup item: position of Arg in groupBy; -1 otherwise

	ctx   context.Context
	out   []relation.Tuple
	pos   int
	ready bool
}

// NewAggregate builds an aggregation executing node. groupBy lists the
// input columns to group on; items define the output columns in order.
func NewAggregate(node plan.Node, schema *relation.Schema, groupBy []int, items []AggItem, input Operator) *Aggregate {
	keyIdx := make([]int, len(items))
	for i, it := range items {
		keyIdx[i] = -1
		if it.Kind != AggGroup {
			continue
		}
		for gi, gp := range groupBy {
			if gp == it.Arg {
				keyIdx[i] = gi
				break
			}
		}
	}
	return &Aggregate{node: node, schema: schema, groupBy: groupBy, items: items,
		input: input, keyIdx: keyIdx}
}

// Plan returns the plan node this operator executes.
func (a *Aggregate) Plan() plan.Node { return a.node }

// Schema returns the aggregate output schema.
func (a *Aggregate) Schema() *relation.Schema { return a.schema }

// Open opens the input.
func (a *Aggregate) Open(ctx context.Context) error {
	a.ctx = ctx
	a.out = nil
	a.pos = 0
	a.ready = false
	return a.input.Open(ctx)
}

// acc accumulates one group across every item.
type acc struct {
	key      []relation.Value
	count    []int64
	sumI     []int64
	sumF     []float64
	isFloat  []bool
	min, max []relation.Value
}

func newAcc(key []relation.Value, n int) *acc {
	return &acc{
		key:   key,
		count: make([]int64, n), sumI: make([]int64, n), sumF: make([]float64, n),
		isFloat: make([]bool, n),
		min:     make([]relation.Value, n), max: make([]relation.Value, n),
	}
}

// Next folds the whole input on the first call and then emits the
// grouped output in batches.
func (a *Aggregate) Next(b *Batch) error {
	b.Reset()
	if !a.ready {
		if err := a.fold(); err != nil {
			return err
		}
		a.ready = true
	}
	for a.pos < len(a.out) && !b.Full() {
		b.Append(a.out[a.pos])
		a.pos++
	}
	return nil
}

func (a *Aggregate) fold() error {
	groups := map[string]*acc{}
	var order []string // first-seen group emission order
	in := getBatch()
	defer putBatch(in)
	for {
		if err := a.ctx.Err(); err != nil {
			return err
		}
		if err := a.input.Next(in); err != nil {
			return err
		}
		if in.Len() == 0 {
			break
		}
		for r := 0; r < in.Len(); r++ {
			row := in.Row(r)
			var kb strings.Builder
			key := make([]relation.Value, len(a.groupBy))
			for i, gp := range a.groupBy {
				key[i] = row[gp]
				kb.WriteString(row[gp].Key())
				kb.WriteByte('\x1f')
			}
			k := kb.String()
			g, ok := groups[k]
			if !ok {
				g = newAcc(key, len(a.items))
				groups[k] = g
				order = append(order, k)
			}
			for i, it := range a.items {
				if it.Kind == AggGroup {
					continue
				}
				if it.Arg < 0 { // COUNT(*)
					g.count[i]++
					continue
				}
				v := row[it.Arg]
				if v.IsNull() {
					continue
				}
				g.count[i]++
				switch v.Kind() {
				case relation.KindInt:
					g.sumI[i] += v.Int64()
					g.sumF[i] += v.Float64()
				case relation.KindFloat:
					g.isFloat[i] = true
					g.sumF[i] += v.Float64()
				}
				if g.min[i].IsNull() || v.Less(g.min[i]) {
					g.min[i] = v
				}
				if g.max[i].IsNull() || g.max[i].Less(v) {
					g.max[i] = v
				}
			}
		}
	}
	// A grand total (no GROUP BY) produces exactly one row, even when
	// the input is empty.
	if len(a.groupBy) == 0 && len(groups) == 0 {
		groups[""] = newAcc(nil, len(a.items))
		order = append(order, "")
	}

	a.out = make([]relation.Tuple, 0, len(order))
	for _, k := range order {
		g := groups[k]
		row := make(relation.Tuple, len(a.items))
		for i, it := range a.items {
			switch it.Kind {
			case AggGroup:
				if gi := a.keyIdx[i]; gi >= 0 {
					row[i] = g.key[gi]
				}
			case AggCount:
				row[i] = relation.Int(g.count[i])
			case AggSum:
				if g.count[i] == 0 {
					row[i] = relation.Null()
				} else if g.isFloat[i] {
					row[i] = relation.Float(g.sumF[i])
				} else {
					row[i] = relation.Int(g.sumI[i])
				}
			case AggAvg:
				if g.count[i] == 0 {
					row[i] = relation.Null()
				} else {
					row[i] = relation.Float(g.sumF[i] / float64(g.count[i]))
				}
			case AggMin:
				row[i] = g.min[i]
			case AggMax:
				row[i] = g.max[i]
			}
		}
		a.out = append(a.out, row)
	}
	return nil
}

// Close releases the grouped output and the input.
func (a *Aggregate) Close() error {
	a.out = nil
	return a.input.Close()
}
