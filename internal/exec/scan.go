package exec

import (
	"context"
	"sort"

	"intensional/internal/plan"
	"intensional/internal/relation"
)

// FullScan streams every row of a relation, in row order, one batch at
// a time. It emits the relation's own tuple headers — no copying.
type FullScan struct {
	node   plan.Node
	rel    *relation.Relation
	onOpen func() // optional: scan-counter hook, fired once per run

	ctx context.Context
	pos int
}

// NewFullScan builds a full scan over rel executing node. onOpen, when
// non-nil, fires once per Open (the full-scan counter hook).
func NewFullScan(node plan.Node, rel *relation.Relation, onOpen func()) *FullScan {
	return &FullScan{node: node, rel: rel, onOpen: onOpen}
}

// Plan returns the plan node this operator executes.
func (s *FullScan) Plan() plan.Node { return s.node }

// Schema returns the scanned relation's schema.
func (s *FullScan) Schema() *relation.Schema { return s.rel.Schema() }

// Open positions the scan at the first row.
func (s *FullScan) Open(ctx context.Context) error {
	s.ctx = ctx
	s.pos = 0
	if s.onOpen != nil {
		s.onOpen()
	}
	return nil
}

// Next emits the next batch of rows.
func (s *FullScan) Next(b *Batch) error {
	b.Reset()
	if err := s.ctx.Err(); err != nil {
		return err
	}
	n := s.rel.Len()
	for s.pos < n && !b.Full() {
		b.Append(s.rel.Row(s.pos))
		s.pos++
	}
	return nil
}

// Close releases nothing; full scans hold no resources.
func (s *FullScan) Close() error { return nil }

// IndexScanHooks wires an index scan to the session's observability: a
// one-shot rebuild of a stale index, and the scan/fallback counters.
// Every field is optional.
type IndexScanHooks struct {
	// Rebuild is asked for a fresh index once when the planned one has
	// gone stale; returning nil degrades the scan to a full scan.
	Rebuild func() *relation.Index
	// OnIndexScan fires when the index serves the scan.
	OnIndexScan func()
	// OnFullScan fires when the scan degrades to a full scan.
	OnFullScan func()
	// OnFallback reports why the index could not serve the scan.
	OnFallback func(reason string)
}

// IndexScan streams the rows a secondary index selects for "column op
// value", in row order. A stale index is rebuilt once at Open; if that
// fails too, the scan degrades — loudly, through the hooks — to a full
// scan that re-checks the selection per row.
type IndexScan struct {
	node  plan.Node
	rel   *relation.Relation
	ix    *relation.Index
	op    string
	val   relation.Value
	sel   Pred // the selection predicate, re-checked only in fallback mode
	hooks IndexScanHooks

	ctx      context.Context
	rows     []int // matched row positions when the index served
	pos      int
	fallback bool // degrade to full scan + sel recheck
}

// NewIndexScan builds an index scan over rel executing node. sel must
// decide the same "column op value" condition the index serves; it is
// consulted only when the scan degrades to a full scan.
func NewIndexScan(node plan.Node, rel *relation.Relation, ix *relation.Index,
	op string, val relation.Value, sel Pred, hooks IndexScanHooks) *IndexScan {
	return &IndexScan{node: node, rel: rel, ix: ix, op: op, val: val, sel: sel, hooks: hooks}
}

// Plan returns the plan node this operator executes.
func (s *IndexScan) Plan() plan.Node { return s.node }

// Schema returns the scanned relation's schema.
func (s *IndexScan) Schema() *relation.Schema { return s.rel.Schema() }

// Open performs the index lookup (rebuilding a stale index once) or
// arms the fallback full scan.
func (s *IndexScan) Open(ctx context.Context) error {
	s.ctx = ctx
	s.pos = 0
	s.fallback = false
	ix := s.ix
	rows, err := ix.Lookup(s.op, s.val)
	if err != nil && s.hooks.Rebuild != nil {
		// Stale index: rebuild and retry once before degrading.
		if ix2 := s.hooks.Rebuild(); ix2 != nil {
			rows, err = ix2.Lookup(s.op, s.val)
		}
	}
	if err != nil {
		if s.hooks.OnFallback != nil {
			s.hooks.OnFallback(err.Error())
		}
		if s.hooks.OnFullScan != nil {
			s.hooks.OnFullScan()
		}
		s.fallback = true
		s.rows = nil
		return nil
	}
	if s.hooks.OnIndexScan != nil {
		s.hooks.OnIndexScan()
	}
	sort.Ints(rows) // restore row order for stable results
	s.rows = rows
	return nil
}

// Next emits the next batch of matching rows.
func (s *IndexScan) Next(b *Batch) error {
	b.Reset()
	if err := s.ctx.Err(); err != nil {
		return err
	}
	if s.fallback {
		n := s.rel.Len()
		for s.pos < n && !b.Full() {
			t := s.rel.Row(s.pos)
			s.pos++
			if s.sel == nil || s.sel(t) {
				b.Append(t)
			}
		}
		return nil
	}
	for s.pos < len(s.rows) && !b.Full() {
		b.Append(s.rel.Row(s.rows[s.pos]))
		s.pos++
	}
	return nil
}

// Close drops the matched-row list.
func (s *IndexScan) Close() error {
	s.rows = nil
	return nil
}

// Values streams a fixed row list — the source for the zero-variable
// retrieve (one empty row) and a convenient test double.
type Values struct {
	node   plan.Node
	schema *relation.Schema
	rows   []relation.Tuple

	ctx context.Context
	pos int
}

// NewValues builds a fixed-row source.
func NewValues(node plan.Node, schema *relation.Schema, rows []relation.Tuple) *Values {
	return &Values{node: node, schema: schema, rows: rows}
}

// Plan returns the plan node this operator executes.
func (v *Values) Plan() plan.Node { return v.node }

// Schema returns the fixed rows' schema.
func (v *Values) Schema() *relation.Schema { return v.schema }

// Open positions the source at the first row.
func (v *Values) Open(ctx context.Context) error {
	v.ctx = ctx
	v.pos = 0
	return nil
}

// Next emits the next batch of fixed rows.
func (v *Values) Next(b *Batch) error {
	b.Reset()
	if err := v.ctx.Err(); err != nil {
		return err
	}
	for v.pos < len(v.rows) && !b.Full() {
		b.Append(v.rows[v.pos])
		v.pos++
	}
	return nil
}

// Close releases nothing.
func (v *Values) Close() error { return nil }

// Empty produces no rows at all — the operator form of a result the
// semantic optimizer proved empty. Its pipeline scans zero batches of
// anything.
type Empty struct {
	node   plan.Node
	schema *relation.Schema
}

// NewEmpty builds a zero-row source with the given output schema.
func NewEmpty(node plan.Node, schema *relation.Schema) *Empty {
	return &Empty{node: node, schema: schema}
}

// Plan returns the plan node this operator executes.
func (e *Empty) Plan() plan.Node { return e.node }

// Schema returns the would-be output schema.
func (e *Empty) Schema() *relation.Schema { return e.schema }

// Open does nothing.
func (e *Empty) Open(context.Context) error { return nil }

// Next always reports end of stream.
func (e *Empty) Next(b *Batch) error {
	b.Reset()
	return nil
}

// Close releases nothing.
func (e *Empty) Close() error { return nil }
