package exec

import (
	"context"

	"intensional/internal/plan"
	"intensional/internal/relation"
)

// HashJoin joins a streamed probe (left) input against a materialized
// build (right) input. Open drains the right side into a hash table —
// the one materialization a hash join cannot avoid — and Next streams
// probe batches through it, emitting the concatenation left++right for
// every key match. Output order is probe order, then build arrival
// order within a key, matching the materializing executor exactly.
type HashJoin struct {
	node     plan.Node
	schema   *relation.Schema
	left     Operator
	right    Operator
	leftKey  KeyFn
	rightKey KeyFn

	table map[string][]relation.Tuple
	out   arena
	probe *Batch // current probe-side batch (pooled)
	pi    int    // cursor into probe
	match []relation.Tuple
	mi    int
	done  bool
}

// NewHashJoin builds a hash join executing node. schema is the
// concatenated output row type; leftKey/rightKey must extract equal
// keys for joining rows.
func NewHashJoin(node plan.Node, schema *relation.Schema, left, right Operator,
	leftKey, rightKey KeyFn) *HashJoin {
	return &HashJoin{node: node, schema: schema, left: left, right: right,
		leftKey: leftKey, rightKey: rightKey}
}

// Plan returns the plan node this operator executes.
func (j *HashJoin) Plan() plan.Node { return j.node }

// Schema returns the concatenated output schema.
func (j *HashJoin) Schema() *relation.Schema { return j.schema }

// Open opens both inputs and materializes the build side.
func (j *HashJoin) Open(ctx context.Context) error {
	j.done = false
	j.pi = 0
	j.match = nil
	j.mi = 0
	j.out = newArena(j.schema.Len())
	if err := j.left.Open(ctx); err != nil {
		return err
	}
	if err := j.right.Open(ctx); err != nil {
		return err
	}
	j.table = make(map[string][]relation.Tuple)
	b := getBatch()
	defer putBatch(b)
	for {
		if err := j.right.Next(b); err != nil {
			return err
		}
		if b.Len() == 0 {
			break
		}
		for i := 0; i < b.Len(); i++ {
			t := b.Row(i)
			k := j.rightKey(t)
			j.table[k] = append(j.table[k], t)
		}
	}
	j.probe = getBatch()
	return nil
}

// Next emits the next batch of joined rows, carved out of one arena
// allocation per batch.
func (j *HashJoin) Next(b *Batch) error {
	b.Reset()
	if j.done {
		return nil
	}
	for !b.Full() {
		for j.mi >= len(j.match) {
			// Advance to the next probe row that has matches.
			j.pi++
			if j.pi >= j.probe.Len() {
				if err := j.left.Next(j.probe); err != nil {
					return err
				}
				if j.probe.Len() == 0 {
					j.done = true
					return nil
				}
				j.pi = 0
			}
			j.match = j.table[j.leftKey(j.probe.Row(j.pi))]
			j.mi = 0
		}
		l := j.probe.Row(j.pi)
		r := j.match[j.mi]
		j.mi++
		row := j.out.next()
		copy(row, l)
		copy(row[len(l):], r)
		b.Append(row)
	}
	return nil
}

// Close releases the hash table and both inputs.
func (j *HashJoin) Close() error {
	j.table = nil
	j.match = nil
	putBatch(j.probe)
	j.probe = nil
	err := j.left.Close()
	if cerr := j.right.Close(); err == nil {
		err = cerr
	}
	return err
}

// CrossJoin pairs every probe (left) row with every build (right) row.
// Like HashJoin it materializes only the build side.
type CrossJoin struct {
	node   plan.Node
	schema *relation.Schema
	left   Operator
	right  Operator

	rows  []relation.Tuple // materialized build side
	out   arena
	probe *Batch
	pi    int
	ri    int
	done  bool
}

// NewCrossJoin builds a cross join executing node.
func NewCrossJoin(node plan.Node, schema *relation.Schema, left, right Operator) *CrossJoin {
	return &CrossJoin{node: node, schema: schema, left: left, right: right}
}

// Plan returns the plan node this operator executes.
func (j *CrossJoin) Plan() plan.Node { return j.node }

// Schema returns the concatenated output schema.
func (j *CrossJoin) Schema() *relation.Schema { return j.schema }

// Open opens both inputs and materializes the build side.
func (j *CrossJoin) Open(ctx context.Context) error {
	j.done = false
	j.pi = 0
	j.ri = 0
	j.out = newArena(j.schema.Len())
	if err := j.left.Open(ctx); err != nil {
		return err
	}
	if err := j.right.Open(ctx); err != nil {
		return err
	}
	j.rows = j.rows[:0]
	b := getBatch()
	defer putBatch(b)
	for {
		if err := j.right.Next(b); err != nil {
			return err
		}
		if b.Len() == 0 {
			break
		}
		for i := 0; i < b.Len(); i++ {
			j.rows = append(j.rows, b.Row(i))
		}
	}
	j.probe = getBatch()
	j.ri = len(j.rows) // force the first probe pull
	j.pi = j.probe.Len()
	return nil
}

// Next emits the next batch of paired rows.
func (j *CrossJoin) Next(b *Batch) error {
	b.Reset()
	if j.done {
		return nil
	}
	for !b.Full() {
		for j.ri >= len(j.rows) {
			// Advance to the next probe row.
			j.pi++
			if j.pi >= j.probe.Len() {
				if err := j.left.Next(j.probe); err != nil {
					return err
				}
				if j.probe.Len() == 0 {
					j.done = true
					return nil
				}
				j.pi = 0
			}
			j.ri = 0
			if len(j.rows) == 0 {
				// Empty build side: no output at all.
				j.done = true
				return nil
			}
		}
		l := j.probe.Row(j.pi)
		r := j.rows[j.ri]
		j.ri++
		row := j.out.next()
		copy(row, l)
		copy(row[len(l):], r)
		b.Append(row)
	}
	return nil
}

// Close releases the build rows and both inputs.
func (j *CrossJoin) Close() error {
	j.rows = nil
	putBatch(j.probe)
	j.probe = nil
	err := j.left.Close()
	if cerr := j.right.Close(); err == nil {
		err = cerr
	}
	return err
}
