// Package answer renders the inference processor's structured results as
// the English intensional answers the paper prints (the A_I strings of
// Section 6), ranked by the query's projection so the description the
// user asked about comes first.
package answer

import (
	"fmt"
	"strings"

	"intensional/internal/infer"
	"intensional/internal/query"
	"intensional/internal/rules"
)

// Mode selects which inference direction the rendered answer reports.
type Mode int

const (
	// Combined reports forward conclusions and backward descriptions
	// together (Example 3).
	Combined Mode = iota
	// ForwardOnly reports only the forward characterisation (Example 1).
	ForwardOnly
	// BackwardOnly reports only the backward partial descriptions
	// (Example 2).
	BackwardOnly
)

// Answer is a rendered intensional answer.
type Answer struct {
	Mode   Mode
	Result *infer.Result
	// Lines are the rendered sentences, most relevant first.
	Lines []string
}

// Text joins the rendered lines.
func (a *Answer) Text() string { return strings.Join(a.Lines, "\n") }

// Render builds the English answer for a query analysis and its inference
// result. The projection ranks backward descriptions: clauses on selected
// attributes come first.
func Render(an *query.Analysis, res *infer.Result, mode Mode) *Answer {
	a := &Answer{Mode: mode, Result: res}
	if !res.Conjunctive {
		a.Lines = append(a.Lines, "No intensional answer: the query condition is not a pure conjunction.")
		return a
	}
	if res.Empty {
		for _, r := range res.EmptyBecause {
			a.Lines = append(a.Lines,
				fmt.Sprintf("The answer is empty: no stored instance satisfies %s.", r))
		}
		return a
	}

	condText := conditionText(an)

	if mode == ForwardOnly || mode == Combined {
		for _, f := range res.Forward() {
			a.Lines = append(a.Lines, forwardLine(f, condText))
		}
	}
	if mode == BackwardOnly || mode == Combined {
		ranked := rankDescriptions(an, res.Descriptions)
		for _, d := range ranked {
			a.Lines = append(a.Lines, backwardLine(d))
		}
	}
	if len(a.Lines) == 0 {
		a.Lines = append(a.Lines, "No intensional answer could be derived for this query.")
	}
	return a
}

// conditionText restates the query restrictions.
func conditionText(an *query.Analysis) string {
	var parts []string
	for _, r := range an.Restrictions {
		parts = append(parts, fmt.Sprintf("%s %s %s", r.Attr.Attribute, r.Op, r.Val))
	}
	return strings.Join(parts, " and ")
}

// forwardLine renders one derived fact, e.g. the paper's
// "Ship type SSBN has displacement greater than 8000" becomes
// "All answers are of type SSBN (CLASS.Type = SSBN): type SSBN has
// Displacement > 8000."
func forwardLine(f infer.Fact, cond string) string {
	subject := fmt.Sprintf("%s in %s", f.Attr, f.Interval)
	if f.Interval.IsPoint() {
		subject = fmt.Sprintf("%s = %s", f.Attr, f.Interval.Lo.Value)
	}
	if f.Subtype != "" {
		if cond != "" {
			return fmt.Sprintf("All answers are of type %s: type %s has %s.", f.Subtype, f.Subtype, cond)
		}
		return fmt.Sprintf("All answers are of type %s (%s).", f.Subtype, subject)
	}
	if cond != "" {
		return fmt.Sprintf("All answers satisfy %s (given %s).", subject, cond)
	}
	return fmt.Sprintf("All answers satisfy %s.", subject)
}

// backwardLine renders one partial description, e.g. the paper's
// "Ship Classes in the range of 0101 to 0103 are SSBN."
func backwardLine(d infer.Description) string {
	what := d.Consequence.String()
	if d.Subtype != "" {
		what = d.Subtype
	}
	c := d.Clause
	if c.IsPoint() {
		return fmt.Sprintf("Instances with %s = %s are %s (partial answer, via R%d).",
			c.Attr.Attribute, c.Lo, what, d.Via)
	}
	return fmt.Sprintf("%s in the range of %s to %s are %s (partial answer, via R%d).",
		pluralize(c.Attr.Attribute), c.Lo, c.Hi, what, d.Via)
}

// pluralize forms a simple English plural for an attribute name.
func pluralize(s string) string {
	switch {
	case strings.HasSuffix(s, "s"), strings.HasSuffix(s, "x"), strings.HasSuffix(s, "ch"):
		return s + "es"
	case strings.HasSuffix(s, "y"):
		return s[:len(s)-1] + "ies"
	default:
		return s + "s"
	}
}

// rankDescriptions orders backward descriptions so that clauses over
// projected attributes come first, preserving rule order within ranks.
func rankDescriptions(an *query.Analysis, ds []infer.Description) []infer.Description {
	projected := func(a rules.AttrRef) bool {
		for _, p := range an.Projection {
			if p.EqualFold(a) {
				return true
			}
		}
		return false
	}
	descProjected := func(d infer.Description) bool {
		if projected(d.Clause.Attr) {
			return true
		}
		for _, a := range d.Aliases {
			if projected(a) {
				return true
			}
		}
		return false
	}
	var first, rest []infer.Description
	for _, d := range ds {
		if descProjected(d) {
			first = append(first, d)
		} else {
			rest = append(rest, d)
		}
	}
	return append(first, rest...)
}
