package answer

import (
	"strings"
	"testing"

	"intensional/internal/infer"
	"intensional/internal/query"
	"intensional/internal/relation"
	"intensional/internal/rules"
)

func sampleResult() *infer.Result {
	return &infer.Result{
		Conjunctive: true,
		Facts: []infer.Fact{
			{
				Attr:     rules.Attr("CLASS", "Displacement"),
				Interval: rules.Interval{Lo: rules.Opened(relation.Int(8000)), Hi: rules.Closed(relation.Int(30000))},
			},
			{
				Attr:     rules.Attr("CLASS", "Type"),
				Interval: rules.Point(relation.String("SSBN")),
				Derived:  true,
				Via:      []int{9},
				Subtype:  "SSBN",
			},
		},
		Descriptions: []infer.Description{
			{
				Clause:      rules.RangeClause(rules.Attr("CLASS", "Class"), relation.String("0101"), relation.String("0103")),
				Consequence: rules.PointClause(rules.Attr("CLASS", "Type"), relation.String("SSBN")),
				Via:         5,
				Subtype:     "SSBN",
			},
			{
				Clause:      rules.RangeClause(rules.Attr("CLASS", "Displacement"), relation.Int(7250), relation.Int(30000)),
				Consequence: rules.PointClause(rules.Attr("CLASS", "Type"), relation.String("SSBN")),
				Via:         9,
				Subtype:     "SSBN",
			},
		},
	}
}

func sampleAnalysis() *query.Analysis {
	return &query.Analysis{
		Conjunctive: true,
		Tables:      []string{"CLASS"},
		Restrictions: []query.Restriction{{
			Attr: rules.Attr("CLASS", "Displacement"), Op: ">", Val: relation.Int(8000),
		}},
		Projection: []rules.AttrRef{rules.Attr("CLASS", "Class")},
	}
}

func TestForwardOnly(t *testing.T) {
	a := Render(sampleAnalysis(), sampleResult(), ForwardOnly)
	if len(a.Lines) != 1 {
		t.Fatalf("lines = %v", a.Lines)
	}
	if !strings.Contains(a.Lines[0], "type SSBN has Displacement > 8000") {
		t.Errorf("forward line = %q", a.Lines[0])
	}
}

func TestBackwardOnlyRanking(t *testing.T) {
	a := Render(sampleAnalysis(), sampleResult(), BackwardOnly)
	if len(a.Lines) != 2 {
		t.Fatalf("lines = %v", a.Lines)
	}
	// Class is projected, so its description must come first.
	if !strings.Contains(a.Lines[0], "Classes in the range of 0101 to 0103 are SSBN") {
		t.Errorf("line 0 = %q", a.Lines[0])
	}
	if !strings.Contains(a.Lines[1], "Displacements in the range of 7250 to 30000") {
		t.Errorf("line 1 = %q", a.Lines[1])
	}
}

func TestCombinedHasBoth(t *testing.T) {
	a := Render(sampleAnalysis(), sampleResult(), Combined)
	if len(a.Lines) != 3 {
		t.Fatalf("lines = %v", a.Lines)
	}
	if a.Text() != strings.Join(a.Lines, "\n") {
		t.Error("Text should join lines")
	}
}

func TestAliasRanking(t *testing.T) {
	res := sampleResult()
	// The Class description now references SUBMARINE.Class via an alias;
	// projection selects SUBMARINE.Class.
	res.Descriptions[0].Clause = rules.RangeClause(rules.Attr("CLASS", "Class"),
		relation.String("0101"), relation.String("0103"))
	res.Descriptions[0].Aliases = []rules.AttrRef{rules.Attr("SUBMARINE", "Class")}
	an := sampleAnalysis()
	an.Projection = []rules.AttrRef{rules.Attr("SUBMARINE", "Class")}
	a := Render(an, res, BackwardOnly)
	if !strings.Contains(a.Lines[0], "0101") {
		t.Errorf("alias-ranked line 0 = %q", a.Lines[0])
	}
}

func TestNonConjunctive(t *testing.T) {
	res := &infer.Result{Conjunctive: false}
	a := Render(&query.Analysis{}, res, Combined)
	if !strings.Contains(a.Text(), "not a pure conjunction") {
		t.Errorf("text = %q", a.Text())
	}
}

func TestEmptyResult(t *testing.T) {
	res := &infer.Result{
		Conjunctive: true,
		Empty:       true,
		EmptyBecause: []query.Restriction{{
			Attr: rules.Attr("CLASS", "Displacement"), Op: "<", Val: relation.Int(2000),
		}},
	}
	a := Render(sampleAnalysis(), res, Combined)
	if !strings.Contains(a.Text(), "The answer is empty") ||
		!strings.Contains(a.Text(), "CLASS.Displacement < 2000") {
		t.Errorf("text = %q", a.Text())
	}
}

func TestNothingDerived(t *testing.T) {
	res := &infer.Result{Conjunctive: true}
	a := Render(sampleAnalysis(), res, Combined)
	if !strings.Contains(a.Text(), "No intensional answer could be derived") {
		t.Errorf("text = %q", a.Text())
	}
}

func TestPointDescriptionLine(t *testing.T) {
	res := &infer.Result{
		Conjunctive: true,
		Descriptions: []infer.Description{{
			Clause:      rules.PointClause(rules.Attr("CLASS", "Class"), relation.String("1301")),
			Consequence: rules.PointClause(rules.Attr("CLASS", "Type"), relation.String("SSBN")),
			Via:         18,
			Subtype:     "SSBN",
		}},
	}
	a := Render(sampleAnalysis(), res, BackwardOnly)
	if !strings.Contains(a.Lines[0], "Instances with Class = 1301 are SSBN") {
		t.Errorf("point line = %q", a.Lines[0])
	}
}

func TestForwardNonSubtypeFact(t *testing.T) {
	res := &infer.Result{
		Conjunctive: true,
		Facts: []infer.Fact{{
			Attr:     rules.Attr("CLASS", "Displacement"),
			Interval: rules.Range(relation.Int(7250), relation.Int(30000)),
			Derived:  true,
		}},
	}
	an := sampleAnalysis()
	a := Render(an, res, ForwardOnly)
	if !strings.Contains(a.Lines[0], "All answers satisfy") {
		t.Errorf("line = %q", a.Lines[0])
	}
	// Without restrictions the condition clause is omitted.
	an2 := &query.Analysis{Conjunctive: true}
	a2 := Render(an2, res, ForwardOnly)
	if strings.Contains(a2.Lines[0], "given") {
		t.Errorf("line = %q", a2.Lines[0])
	}
}

func TestPluralize(t *testing.T) {
	cases := map[string]string{
		"Class":    "Classes",
		"Box":      "Boxes",
		"Branch":   "Branches",
		"Category": "Categories",
		"Sonar":    "Sonars",
	}
	for in, want := range cases {
		if got := pluralize(in); got != want {
			t.Errorf("pluralize(%q) = %q, want %q", in, got, want)
		}
	}
}
