package sqlparse

import (
	"strings"
	"testing"

	"intensional/internal/relation"
)

func TestParseExample1(t *testing.T) {
	sel, err := Parse(`
		SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE
		FROM SUBMARINE, CLASS
		WHERE SUBMARINE.CLASS = CLASS.CLASS
		AND CLASS.DISPLACEMENT > 8000`)
	if err != nil {
		t.Fatal(err)
	}
	cols := sel.Columns()
	if len(cols) != 4 || cols[0].Table != "SUBMARINE" || cols[0].Column != "ID" {
		t.Errorf("columns = %v", cols)
	}
	if len(sel.From) != 2 || sel.From[1].Table != "CLASS" {
		t.Errorf("from = %v", sel.From)
	}
	and, ok := sel.Where.(*And)
	if !ok || len(and.Terms) != 2 {
		t.Fatalf("where = %v", sel.Where)
	}
	cmp := and.Terms[1].(*Compare)
	if cmp.Op != ">" {
		t.Errorf("op = %q", cmp.Op)
	}
	lit, ok := cmp.R.(Lit)
	if !ok || !lit.Val.Equal(relation.Int(8000)) {
		t.Errorf("literal = %v", cmp.R)
	}
}

func TestParseDistinctStarOrder(t *testing.T) {
	sel, err := Parse("SELECT DISTINCT * FROM T ORDER BY A DESC, B ASC, C")
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Distinct || !sel.Star {
		t.Errorf("distinct=%v star=%v", sel.Distinct, sel.Star)
	}
	if len(sel.OrderBy) != 3 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc || sel.OrderBy[2].Desc {
		t.Errorf("order by = %v", sel.OrderBy)
	}
}

func TestParseAliases(t *testing.T) {
	sel, err := Parse("SELECT s.Name AS ShipName FROM SUBMARINE AS s, CLASS c")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Columns()[0].As != "ShipName" {
		t.Errorf("column alias = %q", sel.Columns()[0].As)
	}
	if sel.From[0].Alias != "s" || sel.From[1].Alias != "c" {
		t.Errorf("table aliases = %v", sel.From)
	}
	if sel.From[0].Binding() != "s" {
		t.Errorf("binding = %q", sel.From[0].Binding())
	}
	noAlias := TableRef{Table: "X"}
	if noAlias.Binding() != "X" {
		t.Errorf("default binding = %q", noAlias.Binding())
	}
}

func TestParseStringsAndNumbers(t *testing.T) {
	sel, err := Parse(`SELECT a FROM t WHERE b = 'single' AND c = "double" AND d = -3 AND e >= 2.5`)
	if err != nil {
		t.Fatal(err)
	}
	and := sel.Where.(*And)
	if len(and.Terms) != 4 {
		t.Fatalf("terms = %d", len(and.Terms))
	}
	vals := []relation.Value{
		relation.String("single"), relation.String("double"),
		relation.Int(-3), relation.Float(2.5),
	}
	for i, want := range vals {
		lit := and.Terms[i].(*Compare).R.(Lit)
		if !lit.Val.Equal(want) {
			t.Errorf("term %d literal = %#v, want %#v", i, lit.Val, want)
		}
	}
}

func TestParseBooleanStructure(t *testing.T) {
	sel, err := Parse(`SELECT a FROM t WHERE (x = 1 OR y = 2) AND NOT z = 3`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := sel.Where.(*And)
	if !ok {
		t.Fatalf("top = %T", sel.Where)
	}
	if _, ok := and.Terms[0].(*Or); !ok {
		t.Errorf("first term = %T", and.Terms[0])
	}
	if _, ok := and.Terms[1].(*Not); !ok {
		t.Errorf("second term = %T", and.Terms[1])
	}
	s := sel.Where.String()
	for _, want := range []string{"OR", "AND", "NOT"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestParseOperators(t *testing.T) {
	for _, op := range []string{"=", "!=", "<>", "<", "<=", ">", ">="} {
		sel, err := Parse("SELECT a FROM t WHERE a " + op + " 1")
		if err != nil {
			t.Fatalf("op %q: %v", op, err)
		}
		cmp := sel.Where.(*Compare)
		want := op
		if op == "<>" {
			want = "!="
		}
		if cmp.Op != want {
			t.Errorf("op %q parsed as %q", op, cmp.Op)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROM t",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a =",
		"SELECT a FROM t WHERE a ! 1",
		"SELECT a FROM t WHERE (a = 1",
		"SELECT a FROM t ORDER a",
		"SELECT a FROM t alias extra", // a second bare word cannot follow an alias
		`SELECT a FROM t WHERE a = "unterminated`,
		"SELECT a FROM t WHERE a = 1 @",
		"SELECT a. FROM t",
		"SELECT a FROM t WHERE WHERE",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestColExprString(t *testing.T) {
	if (ColExpr{Table: "T", Column: "C"}).String() != "T.C" {
		t.Error("qualified ColExpr string")
	}
	if (ColExpr{Column: "C"}).String() != "C" {
		t.Error("bare ColExpr string")
	}
	if (Col{Table: "T", Column: "C"}).String() != "T.C" {
		t.Error("qualified Col string")
	}
	if (Col{Column: "C"}).String() != "C" {
		t.Error("bare Col string")
	}
}

func TestSemicolonTolerated(t *testing.T) {
	if _, err := Parse("SELECT a FROM t;"); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
}

func TestQualifiedNameVsDecimal(t *testing.T) {
	sel, err := Parse("SELECT a FROM t WHERE t.a = 1.5 AND t.b = 2")
	if err != nil {
		t.Fatal(err)
	}
	and := sel.Where.(*And)
	if col := and.Terms[0].(*Compare).L.(Col); col.Table != "t" || col.Column != "a" {
		t.Errorf("qualified col = %v", col)
	}
	if lit := and.Terms[0].(*Compare).R.(Lit); !lit.Val.Equal(relation.Float(1.5)) {
		t.Errorf("decimal literal = %v", lit.Val)
	}
}
