package sqlparse

import (
	"strings"
	"testing"

	"intensional/internal/relation"
)

func mustStmt(t *testing.T, src string) Stmt {
	t.Helper()
	st, err := ParseStatement(src)
	if err != nil {
		t.Fatalf("ParseStatement(%q): %v", src, err)
	}
	return st
}

func TestParseInsert(t *testing.T) {
	st := mustStmt(t, `INSERT INTO ship (Id, Name, Displacement) VALUES ('S1', 'Nautilus', 4040), ('S2', NULL, 3.5)`)
	ins, ok := st.(*Insert)
	if !ok {
		t.Fatalf("expected *Insert, got %T", st)
	}
	if ins.Table != "ship" || ins.Kind() != "insert" {
		t.Errorf("table %q kind %q", ins.Table, ins.Kind())
	}
	if len(ins.Columns) != 3 || ins.Columns[0] != "Id" || ins.Columns[2] != "Displacement" {
		t.Errorf("columns %v", ins.Columns)
	}
	if len(ins.Rows) != 2 {
		t.Fatalf("rows %d", len(ins.Rows))
	}
	if !ins.Rows[0][1].Val.Equal(relation.String("Nautilus")) {
		t.Errorf("row 0 name = %v", ins.Rows[0][1].Val)
	}
	if !ins.Rows[1][1].Val.IsNull() {
		t.Errorf("row 1 name should be NULL, got %v", ins.Rows[1][1].Val)
	}
	if !ins.Rows[1][2].Val.Equal(relation.Float(3.5)) {
		t.Errorf("row 1 displacement = %v", ins.Rows[1][2].Val)
	}
}

func TestParseInsertSchemaOrder(t *testing.T) {
	st := mustStmt(t, `INSERT INTO t VALUES (1, 'a')`)
	ins := st.(*Insert)
	if ins.Columns != nil {
		t.Errorf("expected nil column list, got %v", ins.Columns)
	}
	if len(ins.Rows) != 1 || len(ins.Rows[0]) != 2 {
		t.Errorf("rows %v", ins.Rows)
	}
}

func TestParseDelete(t *testing.T) {
	st := mustStmt(t, `DELETE FROM ship WHERE Displacement > 8000 AND Type = 'SSBN'`)
	del, ok := st.(*Delete)
	if !ok {
		t.Fatalf("expected *Delete, got %T", st)
	}
	if del.Table != "ship" || del.Where == nil {
		t.Errorf("table %q where %v", del.Table, del.Where)
	}
	if _, ok := del.Where.(*And); !ok {
		t.Errorf("expected conjunction, got %T", del.Where)
	}

	all := mustStmt(t, `DELETE FROM ship`).(*Delete)
	if all.Where != nil {
		t.Errorf("expected nil WHERE, got %v", all.Where)
	}
}

func TestParseUpdate(t *testing.T) {
	st := mustStmt(t, `UPDATE ship SET Displacement = 9000, Name = NULL WHERE Id = 'S1'`)
	upd, ok := st.(*Update)
	if !ok {
		t.Fatalf("expected *Update, got %T", st)
	}
	if upd.Table != "ship" || len(upd.Set) != 2 {
		t.Fatalf("table %q set %v", upd.Table, upd.Set)
	}
	if upd.Set[0].Column != "Displacement" || !upd.Set[0].Val.Val.Equal(relation.Int(9000)) {
		t.Errorf("assign 0 = %v", upd.Set[0])
	}
	if !upd.Set[1].Val.Val.IsNull() {
		t.Errorf("assign 1 should be NULL")
	}
	if upd.Where == nil {
		t.Errorf("missing WHERE")
	}
}

func TestParseStatementSelect(t *testing.T) {
	st := mustStmt(t, `SELECT Id FROM ship WHERE Displacement > 100`)
	if _, ok := st.(*Select); !ok {
		t.Fatalf("expected *Select, got %T", st)
	}
	if IsDML(st) {
		t.Error("SELECT classified as DML")
	}
}

func TestParseStatementErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`DROP TABLE ship`,
		`INSERT ship VALUES (1)`,
		`INSERT INTO ship (a, b) VALUES (1)`,
		`INSERT INTO ship VALUES (a)`,
		`INSERT INTO ship VALUES (1,)`,
		`INSERT INTO ship VALUES 1`,
		`DELETE ship`,
		`DELETE FROM ship WHERE`,
		`UPDATE ship Displacement = 1`,
		`UPDATE ship SET Displacement`,
		`UPDATE ship SET Displacement = Name`,
		`UPDATE ship SET Displacement = 1 extra`,
		`INSERT INTO ship VALUES (1) garbage`,
	} {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q) unexpectedly succeeded", src)
		}
	}
}

func TestIsDMLAndLooksLikeDML(t *testing.T) {
	for src, want := range map[string]bool{
		"insert into t values (1)": true,
		"  DELETE FROM t":          true,
		"Update t set a = 1":       true,
		"SELECT a FROM t":          false,
		"":                         false,
		".help":                    false,
	} {
		if got := LooksLikeDML(src); got != want {
			t.Errorf("LooksLikeDML(%q) = %v, want %v", src, got, want)
		}
	}
	for _, src := range []string{
		"INSERT INTO t VALUES (1)",
		"DELETE FROM t",
		"UPDATE t SET a = 1",
	} {
		if !IsDML(mustStmt(t, src)) {
			t.Errorf("IsDML(%q) = false", src)
		}
	}
}

// TestParseStatementRoundtripKinds pins the Kind strings the WAL and the
// mutate endpoint report.
func TestParseStatementRoundtripKinds(t *testing.T) {
	for src, kind := range map[string]string{
		"SELECT a FROM t":          "select",
		"INSERT INTO t VALUES (1)": "insert",
		"DELETE FROM t":            "delete",
		"UPDATE t SET a = 1":       "update",
	} {
		if got := mustStmt(t, src).Kind(); got != kind {
			t.Errorf("%q: kind %q, want %q", src, got, kind)
		}
	}
}

// TestDMLNeverPanics drives the statement parser with word soup covering
// the DML grammar; rejection is fine, panics are not.
func TestDMLNeverPanics(t *testing.T) {
	words := []string{
		"INSERT", "INTO", "VALUES", "DELETE", "FROM", "UPDATE", "SET",
		"WHERE", "NULL", "AND", "OR", "NOT", "(", ")", ",", "=", "<",
		"t", "a", "'x'", "1", "2.5", "-3", ".",
	}
	var src strings.Builder
	for i := 0; i < len(words); i++ {
		for j := 0; j < len(words); j++ {
			src.Reset()
			src.WriteString(words[i] + " " + words[j] + " " + words[(i+j)%len(words)])
			_, _ = ParseStatement(src.String())
		}
	}
}
