// DML statements — the write path of the SQL subset. The paper's
// prototype was read-only; the reproduction grows INSERT, DELETE, and
// UPDATE so induced rules can be contradicted by evolving data and
// maintained incrementally (internal/maintain). The grammar stays in the
// same spirit as the SELECT subset: literals only (no value
// subexpressions), one table per statement, the full boolean WHERE
// grammar shared with SELECT.
package sqlparse

import (
	"fmt"
	"strings"

	"intensional/internal/relation"
)

// Stmt is one parsed SQL statement: *Select, *Insert, *Delete, or
// *Update.
type Stmt interface {
	stmt()
	// Kind returns the statement's lowercase verb: "select", "insert",
	// "delete", or "update".
	Kind() string
}

func (*Select) stmt() {}
func (*Insert) stmt() {}
func (*Delete) stmt() {}
func (*Update) stmt() {}

// Kind returns "select".
func (*Select) Kind() string { return "select" }

// Kind returns "insert".
func (*Insert) Kind() string { return "insert" }

// Kind returns "delete".
func (*Delete) Kind() string { return "delete" }

// Kind returns "update".
func (*Update) Kind() string { return "update" }

// Insert is "INSERT INTO table [(col, ...)] VALUES (lit, ...), ...".
// With no column list the values bind to the table's columns in schema
// order; with one, unmentioned columns receive NULL.
type Insert struct {
	Table   string
	Columns []string // nil means schema order
	Rows    [][]Lit
}

// Delete is "DELETE FROM table [WHERE expr]". A missing WHERE deletes
// every tuple.
type Delete struct {
	Table string
	Where Expr
}

// Assign is one "column = literal" item of an UPDATE's SET list.
type Assign struct {
	Column string
	Val    Lit
}

// Update is "UPDATE table SET col = lit, ... [WHERE expr]".
type Update struct {
	Table string
	Set   []Assign
	Where Expr
}

// IsDML reports whether the statement mutates data.
func IsDML(s Stmt) bool {
	switch s.(type) {
	case *Insert, *Delete, *Update:
		return true
	}
	return false
}

// LooksLikeDML reports whether the source text starts with a DML verb —
// the cheap dispatch shells use to route a line to the write path
// without parsing it twice.
func LooksLikeDML(src string) bool {
	f := strings.Fields(src)
	if len(f) == 0 {
		return false
	}
	switch strings.ToUpper(f[0]) {
	case "INSERT", "DELETE", "UPDATE":
		return true
	}
	return false
}

// ParseStatement parses one statement of any kind, dispatching on the
// leading keyword. Parse remains the SELECT-only entry point.
func ParseStatement(src string) (Stmt, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var st Stmt
	switch {
	case p.peekKeyword("select"):
		st, err = p.parseSelect()
	case p.peekKeyword("insert"):
		st, err = p.parseInsert()
	case p.peekKeyword("delete"):
		st, err = p.parseDelete()
	case p.peekKeyword("update"):
		st, err = p.parseUpdate()
	default:
		return nil, fmt.Errorf("sql: expected SELECT, INSERT, DELETE, or UPDATE, got %s", p.cur())
	}
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF {
		return nil, fmt.Errorf("sql: unexpected %s after statement", p.cur())
	}
	return st, nil
}

// peekKeyword reports whether the current token is the keyword, without
// consuming it.
func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) parseInsert() (*Insert, error) {
	p.keyword("insert")
	if !p.keyword("into") {
		return nil, fmt.Errorf("sql: expected INTO after INSERT, got %s", p.cur())
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.cur().kind == tLParen {
		p.i++
		for {
			col, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.cur().kind == tComma {
				p.i++
				continue
			}
			break
		}
		if p.cur().kind != tRParen {
			return nil, fmt.Errorf("sql: expected ) after column list, got %s", p.cur())
		}
		p.i++
	}
	if !p.keyword("values") {
		return nil, fmt.Errorf("sql: expected VALUES, got %s", p.cur())
	}
	for {
		row, err := p.parseValueRow()
		if err != nil {
			return nil, err
		}
		if ins.Columns != nil && len(row) != len(ins.Columns) {
			return nil, fmt.Errorf("sql: VALUES row has %d values, column list %d", len(row), len(ins.Columns))
		}
		ins.Rows = append(ins.Rows, row)
		if p.cur().kind == tComma {
			p.i++
			continue
		}
		break
	}
	return ins, nil
}

// parseValueRow parses one parenthesised literal tuple.
func (p *parser) parseValueRow() ([]Lit, error) {
	if p.cur().kind != tLParen {
		return nil, fmt.Errorf("sql: expected ( to open a VALUES row, got %s", p.cur())
	}
	p.i++
	var row []Lit
	for {
		l, err := p.parseLit()
		if err != nil {
			return nil, err
		}
		row = append(row, l)
		if p.cur().kind == tComma {
			p.i++
			continue
		}
		break
	}
	if p.cur().kind != tRParen {
		return nil, fmt.Errorf("sql: expected ) to close a VALUES row, got %s", p.cur())
	}
	p.i++
	return row, nil
}

// parseLit parses one literal: a string, a number, or NULL.
func (p *parser) parseLit() (Lit, error) {
	if p.keyword("null") {
		return Lit{Val: relation.Null()}, nil
	}
	op, err := p.parseOperand()
	if err != nil {
		return Lit{}, err
	}
	l, ok := op.(Lit)
	if !ok {
		return Lit{}, fmt.Errorf("sql: expected a literal value, got column reference %s", op)
	}
	return l, nil
}

func (p *parser) parseDelete() (*Delete, error) {
	p.keyword("delete")
	if !p.keyword("from") {
		return nil, fmt.Errorf("sql: expected FROM after DELETE, got %s", p.cur())
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.keyword("where") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

func (p *parser) parseUpdate() (*Update, error) {
	p.keyword("update")
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if !p.keyword("set") {
		return nil, fmt.Errorf("sql: expected SET after the table name, got %s", p.cur())
	}
	upd := &Update{Table: table}
	for {
		col, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		if t := p.cur(); t.kind != tOp || t.text != "=" {
			return nil, fmt.Errorf("sql: expected = after %s, got %s", col, t)
		}
		p.i++
		val, err := p.parseLit()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assign{Column: col, Val: val})
		if p.cur().kind == tComma {
			p.i++
			continue
		}
		break
	}
	if p.keyword("where") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		upd.Where = e
	}
	return upd, nil
}
