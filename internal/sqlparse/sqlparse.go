// Package sqlparse parses the SQL subset the paper's examples are written
// in: SELECT [DISTINCT] columns FROM tables [aliases] WHERE a boolean
// combination of comparisons, with optional ORDER BY. The query package
// lowers the AST onto the QUEL executor.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"intensional/internal/relation"
)

// Select is a parsed SELECT statement.
type Select struct {
	Distinct bool
	Star     bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []ColExpr
	OrderBy  []OrderItem
}

// Columns returns the plain (non-aggregate) projected columns.
func (s *Select) Columns() []ColExpr {
	var out []ColExpr
	for _, it := range s.Items {
		if it.Agg == "" {
			out = append(out, it.Col)
		}
	}
	return out
}

// HasAggregates reports whether any select item is an aggregate.
func (s *Select) HasAggregates() bool {
	for _, it := range s.Items {
		if it.Agg != "" {
			return true
		}
	}
	return false
}

// SelectItem is one projection item: a plain column or an aggregate
// (COUNT/SUM/AVG/MIN/MAX). COUNT(*) sets Star.
type SelectItem struct {
	Agg  string // upper-case function name; empty for a plain column
	Star bool   // COUNT(*)
	Col  ColExpr
	As   string
}

// Label returns the output column name for the item.
func (it SelectItem) Label() string {
	if it.As != "" {
		return it.As
	}
	if it.Agg == "" {
		if it.Col.As != "" {
			return it.Col.As
		}
		return it.Col.Column
	}
	if it.Star {
		return strings.ToLower(it.Agg)
	}
	return strings.ToLower(it.Agg) + "_" + it.Col.Column
}

// ColExpr is one projected column, optionally qualified and aliased.
type ColExpr struct {
	Table  string // empty when unqualified
	Column string
	As     string
}

// String renders the column reference.
func (c ColExpr) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// TableRef is a FROM item with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Binding returns the name the table is referenced by in the query.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  ColExpr
	Desc bool
}

// Expr is a WHERE expression node.
type Expr interface {
	expr()
	String() string
}

// Compare is "operand op operand".
type Compare struct {
	Op   string
	L, R Operand
}

// And is a conjunction, Or a disjunction, Not a negation.
type And struct{ Terms []Expr }
type Or struct{ Terms []Expr }
type Not struct{ Term Expr }

func (*Compare) expr() {}
func (*And) expr()     {}
func (*Or) expr()      {}
func (*Not) expr()     {}

func (e *Compare) String() string { return fmt.Sprintf("%s %s %s", e.L, e.Op, e.R) }
func (e *And) String() string     { return joinStr(e.Terms, " AND ") }
func (e *Or) String() string      { return "(" + joinStr(e.Terms, " OR ") + ")" }
func (e *Not) String() string     { return "NOT (" + e.Term.String() + ")" }

func joinStr(terms []Expr, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, sep)
}

// Operand is a comparison operand.
type Operand interface {
	operand()
	String() string
}

// Col references a column.
type Col struct {
	Table  string
	Column string
}

// Lit is a literal value.
type Lit struct{ Val relation.Value }

func (Col) operand() {}
func (Lit) operand() {}

func (c Col) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}
func (l Lit) String() string { return l.Val.GoString() }

// --- lexer ---

type tkind uint8

const (
	tEOF tkind = iota
	tIdent
	tNumber
	tString
	tOp
	tLParen
	tRParen
	tComma
	tDot
	tStar
)

type tok struct {
	kind tkind
	text string
	pos  int
}

func (t tok) String() string {
	if t.kind == tEOF {
		return "end of query"
	}
	return strconv.Quote(t.text)
}

func lexSQL(src string) ([]tok, error) {
	var out []tok
	i := 0
	peek := func(n int) byte {
		if i+n < len(src) {
			return src[i+n]
		}
		return 0
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';':
			i++
		case c == '(':
			out = append(out, tok{tLParen, "(", i})
			i++
		case c == ')':
			out = append(out, tok{tRParen, ")", i})
			i++
		case c == ',':
			out = append(out, tok{tComma, ",", i})
			i++
		case c == '.':
			out = append(out, tok{tDot, ".", i})
			i++
		case c == '*':
			out = append(out, tok{tStar, "*", i})
			i++
		case c == '=':
			out = append(out, tok{tOp, "=", i})
			i++
		case c == '!':
			if peek(1) != '=' {
				return nil, fmt.Errorf("sql: position %d: expected != after !", i)
			}
			out = append(out, tok{tOp, "!=", i})
			i += 2
		case c == '<':
			switch peek(1) {
			case '=':
				out = append(out, tok{tOp, "<=", i})
				i += 2
			case '>':
				out = append(out, tok{tOp, "!=", i})
				i += 2
			default:
				out = append(out, tok{tOp, "<", i})
				i++
			}
		case c == '>':
			if peek(1) == '=' {
				out = append(out, tok{tOp, ">=", i})
				i += 2
			} else {
				out = append(out, tok{tOp, ">", i})
				i++
			}
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != quote {
				b.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("sql: position %d: unterminated string", i)
			}
			out = append(out, tok{tString, b.String(), i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && peek(1) >= '0' && peek(1) <= '9'):
			j := i
			if src[j] == '-' {
				j++
			}
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				// trailing dot belongs to a qualified name, not a number
				if src[j] == '.' && !(j+1 < len(src) && src[j+1] >= '0' && src[j+1] <= '9') {
					break
				}
				j++
			}
			out = append(out, tok{tNumber, src[i:j], i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '-') {
				j++
			}
			out = append(out, tok{tIdent, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("sql: position %d: unexpected character %q", i, c)
		}
	}
	out = append(out, tok{kind: tEOF, pos: i})
	return out, nil
}

// --- parser ---

type parser struct {
	toks []tok
	i    int
}

// Parse parses one SELECT statement.
func Parse(src string) (*Select, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF {
		return nil, fmt.Errorf("sql: unexpected %s after query", p.cur())
	}
	return sel, nil
}

func (p *parser) cur() tok  { return p.toks[p.i] }
func (p *parser) next() tok { t := p.toks[p.i]; p.i++; return t }

func (p *parser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == tIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

// isKeyword reports whether the current token is one of the reserved words
// that terminates a clause.
func (p *parser) isClauseKeyword() bool {
	t := p.cur()
	if t.kind != tIdent {
		return false
	}
	switch strings.ToUpper(t.text) {
	case "FROM", "WHERE", "ORDER", "GROUP", "AND", "OR", "NOT", "BY", "ASC", "DESC", "AS", "DISTINCT":
		return true
	}
	return false
}

func (p *parser) expectIdent(what string) (string, error) {
	t := p.cur()
	if t.kind != tIdent || p.isClauseKeyword() {
		return "", fmt.Errorf("sql: expected %s, got %s", what, t)
	}
	p.i++
	return t.text, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if !p.keyword("select") {
		return nil, fmt.Errorf("sql: expected SELECT, got %s", p.cur())
	}
	sel := &Select{}
	if p.keyword("distinct") {
		sel.Distinct = true
	}
	if p.cur().kind == tStar {
		p.i++
		sel.Star = true
	} else {
		for {
			it, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, it)
			if p.cur().kind == tComma {
				p.i++
				continue
			}
			break
		}
	}
	if !p.keyword("from") {
		return nil, fmt.Errorf("sql: expected FROM, got %s", p.cur())
	}
	for {
		name, err := p.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: name}
		p.keyword("as")
		if p.cur().kind == tIdent && !p.isClauseKeyword() {
			ref.Alias = p.next().text
		}
		sel.From = append(sel.From, ref)
		if p.cur().kind == tComma {
			p.i++
			continue
		}
		break
	}
	if p.keyword("where") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.keyword("group") {
		if !p.keyword("by") {
			return nil, fmt.Errorf("sql: expected BY after GROUP, got %s", p.cur())
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, c)
			if p.cur().kind == tComma {
				p.i++
				continue
			}
			break
		}
	}
	if p.keyword("order") {
		if !p.keyword("by") {
			return nil, fmt.Errorf("sql: expected BY after ORDER, got %s", p.cur())
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: c}
			if p.keyword("desc") {
				item.Desc = true
			} else {
				p.keyword("asc")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.cur().kind == tComma {
				p.i++
				continue
			}
			break
		}
	}
	return sel, nil
}

// aggNames are the supported aggregate functions.
func isAggName(s string) bool {
	switch strings.ToUpper(s) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// parseSelectItem parses a plain column or an aggregate call.
func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.cur()
	if t.kind == tIdent && isAggName(t.text) && p.toks[p.i+1].kind == tLParen {
		it := SelectItem{Agg: strings.ToUpper(t.text)}
		p.i += 2
		if p.cur().kind == tStar {
			if it.Agg != "COUNT" {
				return SelectItem{}, fmt.Errorf("sql: %s(*) is not supported (only COUNT)", it.Agg)
			}
			it.Star = true
			p.i++
		} else {
			c, err := p.parseColRef()
			if err != nil {
				return SelectItem{}, err
			}
			it.Col = c
		}
		if p.cur().kind != tRParen {
			return SelectItem{}, fmt.Errorf("sql: expected ) after aggregate argument, got %s", p.cur())
		}
		p.i++
		if p.keyword("as") {
			as, err := p.expectIdent("column alias")
			if err != nil {
				return SelectItem{}, err
			}
			it.As = as
		}
		return it, nil
	}
	c, err := p.parseColExpr()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: c}, nil
}

// parseColRef parses a possibly-qualified column without an alias.
func (p *parser) parseColRef() (ColExpr, error) {
	first, err := p.expectIdent("column name")
	if err != nil {
		return ColExpr{}, err
	}
	c := ColExpr{Column: first}
	if p.cur().kind == tDot {
		p.i++
		col, err := p.expectIdent("column name")
		if err != nil {
			return ColExpr{}, err
		}
		c.Table, c.Column = first, col
	}
	return c, nil
}

func (p *parser) parseColExpr() (ColExpr, error) {
	first, err := p.expectIdent("column name")
	if err != nil {
		return ColExpr{}, err
	}
	c := ColExpr{Column: first}
	if p.cur().kind == tDot {
		p.i++
		col, err := p.expectIdent("column name")
		if err != nil {
			return ColExpr{}, err
		}
		c.Table, c.Column = first, col
	}
	if p.keyword("as") {
		as, err := p.expectIdent("column alias")
		if err != nil {
			return ColExpr{}, err
		}
		c.As = as
	}
	return c, nil
}

func (p *parser) parseOr() (Expr, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for p.keyword("or") {
		t, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return first, nil
	}
	return &Or{Terms: terms}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for p.keyword("and") {
		t, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return first, nil
	}
	return &And{Terms: terms}, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.keyword("not") {
		t, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{Term: t}, nil
	}
	if p.cur().kind == tLParen {
		p.i++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tRParen {
			return nil, fmt.Errorf("sql: expected ), got %s", p.cur())
		}
		p.i++
		return e, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind != tOp {
		return nil, fmt.Errorf("sql: expected comparison operator, got %s", t)
	}
	p.i++
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &Compare{Op: t.text, L: l, R: r}, nil
}

func (p *parser) parseOperand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tIdent:
		if p.isClauseKeyword() {
			return nil, fmt.Errorf("sql: expected operand, got %s", t)
		}
		p.i++
		if p.cur().kind == tDot {
			p.i++
			col, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			return Col{Table: t.text, Column: col}, nil
		}
		return Col{Column: t.text}, nil
	case tString:
		p.i++
		return Lit{Val: relation.String(t.text)}, nil
	case tNumber:
		p.i++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q: %w", t.text, err)
			}
			return Lit{Val: relation.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q: %w", t.text, err)
		}
		return Lit{Val: relation.Int(n)}, nil
	default:
		return nil, fmt.Errorf("sql: expected operand, got %s", t)
	}
}
