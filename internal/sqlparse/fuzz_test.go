package sqlparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestParseNeverPanicsProperty feeds random token soup to the parser: it
// may reject, but must never panic.
func TestParseNeverPanicsProperty(t *testing.T) {
	words := []string{
		"SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "GROUP", "ORDER", "BY",
		"DISTINCT", "AS", "COUNT", "SUM", "MIN", "(", ")", "*", ",", ".",
		"=", "!=", "<", "<=", ">", ">=", "a", "b", "T", "'str'", `"str"`,
		"1", "2.5", "-3", ";", "@", "..",
	}
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rr := rand.New(rand.NewSource(seed))
		n := rr.Intn(25)
		src := ""
		for i := 0; i < n; i++ {
			src += words[rr.Intn(len(words))] + " "
		}
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsOnBytes drives the lexer with raw random bytes.
func TestParseNeverPanicsOnBytes(t *testing.T) {
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rr := rand.New(rand.NewSource(seed))
		n := rr.Intn(60)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rr.Intn(128))
		}
		_, _ = Parse(string(b))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
