package sqlparse

import "testing"

// FuzzDML drives the full statement parser (SELECT + the DML verbs).
// Plain `go test` replays the seed corpus under testdata/fuzz/FuzzDML;
// `go test -fuzz FuzzDML ./internal/sqlparse` explores further. The
// invariant is the same as FuzzParse-style targets elsewhere in the
// repo: rejection is fine, panics are not, and an accepted statement
// must report a known kind.
func FuzzDML(f *testing.F) {
	for _, seed := range []string{
		"INSERT INTO ship VALUES ('S1', 4040)",
		"INSERT INTO ship (Id, Name) VALUES ('S1', NULL), ('S2', 'x')",
		"DELETE FROM ship",
		"DELETE FROM ship WHERE Displacement > 8000 AND NOT Type = 'SSBN'",
		"UPDATE ship SET Displacement = 9000, Name = NULL WHERE Id = 'S1'",
		"SELECT Name FROM ship WHERE Displacement > 100",
		"insert into t values (",
		"UPDATE t SET a = b",
		"INSERT INTO t VALUES (1,)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := ParseStatement(src)
		if err != nil {
			return
		}
		switch st.Kind() {
		case "select", "insert", "delete", "update":
		default:
			t.Fatalf("accepted statement with unknown kind %q", st.Kind())
		}
	})
}
