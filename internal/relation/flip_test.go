package relation

import "testing"

func TestFlipOp(t *testing.T) {
	cases := []struct {
		op, want string
	}{
		{"<", ">"},
		{"<=", ">="},
		{">", "<"},
		{">=", "<="},
		{"=", "="},
		{"!=", "!="},
		{"<>", "<>"},
	}
	for _, c := range cases {
		if got := FlipOp(c.op); got != c.want {
			t.Errorf("FlipOp(%q) = %q, want %q", c.op, got, c.want)
		}
		// Flipping is an involution: mirroring twice restores the operator.
		if got := FlipOp(FlipOp(c.op)); got != c.op {
			t.Errorf("FlipOp(FlipOp(%q)) = %q, want %q", c.op, got, c.op)
		}
	}
}

// TestFlipOpSemantics checks the table against the comparison semantics
// it mirrors: for every operator and value pair, "a op b" must equal
// "b FlipOp(op) a".
func TestFlipOpSemantics(t *testing.T) {
	holds := func(a Value, op string, b Value) bool {
		c := a.MustCompare(b)
		switch op {
		case "=":
			return c == 0
		case "!=":
			return c != 0
		case "<":
			return c < 0
		case "<=":
			return c <= 0
		case ">":
			return c > 0
		case ">=":
			return c >= 0
		}
		t.Fatalf("unknown operator %q", op)
		return false
	}
	vals := []Value{Int(1), Int(2), Int(3)}
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		for _, a := range vals {
			for _, b := range vals {
				if holds(a, op, b) != holds(b, FlipOp(op), a) {
					t.Errorf("%v %s %v != %v %s %v", a, op, b, b, FlipOp(op), a)
				}
			}
		}
	}
}
