package relation

import (
	"strings"
	"testing"
)

func subSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Column{Name: "Id", Type: TString},
		Column{Name: "Name", Type: TString},
		Column{Name: "Class", Type: TString},
	)
}

func TestSchemaBasics(t *testing.T) {
	s := subSchema(t)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if i, ok := s.Index("class"); !ok || i != 2 {
		t.Errorf("Index(class) = %d,%v; want 2,true (case-insensitive)", i, ok)
	}
	if _, ok := s.Index("nope"); ok {
		t.Error("Index(nope) should be absent")
	}
	if got := s.String(); got != "(Id string, Name string, Class string)" {
		t.Errorf("String() = %q", got)
	}
}

func TestSchemaDuplicateAndEmpty(t *testing.T) {
	if _, err := NewSchema(Column{Name: "A"}, Column{Name: "a"}); err == nil {
		t.Error("duplicate (case-insensitive) column should error")
	}
	if _, err := NewSchema(Column{Name: ""}); err == nil {
		t.Error("empty column name should error")
	}
}

func TestSchemaEqualAndProject(t *testing.T) {
	s := subSchema(t)
	s2 := MustSchema(
		Column{Name: "id", Type: TString},
		Column{Name: "NAME", Type: TString},
		Column{Name: "Class", Type: TString},
	)
	if !s.Equal(s2) {
		t.Error("schemas differing only in case should be Equal")
	}
	p, idx, err := s.Project("Class", "Id")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || idx[0] != 2 || idx[1] != 0 {
		t.Errorf("Project: schema %s, idx %v", p, idx)
	}
	if _, _, err := s.Project("missing"); err == nil {
		t.Error("Project of a missing column should error")
	}
}

func TestInsertTypeChecking(t *testing.T) {
	r := New("SUBMARINE", subSchema(t))
	if err := r.Insert(Tuple{String("SSBN730"), String("Rhode Island"), String("0101")}); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(Tuple{String("x"), String("y")}); err == nil {
		t.Error("arity mismatch should error")
	}
	if err := r.Insert(Tuple{Int(1), String("y"), String("z")}); err == nil {
		t.Error("kind mismatch should error")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1 (failed inserts must not append)", r.Len())
	}
}

func TestInsertStrings(t *testing.T) {
	s := MustSchema(Column{Name: "Class", Type: TString}, Column{Name: "Displacement", Type: TInt})
	r := New("CLASS", s)
	if err := r.InsertStrings("0101", "16600"); err != nil {
		t.Fatal(err)
	}
	if err := r.InsertStrings("0101", "not-a-number"); err == nil {
		t.Error("unparseable field should error")
	}
	if err := r.InsertStrings("one-field"); err == nil {
		t.Error("arity mismatch should error")
	}
	if got := r.Row(0)[1]; !got.Equal(Int(16600)) {
		t.Errorf("parsed value = %#v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	r := New("R", subSchema(t))
	r.MustInsert(String("a"), String("b"), String("c"))
	c := r.Clone()
	c.Row(0)[0] = String("mutated")
	if r.Row(0)[0].Str() != "a" {
		t.Error("Clone rows must be independent")
	}
}

func TestColumn(t *testing.T) {
	r := New("R", subSchema(t))
	r.MustInsert(String("a1"), String("b1"), String("c1"))
	r.MustInsert(String("a2"), String("b2"), String("c2"))
	vals, err := r.Column("Name")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0].Str() != "b1" || vals[1].Str() != "b2" {
		t.Errorf("Column = %v", vals)
	}
	if _, err := r.Column("missing"); err == nil {
		t.Error("missing column should error")
	}
}

func TestRelationStringTable(t *testing.T) {
	r := New("R", MustSchema(Column{Name: "id", Type: TString}, Column{Name: "n", Type: TInt}))
	r.MustInsert(String("abc"), Int(42))
	out := r.String()
	for _, want := range []string{"| id ", "| abc", "| 42", "+----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTupleKeyDistinguishes(t *testing.T) {
	a := Tuple{String("ab"), String("c")}
	b := Tuple{String("a"), String("bc")}
	if a.Key() == b.Key() {
		t.Error("keys of (ab,c) and (a,bc) must differ")
	}
}
