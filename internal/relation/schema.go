package relation

import (
	"fmt"
	"strings"
)

// Type is a column's declared storage type.
type Type uint8

// Column storage types. Richer domains (ranges, derived domains, object
// domains) live in the KER layer; the relational substrate stores only
// these base types.
const (
	TString Type = iota
	TInt
	TFloat
)

// String returns the lowercase name of the type.
func (t Type) String() string {
	switch t {
	case TString:
		return "string"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Column is a named, typed attribute of a relation schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns with name-based lookup.
// Column names are case-preserving but matched case-insensitively,
// following QUEL/INGRES convention.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from the given columns. Duplicate column names
// (case-insensitive) are an error.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if key == "" {
			return nil, fmt.Errorf("relation: empty column name at position %d", i)
		}
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.byName[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema but panics on error; for statically known schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Index returns the position of the named column (case-insensitive) and
// whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.byName[strings.ToLower(name)]
	return i, ok
}

// MustIndex returns the position of the named column or panics.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.Index(name)
	if !ok {
		panic(fmt.Sprintf("relation: no column %q in schema %s", name, s))
	}
	return i
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.cols))
	for i, c := range s.cols {
		names[i] = c.Name
	}
	return names
}

// Equal reports whether the two schemas have identical column names
// (case-insensitive) and types in the same order.
func (s *Schema) Equal(t *Schema) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i := range s.cols {
		if !strings.EqualFold(s.cols[i].Name, t.cols[i].Name) || s.cols[i].Type != t.cols[i].Type {
			return false
		}
	}
	return true
}

// Project returns a new schema containing the named columns in the given
// order, along with the source index of each.
func (s *Schema) Project(names ...string) (*Schema, []int, error) {
	cols := make([]Column, 0, len(names))
	idx := make([]int, 0, len(names))
	for _, name := range names {
		i, ok := s.Index(name)
		if !ok {
			return nil, nil, fmt.Errorf("relation: no column %q in schema %s", name, s)
		}
		cols = append(cols, s.cols[i])
		idx = append(idx, i)
	}
	out, err := NewSchema(cols...)
	if err != nil {
		return nil, nil, err
	}
	return out, idx, nil
}

// Rename returns a copy of the schema with every column name passed
// through f. Useful for qualifying columns before a join.
func (s *Schema) Rename(f func(string) string) (*Schema, error) {
	cols := make([]Column, len(s.cols))
	for i, c := range s.cols {
		cols[i] = Column{Name: f(c.Name), Type: c.Type}
	}
	return NewSchema(cols...)
}

// String renders the schema as "(name type, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}
