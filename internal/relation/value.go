// Package relation implements the in-memory relational substrate the
// intensional query processing system is built on: typed values with a
// total order, schemas, tuples, relations, and the relational operators
// (select, project, join, sort, unique, delete, set operations) that the
// paper's Rule Induction Algorithm and query processor are expressed in.
//
// The substrate plays the role INGRES played for the original prototype.
package relation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates the runtime representation of a Value.
type Kind uint8

// The supported value kinds. KindNull is the zero Kind, so the zero Value
// is a null.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single attribute value: a null, string, integer, or float.
// Values are immutable; the zero Value is null.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
}

// Null returns the null value.
func Null() Value { return Value{} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.s }

// Int64 returns the integer payload. It is only meaningful for KindInt.
func (v Value) Int64() int64 { return v.i }

// Float64 returns the numeric payload, converting integers to float64.
func (v Value) Float64() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display. Strings render without quotes;
// use GoString for an unambiguous form.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return "?"
	}
}

// GoString renders the value unambiguously (strings quoted).
func (v Value) GoString() string {
	if v.kind == KindString {
		return strconv.Quote(v.s)
	}
	return v.String()
}

// Comparable reports whether two values can be ordered relative to each
// other: same kind, or both numeric. Nulls compare only with nulls.
func (v Value) Comparable(w Value) bool {
	if v.kind == w.kind {
		return true
	}
	return v.IsNumeric() && w.IsNumeric()
}

// Compare orders v relative to w, returning -1, 0, or +1. Ints and floats
// compare numerically with each other; strings compare lexicographically
// (the paper's induced rules use lexicographic ranges such as
// "SSN623 <= Id <= SSN635"). Comparing incomparable kinds returns an error.
// Null compares equal to null and is not comparable to anything else.
func (v Value) Compare(w Value) (int, error) {
	if !v.Comparable(w) {
		return 0, fmt.Errorf("relation: cannot compare %s with %s", v.kind, w.kind)
	}
	switch {
	case v.kind == KindNull:
		return 0, nil
	case v.kind == KindString:
		return strings.Compare(v.s, w.s), nil
	case v.kind == KindInt && w.kind == KindInt:
		switch {
		case v.i < w.i:
			return -1, nil
		case v.i > w.i:
			return 1, nil
		}
		return 0, nil
	case v.kind == KindInt: // int vs float: exact, no rounding through float64
		return compareIntFloat(v.i, w.f), nil
	case w.kind == KindInt:
		return -compareIntFloat(w.i, v.f), nil
	default: // both float
		switch {
		case v.f < w.f:
			return -1, nil
		case v.f > w.f:
			return 1, nil
		}
		return 0, nil
	}
}

// compareIntFloat orders an int64 against a float64 without converting
// the integer to float64, which would round above 2^53 and make distinct
// integers compare equal to the same float.
func compareIntFloat(i int64, f float64) int {
	if f != f { // NaN: numerically unordered; treat as equal like < and > both failing
		return 0
	}
	// Every float64 ≥ 2^63 exceeds any int64; every float64 < -2^63 is
	// below any int64. In between, trunc(f) converts to int64 exactly.
	if f >= 1<<63 {
		return -1
	}
	if f < -(1 << 63) {
		return 1
	}
	t := math.Trunc(f)
	ti := int64(t)
	switch {
	case i < ti:
		return -1
	case i > ti:
		return 1
	case f > t: // i == trunc(f), positive fraction remains: i < f
		return -1
	case f < t: // negative fraction: i > f
		return 1
	}
	return 0
}

// MustCompare is Compare but panics on incomparable kinds. It is intended
// for callers that have already verified comparability via the schema.
func (v Value) MustCompare(w Value) int {
	c, err := v.Compare(w)
	if err != nil {
		panic(err)
	}
	return c
}

// Equal reports whether the two values are equal under Compare semantics.
// Incomparable values are unequal.
func (v Value) Equal(w Value) bool {
	c, err := v.Compare(w)
	return err == nil && c == 0
}

// Less reports v < w, treating incomparable values as unordered (false).
func (v Value) Less(w Value) bool {
	c, err := v.Compare(w)
	return err == nil && c < 0
}

// Key returns a map-key form of the value that is equal exactly when the
// values are Equal. Numerics are normalised to their float64 rendering so
// Int(3) and Float(3) share a key — but only when the integer survives
// the float64 round trip. Integers beyond that (magnitude above 2^53 and
// not exactly representable) format exactly under a distinct prefix, so
// Int(1<<53) and Int(1<<53+1) never collide; no float64 can equal such
// an integer, so Equal agrees.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindString:
		return "s" + v.s
	case KindInt:
		if f := float64(v.i); f < 1<<63 && int64(f) == v.i {
			return "n" + strconv.FormatFloat(f, 'g', -1, 64)
		}
		return "i" + strconv.FormatInt(v.i, 10)
	default:
		return "n" + strconv.FormatFloat(v.f, 'g', -1, 64)
	}
}

// ParseValue parses s into a value of the requested type.
func ParseValue(s string, t Type) (Value, error) {
	switch t {
	case TString:
		return String(s), nil
	case TInt:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse int %q: %w", s, err)
		}
		return Int(i), nil
	case TFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse float %q: %w", s, err)
		}
		return Float(f), nil
	default:
		return Value{}, fmt.Errorf("relation: parse into unknown type %v", t)
	}
}

// Conforms reports whether the value may be stored in a column of type t.
// Null conforms to every type; ints conform to float columns.
func (v Value) Conforms(t Type) bool {
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return t == TString
	case KindInt:
		return t == TInt || t == TFloat
	case KindFloat:
		return t == TFloat
	default:
		return false
	}
}
